package swarm_test

import (
	"testing"

	"swarmhints/swarm"
)

func TestQuickstartCounter(t *testing.T) {
	p := swarm.NewProgram()
	counter := p.Mem.AllocWords(1)
	inc := p.Register("inc", func(c *swarm.Ctx) {
		c.Write(counter, c.Read(counter)+1)
	})
	for i := uint64(0); i < 50; i++ {
		p.EnqueueRoot(inc, i, counter)
	}
	cfg := swarm.ScaledConfig().WithCores(16)
	cfg.Scheduler = swarm.Hints
	st, err := p.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mem.Load(counter) != 50 {
		t.Fatalf("counter = %d, want 50", p.Mem.Load(counter))
	}
	if st.CommittedTasks != 50 {
		t.Fatalf("committed = %d, want 50", st.CommittedTasks)
	}
}

func TestRootKinds(t *testing.T) {
	p := swarm.NewProgram()
	a := p.Mem.AllocWords(1)
	fn := p.Register("w", func(c *swarm.Ctx) { c.Write(a, c.Read(a)+1) })
	p.EnqueueRoot(fn, 0, a)
	p.EnqueueRootNoHint(fn, 1)
	if p.Roots() != 2 {
		t.Fatalf("roots = %d", p.Roots())
	}
	if _, err := p.Run(swarm.ScaledConfig().WithCores(1)); err != nil {
		t.Fatal(err)
	}
	if p.Mem.Load(a) != 2 {
		t.Fatal("both root kinds must run")
	}
}

func TestAllSchedulersExposed(t *testing.T) {
	for _, k := range []swarm.SchedKind{swarm.Random, swarm.Stealing, swarm.Hints, swarm.LBHints, swarm.LBIdleProxy} {
		p := swarm.NewProgram()
		a := p.Mem.AllocWords(1)
		fn := p.Register("w", func(c *swarm.Ctx) { c.Write(a, c.Read(a)+1) })
		for i := uint64(0); i < 20; i++ {
			p.EnqueueRoot(fn, i, a)
		}
		cfg := swarm.ScaledConfig().WithCores(4)
		cfg.Scheduler = k
		if _, err := p.Run(cfg); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if p.Mem.Load(a) != 20 {
			t.Fatalf("%v: result %d", k, p.Mem.Load(a))
		}
	}
}
