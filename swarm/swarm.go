// Package swarm is the public API of the swarmhints library: a Swarm-style
// speculative task-parallel programming model with spatial hints, executed
// on a simulated tiled multicore.
//
// It reproduces the system of "Data-Centric Execution of Speculative
// Parallel Programs" (Jeffrey et al., MICRO 2016). Programs consist of
// timestamped tasks that appear to execute in timestamp order; each task may
// carry a spatial hint — an abstract integer naming the data it will likely
// access — which the hardware model uses to co-locate and serialize
// conflicting tasks and to balance load.
//
// A minimal program mirrors Listing 1 of the paper:
//
//	p := swarm.NewProgram()
//	counter := p.Mem.AllocWords(1)
//	var inc swarm.FnID
//	inc = p.Register("inc", func(c *swarm.Ctx) {
//	    c.Write(counter, c.Read(counter)+1)
//	})
//	p.EnqueueRoot(inc, 0, counter) // timestamp 0, hint = counter address
//	stats, err := p.Run(swarm.ScaledConfig().WithCores(16))
//
// See the examples/ directory for complete applications.
package swarm

import (
	"swarmhints/internal/metrics"
	"swarmhints/internal/sched"
	"swarmhints/internal/sim"
	"swarmhints/internal/task"
)

// Ctx is the execution context passed to every task body. Use it to access
// simulated memory, charge compute cycles, and enqueue child tasks.
type Ctx = sim.Ctx

// TaskFn is a task body.
type TaskFn = sim.TaskFn

// FnID names a registered task function.
type FnID = task.FnID

// Config parameterizes a run: mesh size, cores/tile, queue and cache
// capacities, scheduler, and instrumentation. DefaultConfig mirrors
// Table II of the paper.
type Config = sim.Config

// Stats is the outcome of a run: makespan, cycle breakdown (commit, abort,
// spill, stall, empty), NoC traffic by class, and optionally the access
// classification of Fig. 3/6.
type Stats = sim.Stats

// CycleBreakdown is the per-category core-cycle attribution.
type CycleBreakdown = sim.CycleBreakdown

// Classification is the single/multi-hint × RO/RW access profile.
type Classification = sim.Classification

// TileCounters is one tile's counter block in Stats.Tiles: cycle breakdown,
// task lifecycle events, traffic by class, cache events, and conflict-check
// comparisons, all attributed to the tile they occurred on.
type TileCounters = metrics.TileCounters

// Snapshot is the stable machine-readable form of a run's statistics
// (schema swarmhints.metrics.v1), produced by Stats.Snapshot.
type Snapshot = metrics.Snapshot

// Record pairs a run's identifying labels with its snapshot.
type Record = metrics.Record

// ResultSet is an ordered collection of labeled run records with JSON and
// CSV encoders.
type ResultSet = metrics.ResultSet

// NewResultSet returns an empty result set with the given label columns.
func NewResultSet(fields ...string) *ResultSet { return metrics.NewResultSet(fields...) }

// StatsFromSnapshot rebuilds run statistics from their machine-readable
// snapshot, the inverse of Stats.Snapshot: the rebuilt Stats snapshot and
// export byte-identically to the run that produced the snapshot. The
// persistent result store uses it to serve disk records as first-class
// results.
func StatsFromSnapshot(sn *Snapshot) *Stats { return sim.StatsFromSnapshot(sn) }

// SeedSummary is the cross-seed dispersion block of a merged multi-seed
// snapshot (mean/min/max/stddev per headline metric).
type SeedSummary = metrics.SeedSummary

// MergeStats folds per-seed runs of one configuration — given in canonical
// seed order — into a single aggregate: counters sum, derived metrics are
// recomputed from the merged counters (never averaged), and SeedSummary
// carries cross-seed dispersion. The merge round-trips byte-identically
// through Snapshot/StatsFromSnapshot.
func MergeStats(runs []*Stats) (*Stats, error) { return sim.MergeStats(runs) }

// Scheduler kinds (Sec. II-C and VI of the paper).
const (
	Random      = sched.Random
	Stealing    = sched.Stealing
	Hints       = sched.Hints
	LBHints     = sched.LBHints
	LBIdleProxy = sched.LBIdleProxy
)

// SchedKind selects the spatial task-mapping policy.
type SchedKind = sched.Kind

// DefaultConfig is the paper's 256-core configuration (Table II).
func DefaultConfig() Config { return sim.DefaultConfig() }

// ScaledConfig shrinks the memory system proportionally to the scaled-down
// inputs used by tests and quick experiment runs.
func ScaledConfig() Config { return sim.ScaledConfig() }

// Program is a Swarm program under construction: simulated memory, task
// functions, and the initial root tasks enqueued before Run (the analogue
// of code before swarm::run() in Listing 1).
type Program struct {
	*sim.Program
	roots []sim.Root
}

// NewProgram returns an empty program with fresh simulated memory.
func NewProgram() *Program {
	return &Program{Program: sim.NewProgram()}
}

// EnqueueRoot adds an initial task with an integer spatial hint.
func (p *Program) EnqueueRoot(fn FnID, ts uint64, hint uint64, args ...uint64) {
	p.roots = append(p.roots, sim.Root{Fn: fn, TS: ts, HintKind: task.HintInt, Hint: hint, Args: args})
}

// EnqueueRootNoHint adds an initial task whose accessed data is unknown.
func (p *Program) EnqueueRootNoHint(fn FnID, ts uint64, args ...uint64) {
	p.roots = append(p.roots, sim.Root{Fn: fn, TS: ts, HintKind: task.HintNone, Args: args})
}

// Roots returns the number of initial tasks.
func (p *Program) Roots() int { return len(p.roots) }

// Run executes the program to completion under cfg (the analogue of
// swarm::run()) and returns the run statistics. The program's memory holds
// the final committed state afterwards; a program can be run only once
// (build a fresh one per run, as workload generators do).
func (p *Program) Run(cfg Config) (*Stats, error) {
	return sim.Run(p.Program, p.roots, cfg)
}
