// Package api is the typed wire contract of the swarmhints HTTP surface:
// the request bodies of /v1/run, /v1/sweep, and /v1/experiments/{id}, the
// structured error envelope every non-2xx response carries, the NDJSON
// stream framing (header line, record lines, completion trailer), and a
// small Client speaking all of it. swarmd's handlers (internal/service),
// the swarmgate fleet gateway (internal/gate), and the tests all share
// these types, so a request that one component emits is by construction a
// request another component parses.
//
// Responses reuse the stable swarmhints.metrics.v1 result schema
// (internal/metrics: Snapshot, Record, ResultSet); this package adds only
// the envelope around it. The contract is deliberately re-encodable: a
// Record decoded from one server and re-marshaled by a proxy produces the
// exact bytes the origin would have sent, which is what lets swarmgate
// reassemble per-point responses into a stream byte-identical to a single
// swarmd's.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// MaxBodyBytes bounds request bodies; sweep grids are tiny JSON documents.
const MaxBodyBytes = 1 << 20

// Point is one simulation configuration in wire form: a benchmark run
// under a scheduler at a core count, optionally with access profiling.
// The harness fields (scale, seed) are carried separately — a sweep fixes
// them once for every point of its grid.
type Point struct {
	Bench   string `json:"bench"`
	Sched   string `json:"sched"`
	Cores   int    `json:"cores"`
	Profile bool   `json:"profile"`
}

// Run builds the /v1/run request executing this point under the given
// harness. The seed is passed explicitly so a proxy's per-point requests
// cannot drift from the sweep's resolved default.
func (p Point) Run(scale string, seed int64) RunRequest {
	s := seed
	return RunRequest{
		Bench: p.Bench, Sched: p.Sched, Cores: p.Cores,
		Scale: scale, Seed: &s, Profile: p.Profile,
	}
}

// MaxSeeds bounds the seed-replica fan-out of one run request.
const MaxSeeds = 4096

// RunRequest is the body of POST /v1/run: one simulation configuration.
type RunRequest struct {
	Bench   string `json:"bench"`
	Sched   string `json:"sched"`
	Cores   int    `json:"cores"`
	Scale   string `json:"scale,omitempty"` // tiny|small|full; default small
	Seed    *int64 `json:"seed,omitempty"`  // default 7 (the harness default)
	Profile bool   `json:"profile,omitempty"`
	// Seeds > 1 fans the configuration out as that many seed replicas
	// (workload seeds derived from Seed in replica order) and answers with
	// the single merged record: counters summed, derived metrics recomputed,
	// cross-seed dispersion in the snapshot's seedSummary block (schema
	// swarmhints.metrics.v2). 0 or 1 is a plain single-seed run. Servers
	// predating this field reject it (unknown fields fail loudly).
	Seeds int `json:"seeds,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: a configuration grid
// (benches × scheds × cores), executed under one (scale, seed) harness.
type SweepRequest struct {
	Benches []string `json:"benches"`
	Scheds  []string `json:"scheds"`
	Cores   []int    `json:"cores"`
	Scale   string   `json:"scale,omitempty"`
	Seed    *int64   `json:"seed,omitempty"`
	Profile bool     `json:"profile,omitempty"`
	// Format selects the response encoding: "ndjson" (default) streams one
	// record per line in canonical configuration order as results complete,
	// terminated by a completion trailer; "json" and "csv" buffer the full
	// result set and emit exactly the bytes cmd/experiments -format
	// json|csv would for the same grid.
	Format string `json:"format,omitempty"`
}

// ExperimentRequest is the body of POST /v1/experiments/{id}.
type ExperimentRequest struct {
	Scale  string `json:"scale,omitempty"`
	Seed   *int64 `json:"seed,omitempty"`
	Cores  []int  `json:"cores,omitempty"`  // core sweep override; default per scale
	Format string `json:"format,omitempty"` // json (default) | csv | ndjson | text
}

// ExperimentInfo is one entry of the GET /v1/experiments listing.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// Per-endpoint format lists. Every "unknown format" rejection goes through
// UnknownFormat with the list for its endpoint, so the error always
// advertises exactly the formats that endpoint accepts.
var (
	// SweepFormats are the encodings POST /v1/sweep accepts.
	SweepFormats = []string{"ndjson", "json", "csv"}
	// ExperimentFormats are the encodings POST /v1/experiments/{id}
	// accepts ("text" is the human-readable tables).
	ExperimentFormats = []string{"json", "csv", "ndjson", "text"}
	// ResultFormats are the machine-readable result-set encodings.
	ResultFormats = []string{"json", "csv", "ndjson"}
)

// UnknownFormat builds the canonical unknown-format rejection for an
// endpoint supporting exactly the formats in have.
func UnknownFormat(got string, have []string) *Error {
	return Errorf(CodeUnknownFormat, "unknown format %q (have %s)", got, strings.Join(have, ", "))
}

// DecodeRequest decodes a JSON request body into v, rejecting unknown
// fields so typos in configuration keys fail loudly instead of running
// defaults. The body is bounded by MaxBodyBytes through w.
func DecodeRequest(w http.ResponseWriter, r *http.Request, v any) *Error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return Errorf(CodeBadRequest, "bad request body: %v", err)
	}
	return nil
}

// String renders a point for logs and errors.
func (p Point) String() string {
	return fmt.Sprintf("%s/%s/%d/%v", p.Bench, p.Sched, p.Cores, p.Profile)
}
