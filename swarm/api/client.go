package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"swarmhints/internal/metrics"
	"swarmhints/internal/obs"
)

// TraceHeader carries trace propagation between tiers: the value is
// "<32-hex trace id>-<16-hex parent span id>" (obs.Span.Header). The
// client attaches it to every POST when the request context carries a
// span; servers continue the trace with obs.ContinueSpan and echo the
// request's trace on the response so callers can look it up under
// /debug/traces/{id}.
const TraceHeader = "X-Swarm-Trace"

// Client is a typed client of the swarmd/swarmgate HTTP surface. Every
// failure it returns is (or wraps) an *Error, so callers can route on
// Code and Retryable uniformly: server-side failures carry the server's
// envelope, transport-level failures are synthesized as retryable
// CodeUnavailable.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the server at base (e.g.
// "http://127.0.0.1:8080"). hc nil means http.DefaultClient; per-request
// deadlines come from the caller's context.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// Base returns the server URL the client speaks to.
func (c *Client) Base() string { return c.base }

// post issues a JSON POST and returns the response; non-2xx responses are
// decoded into an *Error.
func (c *Client) post(ctx context.Context, path string, body any) (*http.Response, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return nil, &Error{Code: CodeBadRequest, Message: err.Error()}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(b))
	if err != nil {
		return nil, &Error{Code: CodeBadRequest, Message: err.Error()}
	}
	req.Header.Set("Content-Type", "application/json")
	if h := obs.SpanFromContext(ctx).Header(); h != "" {
		req.Header.Set(TraceHeader, h)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, &Error{Code: CodeUnavailable, Message: err.Error(), Retryable: true}
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		eb, _ := io.ReadAll(io.LimitReader(resp.Body, MaxBodyBytes))
		return nil, DecodeError(resp.StatusCode, bytes.TrimSpace(eb))
	}
	return resp, nil
}

// Run executes one configuration via POST /v1/run and returns the
// single-record result set exactly as the server encoded it.
func (c *Client) Run(ctx context.Context, req RunRequest) (*metrics.ResultSet, error) {
	resp, err := c.post(ctx, "/v1/run", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var rs metrics.ResultSet
	if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
		// A response cut off mid-body is a transport failure, not a result.
		return nil, &Error{Code: CodeUnavailable, Message: fmt.Sprintf("bad run response: %v", err), Retryable: true}
	}
	if len(rs.Records) != 1 {
		// The server was reachable and answered 200, so this is not
		// "unavailable" — it is a malformed answer from this instance
		// (a correct server returns exactly one record). Retryable so a
		// proxy re-routes to a different replica, but explicitly so: a
		// plain Errorf(CodeInternal) would mark it deterministic.
		return nil, &Error{Code: CodeInternal, Message: fmt.Sprintf("run response carries %d records, want 1", len(rs.Records)), Retryable: true}
	}
	return &rs, nil
}

// Sweep executes a grid via POST /v1/sweep as an NDJSON stream (the
// request's Format is forced to "ndjson"), calling onRecord for each
// record in canonical configuration order. It validates the completion
// trailer and rejects trailerless streams with ErrTruncated: a truncated
// stream never silently passes for a complete sweep.
func (c *Client) Sweep(ctx context.Context, req SweepRequest, onRecord func(metrics.Record) error) (StreamHeader, error) {
	req.Format = "ndjson"
	resp, err := c.post(ctx, "/v1/sweep", req)
	if err != nil {
		return StreamHeader{}, err
	}
	defer resp.Body.Close()
	dec, err := NewStreamDecoder(resp.Body)
	if err != nil {
		return StreamHeader{}, err
	}
	for {
		rec, ok, err := dec.Next()
		if err != nil {
			return dec.Header(), err
		}
		if !ok {
			return dec.Header(), nil
		}
		if onRecord != nil {
			if err := onRecord(rec); err != nil {
				return dec.Header(), err
			}
		}
	}
}

// SweepSet is Sweep collected into a ResultSet carrying the streamed
// schema, fields, and records — encoding it as JSON reproduces the
// server's buffered "json" response byte for byte.
func (c *Client) SweepSet(ctx context.Context, req SweepRequest) (*metrics.ResultSet, error) {
	var rs metrics.ResultSet
	h, err := c.Sweep(ctx, req, func(rec metrics.Record) error {
		rs.Records = append(rs.Records, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	rs.Schema, rs.Fields = h.Schema, h.Fields
	return &rs, nil
}

// Healthz probes GET /healthz.
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return &Error{Code: CodeBadRequest, Message: err.Error()}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return &Error{Code: CodeUnavailable, Message: err.Error(), Retryable: true}
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return &Error{Code: CodeUnavailable, Message: fmt.Sprintf("healthz status %d", resp.StatusCode), Retryable: true}
	}
	return nil
}

// Experiment runs a named experiment via POST /v1/experiments/{id} and
// returns the raw response body plus its Content-Type, so a proxy can
// relay any of the endpoint's formats (json, csv, ndjson, text) without
// re-encoding. The caller must Close the body.
func (c *Client) Experiment(ctx context.Context, id string, req ExperimentRequest) (io.ReadCloser, string, error) {
	resp, err := c.post(ctx, "/v1/experiments/"+id, req)
	if err != nil {
		return nil, "", err
	}
	return resp.Body, resp.Header.Get("Content-Type"), nil
}

// Experiments lists the experiment registry via GET /v1/experiments.
func (c *Client) Experiments(ctx context.Context) ([]ExperimentInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/experiments", nil)
	if err != nil {
		return nil, &Error{Code: CodeBadRequest, Message: err.Error()}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, &Error{Code: CodeUnavailable, Message: err.Error(), Retryable: true}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		eb, _ := io.ReadAll(io.LimitReader(resp.Body, MaxBodyBytes))
		return nil, DecodeError(resp.StatusCode, bytes.TrimSpace(eb))
	}
	var list []ExperimentInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return nil, &Error{Code: CodeUnavailable, Message: fmt.Sprintf("bad experiments response: %v", err), Retryable: true}
	}
	return list, nil
}
