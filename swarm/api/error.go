package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Code is a stable, machine-readable error class. Codes are part of the
// wire contract: a proxy routes and retries on the code (and the
// Retryable flag), never on message text, so messages may change freely
// while codes may only be added.
type Code string

// Error codes.
const (
	// CodeBadRequest: the request body is malformed or inconsistent
	// (unparseable JSON, unknown fields, empty grid axes).
	CodeBadRequest Code = "bad_request"
	// CodeUnknownBench: a benchmark name is not in the registry.
	CodeUnknownBench Code = "unknown_bench"
	// CodeUnknownSched: a scheduler name is not recognized.
	CodeUnknownSched Code = "unknown_sched"
	// CodeUnknownScale: the scale is not tiny|small|full.
	CodeUnknownScale Code = "unknown_scale"
	// CodeUnknownFormat: the format is not supported by this endpoint;
	// the message lists the formats that are.
	CodeUnknownFormat Code = "unknown_format"
	// CodeUnknownExperiment: the experiment id is not in the registry.
	CodeUnknownExperiment Code = "unknown_experiment"
	// CodeBadCores: a core count the simulated machine cannot be built
	// with (must be 1 or fill a square mesh).
	CodeBadCores Code = "bad_cores"
	// CodeShuttingDown: the server is draining or the request's work was
	// canceled; the same request against a live replica can succeed.
	CodeShuttingDown Code = "shutting_down"
	// CodeOverloaded: the server's admission bound is full and the request
	// was shed (HTTP 429 with a Retry-After hint). The work was never
	// started, so retrying — ideally against a less loaded replica — is
	// always safe.
	CodeOverloaded Code = "overloaded"
	// CodeUnavailable: the server could not be reached at all (synthesized
	// client-side from transport errors and truncated responses).
	CodeUnavailable Code = "unavailable"
	// CodeInternal: the request was valid but execution failed
	// (simulation error, validation failure, encoding error). Simulations
	// are deterministic, so a retry elsewhere fails identically.
	CodeInternal Code = "internal"
)

// codeStatus maps each code to its HTTP status.
var codeStatus = map[Code]int{
	CodeBadRequest:        http.StatusBadRequest,
	CodeUnknownBench:      http.StatusBadRequest,
	CodeUnknownSched:      http.StatusBadRequest,
	CodeUnknownScale:      http.StatusBadRequest,
	CodeUnknownFormat:     http.StatusBadRequest,
	CodeUnknownExperiment: http.StatusNotFound,
	CodeBadCores:          http.StatusBadRequest,
	CodeShuttingDown:      http.StatusServiceUnavailable,
	CodeOverloaded:        http.StatusTooManyRequests,
	CodeUnavailable:       http.StatusServiceUnavailable,
	CodeInternal:          http.StatusInternalServerError,
}

// retryableCode says whether a code is safe to retry against a different
// replica: the failure is a property of the serving instance, not of the
// request. Everything else is deterministic and would fail identically.
func retryableCode(c Code) bool {
	return c == CodeShuttingDown || c == CodeUnavailable || c == CodeOverloaded
}

// Error is the structured error every non-2xx /v1 response carries, as
// the envelope {"error":{"code","message","retryable"}}. It implements
// the error interface so it can flow through ordinary error returns.
type Error struct {
	Code      Code   `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

// Errorf builds an Error with the code's canonical HTTP status and
// retryability.
func Errorf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...), Retryable: retryableCode(code)}
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// HTTPStatus returns the status the envelope is served with.
func (e *Error) HTTPStatus() int {
	if s, ok := codeStatus[e.Code]; ok {
		return s
	}
	return http.StatusInternalServerError
}

// envelope is the wire shape of an error response.
type envelope struct {
	Error *Error `json:"error"`
}

// WriteError writes e as the JSON error envelope with its canonical
// status. It is the single error-response writer of every /v1 endpoint —
// no handler writes plain-text http.Error bodies.
func WriteError(w http.ResponseWriter, e *Error) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	if e.Code == CodeOverloaded {
		// Shed responses carry a backoff hint; 1s is deliberately coarse —
		// clients with their own jittered backoff should prefer it.
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(e.HTTPStatus())
	b, err := json.Marshal(envelope{Error: e})
	if err != nil { // an Error is three plain fields; cannot happen
		b = []byte(`{"error":{"code":"internal","message":"error encoding failed","retryable":false}}`)
	}
	_, _ = w.Write(append(b, '\n'))
}

// DecodeError reconstructs the Error of a non-2xx response from its
// status and body. A body that is not a valid envelope (a proxy in the
// path, a pre-envelope server) degrades to a synthesized Error: the text
// as the message, the code inferred from the status, retryable only for
// 503s — so callers can always route on Code and Retryable.
func DecodeError(status int, body []byte) *Error {
	var env envelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		return env.Error
	}
	code := CodeInternal
	switch {
	case status == http.StatusNotFound:
		code = CodeUnknownExperiment
	case status == http.StatusServiceUnavailable:
		code = CodeShuttingDown
	case status == http.StatusTooManyRequests:
		code = CodeOverloaded
	case status >= 400 && status < 500:
		code = CodeBadRequest
	}
	return &Error{Code: code, Message: string(body), Retryable: retryableCode(code)}
}

// AsError extracts the *Error behind err, synthesizing a retryable
// CodeUnavailable for plain transport-level errors — the form every
// Client failure takes, so callers can uniformly inspect Code/Retryable.
func AsError(err error) *Error {
	var e *Error
	if errors.As(err, &e) {
		return e
	}
	return &Error{Code: CodeUnavailable, Message: err.Error(), Retryable: true}
}
