package api

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"swarmhints/internal/metrics"
)

// NDJSON stream framing. A complete /v1/sweep (or buffered ndjson) response
// is exactly:
//
//	header line    {"schema":...,"fields":[...],"points":N}
//	N record lines {"labels":{...},"stats":{...}}     (canonical order)
//	trailer line   {"trailer":{"points":N,"complete":true}}
//
// A 200-then-stream response cannot signal a mid-grid failure with a
// status code; it truncates instead. The trailer makes truncation
// detectable without counting: a stream that ends without one is
// incomplete, whatever the header promised. StreamDecoder enforces this —
// it returns ErrTruncated for trailerless streams.

// ErrTruncated reports an NDJSON stream that ended without a completion
// trailer: the server failed (or was killed) mid-grid.
var ErrTruncated = errors.New("api: stream truncated (no completion trailer)")

// StreamHeader is the first line of an NDJSON response: the result schema
// version, the label-field order every record follows, and how many
// record lines a complete response carries.
type StreamHeader struct {
	Schema string   `json:"schema"`
	Fields []string `json:"fields"`
	Points int      `json:"points"`
}

// StreamTrailer is the payload of the final line of a complete NDJSON
// response.
type StreamTrailer struct {
	Points   int  `json:"points"`
	Complete bool `json:"complete"`
}

// trailerLine is the wire shape of the trailer line. Record lines never
// carry a "trailer" key, so the key's presence distinguishes the two.
type trailerLine struct {
	Trailer *StreamTrailer `json:"trailer"`
}

// EncodeHeader encodes the header line, newline included.
func EncodeHeader(h StreamHeader) ([]byte, error) {
	b, err := json.Marshal(h)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// EncodeRecord encodes one record line, newline included. Both swarmd and
// swarmgate emit records through this one encoder, which is what makes a
// gateway-reassembled stream byte-identical to a single server's.
func EncodeRecord(rec metrics.Record) ([]byte, error) {
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// EncodeTrailer encodes the completion trailer for a stream of points
// records, newline included.
func EncodeTrailer(points int) ([]byte, error) {
	b, err := json.Marshal(trailerLine{Trailer: &StreamTrailer{Points: points, Complete: true}})
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeTrailer reports whether line is a trailer line, and its payload
// when it is.
func DecodeTrailer(line []byte) (*StreamTrailer, bool) {
	var tl trailerLine
	if err := json.Unmarshal(line, &tl); err != nil || tl.Trailer == nil {
		return nil, false
	}
	return tl.Trailer, true
}

// StreamDecoder reads an NDJSON response: header, then records, then the
// completion trailer. It validates the framing as it goes and refuses
// trailerless streams.
type StreamDecoder struct {
	sc      *bufio.Scanner
	header  StreamHeader
	trailer *StreamTrailer
	seen    int
}

// NewStreamDecoder reads the header line from r.
func NewStreamDecoder(r io.Reader) (*StreamDecoder, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, errors.New("api: empty NDJSON stream")
	}
	var h StreamHeader
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("api: bad NDJSON header: %w", err)
	}
	return &StreamDecoder{sc: sc, header: h}, nil
}

// Header returns the stream header.
func (d *StreamDecoder) Header() StreamHeader { return d.header }

// Next returns the next record. ok is false when the stream is done: the
// trailer was reached (err nil, Trailer non-nil) or the stream is invalid
// — truncated without a trailer (ErrTruncated), or carrying a trailer
// that disagrees with the records actually streamed.
func (d *StreamDecoder) Next() (rec metrics.Record, ok bool, err error) {
	if !d.sc.Scan() {
		if err := d.sc.Err(); err != nil {
			return rec, false, err
		}
		return rec, false, ErrTruncated
	}
	line := d.sc.Bytes()
	if tr, isTrailer := DecodeTrailer(line); isTrailer {
		if !tr.Complete || tr.Points != d.seen {
			return rec, false, fmt.Errorf("api: trailer (points=%d complete=%v) disagrees with %d streamed records",
				tr.Points, tr.Complete, d.seen)
		}
		d.trailer = tr
		return rec, false, nil
	}
	if err := json.Unmarshal(line, &rec); err != nil {
		return rec, false, fmt.Errorf("api: bad record line: %w", err)
	}
	d.seen++
	return rec, true, nil
}

// Trailer returns the completion trailer, non-nil only after Next reported
// a clean end of stream.
func (d *StreamDecoder) Trailer() *StreamTrailer { return d.trailer }
