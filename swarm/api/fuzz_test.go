// Fuzz coverage for the two decode surfaces that consume bytes from the
// network: the error envelope and the NDJSON stream framing. Both must
// hold the same contract for arbitrary input — typed results or typed
// errors, never a panic, and invariants a caller can rely on blindly
// (DecodeError never nil, a nil-error stream always trailer-terminated).
package api

import (
	"bytes"
	"net/http"
	"testing"
)

func FuzzDecodeError(f *testing.F) {
	f.Add(400, []byte(`{"error":{"code":"bad_request","message":"x","retryable":false}}`))
	f.Add(429, []byte(`{"error":{"code":"overloaded","message":"busy","retryable":true}}`))
	f.Add(503, []byte(`plain text from a proxy`))
	f.Add(404, []byte(``))
	f.Add(500, []byte(`{"error":null}`))
	f.Add(500, []byte(`{"error":{}}`))
	f.Add(200, []byte(`{"error":{"code":"`))
	f.Add(999, []byte(`\xff\xfe garbage`))

	f.Fuzz(func(t *testing.T, status int, body []byte) {
		e := DecodeError(status, body)
		if e == nil {
			t.Fatal("DecodeError returned nil")
		}
		if e.Code == "" {
			t.Fatalf("DecodeError(%d, %q) produced an empty code", status, body)
		}
		// Synthesized errors must track the retryability of their code so
		// routing layers behave the same for enveloped and degraded bodies.
		if !bytes.Contains(body, []byte(`"code"`)) {
			switch status {
			case http.StatusServiceUnavailable, http.StatusTooManyRequests:
				if !e.Retryable {
					t.Fatalf("status %d synthesized non-retryable %q", status, e.Code)
				}
			}
		}
		// The error must survive the wire round-trip it came from.
		if e.Error() == "" || e.HTTPStatus() < 100 || e.HTTPStatus() > 599 {
			t.Fatalf("degenerate error: %+v status=%d", e, e.HTTPStatus())
		}
	})
}

func FuzzStreamDecoder(f *testing.F) {
	head := `{"schema":"v2","fields":["bench"],"points":2}` + "\n"
	rec := `{"labels":{"bench":"des"},"stats":{}}` + "\n"
	trailer := `{"trailer":{"points":2,"complete":true}}` + "\n"
	f.Add([]byte(head + rec + rec + trailer))             // complete
	f.Add([]byte(head + rec))                             // truncated
	f.Add([]byte(head + rec + rec))                       // trailerless
	f.Add([]byte(head + rec + trailer))                   // trailer disagrees
	f.Add([]byte(head + "{not json\n" + trailer))         // corrupt record
	f.Add([]byte(""))                                     // empty
	f.Add([]byte("\n\n\n"))                               // blank lines
	f.Add([]byte(`{"trailer":{"complete":true}}` + "\n")) // trailer as header
	f.Add([]byte(head + trailer + rec))                   // records after trailer

	f.Fuzz(func(t *testing.T, stream []byte) {
		dec, err := NewStreamDecoder(bytes.NewReader(stream))
		if err != nil {
			return // typed rejection at the header is a valid outcome
		}
		records := 0
		for {
			_, ok, err := dec.Next()
			if err != nil {
				if dec.Trailer() != nil {
					t.Fatalf("Next errored (%v) after a clean trailer", err)
				}
				return // typed truncation/corruption, never a panic
			}
			if !ok {
				break
			}
			records++
			if records > 1<<20 {
				t.Fatal("decoder emitted unbounded records from a bounded stream")
			}
		}
		// A nil-error end of stream is the decoder's completeness claim:
		// the trailer must exist, agree, and say complete.
		tr := dec.Trailer()
		if tr == nil || !tr.Complete || tr.Points != records {
			t.Fatalf("clean end with trailer %+v after %d records", tr, records)
		}
	})
}
