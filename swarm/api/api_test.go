package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"swarmhints/internal/metrics"
)

// TestErrorEnvelopeRoundTrip pins the envelope wire shape: WriteError's
// bytes decode back to the same code, message, retryability, and status.
func TestErrorEnvelopeRoundTrip(t *testing.T) {
	for _, code := range []Code{
		CodeBadRequest, CodeUnknownBench, CodeUnknownSched, CodeUnknownScale,
		CodeUnknownFormat, CodeUnknownExperiment, CodeBadCores,
		CodeShuttingDown, CodeUnavailable, CodeInternal,
	} {
		e := Errorf(code, "boom %d", 7)
		rr := httptest.NewRecorder()
		WriteError(rr, e)
		if rr.Code != e.HTTPStatus() {
			t.Errorf("%s: wrote status %d, want %d", code, rr.Code, e.HTTPStatus())
		}
		got := DecodeError(rr.Code, bytes.TrimSpace(rr.Body.Bytes()))
		if got.Code != e.Code || got.Message != e.Message || got.Retryable != e.Retryable {
			t.Errorf("%s: round-trip %+v, want %+v", code, got, e)
		}
	}
	// Only instance-bound failures are retryable.
	for code, want := range map[Code]bool{
		CodeShuttingDown: true, CodeUnavailable: true,
		CodeInternal: false, CodeBadRequest: false, CodeUnknownExperiment: false,
	} {
		if got := Errorf(code, "x").Retryable; got != want {
			t.Errorf("%s retryable = %v, want %v", code, got, want)
		}
	}
}

// TestDecodeErrorPlainTextFallback: a body that is not an envelope (an
// intermediary proxy, say) still yields a routable Error.
func TestDecodeErrorPlainTextFallback(t *testing.T) {
	cases := []struct {
		status    int
		code      Code
		retryable bool
	}{
		{400, CodeBadRequest, false},
		{404, CodeUnknownExperiment, false},
		{503, CodeShuttingDown, true},
		{500, CodeInternal, false},
	}
	for _, tc := range cases {
		e := DecodeError(tc.status, []byte("gateway timeout\n"))
		if e.Code != tc.code || e.Retryable != tc.retryable {
			t.Errorf("status %d: got (%s, retryable=%v), want (%s, %v)",
				tc.status, e.Code, e.Retryable, tc.code, tc.retryable)
		}
		if !strings.Contains(e.Message, "gateway timeout") {
			t.Errorf("status %d: fallback message lost the body: %q", tc.status, e.Message)
		}
	}
}

func TestUnknownFormatListsSupported(t *testing.T) {
	e := UnknownFormat("xml", SweepFormats)
	if e.Code != CodeUnknownFormat {
		t.Fatalf("code = %s, want %s", e.Code, CodeUnknownFormat)
	}
	if want := `unknown format "xml" (have ndjson, json, csv)`; e.Message != want {
		t.Fatalf("message = %q, want %q", e.Message, want)
	}
}

func TestAsErrorSynthesizesUnavailable(t *testing.T) {
	plain := AsError(errors.New("connection refused"))
	if plain.Code != CodeUnavailable || !plain.Retryable {
		t.Fatalf("transport error mapped to %+v, want retryable unavailable", plain)
	}
	orig := Errorf(CodeBadCores, "nope")
	if got := AsError(fmt.Errorf("wrapped: %w", orig)); got != orig {
		t.Fatalf("AsError lost the wrapped *Error: %+v", got)
	}
}

// testRecord builds a deterministic record for stream tests.
func testRecord(i int) metrics.Record {
	return metrics.Record{
		Labels:   map[string]string{"bench": "des", "cores": fmt.Sprint(i)},
		Snapshot: &metrics.Snapshot{Cycles: uint64(100 + i), Cores: 1, NumTiles: 1},
	}
}

// encodeStream assembles a full framed stream; trailer optional.
func encodeStream(t *testing.T, n int, withTrailer bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	h, err := EncodeHeader(StreamHeader{Schema: metrics.SchemaVersion, Fields: []string{"bench", "cores"}, Points: n})
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(h)
	for i := 0; i < n; i++ {
		line, err := EncodeRecord(testRecord(i))
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
	}
	if withTrailer {
		tr, err := EncodeTrailer(n)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(tr)
	}
	return buf.Bytes()
}

func TestStreamDecoderCompleteStream(t *testing.T) {
	dec, err := NewStreamDecoder(bytes.NewReader(encodeStream(t, 3, true)))
	if err != nil {
		t.Fatal(err)
	}
	if h := dec.Header(); h.Points != 3 || h.Schema != metrics.SchemaVersion {
		t.Fatalf("header = %+v", h)
	}
	var n int
	for {
		rec, ok, err := dec.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if rec.Labels["cores"] != fmt.Sprint(n) {
			t.Fatalf("record %d out of order: %v", n, rec.Labels)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("decoded %d records, want 3", n)
	}
	if tr := dec.Trailer(); tr == nil || !tr.Complete || tr.Points != 3 {
		t.Fatalf("trailer = %+v, want complete/3", tr)
	}
}

func TestStreamDecoderRejectsTruncated(t *testing.T) {
	dec, err := NewStreamDecoder(bytes.NewReader(encodeStream(t, 3, false)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok, err := dec.Next(); err != nil || !ok {
			t.Fatalf("record %d: ok=%v err=%v", i, ok, err)
		}
	}
	if _, ok, err := dec.Next(); ok || !errors.Is(err, ErrTruncated) {
		t.Fatalf("trailerless end: ok=%v err=%v, want ErrTruncated", ok, err)
	}
	if dec.Trailer() != nil {
		t.Fatal("truncated stream still reports a trailer")
	}
}

func TestStreamDecoderRejectsLyingTrailer(t *testing.T) {
	var buf bytes.Buffer
	h, _ := EncodeHeader(StreamHeader{Schema: metrics.SchemaVersion, Points: 2})
	buf.Write(h)
	line, _ := EncodeRecord(testRecord(0))
	buf.Write(line)
	tr, _ := EncodeTrailer(2) // claims 2 points, streamed 1
	buf.Write(tr)
	dec, err := NewStreamDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := dec.Next(); err != nil || !ok {
		t.Fatalf("record: ok=%v err=%v", ok, err)
	}
	if _, ok, err := dec.Next(); ok || err == nil {
		t.Fatalf("disagreeing trailer accepted: ok=%v err=%v", ok, err)
	}
}

// TestClientSweepRejectsTrailerlessStream is the satellite contract: a
// server that dies mid-sweep (stream cut before the trailer) must surface
// as ErrTruncated from Client.Sweep, never as a silently short result.
func TestClientSweepRejectsTrailerlessStream(t *testing.T) {
	for _, withTrailer := range []bool{true, false} {
		stream := encodeStream(t, 2, withTrailer)
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			_, _ = w.Write(stream)
		}))
		c := NewClient(ts.URL, nil)
		var n int
		_, err := c.Sweep(context.Background(), SweepRequest{}, func(metrics.Record) error {
			n++
			return nil
		})
		ts.Close()
		if withTrailer {
			if err != nil || n != 2 {
				t.Fatalf("complete stream: n=%d err=%v", n, err)
			}
		} else if !errors.Is(err, ErrTruncated) {
			t.Fatalf("trailerless stream: err=%v, want ErrTruncated", err)
		}
	}
}

// TestClientSurfacesServerEnvelope: a server-side envelope comes back as
// the same *Error, code and retryability intact.
func TestClientSurfacesServerEnvelope(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, Errorf(CodeUnknownBench, "unknown benchmark %q", "nope"))
	}))
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	_, err := c.Run(context.Background(), Point{Bench: "nope", Sched: "hints", Cores: 1}.Run("tiny", 7))
	ae := AsError(err)
	if ae.Code != CodeUnknownBench || ae.Retryable {
		t.Fatalf("client error = %+v, want non-retryable unknown_bench", ae)
	}
}

// TestPointRunCarriesSeed: the per-point request a proxy builds pins the
// resolved seed explicitly, so replicas cannot re-default it.
func TestPointRunCarriesSeed(t *testing.T) {
	rr := Point{Bench: "des", Sched: "hints", Cores: 4}.Run("tiny", 42)
	b, err := json.Marshal(rr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"seed":42`)) {
		t.Fatalf("run request does not pin the seed: %s", b)
	}
}
