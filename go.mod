module swarmhints

go 1.22
