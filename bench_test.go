// Package swarmhints_test hosts one testing.B benchmark per table and
// figure of the paper's evaluation (see DESIGN.md's per-experiment index),
// plus engine hot-path micro-benchmarks (allocs/op on the enqueue/commit
// path) and a sweep-level wall-clock benchmark over internal/runner.
// Each figure benchmark regenerates its experiment at Tiny scale with a
// reduced core sweep so `go test -bench=.` completes in minutes; use
// `go run ./cmd/experiments -scale small` (or full) for the recorded
// EXPERIMENTS.md numbers.
package swarmhints_test

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"testing"
	"time"

	"swarmhints/internal/bench"
	"swarmhints/internal/calq"
	"swarmhints/internal/conflict"
	"swarmhints/internal/exp"
	"swarmhints/internal/mem"
	"swarmhints/internal/obs"
	"swarmhints/internal/runner"
	"swarmhints/internal/task"
	"swarmhints/swarm"
)

func benchRunner() *exp.Runner {
	o := exp.DefaultOptions(bench.Tiny)
	o.Cores = []int{1, 4, 16, 64}
	return exp.NewRunner(o)
}

func runExperiment(b *testing.B, fn func(context.Context, *exp.Runner, io.Writer) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		if err := fn(context.Background(), r, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table I (benchmark inventory, 1-core
// run-times, task functions, hint patterns).
func BenchmarkTable1(b *testing.B) { runExperiment(b, exp.Table1) }

// BenchmarkFig2 regenerates Fig. 2 (des under all four schedulers plus its
// cycle breakdown).
func BenchmarkFig2(b *testing.B) { runExperiment(b, exp.Fig2) }

// BenchmarkFig3 regenerates Fig. 3 (classification of memory accesses).
func BenchmarkFig3(b *testing.B) { runExperiment(b, exp.Fig3) }

// BenchmarkFig4 regenerates Fig. 4 (Random/Stealing/Hints speedups for all
// nine benchmarks).
func BenchmarkFig4(b *testing.B) { runExperiment(b, exp.Fig4) }

// BenchmarkFig5 regenerates Fig. 5 (cycle and NoC traffic breakdowns).
func BenchmarkFig5(b *testing.B) { runExperiment(b, exp.Fig5) }

// BenchmarkFig6 regenerates Fig. 6 (coarse- vs fine-grain access
// classification).
func BenchmarkFig6(b *testing.B) { runExperiment(b, exp.Fig6) }

// BenchmarkFig7 regenerates Fig. 7 (coarse- vs fine-grain speedups).
func BenchmarkFig7(b *testing.B) { runExperiment(b, exp.Fig7) }

// BenchmarkFig8 regenerates Fig. 8 (fine-grain cycle and traffic
// breakdowns).
func BenchmarkFig8(b *testing.B) { runExperiment(b, exp.Fig8) }

// BenchmarkFig10 regenerates Fig. 10 (LBHints speedups on all benchmarks).
func BenchmarkFig10(b *testing.B) { runExperiment(b, exp.Fig10) }

// BenchmarkFig11 regenerates Fig. 11 (cycle breakdowns under LBHints).
func BenchmarkFig11(b *testing.B) { runExperiment(b, exp.Fig11) }

// BenchmarkLBProxy regenerates the Sec. VI-A load-signal ablation
// (committed cycles vs idle-task counts).
func BenchmarkLBProxy(b *testing.B) { runExperiment(b, exp.LBProxy) }

// BenchmarkSummary regenerates the Sec. VI-B aggregate numbers (gmean
// speedups, wasted-work and traffic reductions).
func BenchmarkSummary(b *testing.B) { runExperiment(b, exp.Summary) }

// treeProgram builds a program whose root fans out a binary tree of the
// given depth; each leaf read-modify-writes a private word. With 2^depth
// leaves and 2^(depth+1)-1 tasks total, the run is dominated by the engine's
// enqueue → dispatch → commit path, making it the micro-benchmark for
// per-task allocation overhead.
func treeProgram(depth int) *swarm.Program {
	p := swarm.NewProgram()
	leaves := uint64(1) << uint(depth)
	slots := p.Mem.AllocWords(leaves)
	var fn swarm.FnID
	fn = p.Register("node", func(c *swarm.Ctx) {
		d, idx := c.Arg(0), c.Arg(1)
		if d == 0 {
			addr := slots + idx*8
			c.Write(addr, c.Read(addr)+1)
			return
		}
		c.Enqueue(fn, c.TS()+1, slots+idx*16, d-1, idx*2)
		c.EnqueueSameHint(fn, c.TS()+1, d-1, idx*2+1)
	})
	p.EnqueueRoot(fn, 0, slots, uint64(depth), 0)
	return p
}

// engineBench runs one engine-level micro-benchmark configuration and
// reports allocations per simulated task, the number every hot-path
// optimization PR must not regress.
func engineBench(b *testing.B, build func() *swarm.Program, cores int, kind swarm.SchedKind) {
	b.Helper()
	cfg := swarm.ScaledConfig().WithCores(cores)
	cfg.Scheduler = kind
	b.ReportAllocs()
	b.ResetTimer()
	var tasks uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := build()
		b.StartTimer()
		st, err := p.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tasks += st.CommittedTasks
	}
	b.ReportMetric(float64(tasks)/float64(b.N), "tasks/op")
}

// BenchmarkEngineEnqueueCommit measures the conflict-free enqueue/commit
// throughput path: a 16K-task fan-out tree under Hints on 16 cores.
func BenchmarkEngineEnqueueCommit(b *testing.B) {
	engineBench(b, func() *swarm.Program { return treeProgram(13) }, 16, swarm.Hints)
}

// BenchmarkEngineContended measures the abort/retry path: 4096 same-hint
// increments of one shared counter, which serializes through conflict
// detection and commit-queue pressure.
func BenchmarkEngineContended(b *testing.B) {
	build := func() *swarm.Program {
		p := swarm.NewProgram()
		ctr := p.Mem.AllocWords(1)
		var fn swarm.FnID
		fn = p.Register("inc", func(c *swarm.Ctx) {
			c.Write(ctr, c.Read(ctr)+1)
		})
		for i := 0; i < 4096; i++ {
			p.EnqueueRoot(fn, uint64(i), ctr)
		}
		return p
	}
	engineBench(b, build, 16, swarm.Hints)
}

// BenchmarkConflictIndex measures the conflict-detection structure in
// isolation: a rolling window of tasks registering reads and writes over a
// shared address pool, queried (hit and miss addresses) and removed — the
// register/query/remove cycle every simulated access pays.
func BenchmarkConflictIndex(b *testing.B) {
	const (
		window  = 256 // live tasks
		addrs   = 1024
		perTask = 8
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ix := conflict.NewIndex(nil)
		tasks := make([]*task.Task, window)
		for j := range tasks {
			t := task.NewTask(uint64(j+1), 0, uint64(j), task.HintNone, 0, nil)
			t.State = task.Running
			tasks[j] = t
		}
		b.StartTimer()
		for round := 0; round < 64; round++ {
			for j, t := range tasks {
				// Deterministic pseudo-random-ish address pattern.
				base := uint64((round*31 + j*perTask) % addrs)
				for k := 0; k < perTask; k++ {
					a := 0x10000 + ((base + uint64(k*37)) % addrs * 8)
					if k%2 == 0 {
						ix.OnRead(t, a)
						t.Reads = append(t.Reads, a)
					} else {
						ix.OnWrite(t, a)
						t.Writes = append(t.Writes, a)
					}
					ix.LaterWriters(a, t.Ord(), t, 0)
					// Miss query: address outside the registered pool,
					// the pre-filter's fast path.
					ix.LaterAccessors(0x900000+a, t.Ord(), t, 0)
				}
			}
			for _, t := range tasks {
				ix.Remove(t)
				t.ResetAttempt()
			}
		}
	}
}

// BenchmarkMemLoadStore measures the sparse-memory fast path: strided loads
// and stores sweeping a 4 MB working set (page-local runs mixed with page
// crossings), the two operations every simulated memory access performs.
func BenchmarkMemLoadStore(b *testing.B) {
	const words = 1 << 19 // 4 MB
	m := mem.New()
	base := m.AllocWords(words)
	for w := uint64(0); w < words; w += 64 {
		m.StoreRaw(base+w*8, w)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		for w := uint64(0); w < words; w++ {
			a := base + w*8
			sink += m.Load(a)
			if w%3 == 0 {
				m.StoreRaw(a, sink)
			}
		}
	}
	if sink == 1 {
		b.Fatal("impossible; defeats dead-code elimination")
	}
}

// BenchmarkEventQueue measures the calendar queue under the engine's event
// pattern: a few hundred pending events clustered within a few hundred
// cycles of now, popped and replaced one wake-up at a time, with an
// occasional far-future straggler exercising the overflow heap.
func BenchmarkEventQueue(b *testing.B) {
	const (
		pending = 512
		churn   = 1 << 16
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := calq.New[int](1024)
		rng := uint64(0x9e3779b97f4a7c15)
		next := func() uint64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return rng >> 16
		}
		now, seq := uint64(0), uint64(0)
		for j := 0; j < pending; j++ {
			seq++
			q.Push(now+next()%400, seq, j)
		}
		for j := 0; j < churn; j++ {
			e := q.Pop()
			now = e.Time
			seq++
			d := next() % 400
			if next()%64 == 0 {
				d = 2048 + next()%8192 // beyond the window: overflow path
			}
			q.Push(now+d, seq, j)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
}

// BenchmarkSpillSelect measures the coalescer's victim selection: a full
// tile queue repeatedly spilling its latest-order batch to memory and
// pulling it back, the spill/refill cycle a saturated tile pays. Selection
// reads the order-sorted idle ring from the back, so each firing costs
// O(batch), not a walk of the whole idle set.
func BenchmarkSpillSelect(b *testing.B) {
	const (
		capacity = 256
		batch    = 15
		rounds   = 64
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		q := task.NewQueue(0, capacity, 64)
		for j := 0; j < capacity; j++ {
			q.Enqueue(task.NewTask(uint64(j+1), 0, uint64(j), task.HintNone, 0, nil))
		}
		b.StartTimer()
		for round := 0; round < rounds; round++ {
			if len(q.Spill(batch)) == 0 {
				b.Fatal("nothing spilled from a full queue")
			}
			if len(q.Refill(batch)) == 0 {
				b.Fatal("nothing refilled")
			}
		}
	}
}

// BenchmarkSeedMerge measures the seed-replica merge fold: 16 per-seed
// results of one Tiny configuration collapsed into the aggregate record
// (counter sums, per-tile adds, derived recompute, cross-seed dispersion
// summary). The per-seed inputs are simulated once outside the timed
// region, so the number is the merge itself, not the simulations.
func BenchmarkSeedMerge(b *testing.B) {
	const seeds = 16
	p := exp.Point{Name: "des", Kind: swarm.Hints, Cores: 4}
	per := make([]*swarm.Stats, seeds)
	for i, s := range exp.ReplicaSeeds(7, seeds) {
		st, err := exp.RunPoint(p, bench.Tiny, s, false)
		if err != nil {
			b.Fatal(err)
		}
		per[i] = st
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := swarm.MergeStats(per); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsDisabled pins the disabled-path cost of the observability
// layer (internal/obs): one iteration walks every instrumentation shape a
// request path carries — StartSpan with attributes, a Timer, a direct
// histogram observation, and the span End — with observability switched
// off. The contract is the same as internal/fault's: each point costs one
// atomic load and zero allocations, so allocs/op must stay 0 (gated by
// benchgate against BENCH_baseline.json; ns/op is excluded from the gate
// as sub-nanosecond-scale noise).
func BenchmarkObsDisabled(b *testing.B) {
	obs.SetEnabled(false)
	h := obs.NewHistogram(nil)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sctx, sp := obs.StartSpan(ctx, "bench.op")
		sp.SetAttr("key", "value")
		t := obs.StartTimer()
		h.Observe(time.Millisecond)
		t.Observe(h)
		sp.End()
		if sctx != ctx {
			b.Fatal("disabled StartSpan must return the caller's context unchanged")
		}
	}
	if h.Count() != 0 {
		b.Fatal("disabled observations were recorded")
	}
}

// trajectoryPoint is one recorded perf-trajectory measurement, written as
// BENCH_<rev>.json by TestBenchTrajectory (see README, "Perf trajectory").
type trajectoryPoint struct {
	Schema     string          `json:"schema"`
	Rev        string          `json:"rev"`
	Benchmarks []trajectoryRow `json:"benchmarks"`
}

type trajectoryRow struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	TasksPerOp  float64 `json:"tasksPerOp,omitempty"`
}

// TestBenchTrajectory records one perf-trajectory point: it runs the engine
// hot-path micro-benchmarks through testing.Benchmark and writes their
// ns/op and allocs/op to the JSON file named by SWARMHINTS_BENCH_JSON
// (conventionally BENCH_<rev>.json, with the revision from SWARMHINTS_REV).
// Skipped unless the env var is set, so `go test` stays side-effect free;
// CI runs it on every push and uploads the file as a workflow artifact.
func TestBenchTrajectory(t *testing.T) {
	path := os.Getenv("SWARMHINTS_BENCH_JSON")
	if path == "" {
		t.Skip("set SWARMHINTS_BENCH_JSON=BENCH_<rev>.json to record a trajectory point")
	}
	rev := os.Getenv("SWARMHINTS_REV")
	if rev == "" {
		rev = "unversioned"
	}
	point := trajectoryPoint{Schema: "swarmhints.bench.v1", Rev: rev}
	for _, b := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"EngineEnqueueCommit", BenchmarkEngineEnqueueCommit},
		{"EngineContended", BenchmarkEngineContended},
		{"EventQueue", BenchmarkEventQueue},
		{"SpillSelect", BenchmarkSpillSelect},
		{"ConflictIndex", BenchmarkConflictIndex},
		{"MemLoadStore", BenchmarkMemLoadStore},
		{"SweepRunner", BenchmarkSweepRunner},
		{"SeedMerge", BenchmarkSeedMerge},
		{"ObsDisabled", BenchmarkObsDisabled},
	} {
		res := testing.Benchmark(b.fn)
		point.Benchmarks = append(point.Benchmarks, trajectoryRow{
			Name:        b.name,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			TasksPerOp:  res.Extra["tasks/op"],
		})
	}
	data, err := json.MarshalIndent(point, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("trajectory point for rev %s written to %s", rev, path)
}

// BenchmarkSweepRunner measures sweep-level wall clock through
// internal/runner: the bfs benchmark at Tiny scale across a core sweep,
// executed by the worker pool at GOMAXPROCS parallelism.
func BenchmarkSweepRunner(b *testing.B) {
	coreSweep := []int{1, 4, 16, 64}
	jobs := make([]runner.Job, len(coreSweep))
	for i, cores := range coreSweep {
		cores := cores
		jobs[i] = runner.Job{
			Name: "bfs",
			Run: func(seed int64) (*swarm.Stats, error) {
				inst, err := bench.Build("bfs", bench.Tiny, seed)
				if err != nil {
					return nil, err
				}
				cfg := swarm.ScaledConfig().WithCores(cores)
				cfg.Scheduler = swarm.Hints
				return inst.Prog.Run(cfg)
			},
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := runner.Sweep(context.Background(), jobs, runner.Options{Seed: 7})
		if err := runner.FirstErr(results); err != nil {
			b.Fatal(err)
		}
	}
}
