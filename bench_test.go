// Package swarmhints_test hosts one testing.B benchmark per table and
// figure of the paper's evaluation (see DESIGN.md's per-experiment index).
// Each benchmark regenerates its experiment at Tiny scale with a reduced
// core sweep so `go test -bench=.` completes in minutes; use
// `go run ./cmd/experiments -scale small` (or full) for the recorded
// EXPERIMENTS.md numbers.
package swarmhints_test

import (
	"io"
	"testing"

	"swarmhints/internal/bench"
	"swarmhints/internal/exp"
)

func benchRunner() *exp.Runner {
	o := exp.DefaultOptions(bench.Tiny)
	o.Cores = []int{1, 4, 16, 64}
	return exp.NewRunner(o)
}

func runExperiment(b *testing.B, fn func(*exp.Runner, io.Writer) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		if err := fn(r, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table I (benchmark inventory, 1-core
// run-times, task functions, hint patterns).
func BenchmarkTable1(b *testing.B) { runExperiment(b, exp.Table1) }

// BenchmarkFig2 regenerates Fig. 2 (des under all four schedulers plus its
// cycle breakdown).
func BenchmarkFig2(b *testing.B) { runExperiment(b, exp.Fig2) }

// BenchmarkFig3 regenerates Fig. 3 (classification of memory accesses).
func BenchmarkFig3(b *testing.B) { runExperiment(b, exp.Fig3) }

// BenchmarkFig4 regenerates Fig. 4 (Random/Stealing/Hints speedups for all
// nine benchmarks).
func BenchmarkFig4(b *testing.B) { runExperiment(b, exp.Fig4) }

// BenchmarkFig5 regenerates Fig. 5 (cycle and NoC traffic breakdowns).
func BenchmarkFig5(b *testing.B) { runExperiment(b, exp.Fig5) }

// BenchmarkFig6 regenerates Fig. 6 (coarse- vs fine-grain access
// classification).
func BenchmarkFig6(b *testing.B) { runExperiment(b, exp.Fig6) }

// BenchmarkFig7 regenerates Fig. 7 (coarse- vs fine-grain speedups).
func BenchmarkFig7(b *testing.B) { runExperiment(b, exp.Fig7) }

// BenchmarkFig8 regenerates Fig. 8 (fine-grain cycle and traffic
// breakdowns).
func BenchmarkFig8(b *testing.B) { runExperiment(b, exp.Fig8) }

// BenchmarkFig10 regenerates Fig. 10 (LBHints speedups on all benchmarks).
func BenchmarkFig10(b *testing.B) { runExperiment(b, exp.Fig10) }

// BenchmarkFig11 regenerates Fig. 11 (cycle breakdowns under LBHints).
func BenchmarkFig11(b *testing.B) { runExperiment(b, exp.Fig11) }

// BenchmarkLBProxy regenerates the Sec. VI-A load-signal ablation
// (committed cycles vs idle-task counts).
func BenchmarkLBProxy(b *testing.B) { runExperiment(b, exp.LBProxy) }

// BenchmarkSummary regenerates the Sec. VI-B aggregate numbers (gmean
// speedups, wasted-work and traffic reductions).
func BenchmarkSummary(b *testing.B) { runExperiment(b, exp.Summary) }
