// Quickstart: the smallest complete swarmhints program.
//
// A bank applies a stream of timestamped account updates (interest, fees).
// Each update is one speculative task touching exactly one account, and its
// spatial hint *is* the account id — the paper's canonical pattern: tasks
// likely to access the same data get the same hint, so the hardware runs
// them on the same tile and serializes them instead of letting them conflict
// across the chip. Run it and compare the Random-vs-Hints statistics.
package main

import (
	"fmt"
	"log"

	"swarmhints/swarm"
)

func main() {
	const (
		accounts = 512
		updates  = 4000
		cores    = 64
	)
	for _, kind := range []swarm.SchedKind{swarm.Random, swarm.Hints} {
		p := swarm.NewProgram()

		// Balances live in simulated memory; every account starts at 100.
		balances := p.Mem.AllocWords(accounts)
		for a := uint64(0); a < accounts; a++ {
			p.Mem.StoreRaw(balances+a*8, 100)
		}

		update := p.Register("update", func(c *swarm.Ctx) {
			acct, delta := c.Arg(0), c.Arg(1)
			c.Write(balances+acct*8, c.Read(balances+acct*8)+delta)
		})

		// A deterministic pseudo-random update stream with popular accounts
		// (skew is what makes conflicts frequent and spatial hints matter).
		x := uint64(42)
		var wantTotal uint64 = accounts * 100
		for i := uint64(0); i < updates; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			acct := (x >> 33) % accounts
			if x%3 == 0 {
				acct %= 16 // hot accounts
			}
			delta := x >> 58
			wantTotal += delta
			// Timestamp = arrival order; hint = the account the task updates.
			p.EnqueueRoot(update, i, acct, acct, delta)
		}

		cfg := swarm.ScaledConfig().WithCores(cores)
		cfg.Scheduler = kind
		st, err := p.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}

		var total uint64
		for a := uint64(0); a < accounts; a++ {
			total += p.Mem.Load(balances + a*8)
		}
		fmt.Printf("%-8v cycles=%-8d aborts=%-6d traffic=%-8d correct=%v\n",
			kind, st.Cycles, st.AbortedAttempts, st.TotalTraffic(), total == wantTotal)
	}
	fmt.Println("\nSame hint -> same tile, serialized: conflicts become locality.")
}
