// Circuitsim: discrete-event simulation of a digital circuit — the paper's
// des benchmark and its Listing 1 running example — under all four
// schedulers, including the data-centric load balancer of Sec. VI.
//
// Each task simulates one input toggle at one gate and enqueues toggle
// events for the gate's fanout at ts+delay. The spatial hint is the gate
// ID, so all events of a gate execute on one tile, serially.
package main

import (
	"fmt"
	"log"

	"swarmhints/internal/bench"
	"swarmhints/swarm"
)

func main() {
	const cores = 64
	fmt.Println("des: carry-save adder array, event-driven gate simulation")
	fmt.Printf("%-10s %10s %10s %10s %10s\n", "scheduler", "cycles", "aborts", "stalls", "traffic")
	var base uint64
	for _, kind := range []swarm.SchedKind{swarm.Random, swarm.Stealing, swarm.Hints, swarm.LBHints} {
		inst, err := bench.Build("des", bench.Small, 7)
		if err != nil {
			log.Fatal(err)
		}
		cfg := swarm.ScaledConfig().WithCores(cores)
		cfg.Scheduler = kind
		st, err := inst.Prog.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := inst.Validate(); err != nil {
			log.Fatalf("%v: %v", kind, err)
		}
		if base == 0 {
			base = st.Cycles
		}
		fmt.Printf("%-10v %10d %10d %10d %10d   (%.2fx vs Random)\n",
			kind, st.Cycles, st.AbortedAttempts, st.Breakdown.Stall, st.TotalTraffic(),
			float64(base)/float64(st.Cycles))
	}
	fmt.Println("\nAll four runs produce bit-identical gate outputs (validated against")
	fmt.Println("a serial event-driven reference), demonstrating that speculation only")
	fmt.Println("changes performance, never results.")
}
