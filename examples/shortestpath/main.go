// Shortestpath: the paper's motivating sssp workload (Listings 2 and 3),
// coarse-grain vs. fine-grain, on a synthetic road network.
//
// It builds the same road map twice, runs the CG version (each task relaxes
// all of its vertex's neighbors — multi-hint read-write data) and the FG
// version (each task sets only its own vertex's distance — single-hint
// read-write data), and prints how the restructuring changes aborts and
// traffic under hint-based scheduling, as in Sec. V of the paper.
package main

import (
	"fmt"
	"log"

	"swarmhints/internal/bench"
	"swarmhints/swarm"
)

func main() {
	const cores = 64
	for _, variant := range []string{"sssp", "sssp-fg"} {
		inst, err := bench.Build(variant, bench.Small, 7)
		if err != nil {
			log.Fatal(err)
		}
		cfg := swarm.ScaledConfig().WithCores(cores)
		cfg.Scheduler = swarm.Hints
		st, err := inst.Prog.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := inst.Validate(); err != nil {
			log.Fatalf("%s: %v", variant, err)
		}
		fmt.Printf("%-8s cycles=%-8d tasks=%-6d aborts=%-6d memTraffic=%-8d taskTraffic=%-8d (distances match Dijkstra)\n",
			variant, st.Cycles, st.CommittedTasks, st.AbortedAttempts, st.Traffic[0], st.Traffic[2])
	}
	fmt.Println("\nFG enqueues more tasks but localizes every distance write to one tile;")
	fmt.Println("with hints this trades cheap task messages for expensive conflicts (Sec. V).")
}
