// Database: an in-memory OLTP workload in the style of the paper's silo
// benchmark. Transactions are chains of tasks, one tuple access each, and
// every task's hint is the (table, primary key) pair — known at task
// creation even though the tuple's address would require an index traversal
// (Sec. III-C, "Abstract unique IDs").
//
// This example builds the TPC-C-like database, runs the same transaction
// stream under Random and Hints, and shows the abort and traffic gap.
package main

import (
	"fmt"
	"log"

	"swarmhints/internal/bench"
	"swarmhints/swarm"
)

func main() {
	const cores = 64
	fmt.Println("silo: TPC-C-like NewOrder/Payment mix, 4 warehouses")
	for _, kind := range []swarm.SchedKind{swarm.Random, swarm.Hints, swarm.LBHints} {
		inst, err := bench.Build("silo", bench.Small, 7)
		if err != nil {
			log.Fatal(err)
		}
		cfg := swarm.ScaledConfig().WithCores(cores)
		cfg.Scheduler = kind
		st, err := inst.Prog.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := inst.Validate(); err != nil {
			log.Fatalf("%v: %v", kind, err)
		}
		fmt.Printf("%-8v cycles=%-8d tasks=%-6d aborts=%-6d traffic=%-8d wasted=%.1f%%\n",
			kind, st.Cycles, st.CommittedTasks, st.AbortedAttempts, st.TotalTraffic(),
			100*st.WastedFraction())
	}
	fmt.Println("\nEvery run's final balances, stock levels, and order records are")
	fmt.Println("validated against serial execution of the same transaction stream.")
}
