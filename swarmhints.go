// Package swarmhints reproduces "Data-Centric Execution of Speculative
// Parallel Programs" (Jeffrey et al., MICRO 2016): a Swarm-style
// speculative task-parallel programming model with spatial hints, executed
// on a simulated tiled multicore.
//
// The public programming API lives in the swarm subpackage; the simulator,
// workloads, experiment harness, and parallel sweep runner live under
// internal/. This root package exists so the repository-level benchmarks in
// bench_test.go (one testing.B per paper table/figure) run under the module.
package swarmhints
