package swarmhints_test

import (
	"testing"

	"swarmhints/internal/bench"
	"swarmhints/swarm"
)

// runStats executes one benchmark configuration and returns its statistics.
func runStats(t *testing.T, name string, cores int, kind swarm.SchedKind) *swarm.Stats {
	t.Helper()
	inst, err := bench.Build(name, bench.Tiny, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := swarm.ScaledConfig().WithCores(cores)
	cfg.Scheduler = kind
	cfg.MaxCycles = 2_000_000_000
	st, err := inst.Prog.Run(cfg)
	if err != nil {
		t.Fatalf("%s/%v/%dc: %v", name, kind, cores, err)
	}
	if err := inst.Validate(); err != nil {
		t.Fatalf("%s/%v/%dc: %v", name, kind, cores, err)
	}
	return st
}

// invariantConfigs spans contended (des, kmeans), spill-heavy (1-core), and
// steal/LB configurations so every counter path is exercised.
var invariantConfigs = []struct {
	name  string
	cores int
	kind  swarm.SchedKind
}{
	{"bfs", 1, swarm.Random},
	{"sssp", 16, swarm.Hints},
	{"des", 16, swarm.Random},
	{"des", 64, swarm.LBHints},
	{"kmeans", 16, swarm.Hints},
	{"silo", 16, swarm.Stealing},
	{"mis", 16, swarm.Hints},
}

// TestCycleConservation is the core accounting invariant: commit, abort,
// stall, and empty cycles partition every core's time exactly, so their sum
// equals Cores×Cycles on every run. Spill cycles are coalescer work charged
// on top, so Breakdown.Total() exceeds the core total by exactly that much.
func TestCycleConservation(t *testing.T) {
	for _, c := range invariantConfigs {
		st := runStats(t, c.name, c.cores, c.kind)
		want := uint64(st.Cores) * st.Cycles
		if got := st.Breakdown.CoreTotal(); got != want {
			t.Errorf("%s/%v/%dc: CoreTotal %d != Cores×Cycles %d (diff %d)",
				c.name, c.kind, c.cores, got, want, int64(got)-int64(want))
		}
		if got := st.Breakdown.Total(); got != st.Breakdown.CoreTotal()+st.Breakdown.Spill {
			t.Errorf("%s/%v/%dc: Total %d != CoreTotal + Spill", c.name, c.kind, c.cores, got)
		}
	}
}

// TestPerTileSumsMatchAggregates checks the snapshot property of the
// metrics pipeline: every chip-wide Stats field equals the sum of its
// per-tile counters, for every counter the recorder carries.
func TestPerTileSumsMatchAggregates(t *testing.T) {
	for _, c := range invariantConfigs {
		st := runStats(t, c.name, c.cores, c.kind)
		var sum swarm.TileCounters
		for i := range st.Tiles {
			sum.Add(&st.Tiles[i])
		}
		b := st.Breakdown
		if sum.CommitCycles != b.Commit || sum.AbortCycles != b.Abort ||
			sum.SpillCycles != b.Spill || sum.StallCycles != b.Stall ||
			sum.EmptyCycles != b.Empty {
			t.Errorf("%s/%v/%dc: per-tile cycle sums diverge from Breakdown", c.name, c.kind, c.cores)
		}
		if sum.CommittedTasks != st.CommittedTasks || sum.AbortedAttempts != st.AbortedAttempts ||
			sum.SquashedTasks != st.SquashedTasks || sum.SpilledTasks != st.SpilledTasks ||
			sum.StolenTasks != st.StolenTasks || sum.EnqueuedTasks != st.EnqueuedTasks {
			t.Errorf("%s/%v/%dc: per-tile task counts diverge from aggregates", c.name, c.kind, c.cores)
		}
		if sum.Traffic != st.Traffic {
			t.Errorf("%s/%v/%dc: per-tile traffic %v != aggregate %v", c.name, c.kind, c.cores, sum.Traffic, st.Traffic)
		}
		if sum.L1Hits != st.Cache.L1Hits || sum.L2Hits != st.Cache.L2Hits ||
			sum.L3Hits != st.Cache.L3Hits || sum.MemAccesses != st.Cache.MemAccesses ||
			sum.RemoteForwards != st.Cache.RemoteForwards ||
			sum.Invalidations != st.Cache.Invalidations || sum.Writebacks != st.Cache.Writebacks {
			t.Errorf("%s/%v/%dc: per-tile cache counters diverge from aggregates", c.name, c.kind, c.cores)
		}
		if sum.Comparisons != st.Comparisons {
			t.Errorf("%s/%v/%dc: per-tile comparisons %d != aggregate %d",
				c.name, c.kind, c.cores, sum.Comparisons, st.Comparisons)
		}
		if len(st.Tiles) == 0 || st.Cores%len(st.Tiles) != 0 {
			t.Errorf("%s/%v/%dc: %d tiles for %d cores", c.name, c.kind, c.cores, len(st.Tiles), st.Cores)
		}
	}
}

// TestDerivedMetricEdgeCases pins the zero-value behavior of the derived
// metrics: no division by zero, well-defined empty results.
func TestDerivedMetricEdgeCases(t *testing.T) {
	var empty swarm.Stats
	if got := empty.WastedFraction(); got != 0 {
		t.Errorf("WastedFraction of empty stats = %f, want 0", got)
	}
	if got := empty.TotalTraffic(); got != 0 {
		t.Errorf("TotalTraffic of empty stats = %d, want 0", got)
	}
	if got := empty.LoadImbalance(); got != 0 {
		t.Errorf("LoadImbalance with no tiles = %f, want 0", got)
	}
	if got := empty.TrafficFraction(0); got != 0 {
		t.Errorf("TrafficFraction with no traffic = %f, want 0", got)
	}

	// All-idle tiles: committed cycles are zero everywhere.
	idle := swarm.Stats{Tiles: make([]swarm.TileCounters, 4)}
	if got := idle.LoadImbalance(); got != 0 {
		t.Errorf("LoadImbalance with zero committed cycles = %f, want 0", got)
	}

	// Single tile is perfectly balanced by definition.
	one := runStats(t, "sssp", 1, swarm.Random)
	if got := one.LoadImbalance(); got != 1 {
		t.Errorf("1-tile LoadImbalance = %f, want exactly 1", got)
	}

	// Fractions over all classes sum to 1 when there is traffic.
	st := runStats(t, "des", 16, swarm.Random)
	var fsum float64
	for c := 0; c < 4; c++ {
		fsum += st.TrafficFraction(c)
	}
	if fsum < 0.999 || fsum > 1.001 {
		t.Errorf("traffic fractions sum to %f", fsum)
	}
	// LoadImbalance is bounded by [1, tiles].
	if li := st.LoadImbalance(); li < 1 || li > float64(len(st.Tiles)) {
		t.Errorf("LoadImbalance %f outside [1, %d]", li, len(st.Tiles))
	}
}

// TestSnapshotMatchesStats checks the machine-readable snapshot agrees with
// the Stats it was taken from.
func TestSnapshotMatchesStats(t *testing.T) {
	st := runStats(t, "des", 16, swarm.Hints)
	sn := st.Snapshot()
	if sn.Cycles != st.Cycles || sn.Cores != st.Cores {
		t.Fatal("snapshot header diverges")
	}
	if sn.CommitCycles != st.Breakdown.Commit || sn.AbortCycles != st.Breakdown.Abort {
		t.Fatal("snapshot breakdown diverges")
	}
	if sn.TrafficTotal != st.TotalTraffic() {
		t.Fatal("snapshot traffic total diverges")
	}
	if sn.WastedFraction != st.WastedFraction() || sn.LoadImbalance != st.LoadImbalance() {
		t.Fatal("snapshot derived metrics diverge")
	}
	if len(sn.PerTile) != len(st.Tiles) {
		t.Fatal("snapshot per-tile count diverges")
	}
	// The snapshot owns its per-tile copy.
	sn.PerTile[0].CommitCycles++
	if sn.PerTile[0].CommitCycles == st.Tiles[0].CommitCycles {
		t.Fatal("snapshot aliases Stats.Tiles")
	}
}
