// Command experiments regenerates the paper's tables and figures
// (DESIGN.md, per-experiment index). Each experiment prints the same rows
// or series the paper reports, computed on the scaled synthetic inputs.
//
// Usage:
//
//	experiments -exp fig4 -scale small
//	experiments -exp all -scale tiny          # quick smoke of everything
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"swarmhints/internal/bench"
	"swarmhints/internal/exp"
)

func main() {
	var (
		expID     = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scaleName = flag.String("scale", "small", "input scale: tiny|small|full")
		seed      = flag.Int64("seed", 7, "workload seed")
		cores     = flag.String("cores", "", "comma-separated core sweep override, e.g. 1,16,256")
		list      = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Registry {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	scale := bench.Small
	switch strings.ToLower(*scaleName) {
	case "tiny":
		scale = bench.Tiny
	case "small":
		scale = bench.Small
	case "full":
		scale = bench.Full
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleName))
	}
	opt := exp.DefaultOptions(scale)
	opt.Seed = *seed
	if *cores != "" {
		opt.Cores = nil
		for _, part := range strings.Split(*cores, ",") {
			var c int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &c); err != nil {
				fatal(fmt.Errorf("bad -cores value %q", part))
			}
			opt.Cores = append(opt.Cores, c)
		}
	}
	runner := exp.NewRunner(opt)

	var todo []exp.Experiment
	if *expID == "all" {
		todo = exp.Registry
	} else {
		e, err := exp.Find(*expID)
		if err != nil {
			fatal(err)
		}
		todo = []exp.Experiment{e}
	}
	for _, e := range todo {
		start := time.Now()
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(runner, os.Stdout); err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Printf("--- %s done in %v ---\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
