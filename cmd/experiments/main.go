// Command experiments regenerates the paper's tables and figures
// (DESIGN.md, per-experiment index). Each experiment prints the same rows
// or series the paper reports, computed on the scaled synthetic inputs.
//
// Every experiment primes its full configuration grid through the parallel
// sweep runner (internal/runner), so independent simulations fan out across
// host cores; -parallel bounds the worker count. Results are byte-identical
// for every -parallel value, including 1.
//
// -format json|csv additionally exports every simulation point the selected
// experiments executed — per-tile and aggregate statistics labeled by
// (bench, sched, cores, profile, scale, seed), schema swarmhints.metrics.v1,
// sorted by configuration so the bytes are identical for every -parallel
// value. Without -out the export replaces the human tables on stdout; with
// -out FILE the tables keep stdout and the export goes to the file.
//
// Usage:
//
//	experiments -exp fig4 -scale small
//	experiments -exp all -scale tiny          # quick smoke of everything
//	experiments -exp all -parallel 8          # bound the worker pool
//	experiments -exp fig4 -format json        # machine-readable export
//	experiments -exp fig5 -format csv -out fig5.csv
//	experiments -exp all -store results.store # persist runs; later invocations reuse them
//	experiments -exp fig2 -seeds 8            # 8 seed replicas per point, merged with error bars
//	experiments -list
//
// -seeds N (> 1) runs every configuration point as N seed replicas
// (workload seeds derived from -seed) and caches/exports the merged record:
// counters summed, derived metrics recomputed, cross-seed dispersion in the
// snapshot's seedSummary block (schema swarmhints.metrics.v2). -seed-shards
// bounds how many shard jobs one point's replicas are split into; output is
// byte-identical for every -seed-shards and -parallel value. With -store,
// each replica persists under its ordinary per-seed key, so re-running with
// more seeds only executes the new ones.
//
// -store DIR adds the persistent result store (internal/store) under the
// in-memory cache: every simulation point is written through on first
// computation and served from disk on any later invocation — including by
// cmd/swarmsim and swarmd pointed at the same directory, which share the
// same canonical configuration keys. Exports stay byte-identical whether a
// point was computed or store-served.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"swarmhints/internal/cliutil"
	"swarmhints/internal/exp"
)

func main() {
	var (
		expID     = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scaleName = flag.String("scale", "small", "input scale: tiny|small|full")
		seed      = flag.Int64("seed", 7, "workload seed (base of the derived replica seeds when -seeds > 1)")
		seeds     = flag.Int("seeds", 1, "seed replicas per configuration point, merged into one record with cross-seed error bars (schema v2)")
		seedShard = flag.Int("seed-shards", 0, "shard jobs the -seeds replicas of one point are split into (0 = one per replica; any value is byte-identical)")
		cores     = flag.String("cores", "", "comma-separated core sweep override, e.g. 1,16,256")
		parallel  = flag.Int("parallel", 0, "simulation runs in flight at once (0 = GOMAXPROCS)")
		format    = flag.String("format", "", "machine-readable output: json|csv (default: human tables)")
		outFile   = flag.String("out", "", "write structured results to FILE (keeps human tables on stdout)")
		storeDir  = flag.String("store", "", "persistent result-store directory shared with swarmd/swarmsim (empty = no store)")
		storeMax  = flag.String("store-max-bytes", "", "result-store size cap, e.g. 512m or 2g (empty/0 = unbounded)")
		list      = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Registry {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	output, err := cliutil.ParseOutput(*format, *outFile)
	if err != nil {
		fatal(err)
	}
	scale, err := cliutil.ParseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	opt := exp.DefaultOptions(scale)
	opt.Seed = *seed
	opt.Seeds = *seeds
	opt.SeedShards = *seedShard
	opt.Parallel = *parallel
	opt.Store, err = cliutil.OpenStore(*storeDir, *storeMax)
	if err != nil {
		fatal(err)
	}
	if opt.Store != nil {
		c := opt.Store.Counters()
		fmt.Fprintf(os.Stderr, "experiments: result store %s (%d records, %d bytes)\n",
			opt.Store.Dir(), c.Records, c.Bytes)
	}
	if *cores != "" {
		opt.Cores, err = cliutil.ParseInts(*cores, "-cores")
		if err != nil {
			fatal(err)
		}
		if len(opt.Cores) == 0 {
			fatal(fmt.Errorf("-cores lists no core counts"))
		}
	}
	runner := exp.NewRunner(opt)

	var todo []exp.Experiment
	if *expID == "all" {
		todo = exp.Registry
	} else {
		e, err := exp.Find(*expID)
		if err != nil {
			fatal(err)
		}
		todo = []exp.Experiment{e}
	}
	workers := opt.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// To stderr so stdout stays byte-identical across -parallel values.
	fmt.Fprintf(os.Stderr, "experiments: sweep runner with %d parallel workers\n", workers)

	// Interrupt cancels the sweep at the next job boundary instead of
	// killing half-written output.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// With the structured export on stdout, the human tables are discarded
	// (the experiments still run identically — the export reads their runs).
	tableOut := io.Writer(os.Stdout)
	if output.ReplacesHuman() {
		tableOut = io.Discard
	}
	for _, e := range todo {
		start := time.Now()
		fmt.Fprintf(tableOut, "=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(ctx, runner, tableOut); err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		// Wall-clock to stderr: stdout carries only experiment data, so
		// sweeps at different -parallel values diff clean.
		fmt.Fprintf(os.Stderr, "--- %s done in %v ---\n", e.ID, time.Since(start).Round(time.Millisecond))
		fmt.Fprintln(tableOut)
	}
	if output.Enabled() {
		if err := output.Write(runner.Export()); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
