// Command experiments regenerates the paper's tables and figures
// (DESIGN.md, per-experiment index). Each experiment prints the same rows
// or series the paper reports, computed on the scaled synthetic inputs.
//
// Every experiment primes its full configuration grid through the parallel
// sweep runner (internal/runner), so independent simulations fan out across
// host cores; -parallel bounds the worker count. Results are byte-identical
// for every -parallel value, including 1.
//
// Usage:
//
//	experiments -exp fig4 -scale small
//	experiments -exp all -scale tiny          # quick smoke of everything
//	experiments -exp all -parallel 8          # bound the worker pool
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"swarmhints/internal/bench"
	"swarmhints/internal/exp"
)

func main() {
	var (
		expID     = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scaleName = flag.String("scale", "small", "input scale: tiny|small|full")
		seed      = flag.Int64("seed", 7, "workload seed")
		cores     = flag.String("cores", "", "comma-separated core sweep override, e.g. 1,16,256")
		parallel  = flag.Int("parallel", 0, "simulation runs in flight at once (0 = GOMAXPROCS)")
		list      = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Registry {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	scale := bench.Small
	switch strings.ToLower(*scaleName) {
	case "tiny":
		scale = bench.Tiny
	case "small":
		scale = bench.Small
	case "full":
		scale = bench.Full
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleName))
	}
	opt := exp.DefaultOptions(scale)
	opt.Seed = *seed
	opt.Parallel = *parallel
	if *cores != "" {
		opt.Cores = nil
		for _, part := range strings.Split(*cores, ",") {
			var c int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &c); err != nil {
				fatal(fmt.Errorf("bad -cores value %q", part))
			}
			opt.Cores = append(opt.Cores, c)
		}
	}
	runner := exp.NewRunner(opt)

	var todo []exp.Experiment
	if *expID == "all" {
		todo = exp.Registry
	} else {
		e, err := exp.Find(*expID)
		if err != nil {
			fatal(err)
		}
		todo = []exp.Experiment{e}
	}
	workers := opt.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// To stderr so stdout stays byte-identical across -parallel values.
	fmt.Fprintf(os.Stderr, "experiments: sweep runner with %d parallel workers\n", workers)
	for _, e := range todo {
		start := time.Now()
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(runner, os.Stdout); err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		// Wall-clock to stderr: stdout carries only experiment data, so
		// sweeps at different -parallel values diff clean.
		fmt.Fprintf(os.Stderr, "--- %s done in %v ---\n", e.ID, time.Since(start).Round(time.Millisecond))
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
