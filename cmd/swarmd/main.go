// Command swarmd serves the simulation harness as a long-running HTTP/JSON
// service (internal/service): single-point runs, batch sweeps streamed as
// NDJSON, and the paper's experiments, sharded across a bounded worker
// fleet with request coalescing and an LRU result cache. Responses are
// byte-identical to what cmd/experiments -format json emits for the same
// configuration — see the "Running swarmd" section of the README.
//
// Endpoints:
//
//	POST /v1/run              one configuration (cache-accelerated)
//	POST /v1/sweep            a grid, streamed as NDJSON in config order
//	GET  /v1/experiments      list the paper's experiments
//	POST /v1/experiments/{id} regenerate one table/figure as a service
//	GET  /healthz             liveness
//	GET  /metrics             Prometheus text: cache, queue, run counters
//
// Usage:
//
//	swarmd -addr :8080 -workers 8 -cache 4096
//	swarmd -addr 127.0.0.1:0        # ephemeral port, printed on startup
//	swarmd -store /var/lib/swarmd -store-max-bytes 2g   # persistent result store
//	swarmd -max-pending 512                             # admission bound (429 "overloaded" past it)
//	swarmd -fault 'store.write=fail,prob:0.01' -fault-admin   # chaos testing (see README)
//
// With -store, lookups go memory-LRU → disk store → coalesced compute with
// write-through on fill, so a restarted swarmd — or a fleet of replicas
// sharing the directory — answers previously computed sweeps with zero
// engine runs (see swarmd_store_* in /metrics).
//
// SIGINT/SIGTERM starts a graceful shutdown: the listener closes, in-flight
// requests drain for -drain, then remaining work is canceled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"swarmhints/internal/cliutil"
	"swarmhints/internal/obs"
	"swarmhints/internal/service"
)

// fatal logs a startup/serve failure and exits.
func fatal(msg string, err error) {
	slog.Error(msg, "component", "swarmd", "err", err)
	os.Exit(1)
}

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address (host:port; port 0 = ephemeral)")
		workers       = flag.Int("workers", 0, "max simulations in flight across all requests (0 = GOMAXPROCS)")
		cache         = flag.Int("cache", 4096, "LRU result-cache entries")
		validate      = flag.Bool("validate", true, "check each executed run against the serial reference")
		drain         = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
		storeDir      = flag.String("store", "", "persistent result-store directory, shareable between replicas (empty = memory-only)")
		storeMaxBytes = flag.String("store-max-bytes", "", "result-store size cap, e.g. 512m or 2g (empty/0 = unbounded); oldest-read records are evicted")
		maxPending    = flag.Int("max-pending", 256, "admission bound on in-flight work requests; excess is shed with a retryable 429 (0 = unlimited)")
		faultSpec     = flag.String("fault", "", "fault-injection site spec, e.g. 'store.write=fail,prob:0.01; swarmd.run.slow=latency:200ms,every:10' (testing only)")
		faultSeed     = flag.Int64("fault-seed", 1, "fault-injection PRNG seed (fire patterns are reproducible for a fixed seed)")
		faultAdmin    = flag.Bool("fault-admin", false, "mount the /v1/faults runtime fault-injection admin endpoint (testing only)")
		obsOn         = flag.Bool("obs", true, "enable request tracing and latency histograms (disabled, every instrumentation point costs one atomic load)")
		logLevel      = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat     = flag.String("log-format", "text", "log format: text or json")
		debugAddr     = flag.String("debug-addr", "", "separate listener for /debug/pprof and /debug/traces (empty = disabled); never expose publicly")
	)
	flag.Parse()

	if err := obs.SetupDefaultLogger(*logLevel, *logFormat); err != nil {
		fatal("bad logging flags", err)
	}
	obs.SetEnabled(*obsOn)
	if err := cliutil.ArmFaults(*faultSpec, *faultSeed); err != nil {
		fatal("arming fault sites", err)
	}
	st, err := cliutil.OpenStore(*storeDir, *storeMaxBytes)
	if err != nil {
		fatal("opening result store", err)
	}
	if st != nil {
		c := st.Counters()
		slog.Info("result store opened", "component", "swarmd",
			"dir", st.Dir(), "records", c.Records, "bytes", c.Bytes, "capBytes", st.MaxBytes())
	}

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal("debug listener", err)
		}
		slog.Info("debug listener up (pprof + traces)", "component", "swarmd", "addr", dln.Addr().String())
		go func() {
			if err := http.Serve(dln, obs.DebugHandler(obs.Default)); err != nil {
				slog.Error("debug listener failed", "component", "swarmd", "err", err)
			}
		}()
	}

	svc := service.New(service.Options{
		Workers: *workers, CacheEntries: *cache, Validate: *validate, Store: st,
		MaxPending: *maxPending, FaultAdmin: *faultAdmin,
	})
	srv := &http.Server{
		Handler: svc.Handler(),
		// Requests inherit the service lifetime: Close cancels them all.
		BaseContext: func(net.Listener) context.Context { return svc.Context() },
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen", err)
	}
	slog.Info("listening", "component", "swarmd", "addr", ln.Addr().String(),
		"workers", svc.Workers(), "cacheEntries", *cache, "obs", *obsOn)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal("serve", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight requests, and cut
	// off stragglers by canceling the service context at the drain deadline.
	slog.Info("shutting down", "component", "swarmd", "drain", *drain)
	killTimer := time.AfterFunc(*drain, svc.Close)
	defer killTimer.Stop()
	sdCtx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sdCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		slog.Error("shutdown", "component", "swarmd", "err", err)
	}
	svc.Close()
	fmt.Fprintln(os.Stderr, "swarmd: bye")
}
