// Command swarmsim runs Swarm simulations: a single benchmark under one
// scheduler on one machine size with detailed statistics, or a full
// paper-style sweep — benchmarks × schedulers × core counts × task/commit
// queue sizes × seed replicas — executed concurrently through the parallel
// sweep runner (internal/runner) in one command.
//
// Every comma-separated flag value widens the sweep; when the sweep has
// exactly one point the detailed single-run report is printed, otherwise
// one table row per run, in sweep order regardless of completion order.
// Results are byte-identical for every -parallel value.
//
// -format json|csv emits the machine-readable result set (per-tile and
// aggregate statistics, schema swarmhints.metrics.v1) instead of the human
// report; with -out FILE the structured results go to the file and the
// human report keeps stdout. Progress goes to stderr either way.
//
// Usage:
//
//	swarmsim -bench sssp -sched hints -cores 64 -scale small
//	swarmsim -bench des -sched lbhints -cores 256 -profile
//	swarmsim -bench bfs,sssp,des -sched random,hints -cores 1,16,64 -parallel 8
//	swarmsim -bench silo -cores 64 -taskq 16,32,64 -commitq 4,8,16
//	swarmsim -bench des -cores 64 -seeds 5       # 5 derived-seed replicas
//	swarmsim -bench des -cores 64 -seeds 8 -seed-shards 4  # one merged record with error bars
//	swarmsim -bench mis -cores 64 -format json   # machine-readable results
//	swarmsim -bench bfs -cores 1,16 -format csv -out sweep.csv
//	swarmsim -bench des -cores 64 -store results.store  # reuse results across invocations
//	swarmsim -list
//
// -store DIR adds the persistent result store (internal/store): sweep
// points at the default queue sizes are the same canonical configurations
// cmd/experiments and swarmd run, so they are served from the shared
// directory when warm and written through when computed. Custom -taskq or
// -commitq values change the simulated machine and always execute.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"swarmhints/internal/bench"
	"swarmhints/internal/cliutil"
	"swarmhints/internal/exp"
	"swarmhints/internal/runner"
	"swarmhints/swarm"
)

// sweepFields is the label column order of the sweep's result set.
var sweepFields = []string{"bench", "sched", "cores", "taskq", "commitq", "replica", "seed", "scale"}

// mergedFields is the label column order in -seed-shards mode: one merged
// record per configuration, labeled with the replica count and base seed
// instead of a per-replica index.
var mergedFields = []string{"bench", "sched", "cores", "taskq", "commitq", "seeds", "seed", "scale"}

func main() {
	var (
		benchList  = flag.String("bench", "sssp", "benchmark name(s), comma-separated (see -list)")
		schedList  = flag.String("sched", "hints", "scheduler(s), comma-separated: random|stealing|hints|lbhints|lbidle")
		coresList  = flag.String("cores", "64", "core count(s), comma-separated (1 or 4*K*K)")
		taskqList  = flag.String("taskq", "", "task-queue entries per core, comma-separated (default: scaled config)")
		commitList = flag.String("commitq", "", "commit-queue entries per core, comma-separated (default: scaled config)")
		scaleName  = flag.String("scale", "small", "input scale: tiny|small|full")
		seed       = flag.Int64("seed", 7, "workload seed (sweep seed when -seeds > 1)")
		seeds      = flag.Int("seeds", 1, "seed replicas per configuration, derived from -seed")
		seedShards = flag.Int("seed-shards", 0, "merge the -seeds replicas of each configuration into one record with cross-seed error bars, sharded into at most N shard jobs (0 = per-replica records)")
		parallel   = flag.Int("parallel", 0, "runs in flight at once (0 = GOMAXPROCS)")
		profile    = flag.Bool("profile", false, "collect access classification (Fig. 3; single run only)")
		validate   = flag.Bool("validate", true, "check results against the serial reference")
		format     = flag.String("format", "", "machine-readable output: json|csv (default: human report)")
		outFile    = flag.String("out", "", "write structured results to FILE (keeps human report on stdout)")
		storeDir   = flag.String("store", "", "persistent result-store directory shared with swarmd/experiments (empty = no store)")
		storeMax   = flag.String("store-max-bytes", "", "result-store size cap, e.g. 512m or 2g (empty/0 = unbounded)")
		list       = flag.Bool("list", false, "list benchmarks and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:", strings.Join(bench.AllNames(), " "))
		return
	}

	output, err := cliutil.ParseOutput(*format, *outFile)
	if err != nil {
		fatal(err)
	}
	scale, err := cliutil.ParseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	resultStore, err := cliutil.OpenStore(*storeDir, *storeMax)
	if err != nil {
		fatal(err)
	}
	if resultStore != nil {
		c := resultStore.Counters()
		fmt.Fprintf(os.Stderr, "swarmsim: result store %s (%d records, %d bytes)\n",
			resultStore.Dir(), c.Records, c.Bytes)
	}
	benches := cliutil.SplitList(*benchList)
	kinds, err := cliutil.ParseScheds(*schedList)
	if err != nil {
		fatal(err)
	}
	cores, err := cliutil.ParseInts(*coresList, "-cores")
	if err != nil {
		fatal(err)
	}
	taskqs, err := cliutil.ParseInts(*taskqList, "-taskq")
	if err != nil {
		fatal(err)
	}
	commitqs, err := cliutil.ParseInts(*commitList, "-commitq")
	if err != nil {
		fatal(err)
	}
	if len(benches) == 0 {
		fatal(fmt.Errorf("-bench lists no benchmarks"))
	}
	if len(kinds) == 0 {
		fatal(fmt.Errorf("-sched lists no schedulers"))
	}
	if len(cores) == 0 {
		fatal(fmt.Errorf("-cores lists no core counts"))
	}
	// Zero means "keep the scaled config's default" for queue dimensions.
	if len(taskqs) == 0 {
		taskqs = []int{0}
	}
	if len(commitqs) == 0 {
		commitqs = []int{0}
	}
	if *seeds < 1 {
		*seeds = 1
	}

	// -seed-shards switches to merged-record mode: every configuration's
	// seed replicas execute as shard jobs on the one worker pool and
	// collapse into a single merged record with cross-seed error bars
	// (schema swarmhints.metrics.v2) — byte-identical output for every
	// -seed-shards and -parallel value, because replicas always merge in
	// fixed seed order.
	if *seedShards > 0 {
		if *seeds < 2 {
			fatal(fmt.Errorf("-seed-shards requires -seeds > 1"))
		}
		type cfgPoint struct {
			bench          string
			kind           swarm.SchedKind
			cores          int
			taskq, commitq int
		}
		var cfgs []cfgPoint
		for _, b := range benches {
			for _, k := range kinds {
				for _, c := range cores {
					for _, tq := range taskqs {
						for _, cq := range commitqs {
							cfgs = append(cfgs, cfgPoint{b, k, c, tq, cq})
						}
					}
				}
			}
		}
		scaled := swarm.ScaledConfig()
		effective := func(v, def int) int {
			if v > 0 {
				return v
			}
			return def
		}
		runProfile := *profile && len(cfgs) == 1
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		per := make([][]*swarm.Stats, len(cfgs))
		var jobs []runner.Job
		for i, c := range cfgs {
			c := c
			sr := exp.SeedRun{
				Point:    exp.Point{Name: c.bench, Kind: c.kind, Cores: c.cores, Profile: runProfile},
				Scale:    scale,
				BaseSeed: *seed,
				Seeds:    *seeds,
				Shards:   *seedShards,
				Validate: *validate,
				Store:    resultStore,
			}
			if c.taskq > 0 || c.commitq > 0 {
				// Custom queue dimensions change the simulated machine:
				// never store-tiered, executed inline (same rule as the
				// per-replica sweep path).
				sr.Exec = func(_ context.Context, wseed int64, _ exp.Point) (*swarm.Stats, error) {
					inst, err := bench.Build(c.bench, scale, wseed)
					if err != nil {
						return nil, err
					}
					cfg := swarm.ScaledConfig().WithCores(c.cores)
					cfg.Scheduler = c.kind
					cfg.Profile = runProfile
					if c.taskq > 0 {
						cfg.TaskQPerCore = c.taskq
					}
					if c.commitq > 0 {
						cfg.CommitQPerCore = c.commitq
					}
					st, err := inst.Prog.Run(cfg)
					if err != nil {
						return nil, err
					}
					if *validate {
						if err := inst.Validate(); err != nil {
							return nil, fmt.Errorf("validation failed: %w", err)
						}
					}
					return st, nil
				}
			}
			per[i] = make([]*swarm.Stats, *seeds)
			jobs = append(jobs, sr.ShardJobs(ctx, per[i])...)
		}
		done := 0
		results := runner.Sweep(ctx, jobs, runner.Options{
			Parallel: *parallel,
			Seed:     *seed,
			OnResult: func(res runner.Result) {
				done++
				fmt.Fprintf(os.Stderr, "swarmsim: [%d/%d] %s\n", done, len(jobs), res.Name)
			},
		})
		if err := runner.FirstErr(results); err != nil {
			fatal(err)
		}
		merged := make([]runner.Result, len(cfgs))
		for i, c := range cfgs {
			st, err := swarm.MergeStats(per[i])
			if err != nil {
				fatal(err)
			}
			merged[i] = runner.Result{
				Index: i,
				Name:  fmt.Sprintf("%s/%v/%dc", c.bench, c.kind, c.cores),
				Labels: map[string]string{
					"bench":   c.bench,
					"sched":   c.kind.String(),
					"cores":   strconv.Itoa(c.cores),
					"taskq":   strconv.Itoa(effective(c.taskq, scaled.TaskQPerCore)),
					"commitq": strconv.Itoa(effective(c.commitq, scaled.CommitQPerCore)),
					"seeds":   strconv.Itoa(*seeds),
					"seed":    strconv.FormatInt(*seed, 10),
					"scale":   scale.String(),
				},
				Seed:  *seed,
				Stats: st,
			}
		}
		if !output.ReplacesHuman() {
			fmt.Printf("%-10s %-9s %6s %6s %7s %5s %14s %20s %10s %8s %12s\n",
				"bench", "sched", "cores", "taskq", "commitq", "seeds", "cycles", "cycles/seed", "tasks", "aborts", "flits")
			for _, r := range merged {
				st := r.Stats
				sm := st.SeedSummary
				fmt.Printf("%-10s %-9s %6s %6s %7s %5s %14d %14.0f±%-5.0f %10d %8d %12d\n",
					r.Labels["bench"], r.Labels["sched"], r.Labels["cores"],
					r.Labels["taskq"], r.Labels["commitq"], r.Labels["seeds"],
					st.Cycles, sm.Cycles.Mean, sm.Cycles.Stddev,
					st.CommittedTasks, st.AbortedAttempts, st.TotalTraffic())
			}
		}
		if output.Enabled() {
			if err := output.Write(runner.Collect(merged, mergedFields...)); err != nil {
				fatal(err)
			}
		}
		return
	}

	// point is one sweep coordinate, enumerated in deterministic order.
	type point struct {
		bench   string
		kind    swarm.SchedKind
		cores   int
		taskq   int
		commitq int
		replica int
	}
	var points []point
	for _, b := range benches {
		for _, k := range kinds {
			for _, c := range cores {
				for _, tq := range taskqs {
					for _, cq := range commitqs {
						for rep := 0; rep < *seeds; rep++ {
							points = append(points, point{b, k, c, tq, cq, rep})
						}
					}
				}
			}
		}
	}

	// workloadSeed is the seed run replica rep sees: the fixed -seed for
	// single-seed sweeps (paper methodology: every configuration sees the
	// same input), a replica-derived seed otherwise. Deriving from the
	// replica index — not the sweep job index — keeps replica r of every
	// configuration on one workload and reproducible as the sweep reshapes.
	workloadSeed := func(rep int) int64 {
		if *seeds > 1 {
			return runner.DeriveSeed(*seed, rep)
		}
		return *seed
	}
	effective := func(v, def int) int {
		if v > 0 {
			return v
		}
		return def
	}
	scaled := swarm.ScaledConfig()

	var hintPattern string // recorded for the single-run report
	makeJob := func(p point) runner.Job {
		// A sweep point at the default queue sizes is exactly an experiment-
		// harness configuration (exp.RunPoint), so it shares the persistent
		// store under the same canonical key as cmd/experiments and swarmd.
		// Custom -taskq/-commitq runs change the machine, not just the
		// point, and always execute.
		runProfile := *profile && len(points) == 1
		expPoint := exp.Point{Name: p.bench, Kind: p.kind, Cores: p.cores, Profile: runProfile}
		storeKey := ""
		if resultStore != nil && p.taskq == 0 && p.commitq == 0 {
			storeKey = exp.ConfigKey(scale, workloadSeed(p.replica), expPoint)
		}
		return runner.Job{
			Name: fmt.Sprintf("%s/%v/%dc", p.bench, p.kind, p.cores),
			Labels: map[string]string{
				"bench":   p.bench,
				"sched":   p.kind.String(),
				"cores":   strconv.Itoa(p.cores),
				"taskq":   strconv.Itoa(effective(p.taskq, scaled.TaskQPerCore)),
				"commitq": strconv.Itoa(effective(p.commitq, scaled.CommitQPerCore)),
				"replica": strconv.Itoa(p.replica),
				"seed":    strconv.FormatInt(workloadSeed(p.replica), 10),
				"scale":   scale.String(),
			},
			Run: func(int64) (*swarm.Stats, error) {
				if storeKey != "" {
					if st, ok := resultStore.GetStats(storeKey); ok {
						return st, nil
					}
					st, err := exp.RunPoint(expPoint, scale, workloadSeed(p.replica), *validate)
					if err == nil {
						_ = resultStore.PutStats(storeKey, st) // best effort
					}
					return st, err
				}
				inst, err := bench.Build(p.bench, scale, workloadSeed(p.replica))
				if err != nil {
					return nil, err
				}
				if len(points) == 1 {
					hintPattern = inst.HintPattern // no race: single job
				}
				cfg := swarm.ScaledConfig().WithCores(p.cores)
				cfg.Scheduler = p.kind
				cfg.Profile = runProfile
				if p.taskq == 0 && p.commitq == 0 {
					// A default-queue run is a canonical configuration point;
					// use the harness watchdog so its outcome cannot depend
					// on whether it ran here or through exp.RunPoint (-store).
					cfg.MaxCycles = exp.MaxPointCycles
				}
				if p.taskq > 0 {
					cfg.TaskQPerCore = p.taskq
				}
				if p.commitq > 0 {
					cfg.CommitQPerCore = p.commitq
				}
				st, err := inst.Prog.Run(cfg)
				if err != nil {
					return nil, err
				}
				if *validate {
					if err := inst.Validate(); err != nil {
						return nil, fmt.Errorf("validation failed: %w", err)
					}
				}
				return st, nil
			},
		}
	}

	jobs := make([]runner.Job, len(points))
	for i, p := range points {
		jobs[i] = makeJob(p)
	}
	// Interrupt cancels the sweep at the next job boundary; completed runs
	// are still reported through OnResult, canceled ones never are.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := 0
	results := runner.Sweep(ctx, jobs, runner.Options{
		Parallel: *parallel,
		Seed:     *seed,
		OnResult: func(res runner.Result) {
			done++
			fmt.Fprintf(os.Stderr, "swarmsim: [%d/%d] %s\n", done, len(jobs), res.Name)
		},
	})
	if err := runner.FirstErr(results); err != nil {
		fatal(err)
	}

	if !output.ReplacesHuman() {
		if len(points) == 1 {
			p := points[0]
			if hintPattern == "" {
				// Store-served single runs skip the workload build; rebuild
				// it (cheap next to a simulation) so the report is complete.
				if inst, err := bench.Build(p.bench, scale, workloadSeed(p.replica)); err == nil {
					hintPattern = inst.HintPattern
				}
			}
			printDetailed(p.bench, *scaleName, hintPattern, p.cores, p.kind, *validate, results[0].Stats)
		} else {
			fmt.Printf("%-10s %-9s %6s %6s %7s %4s %14s %10s %8s %8s %12s\n",
				"bench", "sched", "cores", "taskq", "commitq", "rep", "cycles", "tasks", "aborts", "spills", "flits")
			for i, p := range points {
				st := results[i].Stats
				fmt.Printf("%-10s %-9v %6d %6d %7d %4d %14d %10d %8d %8d %12d\n",
					p.bench, p.kind, p.cores,
					effective(p.taskq, scaled.TaskQPerCore), effective(p.commitq, scaled.CommitQPerCore),
					p.replica,
					st.Cycles, st.CommittedTasks, st.AbortedAttempts, st.SpilledTasks, st.TotalTraffic())
			}
		}
	}
	if output.Enabled() {
		if err := output.Write(runner.Collect(results, sweepFields...)); err != nil {
			fatal(err)
		}
	}
}

// printDetailed reproduces the single-run report.
func printDetailed(benchName, scaleName, hintPattern string, cores int, kind swarm.SchedKind, validated bool, st *swarm.Stats) {
	cfg := swarm.ScaledConfig().WithCores(cores)
	fmt.Printf("benchmark   %s (%s, hint pattern: %s)\n", benchName, scaleName, hintPattern)
	fmt.Printf("machine     %d cores, scheduler %v\n", cfg.Cores(), kind)
	fmt.Printf("makespan    %d cycles\n", st.Cycles)
	fmt.Printf("tasks       %d committed, %d aborted attempts, %d squashed, %d spilled, %d stolen\n",
		st.CommittedTasks, st.AbortedAttempts, st.SquashedTasks, st.SpilledTasks, st.StolenTasks)
	b := st.Breakdown
	total := float64(b.Total())
	if total > 0 {
		fmt.Printf("cycles      commit %.1f%%  abort %.1f%%  spill %.1f%%  stall %.1f%%  empty %.1f%%\n",
			100*float64(b.Commit)/total, 100*float64(b.Abort)/total, 100*float64(b.Spill)/total,
			100*float64(b.Stall)/total, 100*float64(b.Empty)/total)
	}
	fmt.Printf("traffic     mem %d  abort %d  task %d  gvt %d flits\n",
		st.Traffic[0], st.Traffic[1], st.Traffic[2], st.Traffic[3])
	fmt.Printf("caches      L1 %d  L2 %d  L3 %d hits, %d mem accesses\n",
		st.Cache.L1Hits, st.Cache.L2Hits, st.Cache.L3Hits, st.Cache.MemAccesses)
	fmt.Printf("balance     load-imbalance %.2fx over %d tiles\n", st.LoadImbalance(), len(st.Tiles))
	if st.Classification != nil {
		cl := st.Classification
		fmt.Printf("accesses    multiRO %.3f  singleRO %.3f  multiRW %.3f  singleRW %.3f  args %.3f\n",
			cl.MultiHintRO, cl.SingleHintRO, cl.MultiHintRW, cl.SingleHintRW, cl.Arguments)
	}
	if validated {
		fmt.Println("validation  OK (matches serial reference)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swarmsim:", err)
	os.Exit(1)
}
