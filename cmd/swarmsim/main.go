// Command swarmsim runs one benchmark under one scheduler on one machine
// size and prints the run statistics: makespan, cycle breakdown, traffic
// breakdown, and speculation counters.
//
// Usage:
//
//	swarmsim -bench sssp -sched hints -cores 64 -scale small
//	swarmsim -bench des -sched lbhints -cores 256 -profile
//	swarmsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"swarmhints/internal/bench"
	"swarmhints/swarm"
)

func main() {
	var (
		benchName = flag.String("bench", "sssp", "benchmark name (see -list)")
		schedName = flag.String("sched", "hints", "scheduler: random|stealing|hints|lbhints|lbidle")
		cores     = flag.Int("cores", 64, "number of cores (1 or 4*K*K)")
		scaleName = flag.String("scale", "small", "input scale: tiny|small|full")
		seed      = flag.Int64("seed", 7, "workload seed")
		profile   = flag.Bool("profile", false, "collect access classification (Fig. 3)")
		validate  = flag.Bool("validate", true, "check the result against the serial reference")
		list      = flag.Bool("list", false, "list benchmarks and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:", strings.Join(bench.AllNames(), " "))
		return
	}

	kind, err := parseSched(*schedName)
	if err != nil {
		fatal(err)
	}
	scale, err := parseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	inst, err := bench.Build(*benchName, scale, *seed)
	if err != nil {
		fatal(err)
	}

	cfg := swarm.ScaledConfig().WithCores(*cores)
	cfg.Scheduler = kind
	cfg.Profile = *profile
	st, err := inst.Prog.Run(cfg)
	if err != nil {
		fatal(err)
	}
	if *validate {
		if err := inst.Validate(); err != nil {
			fatal(fmt.Errorf("validation failed: %w", err))
		}
	}

	fmt.Printf("benchmark   %s (%s, hint pattern: %s)\n", inst.Name, *scaleName, inst.HintPattern)
	fmt.Printf("machine     %d cores, scheduler %v\n", cfg.Cores(), kind)
	fmt.Printf("makespan    %d cycles\n", st.Cycles)
	fmt.Printf("tasks       %d committed, %d aborted attempts, %d squashed, %d spilled, %d stolen\n",
		st.CommittedTasks, st.AbortedAttempts, st.SquashedTasks, st.SpilledTasks, st.StolenTasks)
	b := st.Breakdown
	total := float64(b.Total())
	if total > 0 {
		fmt.Printf("cycles      commit %.1f%%  abort %.1f%%  spill %.1f%%  stall %.1f%%  empty %.1f%%\n",
			100*float64(b.Commit)/total, 100*float64(b.Abort)/total, 100*float64(b.Spill)/total,
			100*float64(b.Stall)/total, 100*float64(b.Empty)/total)
	}
	fmt.Printf("traffic     mem %d  abort %d  task %d  gvt %d flits\n",
		st.Traffic[0], st.Traffic[1], st.Traffic[2], st.Traffic[3])
	fmt.Printf("caches      L1 %d  L2 %d  L3 %d hits, %d mem accesses\n",
		st.Cache.L1Hits, st.Cache.L2Hits, st.Cache.L3Hits, st.Cache.MemAccesses)
	if st.Classification != nil {
		cl := st.Classification
		fmt.Printf("accesses    multiRO %.3f  singleRO %.3f  multiRW %.3f  singleRW %.3f  args %.3f\n",
			cl.MultiHintRO, cl.SingleHintRO, cl.MultiHintRW, cl.SingleHintRW, cl.Arguments)
	}
	if *validate {
		fmt.Println("validation  OK (matches serial reference)")
	}
}

func parseSched(s string) (swarm.SchedKind, error) {
	switch strings.ToLower(s) {
	case "random":
		return swarm.Random, nil
	case "stealing":
		return swarm.Stealing, nil
	case "hints":
		return swarm.Hints, nil
	case "lbhints":
		return swarm.LBHints, nil
	case "lbidle":
		return swarm.LBIdleProxy, nil
	}
	return 0, fmt.Errorf("unknown scheduler %q", s)
}

func parseScale(s string) (bench.Scale, error) {
	switch strings.ToLower(s) {
	case "tiny":
		return bench.Tiny, nil
	case "small":
		return bench.Small, nil
	case "full":
		return bench.Full, nil
	}
	return 0, fmt.Errorf("unknown scale %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swarmsim:", err)
	os.Exit(1)
}
