// Command swarmsim runs Swarm simulations: a single benchmark under one
// scheduler on one machine size with detailed statistics, or a full
// paper-style sweep — benchmarks × schedulers × core counts × task/commit
// queue sizes × seed replicas — executed concurrently through the parallel
// sweep runner (internal/runner) in one command.
//
// Every comma-separated flag value widens the sweep; when the sweep has
// exactly one point the detailed single-run report is printed, otherwise
// one table row per run, in sweep order regardless of completion order.
// Results are byte-identical for every -parallel value.
//
// Usage:
//
//	swarmsim -bench sssp -sched hints -cores 64 -scale small
//	swarmsim -bench des -sched lbhints -cores 256 -profile
//	swarmsim -bench bfs,sssp,des -sched random,hints -cores 1,16,64 -parallel 8
//	swarmsim -bench silo -cores 64 -taskq 16,32,64 -commitq 4,8,16
//	swarmsim -bench des -cores 64 -seeds 5       # 5 derived-seed replicas
//	swarmsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"swarmhints/internal/bench"
	"swarmhints/internal/runner"
	"swarmhints/swarm"
)

func main() {
	var (
		benchList  = flag.String("bench", "sssp", "benchmark name(s), comma-separated (see -list)")
		schedList  = flag.String("sched", "hints", "scheduler(s), comma-separated: random|stealing|hints|lbhints|lbidle")
		coresList  = flag.String("cores", "64", "core count(s), comma-separated (1 or 4*K*K)")
		taskqList  = flag.String("taskq", "", "task-queue entries per core, comma-separated (default: scaled config)")
		commitList = flag.String("commitq", "", "commit-queue entries per core, comma-separated (default: scaled config)")
		scaleName  = flag.String("scale", "small", "input scale: tiny|small|full")
		seed       = flag.Int64("seed", 7, "workload seed (sweep seed when -seeds > 1)")
		seeds      = flag.Int("seeds", 1, "seed replicas per configuration, derived from -seed")
		parallel   = flag.Int("parallel", 0, "runs in flight at once (0 = GOMAXPROCS)")
		profile    = flag.Bool("profile", false, "collect access classification (Fig. 3; single run only)")
		validate   = flag.Bool("validate", true, "check results against the serial reference")
		list       = flag.Bool("list", false, "list benchmarks and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:", strings.Join(bench.AllNames(), " "))
		return
	}

	scale, err := parseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	benches := splitList(*benchList)
	var kinds []swarm.SchedKind
	for _, s := range splitList(*schedList) {
		k, err := parseSched(s)
		if err != nil {
			fatal(err)
		}
		kinds = append(kinds, k)
	}
	cores, err := parseInts(*coresList, "-cores")
	if err != nil {
		fatal(err)
	}
	taskqs, err := parseInts(*taskqList, "-taskq")
	if err != nil {
		fatal(err)
	}
	commitqs, err := parseInts(*commitList, "-commitq")
	if err != nil {
		fatal(err)
	}
	if len(benches) == 0 {
		fatal(fmt.Errorf("-bench lists no benchmarks"))
	}
	if len(kinds) == 0 {
		fatal(fmt.Errorf("-sched lists no schedulers"))
	}
	if len(cores) == 0 {
		fatal(fmt.Errorf("-cores lists no core counts"))
	}
	// Zero means "keep the scaled config's default" for queue dimensions.
	if len(taskqs) == 0 {
		taskqs = []int{0}
	}
	if len(commitqs) == 0 {
		commitqs = []int{0}
	}
	if *seeds < 1 {
		*seeds = 1
	}

	// point is one sweep coordinate, enumerated in deterministic order.
	type point struct {
		bench   string
		kind    swarm.SchedKind
		cores   int
		taskq   int
		commitq int
		replica int
	}
	var points []point
	for _, b := range benches {
		for _, k := range kinds {
			for _, c := range cores {
				for _, tq := range taskqs {
					for _, cq := range commitqs {
						for rep := 0; rep < *seeds; rep++ {
							points = append(points, point{b, k, c, tq, cq, rep})
						}
					}
				}
			}
		}
	}

	var hintPattern string // recorded for the single-run report
	makeJob := func(p point) runner.Job {
		return runner.Job{
			Name: fmt.Sprintf("%s/%v/%dc", p.bench, p.kind, p.cores),
			Run: func(int64) (*swarm.Stats, error) {
				// Single-seed sweeps keep the fixed workload seed so every
				// configuration sees the same input (paper methodology).
				// Replicas derive from the replica index, not the sweep job
				// index, so replica r of every configuration shares one
				// workload and stays reproducible as the sweep shape changes.
				s := *seed
				if *seeds > 1 {
					s = runner.DeriveSeed(*seed, p.replica)
				}
				inst, err := bench.Build(p.bench, scale, s)
				if err != nil {
					return nil, err
				}
				if len(points) == 1 {
					hintPattern = inst.HintPattern // no race: single job
				}
				cfg := swarm.ScaledConfig().WithCores(p.cores)
				cfg.Scheduler = p.kind
				cfg.Profile = *profile && len(points) == 1
				if p.taskq > 0 {
					cfg.TaskQPerCore = p.taskq
				}
				if p.commitq > 0 {
					cfg.CommitQPerCore = p.commitq
				}
				st, err := inst.Prog.Run(cfg)
				if err != nil {
					return nil, err
				}
				if *validate {
					if err := inst.Validate(); err != nil {
						return nil, fmt.Errorf("validation failed: %w", err)
					}
				}
				return st, nil
			},
		}
	}

	jobs := make([]runner.Job, len(points))
	for i, p := range points {
		jobs[i] = makeJob(p)
	}
	done := 0
	results := runner.Sweep(jobs, runner.Options{
		Parallel: *parallel,
		Seed:     *seed,
		OnResult: func(res runner.Result) {
			done++
			fmt.Fprintf(os.Stderr, "swarmsim: [%d/%d] %s\n", done, len(jobs), res.Name)
		},
	})
	if err := runner.FirstErr(results); err != nil {
		fatal(err)
	}

	if len(points) == 1 {
		p := points[0]
		printDetailed(p.bench, *scaleName, hintPattern, p.cores, p.kind, *validate, results[0].Stats)
		return
	}

	fmt.Printf("%-10s %-9s %6s %6s %7s %4s %14s %10s %8s %8s %12s\n",
		"bench", "sched", "cores", "taskq", "commitq", "rep", "cycles", "tasks", "aborts", "spills", "flits")
	for i, p := range points {
		st := results[i].Stats
		tq, cq := p.taskq, p.commitq
		if tq == 0 {
			tq = swarm.ScaledConfig().TaskQPerCore
		}
		if cq == 0 {
			cq = swarm.ScaledConfig().CommitQPerCore
		}
		fmt.Printf("%-10s %-9v %6d %6d %7d %4d %14d %10d %8d %8d %12d\n",
			p.bench, p.kind, p.cores, tq, cq, p.replica,
			st.Cycles, st.CommittedTasks, st.AbortedAttempts, st.SpilledTasks, st.TotalTraffic())
	}
}

// printDetailed reproduces the single-run report.
func printDetailed(benchName, scaleName, hintPattern string, cores int, kind swarm.SchedKind, validated bool, st *swarm.Stats) {
	cfg := swarm.ScaledConfig().WithCores(cores)
	fmt.Printf("benchmark   %s (%s, hint pattern: %s)\n", benchName, scaleName, hintPattern)
	fmt.Printf("machine     %d cores, scheduler %v\n", cfg.Cores(), kind)
	fmt.Printf("makespan    %d cycles\n", st.Cycles)
	fmt.Printf("tasks       %d committed, %d aborted attempts, %d squashed, %d spilled, %d stolen\n",
		st.CommittedTasks, st.AbortedAttempts, st.SquashedTasks, st.SpilledTasks, st.StolenTasks)
	b := st.Breakdown
	total := float64(b.Total())
	if total > 0 {
		fmt.Printf("cycles      commit %.1f%%  abort %.1f%%  spill %.1f%%  stall %.1f%%  empty %.1f%%\n",
			100*float64(b.Commit)/total, 100*float64(b.Abort)/total, 100*float64(b.Spill)/total,
			100*float64(b.Stall)/total, 100*float64(b.Empty)/total)
	}
	fmt.Printf("traffic     mem %d  abort %d  task %d  gvt %d flits\n",
		st.Traffic[0], st.Traffic[1], st.Traffic[2], st.Traffic[3])
	fmt.Printf("caches      L1 %d  L2 %d  L3 %d hits, %d mem accesses\n",
		st.Cache.L1Hits, st.Cache.L2Hits, st.Cache.L3Hits, st.Cache.MemAccesses)
	if st.Classification != nil {
		cl := st.Classification
		fmt.Printf("accesses    multiRO %.3f  singleRO %.3f  multiRW %.3f  singleRW %.3f  args %.3f\n",
			cl.MultiHintRO, cl.SingleHintRO, cl.MultiHintRW, cl.SingleHintRW, cl.Arguments)
	}
	if validated {
		fmt.Println("validation  OK (matches serial reference)")
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s, flagName string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad %s value %q", flagName, part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseSched(s string) (swarm.SchedKind, error) {
	switch strings.ToLower(s) {
	case "random":
		return swarm.Random, nil
	case "stealing":
		return swarm.Stealing, nil
	case "hints":
		return swarm.Hints, nil
	case "lbhints":
		return swarm.LBHints, nil
	case "lbidle":
		return swarm.LBIdleProxy, nil
	}
	return 0, fmt.Errorf("unknown scheduler %q", s)
}

func parseScale(s string) (bench.Scale, error) {
	switch strings.ToLower(s) {
	case "tiny":
		return bench.Tiny, nil
	case "small":
		return bench.Small, nil
	case "full":
		return bench.Full, nil
	}
	return 0, fmt.Errorf("unknown scale %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swarmsim:", err)
	os.Exit(1)
}
