// Command benchgate compares a freshly recorded perf-trajectory point
// (BENCH_<rev>.json, written by TestBenchTrajectory) against the committed
// baseline and fails when any benchmark regresses beyond the allowed
// thresholds. CI runs it on every push, turning the perf trajectory from a
// passive artifact into a gate: a change that silently makes the engine
// allocate more per task, or meaningfully slower, fails the build.
//
// Allocations per op are deterministic and machine-independent, so they get
// the tight threshold. Wall-clock ns/op varies across runner hardware, so it
// is gated after calibration: the -ns-calibrate benchmark (default
// MemLoadStore — allocation-free, single-threaded, deterministic work) acts
// as a machine-speed probe, and every other benchmark's ns baseline is
// scaled by its current/baseline ratio before the threshold applies. A
// uniformly slower or faster runner cancels out; a regression localized to
// one benchmark does not. Benchmarks whose wall clock depends on host
// parallelism (the sweep runner) can be excluded from the ns gate via
// -skip-ns while still being checked for allocation regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type point struct {
	Schema     string `json:"schema"`
	Rev        string `json:"rev"`
	Benchmarks []row  `json:"benchmarks"`
}

type row struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	TasksPerOp  float64 `json:"tasksPerOp,omitempty"`
}

func load(path string) (*point, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p point
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if p.Schema != "swarmhints.bench.v1" {
		return nil, fmt.Errorf("%s: unexpected schema %q", path, p.Schema)
	}
	return &p, nil
}

func pct(cur, base int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (float64(cur) - float64(base)) / float64(base)
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline trajectory point")
	currentPath := flag.String("current", "", "freshly recorded trajectory point (BENCH_<rev>.json)")
	maxAllocsPct := flag.Float64("max-allocs-pct", 20, "fail when allocs/op regresses more than this percentage")
	maxNsPct := flag.Float64("max-ns-pct", 35, "fail when calibrated ns/op regresses more than this percentage")
	skipNs := flag.String("skip-ns", "SweepRunner", "comma-separated benchmarks excluded from the ns/op gate (host-parallelism dependent)")
	calibrate := flag.String("ns-calibrate", "MemLoadStore", "benchmark used as the machine-speed probe for the ns gate; empty disables calibration")
	maxProbeFactor := flag.Float64("max-probe-factor", 3, "fail when the probe itself is this many times slower than baseline (catches regressions hiding in the calibration scale)")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}

	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	skip := map[string]bool{}
	for _, n := range strings.Split(*skipNs, ",") {
		if n = strings.TrimSpace(n); n != "" {
			skip[n] = true
		}
	}
	curBy := map[string]row{}
	for _, r := range cur.Benchmarks {
		curBy[r.Name] = r
	}

	// Machine-speed calibration factor for the ns gate: how much slower
	// (or faster) this host runs the probe benchmark than the host that
	// recorded the baseline. The probe is excluded from the calibrated ns
	// gate (it defines the scale) but bounded absolutely: a probe that
	// slowed past -max-probe-factor is either a regression in the memory
	// fast path itself — which calibration would otherwise launder into
	// every other benchmark's threshold — or a machine so much slower that
	// the baseline needs re-recording; both must fail loudly.
	speed := 1.0
	probeFailed := false
	if *calibrate != "" {
		c, ok := curBy[*calibrate]
		var b *row
		for i := range base.Benchmarks {
			if base.Benchmarks[i].Name == *calibrate {
				b = &base.Benchmarks[i]
			}
		}
		if ok && b != nil && b.NsPerOp > 0 && c.NsPerOp > 0 {
			speed = float64(c.NsPerOp) / float64(b.NsPerOp)
			probeFailed = speed > *maxProbeFactor
		}
		skip[*calibrate] = true
	}

	fmt.Printf("benchgate: %s (baseline %s) vs %s (rev %s), machine-speed factor %.2fx\n",
		*baselinePath, base.Rev, *currentPath, cur.Rev, speed)
	fmt.Printf("%-22s %14s %14s %9s %12s %12s %9s\n",
		"benchmark", "base ns/op", "cur ns/op", "Δns*", "base allocs", "cur allocs", "Δallocs")
	failed := false
	for _, b := range base.Benchmarks {
		c, ok := curBy[b.Name]
		if !ok {
			// A benchmark that vanished is a rotted gate, not a pass.
			fmt.Printf("%-22s MISSING from current point\n", b.Name)
			failed = true
			continue
		}
		nsD := pct(c.NsPerOp, int64(float64(b.NsPerOp)*speed))
		alD := pct(c.AllocsPerOp, b.AllocsPerOp)
		verdict := ""
		if alD > *maxAllocsPct || (b.AllocsPerOp == 0 && c.AllocsPerOp > 0) {
			verdict = fmt.Sprintf("  FAIL allocs/op %d -> %d (limit +%.0f%%)", b.AllocsPerOp, c.AllocsPerOp, *maxAllocsPct)
			failed = true
		}
		if !skip[b.Name] && b.NsPerOp > 0 && nsD > *maxNsPct {
			verdict += fmt.Sprintf("  FAIL ns/op +%.1f%% calibrated > %.0f%%", nsD, *maxNsPct)
			failed = true
		}
		fmt.Printf("%-22s %14d %14d %8.1f%% %12d %12d %8.1f%%%s\n",
			b.Name, b.NsPerOp, c.NsPerOp, nsD, b.AllocsPerOp, c.AllocsPerOp, alD, verdict)
	}
	if probeFailed {
		fmt.Printf("FAIL: calibration probe %s is %.2fx slower than baseline (limit %.1fx) — memory fast-path regression, or re-record BENCH_baseline.json on this hardware\n",
			*calibrate, speed, *maxProbeFactor)
		failed = true
	}
	// The symmetric rot check: a benchmark recorded in the current point
	// but absent from the baseline runs ungated until the baseline is
	// ratcheted — fail so the ratchet cannot be forgotten.
	baseNames := map[string]bool{}
	for _, b := range base.Benchmarks {
		baseNames[b.Name] = true
	}
	for _, c := range cur.Benchmarks {
		if !baseNames[c.Name] {
			fmt.Printf("%-22s MISSING from baseline — re-record BENCH_baseline.json to gate it\n", c.Name)
			failed = true
		}
	}
	if failed {
		fmt.Println("benchgate: FAIL — perf trajectory regressed past thresholds")
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}
