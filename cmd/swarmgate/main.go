// Command swarmgate fronts a fleet of swarmd replicas with an adaptive
// routing gateway (internal/gate). It exposes the same /v1 surface as a
// single swarmd — same swarm/api request/response contract, same error
// envelope, byte-identical responses — but decomposes each sweep grid
// into points and routes every point to a replica through a pluggable
// balancer, with per-point timeouts and bounded retry-on-retryable
// against a different replica. A replica killed mid-sweep is drained and
// its in-flight points are re-routed, so the sweep still completes.
//
// Endpoints (identical contract to swarmd):
//
//	POST /v1/run              one configuration, routed to one replica
//	POST /v1/sweep            a grid, fanned out and reassembled in config order
//	GET  /v1/experiments      proxied replica experiment listing
//	POST /v1/experiments/{id} proxied to one replica (retried on retryable failure)
//	GET  /healthz             gateway liveness + per-replica health map
//	GET  /metrics             Prometheus text: swarmgate_* routing counters
//
// Usage:
//
//	swarmgate -replicas http://10.0.0.1:8080,http://10.0.0.2:8080
//	swarmgate -replicas ... -balancer p2c          # power-of-two-choices
//	swarmgate -replicas ... -balancer roundrobin   # no-signal baseline
//	swarmgate -replicas ... -point-timeout 2m -retries 5
//	swarmgate -replicas ... -breaker-threshold 3 -hedge=false   # failure-hardening knobs
//
// The default balancer is "adaptive": pheromone-style scores, reinforced
// by success latency and decayed multiplicatively on error/timeout, with
// roulette-wheel routing proportional to score. Replicas should share a
// -store directory so any replica can serve any previously computed point.
//
// SIGINT/SIGTERM starts a graceful shutdown: the listener closes,
// in-flight requests drain for -drain, then remaining routing is canceled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"swarmhints/internal/cliutil"
	"swarmhints/internal/gate"
	"swarmhints/internal/obs"
)

// fatal logs a startup/serve failure and exits.
func fatal(msg string, err error) {
	slog.Error(msg, "component", "swarmgate", "err", err)
	os.Exit(1)
}

func main() {
	var (
		addr        = flag.String("addr", ":8090", "listen address (host:port; port 0 = ephemeral)")
		replicas    = flag.String("replicas", "", "comma-separated swarmd base URLs (required), e.g. http://10.0.0.1:8080,http://10.0.0.2:8080")
		balancer    = flag.String("balancer", gate.BalancerAdaptive, "routing policy: adaptive, p2c, or roundrobin")
		pointTO     = flag.Duration("point-timeout", 5*time.Minute, "per-attempt timeout for one point (0 = none)")
		retries     = flag.Int("retries", 3, "extra attempts for a retryable point failure, each on a different replica")
		concurrency = flag.Int("concurrency", 0, "max points in flight per request (0 = 4 x replicas)")
		probe       = flag.Duration("probe", time.Second, "background /healthz probe interval (negative = disabled; the interval is jittered +/-25%)")
		probeTO     = flag.Duration("probe-timeout", 0, "per-probe timeout (0 = 2s)")
		seed        = flag.Int64("seed", 1, "balancer PRNG seed (routing is reproducible for a fixed seed)")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
		hedge       = flag.Bool("hedge", true, "hedge straggling points with a second attempt on another replica after the fleet's ~p95 latency")
		brkThresh   = flag.Int("breaker-threshold", 0, "consecutive failures that open a replica's circuit breaker (0 = 5, negative = disabled)")
		brkCooldown = flag.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = 2s)")
		retryWait   = flag.Duration("retry-backoff", 0, "base retry backoff, grown exponentially with full jitter (0 = 5ms, negative = disabled)")
		faultSpec   = flag.String("fault", "", "fault-injection site spec, e.g. 'gate.attempt=fail,prob:0.01' (testing only)")
		faultSeed   = flag.Int64("fault-seed", 1, "fault-injection PRNG seed (fire patterns are reproducible for a fixed seed)")
		faultAdmin  = flag.Bool("fault-admin", false, "mount the /v1/faults runtime fault-injection admin endpoint (testing only)")
		obsOn       = flag.Bool("obs", true, "enable request tracing and latency histograms (disabled, every instrumentation point costs one atomic load)")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat   = flag.String("log-format", "text", "log format: text or json")
		debugAddr   = flag.String("debug-addr", "", "separate listener for /debug/pprof and /debug/traces (empty = disabled); never expose publicly")
	)
	flag.Parse()

	if err := obs.SetupDefaultLogger(*logLevel, *logFormat); err != nil {
		fatal("bad logging flags", err)
	}
	obs.SetEnabled(*obsOn)
	if err := cliutil.ArmFaults(*faultSpec, *faultSeed); err != nil {
		fatal("arming fault sites", err)
	}
	urls, err := cliutil.ParseReplicas(*replicas)
	if err != nil {
		fatal("parsing replicas", err)
	}

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal("debug listener", err)
		}
		slog.Info("debug listener up (pprof + traces)", "component", "swarmgate", "addr", dln.Addr().String())
		go func() {
			if err := http.Serve(dln, obs.DebugHandler(obs.Default)); err != nil {
				slog.Error("debug listener failed", "component", "swarmgate", "err", err)
			}
		}()
	}
	g, err := gate.New(gate.Options{
		Replicas:         urls,
		Balancer:         *balancer,
		PointTimeout:     *pointTO,
		Retries:          *retries,
		Concurrency:      *concurrency,
		ProbeInterval:    *probe,
		ProbeTimeout:     *probeTO,
		Seed:             *seed,
		Hedge:            *hedge,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCooldown,
		RetryBackoff:     *retryWait,
		FaultAdmin:       *faultAdmin,
	})
	if err != nil {
		fatal("building gateway", err)
	}
	srv := &http.Server{
		Handler: g.Handler(),
		// Requests inherit the gateway lifetime: Close cancels them all.
		BaseContext: func(net.Listener) context.Context { return g.Context() },
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen", err)
	}
	slog.Info("listening", "component", "swarmgate", "addr", ln.Addr().String(),
		"replicas", len(urls), "balancer", *balancer, "obs", *obsOn)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal("serve", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight requests, and cut
	// off stragglers by canceling the gateway context at the drain deadline.
	slog.Info("shutting down", "component", "swarmgate", "drain", *drain)
	killTimer := time.AfterFunc(*drain, g.Close)
	defer killTimer.Stop()
	sdCtx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sdCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		slog.Error("shutdown", "component", "swarmgate", "err", err)
	}
	g.Close()
	fmt.Fprintln(os.Stderr, "swarmgate: bye")
}
