package calq

import (
	"math/rand"
	"testing"
)

// refHeap is the reference implementation the calendar queue must match: a
// plain binary min-heap on (time, seq), the structure the engine used
// before calq existed.
type refHeap []Entry[int]

func (h *refHeap) push(e Entry[int]) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !(*h)[i].before((*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *refHeap) pop() Entry[int] {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && old[l].before(old[s]) {
			s = l
		}
		if r < last && old[r].before(old[s]) {
			s = r
		}
		if s == i {
			break
		}
		old[i], old[s] = old[s], old[i]
		i = s
	}
	return top
}

func TestPopsInKeyOrder(t *testing.T) {
	q := New[int](256)
	rng := rand.New(rand.NewSource(1))
	seq := uint64(0)
	for i := 0; i < 1000; i++ {
		seq++
		q.Push(uint64(rng.Intn(5000)), seq, i)
	}
	var last Entry[int]
	for i := 0; q.Len() > 0; i++ {
		pt, ok := q.PeekTime()
		if !ok {
			t.Fatal("PeekTime reported empty on a non-empty queue")
		}
		e := q.Pop()
		if e.Time != pt {
			t.Fatalf("PeekTime %d but Pop returned time %d", pt, e.Time)
		}
		if i > 0 && e.before(last) {
			t.Fatalf("pop %d out of order: (%d,%d) after (%d,%d)", i, e.Time, e.Seq, last.Time, last.Seq)
		}
		last = e
	}
}

func TestOverflowMergesOnWrap(t *testing.T) {
	q := New[int](64)
	// All events far beyond the initial window: everything overflows, then
	// the first Pop re-anchors the ring.
	for i := uint64(0); i < 100; i++ {
		q.Push(1_000_000+i, i+1, int(i))
	}
	if q.OverflowLen() != 100 {
		t.Fatalf("overflow holds %d entries, want 100", q.OverflowLen())
	}
	for i := uint64(0); i < 100; i++ {
		e := q.Pop()
		if e.Time != 1_000_000+i {
			t.Fatalf("pop %d returned time %d", i, e.Time)
		}
	}
	if q.Len() != 0 {
		t.Fatal("queue not empty after draining")
	}
}

func TestSameTimeOrdersBySeq(t *testing.T) {
	q := New[int](64)
	// Same time, out-of-order seqs: exercises the binary-insert fallback.
	for _, s := range []uint64{5, 1, 9, 3, 7} {
		q.Push(10, s, int(s))
	}
	want := []uint64{1, 3, 5, 7, 9}
	for _, w := range want {
		if e := q.Pop(); e.Seq != w {
			t.Fatalf("seq %d popped, want %d", e.Seq, w)
		}
	}
}

func TestPushAtPoppedTime(t *testing.T) {
	// The engine pushes events for the current cycle while draining it; the
	// consumed prefix of the head bucket must not swallow them.
	q := New[int](64)
	q.Push(7, 1, 0)
	if e := q.Pop(); e.Seq != 1 {
		t.Fatal("wrong first pop")
	}
	q.Push(7, 2, 0) // same cycle, scheduled during handling
	q.Push(8, 3, 0)
	if tm, _ := q.PeekTime(); tm != 7 {
		t.Fatalf("peek after same-cycle push = %d, want 7", tm)
	}
	if e := q.Pop(); e.Time != 7 || e.Seq != 2 {
		t.Fatalf("pop = (%d,%d), want (7,2)", e.Time, e.Seq)
	}
	if e := q.Pop(); e.Time != 8 {
		t.Fatal("final pop wrong")
	}
}

func TestPushBeforeWindowPanics(t *testing.T) {
	q := New[int](64)
	q.Push(100, 1, 0)
	q.Pop()
	defer func() {
		if recover() == nil {
			t.Fatal("push before the last popped time did not panic")
		}
	}()
	q.Push(99, 2, 0)
}

func TestWindowAndOverflowInterleave(t *testing.T) {
	// A near event, a far event, then pops advance the window so a second
	// far event lands in-window while the first still sits in overflow:
	// Pop must compare both sides every time.
	q := New[int](64)
	q.Push(1, 1, 0)
	q.Push(70, 2, 0) // overflow (>= 64)
	if e := q.Pop(); e.Time != 1 {
		t.Fatal("wrong order")
	}
	q.Push(65, 3, 0) // in-window now (base advanced to 1)
	if e := q.Pop(); e.Time != 65 {
		t.Fatalf("popped %d, want 65 (in-window beats overflow)", e.Time)
	}
	if e := q.Pop(); e.Time != 70 {
		t.Fatalf("popped %d, want 70", e.Time)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Entry[int] {
		q := New[int](128)
		rng := rand.New(rand.NewSource(42))
		var out []Entry[int]
		now := uint64(0)
		for i := 0; i < 2000; i++ {
			if q.Len() == 0 || rng.Intn(3) != 0 {
				q.Push(now+uint64(rng.Intn(400)), uint64(i+1), i)
			} else {
				e := q.Pop()
				now = e.Time
				out = append(out, e)
			}
		}
		for q.Len() > 0 {
			out = append(out, q.Pop())
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("replay lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// driveBoth feeds one operation stream to the calendar queue and the
// reference heap and fails on the first divergence. Times are generated at
// or after the last popped time, matching the queue's contract.
func driveBoth(t *testing.T, ops []byte, window int) {
	t.Helper()
	q := New[int](window)
	var h refHeap
	now := uint64(0)
	seq := uint64(0)
	payload := 0
	used := map[[2]uint64]bool{} // keys must be unique: equal keys have no defined pop order
	for i := 0; i+2 < len(ops); i += 3 {
		op, d1, d2 := ops[i], uint64(ops[i+1]), uint64(ops[i+2])
		if op%4 == 0 && len(h) > 0 {
			want := h.pop()
			if q.Len() != len(h)+1 {
				t.Fatalf("op %d: len %d, want %d", i, q.Len(), len(h)+1)
			}
			pt, _ := q.PeekTime()
			got := q.Pop()
			if got != want {
				t.Fatalf("op %d: pop (%d,%d,%d), want (%d,%d,%d)",
					i, got.Time, got.Seq, got.V, want.Time, want.Seq, want.V)
			}
			if pt != want.Time {
				t.Fatalf("op %d: peek %d, want %d", i, pt, want.Time)
			}
			now = got.Time
		} else {
			// Mix near, far, and same-cycle times; occasionally reuse a
			// stale-looking seq to hit the binary-insert path.
			tm := now + d1*d2%1000
			if op%7 == 0 {
				tm = now + d1*97 + d2*1031 // deep overflow
			}
			seq += 1 + uint64(op%5)
			s := seq
			if op%11 == 0 && seq > 40 {
				s = seq - 40
			}
			if used[[2]uint64{tm, s}] {
				continue
			}
			used[[2]uint64{tm, s}] = true
			payload++
			q.Push(tm, s, payload)
			h.push(Entry[int]{Time: tm, Seq: s, V: payload})
		}
	}
	for len(h) > 0 {
		want := h.pop()
		if got := q.Pop(); got != want {
			t.Fatalf("drain: pop (%d,%d), want (%d,%d)", got.Time, got.Seq, want.Time, want.Seq)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue holds %d entries after drain", q.Len())
	}
}

func TestDifferentialRandomStreams(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := make([]byte, 3000)
		rng.Read(ops)
		for _, w := range []int{64, 256, 1024} {
			driveBoth(t, ops, w)
		}
	}
}

// FuzzVsReferenceHeap drives the calendar queue and the reference binary
// heap with the same fuzz-chosen (time, seq) stream and requires identical
// pop sequences — the property that makes swapping the engine's event heap
// for calq output-preserving by construction.
func FuzzVsReferenceHeap(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 0, 0, 9, 200, 17})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{7, 255, 255, 0, 1, 1, 7, 254, 253, 4, 9, 9})
	f.Fuzz(func(t *testing.T, ops []byte) {
		driveBoth(t, ops, 128)
	})
}
