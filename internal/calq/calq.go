// Package calq implements a cycle-indexed bucketed calendar queue: the
// classic discrete-event-simulation priority queue for workloads whose
// pending events cluster in a narrow time window. A ring of per-cycle
// buckets covers the active window [base, base+W); an event lands in the
// bucket its timestamp indexes (one bucket per cycle, so a bucket never
// mixes timestamps), events beyond the horizon wait in an overflow
// min-heap that is merged back into the ring when the window empties and
// re-anchors ("wraps") at the earliest overflow time. Enqueue and dequeue
// are amortized O(1) for in-window events — an append and a bitmap-guided
// bucket probe — versus the O(log n) sifts of a binary heap; far-future
// events degrade gracefully to exactly the heap cost they had before.
//
// Total order: entries are keyed by (Time, Seq) and dequeue in strictly
// ascending key order. Within a bucket all entries share one Time, so Seq
// order alone decides; pushes with ascending Seq (the common case — a
// simulation's schedule sequence is monotone) append in O(1), and an
// out-of-order Seq falls back to a binary insert. With unique (Time, Seq)
// keys the dequeue sequence is a pure function of the push sequence, so a
// simulation driven by this queue is deterministic by construction.
//
// Contract: Push times must be monotone with respect to progress — pushing
// a time earlier than the last Pop'd time (the queue's notion of "now")
// panics, exactly like scheduling an event in the past.
package calq

import "math/bits"

// Entry is one queued item: its (Time, Seq) key and the payload.
type Entry[T any] struct {
	Time uint64
	Seq  uint64
	V    T
}

// before is the (Time, Seq) total order.
func (e Entry[T]) before(f Entry[T]) bool {
	if e.Time != f.Time {
		return e.Time < f.Time
	}
	return e.Seq < f.Seq
}

// Queue is a calendar queue. The zero value is not usable; call New.
type Queue[T any] struct {
	buckets [][]Entry[T] // ring of per-cycle buckets for [base, base+window)
	occ     []uint64     // occupancy bitmap, one bit per bucket
	mask    uint64
	window  uint64 // len(buckets), power of two
	base    uint64 // window start; only Pop advances it
	read    int    // consumed prefix of the bucket holding time base
	headIdx int    // bucket index the consumed prefix applies to
	inWin   int    // live entries in the ring
	over    overHeap[T]
	size    int

	// Cached window minimum: while minOK, bucket minIdx holds the earliest
	// in-window time minTime. Lets a peek+pop pair — and every consecutive
	// pop from the same bucket — cost one bitmap probe instead of two.
	minIdx  int
	minTime uint64
	minOK   bool
}

// bucketCap is each bucket's initial capacity, carved from one shared slab
// so first appends never allocate. A bucket that outgrows its chunk falls
// back to ordinary append growth and keeps the larger array thereafter.
const bucketCap = 4

// New returns a queue whose ring covers window cycles (rounded up to a
// power of two, minimum 64). Larger windows catch more events in the O(1)
// ring at the cost of ring memory; events beyond the window ride the
// overflow heap, costing what a binary heap would have.
func New[T any](window int) *Queue[T] {
	w := 64
	for w < window {
		w <<= 1
	}
	slab := make([]Entry[T], w*bucketCap)
	buckets := make([][]Entry[T], w)
	for i := range buckets {
		buckets[i] = slab[i*bucketCap : i*bucketCap : (i+1)*bucketCap]
	}
	return &Queue[T]{
		buckets: buckets,
		occ:     make([]uint64, w/64),
		mask:    uint64(w - 1),
		window:  uint64(w),
	}
}

// Len returns the number of queued entries.
func (q *Queue[T]) Len() int { return q.size }

// Window returns the ring's width in cycles.
func (q *Queue[T]) Window() int { return int(q.window) }

// OverflowLen returns how many entries currently wait beyond the horizon,
// exposed for tests and occupancy diagnostics.
func (q *Queue[T]) OverflowLen() int { return q.over.len() }

// Push enqueues (time, seq, v). It panics if time precedes the last Pop'd
// time: that would be scheduling an event in the past.
func (q *Queue[T]) Push(time, seq uint64, v T) {
	if time < q.base {
		panic("calq: push before the last popped time")
	}
	q.size++
	if time-q.base >= q.window {
		q.over.push(Entry[T]{Time: time, Seq: seq, V: v})
		return
	}
	i := int(time & q.mask)
	if q.minOK {
		if time < q.minTime {
			q.minIdx, q.minTime = i, time
		}
	} else if q.inWin == 0 {
		q.minIdx, q.minTime, q.minOK = i, time, true
	}
	b := q.buckets[i]
	if len(b) == 0 {
		q.occ[i>>6] |= 1 << (i & 63)
	}
	if n := len(b); n == 0 || b[n-1].Seq <= seq {
		// Monotone schedule sequence: append keeps the bucket Seq-sorted.
		q.buckets[i] = append(b, Entry[T]{Time: time, Seq: seq, V: v})
	} else {
		// Out-of-order Seq: binary-insert within the bucket's live region.
		lo := 0
		if i == q.headIdx {
			lo = q.read
		}
		at := lo
		hi := len(b)
		for at < hi {
			mid := int(uint(at+hi) >> 1)
			if b[mid].Seq <= seq {
				at = mid + 1
			} else {
				hi = mid
			}
		}
		b = append(b, Entry[T]{})
		copy(b[at+1:], b[at:])
		b[at] = Entry[T]{Time: time, Seq: seq, V: v}
		q.buckets[i] = b
	}
	q.inWin++
}

// PeekTime returns the earliest queued time without dequeuing. It never
// moves the window, so Push remains legal for any time at or after the
// last Pop.
func (q *Queue[T]) PeekTime() (uint64, bool) {
	if q.size == 0 {
		return 0, false
	}
	if q.inWin > 0 {
		if !q.minOK {
			q.minIdx, q.minTime = q.winMin()
			q.minOK = true
		}
		if q.over.len() > 0 && q.over.top().Time < q.minTime {
			return q.over.top().Time, true
		}
		return q.minTime, true
	}
	return q.over.top().Time, true
}

// Pop dequeues and returns the entry with the smallest (Time, Seq) key.
// It panics on an empty queue.
func (q *Queue[T]) Pop() Entry[T] {
	if q.size == 0 {
		panic("calq: pop from empty queue")
	}
	if q.inWin == 0 {
		q.rewindow()
	}
	if !q.minOK {
		q.minIdx, q.minTime = q.winMin()
		q.minOK = true
	}
	idx, t := q.minIdx, q.minTime
	b := q.buckets[idx]
	lo := 0
	if idx == q.headIdx {
		lo = q.read
	}
	if q.over.len() > 0 {
		if o := q.over.top(); o.Time < t || (o.Time == t && o.Seq < b[lo].Seq) {
			q.size--
			return q.over.pop()
		}
	}
	e := b[lo]
	b[lo] = Entry[T]{} // release payload references
	q.base = t         // the window start follows simulated time forward
	q.headIdx = idx
	q.read = lo + 1
	if q.read == len(b) {
		q.buckets[idx] = b[:0]
		q.read = 0
		q.occ[idx>>6] &^= 1 << (idx & 63)
		q.minOK = false
	}
	q.inWin--
	q.size--
	return e
}

// winMin locates the earliest occupied bucket at or after base, returning
// its ring index and the (single) time its entries carry. The occupancy
// bitmap makes the probe a handful of word scans even when the ring is
// sparse. Callers must ensure inWin > 0.
func (q *Queue[T]) winMin() (idx int, t uint64) {
	start := int(q.base & q.mask)
	n := len(q.occ)
	w := start >> 6
	// First word: mask off bits below the start position.
	if word := q.occ[w] >> (start & 63); word != 0 {
		d := bits.TrailingZeros64(word)
		return start + d, q.base + uint64(d)
	}
	dist := 64 - (start & 63) // ring distance covered so far
	for k := 1; k <= n; k++ {
		word := q.occ[(w+k)%n]
		if word != 0 {
			d := dist + bits.TrailingZeros64(word)
			return (start + d) & int(q.mask), q.base + uint64(d)
		}
		dist += 64
	}
	panic("calq: corrupt occupancy bitmap")
}

// rewindow re-anchors the empty ring at the earliest overflow time and
// merges every overflow entry inside the new horizon back into buckets —
// the calendar queue's "wrap". Heap pops arrive in ascending (Time, Seq)
// order, so each bucket stays Seq-sorted by construction.
func (q *Queue[T]) rewindow() {
	q.base = q.over.top().Time
	q.read = 0
	q.headIdx = 0
	// The first drained entry carries the new base time, the window minimum.
	q.minIdx, q.minTime, q.minOK = int(q.base&q.mask), q.base, true
	for q.over.len() > 0 && q.over.top().Time-q.base < q.window {
		e := q.over.pop()
		i := int(e.Time & q.mask)
		if len(q.buckets[i]) == 0 {
			q.occ[i>>6] |= 1 << (i & 63)
		}
		q.buckets[i] = append(q.buckets[i], e)
		q.inWin++
	}
}

// overHeap is the far-future overflow: a plain min-heap on (Time, Seq)
// with the sift loops moving the displaced entry through a hole — one copy
// per level instead of a swap's two.
type overHeap[T any] struct {
	h []Entry[T]
}

func (o *overHeap[T]) len() int       { return len(o.h) }
func (o *overHeap[T]) top() *Entry[T] { return &o.h[0] }

func (o *overHeap[T]) push(e Entry[T]) {
	h := append(o.h, e)
	o.h = h
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !e.before(h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
}

func (o *overHeap[T]) pop() Entry[T] {
	h := o.h
	top := h[0]
	last := len(h) - 1
	e := h[last]
	h[last] = Entry[T]{}
	h = h[:last]
	o.h = h
	if last == 0 {
		return top
	}
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		s := l
		if r := l + 1; r < last && h[r].before(h[l]) {
			s = r
		}
		if !h[s].before(e) {
			break
		}
		h[i] = h[s]
		i = s
	}
	h[i] = e
	return top
}
