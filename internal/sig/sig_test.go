package sig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIndicesStable(t *testing.T) {
	a := IndicesFor(0x1234)
	b := IndicesFor(0x1234)
	if a != b {
		t.Fatal("IndicesFor not deterministic")
	}
	for _, i := range a {
		if i >= Bits {
			t.Fatalf("index %d out of range", i)
		}
	}
}

func TestBloomIndicesPathsAgree(t *testing.T) {
	f := func(addrs []uint64, probe uint64) bool {
		var viaAddr, viaIdx Bloom
		for _, a := range addrs {
			viaAddr.Add(a)
			ix := IndicesFor(a)
			viaIdx.AddIndices(&ix)
		}
		pi := IndicesFor(probe)
		return viaAddr.MayContain(probe) == viaIdx.MayContainIndices(&pi) &&
			viaAddr.Len() == viaIdx.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFilterNoFalseNegatives(t *testing.T) {
	f := func(addrs []uint64) bool {
		var flt Filter
		for _, a := range addrs {
			ix := IndicesFor(a)
			flt.Add(&ix)
		}
		for _, a := range addrs {
			ix := IndicesFor(a)
			if !flt.MayContain(&ix) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFilterBalancedChurn drives random interleaved add/remove sequences and
// checks the invariant the conflict index depends on: every address with more
// registrations than removals stays visible.
func TestFilterBalancedChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var flt Filter
	live := map[uint64]int{}
	addrs := make([]uint64, 64)
	for i := range addrs {
		addrs[i] = rng.Uint64() &^ 7
	}
	for step := 0; step < 20_000; step++ {
		a := addrs[rng.Intn(len(addrs))]
		ix := IndicesFor(a)
		if live[a] > 0 && rng.Intn(2) == 0 {
			flt.Remove(&ix)
			live[a]--
		} else {
			flt.Add(&ix)
			live[a]++
		}
		if step%512 == 0 {
			for _, b := range addrs {
				if live[b] > 0 {
					bx := IndicesFor(b)
					if !flt.MayContain(&bx) {
						t.Fatalf("step %d: live address %#x invisible", step, b)
					}
				}
			}
		}
	}
}

func TestFilterSaturatingRemove(t *testing.T) {
	var flt Filter
	ix := IndicesFor(42)
	flt.Remove(&ix) // unbalanced: must not wrap
	if flt.MayContain(&ix) {
		t.Fatal("empty filter claims containment after unbalanced remove")
	}
	flt.Add(&ix)
	if !flt.MayContain(&ix) {
		t.Fatal("add after saturating remove lost the address")
	}
}

func TestFilterReset(t *testing.T) {
	var flt Filter
	ix := IndicesFor(7)
	flt.Add(&ix)
	flt.Reset()
	if flt.MayContain(&ix) {
		t.Fatal("reset did not clear the filter")
	}
}
