// Package sig implements Swarm's conflict-detection signatures: the per-task
// 2 Kbit, 8-way H3-hashed Bloom read/write signatures of Table II (as in
// LogTM-SE), plus the counting presence filter the simulator's conflict index
// uses as its address pre-filter — a counting superposition of every live
// task signature, so a negative lookup proves that no task's signature can
// contain the address.
//
// It lives in its own leaf package (below both task and conflict) so task
// descriptors can embed signatures without an import cycle. All three types
// share one set of hash functions through Indices, letting a call site hash
// an address once and reuse the bit positions across the per-task signature,
// the presence filter, and any membership query.
package sig

import "swarmhints/internal/hashutil"

// Bits and Ways mirror Table II: 2 Kbit signatures, 8 hash ways.
const (
	Bits = 2048
	Ways = 8
)

// hashes are the shared H3 functions, seeded exactly as the original
// conflict-package Bloom so signature contents are unchanged by the move.
var hashes = func() [Ways]*hashutil.H3 {
	var hs [Ways]*hashutil.H3
	for i := range hs {
		hs[i] = hashutil.NewH3(uint64(0xb100 + i))
	}
	return hs
}()

// Indices are the Ways bit positions an address maps to. Computing them once
// per access and passing them by pointer keeps the hash work off the paths
// that touch several signature structures for the same address.
type Indices [Ways]uint16

// IndicesFor hashes addr into its signature bit positions.
func IndicesFor(addr uint64) Indices {
	var ix Indices
	for i, h := range hashes {
		ix[i] = uint16(h.Hash(addr) % Bits)
	}
	return ix
}

// Bloom is a fixed-size Bloom filter over word addresses, modelling the
// read- or write-set signature a Swarm tile keeps per speculative task.
type Bloom struct {
	bits [Bits / 64]uint64
	n    int
}

// Add inserts a word address.
func (b *Bloom) Add(addr uint64) {
	ix := IndicesFor(addr)
	b.AddIndices(&ix)
}

// AddIndices inserts an address by its precomputed bit positions.
func (b *Bloom) AddIndices(ix *Indices) {
	for _, i := range ix {
		b.bits[i>>6] |= 1 << (i & 63)
	}
	b.n++
}

// MayContain reports whether addr may be in the set (no false negatives).
func (b *Bloom) MayContain(addr uint64) bool {
	ix := IndicesFor(addr)
	return b.MayContainIndices(&ix)
}

// MayContainIndices is MayContain with precomputed bit positions.
func (b *Bloom) MayContainIndices(ix *Indices) bool {
	for _, i := range ix {
		if b.bits[i>>6]&(1<<(i&63)) == 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether the two filters may share an element.
func (b *Bloom) Intersects(o *Bloom) bool {
	for i := range b.bits {
		if b.bits[i]&o.bits[i] != 0 {
			return true
		}
	}
	return false
}

// Len returns the number of inserted addresses.
func (b *Bloom) Len() int { return b.n }

// Reset clears the filter for task re-execution.
func (b *Bloom) Reset() { *b = Bloom{} }

// Attempt bundles the read and write signatures of one task attempt. Task
// descriptors hold it by pointer and the conflict index attaches one lazily
// on a task's first registered access (recycling them through a pool): most
// tasks in enqueue-heavy phases never touch shared memory, and keeping the
// 2×2 Kbit block out of the descriptor keeps task allocation and GC scanning
// cheap.
type Attempt struct {
	Read  Bloom
	Write Bloom
}

// Reset clears both signatures.
func (a *Attempt) Reset() {
	a.Read.Reset()
	a.Write.Reset()
}

// Filter is a counting Bloom filter with the same geometry as Bloom. The
// conflict index keeps one as the union of all live task signatures:
// Add/Remove mirror each signature registration, and a negative MayContain
// proves no live signature can contain the address, so the precise accessor
// walk can be skipped without ever missing a conflict.
//
// Remove saturates at zero rather than wrapping, so an unbalanced remove can
// only leave counters too high (extra false positives), never introduce a
// false negative.
type Filter struct {
	n [Bits]uint32
}

// Add registers one signature insertion.
func (f *Filter) Add(ix *Indices) {
	for _, i := range ix {
		f.n[i]++
	}
}

// Remove unregisters one signature insertion.
func (f *Filter) Remove(ix *Indices) {
	for _, i := range ix {
		if f.n[i] > 0 {
			f.n[i]--
		}
	}
}

// MayContain reports whether any registered address may map to ix (no false
// negatives with balanced Add/Remove pairs).
func (f *Filter) MayContain(ix *Indices) bool {
	for _, i := range ix {
		if f.n[i] == 0 {
			return false
		}
	}
	return true
}

// Reset clears the filter.
func (f *Filter) Reset() { *f = Filter{} }
