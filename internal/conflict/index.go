package conflict

import (
	"swarmhints/internal/mem"
	"swarmhints/internal/metrics"
	"swarmhints/internal/task"
)

// Index is the precise per-address accessor map used for conflict detection.
// Swarm filters checks through Bloom signatures and then resolves precisely;
// the Index is the resolution step. Word-granularity, like the undo logs.
type Index struct {
	m map[uint64]*entry
	// rec receives per-tile counts of timestamp comparisons performed,
	// which the simulator turns into conflict-check latency (Table II:
	// 5 cycles + 1 cycle per timestamp compared). Query methods take the
	// tile on whose behalf the check runs.
	rec *metrics.Recorder

	// AbortSet scratch, reused across aborts so closure computation does
	// not allocate. Valid until the next AbortSet call; per-Index, so
	// concurrent engines in a sweep never share it.
	setScratch  map[*task.Task]bool
	workScratch []*task.Task
	outScratch  []*task.Task

	// entryPool recycles entries (with their accessor-slice capacity) that
	// Remove deleted once their address went quiet; most addresses cycle
	// between empty and occupied throughout a run.
	entryPool mem.Pool[entry]
}

type entry struct {
	readers []*task.Task
	writers []*task.Task
}

// NewIndex returns an empty accessor index publishing comparison counts
// into rec. A nil rec gets a private single-tile recorder (standalone use).
func NewIndex(rec *metrics.Recorder) *Index {
	if rec == nil {
		rec = metrics.New(1)
	}
	return &Index{m: make(map[uint64]*entry), rec: rec}
}

// comp returns the comparison counter for tile, clamping out-of-range
// indices to tile 0 so a standalone index (private single-tile recorder)
// accepts any tile value its caller's tasks carry.
func (ix *Index) comp(tile int) *uint64 {
	if tile >= ix.rec.Tiles() {
		tile = 0
	}
	return &ix.rec.Tile(tile).Comparisons
}

// Comparisons returns the total timestamp comparisons performed, summed
// over tiles.
func (ix *Index) Comparisons() uint64 { return ix.rec.Aggregate().Comparisons }

func (ix *Index) get(addr uint64) *entry {
	e := ix.m[addr]
	if e == nil {
		e = ix.entryPool.Get()
		ix.m[addr] = e
	}
	return e
}

// release returns a drained entry to the pool, keeping its slice capacity
// for the next address that heats up.
func (ix *Index) release(addr uint64, e *entry) {
	e.readers = e.readers[:0]
	e.writers = e.writers[:0]
	delete(ix.m, addr)
	ix.entryPool.Put(e)
}

// OnRead registers a speculative read.
func (ix *Index) OnRead(t *task.Task, addr uint64) {
	e := ix.get(addr)
	e.readers = append(e.readers, t)
}

// OnWrite registers a speculative write.
func (ix *Index) OnWrite(t *task.Task, addr uint64) {
	e := ix.get(addr)
	e.writers = append(e.writers, t)
}

// LaterWriters returns uncommitted writers of addr ordered after o,
// excluding self. A read by a task ordered at o must abort these: the
// reader must not observe data from its logical future. tile is the tile
// performing the check, for comparison attribution.
func (ix *Index) LaterWriters(addr uint64, o task.Order, self *task.Task, tile int) []*task.Task {
	e := ix.m[addr]
	if e == nil {
		return nil
	}
	comp := ix.comp(tile)
	var out []*task.Task
	for _, w := range e.writers {
		*comp++
		if w != self && w.State != task.Committed && o.Before(w.Ord()) {
			out = append(out, w)
		}
	}
	return out
}

// LatestEarlierWriter returns the latest-ordered uncommitted writer of addr
// that precedes o, or nil. This is the producer whose value a read at order
// o observes; the engine uses it to model forwarding latency — a consumer
// cannot complete before the producer's execution produced the value.
func (ix *Index) LatestEarlierWriter(addr uint64, o task.Order, self *task.Task, tile int) *task.Task {
	e := ix.m[addr]
	if e == nil {
		return nil
	}
	comp := ix.comp(tile)
	var best *task.Task
	for _, w := range e.writers {
		*comp++
		if w != self && w.State != task.Committed && w.Ord().Before(o) {
			if best == nil || best.Ord().Before(w.Ord()) {
				best = w
			}
		}
	}
	return best
}

// LaterAccessors returns uncommitted tasks ordered after o that read or
// wrote addr, excluding self. A write by a task ordered at o must abort all
// of these (readers observed a stale value; writers' undo chains would
// unwind incorrectly otherwise). tile attributes the comparisons.
func (ix *Index) LaterAccessors(addr uint64, o task.Order, self *task.Task, tile int) []*task.Task {
	e := ix.m[addr]
	if e == nil {
		return nil
	}
	comp := ix.comp(tile)
	var out []*task.Task
	seen := func(t *task.Task) bool {
		for _, x := range out {
			if x == t {
				return true
			}
		}
		return false
	}
	for _, r := range e.readers {
		*comp++
		if r != self && r.State != task.Committed && o.Before(r.Ord()) && !seen(r) {
			out = append(out, r)
		}
	}
	for _, w := range e.writers {
		*comp++
		if w != self && w.State != task.Committed && o.Before(w.Ord()) && !seen(w) {
			out = append(out, w)
		}
	}
	return out
}

// Remove unregisters a task from every address it touched in its current
// attempt. Call on commit and on abort (before ResetAttempt).
func (ix *Index) Remove(t *task.Task) {
	for _, a := range t.Reads {
		if e := ix.m[a]; e != nil {
			e.readers = removeTask(e.readers, t)
			if len(e.readers) == 0 && len(e.writers) == 0 {
				ix.release(a, e)
			}
		}
	}
	for _, a := range t.Writes {
		if e := ix.m[a]; e != nil {
			e.writers = removeTask(e.writers, t)
			if len(e.readers) == 0 && len(e.writers) == 0 {
				ix.release(a, e)
			}
		}
	}
}

func removeTask(ts []*task.Task, t *task.Task) []*task.Task {
	out := ts[:0]
	for _, x := range ts {
		if x != t {
			out = append(out, x)
		}
	}
	return out
}

// AbortSet computes the transitive closure of tasks that must abort when
// the seed aborts: all non-committed descendants (children were created by
// a mispeculating execution) and, for every address the aborting tasks
// wrote, every uncommitted later-order reader or writer of that address
// (data-dependent tasks, Sec. II-B: "on an abort, Swarm aborts only
// descendants and data-dependent tasks"). The seed itself is included.
// The returned slice and the set queried by InLastAbortSet are reused
// scratch, valid only until the next AbortSet call on this Index.
func (ix *Index) AbortSet(seed *task.Task) []*task.Task {
	if ix.setScratch == nil {
		ix.setScratch = make(map[*task.Task]bool)
	} else {
		clear(ix.setScratch)
	}
	inSet := ix.setScratch
	inSet[seed] = true
	work := append(ix.workScratch[:0], seed)
	out := ix.outScratch[:0]
	for len(work) > 0 {
		t := work[len(work)-1]
		work = work[:len(work)-1]
		out = append(out, t)
		for _, c := range t.Children {
			if !inSet[c] && c.State != task.Committed && c.State != task.Squashed {
				inSet[c] = true
				work = append(work, c)
			}
		}
		// Only tasks that actually executed have speculative writes.
		if t.State == task.Running || t.State == task.Finished {
			for _, a := range t.Writes {
				for _, u := range ix.LaterAccessors(a, t.Ord(), t, t.Tile) {
					if !inSet[u] {
						inSet[u] = true
						work = append(work, u)
					}
				}
			}
		}
	}
	ix.workScratch, ix.outScratch = work[:0], out
	return out
}

// InLastAbortSet reports whether t was in the set computed by the most
// recent AbortSet call. The engine uses it to distinguish squashed
// descendants (parent also aborting) from data-dependent retries without
// rebuilding its own membership map.
func (ix *Index) InLastAbortSet(t *task.Task) bool {
	return ix.setScratch[t]
}
