package conflict

import (
	"swarmhints/internal/flat"
	"swarmhints/internal/mem"
	"swarmhints/internal/metrics"
	"swarmhints/internal/sig"
	"swarmhints/internal/task"
)

// Index is the precise per-address accessor map used for conflict detection.
// Swarm filters checks through Bloom signatures and then resolves precisely;
// the Index is the resolution step. Word-granularity, like the undo logs.
//
// The resolution path is filter-first and map-free: every registered access
// populates the task's per-attempt read/write Bloom signature and a counting
// presence filter that is the union of all live signatures, and every query
// consults that filter before probing the precise index — a flat
// open-addressing table — so accesses to quiet addresses (the common case)
// skip the walk entirely. The filter has no false negatives, and a skipped
// walk would have performed zero timestamp comparisons, so the modeled
// comparison counts are bit-identical with and without the pre-filter.
type Index struct {
	tab flat.Table[entry]

	// filt is the counting union of all live task signatures: one Add per
	// OnRead/OnWrite registration, one Remove per Reads/Writes entry on
	// Remove. A negative lookup proves no live signature contains the
	// address, i.e. the precise index holds no entry for it.
	filt sig.Filter

	// memo caches the signature bit positions of the last-hashed address:
	// an access checks the filter, registers, and re-queries the same
	// address several times in a row, and each reuse skips 8 H3 hashes.
	memoAddr uint64
	memoOK   bool
	memoIdx  sig.Indices

	// rec receives per-tile counts of timestamp comparisons performed,
	// which the simulator turns into conflict-check latency (Table II:
	// 5 cycles + 1 cycle per timestamp compared). Query methods take the
	// tile on whose behalf the check runs.
	rec *metrics.Recorder

	// Query epochs: a task with SeenStamp == scanEpoch has already been
	// collected by the current LaterAccessors walk; AbortStamp == abortEpoch
	// means membership in the most recent AbortSet closure. Epochs bump
	// before use, so stamp 0 (fresh or recycled task) never matches.
	scanEpoch  uint64
	abortEpoch uint64

	// Reused query result buffers. Each query method overwrites its own
	// buffer on the next call; AbortSet's internal accessor walks use a
	// separate buffer so a caller may abort tasks while iterating a
	// LaterWriters/LaterAccessors result.
	wrScratch   []*task.Task // LaterWriters results
	accScratch  []*task.Task // LaterAccessors results
	absScratch  []*task.Task // AbortSet's internal LaterAccessors walks
	workScratch []*task.Task
	outScratch  []*task.Task

	// entryPool recycles entries (with their accessor-slice capacity) that
	// Remove deleted once their address went quiet; most addresses cycle
	// between empty and occupied throughout a run.
	entryPool mem.Pool[entry]

	// sigPool recycles the per-attempt signature blocks attached to tasks
	// on their first registered access and reclaimed (cleared) on Remove.
	// Lazy attachment keeps pure-enqueue tasks signature-free.
	sigPool mem.Pool[sig.Attempt]
}

type entry struct {
	readers []*task.Task
	writers []*task.Task
}

// NewIndex returns an empty accessor index publishing comparison counts
// into rec. A nil rec gets a private single-tile recorder (standalone use).
func NewIndex(rec *metrics.Recorder) *Index {
	if rec == nil {
		rec = metrics.New(1)
	}
	return &Index{rec: rec}
}

// comp returns the comparison counter for tile, clamping out-of-range
// indices to tile 0 so a standalone index (private single-tile recorder)
// accepts any tile value its caller's tasks carry.
func (ix *Index) comp(tile int) *uint64 {
	if tile >= ix.rec.Tiles() {
		tile = 0
	}
	return &ix.rec.Tile(tile).Comparisons
}

// Comparisons returns the total timestamp comparisons performed, summed
// over tiles.
func (ix *Index) Comparisons() uint64 { return ix.rec.Aggregate().Comparisons }

// indices returns the signature bit positions for addr through the one-entry
// memo.
func (ix *Index) indices(addr uint64) *sig.Indices {
	if !ix.memoOK || ix.memoAddr != addr {
		ix.memoIdx = sig.IndicesFor(addr)
		ix.memoAddr, ix.memoOK = addr, true
	}
	return &ix.memoIdx
}

func (ix *Index) get(addr uint64) *entry {
	e := ix.tab.Get(addr)
	if e == nil {
		e = ix.entryPool.Get()
		ix.tab.Put(addr, e)
	}
	return e
}

// release returns a drained entry to the pool, keeping its slice capacity
// for the next address that heats up.
func (ix *Index) release(addr uint64, e *entry) {
	e.readers = e.readers[:0]
	e.writers = e.writers[:0]
	ix.tab.Delete(addr)
	ix.entryPool.Put(e)
}

// sigs returns the task's attempt signatures, attaching a pooled block on
// the attempt's first registered access. Blocks come back from Remove
// cleared, so attachment is pointer assignment, not a 4 Kbit memset.
func (ix *Index) sigs(t *task.Task) *sig.Attempt {
	if t.Sigs == nil {
		t.Sigs = ix.sigPool.Get()
	}
	return t.Sigs
}

// OnRead registers a speculative read, stamping the task's read signature
// and the presence filter.
func (ix *Index) OnRead(t *task.Task, addr uint64) {
	idx := ix.indices(addr)
	ix.sigs(t).Read.AddIndices(idx)
	ix.filt.Add(idx)
	e := ix.get(addr)
	e.readers = append(e.readers, t)
}

// OnWrite registers a speculative write, stamping the task's write signature
// and the presence filter.
func (ix *Index) OnWrite(t *task.Task, addr uint64) {
	idx := ix.indices(addr)
	ix.sigs(t).Write.AddIndices(idx)
	ix.filt.Add(idx)
	e := ix.get(addr)
	e.writers = append(e.writers, t)
}

// LaterWriters returns uncommitted writers of addr ordered after o,
// excluding self. A read by a task ordered at o must abort these: the
// reader must not observe data from its logical future. tile is the tile
// performing the check, for comparison attribution. The returned slice is
// scratch, valid until the next LaterWriters call on this Index.
func (ix *Index) LaterWriters(addr uint64, o task.Order, self *task.Task, tile int) []*task.Task {
	if !ix.filt.MayContain(ix.indices(addr)) {
		return nil
	}
	e := ix.tab.Get(addr)
	if e == nil {
		return nil
	}
	comp := ix.comp(tile)
	out := ix.wrScratch[:0]
	for _, w := range e.writers {
		*comp++
		if w != self && w.State != task.Committed && o.Before(w.Ord()) {
			out = append(out, w)
		}
	}
	ix.wrScratch = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// LatestEarlierWriter returns the latest-ordered uncommitted writer of addr
// that precedes o, or nil. This is the producer whose value a read at order
// o observes; the engine uses it to model forwarding latency — a consumer
// cannot complete before the producer's execution produced the value.
func (ix *Index) LatestEarlierWriter(addr uint64, o task.Order, self *task.Task, tile int) *task.Task {
	if !ix.filt.MayContain(ix.indices(addr)) {
		return nil
	}
	e := ix.tab.Get(addr)
	if e == nil {
		return nil
	}
	comp := ix.comp(tile)
	var best *task.Task
	for _, w := range e.writers {
		*comp++
		if w != self && w.State != task.Committed && w.Ord().Before(o) {
			if best == nil || best.Ord().Before(w.Ord()) {
				best = w
			}
		}
	}
	return best
}

// LaterAccessors returns uncommitted tasks ordered after o that read or
// wrote addr, excluding self. A write by a task ordered at o must abort all
// of these (readers observed a stale value; writers' undo chains would
// unwind incorrectly otherwise). tile attributes the comparisons. The
// returned slice is scratch, valid until the next LaterAccessors call on
// this Index (AbortSet's internal walks use a separate buffer, so aborting
// returned tasks while iterating is safe).
func (ix *Index) LaterAccessors(addr uint64, o task.Order, self *task.Task, tile int) []*task.Task {
	ix.accScratch = ix.laterAccessorsInto(ix.accScratch[:0], addr, o, self, tile)
	return ix.accScratch
}

// laterAccessorsInto appends the later accessors of addr to dst. Dedup —
// a task that both read and wrote addr, or read it twice, must appear once —
// is an epoch stamp on the task, bumped per walk, replacing the quadratic
// membership scan over the result slice.
func (ix *Index) laterAccessorsInto(dst []*task.Task, addr uint64, o task.Order, self *task.Task, tile int) []*task.Task {
	if !ix.filt.MayContain(ix.indices(addr)) {
		return dst
	}
	e := ix.tab.Get(addr)
	if e == nil {
		return dst
	}
	ix.scanEpoch++
	ep := ix.scanEpoch
	comp := ix.comp(tile)
	for _, r := range e.readers {
		*comp++
		if r != self && r.State != task.Committed && o.Before(r.Ord()) && r.SeenStamp != ep {
			r.SeenStamp = ep
			dst = append(dst, r)
		}
	}
	for _, w := range e.writers {
		*comp++
		if w != self && w.State != task.Committed && o.Before(w.Ord()) && w.SeenStamp != ep {
			w.SeenStamp = ep
			dst = append(dst, w)
		}
	}
	return dst
}

// Remove unregisters a task from every address it touched in its current
// attempt. Call on commit and on abort (before ResetAttempt). Every
// registration's presence-filter count is released, mirroring the OnRead/
// OnWrite that created it.
func (ix *Index) Remove(t *task.Task) {
	for _, a := range t.Reads {
		ix.filt.Remove(ix.indices(a))
		if e := ix.tab.Get(a); e != nil {
			e.readers = removeTask(e.readers, t)
			if len(e.readers) == 0 && len(e.writers) == 0 {
				ix.release(a, e)
			}
		}
	}
	for _, a := range t.Writes {
		ix.filt.Remove(ix.indices(a))
		if e := ix.tab.Get(a); e != nil {
			e.writers = removeTask(e.writers, t)
			if len(e.readers) == 0 && len(e.writers) == 0 {
				ix.release(a, e)
			}
		}
	}
	if t.Sigs != nil {
		t.Sigs.Reset()
		ix.sigPool.Put(t.Sigs)
		t.Sigs = nil
	}
}

func removeTask(ts []*task.Task, t *task.Task) []*task.Task {
	out := ts[:0]
	for _, x := range ts {
		if x != t {
			out = append(out, x)
		}
	}
	return out
}

// AbortSet computes the transitive closure of tasks that must abort when
// the seed aborts: all non-committed descendants (children were created by
// a mispeculating execution) and, for every address the aborting tasks
// wrote, every uncommitted later-order reader or writer of that address
// (data-dependent tasks, Sec. II-B: "on an abort, Swarm aborts only
// descendants and data-dependent tasks"). The seed itself is included.
// Membership is an epoch stamp on the task (queried by InLastAbortSet); the
// returned slice is reused scratch, valid only until the next AbortSet call
// on this Index.
func (ix *Index) AbortSet(seed *task.Task) []*task.Task {
	ix.abortEpoch++
	ep := ix.abortEpoch
	seed.AbortStamp = ep
	work := append(ix.workScratch[:0], seed)
	out := ix.outScratch[:0]
	for len(work) > 0 {
		t := work[len(work)-1]
		work = work[:len(work)-1]
		out = append(out, t)
		for _, c := range t.Children {
			if c.AbortStamp != ep && c.State != task.Committed && c.State != task.Squashed {
				c.AbortStamp = ep
				work = append(work, c)
			}
		}
		// Only tasks that actually executed have speculative writes.
		if t.State == task.Running || t.State == task.Finished {
			for _, a := range t.Writes {
				ix.absScratch = ix.laterAccessorsInto(ix.absScratch[:0], a, t.Ord(), t, t.Tile)
				for _, u := range ix.absScratch {
					if u.AbortStamp != ep {
						u.AbortStamp = ep
						work = append(work, u)
					}
				}
			}
		}
	}
	ix.workScratch, ix.outScratch = work[:0], out
	return out
}

// InLastAbortSet reports whether t was in the set computed by the most
// recent AbortSet call. The engine uses it to distinguish squashed
// descendants (parent also aborting) from data-dependent retries without
// rebuilding its own membership map.
func (ix *Index) InLastAbortSet(t *task.Task) bool {
	return ix.abortEpoch != 0 && t.AbortStamp == ix.abortEpoch
}
