package conflict

import (
	"math/rand"
	"testing"

	"swarmhints/internal/sig"
	"swarmhints/internal/task"
)

// refIndex is a plain-map reference model of the precise accessor index,
// used to check the flat-table + pre-filter implementation over randomized
// access traces.
type refIndex struct {
	readers map[uint64][]*task.Task
	writers map[uint64][]*task.Task
}

func newRefIndex() *refIndex {
	return &refIndex{readers: map[uint64][]*task.Task{}, writers: map[uint64][]*task.Task{}}
}

func (r *refIndex) laterWriters(addr uint64, o task.Order, self *task.Task) []*task.Task {
	var out []*task.Task
	for _, w := range r.writers[addr] {
		if w != self && w.State != task.Committed && o.Before(w.Ord()) {
			out = append(out, w)
		}
	}
	return out
}

func (r *refIndex) laterAccessors(addr uint64, o task.Order, self *task.Task) []*task.Task {
	var out []*task.Task
	seen := map[*task.Task]bool{}
	for _, lst := range [][]*task.Task{r.readers[addr], r.writers[addr]} {
		for _, t := range lst {
			if t != self && t.State != task.Committed && o.Before(t.Ord()) && !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out
}

func (r *refIndex) remove(t *task.Task) {
	drop := func(m map[uint64][]*task.Task, addrs []uint64) {
		for _, a := range addrs {
			lst := m[a][:0]
			for _, x := range m[a] {
				if x != t {
					lst = append(lst, x)
				}
			}
			if len(lst) == 0 {
				delete(m, a)
			} else {
				m[a] = lst
			}
		}
	}
	drop(r.readers, t.Reads)
	drop(r.writers, t.Writes)
}

func sameTasks(a, b []*task.Task) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPrefilterDifferentialTrace drives a randomized access trace (reads,
// writes, removes, commits, re-registrations) through the Index and a
// plain-map reference in lockstep. It asserts three things on every step:
// query results are element-for-element identical (same tasks, same order),
// the presence filter never reports a false negative for an address with a
// live registration, and signature membership covers every registered access.
func TestPrefilterDifferentialTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ix := NewIndex(nil)
	ref := newRefIndex()

	const nTasks = 40
	const nAddrs = 24
	tasks := make([]*task.Task, nTasks)
	for i := range tasks {
		tasks[i] = mk(uint64(i+1), uint64((i*7)%13)*10)
	}
	addrs := make([]uint64, nAddrs)
	for i := range addrs {
		addrs[i] = 0x1000 + uint64(i)*8
	}
	live := map[*task.Task]bool{}

	for step := 0; step < 30_000; step++ {
		tk := tasks[rng.Intn(nTasks)]
		a := addrs[rng.Intn(nAddrs)]
		switch rng.Intn(6) {
		case 0: // read
			if tk.State == task.Running {
				ix.OnRead(tk, a)
				tk.Reads = append(tk.Reads, a)
				ref.readers[a] = append(ref.readers[a], tk)
				live[tk] = true
			}
		case 1: // write
			if tk.State == task.Running {
				ix.OnWrite(tk, a)
				tk.Writes = append(tk.Writes, a)
				ref.writers[a] = append(ref.writers[a], tk)
				live[tk] = true
			}
		case 2: // query later writers
			q := tasks[rng.Intn(nTasks)]
			got := ix.LaterWriters(a, q.Ord(), q, 0)
			want := ref.laterWriters(a, q.Ord(), q)
			if !sameTasks(got, want) {
				t.Fatalf("step %d: LaterWriters(%#x) = %v, want %v", step, a, got, want)
			}
		case 3: // query later accessors
			q := tasks[rng.Intn(nTasks)]
			got := ix.LaterAccessors(a, q.Ord(), q, 0)
			want := ref.laterAccessors(a, q.Ord(), q)
			if !sameTasks(got, want) {
				t.Fatalf("step %d: LaterAccessors(%#x) = %v, want %v", step, a, got, want)
			}
		case 4: // abort-style remove + reset
			ix.Remove(tk)
			ref.remove(tk)
			tk.ResetAttempt()
			delete(live, tk)
		case 5: // commit, then resurrect as a fresh attempt
			if rng.Intn(4) == 0 {
				ix.Remove(tk)
				ref.remove(tk)
				tk.ResetAttempt()
				tk.State = task.Committed
				delete(live, tk)
			} else if tk.State == task.Committed {
				tk.State = task.Running
			}
		}

		if step%256 == 0 {
			// Zero false negatives: every live registration's address must
			// pass the presence filter and the task's own signature.
			for lt := range live {
				for _, ra := range lt.Reads {
					rix := sig.IndicesFor(ra)
					if !ix.filt.MayContain(&rix) {
						t.Fatalf("step %d: filter false negative for read %#x", step, ra)
					}
					if !lt.Sigs.Read.MayContain(ra) {
						t.Fatalf("step %d: read signature missing %#x", step, ra)
					}
				}
				for _, wa := range lt.Writes {
					wix := sig.IndicesFor(wa)
					if !ix.filt.MayContain(&wix) {
						t.Fatalf("step %d: filter false negative for write %#x", step, wa)
					}
					if !lt.Sigs.Write.MayContain(wa) {
						t.Fatalf("step %d: write signature missing %#x", step, wa)
					}
				}
			}
			// The flat table and the reference must hold the same address set.
			present := map[uint64]bool{}
			ix.tab.Range(func(k uint64, e *entry) bool {
				present[k] = true
				if len(e.readers) == 0 && len(e.writers) == 0 {
					t.Fatalf("step %d: empty entry retained for %#x", step, k)
				}
				return true
			})
			for a := range ref.readers {
				if !present[a] {
					t.Fatalf("step %d: reference reader address %#x missing from table", step, a)
				}
			}
			for a := range ref.writers {
				if !present[a] {
					t.Fatalf("step %d: reference writer address %#x missing from table", step, a)
				}
			}
		}
	}
}

// TestQueryScratchSurvivesAbortWalk pins the buffer contract the engine
// relies on: a LaterAccessors result must stay intact while AbortSet (which
// walks accessors internally) runs on tasks drawn from it.
func TestQueryScratchSurvivesAbortWalk(t *testing.T) {
	ix := NewIndex(nil)
	early := mk(1, 10)
	a, b := mk(2, 20), mk(3, 30)
	for _, tk := range []*task.Task{a, b} {
		ix.OnWrite(tk, 0x40)
		tk.Writes = append(tk.Writes, 0x40)
		ix.OnWrite(tk, 0x48+tk.ID*8)
		tk.Writes = append(tk.Writes, 0x48+tk.ID*8)
	}
	got := ix.LaterAccessors(0x40, early.Ord(), early, 0)
	if len(got) != 2 {
		t.Fatalf("want 2 accessors, got %d", len(got))
	}
	ix.AbortSet(got[0]) // uses the internal walk buffer, not ours
	if got[0] != a || got[1] != b {
		t.Fatal("AbortSet clobbered the LaterAccessors result buffer")
	}
}

// TestSignatureAttemptLifecycle checks the signature lifecycle: a block is
// attached on the first access, populated per access, and reclaimed cleared
// when the task leaves the index; ResetAttempt clears any block still
// attached.
func TestSignatureAttemptLifecycle(t *testing.T) {
	ix := NewIndex(nil)
	tk := mk(1, 10)
	if tk.Sigs != nil {
		t.Fatal("fresh task carries a signature block")
	}
	ix.OnRead(tk, 0x100)
	tk.Reads = append(tk.Reads, 0x100)
	ix.OnWrite(tk, 0x108)
	tk.Writes = append(tk.Writes, 0x108)
	if tk.Sigs == nil || !tk.Sigs.Read.MayContain(0x100) || !tk.Sigs.Write.MayContain(0x108) {
		t.Fatal("signatures not populated by OnRead/OnWrite")
	}
	ix.Remove(tk)
	if tk.Sigs != nil {
		t.Fatal("Remove did not reclaim the signature block")
	}

	// A task reset outside the index (no Remove) clears in place.
	tk2 := mk(2, 20)
	ix.OnRead(tk2, 0x200)
	tk2.Reads = append(tk2.Reads, 0x200)
	tk2.ResetAttempt()
	if tk2.Sigs == nil || tk2.Sigs.Read.Len() != 0 || tk2.Sigs.Write.Len() != 0 {
		t.Fatal("ResetAttempt did not clear an attached signature block")
	}
}
