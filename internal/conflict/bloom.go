// Package conflict implements Swarm's conflict-detection machinery: per-task
// Bloom-filter read/write signatures (2 Kbit, 8-way, H3 hash functions, as in
// Table II and LogTM-SE), and the precise per-address accessor index the
// simulator uses to find the exact set of later-order tasks that must abort
// when an earlier task touches conflicting data.
package conflict

import "swarmhints/internal/hashutil"

// bloomBits and bloomWays mirror Table II: 2 Kbit, 8-way.
const (
	bloomBits = 2048
	bloomWays = 8
)

var bloomHashes = func() [bloomWays]*hashutil.H3 {
	var hs [bloomWays]*hashutil.H3
	for i := range hs {
		hs[i] = hashutil.NewH3(uint64(0xb100 + i))
	}
	return hs
}()

// Bloom is a fixed-size Bloom filter over word addresses, modelling the
// read- or write-set signature a Swarm tile keeps per speculative task.
type Bloom struct {
	bits [bloomBits / 64]uint64
	n    int
}

// Add inserts a word address.
func (b *Bloom) Add(addr uint64) {
	for _, h := range bloomHashes {
		i := h.Hash(addr) % bloomBits
		b.bits[i/64] |= 1 << (i % 64)
	}
	b.n++
}

// MayContain reports whether addr may be in the set (no false negatives).
func (b *Bloom) MayContain(addr uint64) bool {
	for _, h := range bloomHashes {
		i := h.Hash(addr) % bloomBits
		if b.bits[i/64]&(1<<(i%64)) == 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether the two filters may share an element.
func (b *Bloom) Intersects(o *Bloom) bool {
	for i := range b.bits {
		if b.bits[i]&o.bits[i] != 0 {
			return true
		}
	}
	return false
}

// Len returns the number of inserted addresses.
func (b *Bloom) Len() int { return b.n }

// Reset clears the filter for task re-execution.
func (b *Bloom) Reset() { *b = Bloom{} }
