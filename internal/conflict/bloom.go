// Package conflict implements Swarm's conflict-detection machinery: per-task
// Bloom-filter read/write signatures (2 Kbit, 8-way, H3 hash functions, as in
// Table II and LogTM-SE), and the precise per-address accessor index the
// simulator uses to find the exact set of later-order tasks that must abort
// when an earlier task touches conflicting data.
package conflict

import "swarmhints/internal/sig"

// Bloom is the per-task read/write-set signature. The implementation lives
// in internal/sig (a leaf package below task) so task descriptors can embed
// their signatures directly; the alias keeps this package's historical API.
type Bloom = sig.Bloom
