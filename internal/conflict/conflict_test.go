package conflict

import (
	"math/rand"
	"testing"
	"testing/quick"

	"swarmhints/internal/task"
)

func mk(id, ts uint64) *task.Task {
	t := task.NewTask(id, 0, ts, task.HintNone, 0, nil)
	t.State = task.Running
	return t
}

// --- Bloom filter ---

func TestBloomNoFalseNegatives(t *testing.T) {
	f := func(addrs []uint64) bool {
		var b Bloom
		for _, a := range addrs {
			b.Add(a)
		}
		for _, a := range addrs {
			if !b.MayContain(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	// 2 Kbit / 8-way with ~64 inserted addresses should have a very low FP
	// rate; sanity-check it stays under a generous bound.
	var b Bloom
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 64; i++ {
		b.Add(rng.Uint64())
	}
	fp := 0
	const probes = 10_000
	for i := 0; i < probes; i++ {
		if b.MayContain(rng.Uint64()) {
			fp++
		}
	}
	if fp > probes/100 {
		t.Fatalf("false positive rate too high: %d/%d", fp, probes)
	}
}

func TestBloomIntersects(t *testing.T) {
	var a, b Bloom
	a.Add(100)
	b.Add(100)
	if !a.Intersects(&b) {
		t.Fatal("filters sharing an element must intersect")
	}
	var c Bloom
	c.Add(999)
	var d Bloom
	if c.Intersects(&d) {
		t.Fatal("empty filter intersects nothing")
	}
}

func TestBloomReset(t *testing.T) {
	var b Bloom
	b.Add(5)
	b.Reset()
	if b.MayContain(5) || b.Len() != 0 {
		t.Fatal("reset did not clear the filter")
	}
}

// --- Accessor index ---

func TestLaterWritersDetectsFutureData(t *testing.T) {
	ix := NewIndex(nil)
	early, late := mk(1, 10), mk(2, 20)
	late.Writes = append(late.Writes, 0x100)
	ix.OnWrite(late, 0x100)
	got := ix.LaterWriters(0x100, early.Ord(), early, 0)
	if len(got) != 1 || got[0] != late {
		t.Fatalf("later writer not found: %v", got)
	}
	// The later task reading data written earlier is fine (forwarding).
	if got := ix.LaterWriters(0x100, task.Order{TS: 30, ID: 3}, nil, 0); len(got) != 0 {
		t.Fatal("earlier writer flagged as later")
	}
}

func TestLaterAccessorsWriteConflict(t *testing.T) {
	ix := NewIndex(nil)
	early, r, w := mk(1, 10), mk(2, 20), mk(3, 30)
	ix.OnRead(r, 0x200)
	r.Reads = append(r.Reads, 0x200)
	ix.OnWrite(w, 0x200)
	w.Writes = append(w.Writes, 0x200)
	got := ix.LaterAccessors(0x200, early.Ord(), early, 0)
	if len(got) != 2 {
		t.Fatalf("want both later reader and writer, got %d", len(got))
	}
}

func TestCommittedTasksIgnored(t *testing.T) {
	ix := NewIndex(nil)
	early, late := mk(1, 10), mk(2, 20)
	ix.OnWrite(late, 0x300)
	late.State = task.Committed
	if got := ix.LaterWriters(0x300, early.Ord(), early, 0); len(got) != 0 {
		t.Fatal("committed task flagged as conflicting")
	}
}

func TestRemoveUnregisters(t *testing.T) {
	ix := NewIndex(nil)
	early, late := mk(1, 10), mk(2, 20)
	ix.OnWrite(late, 0x400)
	ix.OnRead(late, 0x408)
	late.Writes = append(late.Writes, 0x400)
	late.Reads = append(late.Reads, 0x408)
	ix.Remove(late)
	if got := ix.LaterWriters(0x400, early.Ord(), early, 0); len(got) != 0 {
		t.Fatal("removed task still registered")
	}
	if got := ix.LaterAccessors(0x408, early.Ord(), early, 0); len(got) != 0 {
		t.Fatal("removed reader still registered")
	}
}

func TestSelfExcluded(t *testing.T) {
	ix := NewIndex(nil)
	a := mk(1, 10)
	ix.OnWrite(a, 0x500)
	if got := ix.LaterWriters(0x500, task.Order{TS: 5}, a, 0); len(got) != 0 {
		t.Fatal("task conflicts with itself")
	}
}

func TestAbortSetDescendants(t *testing.T) {
	ix := NewIndex(nil)
	p := mk(1, 10)
	c1, c2 := mk(2, 20), mk(3, 30)
	gc := mk(4, 40)
	c1.Parent, c2.Parent, gc.Parent = p, p, c1
	p.Children = []*task.Task{c1, c2}
	c1.Children = []*task.Task{gc}
	set := ix.AbortSet(p)
	if len(set) != 4 {
		t.Fatalf("abort set size %d, want 4 (parent + 2 children + grandchild)", len(set))
	}
}

func TestAbortSetDataDependents(t *testing.T) {
	ix := NewIndex(nil)
	w := mk(1, 10)
	r := mk(2, 20)
	w.Writes = append(w.Writes, 0x600)
	ix.OnWrite(w, 0x600)
	ix.OnRead(r, 0x600)
	r.Reads = append(r.Reads, 0x600)
	set := ix.AbortSet(w)
	if len(set) != 2 {
		t.Fatalf("abort set %d, want writer + dependent reader", len(set))
	}
}

func TestAbortSetCascade(t *testing.T) {
	// w wrote X; r read X and wrote Y; s read Y. Aborting w must abort all 3.
	ix := NewIndex(nil)
	w, r, s := mk(1, 10), mk(2, 20), mk(3, 30)
	w.Writes = []uint64{0x700}
	ix.OnWrite(w, 0x700)
	r.Reads = []uint64{0x700}
	ix.OnRead(r, 0x700)
	r.Writes = []uint64{0x708}
	ix.OnWrite(r, 0x708)
	s.Reads = []uint64{0x708}
	ix.OnRead(s, 0x708)
	set := ix.AbortSet(w)
	if len(set) != 3 {
		t.Fatalf("cascade abort set %d, want 3", len(set))
	}
}

func TestAbortSetExcludesEarlierTasks(t *testing.T) {
	ix := NewIndex(nil)
	w := mk(5, 50)
	earlier := mk(1, 10)
	w.Writes = []uint64{0x800}
	ix.OnWrite(w, 0x800)
	ix.OnRead(earlier, 0x800)
	earlier.Reads = []uint64{0x800}
	set := ix.AbortSet(w)
	if len(set) != 1 {
		t.Fatalf("earlier-order reader wrongly aborted (set=%d)", len(set))
	}
}

func TestAbortSetIdleTaskHasNoWrites(t *testing.T) {
	ix := NewIndex(nil)
	p := mk(1, 10)
	c := mk(2, 20)
	c.Parent = p
	c.State = task.Idle
	p.Children = []*task.Task{c}
	// Idle child never ran; it has no dependents to drag in.
	set := ix.AbortSet(p)
	if len(set) != 2 {
		t.Fatalf("set=%d, want parent+idle child", len(set))
	}
}

func TestComparisonsCounted(t *testing.T) {
	ix := NewIndex(nil)
	w := mk(1, 10)
	ix.OnWrite(w, 0x900)
	before := ix.Comparisons()
	ix.LaterWriters(0x900, task.Order{TS: 1}, nil, 0)
	if ix.Comparisons() <= before {
		t.Fatal("timestamp comparisons not counted")
	}
}

func TestStandaloneIndexAcceptsAnyTile(t *testing.T) {
	// A standalone index (nil recorder) holds a private single-tile
	// recorder; queries for higher tile numbers must clamp, not panic.
	ix := NewIndex(nil)
	w := mk(1, 10)
	w.Tile = 3
	w.Writes = append(w.Writes, 0xa00)
	ix.OnWrite(w, 0xa00)
	if got := ix.LaterWriters(0xa00, task.Order{TS: 1}, nil, 5); len(got) != 1 {
		t.Fatalf("later writer not found via out-of-range tile: %v", got)
	}
	if set := ix.AbortSet(w); len(set) != 1 {
		t.Fatalf("AbortSet with out-of-range task tile: %v", set)
	}
	if ix.Comparisons() == 0 {
		t.Fatal("clamped comparisons not counted")
	}
}
