package flat

import (
	"math/rand"
	"testing"

	"swarmhints/internal/hashutil"
)

// checkAgainst verifies the table holds exactly the entries of ref.
func checkAgainst(t *testing.T, tab *Table[int], ref map[uint64]*int) {
	t.Helper()
	if tab.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(ref))
	}
	for k, v := range ref {
		if got := tab.Get(k); got != v {
			t.Fatalf("Get(%#x) = %p, want %p", k, got, v)
		}
	}
	seen := 0
	tab.Range(func(k uint64, v *int) bool {
		if ref[k] != v {
			t.Fatalf("Range yielded (%#x, %p), ref has %p", k, v, ref[k])
		}
		seen++
		return true
	})
	if seen != len(ref) {
		t.Fatalf("Range visited %d entries, want %d", seen, len(ref))
	}
}

// TestTableVsMapChurn drives random insert/replace/delete/get sequences and
// keeps the table bit-for-bit consistent with a plain map reference model.
// Keys are drawn from a small pool so slots churn through occupied → deleted
// → reoccupied constantly, exercising backward-shift compaction under load.
func TestTableVsMapChurn(t *testing.T) {
	for _, poolSize := range []int{4, 23, 300} {
		rng := rand.New(rand.NewSource(int64(poolSize)))
		keys := make([]uint64, poolSize)
		for i := range keys {
			keys[i] = rng.Uint64()
		}
		var tab Table[int]
		ref := map[uint64]*int{}
		for step := 0; step < 30_000; step++ {
			k := keys[rng.Intn(len(keys))]
			switch rng.Intn(4) {
			case 0, 1: // insert or replace
				v := new(int)
				*v = step
				tab.Put(k, v)
				ref[k] = v
			case 2: // delete
				got := tab.Delete(k)
				if got != ref[k] {
					t.Fatalf("step %d: Delete(%#x) = %p, want %p", step, k, got, ref[k])
				}
				delete(ref, k)
			case 3: // lookup
				if got := tab.Get(k); got != ref[k] {
					t.Fatalf("step %d: Get(%#x) = %p, want %p", step, k, got, ref[k])
				}
			}
		}
		checkAgainst(t, &tab, ref)
	}
}

// TestTableCollisionHeavy pins pathological probing: many keys that all hash
// into one small window of slots, deleted in an order chosen to force
// backward shifts across long chains and across the table's wrap point.
func TestTableCollisionHeavy(t *testing.T) {
	// Find keys whose home slot (at the table size reached below) lands in
	// the last few slots, so probe chains wrap around index 0.
	const size = minSize
	mask := uint64(size - 1)
	var clustered []uint64
	for k := uint64(0); len(clustered) < 10; k++ {
		if h := hashutil.SplitMix64(k) & mask; h >= size-3 {
			clustered = append(clustered, k)
		}
	}
	var tab Table[int]
	ref := map[uint64]*int{}
	for _, k := range clustered {
		v := new(int)
		tab.Put(k, v)
		ref[k] = v
	}
	checkAgainst(t, &tab, ref)
	// Delete front-to-back, middle-out, then the rest: every deletion must
	// keep the still-present cluster reachable through the shifted chain.
	order := []int{0, 5, 2, 8, 1, 9, 3, 7, 4, 6}
	for _, oi := range order {
		k := clustered[oi]
		if got := tab.Delete(k); got != ref[k] {
			t.Fatalf("Delete(%#x) = %p, want %p", k, got, ref[k])
		}
		delete(ref, k)
		checkAgainst(t, &tab, ref)
	}
}

func TestTableZeroKeyAndValueIdentity(t *testing.T) {
	var tab Table[int]
	v0, v1 := new(int), new(int)
	tab.Put(0, v0)
	if tab.Get(0) != v0 {
		t.Fatal("key 0 not stored")
	}
	tab.Put(0, v1)
	if tab.Get(0) != v1 || tab.Len() != 1 {
		t.Fatal("replace of key 0 failed")
	}
	if tab.Delete(0) != v1 || tab.Len() != 0 || tab.Get(0) != nil {
		t.Fatal("delete of key 0 failed")
	}
	if tab.Delete(0) != nil {
		t.Fatal("double delete returned a value")
	}
}

func TestTableGrowthPreservesEntries(t *testing.T) {
	var tab Table[int]
	ref := map[uint64]*int{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10_000; i++ {
		k := rng.Uint64()
		v := new(int)
		tab.Put(k, v)
		ref[k] = v
	}
	checkAgainst(t, &tab, ref)
}

// FuzzTableOps interprets the fuzz input as an op/key stream against the map
// reference model, letting the fuzzer search for probe-chain corner cases the
// random churn test misses.
func FuzzTableOps(f *testing.F) {
	f.Add([]byte{0, 1, 1, 1, 2, 1, 0, 2, 2, 2})
	f.Add([]byte{0, 0, 0, 0, 2, 0, 0, 0, 1, 0, 2, 0})
	f.Add([]byte{0, 7, 0, 15, 0, 23, 2, 7, 1, 15, 2, 23, 2, 15})
	f.Fuzz(func(t *testing.T, data []byte) {
		var tab Table[int]
		ref := map[uint64]*int{}
		for i := 0; i+1 < len(data); i += 2 {
			op, kb := data[i]%3, data[i+1]
			// Fold the key byte through SplitMix so adjacent byte values
			// spread over the table, but keep the key space small (256)
			// so collisions and reuse stay frequent.
			k := hashutil.SplitMix64(uint64(kb))
			switch op {
			case 0:
				v := new(int)
				tab.Put(k, v)
				ref[k] = v
			case 1:
				if tab.Get(k) != ref[k] {
					t.Fatalf("Get(%#x) diverged from reference", k)
				}
			case 2:
				if tab.Delete(k) != ref[k] {
					t.Fatalf("Delete(%#x) diverged from reference", k)
				}
				delete(ref, k)
			}
		}
		if tab.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", tab.Len(), len(ref))
		}
		for k, v := range ref {
			if tab.Get(k) != v {
				t.Fatalf("final Get(%#x) diverged", k)
			}
		}
	})
}

func TestTableReserve(t *testing.T) {
	var tab Table[int]
	tab.Reserve(1000)
	got := len(tab.vals)
	ref := map[uint64]*int{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		k := rng.Uint64()
		v := new(int)
		tab.Put(k, v)
		ref[k] = v
	}
	if len(tab.vals) != got {
		t.Fatalf("reserved table grew: %d -> %d slots", got, len(tab.vals))
	}
	checkAgainst(t, &tab, ref)
	tab.Reserve(1 << 20) // no-op on a populated table
	if len(tab.vals) != got {
		t.Fatal("Reserve resized a populated table")
	}
}
