// Package flat provides the open-addressing hash table the simulator's
// hottest per-access structures are built on: the conflict-detection accessor
// index and the cache coherence directory both map dense 64-bit addresses to
// pooled entry pointers, and both pay a runtime-map lookup on every simulated
// access when backed by a Go map. Table replaces that with a linear-probe,
// power-of-two-sized open table whose lookups are one multiply-shift hash and
// a short probe over two parallel slices — no hash-map header, no bucket
// indirection, no per-operation allocation.
package flat

import "swarmhints/internal/hashutil"

// Table maps uint64 keys to non-nil *V values. The zero value is an empty
// table ready for use. It is not safe for concurrent use: each simulated
// engine owns its tables, which keeps parallel sweep runs free of shared
// state.
//
// Deletion uses backward-shift compaction instead of tombstones, so probe
// sequences never accumulate dead slots and the load factor bound holds over
// any insert/delete churn — the common lifecycle of conflict-index entries,
// whose addresses heat up and go quiet continuously.
type Table[V any] struct {
	keys []uint64
	vals []*V // vals[i] == nil marks an empty slot
	mask uint64
	n    int
}

const minSize = 16

// Len returns the number of stored entries.
func (t *Table[V]) Len() int { return t.n }

// Reserve pre-sizes an empty table to hold at least n entries without
// growing, so long-lived tables skip the doubling ladder. No-op once the
// table is at least that large or holds entries.
func (t *Table[V]) Reserve(n int) {
	if t.n > 0 {
		return
	}
	want := minSize
	for uint64(n) > uint64(want)/4*3 {
		want *= 2
	}
	if want <= len(t.vals) {
		return
	}
	t.keys = make([]uint64, want)
	t.vals = make([]*V, want)
	t.mask = uint64(want - 1)
}

// Get returns the value stored under key, or nil.
func (t *Table[V]) Get(key uint64) *V {
	if t.n == 0 {
		return nil
	}
	i := hashutil.SplitMix64(key) & t.mask
	for {
		v := t.vals[i]
		if v == nil {
			return nil
		}
		if t.keys[i] == key {
			return v
		}
		i = (i + 1) & t.mask
	}
}

// Put stores v under key, replacing any existing value. v must be non-nil
// (nil marks empty slots).
func (t *Table[V]) Put(key uint64, v *V) {
	if v == nil {
		panic("flat: Put with nil value")
	}
	// Grow at 3/4 load so probe chains stay short.
	if c := len(t.vals); c == 0 || uint64(t.n+1) > uint64(c)/4*3 {
		t.grow()
	}
	i := hashutil.SplitMix64(key) & t.mask
	for {
		if t.vals[i] == nil {
			t.keys[i], t.vals[i] = key, v
			t.n++
			return
		}
		if t.keys[i] == key {
			t.vals[i] = v
			return
		}
		i = (i + 1) & t.mask
	}
}

// Delete removes key, returning the value it held (nil if absent). The freed
// slot is closed by backward-shifting the tail of the probe chain, so the
// table never holds tombstones.
func (t *Table[V]) Delete(key uint64) *V {
	if t.n == 0 {
		return nil
	}
	mask := t.mask
	i := hashutil.SplitMix64(key) & mask
	for {
		if t.vals[i] == nil {
			return nil
		}
		if t.keys[i] == key {
			break
		}
		i = (i + 1) & mask
	}
	old := t.vals[i]
	// Backward-shift deletion (Knuth 6.4 Algorithm R): walk the chain after
	// the hole; any entry whose home slot lies cyclically outside (i, j]
	// would become unreachable, so move it into the hole and continue from
	// its slot.
	j := i
	for {
		j = (j + 1) & mask
		if t.vals[j] == nil {
			break
		}
		home := hashutil.SplitMix64(t.keys[j]) & mask
		if (j-home)&mask >= (j-i)&mask {
			t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
			i = j
		}
	}
	t.keys[i], t.vals[i] = 0, nil
	t.n--
	return old
}

// Range calls fn for every entry until it returns false. Iteration order is
// the table's physical slot order: deterministic for a given operation
// history, but unspecified — callers needing a canonical order must sort.
func (t *Table[V]) Range(fn func(key uint64, v *V) bool) {
	for i, v := range t.vals {
		if v != nil && !fn(t.keys[i], v) {
			return
		}
	}
}

func (t *Table[V]) grow() {
	newCap := minSize
	if len(t.vals) > 0 {
		newCap = len(t.vals) * 2
	}
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]uint64, newCap)
	t.vals = make([]*V, newCap)
	t.mask = uint64(newCap - 1)
	for i, v := range oldVals {
		if v == nil {
			continue
		}
		k := oldKeys[i]
		j := hashutil.SplitMix64(k) & t.mask
		for t.vals[j] != nil {
			j = (j + 1) & t.mask
		}
		t.keys[j], t.vals[j] = k, v
	}
}
