package fault

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisarmedSiteIsNoop(t *testing.T) {
	r := NewRegistry(7)
	s := r.Site("x")
	for i := 0; i < 1000; i++ {
		if f, ok := s.Fire(); ok || f.Err != nil || f.Delay != 0 {
			t.Fatal("disarmed site fired")
		}
	}
	if st := r.Snapshot()["x"]; st.Hits != 0 || st.Fired != 0 || st.Armed {
		t.Fatalf("disarmed site moved counters: %+v", st)
	}
}

func TestEverySchedule(t *testing.T) {
	r := NewRegistry(7)
	s := r.Site("x")
	s.Arm(Plan{Every: 3, After: 2, Times: 2, Fail: true})
	var fires []int
	for i := 1; i <= 12; i++ {
		if f, ok := s.Fire(); ok {
			fires = append(fires, i)
			if !errors.Is(f.Err, ErrInjected) {
				t.Fatalf("fired error %v does not wrap ErrInjected", f.Err)
			}
			if !strings.Contains(f.Err.Error(), "x") {
				t.Fatalf("fired error %v does not name the site", f.Err)
			}
		}
	}
	// After=2 skips hits 1-2; Every=3 selects hits 3, 6, 9, ...; Times=2
	// caps it at the first two.
	if len(fires) != 2 || fires[0] != 3 || fires[1] != 6 {
		t.Fatalf("fires at %v, want [3 6]", fires)
	}
}

func TestProbDeterministicPerHit(t *testing.T) {
	// The decision for hit N is a pure function of (seed, name, N): two
	// registries with the same seed replay the same fire pattern, and a
	// different seed produces a different one.
	pattern := func(seed int64) []bool {
		r := NewRegistry(seed)
		s := r.Site("p")
		s.Arm(Plan{Prob: 0.3})
		out := make([]bool, 200)
		for i := range out {
			_, out[i] = s.Fire()
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	c := pattern(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical patterns")
	}
}

func TestProbRate(t *testing.T) {
	r := NewRegistry(1)
	s := r.Site("rate")
	s.Arm(Plan{Prob: 0.25, Fail: true})
	fired := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if _, ok := s.Fire(); ok {
			fired++
		}
	}
	got := float64(fired) / n
	if math.Abs(got-0.25) > 0.02 {
		t.Fatalf("fire rate %.3f, want ~0.25", got)
	}
}

func TestTimesBoundUnderConcurrency(t *testing.T) {
	r := NewRegistry(1)
	s := r.Site("cap")
	s.Arm(Plan{Every: 1, Times: 5, Fail: true})
	var wg sync.WaitGroup
	var count int64
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if _, ok := s.Fire(); ok {
					mu.Lock()
					count++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if count != 5 {
		t.Fatalf("fired %d times, want exactly 5", count)
	}
}

func TestLatencyOnlyPlanAndSleep(t *testing.T) {
	r := NewRegistry(1)
	s := r.Site("slow")
	s.Arm(Plan{Every: 1, Latency: 5 * time.Millisecond})
	f, ok := s.Fire()
	if !ok || f.Err != nil || f.Delay != 5*time.Millisecond {
		t.Fatalf("latency-only fire = %+v ok=%v", f, ok)
	}
	start := time.Now()
	if err := f.Sleep(context.Background()); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 4*time.Millisecond {
		t.Fatal("Sleep returned early")
	}
	// A dead context cuts the sleep short.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f2 := Fault{Delay: time.Hour}
	if err := f2.Sleep(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep with dead context: %v", err)
	}
}

func TestArmResetsCounters(t *testing.T) {
	r := NewRegistry(1)
	s := r.Site("x")
	s.Arm(Plan{Every: 1, Fail: true})
	s.Fire()
	s.Fire()
	s.Arm(Plan{Every: 1, After: 1, Fail: true})
	if _, ok := s.Fire(); ok {
		t.Fatal("After schedule not relative to re-arming")
	}
	if _, ok := s.Fire(); !ok {
		t.Fatal("second post-arm hit should fire")
	}
}

func TestArmSpecAndParsePlan(t *testing.T) {
	r := NewRegistry(1)
	err := r.ArmSpec("store.write=fail,prob:0.5; swarmd.run.slow=latency:50ms,every:3,after:1,times:2")
	if err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	w := snap["store.write"]
	if !w.Armed || !w.Plan.Fail || w.Plan.Prob != 0.5 {
		t.Fatalf("store.write = %+v", w)
	}
	sl := snap["swarmd.run.slow"]
	if !sl.Armed || sl.Plan.Latency != 50*time.Millisecond || sl.Plan.Every != 3 || sl.Plan.After != 1 || sl.Plan.Times != 2 {
		t.Fatalf("swarmd.run.slow = %+v", sl)
	}

	for _, bad := range []string{
		"noequals", "x=prob:2", "x=unknown:1", "x=", "x=latency:zzz", "x=after:1",
	} {
		if err := r.ArmSpec(bad); err == nil {
			t.Errorf("ArmSpec(%q) accepted", bad)
		}
	}
}

func TestResetDisarmsEverything(t *testing.T) {
	r := NewRegistry(1)
	r.Arm("a", Plan{Every: 1, Fail: true})
	r.Arm("b", Plan{Prob: 1, Fail: true})
	r.Reset()
	for _, name := range r.Names() {
		if _, ok := r.Site(name).Fire(); ok {
			t.Fatalf("site %s fired after Reset", name)
		}
	}
}

func TestScoped(t *testing.T) {
	r := NewRegistry(1)
	s := Scoped(r, "r1", "store.write")
	if s.Name() != "r1.store.write" {
		t.Fatalf("scoped name %q", s.Name())
	}
	if Scoped(r, "", "store.write").Name() != "store.write" {
		t.Fatal("empty scope should resolve the bare name")
	}
	r.Arm("r1.store.write", Plan{Every: 1, Fail: true})
	if _, ok := s.Fire(); !ok {
		t.Fatal("scoped site did not see its arm")
	}
	if _, ok := Scoped(r, "r2", "store.write").Fire(); ok {
		t.Fatal("sibling scope fired")
	}
}

func TestAdminHandler(t *testing.T) {
	r := NewRegistry(1)
	ts := httptest.NewServer(AdminHandler(r))
	defer ts.Close()

	post := func(body string) (*http.Response, map[string]SiteStatus) {
		resp, err := http.Post(ts.URL+"/v1/faults", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var snap map[string]SiteStatus
		_ = json.NewDecoder(resp.Body).Decode(&snap)
		return resp, snap
	}

	resp, snap := post(`{"spec":"s1=fail,every:2"}`)
	if resp.StatusCode != http.StatusOK || !snap["s1"].Armed {
		t.Fatalf("arm via admin: status %d snap %+v", resp.StatusCode, snap)
	}
	r.Site("s1").Fire()
	r.Site("s1").Fire()

	getResp, err := http.Get(ts.URL + "/v1/faults")
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]SiteStatus
	_ = json.NewDecoder(getResp.Body).Decode(&got)
	getResp.Body.Close()
	if got["s1"].Hits != 2 || got["s1"].Fired != 1 {
		t.Fatalf("admin GET snapshot = %+v", got["s1"])
	}

	resp, snap = post(`{"reset":true}`)
	if resp.StatusCode != http.StatusOK || snap["s1"].Armed {
		t.Fatalf("reset via admin: status %d snap %+v", resp.StatusCode, snap)
	}
	if resp, _ := post(`{"spec":"bad spec"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec accepted: %d", resp.StatusCode)
	}
	if resp, _ := post(`{"unknown":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d", resp.StatusCode)
	}
}

// BenchmarkDisarmedFire pins the "injection disabled" cost: one atomic
// load, zero allocations.
func BenchmarkDisarmedFire(b *testing.B) {
	r := NewRegistry(1)
	s := r.Site("hot")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Fire(); ok {
			b.Fatal("fired")
		}
	}
}
