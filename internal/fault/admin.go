package fault

import (
	"encoding/json"
	"net/http"
)

// AdminHandler serves the test-only /v1/faults admin surface over a
// registry:
//
//	GET  /v1/faults   current site statuses (armed plans, hit/fired counts)
//	POST /v1/faults   {"spec":"site=opt,..."} arms sites; {"reset":true}
//	                  disarms everything (spec applies after reset when both
//	                  are present)
//
// Servers register it only behind an explicit opt-in flag (-fault-admin):
// it exists so chaos harnesses can drive a live fleet's injection without
// rebuilding, never for production exposure.
func AdminHandler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/faults", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, r.Snapshot())
	})
	mux.HandleFunc("POST /v1/faults", func(w http.ResponseWriter, req *http.Request) {
		var body struct {
			Spec  string `json:"spec"`
			Reset bool   `json:"reset"`
		}
		dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&body); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if body.Reset {
			r.Reset()
		}
		if body.Spec != "" {
			if err := r.ArmSpec(body.Spec); err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
				return
			}
		}
		writeJSON(w, http.StatusOK, r.Snapshot())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Scoped resolves a site under an optional scope prefix: scope "" returns
// the site for name itself; scope "r1" returns the site "r1.<name>". It
// lets a test arm one replica's sites in a process hosting several
// replicas (every in-process instance shares one registry).
func Scoped(r *Registry, scope, name string) *Site {
	if scope != "" {
		name = scope + "." + name
	}
	return r.Site(name)
}
