// Package fault is a deterministic, seed-driven fault-injection registry:
// named sites embedded in the store's I/O path, swarmd's handlers, and
// swarmgate's client path, each a zero-overhead no-op until a test or
// operator arms it with a Plan (probability, schedule, latency, error).
// Armed sites fire deterministically: the decision for the Nth hit of a
// site is a pure function of (registry seed, site name, N), so a chaos
// scenario replays identically for a fixed seed and per-site hit order —
// the same discipline that makes the simulation engine reproducible,
// applied to the distributed tiers around it.
//
// Wiring pattern: a subsystem resolves its sites once (Registry.Site is a
// get-or-create) and calls Site.Fire on the hot path. A disarmed site's
// Fire is a single atomic load returning false — cheap enough to leave in
// production builds, so the injected and uninjected binaries are the same
// binary. Sites are controllable three ways: programmatically (tests),
// via the -fault CLI flag (ParseSpec), and via the test-only /v1/faults
// admin endpoint (AdminHandler) when a server opts in.
package fault

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the root of every injected error; consumers and tests
// match it with errors.Is. Fired sites wrap it with their site name.
var ErrInjected = errors.New("fault: injected")

// Plan programs one site. The zero Plan never fires; arm a site with at
// least one of Prob or Every. Every and Prob compose as alternatives: a
// hit fires when the schedule says so OR the probability draw says so.
type Plan struct {
	// Prob fires each eligible hit independently with this probability
	// (deterministic per (seed, site, hit index); see Site.Fire).
	Prob float64 `json:"prob,omitempty"`
	// Every fires hit After+1, After+1+Every, ... (1 = every hit).
	Every int `json:"every,omitempty"`
	// After skips the first After hits entirely.
	After int `json:"after,omitempty"`
	// Times caps how many hits fire (0 = unlimited).
	Times int `json:"times,omitempty"`
	// Latency is injected delay: the site's consumer sleeps this long
	// (honoring its context) before acting on the rest of the outcome.
	Latency time.Duration `json:"latency,omitempty"`
	// Fail injects an error: Fire returns a non-nil Fault.Err wrapping
	// ErrInjected. Latency-only plans leave it false.
	Fail bool `json:"fail,omitempty"`
}

// active reports whether the plan can ever fire.
func (p Plan) active() bool { return p.Prob > 0 || p.Every > 0 }

// Fault is one fired outcome: what the site's consumer should inflict.
type Fault struct {
	// Delay to sleep before proceeding (0 = none). Use Sleep.
	Delay time.Duration
	// Err is the injected failure (nil for latency-only plans); it wraps
	// ErrInjected and names the site.
	Err error
}

// Sleep blocks for the fault's delay, returning early with ctx.Err() when
// the context dies first. A zero delay returns immediately.
func (f Fault) Sleep(ctx context.Context) error {
	if f.Delay <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(f.Delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Site is one named injection point. Get one from Registry.Site and keep
// the pointer; Fire on a disarmed site costs one atomic load.
type Site struct {
	name string
	reg  *Registry

	armed atomic.Bool
	plan  atomic.Pointer[Plan]
	err   error // pre-built injected error (immutable once set by Arm)

	hits  atomic.Uint64 // lifetime hits (armed or not, counted only while armed)
	fired atomic.Uint64 // hits that fired
	mu    sync.Mutex    // serializes Arm/Disarm against each other
}

// Name returns the site's registry name.
func (s *Site) Name() string { return s.name }

// Arm programs the site. Arming resets the hit and fired counters so
// After/Every/Times schedules are relative to the arming, which is what
// makes "fail the 3rd write after this point" expressible.
func (s *Site) Arm(p Plan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits.Store(0)
	s.fired.Store(0)
	pp := p
	s.plan.Store(&pp)
	s.err = fmt.Errorf("%w at %s", ErrInjected, s.name)
	s.armed.Store(p.active())
}

// Disarm returns the site to its zero-overhead no-op state.
func (s *Site) Disarm() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.armed.Store(false)
	s.plan.Store(nil)
}

// Fire records one hit and reports whether the site fires on it, with the
// outcome to inflict. Disarmed sites return immediately: one atomic load,
// no counter movement, no allocation — the "injection disabled" cost.
//
// The decision is deterministic: hit N of a site fires iff the schedule
// (After/Every) selects N, or the probability draw for (seed, name, N) —
// a pure hash, not a shared PRNG — lands under Prob. Concurrent callers
// may interleave their hit numbers differently run to run, but the
// decision sequence for the site is fixed, so expected fire counts and
// bounded schedules (Times) replay exactly.
func (s *Site) Fire() (Fault, bool) {
	if !s.armed.Load() {
		return Fault{}, false
	}
	p := s.plan.Load()
	if p == nil {
		return Fault{}, false
	}
	n := s.hits.Add(1)
	if n <= uint64(p.After) {
		return Fault{}, false
	}
	eligible := n - uint64(p.After)
	fire := false
	if p.Every > 0 && (eligible-1)%uint64(p.Every) == 0 {
		fire = true
	}
	if !fire && p.Prob > 0 && hashFloat(s.reg.seed, s.name, n) < p.Prob {
		fire = true
	}
	if !fire {
		return Fault{}, false
	}
	if p.Times > 0 {
		if s.fired.Add(1) > uint64(p.Times) {
			s.fired.Add(^uint64(0)) // undo: the cap was already reached
			return Fault{}, false
		}
	} else {
		s.fired.Add(1)
	}
	f := Fault{Delay: p.Latency}
	if p.Fail {
		f.Err = s.err
	}
	return f, true
}

// hashFloat maps (seed, site, hit) to a uniform draw in [0, 1) with a
// splitmix64 finalizer over an FNV-combined key — stateless, so the draw
// for hit N never depends on which goroutine got there first.
func hashFloat(seed int64, name string, n uint64) float64 {
	h := uint64(1469598103934665603) ^ uint64(seed)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	h ^= n
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}

// SiteStatus is one site's externally visible state, for the admin
// endpoint and tests.
type SiteStatus struct {
	Armed bool   `json:"armed"`
	Plan  *Plan  `json:"plan,omitempty"`
	Hits  uint64 `json:"hits"`
	Fired uint64 `json:"fired"`
}

// Registry holds the named sites of one process (or one test's scope).
// The zero value is not usable; use NewRegistry or the package Default.
type Registry struct {
	seed int64

	mu    sync.Mutex
	sites map[string]*Site
}

// NewRegistry builds an empty registry whose probability draws derive
// from seed.
func NewRegistry(seed int64) *Registry {
	return &Registry{seed: seed, sites: make(map[string]*Site)}
}

// Seed returns the registry's draw seed.
func (r *Registry) Seed() int64 { return r.seed }

// Site returns the named site, creating it disarmed on first use. Callers
// resolve sites once and cache the pointer; the map lookup is not meant
// for hot paths.
func (r *Registry) Site(name string) *Site {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.sites[name]; ok {
		return s
	}
	s := &Site{name: name, reg: r}
	r.sites[name] = s
	return s
}

// Arm programs the named site (creating it if needed).
func (r *Registry) Arm(name string, p Plan) { r.Site(name).Arm(p) }

// Reset disarms every site. Tests defer it so one scenario's injection
// never leaks into the next.
func (r *Registry) Reset() {
	r.mu.Lock()
	sites := make([]*Site, 0, len(r.sites))
	for _, s := range r.sites {
		sites = append(sites, s)
	}
	r.mu.Unlock()
	for _, s := range sites {
		s.Disarm()
	}
}

// Snapshot returns every registered site's status, keyed by name.
func (r *Registry) Snapshot() map[string]SiteStatus {
	r.mu.Lock()
	sites := make(map[string]*Site, len(r.sites))
	for n, s := range r.sites {
		sites[n] = s
	}
	r.mu.Unlock()
	out := make(map[string]SiteStatus, len(sites))
	for n, s := range sites {
		st := SiteStatus{Armed: s.armed.Load(), Hits: s.hits.Load(), Fired: s.fired.Load()}
		if p := s.plan.Load(); p != nil && st.Armed {
			pp := *p
			st.Plan = &pp
		}
		out[n] = st
	}
	return out
}

// ArmSpec parses and applies a -fault spec string: semicolon-separated
// site programs, each "name=opt,opt,...". Options: prob:F, every:N,
// after:N, times:N, latency:DUR, fail. Example:
//
//	store.write=fail,prob:0.2;swarmd.run.slow=latency:50ms,every:3
func (r *Registry) ArmSpec(spec string) error {
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, opts, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return fmt.Errorf("fault: bad site spec %q (want name=opt,...)", part)
		}
		p, err := ParsePlan(opts)
		if err != nil {
			return fmt.Errorf("fault: site %s: %w", name, err)
		}
		r.Arm(name, p)
	}
	return nil
}

// ParsePlan parses one site's comma-separated option list into a Plan.
func ParsePlan(opts string) (Plan, error) {
	var p Plan
	for _, o := range strings.Split(opts, ",") {
		o = strings.TrimSpace(o)
		if o == "" {
			continue
		}
		k, v, hasV := strings.Cut(o, ":")
		var err error
		switch k {
		case "prob":
			p.Prob, err = strconv.ParseFloat(v, 64)
			if err == nil && (p.Prob < 0 || p.Prob > 1) {
				err = fmt.Errorf("prob %v out of [0,1]", p.Prob)
			}
		case "every":
			p.Every, err = strconv.Atoi(v)
		case "after":
			p.After, err = strconv.Atoi(v)
		case "times":
			p.Times, err = strconv.Atoi(v)
		case "latency":
			p.Latency, err = time.ParseDuration(v)
		case "fail":
			if hasV {
				p.Fail, err = strconv.ParseBool(v)
			} else {
				p.Fail = true
			}
		default:
			return Plan{}, fmt.Errorf("unknown option %q", o)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("option %q: %v", o, err)
		}
	}
	if !p.active() {
		return Plan{}, errors.New("plan never fires: set prob or every")
	}
	return p, nil
}

// Names returns the registered site names, sorted, for admin listings.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.sites))
	for n := range r.sites {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Default is the process-wide registry every production subsystem wires
// its sites into. Its seed is 1 until SetDefaultSeed (CLI startup, before
// any site arms) changes it. Tests that need isolation build their own
// Registry; tests of the wired subsystems arm Default and defer Reset.
var Default = NewRegistry(1)

// SetDefaultSeed re-seeds the Default registry's probability draws. Call
// once at process startup, before arming any site.
func SetDefaultSeed(seed int64) { Default.seed = seed }
