package noc

import (
	"testing"
	"testing/quick"
)

func TestLatencySameTile(t *testing.T) {
	m := New(4, nil)
	if m.Latency(5, 5) != 0 {
		t.Fatal("same-tile latency must be 0")
	}
}

func TestLatencyStraightLine(t *testing.T) {
	m := New(4, nil)
	// Tiles 0..3 are row 0: straight X route, 1 cycle/hop.
	if got := m.Latency(0, 3); got != 3 {
		t.Fatalf("straight 3-hop latency = %d, want 3", got)
	}
	// Tiles 0 and 12 are column 0: straight Y route.
	if got := m.Latency(0, 12); got != 3 {
		t.Fatalf("straight column latency = %d, want 3", got)
	}
}

func TestLatencyTurnPenalty(t *testing.T) {
	m := New(4, nil)
	// 0 -> 5: one X hop + one Y hop + 1 turn penalty = 3.
	if got := m.Latency(0, 5); got != 3 {
		t.Fatalf("turning route latency = %d, want 3", got)
	}
}

func TestLatencySymmetric(t *testing.T) {
	m := New(8, nil)
	f := func(a, b uint8) bool {
		s, d := int(a)%64, int(b)%64
		return m.Latency(s, d) == m.Latency(d, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyBounds(t *testing.T) {
	// Max latency on a KxK mesh is 2(K-1)+1 (full diagonal with one turn).
	for _, k := range []int{1, 2, 4, 8} {
		m := New(k, nil)
		maxWant := 2*(k-1) + 1
		for s := 0; s < m.Tiles(); s++ {
			for d := 0; d < m.Tiles(); d++ {
				if got := m.Latency(s, d); got > maxWant {
					t.Fatalf("k=%d latency(%d,%d)=%d exceeds %d", k, s, d, got, maxWant)
				}
			}
		}
	}
}

func TestHopsTriangleInequality(t *testing.T) {
	m := New(8, nil)
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%64, int(b)%64, int(c)%64
		return m.Hops(x, z) <= m.Hops(x, y)+m.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeLatency(t *testing.T) {
	m := New(4, nil)
	if got := m.EdgeLatency(0); got != 1 {
		t.Fatalf("corner tile edge latency = %d, want 1", got)
	}
	// Tile 5 = (1,1): distance 1 from edge, +1 port crossing.
	if got := m.EdgeLatency(5); got != 2 {
		t.Fatalf("inner tile edge latency = %d, want 2", got)
	}
}

func TestSendAccountsFlits(t *testing.T) {
	m := New(4, nil)
	m.Send(MsgMem, 0, 1, 64) // 64B = 4 flits
	m.Send(MsgTask, 0, 2, 40)
	m.Send(MsgTask, 1, 1, 40) // local: no flits
	if got := m.Flits(MsgMem); got != 4 {
		t.Fatalf("mem flits = %d, want 4", got)
	}
	if got := m.Flits(MsgTask); got != 3 {
		t.Fatalf("task flits = %d, want 3 (40B rounds up)", got)
	}
	if got := m.TotalFlits(); got != 7 {
		t.Fatalf("total flits = %d, want 7", got)
	}
}

func TestSendControlFlit(t *testing.T) {
	m := New(2, nil)
	m.Send(MsgGVT, 0, 1, 0)
	if m.Flits(MsgGVT) != 1 {
		t.Fatal("zero-byte message must cost one control flit")
	}
}

func TestBreakdownOrder(t *testing.T) {
	m := New(2, nil)
	m.Send(MsgMem, 0, 1, 16)
	m.Send(MsgAbort, 0, 1, 16)
	m.Send(MsgTask, 0, 1, 16)
	m.Send(MsgGVT, 0, 1, 16)
	b := m.Breakdown()
	for i, v := range b {
		if v != 1 {
			t.Fatalf("breakdown[%d] = %d, want 1", i, v)
		}
	}
}

func TestResetStats(t *testing.T) {
	m := New(2, nil)
	m.Send(MsgMem, 0, 1, 64)
	m.ResetStats()
	if m.TotalFlits() != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
}

func TestClassStrings(t *testing.T) {
	names := map[MsgClass]string{MsgMem: "Mem accs", MsgAbort: "Aborts", MsgTask: "Tasks", MsgGVT: "GVT"}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("class %d string = %q, want %q", c, c.String(), want)
		}
	}
}
