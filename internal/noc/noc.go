// Package noc models the on-chip network of the simulated Swarm system: a
// K×K mesh with X-Y dimension-order routing, 128-bit links, 1 cycle per hop
// going straight and 2 cycles on turns (Table II, like Tile64), plus flit
// accounting broken down by message class so the harness can reproduce the
// paper's "NoC data transferred" figures (Fig. 5b, Fig. 8b). Flits are
// published per injecting tile into a metrics.Recorder.
package noc

import "swarmhints/internal/metrics"

// FlitBytes is the payload of one flit on the 128-bit links.
const FlitBytes = 16

// MsgClass labels traffic for the breakdowns in Fig. 5b / 8b.
type MsgClass int

const (
	// MsgMem is memory-access traffic (L2<->LLC and LLC<->main memory).
	MsgMem MsgClass = iota
	// MsgAbort is abort traffic: child-abort messages and rollback accesses.
	MsgAbort
	// MsgTask is task descriptors enqueued to remote tiles.
	MsgTask
	// MsgGVT is the periodic global-virtual-time update traffic.
	MsgGVT
	numClasses
)

// String names a message class as the paper's legends do.
func (c MsgClass) String() string {
	switch c {
	case MsgMem:
		return "Mem accs"
	case MsgAbort:
		return "Aborts"
	case MsgTask:
		return "Tasks"
	case MsgGVT:
		return "GVT"
	}
	return "?"
}

// Mesh is a K×K mesh interconnect among tiles. Tile i sits at
// (i%K, i/K). Memory controllers sit at the four chip edges.
type Mesh struct {
	k   int
	rec *metrics.Recorder
}

// New returns a mesh with k columns and rows (k*k tiles). Flits are
// attributed per injecting tile into rec; a nil rec gets a private recorder
// (standalone use in tests and tools).
func New(k int, rec *metrics.Recorder) *Mesh {
	if k < 1 {
		k = 1
	}
	if rec == nil {
		rec = metrics.New(k * k)
	}
	return &Mesh{k: k, rec: rec}
}

// Recorder returns the recorder flits are published into. The cache
// hierarchy shares it so the whole memory system collects into one place.
func (m *Mesh) Recorder() *metrics.Recorder { return m.rec }

// K returns the mesh dimension.
func (m *Mesh) K() int { return m.k }

// Tiles returns the number of tiles on the mesh.
func (m *Mesh) Tiles() int { return m.k * m.k }

func (m *Mesh) coords(tile int) (x, y int) { return tile % m.k, tile / m.k }

// Latency returns the cycles for a message from tile src to tile dst under
// X-Y routing: 1 cycle per hop going straight, one extra cycle when the
// route turns from the X dimension into the Y dimension.
func (m *Mesh) Latency(src, dst int) int {
	if src == dst {
		return 0
	}
	sx, sy := m.coords(src)
	dx, dy := m.coords(dst)
	hx := abs(dx - sx)
	hy := abs(dy - sy)
	lat := hx + hy
	if hx > 0 && hy > 0 {
		lat++ // the single X->Y turn costs 2 cycles instead of 1
	}
	return lat
}

// Hops returns the Manhattan hop count between two tiles.
func (m *Mesh) Hops(src, dst int) int {
	sx, sy := m.coords(src)
	dx, dy := m.coords(dst)
	return abs(dx-sx) + abs(dy-sy)
}

// EdgeLatency is the X-Y latency from a tile to its nearest chip edge, where
// the four memory controllers sit (Table II).
func (m *Mesh) EdgeLatency(tile int) int {
	x, y := m.coords(tile)
	d := min4(x, y, m.k-1-x, m.k-1-y)
	return d + 1 // +1 to cross onto the controller port
}

// Send accounts for a message of size bytes in class c, attributed to the
// injecting tile src, and returns its latency. Zero-hop (same tile) messages
// still inject flits locally only if they cross the network; we follow the
// paper and count only remote traffic.
func (m *Mesh) Send(c MsgClass, src, dst, bytes int) int {
	if src == dst {
		return 0
	}
	m.rec.Tile(src).Traffic[c] += uint64(flitsFor(bytes))
	return m.Latency(src, dst)
}

// SendToEdge accounts for a tile<->memory-controller message, attributed to
// the tile.
func (m *Mesh) SendToEdge(c MsgClass, tile, bytes int) int {
	m.rec.Tile(tile).Traffic[c] += uint64(flitsFor(bytes))
	return m.EdgeLatency(tile)
}

// Flits returns flits injected for one class, summed over tiles.
func (m *Mesh) Flits(c MsgClass) uint64 {
	var t uint64
	for i := 0; i < m.rec.Tiles(); i++ {
		t += m.rec.Tile(i).Traffic[c]
	}
	return t
}

// TotalFlits returns all flits injected.
func (m *Mesh) TotalFlits() uint64 {
	var t uint64
	for c := MsgClass(0); c < numClasses; c++ {
		t += m.Flits(c)
	}
	return t
}

// Breakdown returns flits per class in declaration order
// (mem, abort, task, gvt).
func (m *Mesh) Breakdown() [4]uint64 {
	return [4]uint64{m.Flits(MsgMem), m.Flits(MsgAbort), m.Flits(MsgTask), m.Flits(MsgGVT)}
}

// ResetStats clears flit counters (used between measurement regions).
func (m *Mesh) ResetStats() { m.rec.ResetTraffic() }

func flitsFor(bytes int) int {
	if bytes <= 0 {
		return 1 // header-only control flit
	}
	return (bytes + FlitBytes - 1) / FlitBytes
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func min4(a, b, c, d int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	if d < a {
		a = d
	}
	return a
}
