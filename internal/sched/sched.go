// Package sched implements the four spatial task-mapping policies compared
// in the paper (Sec. II-C): Random, an idealized work-Stealing scheduler,
// hint-based mapping (Hints), and the data-centric load balancer (LBHints,
// Sec. VI) with its bucketed hint-to-tile indirection, committed-cycle
// profiling, and periodic greedy reconfiguration. It also provides the
// idle-task-proxy variant evaluated at the end of Sec. VI-A.
package sched

import (
	"fmt"
	"math/rand"

	"swarmhints/internal/hashutil"
	"swarmhints/internal/metrics"
	"swarmhints/internal/task"
)

// Kind selects the scheduling policy.
type Kind int

const (
	// Random sends each new task to a uniformly random tile (Swarm default).
	Random Kind = iota
	// Stealing enqueues locally; idle tiles steal the earliest-timestamp
	// task from the most-loaded tile with zero modeled overhead (Sec. II-C).
	Stealing
	// Hints hashes the task's spatial hint to a tile (Sec. III-B).
	Hints
	// LBHints adds the bucketed tile map and committed-cycle load balancer.
	LBHints
	// LBIdleProxy is LBHints but balancing idle-task counts instead of
	// committed cycles — the inferior proxy evaluated in Sec. VI-A.
	LBIdleProxy
)

// String names the policy as the paper's figure legends do.
func (k Kind) String() string {
	switch k {
	case Random:
		return "Random"
	case Stealing:
		return "Stealing"
	case Hints:
		return "Hints"
	case LBHints:
		return "LBHints"
	case LBIdleProxy:
		return "LBIdleTasks"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// BucketsPerTile is the tile-map granularity ("We find 16 buckets/tile
// works well", Sec. VI).
const BucketsPerTile = 16

// DefaultRebalanceFraction is f in Sec. VI: an under/overloaded tile only
// closes 80% of its deficit/surplus per reconfiguration to avoid
// oscillation.
const DefaultRebalanceFraction = 0.8

// Scheduler maps newly created tasks to tiles and, for the LB kinds,
// maintains the bucket tile map.
type Scheduler struct {
	kind  Kind
	tiles int
	rng   *rand.Rand
	rec   *metrics.Recorder

	// LB state.
	buckets      int
	tileMap      []int
	bucketCycles []uint64
	interval     uint64
	nextReconfig uint64
	fraction     float64
}

// New builds a scheduler for the given tile count. seed fixes the RNG used
// for Random/NOHINT placement so runs are reproducible. Reconfiguration
// counts publish into rec; a nil rec gets a private recorder.
func New(kind Kind, tiles int, interval uint64, seed int64, rec *metrics.Recorder) *Scheduler {
	if rec == nil {
		rec = metrics.New(tiles)
	}
	s := &Scheduler{
		kind:     kind,
		tiles:    tiles,
		rng:      rand.New(rand.NewSource(seed)),
		rec:      rec,
		interval: interval,
		fraction: DefaultRebalanceFraction,
	}
	if kind == LBHints || kind == LBIdleProxy {
		s.buckets = BucketsPerTile * tiles
		s.tileMap = make([]int, s.buckets)
		s.bucketCycles = make([]uint64, s.buckets)
		for b := range s.tileMap {
			s.tileMap[b] = b % tiles // initial uniform division (Sec. VI)
		}
		s.nextReconfig = interval
	}
	return s
}

// Kind returns the policy kind.
func (s *Scheduler) Kind() Kind { return s.kind }

// WantSteal reports whether the engine should run the stealing protocol.
func (s *Scheduler) WantSteal() bool { return s.kind == Stealing }

// SerializeSameHint reports whether dispatch should skip candidates whose
// hashed hint matches an earlier running task. Enabled for all hint-aware
// policies.
func (s *Scheduler) SerializeSameHint() bool {
	return s.kind == Hints || s.kind == LBHints || s.kind == LBIdleProxy
}

// Reconfigs returns how many tile-map reconfigurations have run.
func (s *Scheduler) Reconfigs() int { return int(s.rec.Reconfigs) }

// DestTile picks the destination tile for a newly created task and, for LB
// kinds, records the task's bucket.
func (s *Scheduler) DestTile(t *task.Task, srcTile int) int {
	switch s.kind {
	case Random:
		return s.rng.Intn(s.tiles)
	case Stealing:
		return srcTile // enqueue locally; stealing happens at dispatch
	case Hints:
		if t.HintKind == task.HintSame {
			return srcTile // SAMEHINT with a hint-less parent: stay local
		}
		if !t.HasHint() {
			return s.rng.Intn(s.tiles)
		}
		return hashutil.HintToTile(t.Hint, s.tiles)
	case LBHints, LBIdleProxy:
		if t.HintKind == task.HintSame {
			return srcTile
		}
		if !t.HasHint() {
			return s.rng.Intn(s.tiles)
		}
		b := hashutil.HintToBucket(t.Hint, s.buckets)
		t.Bucket = b
		return s.tileMap[b]
	}
	return 0
}

// OnCommit profiles a committed task's cycles into its bucket counter
// (Sec. VI, "Profiling committed cycles per bucket").
func (s *Scheduler) OnCommit(t *task.Task, cycles uint64) {
	if s.bucketCycles == nil || !t.HasHint() {
		return
	}
	s.bucketCycles[t.Bucket] += cycles
}

// ReconfigDue reports whether a tile-map reconfiguration should run at now.
func (s *Scheduler) ReconfigDue(now uint64) bool {
	return s.tileMap != nil && now >= s.nextReconfig
}

// Reconfigure rebalances the tile map. For LBHints the per-tile load is the
// sum of committed cycles of its buckets; for LBIdleProxy it is the supplied
// idle-task count per tile (spread over that tile's buckets proportionally
// to their cycle counters, or uniformly when unprofiled). Buckets migrate
// greedily from overloaded to underloaded tiles, each side closing at most
// fraction f of its imbalance. Counters reset afterwards so each window is
// profiled independently.
func (s *Scheduler) Reconfigure(now uint64, idlePerTile []int) {
	s.nextReconfig = now + s.interval
	s.rec.Reconfigs++

	load := make([]float64, s.tiles)
	bucketLoad := make([]float64, s.buckets)
	switch s.kind {
	case LBHints:
		for b, c := range s.bucketCycles {
			bucketLoad[b] = float64(c)
			load[s.tileMap[b]] += float64(c)
		}
	case LBIdleProxy:
		// Distribute each tile's idle-task count across its buckets in
		// proportion to profiled cycles (uniform if none profiled).
		tileBuckets := make([][]int, s.tiles)
		tileCycles := make([]uint64, s.tiles)
		for b, t := range s.tileMap {
			tileBuckets[t] = append(tileBuckets[t], b)
			tileCycles[t] += s.bucketCycles[b]
		}
		for t := 0; t < s.tiles; t++ {
			idle := float64(0)
			if t < len(idlePerTile) {
				idle = float64(idlePerTile[t])
			}
			load[t] = idle
			for _, b := range tileBuckets[t] {
				if tileCycles[t] > 0 {
					bucketLoad[b] = idle * float64(s.bucketCycles[b]) / float64(tileCycles[t])
				} else if len(tileBuckets[t]) > 0 {
					bucketLoad[b] = idle / float64(len(tileBuckets[t]))
				}
			}
		}
	}

	total := 0.0
	for _, l := range load {
		total += l
	}
	if total == 0 {
		return
	}
	avg := total / float64(s.tiles)

	// Sort tiles by load ascending.
	order := make([]int, s.tiles)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		t := order[i]
		j := i - 1
		for j >= 0 && load[order[j]] > load[t] {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = t
	}

	// Remaining transferable surplus per overloaded tile and buckets owned,
	// cheapest-first so donations can be sized to the receiver's deficit.
	surplus := make([]float64, s.tiles)
	owned := make([][]int, s.tiles)
	for b := range s.tileMap {
		owned[s.tileMap[b]] = append(owned[s.tileMap[b]], b)
	}
	for t := 0; t < s.tiles; t++ {
		if load[t] > avg {
			surplus[t] = (load[t] - avg) * s.fraction
		}
		bs := owned[t]
		for i := 1; i < len(bs); i++ {
			b := bs[i]
			j := i - 1
			for j >= 0 && bucketLoad[bs[j]] > bucketLoad[b] {
				bs[j+1] = bs[j]
				j--
			}
			bs[j+1] = b
		}
	}

	hi := s.tiles - 1 // index into order, from most loaded down
	for _, u := range order {
		if load[u] >= avg {
			break
		}
		deficit := (avg - load[u]) * s.fraction
		for deficit > 0 && hi >= 0 {
			o := order[hi]
			if load[o] <= avg || surplus[o] <= 0 {
				hi--
				continue
			}
			moved := false
			bs := owned[o]
			for i, b := range bs {
				bl := bucketLoad[b]
				if bl <= 0 || bl > deficit || bl > surplus[o] {
					continue
				}
				s.tileMap[b] = u
				deficit -= bl
				surplus[o] -= bl
				owned[o] = append(bs[:i], bs[i+1:]...)
				owned[u] = append(owned[u], b)
				moved = true
				break
			}
			if !moved {
				hi--
			}
		}
	}

	for b := range s.bucketCycles {
		s.bucketCycles[b] = 0
	}
}

// TileOfBucket exposes the current mapping (for tests and tooling).
func (s *Scheduler) TileOfBucket(b int) int { return s.tileMap[b] }

// Buckets returns the number of buckets (0 for non-LB kinds).
func (s *Scheduler) Buckets() int { return s.buckets }
