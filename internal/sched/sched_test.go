package sched

import (
	"testing"

	"swarmhints/internal/hashutil"
	"swarmhints/internal/metrics"
	"swarmhints/internal/task"
)

func hintTask(id, hint uint64) *task.Task {
	return task.NewTask(id, 0, id, task.HintInt, hint, nil)
}

func TestRandomSpreads(t *testing.T) {
	s := New(Random, 16, 0, 1, nil)
	counts := make([]int, 16)
	for i := uint64(0); i < 1600; i++ {
		counts[s.DestTile(hintTask(i, 7), 0)]++
	}
	for tile, c := range counts {
		if c == 0 {
			t.Fatalf("tile %d never chosen by Random", tile)
		}
	}
}

func TestHintsDeterministicMapping(t *testing.T) {
	s := New(Hints, 16, 0, 1, nil)
	a := s.DestTile(hintTask(1, 42), 3)
	b := s.DestTile(hintTask(2, 42), 9)
	if a != b {
		t.Fatal("same hint mapped to different tiles")
	}
	if a != hashutil.HintToTile(42, 16) {
		t.Fatal("Hints must use the canonical hint-to-tile hash")
	}
}

func TestHintsNoHintIsRandom(t *testing.T) {
	s := New(Hints, 16, 0, 1, nil)
	seen := map[int]bool{}
	for i := uint64(0); i < 200; i++ {
		tk := task.NewTask(i, 0, i, task.HintNone, 0, nil)
		seen[s.DestTile(tk, 0)] = true
	}
	if len(seen) < 8 {
		t.Fatalf("NOHINT tasks hit only %d tiles; expected random spread", len(seen))
	}
}

func TestSameHintStaysLocal(t *testing.T) {
	s := New(Hints, 16, 0, 1, nil)
	p := task.NewTask(1, 0, 1, task.HintNone, 0, nil)
	c := task.NewTask(2, 0, 2, task.HintSame, 0, p)
	if got := s.DestTile(c, 11); got != 11 {
		t.Fatalf("unresolved SAMEHINT went to tile %d, want local 11", got)
	}
}

func TestStealingEnqueuesLocally(t *testing.T) {
	s := New(Stealing, 16, 0, 1, nil)
	if got := s.DestTile(hintTask(1, 99), 5); got != 5 {
		t.Fatalf("Stealing enqueued remotely: %d", got)
	}
	if !s.WantSteal() {
		t.Fatal("Stealing must request the steal protocol")
	}
}

func TestSerializeSameHintFlag(t *testing.T) {
	for _, k := range []Kind{Hints, LBHints, LBIdleProxy} {
		if !New(k, 4, 100, 1, nil).SerializeSameHint() {
			t.Fatalf("%v must serialize same-hint tasks", k)
		}
	}
	for _, k := range []Kind{Random, Stealing} {
		if New(k, 4, 100, 1, nil).SerializeSameHint() {
			t.Fatalf("%v must not serialize by hint", k)
		}
	}
}

func TestLBInitialMapUniform(t *testing.T) {
	s := New(LBHints, 4, 1000, 1, nil)
	counts := make([]int, 4)
	for b := 0; b < s.Buckets(); b++ {
		counts[s.TileOfBucket(b)]++
	}
	for tile, c := range counts {
		if c != BucketsPerTile {
			t.Fatalf("tile %d owns %d buckets initially, want %d", tile, c, BucketsPerTile)
		}
	}
}

func TestLBTaskGetsBucket(t *testing.T) {
	s := New(LBHints, 4, 1000, 1, nil)
	tk := hintTask(1, 777)
	dest := s.DestTile(tk, 0)
	if tk.Bucket < 0 || tk.Bucket >= s.Buckets() {
		t.Fatalf("bucket %d out of range", tk.Bucket)
	}
	if dest != s.TileOfBucket(tk.Bucket) {
		t.Fatal("destination disagrees with tile map")
	}
}

func TestLBReconfigMovesLoadedBuckets(t *testing.T) {
	s := New(LBHints, 4, 1000, 1, nil)
	// Pile committed cycles onto buckets of tile 0.
	var hot []uint64
	for h := uint64(0); len(hot) < 8; h++ {
		b := hashutil.HintToBucket(h, s.Buckets())
		if s.TileOfBucket(b) == 0 {
			hot = append(hot, h)
			tk := hintTask(h+1, h)
			s.DestTile(tk, 0)
			s.OnCommit(tk, 10_000)
		}
	}
	if !s.ReconfigDue(1000) {
		t.Fatal("reconfig should be due")
	}
	s.Reconfigure(1000, nil)
	moved := 0
	for _, h := range hot {
		if s.TileOfBucket(hashutil.HintToBucket(h, s.Buckets())) != 0 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("reconfiguration moved no hot buckets off the overloaded tile")
	}
	if s.Reconfigs() != 1 {
		t.Fatal("reconfig counter wrong")
	}
}

func TestLBReconfigPreservesPartition(t *testing.T) {
	s := New(LBHints, 8, 100, 1, nil)
	for i := uint64(0); i < 500; i++ {
		tk := hintTask(i, i%37)
		s.DestTile(tk, 0)
		s.OnCommit(tk, (i%37)*100)
	}
	s.Reconfigure(100, nil)
	for b := 0; b < s.Buckets(); b++ {
		tile := s.TileOfBucket(b)
		if tile < 0 || tile >= 8 {
			t.Fatalf("bucket %d mapped to invalid tile %d", b, tile)
		}
	}
}

func TestLBReconfigReducesImbalance(t *testing.T) {
	s := New(LBHints, 4, 100, 1, nil)
	// Known synthetic load: buckets on tile 0 carry all cycles.
	loads := func() []float64 {
		l := make([]float64, 4)
		for b := 0; b < s.Buckets(); b++ {
			l[s.TileOfBucket(b)] += float64(s.bucketCycles[b])
		}
		return l
	}
	for b := 0; b < s.Buckets(); b++ {
		if s.TileOfBucket(b) == 0 {
			s.bucketCycles[b] = 1000
		}
	}
	before := loads()
	imbBefore := before[0]
	s.Reconfigure(100, nil)
	// Counters are reset after reconfig; re-express the same per-bucket load
	// to measure the new mapping's balance.
	var after [4]float64
	for b := 0; b < s.Buckets(); b++ {
		if hashOwnedByTile0Initially(b, 4) {
			after[s.TileOfBucket(b)] += 1000
		}
	}
	if after[0] >= imbBefore {
		t.Fatalf("imbalance not reduced: tile0 load %v -> %v", imbBefore, after[0])
	}
}

func hashOwnedByTile0Initially(b, tiles int) bool { return b%tiles == 0 }

func TestLBIdleProxyUsesIdleCounts(t *testing.T) {
	s := New(LBIdleProxy, 2, 100, 1, nil)
	// No committed cycles at all; idle counts alone should still move
	// buckets from tile 0 (loaded) to tile 1 (empty).
	s.Reconfigure(100, []int{100, 0})
	movedTo1 := 0
	for b := 0; b < s.Buckets(); b++ {
		if b%2 == 0 && s.TileOfBucket(b) == 1 {
			movedTo1++
		}
	}
	if movedTo1 == 0 {
		t.Fatal("idle-proxy reconfig moved nothing despite imbalance")
	}
}

func TestReconfigScheduling(t *testing.T) {
	s := New(LBHints, 2, 500, 1, nil)
	if s.ReconfigDue(499) {
		t.Fatal("reconfig due too early")
	}
	if !s.ReconfigDue(500) {
		t.Fatal("reconfig not due at interval")
	}
	s.Reconfigure(500, nil)
	if s.ReconfigDue(999) {
		t.Fatal("reconfig due again before next interval")
	}
}

func TestNonLBKindsNeverReconfig(t *testing.T) {
	for _, k := range []Kind{Random, Stealing, Hints} {
		s := New(k, 4, 100, 1, nil)
		if s.ReconfigDue(1_000_000) {
			t.Fatalf("%v scheduled a reconfig", k)
		}
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{Random: "Random", Stealing: "Stealing", Hints: "Hints", LBHints: "LBHints", LBIdleProxy: "LBIdleTasks"}
	for k, w := range want {
		if k.String() != w {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), w)
		}
	}
}

// --- LBIdleProxy reconfiguration coverage (Sec. VI-A idle-task proxy) ---

// TestLBIdleProxyProportionalBucketSplit pins how an idle count is spread
// over a tile's buckets: proportionally to profiled committed cycles. With
// a 90/10 cycle split and fraction 0.8, only the light bucket fits inside
// the receiver's deficit, so exactly it migrates.
func TestLBIdleProxyProportionalBucketSplit(t *testing.T) {
	s := New(LBIdleProxy, 2, 100, 1, nil)
	var tile0 []int
	for b := 0; b < s.Buckets(); b++ {
		if s.TileOfBucket(b) == 0 {
			tile0 = append(tile0, b)
		}
	}
	heavy, light := tile0[0], tile0[1]
	s.bucketCycles[heavy] = 900
	s.bucketCycles[light] = 100
	// Tile 0 holds all 100 idle tasks: bucketLoad(heavy)=90, (light)=10;
	// the deficit each side may close is (100/2)*0.8 = 40.
	s.Reconfigure(100, []int{100, 0})
	if got := s.TileOfBucket(heavy); got != 0 {
		t.Errorf("heavy bucket (load 90 > transferable 40) moved to tile %d", got)
	}
	if got := s.TileOfBucket(light); got != 1 {
		t.Errorf("light bucket (load 10) stayed on tile %d, want migration to 1", got)
	}
	// Unprofiled tile-0 buckets carry zero load and must not move.
	for _, b := range tile0[2:] {
		if s.TileOfBucket(b) != 0 {
			t.Errorf("zero-load bucket %d migrated", b)
		}
	}
}

// TestLBIdleProxyShortIdleSlice checks a shorter-than-tiles idle slice is
// treated as zero idle for the missing tiles rather than panicking, and
// still rebalances away from the listed loaded tile.
func TestLBIdleProxyShortIdleSlice(t *testing.T) {
	s := New(LBIdleProxy, 4, 100, 1, nil)
	s.Reconfigure(100, []int{80}) // tiles 1..3 unlisted
	moved := 0
	counts := make([]int, 4)
	for b := 0; b < s.Buckets(); b++ {
		tile := s.TileOfBucket(b)
		if tile < 0 || tile >= 4 {
			t.Fatalf("bucket %d mapped to invalid tile %d", b, tile)
		}
		counts[tile]++
		if b%4 == 0 && tile != 0 {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no bucket moved off the only loaded tile")
	}
	if total := counts[0] + counts[1] + counts[2] + counts[3]; total != s.Buckets() {
		t.Errorf("partition broken: %d buckets accounted, want %d", total, s.Buckets())
	}
}

// TestLBIdleProxyZeroLoadKeepsMap checks an all-idle-zero window changes
// nothing except the schedule: the reconfiguration still counts and the
// next one is pushed a full interval out.
func TestLBIdleProxyZeroLoadKeepsMap(t *testing.T) {
	s := New(LBIdleProxy, 4, 250, 1, nil)
	before := make([]int, s.Buckets())
	for b := range before {
		before[b] = s.TileOfBucket(b)
	}
	s.Reconfigure(250, []int{0, 0, 0, 0})
	for b := range before {
		if s.TileOfBucket(b) != before[b] {
			t.Fatalf("bucket %d moved under zero load", b)
		}
	}
	if s.Reconfigs() != 1 {
		t.Errorf("zero-load reconfig not counted: %d", s.Reconfigs())
	}
	if s.ReconfigDue(499) || !s.ReconfigDue(500) {
		t.Error("next reconfiguration not scheduled one interval out")
	}
}

// TestLBIdleProxyResetsProfileCounters checks each profiling window is
// independent: committed-cycle counters clear after a reconfiguration.
func TestLBIdleProxyResetsProfileCounters(t *testing.T) {
	s := New(LBIdleProxy, 2, 100, 1, nil)
	tk := hintTask(1, 5)
	s.DestTile(tk, 0)
	s.OnCommit(tk, 4242)
	s.Reconfigure(100, []int{10, 0})
	for b := 0; b < s.Buckets(); b++ {
		if s.bucketCycles[b] != 0 {
			t.Fatalf("bucket %d cycles not reset: %d", b, s.bucketCycles[b])
		}
	}
}

// TestLBReconfigPublishesToRecorder checks reconfiguration counts publish
// into the shared metrics recorder (chip-level, like the engine wires it).
func TestLBReconfigPublishesToRecorder(t *testing.T) {
	rec := metrics.New(2)
	s := New(LBIdleProxy, 2, 100, 1, rec)
	s.Reconfigure(100, []int{10, 0})
	s.Reconfigure(200, []int{0, 10})
	if rec.Reconfigs != 2 {
		t.Errorf("recorder saw %d reconfigs, want 2", rec.Reconfigs)
	}
	if s.Reconfigs() != 2 {
		t.Errorf("scheduler reports %d reconfigs, want 2", s.Reconfigs())
	}
}
