package metrics

import (
	"fmt"
	"math"
)

// SeedStat is the dispersion of one metric across the per-seed runs of a
// merged snapshot: mean, extremes, and population standard deviation.
type SeedStat struct {
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Stddev float64 `json:"stddev"`
}

// SeedSummary is the cross-seed error-bar block attached to a merged
// snapshot: per-metric dispersion over the individual seed replicas that
// were summed into the aggregate. The aggregate's own fields stay exact
// counter sums (and exactly recomputed derived metrics); only this block
// carries statistics, so nothing in the merged record is a lossy average.
type SeedSummary struct {
	Seeds int `json:"seeds"`

	Cycles          SeedStat `json:"cycles"`
	CommittedTasks  SeedStat `json:"committedTasks"`
	AbortedAttempts SeedStat `json:"abortedAttempts"`
	SpilledTasks    SeedStat `json:"spilledTasks"`
	TrafficTotal    SeedStat `json:"trafficTotal"`
	WastedFraction  SeedStat `json:"wastedFraction"`
	LoadImbalance   SeedStat `json:"loadImbalance"`
}

// seedStat computes one metric's dispersion. Values arrive in fixed seed
// order, so the float accumulation order — and therefore the encoded bytes
// — is identical no matter how the seeds were sharded or scheduled.
func seedStat(vals []float64) SeedStat {
	st := SeedStat{Min: math.Inf(1), Max: math.Inf(-1)}
	if len(vals) == 0 {
		return SeedStat{}
	}
	var sum float64
	for _, v := range vals {
		sum += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean = sum / float64(len(vals))
	var sq float64
	for _, v := range vals {
		d := v - st.Mean
		sq += d * d
	}
	st.Stddev = math.Sqrt(sq / float64(len(vals)))
	return st
}

// SummarizeSeeds builds the cross-seed dispersion block from the per-seed
// snapshots, in the order given (callers pass canonical seed order).
func SummarizeSeeds(snaps []*Snapshot) *SeedSummary {
	sm := &SeedSummary{Seeds: len(snaps)}
	col := func(f func(*Snapshot) float64) SeedStat {
		vals := make([]float64, len(snaps))
		for i, s := range snaps {
			vals[i] = f(s)
		}
		return seedStat(vals)
	}
	sm.Cycles = col(func(s *Snapshot) float64 { return float64(s.Cycles) })
	sm.CommittedTasks = col(func(s *Snapshot) float64 { return float64(s.CommittedTasks) })
	sm.AbortedAttempts = col(func(s *Snapshot) float64 { return float64(s.AbortedAttempts) })
	sm.SpilledTasks = col(func(s *Snapshot) float64 { return float64(s.SpilledTasks) })
	sm.TrafficTotal = col(func(s *Snapshot) float64 { return float64(s.TrafficTotal) })
	sm.WastedFraction = col(func(s *Snapshot) float64 { return s.WastedFraction })
	sm.LoadImbalance = col(func(s *Snapshot) float64 { return s.LoadImbalance })
	return sm
}

// Merge accumulates o into s: every integer counter is summed (per-tile
// blocks via TileCounters.Add over aligned tiles), and the derived metrics
// are recomputed from the merged counters — never averaged — so a merged
// snapshot obeys exactly the same derivations as a single run's. Cycles
// becomes total simulated cycles across the merged runs. Both snapshots
// must describe the same machine shape (cores, tile count). Merge clears
// SeedSummary; MergeSnapshots attaches the summary over the full seed set.
//
// Merged Classification fractions are the access-count-weighted combination
// of the inputs (dropped if either side lacks a profile). All float work is
// deterministic for a fixed merge order, which is why every caller merges
// per-seed snapshots left-to-right in canonical seed order.
func (s *Snapshot) Merge(o *Snapshot) error {
	if s.Cores != o.Cores {
		return fmt.Errorf("metrics: merge cores mismatch: %d vs %d", s.Cores, o.Cores)
	}
	if s.NumTiles != o.NumTiles || len(s.PerTile) != len(o.PerTile) {
		return fmt.Errorf("metrics: merge tile mismatch: %d/%d vs %d/%d",
			s.NumTiles, len(s.PerTile), o.NumTiles, len(o.PerTile))
	}

	s.Cycles += o.Cycles
	s.CommittedTasks += o.CommittedTasks
	s.AbortedAttempts += o.AbortedAttempts
	s.SquashedTasks += o.SquashedTasks
	s.SpilledTasks += o.SpilledTasks
	s.StolenTasks += o.StolenTasks
	s.EnqueuedTasks += o.EnqueuedTasks

	s.CommitCycles += o.CommitCycles
	s.AbortCycles += o.AbortCycles
	s.SpillCycles += o.SpillCycles
	s.StallCycles += o.StallCycles
	s.EmptyCycles += o.EmptyCycles

	s.TrafficMem += o.TrafficMem
	s.TrafficAbort += o.TrafficAbort
	s.TrafficTask += o.TrafficTask
	s.TrafficGVT += o.TrafficGVT
	s.TrafficTotal += o.TrafficTotal

	s.L1Hits += o.L1Hits
	s.L2Hits += o.L2Hits
	s.L3Hits += o.L3Hits
	s.MemAccesses += o.MemAccesses
	s.RemoteForwards += o.RemoteForwards
	s.Invalidations += o.Invalidations
	s.Writebacks += o.Writebacks

	s.Comparisons += o.Comparisons
	s.GVTRounds += o.GVTRounds
	s.Reconfigs += o.Reconfigs

	for i := range s.PerTile {
		s.PerTile[i].Add(&o.PerTile[i])
	}

	if s.Classification != nil && o.Classification != nil {
		a, b := s.Classification, o.Classification
		wa, wb := float64(a.TotalAccesses), float64(b.TotalAccesses)
		merged := &AccessClassification{TotalAccesses: a.TotalAccesses + b.TotalAccesses}
		if tot := wa + wb; tot > 0 {
			mix := func(x, y float64) float64 { return (x*wa + y*wb) / tot }
			merged.MultiHintRO = mix(a.MultiHintRO, b.MultiHintRO)
			merged.SingleHintRO = mix(a.SingleHintRO, b.SingleHintRO)
			merged.MultiHintRW = mix(a.MultiHintRW, b.MultiHintRW)
			merged.SingleHintRW = mix(a.SingleHintRW, b.SingleHintRW)
			merged.Arguments = mix(a.Arguments, b.Arguments)
		}
		s.Classification = merged
	} else {
		s.Classification = nil
	}

	s.SeedSummary = nil
	s.recomputeDerived()
	return nil
}

// recomputeDerived rebuilds the derived float fields from the counter
// fields, using the same formulas as sim.Stats — which is what keeps a
// merged snapshot byte-identical through the StatsFromSnapshot round trip.
func (s *Snapshot) recomputeDerived() {
	s.WastedFraction = 0
	if d := s.AbortCycles + s.CommitCycles; d > 0 {
		s.WastedFraction = float64(s.AbortCycles) / float64(d)
	}

	s.LoadImbalance = 0
	if len(s.PerTile) > 0 {
		var max, sum uint64
		for i := range s.PerTile {
			c := s.PerTile[i].CommitCycles
			sum += c
			if c > max {
				max = c
			}
		}
		if sum > 0 {
			mean := float64(sum) / float64(len(s.PerTile))
			s.LoadImbalance = float64(max) / mean
		}
	}

	s.TrafficFracMem, s.TrafficFracAbort, s.TrafficFracTask, s.TrafficFracGVT = 0, 0, 0, 0
	if s.TrafficTotal > 0 {
		tot := float64(s.TrafficTotal)
		s.TrafficFracMem = float64(s.TrafficMem) / tot
		s.TrafficFracAbort = float64(s.TrafficAbort) / tot
		s.TrafficFracTask = float64(s.TrafficTask) / tot
		s.TrafficFracGVT = float64(s.TrafficGVT) / tot
	}
}

// MergeSnapshots folds the per-seed snapshots — given in canonical seed
// order — into one aggregate left-to-right and attaches the SeedSummary
// over the full set. The inputs are not modified. Because the fold order
// is fixed by the caller's seed order (never by shard or completion
// order), the merged snapshot is byte-identical however the per-seed runs
// were scheduled.
func MergeSnapshots(snaps []*Snapshot) (*Snapshot, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("metrics: merge of zero snapshots")
	}
	merged := &Snapshot{}
	*merged = *snaps[0]
	merged.PerTile = make([]TileCounters, len(snaps[0].PerTile))
	copy(merged.PerTile, snaps[0].PerTile)
	if cl := snaps[0].Classification; cl != nil {
		c := *cl
		merged.Classification = &c
	}
	for _, o := range snaps[1:] {
		if o == nil {
			return nil, fmt.Errorf("metrics: merge of nil snapshot")
		}
		if err := merged.Merge(o); err != nil {
			return nil, err
		}
	}
	merged.recomputeDerived()
	merged.SeedSummary = SummarizeSeeds(snaps)
	return merged, nil
}
