package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements the Prometheus text exposition format (version
// 0.0.4), the subset needed to publish operational counters and gauges —
// the swarmd service's /metrics endpoint is the consumer. Output is
// byte-deterministic: metrics print in the order given and series within a
// metric are sorted by label signature.

// PromValue is one series of a metric: a label set and its current value.
type PromValue struct {
	Labels map[string]string
	Value  float64
}

// PromMetric is one metric family: name, help text, type, and its series.
// Type is "counter" or "gauge".
type PromMetric struct {
	Name   string
	Help   string
	Type   string
	Values []PromValue
}

// PromSingle builds a one-series family with no labels — the shape of most
// operational counters and gauges. typ is "counter" or "gauge".
func PromSingle(name, help, typ string, v float64) PromMetric {
	return PromMetric{Name: name, Help: help, Type: typ,
		Values: []PromValue{{Value: v}}}
}

// PromPerLabel builds a counter family with one series per map entry,
// labeled label=key. WriteProm sorts the series, so map order is harmless.
func PromPerLabel(name, help, label string, m map[string]uint64) PromMetric {
	pm := PromMetric{Name: name, Help: help, Type: "counter"}
	for k, v := range m {
		pm.Values = append(pm.Values, PromValue{
			Labels: map[string]string{label: k}, Value: float64(v)})
	}
	return pm
}

// PromPerLabelGauge builds a gauge family with one series per map entry,
// labeled label=key — the shape of per-replica score and health gauges.
func PromPerLabelGauge(name, help, label string, m map[string]float64) PromMetric {
	pm := PromMetric{Name: name, Help: help, Type: "gauge"}
	for k, v := range m {
		pm.Values = append(pm.Values, PromValue{
			Labels: map[string]string{label: k}, Value: v})
	}
	return pm
}

// labelEscaper escapes label values per the exposition format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// labelString renders a label set as {k="v",...} with sorted keys, or ""
// for an empty set.
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, labelEscaper.Replace(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// WriteProm writes the metric families in the Prometheus text exposition
// format. Series within a family are sorted by label signature so the
// output is deterministic regardless of map iteration order.
func WriteProm(w io.Writer, families []PromMetric) error {
	for _, m := range families {
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Type); err != nil {
			return err
		}
		lines := make([]string, 0, len(m.Values))
		for _, v := range m.Values {
			lines = append(lines, fmt.Sprintf("%s%s %s",
				m.Name, labelString(v.Labels), strconv.FormatFloat(v.Value, 'g', -1, 64)))
		}
		sort.Strings(lines)
		for _, line := range lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}
