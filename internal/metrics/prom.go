package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements the Prometheus text exposition format (version
// 0.0.4), the subset needed to publish operational counters and gauges —
// the swarmd service's /metrics endpoint is the consumer. Output is
// byte-deterministic: metrics print in the order given and series within a
// metric are sorted by label signature.

// PromValue is one series of a metric: a label set and its current value.
type PromValue struct {
	Labels map[string]string
	Value  float64
}

// PromMetric is one metric family: name, help text, type, and its series.
// Type is "counter", "gauge", or "histogram". Counter/gauge families fill
// Values; histogram families fill Hist instead.
type PromMetric struct {
	Name   string
	Help   string
	Type   string
	Values []PromValue
	Hist   []PromHistSeries
}

// PromHistSeries is one histogram series: its label set, the bucket upper
// bounds in ascending order (the implicit +Inf bucket is Buckets' final
// entry, beyond the last bound), cumulative bucket counts, and the
// _sum/_count pair. Buckets must have len(Bounds)+1 entries and be
// cumulative (each entry >= the previous).
type PromHistSeries struct {
	Labels  map[string]string
	Bounds  []float64
	Buckets []uint64
	Sum     float64
	Count   uint64
}

// PromSingle builds a one-series family with no labels — the shape of most
// operational counters and gauges. typ is "counter" or "gauge".
func PromSingle(name, help, typ string, v float64) PromMetric {
	return PromMetric{Name: name, Help: help, Type: typ,
		Values: []PromValue{{Value: v}}}
}

// PromPerLabel builds a counter family with one series per map entry,
// labeled label=key. WriteProm sorts the series, so map order is harmless.
func PromPerLabel(name, help, label string, m map[string]uint64) PromMetric {
	pm := PromMetric{Name: name, Help: help, Type: "counter"}
	for k, v := range m {
		pm.Values = append(pm.Values, PromValue{
			Labels: map[string]string{label: k}, Value: float64(v)})
	}
	return pm
}

// PromPerLabelGauge builds a gauge family with one series per map entry,
// labeled label=key — the shape of per-replica score and health gauges.
func PromPerLabelGauge(name, help, label string, m map[string]float64) PromMetric {
	pm := PromMetric{Name: name, Help: help, Type: "gauge"}
	for k, v := range m {
		pm.Values = append(pm.Values, PromValue{
			Labels: map[string]string{label: k}, Value: v})
	}
	return pm
}

// labelEscaper escapes label values per the exposition format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// labelString renders a label set as {k="v",...} with sorted keys, or ""
// for an empty set.
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, labelEscaper.Replace(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// bucketLabelString renders a label set plus the le bucket label. The le
// label is appended after the sorted series labels, matching the common
// client-library layout.
func bucketLabelString(labels map[string]string, le string) string {
	base := labelString(labels)
	if base == "" {
		return `{le="` + le + `"}`
	}
	return base[:len(base)-1] + `,le="` + le + `"}`
}

// formatBound renders a bucket upper bound as its le label value.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// writeHist renders one histogram family: per series, the cumulative
// _bucket lines in bound order (ending with +Inf), then _sum and _count.
// Series are sorted by label signature; bucket order within a series is
// never re-sorted — le values are numeric, not lexical.
func writeHist(w io.Writer, m PromMetric) error {
	type rendered struct {
		sig   string
		lines []string
	}
	series := make([]rendered, 0, len(m.Hist))
	for _, h := range m.Hist {
		r := rendered{sig: labelString(h.Labels)}
		for i, b := range h.Bounds {
			r.lines = append(r.lines, fmt.Sprintf("%s_bucket%s %d",
				m.Name, bucketLabelString(h.Labels, formatBound(b)), h.Buckets[i]))
		}
		r.lines = append(r.lines, fmt.Sprintf("%s_bucket%s %d",
			m.Name, bucketLabelString(h.Labels, "+Inf"), h.Buckets[len(h.Buckets)-1]))
		r.lines = append(r.lines, fmt.Sprintf("%s_sum%s %s",
			m.Name, r.sig, strconv.FormatFloat(h.Sum, 'g', -1, 64)))
		r.lines = append(r.lines, fmt.Sprintf("%s_count%s %d", m.Name, r.sig, h.Count))
		series = append(series, r)
	}
	sort.Slice(series, func(i, j int) bool { return series[i].sig < series[j].sig })
	for _, r := range series {
		for _, line := range r.lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteProm writes the metric families in the Prometheus text exposition
// format. Series within a family are sorted by label signature so the
// output is deterministic regardless of map iteration order.
func WriteProm(w io.Writer, families []PromMetric) error {
	for _, m := range families {
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Type); err != nil {
			return err
		}
		if m.Type == "histogram" {
			if err := writeHist(w, m); err != nil {
				return err
			}
			continue
		}
		lines := make([]string, 0, len(m.Values))
		for _, v := range m.Values {
			lines = append(lines, fmt.Sprintf("%s%s %s",
				m.Name, labelString(v.Labels), strconv.FormatFloat(v.Value, 'g', -1, 64)))
		}
		sort.Strings(lines)
		for _, line := range lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}
