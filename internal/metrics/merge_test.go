package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// seedSnap builds a synthetic per-seed snapshot with every counter family
// populated and distinct per seed, so a dropped term in Merge shows up as a
// wrong sum rather than a lucky zero.
func seedSnap(i uint64) *Snapshot {
	s := &Snapshot{
		Cycles: 1000 + i, Cores: 4, NumTiles: 2,
		CommittedTasks: 100 + i, AbortedAttempts: 10 + i, SquashedTasks: 5 + i,
		SpilledTasks: 3 + i, StolenTasks: 2 + i, EnqueuedTasks: 120 + i,
		CommitCycles: 800 + i, AbortCycles: 80 + i, SpillCycles: 8 + i,
		StallCycles: 40 + i, EmptyCycles: 20 + i,
		TrafficMem: 50 + i, TrafficAbort: 15 + i, TrafficTask: 25 + i,
		TrafficGVT: 10 + i, TrafficTotal: 100 + 4*i,
		L1Hits: 500 + i, L2Hits: 50 + i, L3Hits: 5 + i, MemAccesses: 2 + i,
		RemoteForwards: 7 + i, Invalidations: 6 + i, Writebacks: 4 + i,
		Comparisons: 300 + i, GVTRounds: 30 + i, Reconfigs: 1 + i,
		Classification: &AccessClassification{
			MultiHintRO: 0.1 * float64(i+1), SingleHintRO: 0.2,
			MultiHintRW: 0.05, SingleHintRW: 0.15, Arguments: 0.3,
			TotalAccesses: 1000 * (i + 1),
		},
		PerTile: []TileCounters{
			{CommitCycles: 500 + i, CommittedTasks: 60 + i, L1Hits: 300 + i},
			{CommitCycles: 300 + i, CommittedTasks: 40 + i, L1Hits: 200 + i},
		},
	}
	s.recomputeDerived()
	return s
}

func TestMergeSumsCountersAndRecomputesDerived(t *testing.T) {
	a, b := seedSnap(0), seedSnap(7)
	m, err := MergeSnapshots([]*Snapshot{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles != a.Cycles+b.Cycles {
		t.Errorf("Cycles = %d, want sum %d", m.Cycles, a.Cycles+b.Cycles)
	}
	if m.CommittedTasks != a.CommittedTasks+b.CommittedTasks {
		t.Errorf("CommittedTasks not summed")
	}
	if m.TrafficTotal != a.TrafficTotal+b.TrafficTotal {
		t.Errorf("TrafficTotal not summed")
	}
	if m.Reconfigs != a.Reconfigs+b.Reconfigs || m.GVTRounds != a.GVTRounds+b.GVTRounds {
		t.Errorf("event counters not summed")
	}
	for i := range m.PerTile {
		if m.PerTile[i].CommitCycles != a.PerTile[i].CommitCycles+b.PerTile[i].CommitCycles {
			t.Errorf("tile %d CommitCycles not summed", i)
		}
	}

	// Derived metrics are recomputed from merged counters, never averaged.
	if want := float64(m.AbortCycles) / float64(m.AbortCycles+m.CommitCycles); m.WastedFraction != want {
		t.Errorf("WastedFraction = %v, want recomputed %v", m.WastedFraction, want)
	}
	var max, sum uint64
	for i := range m.PerTile {
		c := m.PerTile[i].CommitCycles
		sum += c
		if c > max {
			max = c
		}
	}
	if want := float64(max) / (float64(sum) / float64(len(m.PerTile))); m.LoadImbalance != want {
		t.Errorf("LoadImbalance = %v, want recomputed %v", m.LoadImbalance, want)
	}
	if want := float64(m.TrafficMem) / float64(m.TrafficTotal); m.TrafficFracMem != want {
		t.Errorf("TrafficFracMem = %v, want recomputed %v", m.TrafficFracMem, want)
	}

	// Classification is the access-weighted mix.
	wa, wb := float64(a.Classification.TotalAccesses), float64(b.Classification.TotalAccesses)
	if want := (a.Classification.MultiHintRO*wa + b.Classification.MultiHintRO*wb) / (wa + wb); m.Classification.MultiHintRO != want {
		t.Errorf("Classification.MultiHintRO = %v, want weighted %v", m.Classification.MultiHintRO, want)
	}
	if m.Classification.TotalAccesses != a.Classification.TotalAccesses+b.Classification.TotalAccesses {
		t.Errorf("Classification.TotalAccesses not summed")
	}

	// One side without a profile drops the merged profile entirely.
	c := seedSnap(3)
	c.Classification = nil
	m2, err := MergeSnapshots([]*Snapshot{a, c})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Classification != nil {
		t.Error("merged Classification present although one input lacked it")
	}
}

func TestMergeRejectsShapeMismatch(t *testing.T) {
	a := seedSnap(0)
	b := seedSnap(1)
	b.Cores = 8
	if _, err := MergeSnapshots([]*Snapshot{a, b}); err == nil || !strings.Contains(err.Error(), "cores") {
		t.Errorf("cores mismatch not rejected: %v", err)
	}
	c := seedSnap(1)
	c.NumTiles = 4
	if _, err := MergeSnapshots([]*Snapshot{a, c}); err == nil || !strings.Contains(err.Error(), "tile") {
		t.Errorf("tile mismatch not rejected: %v", err)
	}
	if _, err := MergeSnapshots(nil); err == nil {
		t.Error("zero-snapshot merge not rejected")
	}
	if _, err := MergeSnapshots([]*Snapshot{a, nil}); err == nil {
		t.Error("nil snapshot not rejected")
	}
}

func TestMergeSnapshotsDoesNotMutateInputs(t *testing.T) {
	snaps := []*Snapshot{seedSnap(0), seedSnap(1), seedSnap(2)}
	before := make([][]byte, len(snaps))
	for i, s := range snaps {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		before[i] = b
	}
	if _, err := MergeSnapshots(snaps); err != nil {
		t.Fatal(err)
	}
	for i, s := range snaps {
		after, _ := json.Marshal(s)
		if !bytes.Equal(before[i], after) {
			t.Errorf("input snapshot %d mutated by MergeSnapshots", i)
		}
	}
}

func TestMergeSnapshotsByteDeterministic(t *testing.T) {
	mk := func() []byte {
		m, err := MergeSnapshots([]*Snapshot{seedSnap(4), seedSnap(9), seedSnap(2), seedSnap(11)})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(mk(), mk()) {
		t.Error("repeated merges of the same inputs encode differently")
	}
}

func TestSummarizeSeeds(t *testing.T) {
	snaps := []*Snapshot{seedSnap(0), seedSnap(6)} // Cycles 1000, 1006
	sm := SummarizeSeeds(snaps)
	if sm.Seeds != 2 {
		t.Fatalf("Seeds = %d, want 2", sm.Seeds)
	}
	if sm.Cycles.Mean != 1003 || sm.Cycles.Min != 1000 || sm.Cycles.Max != 1006 {
		t.Errorf("Cycles stat = %+v, want mean 1003 min 1000 max 1006", sm.Cycles)
	}
	if sm.Cycles.Stddev != 3 { // population stddev of {1000, 1006}
		t.Errorf("Cycles.Stddev = %v, want 3", sm.Cycles.Stddev)
	}
	// A single seed has zero dispersion and mean == the value.
	one := SummarizeSeeds(snaps[:1])
	if one.Cycles.Stddev != 0 || one.Cycles.Mean != 1000 || one.Cycles.Min != one.Cycles.Max {
		t.Errorf("single-seed stat = %+v, want degenerate point at 1000", one.Cycles)
	}
	// Float metrics summarize the per-seed derived values.
	want := (snaps[0].WastedFraction + snaps[1].WastedFraction) / 2
	if math.Abs(sm.WastedFraction.Mean-want) > 1e-15 {
		t.Errorf("WastedFraction.Mean = %v, want %v", sm.WastedFraction.Mean, want)
	}
}

// TestMergedSnapshotCarriesSummary: the aggregate from MergeSnapshots is
// stamped with the dispersion block, while Merge alone (a running fold)
// never carries a stale one.
func TestMergedSnapshotCarriesSummary(t *testing.T) {
	m, err := MergeSnapshots([]*Snapshot{seedSnap(0), seedSnap(1)})
	if err != nil {
		t.Fatal(err)
	}
	if m.SeedSummary == nil || m.SeedSummary.Seeds != 2 {
		t.Fatalf("merged SeedSummary = %+v, want Seeds=2", m.SeedSummary)
	}
	a := seedSnap(0)
	a.SeedSummary = &SeedSummary{Seeds: 99}
	if err := a.Merge(seedSnap(1)); err != nil {
		t.Fatal(err)
	}
	if a.SeedSummary != nil {
		t.Error("Merge left a stale SeedSummary on the accumulator")
	}
}
