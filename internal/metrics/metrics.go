// Package metrics is the unified statistics-collection subsystem: a typed,
// allocation-free Recorder holding one counter block per tile, which the
// engine and the memory-system models (internal/sim, internal/cache,
// internal/noc, internal/conflict, internal/sched) publish into directly,
// plus the stable machine-readable result schema (Snapshot, Record,
// ResultSet) and its JSON/CSV encoders.
//
// The Recorder is a flat []TileCounters allocated once at engine
// construction; every publish is a single indexed field add, so the
// collection layer costs nothing on the simulation hot path and keeps the
// engine's per-task allocation count unchanged. Per-tile counters are the
// ground truth: chip-wide aggregates are always computed by summation, which
// makes "per-tile sums equal chip totals" an invariant by construction.
package metrics

// NumTrafficClasses is the number of NoC message classes. The index order
// mirrors internal/noc's declaration order: mem, abort, task, GVT (the
// Fig. 5b legend order).
const NumTrafficClasses = 4

// TrafficClassNames names the traffic classes in index order.
var TrafficClassNames = [NumTrafficClasses]string{"mem", "abort", "task", "gvt"}

// TileCounters is the complete per-tile counter block. All fields are plain
// integers published by direct field updates; JSON tags define the stable
// machine-readable schema for the per-tile section of a Snapshot.
type TileCounters struct {
	// Cycle breakdown. The four core categories (commit, abort, stall,
	// empty) partition this tile's core-cycles exactly; spill cycles are
	// coalescer work charged on top (see Stats.CoreCycleTotal in
	// internal/sim).
	CommitCycles uint64 `json:"commitCycles"`
	AbortCycles  uint64 `json:"abortCycles"`
	SpillCycles  uint64 `json:"spillCycles"`
	StallCycles  uint64 `json:"stallCycles"`
	EmptyCycles  uint64 `json:"emptyCycles"`

	// Task lifecycle events on this tile.
	CommittedTasks  uint64 `json:"committedTasks"`
	AbortedAttempts uint64 `json:"abortedAttempts"`
	SquashedTasks   uint64 `json:"squashedTasks"`
	SpilledTasks    uint64 `json:"spilledTasks"`
	StolenTasks     uint64 `json:"stolenTasks"`
	EnqueuedTasks   uint64 `json:"enqueuedTasks"`

	// Traffic is NoC flits injected by this tile, by message class
	// (mem, abort, task, gvt).
	Traffic [NumTrafficClasses]uint64 `json:"traffic"`

	// Cache-hierarchy events. Hits are attributed to the accessing tile;
	// L3 hits and memory accesses to the home bank's tile; invalidations
	// and writebacks to the tile whose cache performs them.
	L1Hits         uint64 `json:"l1Hits"`
	L2Hits         uint64 `json:"l2Hits"`
	L3Hits         uint64 `json:"l3Hits"`
	MemAccesses    uint64 `json:"memAccesses"`
	RemoteForwards uint64 `json:"remoteForwards"`
	Invalidations  uint64 `json:"invalidations"`
	Writebacks     uint64 `json:"writebacks"`

	// Comparisons counts conflict-index timestamp comparisons performed on
	// behalf of this tile's accesses (Table II: 5 cycles + 1 cycle per
	// timestamp compared).
	Comparisons uint64 `json:"comparisons"`
}

// Add accumulates o into t field-by-field.
func (t *TileCounters) Add(o *TileCounters) {
	t.CommitCycles += o.CommitCycles
	t.AbortCycles += o.AbortCycles
	t.SpillCycles += o.SpillCycles
	t.StallCycles += o.StallCycles
	t.EmptyCycles += o.EmptyCycles
	t.CommittedTasks += o.CommittedTasks
	t.AbortedAttempts += o.AbortedAttempts
	t.SquashedTasks += o.SquashedTasks
	t.SpilledTasks += o.SpilledTasks
	t.StolenTasks += o.StolenTasks
	t.EnqueuedTasks += o.EnqueuedTasks
	for c := range t.Traffic {
		t.Traffic[c] += o.Traffic[c]
	}
	t.L1Hits += o.L1Hits
	t.L2Hits += o.L2Hits
	t.L3Hits += o.L3Hits
	t.MemAccesses += o.MemAccesses
	t.RemoteForwards += o.RemoteForwards
	t.Invalidations += o.Invalidations
	t.Writebacks += o.Writebacks
	t.Comparisons += o.Comparisons
}

// TotalTraffic sums this tile's injected flits over all classes.
func (t *TileCounters) TotalTraffic() uint64 {
	var sum uint64
	for _, f := range t.Traffic {
		sum += f
	}
	return sum
}

// Recorder is the per-run collection point: one TileCounters per tile plus
// the few chip-level counters with no tile attribution. One Recorder is
// created per engine, so concurrent engines in a parallel sweep share no
// state.
type Recorder struct {
	tiles []TileCounters

	// Reconfigs counts load-balancer tile-map reconfigurations (chip-level:
	// the LB runs at the GVT arbiter, not on a tile).
	Reconfigs uint64
}

// New returns a Recorder for the given tile count (minimum 1).
func New(tiles int) *Recorder {
	if tiles < 1 {
		tiles = 1
	}
	return &Recorder{tiles: make([]TileCounters, tiles)}
}

// Tiles returns the number of tiles recorded.
func (r *Recorder) Tiles() int { return len(r.tiles) }

// Tile returns the counter block for tile i, for direct publishing.
func (r *Recorder) Tile(i int) *TileCounters { return &r.tiles[i] }

// Aggregate sums every tile's counters into one chip-wide block.
func (r *Recorder) Aggregate() TileCounters {
	var agg TileCounters
	for i := range r.tiles {
		agg.Add(&r.tiles[i])
	}
	return agg
}

// Snapshot returns a copy of the per-tile counters.
func (r *Recorder) Snapshot() []TileCounters {
	out := make([]TileCounters, len(r.tiles))
	copy(out, r.tiles)
	return out
}

// ResetTraffic clears every tile's traffic counters (used between
// measurement regions by the NoC model's ResetStats).
func (r *Recorder) ResetTraffic() {
	for i := range r.tiles {
		r.tiles[i].Traffic = [NumTrafficClasses]uint64{}
	}
}
