package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRecorderAggregateSumsTiles(t *testing.T) {
	r := New(4)
	r.Tile(0).CommitCycles = 10
	r.Tile(3).CommitCycles = 32
	r.Tile(1).Traffic[2] = 7
	r.Tile(2).Traffic[2] = 5
	r.Tile(2).Comparisons = 9
	agg := r.Aggregate()
	if agg.CommitCycles != 42 {
		t.Fatalf("CommitCycles = %d, want 42", agg.CommitCycles)
	}
	if agg.Traffic[2] != 12 {
		t.Fatalf("Traffic[2] = %d, want 12", agg.Traffic[2])
	}
	if agg.Comparisons != 9 {
		t.Fatalf("Comparisons = %d, want 9", agg.Comparisons)
	}
}

func TestRecorderMinimumOneTile(t *testing.T) {
	if got := New(0).Tiles(); got != 1 {
		t.Fatalf("New(0) has %d tiles, want 1", got)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	r := New(2)
	r.Tile(0).L1Hits = 1
	snap := r.Snapshot()
	r.Tile(0).L1Hits = 100
	if snap[0].L1Hits != 1 {
		t.Fatal("Snapshot aliases live counters")
	}
}

func TestResetTraffic(t *testing.T) {
	r := New(2)
	r.Tile(1).Traffic[0] = 5
	r.Tile(1).L2Hits = 3
	r.ResetTraffic()
	if r.Tile(1).Traffic[0] != 0 {
		t.Fatal("traffic not cleared")
	}
	if r.Tile(1).L2Hits != 3 {
		t.Fatal("ResetTraffic must touch only traffic counters")
	}
}

func TestTileCountersAddCoversEveryField(t *testing.T) {
	// Marshal a unit-filled block, add it to a zero block, and require the
	// JSON forms match: catches any field forgotten in Add.
	var unit TileCounters
	b, err := json.Marshal(&unit)
	if err != nil {
		t.Fatal(err)
	}
	fill := []byte(strings.ReplaceAll(string(b), ":0", ":1"))
	fill = []byte(strings.ReplaceAll(string(fill), "[0,0,0,0]", "[1,1,1,1]"))
	var src TileCounters
	if err := json.Unmarshal(fill, &src); err != nil {
		t.Fatal(err)
	}
	var dst TileCounters
	dst.Add(&src)
	got, _ := json.Marshal(&dst)
	if string(got) != string(fill) {
		t.Fatalf("Add dropped fields:\n got %s\nwant %s", got, fill)
	}
}

func snap(cycles uint64) *Snapshot {
	return &Snapshot{Cycles: cycles, Cores: 4, NumTiles: 1, WastedFraction: 0.25}
}

func TestResultSetJSONDeterministic(t *testing.T) {
	build := func() *ResultSet {
		rs := NewResultSet("bench", "cores")
		rs.Append(map[string]string{"bench": "sssp", "cores": "4"}, snap(100))
		rs.Append(map[string]string{"bench": "bfs", "cores": "16"}, snap(200))
		return rs
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("identical result sets encode differently")
	}
	if !strings.Contains(a.String(), SchemaVersion) {
		t.Fatal("JSON output missing schema version")
	}
	if !strings.HasSuffix(a.String(), "\n") {
		t.Fatal("JSON output must end with a newline")
	}
}

func TestResultSetCSVShape(t *testing.T) {
	rs := NewResultSet("bench")
	rs.Append(map[string]string{"bench": "des"}, snap(123))
	var buf bytes.Buffer
	if err := rs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 row", len(lines))
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(header) != len(row) {
		t.Fatalf("header has %d columns, row has %d", len(header), len(row))
	}
	if header[0] != "bench" || row[0] != "des" {
		t.Fatalf("label column wrong: %s=%s", header[0], row[0])
	}
	if header[1] != "cycles" || row[1] != "123" {
		t.Fatalf("first metric column wrong: %s=%s", header[1], row[1])
	}
	if want := 1 + len(snapshotColumns); len(header) != want {
		t.Fatalf("CSV has %d columns, want %d", len(header), want)
	}
}

func TestSnapshotColumnsMatchValues(t *testing.T) {
	if got, want := len((&Snapshot{}).values()), len(snapshotColumns); got != want {
		t.Fatalf("values() returns %d columns, snapshotColumns lists %d", got, want)
	}
}

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]Format{
		"": FormatHuman, "human": FormatHuman, "json": FormatJSON, "csv": FormatCSV,
	} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("unknown format must error")
	}
}

func TestWriteRejectsHumanFormat(t *testing.T) {
	if err := NewResultSet().Write(&bytes.Buffer{}, FormatHuman); err == nil {
		t.Fatal("FormatHuman has no encoder; Write must error")
	}
}
