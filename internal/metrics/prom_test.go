package metrics

import (
	"bytes"
	"testing"
)

func TestWritePromFormat(t *testing.T) {
	var buf bytes.Buffer
	err := WriteProm(&buf, []PromMetric{
		{Name: "up", Help: "Liveness.", Type: "gauge",
			Values: []PromValue{{Value: 1}}},
		{Name: "runs_total", Help: "Runs by bench.", Type: "counter",
			Values: []PromValue{
				{Labels: map[string]string{"bench": "sssp"}, Value: 3},
				{Labels: map[string]string{"bench": "des"}, Value: 12},
			}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `# HELP up Liveness.
# TYPE up gauge
up 1
# HELP runs_total Runs by bench.
# TYPE runs_total counter
runs_total{bench="des"} 12
runs_total{bench="sssp"} 3
`
	if buf.String() != want {
		t.Errorf("exposition output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestWritePromDeterministicLabels(t *testing.T) {
	m := PromMetric{Name: "x", Type: "gauge", Values: []PromValue{
		{Labels: map[string]string{"b": "2", "a": "1", "c": "3"}, Value: 7},
	}}
	var first string
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		if err := WriteProm(&buf, []PromMetric{m}); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = buf.String()
			continue
		}
		if buf.String() != first {
			t.Fatal("label rendering is not deterministic across encodings")
		}
	}
	want := "# TYPE x gauge\nx{a=\"1\",b=\"2\",c=\"3\"} 7\n"
	if first != want {
		t.Errorf("labels not sorted: %q, want %q", first, want)
	}
}

func TestWritePromEscapesLabelValues(t *testing.T) {
	var buf bytes.Buffer
	err := WriteProm(&buf, []PromMetric{{Name: "x", Type: "counter", Values: []PromValue{
		{Labels: map[string]string{"p": "a\\b\"c\nd"}, Value: 1},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	want := "# TYPE x counter\nx{p=\"a\\\\b\\\"c\\nd\"} 1\n"
	if buf.String() != want {
		t.Errorf("escaping wrong: %q, want %q", buf.String(), want)
	}
}
