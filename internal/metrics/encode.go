package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// SchemaVersion identifies the machine-readable result schema. Bump it on
// any field removal or meaning change; additions are backward-compatible.
const SchemaVersion = "swarmhints.metrics.v1"

// SchemaVersionV2 marks result sets whose records may carry the optional
// seedSummary block of a multi-seed merged run. v2 is a strict superset of
// v1: every v1 reader that ignores unknown optional fields parses v2, and
// single-seed output keeps the v1 stamp so existing goldens and caches are
// byte-unchanged.
const SchemaVersionV2 = "swarmhints.metrics.v2"

// Format selects a machine-readable encoding.
type Format string

// Formats. FormatHuman means "no structured output": the caller prints its
// usual human-readable tables instead.
const (
	FormatHuman Format = ""
	FormatJSON  Format = "json"
	FormatCSV   Format = "csv"
)

// ParseFormat parses a -format flag value.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "", "human":
		return FormatHuman, nil
	case "json":
		return FormatJSON, nil
	case "csv":
		return FormatCSV, nil
	}
	return FormatHuman, fmt.Errorf("unknown format %q (have human, json, csv)", s)
}

// Snapshot is the stable machine-readable form of one run's statistics:
// chip-wide aggregates, derived metrics, and the per-tile counter blocks.
// Scalar fields are flat so they map one-to-one onto CSV columns; PerTile
// appears only in JSON output.
type Snapshot struct {
	Cycles   uint64 `json:"cycles"`
	Cores    int    `json:"cores"`
	NumTiles int    `json:"tiles"`

	CommittedTasks  uint64 `json:"committedTasks"`
	AbortedAttempts uint64 `json:"abortedAttempts"`
	SquashedTasks   uint64 `json:"squashedTasks"`
	SpilledTasks    uint64 `json:"spilledTasks"`
	StolenTasks     uint64 `json:"stolenTasks"`
	EnqueuedTasks   uint64 `json:"enqueuedTasks"`

	CommitCycles uint64 `json:"commitCycles"`
	AbortCycles  uint64 `json:"abortCycles"`
	SpillCycles  uint64 `json:"spillCycles"`
	StallCycles  uint64 `json:"stallCycles"`
	EmptyCycles  uint64 `json:"emptyCycles"`

	TrafficMem   uint64 `json:"trafficMem"`
	TrafficAbort uint64 `json:"trafficAbort"`
	TrafficTask  uint64 `json:"trafficTask"`
	TrafficGVT   uint64 `json:"trafficGVT"`
	TrafficTotal uint64 `json:"trafficTotal"`

	L1Hits         uint64 `json:"l1Hits"`
	L2Hits         uint64 `json:"l2Hits"`
	L3Hits         uint64 `json:"l3Hits"`
	MemAccesses    uint64 `json:"memAccesses"`
	RemoteForwards uint64 `json:"remoteForwards"`
	Invalidations  uint64 `json:"invalidations"`
	Writebacks     uint64 `json:"writebacks"`

	Comparisons uint64 `json:"comparisons"`
	GVTRounds   uint64 `json:"gvtRounds"`
	Reconfigs   uint64 `json:"reconfigs"`

	// Derived metrics.
	WastedFraction float64 `json:"wastedFraction"` // aborted / (aborted+committed) cycles
	LoadImbalance  float64 `json:"loadImbalance"`  // max/mean committed cycles per tile
	// Per-class traffic fractions of TrafficTotal (0 when no traffic).
	TrafficFracMem   float64 `json:"trafficFracMem"`
	TrafficFracAbort float64 `json:"trafficFracAbort"`
	TrafficFracTask  float64 `json:"trafficFracTask"`
	TrafficFracGVT   float64 `json:"trafficFracGVT"`

	// Classification is the Fig. 3/6 access profile; present only when the
	// run collected it (Config.Profile). JSON-only, like PerTile.
	Classification *AccessClassification `json:"classification,omitempty"`

	// SeedSummary is the cross-seed dispersion block; present only on
	// snapshots produced by MergeSnapshots over multiple seed replicas.
	// JSON-only and optional, so single-seed v1 output is byte-unchanged;
	// result sets whose records carry it are stamped SchemaVersionV2.
	SeedSummary *SeedSummary `json:"seedSummary,omitempty"`

	PerTile []TileCounters `json:"perTile"`
}

// AccessClassification is the single/multi-hint × RO/RW access profile of
// a profiled run (fractions of TotalAccesses).
type AccessClassification struct {
	MultiHintRO   float64 `json:"multiHintRO"`
	SingleHintRO  float64 `json:"singleHintRO"`
	MultiHintRW   float64 `json:"multiHintRW"`
	SingleHintRW  float64 `json:"singleHintRW"`
	Arguments     float64 `json:"arguments"`
	TotalAccesses uint64  `json:"totalAccesses"`
}

// snapshotColumns is the fixed CSV column order for Snapshot's scalar
// fields. Keep in sync with (*Snapshot).values. The machine-size columns
// are prefixed "sim" so they can never collide with caller label columns
// like "cores".
var snapshotColumns = []string{
	"cycles", "simCores", "simTiles",
	"committedTasks", "abortedAttempts", "squashedTasks", "spilledTasks",
	"stolenTasks", "enqueuedTasks",
	"commitCycles", "abortCycles", "spillCycles", "stallCycles", "emptyCycles",
	"trafficMem", "trafficAbort", "trafficTask", "trafficGVT", "trafficTotal",
	"l1Hits", "l2Hits", "l3Hits", "memAccesses",
	"remoteForwards", "invalidations", "writebacks",
	"comparisons", "gvtRounds", "reconfigs",
	"wastedFraction", "loadImbalance",
	"trafficFracMem", "trafficFracAbort", "trafficFracTask", "trafficFracGVT",
}

func (s *Snapshot) values() []string {
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return []string{
		u(s.Cycles), strconv.Itoa(s.Cores), strconv.Itoa(s.NumTiles),
		u(s.CommittedTasks), u(s.AbortedAttempts), u(s.SquashedTasks), u(s.SpilledTasks),
		u(s.StolenTasks), u(s.EnqueuedTasks),
		u(s.CommitCycles), u(s.AbortCycles), u(s.SpillCycles), u(s.StallCycles), u(s.EmptyCycles),
		u(s.TrafficMem), u(s.TrafficAbort), u(s.TrafficTask), u(s.TrafficGVT), u(s.TrafficTotal),
		u(s.L1Hits), u(s.L2Hits), u(s.L3Hits), u(s.MemAccesses),
		u(s.RemoteForwards), u(s.Invalidations), u(s.Writebacks),
		u(s.Comparisons), u(s.GVTRounds), u(s.Reconfigs),
		f(s.WastedFraction), f(s.LoadImbalance),
		f(s.TrafficFracMem), f(s.TrafficFracAbort), f(s.TrafficFracTask), f(s.TrafficFracGVT),
	}
}

// Record pairs one run's identifying labels with its snapshot.
type Record struct {
	Labels   map[string]string `json:"labels"`
	Snapshot *Snapshot         `json:"stats"`
}

// ResultSet is an ordered collection of run records sharing a label schema.
// Fields lists the label keys in CSV column order; JSON objects marshal
// labels with sorted keys, so both encodings are byte-deterministic for a
// given record order. Callers own that order: append records in a
// deterministic sequence (job order, sorted configurations), never in
// completion order.
type ResultSet struct {
	Schema  string   `json:"schema"`
	Fields  []string `json:"fields"`
	Records []Record `json:"records"`
}

// NewResultSet returns an empty result set with the given label columns.
func NewResultSet(fields ...string) *ResultSet {
	return &ResultSet{Schema: SchemaVersion, Fields: fields}
}

// Append adds one record.
func (rs *ResultSet) Append(labels map[string]string, s *Snapshot) {
	rs.Records = append(rs.Records, Record{Labels: labels, Snapshot: s})
}

// WriteJSON writes the set as indented JSON with a trailing newline. Output
// is byte-deterministic: struct fields marshal in declaration order and
// label maps with sorted keys.
func (rs *ResultSet) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteCSV writes one row per record: label columns (Fields order) followed
// by the Snapshot scalar columns. Per-tile counters are JSON-only; CSV
// carries aggregates and derived metrics.
func (rs *ResultSet) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, rs.Fields...), snapshotColumns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, rec := range rs.Records {
		row := make([]string, 0, len(header))
		for _, f := range rs.Fields {
			row = append(row, rec.Labels[f])
		}
		row = append(row, rec.Snapshot.values()...)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Write encodes the set in the given format. FormatHuman is an error: the
// caller owns human-readable output.
func (rs *ResultSet) Write(w io.Writer, format Format) error {
	switch format {
	case FormatJSON:
		return rs.WriteJSON(w)
	case FormatCSV:
		return rs.WriteCSV(w)
	}
	return fmt.Errorf("metrics: no encoder for format %q", string(format))
}
