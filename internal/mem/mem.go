// Package mem implements the simulated word-addressable memory that Swarm
// programs operate on, together with the bump allocator used by workloads and
// the per-task undo logs that implement Swarm's eager version management.
//
// Addresses are byte addresses; every access touches one 8-byte word and must
// be 8-byte aligned. Memory is sparse and paged so large address spaces cost
// only what is touched.
package mem

import "fmt"

// WordSize is the size of every simulated access, in bytes.
const WordSize = 8

// LineSize is the coherence/cache line size, in bytes (Table II).
const LineSize = 64

// pageWords is the number of words per internal page (32 KB pages).
const pageWords = 1 << pageShift

// Radix page-table geometry: a word address indexes page-offset bits, then a
// page slot within a chunk, then a chunk slot in the growable root. Pages are
// 32 KB (4096 words) and chunks span 512 pages, so one chunk covers 16 MB of
// address space and the root stays a few entries for typical workloads.
const (
	pageShift  = 12 // log2 words per page
	chunkShift = 9  // log2 pages per chunk
	chunkPages = 1 << chunkShift

	// maxChunks bounds the root table at 2^22 entries (32 MB of pointers,
	// covering a 64 TB address space). Workload allocators bump-allocate
	// from 1 MB upward, so a store beyond this indicates a corrupted
	// address, and panicking beats silently allocating an absurd root.
	maxChunks = 1 << 22
)

type page = [pageWords]uint64
type chunk = [chunkPages]*page

// LineAddr returns the line-aligned address containing addr. Benchmarks use
// it to compute cache-line hints (Table I, "Cache line of vertex").
func LineAddr(addr uint64) uint64 { return addr &^ uint64(LineSize-1) }

// Memory is a sparse 64-bit word-addressable memory with a global write
// sequence counter used to order undo-log entries across tasks so that
// cascaded rollbacks restore values correctly regardless of write
// interleaving.
//
// Storage is a two-level radix page table plus a one-page inline cache:
// Load/Store on the cached page are two shifts, a mask, and one bounds-free
// array index, and even a cache miss is two array indexes — no map hashing
// anywhere on the simulator's most frequent operation. Not safe for
// concurrent use; each engine owns its Memory.
type Memory struct {
	chunks  []*chunk
	lastPN  uint64 // page number held in lastPg (valid iff lastPg != nil)
	lastPg  *page
	npages  int
	nextSeq uint64
	brk     uint64 // bump-allocation watermark
}

// New returns an empty memory whose allocator starts at a non-zero base so
// that address 0 is never a valid object address.
func New() *Memory {
	return &Memory{brk: 1 << 20}
}

func (m *Memory) page(addr uint64, create bool) (*page, uint64) {
	if addr%WordSize != 0 {
		panic(fmt.Sprintf("mem: unaligned access to %#x", addr))
	}
	w := addr / WordSize
	pn := w >> pageShift
	off := w & (pageWords - 1)
	if p := m.lastPg; p != nil && pn == m.lastPN {
		return p, off
	}
	ci := pn >> chunkShift
	if ci >= uint64(len(m.chunks)) {
		if !create {
			return nil, off
		}
		if ci >= maxChunks {
			panic(fmt.Sprintf("mem: address %#x beyond supported range", addr))
		}
		grown := make([]*chunk, ci+1)
		copy(grown, m.chunks)
		m.chunks = grown
	}
	ch := m.chunks[ci]
	if ch == nil {
		if !create {
			return nil, off
		}
		ch = new(chunk)
		m.chunks[ci] = ch
	}
	p := ch[pn&(chunkPages-1)]
	if p == nil {
		if !create {
			return nil, off
		}
		p = new(page)
		ch[pn&(chunkPages-1)] = p
		m.npages++
	}
	m.lastPN, m.lastPg = pn, p
	return p, off
}

// Load returns the current (possibly speculative) value of the word at addr.
func (m *Memory) Load(addr uint64) uint64 {
	p, off := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[off]
}

// Store writes val to addr and returns the previous value together with the
// global sequence number of this write. Callers append (addr, old, seq) to
// the writing task's undo log.
func (m *Memory) Store(addr, val uint64) (old uint64, seq uint64) {
	p, off := m.page(addr, true)
	old = p[off]
	p[off] = val
	m.nextSeq++
	return old, m.nextSeq
}

// StoreRaw writes without sequencing; used only for rollback and for
// non-speculative initialization (program setup before swarm::run).
func (m *Memory) StoreRaw(addr, val uint64) {
	p, off := m.page(addr, true)
	p[off] = val
}

// Seq returns the current global write sequence number.
func (m *Memory) Seq() uint64 { return m.nextSeq }

// Alloc reserves n bytes and returns the base address, 64-byte aligned so
// objects never straddle allocation boundaries unintentionally.
func (m *Memory) Alloc(n uint64) uint64 {
	base := (m.brk + LineSize - 1) &^ uint64(LineSize-1)
	m.brk = base + n
	return base
}

// AllocWords reserves n 8-byte words.
func (m *Memory) AllocWords(n uint64) uint64 { return m.Alloc(n * WordSize) }

// Footprint returns the number of bytes of memory touched so far.
func (m *Memory) Footprint() uint64 {
	return uint64(m.npages) * pageWords * WordSize
}

// UndoEntry records one speculative write: the address, the value it
// clobbered, and the global order of the write.
type UndoEntry struct {
	Addr uint64
	Old  uint64
	Seq  uint64
}

// UndoLog is a task's eager-versioning log. Entries are naturally in
// ascending Seq order because a task appends as it writes.
type UndoLog struct {
	entries []UndoEntry
}

// Append records a write.
func (l *UndoLog) Append(e UndoEntry) { l.entries = append(l.entries, e) }

// Len returns the number of logged writes.
func (l *UndoLog) Len() int { return len(l.entries) }

// Entries exposes the log for merged rollbacks.
func (l *UndoLog) Entries() []UndoEntry { return l.entries }

// Reset clears the log for task re-execution.
func (l *UndoLog) Reset() { l.entries = l.entries[:0] }

// Rollback restores the undo entries of a set of aborting tasks. Entries
// must be restored in descending global sequence order so that overlapping
// writes by different tasks unwind to the exact pre-speculation values; this
// function merges and sorts the logs and applies them.
func Rollback(m *Memory, logs []*UndoLog) {
	RollbackInto(m, logs, nil)
}

// RollbackInto is Rollback with a caller-owned merge buffer: it reuses
// scratch's capacity for the merged log and returns the (possibly grown)
// buffer so a long-lived caller — the engine's abort path — can amortize
// the allocation across aborts.
//
// Each log is individually Seq-sorted ascending (a task appends as it
// writes), so for more than two logs the descending merge is a k-way merge
// over the log tails — O(n log k) instead of sorting the concatenation. One
// or two logs concatenate and use sortUndoDesc directly.
func RollbackInto(m *Memory, logs []*UndoLog, scratch []UndoEntry) []UndoEntry {
	all := scratch[:0]
	if len(logs) <= 2 {
		for _, l := range logs {
			all = append(all, l.entries...)
		}
		sortUndoDesc(all)
	} else {
		all = mergeUndoDesc(all, logs)
	}
	for _, e := range all {
		m.StoreRaw(e.Addr, e.Old)
	}
	for _, l := range logs {
		l.Reset()
	}
	return all
}

// undoCursor walks one log from its tail (its largest Seq) backward.
type undoCursor struct {
	entries []UndoEntry
	pos     int
}

// mergeUndoDesc appends the entries of all logs to dst in descending Seq
// order via a k-way merge: a max-heap of per-log tail cursors keyed by the
// cursor's current Seq. Seq values are globally unique, so the merge order
// is total and deterministic.
func mergeUndoDesc(dst []UndoEntry, logs []*UndoLog) []UndoEntry {
	var hbuf [16]undoCursor
	h := hbuf[:0]
	if len(logs) > len(hbuf) {
		h = make([]undoCursor, 0, len(logs))
	}
	for _, l := range logs {
		if n := len(l.entries); n > 0 {
			h = append(h, undoCursor{entries: l.entries, pos: n - 1})
			// Sift up.
			for i := len(h) - 1; i > 0; {
				p := (i - 1) / 2
				if h[p].seq() >= h[i].seq() {
					break
				}
				h[p], h[i] = h[i], h[p]
				i = p
			}
		}
	}
	for len(h) > 0 {
		c := &h[0]
		dst = append(dst, c.entries[c.pos])
		if c.pos--; c.pos < 0 {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		// Sift down.
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < len(h) && h[l].seq() > h[s].seq() {
				s = l
			}
			if r < len(h) && h[r].seq() > h[s].seq() {
				s = r
			}
			if s == i {
				break
			}
			h[i], h[s] = h[s], h[i]
			i = s
		}
	}
	return dst
}

func (c *undoCursor) seq() uint64 { return c.entries[c.pos].Seq }

// Pool is a tiny LIFO free list for recycling heap objects on simulation
// hot paths. Fresh objects come from slabs of 32, so a run's peak live
// count costs one allocation per slab rather than one per object (a slab
// stays reachable while any object in it is live — fine for engine-scoped
// pools, whose free lists pin recycled objects anyway). It is not safe for
// concurrent use: each engine owns its pools, which keeps parallel sweep
// runs free of shared state.
type Pool[T any] struct {
	free []*T
	next []T // unhanded tail of the current slab
}

// Get returns a recycled object or a fresh zero value from the current
// slab. Recycled objects come back exactly as they were Put; callers reset
// the fields they use (and typically want to keep slice capacity).
func (p *Pool[T]) Get() *T {
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return t
	}
	if len(p.next) == 0 {
		p.next = make([]T, 32)
	}
	t := &p.next[0]
	p.next = p.next[1:]
	return t
}

// Put returns an object to the free list. The caller must guarantee no
// other live reference to it remains.
func (p *Pool[T]) Put(t *T) {
	p.free = append(p.free, t)
}

func sortUndoDesc(a []UndoEntry) {
	// Insertion sort is fine for typical abort-set sizes; fall back to
	// heapify-style for large sets.
	if len(a) > 64 {
		quickSortUndo(a, 0, len(a)-1)
		return
	}
	for i := 1; i < len(a); i++ {
		e := a[i]
		j := i - 1
		for j >= 0 && a[j].Seq < e.Seq {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = e
	}
}

func quickSortUndo(a []UndoEntry, lo, hi int) {
	for lo < hi {
		p := a[(lo+hi)/2].Seq
		i, j := lo, hi
		for i <= j {
			for a[i].Seq > p {
				i++
			}
			for a[j].Seq < p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quickSortUndo(a, lo, j)
			lo = i
		} else {
			quickSortUndo(a, i, hi)
			hi = j
		}
	}
}
