package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New()
	a := m.AllocWords(4)
	m.StoreRaw(a, 7)
	m.StoreRaw(a+8, 9)
	if got := m.Load(a); got != 7 {
		t.Fatalf("Load = %d, want 7", got)
	}
	if got := m.Load(a + 8); got != 9 {
		t.Fatalf("Load = %d, want 9", got)
	}
	if got := m.Load(a + 16); got != 0 {
		t.Fatalf("untouched word = %d, want 0", got)
	}
}

func TestUnalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned access did not panic")
		}
	}()
	New().Load(3)
}

func TestAllocAlignment(t *testing.T) {
	m := New()
	for i := 0; i < 100; i++ {
		a := m.Alloc(uint64(i)*3 + 1)
		if a%LineSize != 0 {
			t.Fatalf("allocation %d at %#x not line-aligned", i, a)
		}
	}
}

func TestAllocDisjoint(t *testing.T) {
	m := New()
	a := m.AllocWords(8)
	b := m.AllocWords(8)
	if b < a+8*WordSize {
		t.Fatalf("allocations overlap: a=%#x b=%#x", a, b)
	}
}

func TestStoreSequencesMonotonic(t *testing.T) {
	m := New()
	a := m.AllocWords(1)
	_, s1 := m.Store(a, 1)
	_, s2 := m.Store(a, 2)
	if s2 <= s1 {
		t.Fatalf("sequence numbers not increasing: %d then %d", s1, s2)
	}
}

func TestSingleLogRollback(t *testing.T) {
	m := New()
	a := m.AllocWords(2)
	m.StoreRaw(a, 10)
	var log UndoLog
	old, seq := m.Store(a, 99)
	log.Append(UndoEntry{Addr: a, Old: old, Seq: seq})
	old, seq = m.Store(a+8, 55)
	log.Append(UndoEntry{Addr: a + 8, Old: old, Seq: seq})
	Rollback(m, []*UndoLog{&log})
	if m.Load(a) != 10 || m.Load(a+8) != 0 {
		t.Fatalf("rollback failed: got %d,%d want 10,0", m.Load(a), m.Load(a+8))
	}
	if log.Len() != 0 {
		t.Fatal("rollback must reset the log")
	}
}

// TestInterleavedRollback checks the critical eager-versioning property:
// when two speculative tasks write the same addresses in interleaved order,
// rolling both back restores the exact original values.
func TestInterleavedRollback(t *testing.T) {
	m := New()
	a := m.AllocWords(1)
	m.StoreRaw(a, 1)
	var la, lb UndoLog
	old, seq := m.Store(a, 2) // task A writes
	la.Append(UndoEntry{a, old, seq})
	old, seq = m.Store(a, 3) // task B overwrites
	lb.Append(UndoEntry{a, old, seq})
	old, seq = m.Store(a, 4) // task A writes again
	la.Append(UndoEntry{a, old, seq})
	Rollback(m, []*UndoLog{&la, &lb})
	if got := m.Load(a); got != 1 {
		t.Fatalf("interleaved rollback: got %d, want 1", got)
	}
}

// TestRandomRollbackProperty: any random interleaving of speculative writes
// by k tasks, rolled back together, restores the initial state exactly.
func TestRandomRollbackProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New()
		const words = 16
		base := m.AllocWords(words)
		initial := make([]uint64, words)
		for i := range initial {
			initial[i] = rng.Uint64() % 100
			m.StoreRaw(base+uint64(i*WordSize), initial[i])
		}
		logs := make([]*UndoLog, 4)
		for i := range logs {
			logs[i] = &UndoLog{}
		}
		for n := 0; n < 200; n++ {
			task := rng.Intn(len(logs))
			w := uint64(rng.Intn(words))
			addr := base + w*WordSize
			old, seq := m.Store(addr, rng.Uint64())
			logs[task].Append(UndoEntry{addr, old, seq})
		}
		Rollback(m, logs)
		for i, want := range initial {
			if m.Load(base+uint64(i*WordSize)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPartialRollback: rolling back only the later task must leave the
// earlier task's value in place when they wrote disjoint addresses.
func TestPartialRollback(t *testing.T) {
	m := New()
	a, b := m.AllocWords(1), m.AllocWords(1)
	var la, lb UndoLog
	old, seq := m.Store(a, 11)
	la.Append(UndoEntry{a, old, seq})
	old, seq = m.Store(b, 22)
	lb.Append(UndoEntry{b, old, seq})
	Rollback(m, []*UndoLog{&lb})
	if m.Load(a) != 11 {
		t.Fatal("partial rollback clobbered an unrelated task's write")
	}
	if m.Load(b) != 0 {
		t.Fatal("partial rollback did not undo the aborted task's write")
	}
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0x1234) != 0x1200 {
		t.Fatalf("LineAddr(0x1234) = %#x", LineAddr(0x1234))
	}
	if LineAddr(64) != 64 || LineAddr(63) != 0 {
		t.Fatal("LineAddr boundary wrong")
	}
}

func TestLargeUndoSort(t *testing.T) {
	// Exercise the quicksort path (>64 entries).
	m := New()
	base := m.AllocWords(8)
	var log UndoLog
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		addr := base + uint64(rng.Intn(8))*WordSize
		old, seq := m.Store(addr, uint64(i+1))
		log.Append(UndoEntry{addr, old, seq})
	}
	Rollback(m, []*UndoLog{&log})
	for i := 0; i < 8; i++ {
		if m.Load(base+uint64(i*WordSize)) != 0 {
			t.Fatalf("word %d not restored to 0", i)
		}
	}
}

func TestFootprintGrows(t *testing.T) {
	m := New()
	f0 := m.Footprint()
	m.StoreRaw(m.AllocWords(1), 1)
	if m.Footprint() <= f0 {
		t.Fatal("footprint did not grow after touching memory")
	}
}
