package mem

import (
	"math/rand"
	"testing"
)

// TestRadixVsMapReference drives random aligned loads and stores against a
// plain-map reference model, mixing page-local runs (inline-cache hits) with
// jumps across page and chunk boundaries.
func TestRadixVsMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := New()
	ref := map[uint64]uint64{}
	const pageBytes = pageWords * WordSize
	const chunkBytes = chunkPages * pageBytes
	// Anchor addresses straddling interesting boundaries.
	anchors := []uint64{
		0,
		pageBytes - WordSize, pageBytes, pageBytes + WordSize,
		chunkBytes - WordSize, chunkBytes, chunkBytes + WordSize,
		3*chunkBytes + 5*pageBytes,
	}
	addr := func() uint64 {
		base := anchors[rng.Intn(len(anchors))]
		return base + uint64(rng.Intn(64))*WordSize
	}
	for step := 0; step < 50_000; step++ {
		a := addr()
		if rng.Intn(2) == 0 {
			v := rng.Uint64()
			m.StoreRaw(a, v)
			ref[a] = v
		} else if got := m.Load(a); got != ref[a] {
			t.Fatalf("step %d: Load(%#x) = %d, want %d", step, a, got, ref[a])
		}
	}
	for a, want := range ref {
		if got := m.Load(a); got != want {
			t.Fatalf("final Load(%#x) = %d, want %d", a, got, want)
		}
	}
}

// TestLoadDoesNotAllocatePages pins the sparse property: loads of untouched
// memory return zero without materializing pages or growing the footprint.
func TestLoadDoesNotAllocatePages(t *testing.T) {
	m := New()
	f0 := m.Footprint()
	for _, a := range []uint64{0, 1 << 25, 1 << 35, 7 * chunkPages * pageWords * WordSize} {
		if got := m.Load(a); got != 0 {
			t.Fatalf("Load(%#x) = %d, want 0", a, got)
		}
	}
	if m.Footprint() != f0 {
		t.Fatal("loads of untouched memory allocated pages")
	}
}

// TestInlineCacheInvariant alternates between two pages so every access
// misses the one-page inline cache, then runs within one page so every
// access hits it; both patterns must read back identical data.
func TestInlineCacheInvariant(t *testing.T) {
	m := New()
	const pageBytes = pageWords * WordSize
	a, b := uint64(0), uint64(pageBytes)
	for i := uint64(0); i < 128; i++ {
		m.StoreRaw(a+i*WordSize, i+1)
		m.StoreRaw(b+i*WordSize, i+1000)
	}
	for i := uint64(0); i < 128; i++ {
		if m.Load(a+i*WordSize) != i+1 || m.Load(b+i*WordSize) != i+1000 {
			t.Fatalf("alternating-page readback wrong at word %d", i)
		}
	}
	for i := uint64(0); i < 128; i++ {
		if m.Load(a+i*WordSize) != i+1 {
			t.Fatalf("same-page readback wrong at word %d", i)
		}
	}
}

func TestOutOfRangeStorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("store beyond the supported address range did not panic")
		}
	}()
	New().StoreRaw(1<<60, 1)
}

// TestKWayMergeMatchesSort checks RollbackInto's >2-log merge path against
// the concatenate-and-sort reference on random interleavings, including
// empty logs in the set.
func TestKWayMergeMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		nLogs := 3 + rng.Intn(20)
		logs := make([]*UndoLog, nLogs)
		for i := range logs {
			logs[i] = &UndoLog{}
		}
		var seq uint64
		var ref []UndoEntry
		for n := rng.Intn(300); n > 0; n-- {
			seq++
			e := UndoEntry{Addr: uint64(rng.Intn(64)) * WordSize, Old: rng.Uint64(), Seq: seq}
			logs[rng.Intn(nLogs)].Append(e)
			ref = append(ref, e)
		}
		sortUndoDesc(ref)
		got := mergeUndoDesc(nil, logs)
		if len(got) != len(ref) {
			t.Fatalf("trial %d: merged %d entries, want %d", trial, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d: entry %d = %+v, want %+v", trial, i, got[i], ref[i])
			}
		}
	}
}

// TestRollbackManyLogs exercises the merge path end-to-end: many interleaved
// writers rolled back together must restore the initial image exactly.
func TestRollbackManyLogs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := New()
	const words = 32
	base := m.AllocWords(words)
	initial := make([]uint64, words)
	for i := range initial {
		initial[i] = rng.Uint64()
		m.StoreRaw(base+uint64(i*WordSize), initial[i])
	}
	logs := make([]*UndoLog, 9)
	for i := range logs {
		logs[i] = &UndoLog{}
	}
	for n := 0; n < 2000; n++ {
		addr := base + uint64(rng.Intn(words))*WordSize
		old, seq := m.Store(addr, rng.Uint64())
		logs[rng.Intn(len(logs))].Append(UndoEntry{addr, old, seq})
	}
	Rollback(m, logs)
	for i, want := range initial {
		if got := m.Load(base + uint64(i*WordSize)); got != want {
			t.Fatalf("word %d = %d, want %d", i, got, want)
		}
	}
}
