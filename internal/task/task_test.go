package task

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mk(id, ts uint64) *Task {
	return NewTask(id, 0, ts, HintInt, id*7, nil)
}

func TestOrderBefore(t *testing.T) {
	cases := []struct {
		a, b Order
		want bool
	}{
		{Order{1, 5}, Order{2, 1}, true},  // timestamp dominates
		{Order{2, 1}, Order{1, 5}, false}, // reversed
		{Order{3, 1}, Order{3, 2}, true},  // tie-break by creation id
		{Order{3, 2}, Order{3, 2}, false}, // equal is not before
		{Order{0, 0}, MaxOrder, true},     // everything precedes MaxOrder
	}
	for i, c := range cases {
		if got := c.a.Before(c.b); got != c.want {
			t.Fatalf("case %d: Before = %v, want %v", i, got, c.want)
		}
	}
}

func TestOrderTotality(t *testing.T) {
	f := func(ts1, id1, ts2, id2 uint64) bool {
		a, b := Order{ts1, id1}, Order{ts2, id2}
		if a == b {
			return !a.Before(b) && !b.Before(a)
		}
		return a.Before(b) != b.Before(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSameHintInheritsParent(t *testing.T) {
	p := NewTask(1, 0, 10, HintInt, 42, nil)
	c := NewTask(2, 0, 11, HintSame, 0, p)
	if !c.HasHint() || c.Hint != 42 {
		t.Fatalf("SAMEHINT child did not inherit parent's hint: %+v", c)
	}
	if c.HintHash != p.HintHash {
		t.Fatal("SAMEHINT child hash differs from parent's")
	}
}

func TestSameHintWithHintlessParent(t *testing.T) {
	p := NewTask(1, 0, 10, HintNone, 0, nil)
	c := NewTask(2, 0, 11, HintSame, 0, p)
	if c.HasHint() {
		t.Fatal("SAMEHINT child of NOHINT parent must not have an integer hint")
	}
	if c.HintKind != HintSame {
		t.Fatal("unresolved SAMEHINT must stay HintSame for local placement")
	}
}

func TestDescriptorBytes(t *testing.T) {
	t1 := NewTask(1, 0, 0, HintInt, 5, nil, 1, 2, 3)
	if DescriptorBytes(t1) != 8+8+24+2 {
		t.Fatalf("descriptor bytes = %d", DescriptorBytes(t1))
	}
	t2 := NewTask(2, 0, 0, HintInt, 5, nil)
	if DescriptorBytes(t2) < 26 {
		t.Fatal("descriptor must have a minimum size")
	}
}

func TestQueueEnqueueDispatchOrder(t *testing.T) {
	q := NewQueue(0, 8, 4)
	q.Enqueue(mk(3, 30))
	q.Enqueue(mk(1, 10))
	q.Enqueue(mk(2, 20))
	if got := q.PeekEarliest(); got.ID != 1 {
		t.Fatalf("earliest = task %d, want 1", got.ID)
	}
	e := q.PeekEarliest()
	q.Dispatch(e, 0)
	if e.State != Running || q.IdleCount() != 2 {
		t.Fatal("dispatch bookkeeping wrong")
	}
	if got := q.PeekEarliest(); got.ID != 2 {
		t.Fatalf("next earliest = %d, want 2", got.ID)
	}
}

func TestQueueTimestampTieBreak(t *testing.T) {
	q := NewQueue(0, 8, 4)
	a := mk(5, 7)
	b := mk(4, 7)
	q.Enqueue(a)
	q.Enqueue(b)
	if q.PeekEarliest() != b {
		t.Fatal("equal timestamps must order by creation id")
	}
}

func TestQueueCapacity(t *testing.T) {
	q := NewQueue(0, 2, 2)
	if !q.Enqueue(mk(1, 1)) || !q.Enqueue(mk(2, 2)) {
		t.Fatal("enqueue under capacity failed")
	}
	if q.Enqueue(mk(3, 3)) {
		t.Fatal("enqueue over capacity succeeded")
	}
	if !q.Full() {
		t.Fatal("queue should report full")
	}
}

func TestCommitQueueAccounting(t *testing.T) {
	q := NewQueue(0, 8, 1)
	a, b := mk(1, 1), mk(2, 2)
	q.Enqueue(a)
	q.Enqueue(b)
	if !q.CommitSlotFree() {
		t.Fatal("commit slot should be free before dispatch")
	}
	q.Dispatch(a, 0) // reserves the slot
	if q.CommitSlotFree() {
		t.Fatal("commit queue of size 1 should be full after reservation")
	}
	q.Finish(a)
	q.Commit(a)
	if !q.CommitSlotFree() || q.Resident() != 1 {
		t.Fatal("commit did not release resources")
	}
}

func TestAbortRunningRequeues(t *testing.T) {
	q := NewQueue(0, 8, 4)
	a := mk(1, 1)
	q.Enqueue(a)
	q.Dispatch(a, 0)
	q.AbortRunning(a)
	if a.State != Idle || q.IdleCount() != 1 || a.Aborts != 1 {
		t.Fatalf("abort-running bookkeeping wrong: %+v idle=%d", a, q.IdleCount())
	}
}

func TestAbortFinishedFreesCommitSlot(t *testing.T) {
	q := NewQueue(0, 8, 1)
	a := mk(1, 1)
	q.Enqueue(a)
	q.Dispatch(a, 0)
	q.Finish(a)
	q.AbortFinished(a)
	if !q.CommitSlotFree() || a.State != Idle {
		t.Fatal("abort-finished did not free the commit slot")
	}
}

func TestSquashRemoves(t *testing.T) {
	q := NewQueue(0, 8, 4)
	a := mk(1, 1)
	q.Enqueue(a)
	q.Squash(a)
	if q.Resident() != 0 || q.IdleCount() != 0 || a.State != Squashed {
		t.Fatal("squash did not remove the task")
	}
}

func TestSpillPrefersLatest(t *testing.T) {
	q := NewQueue(0, 16, 4)
	for i := uint64(1); i <= 10; i++ {
		q.Enqueue(mk(i, i))
	}
	spilled := q.Spill(3)
	if len(spilled) != 3 {
		t.Fatalf("spilled %d tasks, want 3", len(spilled))
	}
	for _, s := range spilled {
		if s.TS < 8 {
			t.Fatalf("spilled an early task (ts=%d); must spill latest", s.TS)
		}
		if s.State != Spilled {
			t.Fatal("spilled task state wrong")
		}
	}
	if q.Resident() != 7 || q.SpilledCount() != 3 {
		t.Fatal("spill accounting wrong")
	}
}

func TestRefillEarliestFirst(t *testing.T) {
	q := NewQueue(0, 16, 4)
	for i := uint64(1); i <= 10; i++ {
		q.Enqueue(mk(i, i))
	}
	q.Spill(5)
	back := q.Refill(2)
	if len(back) != 2 {
		t.Fatalf("refilled %d, want 2", len(back))
	}
	if back[0].Ord().Before(Order{0, 0}) || !back[0].Ord().Before(back[1].Ord()) {
		t.Fatal("refill must return earliest spilled tasks first")
	}
	if q.SpilledCount() != 3 {
		t.Fatal("refill accounting wrong")
	}
}

func TestRefillSkipsSquashed(t *testing.T) {
	q := NewQueue(0, 16, 4)
	for i := uint64(1); i <= 4; i++ {
		q.Enqueue(mk(i, i))
	}
	sp := q.Spill(4)
	sp[0].State = Squashed
	back := q.Refill(4)
	if len(back) != 3 {
		t.Fatalf("refilled %d, want 3 (one squashed)", len(back))
	}
}

func TestNearlyFull(t *testing.T) {
	q := NewQueue(0, 100, 4)
	for i := uint64(0); i < 85; i++ {
		q.Enqueue(mk(i+1, i))
	}
	if !q.NearlyFull(85) {
		t.Fatal("85/100 should trip the 85% threshold")
	}
	if q.NearlyFull(90) {
		t.Fatal("85/100 should not trip a 90% threshold")
	}
}

func TestIdleInOrderVisitsAllInOrder(t *testing.T) {
	q := NewQueue(0, 64, 4)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		q.Enqueue(mk(uint64(i+1), uint64(rng.Intn(1000))))
	}
	var prev Order
	count := 0
	q.IdleInOrder(func(t2 *Task) bool {
		if count > 0 && t2.Ord().Before(prev) {
			t.Fatal("IdleInOrder not in speculative order")
		}
		prev = t2.Ord()
		count++
		return true
	})
	if count != 40 {
		t.Fatalf("visited %d, want 40", count)
	}
	if q.IdleCount() != 40 {
		t.Fatal("IdleInOrder must restore the heap")
	}
}

func TestIdleInOrderEarlyStopRestoresHeap(t *testing.T) {
	q := NewQueue(0, 64, 4)
	for i := uint64(1); i <= 10; i++ {
		q.Enqueue(mk(i, i))
	}
	n := 0
	q.IdleInOrder(func(*Task) bool { n++; return n < 3 })
	if q.IdleCount() != 10 {
		t.Fatalf("heap lost tasks after early stop: %d", q.IdleCount())
	}
	if q.PeekEarliest().TS != 1 {
		t.Fatal("heap order corrupted after early stop")
	}
}

func TestEarliestUncommitted(t *testing.T) {
	q := NewQueue(0, 16, 4)
	a, b := mk(5, 50), mk(6, 60)
	q.Enqueue(a)
	q.Enqueue(b)
	run := mk(7, 40)
	fin := mk(8, 30)
	got := q.EarliestUncommitted([]*Task{run}, []*Task{fin})
	if got != (Order{30, 8}) {
		t.Fatalf("earliest = %+v, want ts=30", got)
	}
	empty := NewQueue(1, 4, 2)
	if got := empty.EarliestUncommitted(nil, nil); got != MaxOrder {
		t.Fatal("empty tile must report MaxOrder")
	}
}

func TestHeapPropertyRandomized(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewQueue(0, 1024, 4)
		live := map[uint64]*Task{}
		var id uint64
		for op := 0; op < 300; op++ {
			switch rng.Intn(3) {
			case 0, 1:
				id++
				tk := mk(id, uint64(rng.Intn(50)))
				if q.Enqueue(tk) {
					live[id] = tk
				}
			case 2:
				if e := q.PeekEarliest(); e != nil {
					// e must be the true minimum among live idle tasks.
					for _, o := range live {
						if o.State == Idle && o.Ord().Before(e.Ord()) {
							return false
						}
					}
					q.Dispatch(e, 0)
					delete(live, e.ID)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
