// Package task defines Swarm task descriptors, the total speculative order,
// and the per-tile task and commit queues that together implement the
// "task-level reorder buffer" of Sec. II-B, including the spill coalescers
// that free task-queue entries under pressure.
package task

import (
	"sort"

	"swarmhints/internal/hashutil"
	"swarmhints/internal/mem"
	"swarmhints/internal/sig"
)

// FnID identifies a registered task function.
type FnID int

// HintKind distinguishes the three values the enqueue hint field can take
// (Sec. III-A).
type HintKind uint8

const (
	// HintInt is an explicit 64-bit integer hint.
	HintInt HintKind = iota
	// HintNone is NOHINT: the programmer does not know the data accessed.
	HintNone
	// HintSame is SAMEHINT: the child inherits the parent's hint.
	HintSame
)

// State is the task lifecycle state.
type State uint8

const (
	// Idle tasks sit in a task queue awaiting dispatch.
	Idle State = iota
	// Running tasks occupy a core.
	Running
	// Finished tasks await commit in the commit queue.
	Finished
	// Committed tasks are done and removed from all queues.
	Committed
	// Spilled tasks were moved to memory to free task-queue entries.
	Spilled
	// Squashed tasks were discarded because an ancestor aborted.
	Squashed
)

// Order is Swarm's total speculative order: timestamp first, creation
// sequence as the tie-break ("If multiple tasks have equal timestamp, Swarm
// chooses an order among them", Sec. II-A).
type Order struct {
	TS uint64
	ID uint64
}

// Before reports whether o precedes p in speculative order.
func (o Order) Before(p Order) bool {
	if o.TS != p.TS {
		return o.TS < p.TS
	}
	return o.ID < p.ID
}

// MaxOrder is later than any real task order.
var MaxOrder = Order{TS: ^uint64(0), ID: ^uint64(0)}

// Task is one speculative task descriptor plus the speculative state the
// simulator tracks for it across its lifetime.
type Task struct {
	ID       uint64
	Fn       FnID
	TS       uint64
	Args     []uint64
	Hint     uint64
	HintKind HintKind
	HintHash uint16 // carried through life, compared at dispatch (Sec. III-B)
	Bucket   int    // LBHints bucket (Sec. VI)

	State State
	Tile  int // current home tile
	Core  int // core while running

	Parent   *Task
	Children []*Task

	// Speculative execution state for the current attempt.
	Undo      mem.UndoLog
	Reads     []uint64 // word addresses
	Writes    []uint64
	RunCycles uint64 // cycles of the current attempt
	Aborts    int    // times this task has been aborted and retried

	// Sigs holds the per-attempt Bloom read/write conflict signatures a
	// Swarm tile keeps for the task (Table II: 2 Kbit, 8-way). The conflict
	// index attaches a pooled block on the first registered access of an
	// attempt, populates it on every access, maintains the counting union
	// of all live signatures as its address pre-filter, and reclaims the
	// block when the task is removed from the index; nil means the attempt
	// has not accessed memory.
	Sigs *sig.Attempt

	// SeenStamp and AbortStamp are conflict-index query epochs (see
	// internal/conflict): a task is in the current accessor-dedup or
	// abort-closure set iff its stamp equals the index's current epoch.
	// Scratch state, meaningful only to the index that stamped it.
	SeenStamp  uint64
	AbortStamp uint64

	// DispatchCycle is when the current attempt started.
	DispatchCycle uint64
	// qpos is the task's slot in its tile's order-indexed idle ring
	// (-1 while not idle). Maintained by orderRing only.
	qpos int
}

// Ord returns the task's speculative order.
func (t *Task) Ord() Order { return Order{TS: t.TS, ID: t.ID} }

// HasHint reports whether the task carries a usable integer hint.
func (t *Task) HasHint() bool { return t.HintKind == HintInt }

// ResetAttempt clears per-attempt speculative state for re-execution.
func (t *Task) ResetAttempt() {
	t.Undo.Reset()
	t.Reads = t.Reads[:0]
	t.Writes = t.Writes[:0]
	if t.Sigs != nil { // usually already reclaimed by conflict.Index.Remove
		t.Sigs.Reset()
	}
	t.RunCycles = 0
	t.Children = t.Children[:0]
}

// init fills in a descriptor, resolving SAMEHINT against the parent and
// precomputing the hashed hint. The receiver may be fresh or recycled; every
// field is (re)set, with slice capacities reused.
func (t *Task) init(id uint64, fn FnID, ts uint64, kind HintKind, hint uint64, parent *Task, args []uint64) {
	t.ID, t.Fn, t.TS = id, fn, ts
	t.Args = append(t.Args[:0], args...)
	t.Hint, t.HintKind, t.HintHash = hint, kind, 0
	t.Bucket = 0
	t.State, t.Tile, t.Core = Idle, 0, 0
	t.Parent = parent
	t.Children = t.Children[:0]
	t.Undo.Reset()
	t.Reads, t.Writes = t.Reads[:0], t.Writes[:0]
	if t.Sigs != nil {
		t.Sigs.Reset()
	}
	t.SeenStamp, t.AbortStamp = 0, 0
	t.RunCycles, t.Aborts = 0, 0
	t.DispatchCycle = 0
	t.qpos = -1
	if kind == HintSame && parent != nil && parent.HintKind == HintInt {
		// Inherit the parent's integer hint outright.
		t.Hint = parent.Hint
		t.HintKind = HintInt
	}
	// An unresolved HintSame (parent had no integer hint) stays HintSame:
	// the task is queued to the local tile but carries no hashed hint.
	if t.HintKind == HintInt {
		t.HintHash = hashutil.HintHash16(t.Hint)
	}
}

// NewTask builds a descriptor, resolving SAMEHINT against the parent and
// precomputing the hashed hint.
func NewTask(id uint64, fn FnID, ts uint64, kind HintKind, hint uint64, parent *Task, args ...uint64) *Task {
	t := &Task{}
	t.init(id, fn, ts, kind, hint, parent, args)
	return t
}

// Pool recycles Task descriptors through a free list so the engine's
// enqueue hot path stops allocating one Task (plus its Args/Reads/Writes/
// undo-log slices) per created task. Not safe for concurrent use: each
// engine owns one, keeping parallel sweep runs free of shared state.
type Pool struct {
	p mem.Pool[Task]
}

// Get returns an initialized descriptor, recycled when possible. The args
// slice is copied into the descriptor's own (reused) backing array, so the
// caller's slice does not escape.
func (pl *Pool) Get(id uint64, fn FnID, ts uint64, kind HintKind, hint uint64, parent *Task, args []uint64) *Task {
	t := pl.p.Get()
	t.init(id, fn, ts, kind, hint, parent, args)
	return t
}

// Put recycles a descriptor. The caller must guarantee nothing references
// it anymore: the engine retires committed tasks only after the GVT round
// that committed them has cleared every child's Parent pointer.
func (pl *Pool) Put(t *Task) {
	pl.p.Put(t)
}

// DescriptorBytes is the task descriptor size sent over the NoC: function
// pointer (8) + 64-bit timestamp (8) + up to three 64-bit args (24) + 16-bit
// hashed hint rounded up (Sec. III-B overheads).
func DescriptorBytes(t *Task) int {
	n := 8 + 8 + 8*len(t.Args) + 2
	if n < 26 {
		n = 26
	}
	return n
}

// ordBefore is Ord().Before with the Order construction flattened out: the
// heap sift loops below compare through it on every level, so it must stay
// a leaf call that inlines to two integer compares.
func (t *Task) ordBefore(u *Task) bool {
	if t.TS != u.TS {
		return t.TS < u.TS
	}
	return t.ID < u.ID
}

// orderRing is the tile's order-indexed idle structure: every idle task,
// kept fully sorted by speculative order in a power-of-two circular
// buffer. Keeping the set sorted moves cost from the engine's read paths
// to its (much rarer) mutations: the earliest task is a load, the
// serialization walk over idle tasks is a linear scan with no per-visit
// heap bookkeeping, and spill-victim selection reads the latest-order
// tasks straight off the back. An insert binary-searches its rank and
// shifts whichever side of the ring is shorter — and the engine's access
// pattern makes that shift almost always empty: freshly created tasks
// carry the latest orders (append at the back), while aborted retries and
// refills carry the earliest (prepend at the front). Order keys are
// unique, so the layout is a pure function of the mutation sequence and
// engine determinism is preserved by construction.
type orderRing struct {
	buf  []*Task // power-of-two ring; live slots are [head, head+n)
	head int     // buf index of the earliest-order task
	n    int
}

func (r *orderRing) len() int { return r.n }

// at returns the task with the i-th smallest order. Callers guarantee
// 0 <= i < n.
func (r *orderRing) at(i int) *Task { return r.buf[(r.head+i)&(len(r.buf)-1)] }

// grow doubles the ring, relaying the live window to the front.
func (r *orderRing) grow() {
	c := len(r.buf) * 2
	if c == 0 {
		c = 16
	}
	nb := make([]*Task, c)
	for i := 0; i < r.n; i++ {
		t := r.at(i)
		nb[i] = t
		t.qpos = i
	}
	r.buf = nb
	r.head = 0
}

// rank returns how many queued tasks precede t in speculative order.
func (r *orderRing) rank(t *Task) int {
	lo, hi := 0, r.n
	mask := len(r.buf) - 1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.buf[(r.head+mid)&mask].ordBefore(t) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// push inserts t at its order rank, shifting the shorter side of the ring.
func (r *orderRing) push(t *Task) {
	if r.n == len(r.buf) {
		r.grow()
	}
	mask := len(r.buf) - 1
	rk := r.rank(t)
	if rk*2 <= r.n {
		r.head = (r.head - 1) & mask
		for i := 0; i < rk; i++ {
			p := (r.head + i) & mask
			u := r.buf[(p+1)&mask]
			r.buf[p] = u
			u.qpos = p
		}
	} else {
		for i := r.n; i > rk; i-- {
			p := (r.head + i) & mask
			u := r.buf[(p-1)&mask]
			r.buf[p] = u
			u.qpos = p
		}
	}
	p := (r.head + rk) & mask
	r.buf[p] = t
	t.qpos = p
	r.n++
}

// remove extracts t (a no-op when t is not queued), closing the gap from
// whichever end is nearer.
func (r *orderRing) remove(t *Task) {
	if t.qpos < 0 {
		return
	}
	mask := len(r.buf) - 1
	rk := (t.qpos - r.head) & mask
	if rk*2 <= r.n {
		for i := rk; i > 0; i-- {
			p := (r.head + i) & mask
			u := r.buf[(p-1)&mask]
			r.buf[p] = u
			u.qpos = p
		}
		r.buf[r.head] = nil
		r.head = (r.head + 1) & mask
	} else {
		for i := rk; i < r.n-1; i++ {
			p := (r.head + i) & mask
			u := r.buf[(p+1)&mask]
			r.buf[p] = u
			u.qpos = p
		}
		r.buf[(r.head+r.n-1)&mask] = nil
	}
	r.n--
	t.qpos = -1
}

// Queue is one tile's task unit storage: every task physically resident on
// the tile (idle, running, or finished) counts against the task-queue
// capacity; finished tasks additionally occupy commit-queue entries.
type Queue struct {
	tile       int
	capacity   int
	commitCap  int
	idle       orderRing
	resident   int // idle + running + finished tasks on this tile
	commitUsed int
	// spillBuffer holds tasks spilled to memory, kept sorted descending by
	// speculative order (earliest task at the end) as an invariant: Spill
	// merges its sorted batch in, SpillDirect binary-inserts, and Refill
	// pops earliest-first from the tail — so no path re-sorts the whole
	// buffer per coalescer firing. Squashed tasks linger (state-marked)
	// until Refill or DropSquashedSpills drops them; neither disturbs the
	// order.
	spillBuffer []*Task
	listScratch []*Task // reused for Spill/Refill result lists
}

// NewQueue builds a tile queue with the given task-queue and commit-queue
// capacities (entries, already multiplied by cores/tile).
func NewQueue(tile, capacity, commitCap int) *Queue {
	return &Queue{tile: tile, capacity: capacity, commitCap: commitCap}
}

// Tile returns the owning tile id.
func (q *Queue) Tile() int { return q.tile }

// Capacity returns the task-queue capacity.
func (q *Queue) Capacity() int { return q.capacity }

// Resident returns the number of resident tasks.
func (q *Queue) Resident() int { return q.resident }

// IdleCount returns the number of dispatchable tasks.
func (q *Queue) IdleCount() int { return q.idle.len() }

// SpilledCount returns the number of tasks spilled to memory.
func (q *Queue) SpilledCount() int { return len(q.spillBuffer) }

// Full reports whether a new task cannot be accepted.
func (q *Queue) Full() bool { return q.resident >= q.capacity }

// NearlyFull reports whether occupancy reached the coalescer threshold.
func (q *Queue) NearlyFull(thresholdPct int) bool {
	return q.resident*100 >= q.capacity*thresholdPct
}

// CommitSlotFree reports whether a finished task could be accepted.
func (q *Queue) CommitSlotFree() bool { return q.commitUsed < q.commitCap }

// CommitUsed returns occupied commit-queue entries.
func (q *Queue) CommitUsed() int { return q.commitUsed }

// Enqueue accepts an idle task. Returns false when the queue is full.
func (q *Queue) Enqueue(t *Task) bool {
	if q.Full() {
		return false
	}
	t.State = Idle
	t.Tile = q.tile
	q.idle.push(t)
	q.resident++
	return true
}

// PeekEarliest returns the earliest-order idle task without removing it.
func (q *Queue) PeekEarliest() *Task {
	if q.idle.n == 0 {
		return nil
	}
	return q.idle.buf[q.idle.head]
}

// IdleInOrder iterates idle tasks in speculative order, calling fn until it
// returns false. Used by dispatch to skip hint-serialized candidates
// (Sec. III-B). The idle ring is already order-sorted, so the walk is a
// plain read-only scan — O(1) per visited task with no scratch state, even
// under heavy serialization (every idle task skipped, the contended worst
// case). fn must not mutate the queue.
func (q *Queue) IdleInOrder(fn func(*Task) bool) {
	n := q.idle.n
	if n == 0 {
		return
	}
	mask := len(q.idle.buf) - 1
	for i := 0; i < n; i++ {
		if !fn(q.idle.buf[(q.idle.head+i)&mask]) {
			return
		}
	}
}

// Dispatch removes an idle task for execution on a core, reserving its
// commit-queue entry up front so a finished task always has somewhere to
// hold its speculative state. Callers must check CommitSlotFree first.
func (q *Queue) Dispatch(t *Task, core int) {
	q.idle.remove(t)
	t.State = Running
	t.Core = core
	q.commitUsed++
}

// Finish marks a running task as finished; its commit-queue entry was
// reserved at dispatch.
func (q *Queue) Finish(t *Task) {
	t.State = Finished
}

// Commit removes a finished task from the tile entirely.
func (q *Queue) Commit(t *Task) {
	t.State = Committed
	q.commitUsed--
	q.resident--
}

// AbortRunning returns a running task to idle for retry, releasing its
// reserved commit slot.
func (q *Queue) AbortRunning(t *Task) {
	q.commitUsed--
	t.State = Idle
	t.Aborts++
	q.idle.push(t)
}

// AbortFinished returns a finished task to idle, freeing its commit slot.
func (q *Queue) AbortFinished(t *Task) {
	q.commitUsed--
	t.State = Idle
	t.Aborts++
	q.idle.push(t)
}

// Squash removes an idle task entirely (its parent aborted; the parent will
// re-create it when it re-runs).
func (q *Queue) Squash(t *Task) {
	q.idle.remove(t)
	t.State = Squashed
	q.resident--
}

// SquashRunning discards a running task whose ancestor aborted.
func (q *Queue) SquashRunning(t *Task) {
	q.commitUsed--
	q.resident--
	t.State = Squashed
}

// SquashFinished discards a finished task whose ancestor aborted.
func (q *Queue) SquashFinished(t *Task) {
	q.commitUsed--
	q.resident--
	t.State = Squashed
}

// SpillDirect sends a brand-new task straight to the spill buffer, used
// when the task queue is exhausted and nothing is spillable: the descriptor
// overflows to memory rather than stalling the enqueuer forever. The task
// is binary-inserted to keep the buffer's descending order.
func (q *Queue) SpillDirect(t *Task) {
	t.State = Spilled
	t.Tile = q.tile
	// First index whose task is earlier than t; t belongs right before it.
	i := sort.Search(len(q.spillBuffer), func(i int) bool {
		return q.spillBuffer[i].ordBefore(t)
	})
	q.spillBuffer = append(q.spillBuffer, nil)
	copy(q.spillBuffer[i+1:], q.spillBuffer[i:])
	q.spillBuffer[i] = t
}

// RemoveIdle extracts an idle task (for stealing) without squashing it.
func (q *Queue) RemoveIdle(t *Task) {
	q.idle.remove(t)
	q.resident--
}

// Spill moves up to max idle tasks with the latest orders out to memory,
// preferring tasks whose parent has committed or that have no live parent
// (Sec. II-B). Selection reads the order-sorted idle ring from the latest
// end — O(batch) plus any unspillable tasks skipped over, instead of the
// full scan-and-sort over every idle task the heap needed per coalescer
// firing. It returns the spilled tasks (descending order, the spill
// buffer's invariant) so the caller can charge cycles and traffic; the
// slice is scratch reused by the next Spill or Refill.
func (q *Queue) Spill(max int) []*Task {
	if max <= 0 || q.idle.n == 0 {
		return nil
	}
	cands := q.listScratch[:0]
	defer func() { q.listScratch = cands[:0] }()
	for i := q.idle.n - 1; i >= 0 && len(cands) < max; i-- {
		t := q.idle.at(i)
		if t.Parent == nil || t.Parent.State == Committed || t.Parent.State == Finished || t.Parent.State == Running {
			cands = append(cands, t)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	for _, t := range cands {
		q.idle.remove(t)
		q.resident--
		t.State = Spilled
	}
	q.mergeSpill(cands)
	return cands
}

// mergeSpill merges a descending-sorted batch into the (also descending)
// spill buffer in one backward pass: O(buffer+batch) worst case, and O(batch)
// when the batch's orders all follow the buffered ones — the common case, as
// spills take the latest orders and refills drain the earliest. Reads come
// from the batch slice (separate backing array), so overwriting the buffer's
// grown tail is safe.
func (q *Queue) mergeSpill(batch []*Task) {
	n := len(q.spillBuffer)
	q.spillBuffer = append(q.spillBuffer, batch...)
	if n == 0 {
		return
	}
	i, j := n-1, len(batch)-1
	for w := len(q.spillBuffer) - 1; j >= 0; w-- {
		if i >= 0 && q.spillBuffer[i].ordBefore(batch[j]) {
			q.spillBuffer[w] = q.spillBuffer[i]
			i--
		} else {
			q.spillBuffer[w] = batch[j]
			j--
		}
	}
}

// Refill moves up to max spilled tasks back into the queue while space
// allows, earliest order first — the buffer's sorted invariant puts them at
// the tail, so no re-sort happens here. It returns the refilled tasks; the
// slice is scratch reused by the next Spill or Refill.
func (q *Queue) Refill(max int) []*Task {
	if len(q.spillBuffer) == 0 {
		return nil
	}
	back := q.listScratch[:0]
	defer func() { q.listScratch = back[:0] }()
	for len(back) < max && len(q.spillBuffer) > 0 && !q.Full() {
		t := q.spillBuffer[len(q.spillBuffer)-1]
		if t.State == Squashed { // parent aborted while spilled
			q.spillBuffer = q.spillBuffer[:len(q.spillBuffer)-1]
			continue
		}
		q.spillBuffer = q.spillBuffer[:len(q.spillBuffer)-1]
		t.State = Idle
		q.idle.push(t)
		q.resident++
		back = append(back, t)
	}
	return back
}

// DropSquashedSpills removes squashed tasks from the spill buffer.
func (q *Queue) DropSquashedSpills() {
	out := q.spillBuffer[:0]
	for _, t := range q.spillBuffer {
		if t.State != Squashed {
			out = append(out, t)
		}
	}
	q.spillBuffer = out
}

// EarliestUncommitted returns the earliest order among all tasks this tile
// is responsible for (idle, running, finished, spilled), or MaxOrder. The
// GVT arbiter aggregates this across tiles.
func (q *Queue) EarliestUncommitted(running []*Task, finished []*Task) Order {
	best := MaxOrder
	if q.idle.n > 0 && q.idle.buf[q.idle.head].Ord().Before(best) {
		best = q.idle.buf[q.idle.head].Ord()
	}
	for _, t := range q.spillBuffer {
		if t.State == Spilled && t.Ord().Before(best) {
			best = t.Ord()
		}
	}
	for _, t := range running {
		if t != nil && t.Ord().Before(best) {
			best = t.Ord()
		}
	}
	for _, t := range finished {
		if t.Ord().Before(best) {
			best = t.Ord()
		}
	}
	return best
}
