package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"swarmhints/internal/bench"
	"swarmhints/internal/exp"
	"swarmhints/swarm"
	"swarmhints/swarm/api"
)

// tinyConfig is the cheap configuration the unit tests hammer.
func tinyConfig(name string, cores int) Config {
	return Config{Scale: bench.Tiny, Seed: 7, Point: exp.Point{
		Name: name, Kind: swarm.Hints, Cores: cores,
	}}
}

func TestConfigKeyUsesCanonicalPointKey(t *testing.T) {
	cfg := tinyConfig("des", 4)
	if !strings.HasSuffix(cfg.Key(), cfg.Point.Key()) {
		t.Fatalf("service key %q does not embed the harness key %q", cfg.Key(), cfg.Point.Key())
	}
	if !strings.HasPrefix(cfg.Key(), "tiny/7/") {
		t.Fatalf("service key %q lacks the (scale, seed) prefix", cfg.Key())
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRU(2)
	st := func(n uint64) *swarm.Stats { return &swarm.Stats{Cycles: n} }
	c.add("a", st(1))
	c.add("b", st(2))
	if _, ok := c.get("a"); !ok { // refresh a: b becomes the eviction victim
		t.Fatal("a missing")
	}
	c.add("c", st(3))
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted (least recently used)")
	}
	for _, want := range []string{"a", "c"} {
		if _, ok := c.get(want); !ok {
			t.Fatalf("%s missing after eviction", want)
		}
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}
}

func TestLRURefreshDoesNotGrow(t *testing.T) {
	c := newLRU(2)
	st := &swarm.Stats{Cycles: 9}
	c.add("a", st)
	c.add("a", st)
	if c.len() != 1 {
		t.Fatalf("duplicate add grew the cache to %d entries", c.len())
	}
}

// TestSingleflightUnderRace is the concurrency contract (run under -race in
// CI): 32 goroutines hammer the same configuration concurrently; exactly
// one simulation executes, every caller gets byte-identical output, and the
// hit/miss/coalesced counters account for every request.
func TestSingleflightUnderRace(t *testing.T) {
	svc := New(Options{Workers: 4, Validate: true})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	const callers = 32
	body := `{"bench":"des","sched":"hints","cores":4,"scale":"tiny"}`
	bodies := make([][]byte, callers)
	sources := make([]string, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("caller %d: status %d", i, resp.StatusCode)
				return
			}
			bodies[i], err = io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			sources[i] = resp.Header.Get("X-Swarmd-Source")
		}()
	}
	wg.Wait()

	for i := 1; i < callers; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("caller %d got different bytes than caller 0", i)
		}
	}
	if len(bodies[0]) == 0 {
		t.Fatal("empty response body")
	}

	c := svc.Counters()
	if c.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 simulation executed", c.Misses)
	}
	if got := c.RunsByBench["des"]; got != 1 {
		t.Errorf("runs[des] = %d, want 1", got)
	}
	if total := c.Hits + c.Misses + c.Coalesced; total != callers {
		t.Errorf("hits(%d)+misses(%d)+coalesced(%d) = %d, want %d",
			c.Hits, c.Misses, c.Coalesced, total, callers)
	}
	// Every non-executing caller was either coalesced onto the in-flight
	// run or answered from the already-filled cache.
	ran := 0
	for _, src := range sources {
		if src == string(SourceRun) {
			ran++
		}
	}
	if ran != 1 {
		t.Errorf("%d callers report source=run, want 1", ran)
	}
	if c.Queued != 0 || c.InFlight != 0 {
		t.Errorf("gauges not drained: queued=%d inflight=%d", c.Queued, c.InFlight)
	}
}

// TestStatsWarmCacheSkipsExecution pins the caching behavior at the API
// level: a repeat of a completed configuration is a pure cache hit.
func TestStatsWarmCacheSkipsExecution(t *testing.T) {
	svc := New(Options{Workers: 2, Validate: true})
	defer svc.Close()
	ctx := context.Background()
	cfg := tinyConfig("bfs", 1)

	st1, src1, err := svc.Stats(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if src1 != SourceRun {
		t.Fatalf("cold call source = %v, want run", src1)
	}
	st2, src2, err := svc.Stats(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if src2 != SourceCache {
		t.Fatalf("warm call source = %v, want cache", src2)
	}
	if st1 != st2 {
		t.Fatal("warm call returned a different stats object than the cached run")
	}
	c := svc.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.Cached != 1 {
		t.Fatalf("counters hits=%d misses=%d cached=%d, want 1/1/1", c.Hits, c.Misses, c.Cached)
	}
}

// TestStatsCanceledWhileQueued checks an abandoned request frees its queue
// position without executing.
func TestStatsCanceledWhileQueued(t *testing.T) {
	svc := New(Options{Workers: 1, Validate: true})
	defer svc.Close()
	// Occupy the only worker slot.
	svc.sem <- struct{}{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := svc.Stats(ctx, tinyConfig("bfs", 1))
	if err == nil {
		t.Fatal("canceled request executed anyway")
	}
	<-svc.sem
	c := svc.Counters()
	if c.Queued != 0 {
		t.Fatalf("queue depth %d after canceled request, want 0", c.Queued)
	}
	if len(c.RunsByBench) != 0 {
		t.Fatalf("canceled request recorded a run: %v", c.RunsByBench)
	}
}

// TestCoalescedSurvivesLeaderCancel checks a coalesced caller is not
// failed by the flight leader's disconnect: the shared run executes under
// the flight's own context, which lives as long as any caller wants the
// result.
func TestCoalescedSurvivesLeaderCancel(t *testing.T) {
	svc := New(Options{Workers: 1, Validate: true})
	defer svc.Close()
	// Occupy the only worker slot so the leader queues inside its flight.
	svc.sem <- struct{}{}
	cfg := tinyConfig("bfs", 1)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	type outcome struct {
		st  *swarm.Stats
		src Source
		err error
	}
	leaderDone := make(chan outcome, 1)
	go func() {
		st, src, err := svc.Stats(leaderCtx, cfg)
		leaderDone <- outcome{st, src, err}
	}()
	waitFor := func(cond func() bool, what string) {
		t.Helper()
		for i := 0; i < 2000 && !cond(); i++ {
			time.Sleep(time.Millisecond)
		}
		if !cond() {
			t.Fatalf("timed out waiting for %s", what)
		}
	}
	waitFor(func() bool { return svc.Counters().Queued == 1 }, "leader to queue")

	waiterDone := make(chan outcome, 1)
	go func() {
		st, src, err := svc.Stats(context.Background(), cfg)
		waiterDone <- outcome{st, src, err}
	}()
	waitFor(func() bool { return svc.Counters().Coalesced == 1 }, "waiter to coalesce")

	// The leader's request dies, then the fleet frees up.
	cancelLeader()
	<-svc.sem

	waiter := <-waiterDone
	if waiter.err != nil {
		t.Fatalf("coalesced caller failed after leader cancel: %v", waiter.err)
	}
	if waiter.src != SourceCoalesced || waiter.st == nil {
		t.Fatalf("waiter outcome src=%v st=%v", waiter.src, waiter.st)
	}
	<-leaderDone // the leader goroutine ran the flight to completion
	if c := svc.Counters(); c.RunsByBench["bfs"] != 1 || c.Cached != 1 {
		t.Fatalf("flight result not recorded: %+v", c)
	}
}

// TestFlightAbandonedByAllCallersAborts checks the complementary property:
// when every interested caller is gone, the queued flight stops consuming
// the fleet instead of running to completion.
func TestFlightAbandonedByAllCallersAborts(t *testing.T) {
	svc := New(Options{Workers: 1, Validate: true})
	defer svc.Close()
	svc.sem <- struct{}{}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := svc.Stats(ctx, tinyConfig("bfs", 4))
		done <- err
	}()
	for i := 0; i < 2000 && svc.Counters().Queued != 1; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	err := <-done
	if err == nil {
		t.Fatal("fully abandoned flight still produced a result")
	}
	<-svc.sem
	if c := svc.Counters(); len(c.RunsByBench) != 0 {
		t.Fatalf("abandoned flight executed: %+v", c.RunsByBench)
	}
}

func TestSweepRequestParseValidation(t *testing.T) {
	bad := []struct {
		req  api.SweepRequest
		code api.Code
	}{
		{api.SweepRequest{}, api.CodeBadRequest},
		{api.SweepRequest{Benches: []string{"des"}, Scheds: []string{"hints"}}, api.CodeBadRequest},
		{api.SweepRequest{Benches: []string{"no-such"}, Scheds: []string{"hints"}, Cores: []int{1}}, api.CodeUnknownBench},
		{api.SweepRequest{Benches: []string{"des"}, Scheds: []string{"warp-speed"}, Cores: []int{1}}, api.CodeUnknownSched},
		{api.SweepRequest{Benches: []string{"des"}, Scheds: []string{"hints"}, Cores: []int{0}}, api.CodeBadCores},
		{api.SweepRequest{Benches: []string{"des"}, Scheds: []string{"hints"}, Cores: []int{1}, Scale: "giant"}, api.CodeUnknownScale},
	}
	for i, tc := range bad {
		_, _, _, aerr := ParseSweep(tc.req)
		if aerr == nil {
			t.Errorf("bad request %d parsed cleanly: %+v", i, tc.req)
			continue
		}
		if aerr.Code != tc.code {
			t.Errorf("bad request %d: code = %q, want %q (message %q)", i, aerr.Code, tc.code, aerr.Message)
		}
		if aerr.Retryable {
			t.Errorf("bad request %d: validation error marked retryable", i)
		}
	}
	req := api.SweepRequest{
		Benches: []string{"des", "des"}, // duplicates collapse
		Scheds:  []string{"random", "hints"},
		Cores:   []int{4, 1},
		Scale:   "tiny",
	}
	points, scale, seed, err := ParseSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	if scale != bench.Tiny || seed != 7 {
		t.Fatalf("harness = (%v, %d), want (tiny, 7)", scale, seed)
	}
	if len(points) != 4 {
		t.Fatalf("grid has %d points, want 4 after dedup", len(points))
	}
	// Canonical order: by scheduler (Random < Hints), then cores.
	want := []exp.Point{
		{Name: "des", Kind: swarm.Random, Cores: 1},
		{Name: "des", Kind: swarm.Random, Cores: 4},
		{Name: "des", Kind: swarm.Hints, Cores: 1},
		{Name: "des", Kind: swarm.Hints, Cores: 4},
	}
	for i := range want {
		if points[i] != want[i] {
			t.Fatalf("point %d = %+v, want %+v", i, points[i], want[i])
		}
	}
}

func TestHealthzAndExperimentList(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), `"ok"`) {
		t.Fatalf("healthz: %d %q", resp.StatusCode, b)
	}

	resp, err = http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []struct{ ID, Title string }
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != len(exp.Registry) {
		t.Fatalf("experiment list has %d entries, want %d", len(list), len(exp.Registry))
	}
	if list[0].ID != "table1" {
		t.Fatalf("experiment list not in paper order: %+v", list[0])
	}
}

func TestRunRequestRejectsUnknownFields(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json",
		strings.NewReader(`{"bench":"des","sched":"hints","coores":4}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("typoed field accepted: status %d", resp.StatusCode)
	}
	aerr := decodeEnvelope(t, resp)
	if aerr.Code != api.CodeBadRequest {
		t.Fatalf("code = %q, want %q", aerr.Code, api.CodeBadRequest)
	}
}

// decodeEnvelope asserts a response body is exactly the structured error
// envelope {"error":{"code","message","retryable"}} — nothing else, no
// plain-text http.Error fallback — and returns the decoded error.
func decodeEnvelope(t *testing.T, resp *http.Response) *api.Error {
	t.Helper()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Error *api.Error `json:"error"`
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil || env.Error == nil {
		t.Fatalf("response is not the error envelope (err=%v): %q", err, body)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %q", body)
	}
	if got, want := resp.StatusCode, env.Error.HTTPStatus(); got != want {
		t.Fatalf("status %d does not match code %q (want %d)", got, env.Error.Code, want)
	}
	return env.Error
}

// TestErrorEnvelopeOnAllEndpoints pins the wire contract: every error
// response on the /v1 surface is the structured envelope with a stable
// code — no endpoint falls back to plain-text http.Error bodies.
func TestErrorEnvelopeOnAllEndpoints(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	cases := []struct {
		name      string
		path      string
		body      string
		code      api.Code
		status    int
		retryable bool
	}{
		{"run/bad-json", "/v1/run", `{"bench":`, api.CodeBadRequest, 400, false},
		{"run/unknown-bench", "/v1/run", `{"bench":"no-such","sched":"hints","cores":1,"scale":"tiny"}`, api.CodeUnknownBench, 400, false},
		{"run/unknown-sched", "/v1/run", `{"bench":"des","sched":"warp","cores":1,"scale":"tiny"}`, api.CodeUnknownSched, 400, false},
		{"run/unknown-scale", "/v1/run", `{"bench":"des","sched":"hints","cores":1,"scale":"giant"}`, api.CodeUnknownScale, 400, false},
		{"run/bad-cores", "/v1/run", `{"bench":"des","sched":"hints","cores":3,"scale":"tiny"}`, api.CodeBadCores, 400, false},
		{"sweep/empty-grid", "/v1/sweep", `{"benches":["des"],"scheds":[],"cores":[1],"scale":"tiny"}`, api.CodeBadRequest, 400, false},
		{"sweep/unknown-format", "/v1/sweep", `{"benches":["des"],"scheds":["hints"],"cores":[1],"scale":"tiny","format":"xml"}`, api.CodeUnknownFormat, 400, false},
		{"experiment/unknown-id", "/v1/experiments/fig99", `{}`, api.CodeUnknownExperiment, 404, false},
		{"experiment/unknown-format", "/v1/experiments/fig2", `{"scale":"tiny","format":"yaml"}`, api.CodeUnknownFormat, 400, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			aerr := decodeEnvelope(t, resp)
			if aerr.Code != tc.code {
				t.Fatalf("code = %q, want %q (message %q)", aerr.Code, tc.code, aerr.Message)
			}
			if aerr.Retryable != tc.retryable {
				t.Fatalf("retryable = %v, want %v", aerr.Retryable, tc.retryable)
			}
		})
	}
}

// TestUnknownFormatListsEndpointFormats checks the unified unknown-format
// helper reports the formats each endpoint actually supports: /v1/sweep
// has no "text", /v1/experiments/{id} does.
func TestUnknownFormatListsEndpointFormats(t *testing.T) {
	svc := New(DefaultOptions())
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	get := func(path, body string) string {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return decodeEnvelope(t, resp).Message
	}
	sweepMsg := get("/v1/sweep", `{"benches":["des"],"scheds":["hints"],"cores":[1],"scale":"tiny","format":"xml"}`)
	if !strings.Contains(sweepMsg, "ndjson, json, csv") || strings.Contains(sweepMsg, "text") {
		t.Errorf("sweep unknown-format message lists wrong formats: %q", sweepMsg)
	}
	expMsg := get("/v1/experiments/fig2", `{"scale":"tiny","format":"xml"}`)
	if !strings.Contains(expMsg, "text") {
		t.Errorf("experiment unknown-format message omits text: %q", expMsg)
	}
}

// TestPromMetricsWellFormed checks /metrics speaks the exposition format
// and carries the counters the acceptance criteria rely on.
func TestPromMetricsWellFormed(t *testing.T) {
	svc := New(Options{Workers: 1, Validate: true})
	defer svc.Close()
	if _, _, err := svc.Stats(context.Background(), tinyConfig("bfs", 1)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	out := string(b)
	for _, want := range []string{
		"# TYPE swarmd_cache_hits_total counter",
		"swarmd_cache_misses_total 1",
		"swarmd_cache_entries 1",
		"# TYPE swarmd_queue_depth gauge",
		fmt.Sprintf("swarmd_runs_total{bench=%q} 1", "bfs"),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}
