package service

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"swarmhints/internal/bench"
	"swarmhints/internal/exp"
	"swarmhints/internal/metrics"
	"swarmhints/internal/store"
	"swarmhints/swarm"
	"swarmhints/swarm/api"
)

// fig2SweepBody is the sweep request covering exactly the grid the fig2
// experiment executes at Tiny scale with cores {1,4}: des under all four
// schedulers. The committed golden export in internal/exp/testdata was
// generated from that grid, so it doubles as the service's differential
// oracle.
const fig2SweepBody = `{
	"benches": ["des"],
	"scheds":  ["random", "stealing", "hints", "lbhints"],
	"cores":   [1, 4],
	"scale":   "tiny",
	"format":  "%s"
}`

func fig2Golden(t *testing.T) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "exp", "testdata", "export_fig2_tiny.golden.json"))
	if err != nil {
		t.Fatalf("golden export missing: %v", err)
	}
	return b
}

// startServer boots the service on an ephemeral port.
func startServer(t *testing.T, opt Options) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(opt)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return svc, ts
}

func postSweep(t *testing.T, url, format string) []byte {
	t.Helper()
	body := strings.Replace(fig2SweepBody, "%s", format, 1)
	resp, err := http.Post(url+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, b)
	}
	return b
}

// TestSweepJSONMatchesGoldenExport is the end-to-end differential test of
// the acceptance criteria: the service's buffered JSON sweep response must
// be byte-identical to the committed CLI export for the same grid — and to
// a direct in-process exp.Runner — at more than one worker count.
func TestSweepJSONMatchesGoldenExport(t *testing.T) {
	golden := fig2Golden(t)

	// Differential leg 1: a direct runner, no service in the path.
	o := exp.DefaultOptions(bench.Tiny)
	o.Cores = []int{1, 4}
	direct := exp.NewRunner(o)
	err := direct.PrimeGrid(context.Background(), []string{"des"},
		[]swarm.SchedKind{swarm.Random, swarm.Stealing, swarm.Hints, swarm.LBHints}, []int{1, 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	var directBuf bytes.Buffer
	if err := direct.Export().WriteJSON(&directBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(directBuf.Bytes(), golden) {
		t.Fatal("direct runner export no longer matches the golden file; regenerate the golden first")
	}

	// Differential leg 2: the service, at two worker counts.
	for _, workers := range []int{1, 8} {
		_, ts := startServer(t, Options{Workers: workers, Validate: true})
		got := postSweep(t, ts.URL, "json")
		if !bytes.Equal(got, golden) {
			t.Errorf("workers=%d: sweep JSON differs from the golden export (%d vs %d bytes)",
				workers, len(got), len(golden))
		}
	}
}

// TestSweepNDJSONReassemblesToGolden checks the streaming format: the
// header announces the grid, records arrive in canonical configuration
// order, the stream ends with the completion trailer, and reassembling
// the records into a ResultSet reproduces the golden export byte for byte.
func TestSweepNDJSONReassemblesToGolden(t *testing.T) {
	_, ts := startServer(t, Options{Workers: 4, Validate: true})
	raw := postSweep(t, ts.URL, "ndjson")

	dec, err := api.NewStreamDecoder(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("bad stream header: %v", err)
	}
	header := dec.Header()
	if header.Schema != metrics.SchemaVersion {
		t.Fatalf("header schema %q, want %q", header.Schema, metrics.SchemaVersion)
	}
	if header.Points != 8 {
		t.Fatalf("header announces %d points, want 8 (truncation detection)", header.Points)
	}
	rs := metrics.ResultSet{Schema: header.Schema, Fields: header.Fields}
	for {
		rec, ok, err := dec.Next()
		if err != nil {
			t.Fatalf("stream decode: %v", err)
		}
		if !ok {
			break
		}
		rs.Records = append(rs.Records, rec)
	}
	trailer := dec.Trailer()
	if trailer == nil || !trailer.Complete || trailer.Points != 8 {
		t.Fatalf("stream trailer = %+v, want complete with 8 points", trailer)
	}
	if len(rs.Records) != 8 {
		t.Fatalf("stream carried %d records, want 8", len(rs.Records))
	}

	// A truncated stream (trailer cut off) must NOT decode cleanly.
	cut := raw[:bytes.LastIndexByte(bytes.TrimRight(raw, "\n"), '\n')+1]
	tdec, err := api.NewStreamDecoder(bytes.NewReader(cut))
	if err != nil {
		t.Fatalf("bad truncated-stream header: %v", err)
	}
	for {
		_, ok, err := tdec.Next()
		if err != nil {
			if !errors.Is(err, api.ErrTruncated) {
				t.Fatalf("truncated stream error = %v, want ErrTruncated", err)
			}
			break
		}
		if !ok {
			t.Fatal("truncated stream decoded as complete")
		}
	}
	// Streamed order must be the canonical export order already.
	for i := 1; i < len(rs.Records); i++ {
		a, b := rs.Records[i-1].Labels, rs.Records[i].Labels
		if a["sched"] == b["sched"] && a["cores"] > b["cores"] {
			t.Fatalf("records %d/%d out of canonical order: %v then %v", i-1, i, a, b)
		}
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), fig2Golden(t)) {
		t.Error("reassembled NDJSON stream differs from the golden export")
	}
}

// TestSweepDeterministicAcrossWorkerCounts hammers the same sweep at
// several worker counts on one shared service (so later sweeps are partly
// or fully cache-served) and requires byte-identical NDJSON every time:
// cache state must be unobservable in the bytes.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	var first []byte
	for _, workers := range []int{1, 2, 8} {
		_, ts := startServer(t, Options{Workers: workers, Validate: true})
		got := postSweep(t, ts.URL, "ndjson")
		if first == nil {
			first = got
			continue
		}
		if !bytes.Equal(got, first) {
			t.Errorf("workers=%d: NDJSON differs from workers=1", workers)
		}
	}
	// Cold vs warm on one service: the second response comes from cache.
	svc, ts := startServer(t, Options{Workers: 4, Validate: true})
	cold := postSweep(t, ts.URL, "ndjson")
	missesAfterCold := svc.Counters().Misses
	warm := postSweep(t, ts.URL, "ndjson")
	if !bytes.Equal(cold, warm) {
		t.Error("warm sweep bytes differ from cold sweep")
	}
	if got := svc.Counters().Misses; got != missesAfterCold {
		t.Errorf("warm sweep executed %d extra simulations", got-missesAfterCold)
	}
}

// promCounter extracts one un-labeled counter value from /metrics output.
func promCounter(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`).FindSubmatch(b)
	if m == nil {
		t.Fatalf("metric %s missing from /metrics:\n%s", name, b)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestWarmRunServedFromCacheViaMetrics is the acceptance check "a
// warm-cache POST /v1/run answers without launching a simulation, verified
// by the hit counter in /metrics".
func TestWarmRunServedFromCacheViaMetrics(t *testing.T) {
	_, ts := startServer(t, Options{Workers: 2, Validate: true})
	post := func() (string, []byte) {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json",
			strings.NewReader(`{"bench":"des","sched":"random","cores":1,"scale":"tiny"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run status %d: %s", resp.StatusCode, b)
		}
		return resp.Header.Get("X-Swarmd-Source"), b
	}

	src, cold := post()
	if src != string(SourceRun) {
		t.Fatalf("cold run source = %q, want run", src)
	}
	hits, misses := promCounter(t, ts.URL, "swarmd_cache_hits_total"), promCounter(t, ts.URL, "swarmd_cache_misses_total")
	if hits != 0 || misses != 1 {
		t.Fatalf("after cold run: hits=%v misses=%v, want 0/1", hits, misses)
	}

	src, warm := post()
	if src != string(SourceCache) {
		t.Fatalf("warm run source = %q, want cache", src)
	}
	if !bytes.Equal(cold, warm) {
		t.Error("warm response bytes differ from cold response")
	}
	hits, misses = promCounter(t, ts.URL, "swarmd_cache_hits_total"), promCounter(t, ts.URL, "swarmd_cache_misses_total")
	if hits != 1 || misses != 1 {
		t.Fatalf("after warm run: hits=%v misses=%v, want 1/1 (no new simulation)", hits, misses)
	}
}

// openStore opens a result store rooted in dir, failing the test on error.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// sumRuns totals the completed engine executions across benchmarks.
func sumRuns(c Counters) uint64 {
	var n uint64
	for _, v := range c.RunsByBench {
		n += v
	}
	return n
}

// TestWarmRestartServedFromStore is the warm-restart acceptance check: a
// fig2-tiny sweep runs against a server with a persistent store, the server
// is killed, a fresh server starts on the same directory, and the repeated
// sweep must be byte-identical to the golden with ZERO engine executions —
// verified through swarmd_store_hits_total and the run counters, exactly as
// the CI race job exercises it.
func TestWarmRestartServedFromStore(t *testing.T) {
	golden := fig2Golden(t)
	dir := t.TempDir()

	// Cold server: every point computes, is written through, and the sweep
	// bytes match the golden (compute path).
	svc, ts := startServer(t, Options{Workers: 4, Validate: true, Store: openStore(t, dir)})
	cold := postSweep(t, ts.URL, "json")
	if !bytes.Equal(cold, golden) {
		t.Fatal("cold sweep with store differs from the golden export")
	}
	if runs := sumRuns(svc.Counters()); runs != 8 {
		t.Fatalf("cold sweep executed %d engine runs, want 8", runs)
	}
	if w := svc.Counters().Store.Writes; w != 8 {
		t.Fatalf("cold sweep wrote %d records through, want 8", w)
	}
	// Memory-cache path: same bytes, still zero store hits.
	warmMem := postSweep(t, ts.URL, "json")
	if !bytes.Equal(warmMem, golden) {
		t.Fatal("memory-cached sweep differs from the golden export")
	}
	if h := svc.Counters().Store.Hits; h != 0 {
		t.Fatalf("LRU-served sweep touched the store %d times", h)
	}
	// Kill the server: the LRU dies with it, the store does not.
	ts.Close()
	svc.Close()

	svc2, ts2 := startServer(t, Options{Workers: 4, Validate: true, Store: openStore(t, dir)})
	warm := postSweep(t, ts2.URL, "json")
	if !bytes.Equal(warm, golden) {
		t.Fatal("store-served sweep differs from the golden export")
	}
	if hits := promCounter(t, ts2.URL, "swarmd_store_hits_total"); hits != 8 {
		t.Fatalf("swarmd_store_hits_total = %v, want 8", hits)
	}
	if misses := promCounter(t, ts2.URL, "swarmd_cache_misses_total"); misses != 0 {
		t.Fatalf("restarted sweep attempted %v simulations, want 0", misses)
	}
	if runs := sumRuns(svc2.Counters()); runs != 0 {
		t.Fatalf("restarted sweep executed %d engine runs, want 0", runs)
	}

	// Tier order on the restarted server: first lookup came from the store,
	// a repeat comes from the refilled LRU.
	cfg := Config{Scale: bench.Tiny, Seed: 7,
		Point: exp.Point{Name: "des", Kind: swarm.Random, Cores: 1}}
	if _, src, err := svc2.Stats(context.Background(), cfg); err != nil || src != SourceCache {
		t.Errorf("second lookup after store fill: src=%v err=%v, want cache", src, err)
	}
}

// TestStoreTierSourceAndWriteThrough pins the Stats tier order at the API
// level: run → store (after a restart) → cache, with the run counter only
// moving for real executions and all three results byte-identical.
func TestStoreTierSourceAndWriteThrough(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Scale: bench.Tiny, Seed: 7,
		Point: exp.Point{Name: "des", Kind: swarm.Hints, Cores: 4}}

	svc := New(Options{Workers: 2, Validate: true, Store: openStore(t, dir)})
	defer svc.Close()
	st1, src, err := svc.Stats(context.Background(), cfg)
	if err != nil || src != SourceRun {
		t.Fatalf("cold: src=%v err=%v, want run", src, err)
	}
	svc.Close()

	svc2 := New(Options{Workers: 2, Validate: true, Store: openStore(t, dir)})
	defer svc2.Close()
	st2, src, err := svc2.Stats(context.Background(), cfg)
	if err != nil || src != SourceStore {
		t.Fatalf("restarted: src=%v err=%v, want store", src, err)
	}
	if c := svc2.Counters(); c.Misses != 0 || sumRuns(c) != 0 {
		t.Fatalf("store-served lookup counted as a run: %+v", c)
	}
	st3, src, err := svc2.Stats(context.Background(), cfg)
	if err != nil || src != SourceCache {
		t.Fatalf("repeat: src=%v err=%v, want cache", src, err)
	}

	// All three tiers must serve byte-identical exports.
	enc := func(st *swarm.Stats) []byte {
		var buf bytes.Buffer
		rs := exp.ExportSet([]exp.Point{cfg.Point}, cfg.Scale, cfg.Seed,
			func(exp.Point) *swarm.Stats { return st })
		if err := rs.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b, c := enc(st1), enc(st2), enc(st3)
	if !bytes.Equal(a, b) || !bytes.Equal(b, c) {
		t.Error("compute/store/cache tiers export different bytes")
	}
}

// TestExperimentEndpointMatchesGolden runs the paper's fig2 through
// POST /v1/experiments/fig2 and requires the same golden bytes: figures as
// a service go through the exact same harness as the CLI.
func TestExperimentEndpointMatchesGolden(t *testing.T) {
	svc, ts := startServer(t, Options{Workers: 4, Validate: true})
	resp, err := http.Post(ts.URL+"/v1/experiments/fig2", "application/json",
		strings.NewReader(`{"scale":"tiny","cores":[1,4]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("experiment status %d: %s", resp.StatusCode, b)
	}
	if !bytes.Equal(b, fig2Golden(t)) {
		t.Error("experiment endpoint export differs from the golden file")
	}
	if got := svc.Counters().ExperimentRuns["fig2"]; got != 1 {
		t.Errorf("experiment counter = %d, want 1", got)
	}

	// The figure's points are now cached service-wide: a direct run of one
	// of them must be a cache hit.
	if _, src, err := svc.Stats(context.Background(), Config{
		Scale: bench.Tiny, Seed: 7,
		Point: exp.Point{Name: "des", Kind: swarm.LBHints, Cores: 4},
	}); err != nil || src != SourceCache {
		t.Errorf("experiment results not shared with the service cache: src=%v err=%v", src, err)
	}

	// Unknown experiment ids 404.
	resp, err = http.Post(ts.URL+"/v1/experiments/fig9", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("fig9 status %d, want 404", resp.StatusCode)
	}

	// Text format returns the human tables.
	resp, err = http.Post(ts.URL+"/v1/experiments/fig2", "application/json",
		strings.NewReader(`{"scale":"tiny","cores":[1,4],"format":"text"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "des speedup over 1-core") {
		t.Errorf("text format lacks the fig2 table:\n%s", b)
	}
}
