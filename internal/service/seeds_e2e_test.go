package service

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"swarmhints/internal/bench"
	"swarmhints/internal/exp"
	"swarmhints/internal/store"
	"swarmhints/swarm"
)

// seedsReference is the sequential single-engine oracle for a seeds run:
// the fan-out executed with one shard on one worker, exported exactly as
// handleRun exports it.
func seedsReference(t *testing.T, p exp.Point, seed int64, seeds int) []byte {
	t.Helper()
	sr := exp.SeedRun{
		Point: p, Scale: bench.Tiny, BaseSeed: seed,
		Seeds: seeds, Shards: 1, Parallel: 1, Validate: true,
	}
	merged, _, err := sr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rs := exp.ExportSet([]exp.Point{p}, bench.Tiny, seed,
		func(exp.Point) *swarm.Stats { return merged })
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postRun(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestRunSeedsEndpoint: a seeds > 1 run request answers with the merged
// v2 record, byte-identical to the sequential single-engine fan-out, and
// writes every seed replica through to the store under its ordinary
// per-seed key — so a repeat with more seeds only executes the new ones.
func TestRunSeedsEndpoint(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startServer(t, Options{Workers: 4, Validate: true, Store: st})
	p := exp.Point{Name: "des", Kind: swarm.Hints, Cores: 4}

	resp, got := postRun(t, ts.URL, `{"bench":"des","sched":"hints","cores":4,"scale":"tiny","seeds":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seeds run status %d: %s", resp.StatusCode, got)
	}
	if src := resp.Header.Get("X-Swarmd-Source"); src != string(SourceMerged) {
		t.Errorf("X-Swarmd-Source = %q, want %q", src, SourceMerged)
	}
	if !bytes.Contains(got, []byte("swarmhints.metrics.v2")) || !bytes.Contains(got, []byte(`"seedSummary"`)) {
		t.Fatalf("seeds response lacks v2 stamp or seedSummary:\n%s", got)
	}
	if want := seedsReference(t, p, 7, 4); !bytes.Equal(got, want) {
		t.Error("seeds response differs from the sequential single-engine reference")
	}

	// Every seed replica is on disk under its ordinary per-seed key.
	for _, seed := range exp.ReplicaSeeds(7, 4) {
		if _, ok := st.GetStats(exp.ConfigKey(bench.Tiny, seed, p)); !ok {
			t.Errorf("seed %d not written through to the store", seed)
		}
	}

	// Re-asking with more seeds re-merges incrementally: the 4 cached
	// replicas come from the store, only the 2 new ones execute.
	wBefore := st.Counters().Writes
	resp, got = postRun(t, ts.URL, `{"bench":"des","sched":"hints","cores":4,"scale":"tiny","seeds":6}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seeds=6 run status %d: %s", resp.StatusCode, got)
	}
	if want := seedsReference(t, p, 7, 6); !bytes.Equal(got, want) {
		t.Error("seeds=6 response differs from the sequential reference")
	}
	if grew := st.Counters().Writes - wBefore; grew != 2 {
		t.Errorf("seeds=6 after seeds=4 wrote %d records, want exactly the 2 new seeds", grew)
	}

	// seeds <= 1 stays a plain v1 single-seed run.
	resp, got = postRun(t, ts.URL, `{"bench":"des","sched":"hints","cores":4,"scale":"tiny","seeds":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seeds=1 run status %d: %s", resp.StatusCode, got)
	}
	if bytes.Contains(got, []byte(`"seedSummary"`)) || !bytes.Contains(got, []byte("swarmhints.metrics.v1")) {
		t.Error("seeds=1 response must stay schema v1 without a seedSummary block")
	}

	// Out-of-range fan-outs are rejected up front.
	resp, got = postRun(t, ts.URL, `{"bench":"des","sched":"hints","cores":4,"scale":"tiny","seeds":99999}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("seeds above MaxSeeds: status %d (%s), want 400", resp.StatusCode, got)
	}
}
