// Package service is the simulation-sweep serving layer behind cmd/swarmd:
// a long-running HTTP/JSON front end over the experiment harness that
// shards incoming work across a bounded worker fleet (internal/runner),
// coalesces duplicate in-flight configurations so each simulation executes
// at most once (singleflight), and answers repeats from a size-bounded LRU
// result cache keyed by the canonical configuration key internal/exp uses.
//
// Determinism contract: a simulation configuration fully determines its
// result, so the service can cache and coalesce freely — every response is
// byte-identical to what cmd/experiments -format json emits for the same
// configuration, no matter the worker count, cache state, or request
// interleaving. Responses are assembled through exp.ExportSet, the same
// encoder the CLIs use, which makes that identity hold by construction.
package service

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"swarmhints/internal/bench"
	"swarmhints/internal/exp"
	"swarmhints/internal/fault"
	"swarmhints/internal/metrics"
	"swarmhints/internal/obs"
	"swarmhints/internal/store"
	"swarmhints/swarm"
)

// Stage labels of the swarmd_stage_duration_seconds histogram family: the
// request-path phases every /v1 work request decomposes into. parse is
// body decode + validation, cache is the LRU probe, store is the
// persistent-tier probe, coalesce is time spent attached to another
// request's in-flight run, execute is the simulation itself (including
// the wait for a worker slot).
const (
	stageParse    = "parse"
	stageCache    = "cache"
	stageStore    = "store"
	stageCoalesce = "coalesce"
	stageExecute  = "execute"
)

// Config is one fully specified simulation configuration: a harness point
// plus the workload scale and seed the experiment harness fixes per run.
type Config struct {
	Scale bench.Scale
	Seed  int64
	Point exp.Point
}

// Key is the canonical cache key: the (scale, seed) harness prefix followed
// by the experiment harness's own configuration key. Every result tier —
// the LRU, the in-flight coalescing map, and the persistent store — keys on
// exactly these bytes.
func (c Config) Key() string {
	return exp.ConfigKey(c.Scale, c.Seed, c.Point)
}

// Options configures a Service.
type Options struct {
	// Workers bounds how many simulations run concurrently across ALL
	// requests (0 = GOMAXPROCS). Requests beyond the bound queue.
	Workers int
	// CacheEntries bounds the LRU result cache (0 = 4096 entries).
	CacheEntries int
	// Validate checks every executed run against its serial reference
	// before caching or serving it.
	Validate bool
	// Store, when non-nil, adds a persistent tier between the LRU and the
	// worker fleet: lookups go memory → disk → coalesced compute, executed
	// results are written through, and a restarted (or sibling) swarmd on
	// the same directory answers repeats with zero engine runs.
	Store *store.Store
	// MaxPending bounds admission on the work-bearing endpoints (/v1/run,
	// /v1/sweep, /v1/experiments/{id}): a request arriving while MaxPending
	// are already in progress is shed with 429 overloaded instead of joining
	// an unbounded queue. 0 disables shedding (the worker semaphore still
	// bounds execution, but queues grow without limit).
	MaxPending int
	// FaultScope prefixes this instance's fault-site names ("r1" resolves
	// "r1.swarmd.run.slow"), so tests hosting several in-process replicas —
	// which all share fault.Default — can target one. Production leaves it
	// empty.
	FaultScope string
	// FaultAdmin mounts the test-only /v1/faults admin endpoint on the
	// service handler. Never enable it on a production-facing listener.
	FaultAdmin bool
}

// DefaultOptions returns the standard service configuration: GOMAXPROCS
// workers, a 4096-entry cache, and validation on.
func DefaultOptions() Options {
	return Options{Validate: true}
}

// Source says how a request's result was obtained.
type Source string

// Sources.
const (
	SourceCache     Source = "cache"     // answered from the LRU without any work
	SourceStore     Source = "store"     // answered from the persistent on-disk store
	SourceRun       Source = "run"       // this request executed the simulation
	SourceCoalesced Source = "coalesced" // attached to another request's in-flight run
	SourceMerged    Source = "merged"    // merged from a multi-seed fan-out
)

// flight is one in-progress simulation that duplicate requests attach to.
// It executes under its own context, derived from the service lifetime and
// canceled only when every interested request has gone away — so one
// caller's disconnect never fails the other callers coalesced onto it,
// while a flight nobody wants anymore stops consuming the fleet.
type flight struct {
	done   chan struct{} // closed when st/err are final
	refs   int           // interested requests; guarded by Service.mu
	cancel context.CancelFunc
	st     *swarm.Stats
	err    error
}

// Counters is a point-in-time snapshot of the service's operational
// counters. Hits+Store.Hits+Misses+Coalesced equals the number of Stats
// calls served; Misses counts the calls that led a new simulation attempt
// (a miss in every cache tier with no flight to join). Attempts that
// completed appear in RunsByBench — a miss whose caller disconnected while
// queued executes nothing, and a store-served request never reaches the
// engine at all.
type Counters struct {
	Hits      uint64
	Misses    uint64
	Coalesced uint64
	Queued    int64  // requests waiting for a worker slot right now
	InFlight  int64  // simulations executing right now
	Cached    int    // entries resident in the LRU
	Pending   int64  // admitted work-bearing requests in progress right now
	Shed      uint64 // requests rejected 429 at the admission bound

	RunsByBench    map[string]uint64 // completed simulations per benchmark
	ExperimentRuns map[string]uint64 // POST /v1/experiments/{id} invocations

	// Store holds the persistent tier's own counters (zero value when the
	// service runs without a store); Store.Hits is the store-served request
	// count in the Hits+Store.Hits+Misses+Coalesced identity.
	Store store.Counters
}

// Service is the shared state of a swarmd instance.
type Service struct {
	opt    Options
	ctx    context.Context // lifetime; canceled by Close
	cancel context.CancelFunc
	sem    chan struct{} // worker-fleet slots

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	queued    atomic.Int64
	inflight  atomic.Int64
	pending   atomic.Int64  // admitted work-bearing requests in progress
	shed      atomic.Uint64 // requests rejected at the admission bound

	// Fault-injection sites (internal/fault), resolved once at New under
	// opt.FaultScope. Disarmed — the production state — each costs one
	// atomic load where it is wired in.
	siteSlow     *fault.Site // swarmd.run.slow: delay before serving a run
	siteErr      *fault.Site // swarmd.run.err: fail a run with an injected 500
	siteStall    *fault.Site // swarmd.stream.stall: stall/kill a sweep mid-NDJSON
	siteOverload *fault.Site // swarmd.overload: force the admission bound shut

	// Request-stage latency histograms (internal/obs), resolved once like
	// the fault sites so observing stays allocation-free. stageVec renders
	// the family on /metrics.
	stageVec     *obs.HistVec
	histParse    *obs.Histogram
	histCache    *obs.Histogram
	histStore    *obs.Histogram
	histCoalesce *obs.Histogram
	histExecute  *obs.Histogram

	mu      sync.Mutex
	cache   *lru
	flights map[string]*flight
	runs    map[string]uint64 // per-bench completed simulation counts
	expRuns map[string]uint64 // per-experiment invocation counts
}

// New builds a Service.
func New(opt Options) *Service {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.CacheEntries <= 0 {
		opt.CacheEntries = 4096
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		opt:     opt,
		ctx:     ctx,
		cancel:  cancel,
		sem:     make(chan struct{}, opt.Workers),
		cache:   newLRU(opt.CacheEntries),
		flights: make(map[string]*flight),
		runs:    make(map[string]uint64),
		expRuns: make(map[string]uint64),

		siteSlow:     fault.Scoped(fault.Default, opt.FaultScope, "swarmd.run.slow"),
		siteErr:      fault.Scoped(fault.Default, opt.FaultScope, "swarmd.run.err"),
		siteStall:    fault.Scoped(fault.Default, opt.FaultScope, "swarmd.stream.stall"),
		siteOverload: fault.Scoped(fault.Default, opt.FaultScope, "swarmd.overload"),

		stageVec: obs.NewHistVec("swarmd_stage_duration_seconds",
			"Request-path stage latency.", "stage", nil,
			stageParse, stageCache, stageStore, stageCoalesce, stageExecute),
	}
	s.histParse = s.stageVec.With(stageParse)
	s.histCache = s.stageVec.With(stageCache)
	s.histStore = s.stageVec.With(stageStore)
	s.histCoalesce = s.stageVec.With(stageCoalesce)
	s.histExecute = s.stageVec.With(stageExecute)
	return s
}

// Context returns the service's lifetime context. HTTP servers should use
// it as their BaseContext so Close cancels every in-flight request.
func (s *Service) Context() context.Context { return s.ctx }

// Close cancels the service's lifetime context, aborting queued work. Safe
// to call more than once.
func (s *Service) Close() { s.cancel() }

// Workers returns the worker-fleet bound.
func (s *Service) Workers() int { return s.opt.Workers }

// attachLocked registers one interested request on a flight: the flight's
// context is canceled when the last attached request's own context dies.
// Callers must hold s.mu. It fails on a flight every caller has already
// abandoned (its cancellation is in progress) — the caller should wait for
// the flight to clear and retry rather than ride a dying run.
func (s *Service) attachLocked(f *flight, ctx context.Context, leader bool) (release func(), ok bool) {
	if !leader && f.refs == 0 {
		return nil, false
	}
	f.refs++
	drop := func() {
		s.mu.Lock()
		f.refs--
		dead := f.refs == 0
		s.mu.Unlock()
		if dead {
			f.cancel()
		}
	}
	stop := context.AfterFunc(ctx, drop)
	return func() {
		if stop() { // AfterFunc never ran: hand the reference back ourselves
			drop()
		}
	}, true
}

// Stats returns the statistics for one configuration: from the LRU cache
// when resident, by attaching to an identical in-flight run when one
// exists, from the persistent store when configured and warm, and by
// executing the simulation on the worker fleet otherwise. Exactly one of
// the four happens per call, and exactly one simulation executes no matter
// how many callers race on the same configuration — the store probe runs
// under the same in-flight coalescing as a compute, so racing callers share
// one disk read too.
func (s *Service) Stats(ctx context.Context, cfg Config) (*swarm.Stats, Source, error) {
	key := cfg.Key()
	for {
		ct := obs.StartTimer()
		s.mu.Lock()
		if st, ok := s.cache.get(key); ok {
			s.mu.Unlock()
			ct.Observe(s.histCache)
			s.hits.Add(1)
			return st, SourceCache, nil
		}
		f, ok := s.flights[key]
		if !ok {
			ct.Observe(s.histCache)
			break // become the leader below (still holding s.mu)
		}
		release, live := s.attachLocked(f, ctx, false)
		s.mu.Unlock()
		ct.Observe(s.histCache)
		if !live {
			// Every caller abandoned this flight and its cancellation is in
			// progress; wait for it to clear the map and start fresh.
			select {
			case <-f.done:
				continue
			case <-ctx.Done():
				return nil, SourceCoalesced, ctx.Err()
			}
		}
		s.coalesced.Add(1)
		defer release()
		wt := obs.StartTimer()
		select {
		case <-f.done:
			wt.Observe(s.histCoalesce)
			return f.st, SourceCoalesced, f.err
		case <-ctx.Done():
			wt.Observe(s.histCoalesce)
			return nil, SourceCoalesced, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	fctx, fcancel := context.WithCancel(s.ctx)
	f.cancel = fcancel
	// The flight context derives from the service lifetime (not the
	// request) so coalesced followers survive the leader's disconnect —
	// but it should still carry the leader's trace identity, so the
	// store-probe, execute, and runner spans land in the request's trace.
	fctx = obs.ContextWithSpan(fctx, obs.SpanFromContext(ctx))
	release, _ := s.attachLocked(f, ctx, true)
	defer release()
	s.flights[key] = f
	s.mu.Unlock()

	src := SourceRun
	if s.opt.Store != nil {
		st := obs.StartTimer()
		_, ssp := obs.StartSpan(fctx, "swarmd.store.probe")
		got, ok := s.opt.Store.GetStats(key)
		if ssp != nil {
			if ok {
				ssp.SetAttr("hit", "true")
			} else {
				ssp.SetAttr("hit", "false")
			}
			ssp.End()
		}
		st.Observe(s.histStore)
		if ok {
			f.st, src = got, SourceStore
		}
	}
	if src == SourceRun {
		s.misses.Add(1)
		et := obs.StartTimer()
		ectx, esp := obs.StartSpan(fctx, "swarmd.execute")
		esp.SetAttr("key", key)
		f.st, f.err = s.execute(ectx, cfg)
		esp.End()
		et.Observe(s.histExecute)
		if f.err == nil && s.opt.Store != nil {
			// Write-through, best effort: an unwritable store degrades to a
			// read tier (its write-error counter records the failures), it
			// never fails a request that already has its result.
			_ = s.opt.Store.PutStats(key, f.st)
		}
	}

	s.mu.Lock()
	delete(s.flights, key)
	if f.err == nil {
		s.cache.add(key, f.st)
		if src == SourceRun {
			s.runs[cfg.Point.Name]++
		}
	}
	s.mu.Unlock()
	close(f.done)
	fcancel() // flight finished; release its context resources
	return f.st, src, f.err
}

// RunSeeds answers one configuration as a merged multi-seed aggregate:
// the n seed replicas (workload seeds derived from cfg.Seed in replica
// order) fan out across the worker fleet through Stats — so each replica
// is cached, coalesced, and store-tiered under its own per-seed key — and
// are merged in fixed seed order, making the aggregate byte-identical at
// any worker count and incremental when more seeds are requested later.
func (s *Service) RunSeeds(ctx context.Context, cfg Config, n int) (*swarm.Stats, error) {
	sr := exp.SeedRun{
		Point:    cfg.Point,
		Scale:    cfg.Scale,
		BaseSeed: cfg.Seed,
		Seeds:    n,
		Parallel: s.opt.Workers,
		Exec: func(ctx context.Context, seed int64, p exp.Point) (*swarm.Stats, error) {
			st, _, err := s.Stats(ctx, Config{Scale: cfg.Scale, Seed: seed, Point: p})
			return st, err
		},
	}
	merged, _, err := sr.Run(ctx)
	return merged, err
}

// AcquireSlot blocks until a worker-fleet slot is free (or ctx dies) and
// returns its release. It is the one gate every simulation the service
// performs passes through — cacheable points via execute, bespoke
// experiment runs via exp.Options.Gate — so the -workers bound holds
// globally and the queue/in-flight gauges see all of them.
func (s *Service) AcquireSlot(ctx context.Context) (release func(), err error) {
	s.queued.Add(1)
	select {
	case s.sem <- struct{}{}:
		s.queued.Add(-1)
	case <-ctx.Done():
		s.queued.Add(-1)
		return nil, ctx.Err()
	}
	s.inflight.Add(1)
	return func() {
		s.inflight.Add(-1)
		<-s.sem
	}, nil
}

// execute runs one simulation on the bounded worker fleet under the
// flight's context. Waiting for a slot is interruptible; once a slot is
// held the run itself is not (a simulation is a pure function with no
// blocking points), so a flight abandoned by every caller frees its queue
// position immediately and its worker after at most one run.
func (s *Service) execute(ctx context.Context, cfg Config) (*swarm.Stats, error) {
	release, err := s.AcquireSlot(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return exp.RunPoint(cfg.Point, cfg.Scale, cfg.Seed, s.opt.Validate)
}

// Exec adapts the service's cached, coalesced, fleet-bounded execution path
// to the experiment harness's pluggable executor, binding the harness's
// (scale, seed). An exp.Runner built with this executor shares the
// service-wide cache and worker fleet.
func (s *Service) Exec(scale bench.Scale, seed int64) func(context.Context, exp.Point) (*swarm.Stats, error) {
	return func(ctx context.Context, p exp.Point) (*swarm.Stats, error) {
		st, _, err := s.Stats(ctx, Config{Scale: scale, Seed: seed, Point: p})
		return st, err
	}
}

// countExperiment records one experiment-endpoint invocation.
func (s *Service) countExperiment(id string) {
	s.mu.Lock()
	s.expRuns[id]++
	s.mu.Unlock()
}

// Counters snapshots the operational counters.
func (s *Service) Counters() Counters {
	s.mu.Lock()
	runs := make(map[string]uint64, len(s.runs))
	for k, v := range s.runs {
		runs[k] = v
	}
	expRuns := make(map[string]uint64, len(s.expRuns))
	for k, v := range s.expRuns {
		expRuns[k] = v
	}
	cached := s.cache.len()
	s.mu.Unlock()
	c := Counters{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Coalesced:      s.coalesced.Load(),
		Queued:         s.queued.Load(),
		InFlight:       s.inflight.Load(),
		Cached:         cached,
		Pending:        s.pending.Load(),
		Shed:           s.shed.Load(),
		RunsByBench:    runs,
		ExperimentRuns: expRuns,
	}
	if s.opt.Store != nil {
		c.Store = s.opt.Store.Counters()
	}
	return c
}

// Store returns the persistent result-store tier, or nil when the service
// runs memory-only.
func (s *Service) Store() *store.Store { return s.opt.Store }

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// PromMetrics renders the operational counters as Prometheus metric
// families for the /metrics endpoint. The store families appear only when
// the persistent tier is configured.
func (s *Service) PromMetrics() []metrics.PromMetric {
	c := s.Counters()
	fams := []metrics.PromMetric{
		metrics.PromSingle("swarmd_cache_hits_total", "Requests answered from the LRU result cache.", "counter", float64(c.Hits)),
		metrics.PromSingle("swarmd_cache_misses_total", "Cache misses: requests that led a new simulation attempt.", "counter", float64(c.Misses)),
		metrics.PromSingle("swarmd_coalesced_total", "Requests attached to an identical in-flight simulation.", "counter", float64(c.Coalesced)),
		metrics.PromSingle("swarmd_cache_entries", "Results resident in the LRU cache.", "gauge", float64(c.Cached)),
		metrics.PromSingle("swarmd_queue_depth", "Requests waiting for a worker-fleet slot.", "gauge", float64(c.Queued)),
		metrics.PromSingle("swarmd_inflight_runs", "Simulations executing right now.", "gauge", float64(c.InFlight)),
		metrics.PromSingle("swarmd_pending_requests", "Admitted work-bearing requests in progress.", "gauge", float64(c.Pending)),
		metrics.PromSingle("swarmd_shed_total", "Requests rejected 429 overloaded at the admission bound.", "counter", float64(c.Shed)),
		metrics.PromPerLabel("swarmd_runs_total", "Completed simulations by benchmark.", "bench", c.RunsByBench),
		metrics.PromPerLabel("swarmd_experiment_runs_total", "Experiment endpoint invocations by id.", "id", c.ExperimentRuns),
		s.stageVec.Prom(),
	}
	if s.opt.Store != nil {
		st := c.Store
		fams = append(fams,
			metrics.PromSingle("swarmd_store_hits_total", "Requests answered from the persistent result store.", "counter", float64(st.Hits)),
			metrics.PromSingle("swarmd_store_misses_total", "Persistent-store lookups that found no valid record.", "counter", float64(st.Misses)),
			metrics.PromSingle("swarmd_store_writes_total", "Results written through to the persistent store.", "counter", float64(st.Writes)),
			metrics.PromSingle("swarmd_store_corrupt_total", "Store records rejected as truncated or corrupt (served as misses).", "counter", float64(st.Corrupt)),
			metrics.PromSingle("swarmd_store_evictions_total", "Store records evicted by the size-cap GC.", "counter", float64(st.Evictions)),
			metrics.PromSingle("swarmd_store_write_errors_total", "Failed store write-throughs (store degraded to a read tier).", "counter", float64(st.WriteErrors)),
			metrics.PromSingle("swarmd_store_gc_errors_total", "Store eviction failures: records the GC pass skipped (size cap enforcement degraded).", "counter", float64(st.GCErrors)),
			metrics.PromSingle("swarmd_store_quarantined_total", "Corrupt store records quarantined to .bad files.", "counter", float64(st.Quarantined)),
			metrics.PromSingle("swarmd_store_degraded", "1 while the store is in degraded (read-only) mode.", "gauge", boolGauge(st.Degraded)),
			metrics.PromSingle("swarmd_store_degraded_trips_total", "Times consecutive write failures tripped the store into degraded mode.", "counter", float64(st.DegradeTrips)),
			metrics.PromSingle("swarmd_store_degraded_skips_total", "Write-throughs skipped while the store was degraded.", "counter", float64(st.DegradedSkips)),
			metrics.PromSingle("swarmd_store_bytes", "Resident record bytes in the persistent store.", "gauge", float64(st.Bytes)),
			metrics.PromSingle("swarmd_store_records", "Resident records in the persistent store.", "gauge", float64(st.Records)),
			store.PromOps(),
		)
	}
	return fams
}
