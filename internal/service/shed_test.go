// Load-shedding tests: the MaxPending admission bound, the injected
// overload site, and the shape of the 429 the shed produces. The shed
// must never touch healthz or metrics — an overloaded replica still has
// to answer the prober and export its counters.
package service

import (
	"bytes"
	"net/http"
	"sync"
	"testing"
	"time"

	"swarmhints/internal/fault"
	"swarmhints/swarm/api"
)

const tinyRunBody = `{"bench":"des","sched":"random","cores":1,"scale":"tiny"}`

// TestMaxPendingShedsExcessRequests: with the bound at 1 and one request
// parked inside the handler (via an injected slow site), a second request
// is rejected at admission with a retryable 429 — and once the first
// drains, admission reopens.
func TestMaxPendingShedsExcessRequests(t *testing.T) {
	defer fault.Default.Reset()
	svc, ts := startServer(t, Options{Workers: 2, Validate: true, MaxPending: 1})

	// The first request holds its admission slot for 300ms.
	fault.Default.Arm("swarmd.run.slow", fault.Plan{Every: 1, Times: 1, Latency: 300 * time.Millisecond})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if resp, b := postRun(t, ts.URL, tinyRunBody); resp.StatusCode != http.StatusOK {
			t.Errorf("slow-but-admitted request: %d %s", resp.StatusCode, b)
		}
	}()

	// Wait until it is visibly parked inside the handler, then overflow.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Counters().Pending == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never showed up in the pending gauge")
		}
		time.Sleep(time.Millisecond)
	}
	resp, b := postRun(t, ts.URL, tinyRunBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-bound request: %d %s, want 429", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	aerr := api.DecodeError(resp.StatusCode, bytes.TrimSpace(b))
	if aerr.Code != api.CodeOverloaded || !aerr.Retryable {
		t.Fatalf("shed envelope = %+v, want retryable %q", aerr, api.CodeOverloaded)
	}

	// The shed never blocks the cheap endpoints the fleet depends on.
	for _, path := range []string{"/healthz", "/metrics"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s during overload: %d, want 200", path, r.StatusCode)
		}
	}

	wg.Wait()
	if c := svc.Counters(); c.Shed != 1 {
		t.Errorf("Shed = %d, want 1", c.Shed)
	}
	// The slot drained: the next request is admitted.
	if resp, b := postRun(t, ts.URL, tinyRunBody); resp.StatusCode != http.StatusOK {
		t.Errorf("post-drain request: %d %s", resp.StatusCode, b)
	}
}

// TestInjectedOverloadSheds: the swarmd.overload site forces sheds
// regardless of the real admission pressure — the chaos lever for
// overload-burst scenarios — and each one counts.
func TestInjectedOverloadSheds(t *testing.T) {
	defer fault.Default.Reset()
	svc, ts := startServer(t, Options{Workers: 2, Validate: true})

	fault.Default.Arm("swarmd.overload", fault.Plan{Every: 1, Times: 2, Fail: true})
	for i := 0; i < 2; i++ {
		resp, b := postRun(t, ts.URL, tinyRunBody)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("injected overload %d: %d %s, want 429", i, resp.StatusCode, b)
		}
	}
	// Times cap exhausted: service recovers without intervention.
	if resp, b := postRun(t, ts.URL, tinyRunBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-burst request: %d %s", resp.StatusCode, b)
	}
	if c := svc.Counters(); c.Shed != 2 {
		t.Errorf("Shed = %d, want 2", c.Shed)
	}
}
