package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"

	"swarmhints/internal/bench"
	"swarmhints/internal/cliutil"
	"swarmhints/internal/exp"
	"swarmhints/internal/metrics"
	"swarmhints/internal/runner"
	"swarmhints/swarm"
)

// maxBodyBytes bounds request bodies; sweep grids are tiny JSON documents.
const maxBodyBytes = 1 << 20

// RunRequest is the body of POST /v1/run: one simulation configuration.
type RunRequest struct {
	Bench   string `json:"bench"`
	Sched   string `json:"sched"`
	Cores   int    `json:"cores"`
	Scale   string `json:"scale"` // tiny|small|full; default small
	Seed    *int64 `json:"seed"`  // default 7 (the harness default)
	Profile bool   `json:"profile"`
}

// SweepRequest is the body of POST /v1/sweep: a configuration grid
// (benches × scheds × cores), executed under one (scale, seed) harness.
type SweepRequest struct {
	Benches []string `json:"benches"`
	Scheds  []string `json:"scheds"`
	Cores   []int    `json:"cores"`
	Scale   string   `json:"scale"`
	Seed    *int64   `json:"seed"`
	Profile bool     `json:"profile"`
	// Format selects the response encoding: "ndjson" (default) streams one
	// record per line in canonical configuration order as results complete;
	// "json" and "csv" buffer the full result set and emit exactly the
	// bytes cmd/experiments -format json|csv would for the same grid.
	Format string `json:"format"`
}

// ExperimentRequest is the body of POST /v1/experiments/{id}.
type ExperimentRequest struct {
	Scale  string `json:"scale"`
	Seed   *int64 `json:"seed"`
	Cores  []int  `json:"cores"`  // core sweep override; default per scale
	Format string `json:"format"` // json (default) | csv | ndjson | text
}

// Handler returns the service's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	mux.HandleFunc("POST /v1/experiments/{id}", s.handleExperiment)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// decodeBody decodes a JSON request body into v, rejecting unknown fields
// so typos in configuration keys fail loudly instead of running defaults.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// checkCores rejects core counts the simulated machine cannot be built
// with: sim.Config.WithCores silently rounds up to the next 1-or-k²·c mesh,
// which would cache results under a mislabeled configuration key.
func checkCores(cores []int) error {
	for _, c := range cores {
		if c < 1 {
			return fmt.Errorf("cores must be >= 1, got %d", c)
		}
		if got := swarm.ScaledConfig().WithCores(c).Cores(); got != c {
			return fmt.Errorf("cores must be 1 or fill a square mesh (nearest is %d), got %d", got, c)
		}
	}
	return nil
}

// parseHarness resolves the shared (scale, seed) harness fields.
func parseHarness(scaleName string, seed *int64) (bench.Scale, int64, error) {
	if scaleName == "" {
		scaleName = "small"
	}
	scale, err := cliutil.ParseScale(scaleName)
	if err != nil {
		return 0, 0, err
	}
	s := int64(7)
	if seed != nil {
		s = *seed
	}
	return scale, s, nil
}

// parsePoint resolves one run request into a configuration.
func (req RunRequest) parse() (Config, error) {
	scale, seed, err := parseHarness(req.Scale, req.Seed)
	if err != nil {
		return Config{}, err
	}
	if _, ok := bench.Registry[req.Bench]; !ok {
		return Config{}, fmt.Errorf("unknown benchmark %q", req.Bench)
	}
	kind, err := cliutil.ParseSched(req.Sched)
	if err != nil {
		return Config{}, err
	}
	if err := checkCores([]int{req.Cores}); err != nil {
		return Config{}, err
	}
	return Config{Scale: scale, Seed: seed, Point: exp.Point{
		Name: req.Bench, Kind: kind, Cores: req.Cores, Profile: req.Profile,
	}}, nil
}

// parseGrid resolves a sweep request into its deduplicated, canonically
// ordered configuration points plus the harness fields.
func (req SweepRequest) parse() ([]exp.Point, bench.Scale, int64, error) {
	scale, seed, err := parseHarness(req.Scale, req.Seed)
	if err != nil {
		return nil, 0, 0, err
	}
	if len(req.Benches) == 0 || len(req.Scheds) == 0 || len(req.Cores) == 0 {
		return nil, 0, 0, errors.New("benches, scheds, and cores must each list at least one value")
	}
	for _, b := range req.Benches {
		if _, ok := bench.Registry[b]; !ok {
			return nil, 0, 0, fmt.Errorf("unknown benchmark %q", b)
		}
	}
	var kinds []swarm.SchedKind
	for _, sc := range req.Scheds {
		k, err := cliutil.ParseSched(sc)
		if err != nil {
			return nil, 0, 0, err
		}
		kinds = append(kinds, k)
	}
	if err := checkCores(req.Cores); err != nil {
		return nil, 0, 0, err
	}
	points := exp.DedupSorted(exp.Grid(req.Benches, kinds, req.Cores, req.Profile))
	return points, scale, seed, nil
}

// handleRun serves POST /v1/run: one configuration, answered from the
// cache when warm. The response is a single-record result set encoded
// exactly as the CLI export encodes it.
func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decodeBody(w, r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cfg, err := req.parse()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st, src, err := s.Stats(r.Context(), cfg)
	if err != nil {
		httpRunError(w, err)
		return
	}
	rs := exp.ExportSet([]exp.Point{cfg.Point}, cfg.Scale, cfg.Seed,
		func(exp.Point) *swarm.Stats { return st })
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Swarmd-Source", string(src))
	_, _ = w.Write(buf.Bytes())
}

// handleSweep serves POST /v1/sweep: the grid is sharded across the worker
// fleet and, for NDJSON, streamed in canonical configuration order — record
// i is written as soon as records 0..i have all completed, so output order
// is deterministic for any worker count even though completion order is not.
func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(w, r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	points, scale, seed, err := req.parse()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	format := req.Format
	if format == "" {
		format = "ndjson"
	}

	switch format {
	case "ndjson":
		s.streamSweep(w, r.Context(), points, scale, seed)
	case "json", "csv":
		stats, err := s.runAll(r.Context(), points, scale, seed)
		if err != nil {
			httpRunError(w, err)
			return
		}
		rs := exp.ExportSet(points, scale, seed, func(p exp.Point) *swarm.Stats { return stats[p.Key()] })
		writeResultSet(w, rs, format)
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (have ndjson, json, csv)", format), http.StatusBadRequest)
	}
}

// runAll executes every point through the cached/coalesced fleet path and
// returns the statistics keyed by configuration. The first failure cancels
// the rest of the grid — the response is an error either way, so finishing
// the remaining points would only burn fleet time.
func (s *Service) runAll(ctx context.Context, points []exp.Point, scale bench.Scale, seed int64) (map[string]*swarm.Stats, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make([]runner.Job, len(points))
	for i, p := range points {
		p := p
		jobs[i] = runner.Job{
			Name: p.Key(),
			Run: func(int64) (*swarm.Stats, error) {
				st, _, err := s.Stats(ctx, Config{Scale: scale, Seed: seed, Point: p})
				return st, err
			},
		}
	}
	results := runner.Sweep(ctx, jobs, runner.Options{
		Parallel: s.opt.Workers,
		Seed:     seed,
		OnResult: func(res runner.Result) {
			if res.Err != nil {
				cancel()
			}
		},
	})
	if err := runner.FirstErr(results); err != nil {
		// The cancellation fans out to every unfinished job; report the
		// failure that triggered it, not a ripple.
		for _, res := range results {
			if res.Err != nil && !errors.Is(res.Err, context.Canceled) {
				return nil, res.Err
			}
		}
		return nil, err
	}
	stats := make(map[string]*swarm.Stats, len(points))
	for i, res := range results {
		stats[points[i].Key()] = res.Stats
	}
	return stats, nil
}

// streamSweep emits the sweep as NDJSON: a header line carrying the schema
// and label fields, then one compact record per line in canonical
// configuration order. Reassembling the lines into a ResultSet and encoding
// it as indented JSON reproduces the buffered "json" response byte for byte.
func (s *Service) streamSweep(w http.ResponseWriter, ctx context.Context, points []exp.Point, scale bench.Scale, seed int64) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	header, err := ndjsonHeader(metrics.SchemaVersion, exp.ExportFields, len(points))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if _, err := w.Write(header); err != nil {
		return
	}
	flush := func() {}
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	flush()

	// The first failure cancels the rest of the grid: an NDJSON stream has
	// no way to signal an error retroactively, so it is truncated instead —
	// a complete response always has exactly 1+len(points) lines.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	next := 0 // next point index to emit
	lines := make(map[int][]byte, len(points))
	var streamErr error
	jobs := make([]runner.Job, len(points))
	for i, p := range points {
		p := p
		jobs[i] = runner.Job{
			Name: p.Key(),
			Run: func(int64) (*swarm.Stats, error) {
				st, _, err := s.Stats(ctx, Config{Scale: scale, Seed: seed, Point: p})
				return st, err
			},
		}
	}
	results := runner.Sweep(ctx, jobs, runner.Options{
		Parallel: s.opt.Workers,
		Seed:     seed,
		// OnResult runs serialized under the runner's lock: safe to write.
		OnResult: func(res runner.Result) {
			if streamErr != nil {
				return
			}
			if res.Err != nil {
				streamErr = res.Err
				cancel()
				return
			}
			p := points[res.Index]
			line, err := json.Marshal(metrics.Record{
				Labels:   exp.PointLabels(p, scale, seed),
				Snapshot: res.Stats.Snapshot(),
			})
			if err != nil {
				streamErr = err
				cancel()
				return
			}
			lines[res.Index] = append(line, '\n')
			for next < len(points) && lines[next] != nil {
				if _, err := w.Write(lines[next]); err != nil {
					streamErr = err
					cancel()
					return
				}
				delete(lines, next)
				next++
			}
			flush()
		},
	})
	if streamErr == nil {
		streamErr = runner.FirstErr(results)
	}
	if streamErr != nil {
		log.Printf("swarmd: sweep stream aborted: %v", streamErr)
	}
}

// handleExperimentList serves GET /v1/experiments: the paper's experiment
// registry, in paper order.
func (s *Service) handleExperimentList(w http.ResponseWriter, _ *http.Request) {
	type entry struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	list := make([]entry, 0, len(exp.Registry))
	for _, e := range exp.Registry {
		list = append(list, entry{e.ID, e.Title})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(list)
}

// handleExperiment serves POST /v1/experiments/{id}: regenerate one paper
// table or figure as a service. Simulation points execute through the
// shared cache and worker fleet, so repeated figures are answered mostly
// from cache. format "text" returns the human-readable tables; the
// machine-readable formats return the same export the CLI emits.
func (s *Service) handleExperiment(w http.ResponseWriter, r *http.Request) {
	e, err := exp.Find(r.PathValue("id"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	var req ExperimentRequest
	if err := decodeBody(w, r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	scale, seed, err := parseHarness(req.Scale, req.Seed)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	format := req.Format
	if format == "" {
		format = "json"
	}
	switch format {
	case "json", "csv", "ndjson", "text":
	default:
		// Reject up front: an experiment at full scale is minutes of work.
		http.Error(w, fmt.Sprintf("unknown format %q (have json, csv, ndjson, text)", format), http.StatusBadRequest)
		return
	}
	opt := exp.DefaultOptions(scale)
	opt.Seed = seed
	opt.Parallel = s.opt.Workers
	opt.Validate = s.opt.Validate
	opt.Exec = s.Exec(scale, seed)
	opt.Gate = s.AcquireSlot
	if len(req.Cores) > 0 {
		if err := checkCores(req.Cores); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		opt.Cores = req.Cores
	}
	runner := exp.NewRunner(opt)

	var tables bytes.Buffer
	var tableOut io.Writer = &tables
	if format != "text" {
		tableOut = io.Discard
	}
	if err := e.Run(r.Context(), runner, tableOut); err != nil {
		httpRunError(w, err)
		return
	}
	s.countExperiment(e.ID)
	if format == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write(tables.Bytes())
		return
	}
	writeResultSet(w, runner.Export(), format)
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = io.WriteString(w, "{\"status\":\"ok\"}\n")
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = metrics.WriteProm(w, s.PromMetrics())
}

// writeResultSet encodes a completed result set in the requested format.
func writeResultSet(w http.ResponseWriter, rs *metrics.ResultSet, format string) {
	var buf bytes.Buffer
	var contentType string
	var err error
	switch format {
	case "json":
		contentType = "application/json"
		err = rs.WriteJSON(&buf)
	case "csv":
		contentType = "text/csv"
		err = rs.WriteCSV(&buf)
	case "ndjson":
		contentType = "application/x-ndjson"
		err = writeNDJSON(&buf, rs)
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (have json, csv, ndjson)", format), http.StatusBadRequest)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", contentType)
	_, _ = w.Write(buf.Bytes())
}

// ndjsonHeader encodes the NDJSON framing's first line (newline included):
// the schema version, the label-field order every record line follows, and
// the number of record lines a complete response carries — a stream with
// fewer lines was truncated by a mid-grid failure, which a 200-then-stream
// response cannot signal any other way.
func ndjsonHeader(schema string, fields []string, points int) ([]byte, error) {
	header, err := json.Marshal(struct {
		Schema string   `json:"schema"`
		Fields []string `json:"fields"`
		Points int      `json:"points"`
	}{schema, fields, points})
	if err != nil {
		return nil, err
	}
	return append(header, '\n'), nil
}

// writeNDJSON encodes a result set in the sweep endpoint's NDJSON framing:
// header line, then one compact record per line.
func writeNDJSON(w io.Writer, rs *metrics.ResultSet) error {
	header, err := ndjsonHeader(rs.Schema, rs.Fields, len(rs.Records))
	if err != nil {
		return err
	}
	if _, err := w.Write(header); err != nil {
		return err
	}
	for _, rec := range rs.Records {
		line, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// httpRunError maps an execution failure to a status code: cancellations
// surface as 499-style client aborts, everything else is a 500.
func httpRunError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		code = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), code)
}
