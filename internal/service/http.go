package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"

	"swarmhints/internal/bench"
	"swarmhints/internal/cliutil"
	"swarmhints/internal/exp"
	"swarmhints/internal/fault"
	"swarmhints/internal/metrics"
	"swarmhints/internal/obs"
	"swarmhints/internal/runner"
	"swarmhints/swarm"
	"swarmhints/swarm/api"
)

// The handlers speak the typed wire contract in swarm/api: request bodies
// decode into api structs, every error response is the structured envelope
// {"error":{"code","message","retryable"}} written by api.WriteError (no
// plain-text http.Error bodies on /v1 endpoints), and NDJSON streams carry
// the api framing — header, records, completion trailer.

// Handler returns the service's HTTP API. The work-bearing endpoints pass
// through the admission bound (admit); health, metrics, and the registry
// listing never shed — an overloaded replica must still answer its prober.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.admit(s.handleRun))
	mux.HandleFunc("POST /v1/sweep", s.admit(s.handleSweep))
	mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	mux.HandleFunc("POST /v1/experiments/{id}", s.admit(s.handleExperiment))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	obs.Default.Mount(mux)
	if s.opt.FaultAdmin {
		mux.Handle("/v1/faults", fault.AdminHandler(fault.Default))
	}
	return mux
}

// traced continues the trace the gateway sent in the X-Swarm-Trace header
// (minting a fresh one for direct callers) and echoes the trace on the
// response. Callers must End the returned span.
func traced(w http.ResponseWriter, r *http.Request, name string) (context.Context, *obs.Span) {
	ctx, sp := obs.ContinueSpan(r.Context(), r.Header.Get(api.TraceHeader), name)
	if sp != nil {
		w.Header().Set(api.TraceHeader, sp.Header())
	}
	return ctx, sp
}

// admit is the bounded-admission gate in front of every work-bearing
// endpoint. A request beyond Options.MaxPending in-progress peers — or one
// the swarmd.overload fault site rejects — is shed immediately with the
// retryable 429 overloaded envelope (Retry-After: 1), so a burst degrades
// into fast, routable rejections instead of an unbounded queue. The worker
// semaphore still bounds execution; this bounds waiting.
func (s *Service) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		n := s.pending.Add(1)
		defer s.pending.Add(-1)
		if f, ok := s.siteOverload.Fire(); ok {
			_ = f.Sleep(r.Context())
			s.shed.Add(1)
			api.WriteError(w, api.Errorf(api.CodeOverloaded, "server overloaded (injected)"))
			return
		}
		if max := s.opt.MaxPending; max > 0 && n > int64(max) {
			s.shed.Add(1)
			api.WriteError(w, api.Errorf(api.CodeOverloaded,
				"server at admission bound (%d requests in progress)", max))
			return
		}
		h(w, r)
	}
}

// checkCores rejects core counts the simulated machine cannot be built
// with: sim.Config.WithCores silently rounds up to the next 1-or-k²·c mesh,
// which would cache results under a mislabeled configuration key.
func checkCores(cores []int) *api.Error {
	for _, c := range cores {
		if c < 1 {
			return api.Errorf(api.CodeBadCores, "cores must be >= 1, got %d", c)
		}
		if got := swarm.ScaledConfig().WithCores(c).Cores(); got != c {
			return api.Errorf(api.CodeBadCores, "cores must be 1 or fill a square mesh (nearest is %d), got %d", got, c)
		}
	}
	return nil
}

// parseHarness resolves the shared (scale, seed) harness fields.
func parseHarness(scaleName string, seed *int64) (bench.Scale, int64, *api.Error) {
	if scaleName == "" {
		scaleName = "small"
	}
	scale, err := cliutil.ParseScale(scaleName)
	if err != nil {
		return 0, 0, api.Errorf(api.CodeUnknownScale, "%v", err)
	}
	s := int64(7)
	if seed != nil {
		s = *seed
	}
	return scale, s, nil
}

// ParseRun resolves one run request into a fully specified configuration.
// Exported because the gateway (internal/gate) validates with exactly this
// logic, so a request it accepts is one every replica accepts.
func ParseRun(req api.RunRequest) (Config, *api.Error) {
	scale, seed, aerr := parseHarness(req.Scale, req.Seed)
	if aerr != nil {
		return Config{}, aerr
	}
	if _, ok := bench.Registry[req.Bench]; !ok {
		return Config{}, api.Errorf(api.CodeUnknownBench, "unknown benchmark %q", req.Bench)
	}
	kind, err := cliutil.ParseSched(req.Sched)
	if err != nil {
		return Config{}, api.Errorf(api.CodeUnknownSched, "%v", err)
	}
	if aerr := checkCores([]int{req.Cores}); aerr != nil {
		return Config{}, aerr
	}
	if req.Seeds < 0 || req.Seeds > api.MaxSeeds {
		return Config{}, api.Errorf(api.CodeBadRequest, "seeds must be in [0, %d], got %d", api.MaxSeeds, req.Seeds)
	}
	return Config{Scale: scale, Seed: seed, Point: exp.Point{
		Name: req.Bench, Kind: kind, Cores: req.Cores, Profile: req.Profile,
	}}, nil
}

// ParseSweep resolves a sweep request into its deduplicated, canonically
// ordered configuration points plus the harness fields. Exported for the
// gateway, which decomposes the grid point-by-point across a replica fleet
// and must enumerate exactly the points — in exactly the order — a single
// swarmd would.
func ParseSweep(req api.SweepRequest) ([]exp.Point, bench.Scale, int64, *api.Error) {
	scale, seed, aerr := parseHarness(req.Scale, req.Seed)
	if aerr != nil {
		return nil, 0, 0, aerr
	}
	if len(req.Benches) == 0 || len(req.Scheds) == 0 || len(req.Cores) == 0 {
		return nil, 0, 0, api.Errorf(api.CodeBadRequest, "benches, scheds, and cores must each list at least one value")
	}
	for _, b := range req.Benches {
		if _, ok := bench.Registry[b]; !ok {
			return nil, 0, 0, api.Errorf(api.CodeUnknownBench, "unknown benchmark %q", b)
		}
	}
	var kinds []swarm.SchedKind
	for _, sc := range req.Scheds {
		k, err := cliutil.ParseSched(sc)
		if err != nil {
			return nil, 0, 0, api.Errorf(api.CodeUnknownSched, "%v", err)
		}
		kinds = append(kinds, k)
	}
	if aerr := checkCores(req.Cores); aerr != nil {
		return nil, 0, 0, aerr
	}
	points := exp.DedupSorted(exp.Grid(req.Benches, kinds, req.Cores, req.Profile))
	return points, scale, seed, nil
}

// handleRun serves POST /v1/run: one configuration, answered from the
// cache when warm. The response is a single-record result set encoded
// exactly as the CLI export encodes it. seeds > 1 fans the configuration
// out across the worker fleet as seed replicas — each cached, coalesced,
// and store-tiered under its own per-seed key — and answers with the
// merged record.
func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	ctx, sp := traced(w, r, "swarmd.run")
	defer sp.End()
	pt := obs.StartTimer()
	var req api.RunRequest
	if aerr := api.DecodeRequest(w, r, &req); aerr != nil {
		pt.Observe(s.histParse)
		api.WriteError(w, aerr)
		return
	}
	cfg, aerr := ParseRun(req)
	pt.Observe(s.histParse)
	if aerr != nil {
		api.WriteError(w, aerr)
		return
	}
	sp.SetAttr("key", cfg.Key())
	if f, ok := s.siteSlow.Fire(); ok {
		if err := f.Sleep(ctx); err != nil {
			api.WriteError(w, runError(err))
			return
		}
	}
	if f, ok := s.siteErr.Fire(); ok && f.Err != nil {
		api.WriteError(w, runError(f.Err))
		return
	}
	var st *swarm.Stats
	var src Source
	var err error
	if req.Seeds > 1 {
		st, err = s.RunSeeds(ctx, cfg, req.Seeds)
		src = SourceMerged
	} else {
		st, src, err = s.Stats(ctx, cfg)
	}
	if err != nil {
		api.WriteError(w, runError(err))
		return
	}
	rs := exp.ExportSet([]exp.Point{cfg.Point}, cfg.Scale, cfg.Seed,
		func(exp.Point) *swarm.Stats { return st })
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		api.WriteError(w, api.Errorf(api.CodeInternal, "%v", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Swarmd-Source", string(src))
	sp.SetAttr("source", string(src))
	_, _ = w.Write(buf.Bytes())
}

// handleSweep serves POST /v1/sweep: the grid is sharded across the worker
// fleet and, for NDJSON, streamed in canonical configuration order — record
// i is written as soon as records 0..i have all completed, so output order
// is deterministic for any worker count even though completion order is not.
func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	ctx, sp := traced(w, r, "swarmd.sweep")
	defer sp.End()
	pt := obs.StartTimer()
	var req api.SweepRequest
	if aerr := api.DecodeRequest(w, r, &req); aerr != nil {
		pt.Observe(s.histParse)
		api.WriteError(w, aerr)
		return
	}
	points, scale, seed, aerr := ParseSweep(req)
	pt.Observe(s.histParse)
	if aerr != nil {
		api.WriteError(w, aerr)
		return
	}
	sp.SetAttrInt("points", int64(len(points)))
	format := req.Format
	if format == "" {
		format = "ndjson"
	}

	switch format {
	case "ndjson":
		s.streamSweep(w, ctx, points, scale, seed)
	case "json", "csv":
		stats, err := s.runAll(ctx, points, scale, seed)
		if err != nil {
			api.WriteError(w, runError(err))
			return
		}
		rs := exp.ExportSet(points, scale, seed, func(p exp.Point) *swarm.Stats { return stats[p.Key()] })
		writeResultSet(w, rs, format, api.SweepFormats)
	default:
		api.WriteError(w, api.UnknownFormat(format, api.SweepFormats))
	}
}

// runAll executes every point through the cached/coalesced fleet path and
// returns the statistics keyed by configuration. The first failure cancels
// the rest of the grid — the response is an error either way, so finishing
// the remaining points would only burn fleet time.
func (s *Service) runAll(ctx context.Context, points []exp.Point, scale bench.Scale, seed int64) (map[string]*swarm.Stats, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make([]runner.Job, len(points))
	for i, p := range points {
		p := p
		jobs[i] = runner.Job{
			Name: p.Key(),
			Run: func(int64) (*swarm.Stats, error) {
				st, _, err := s.Stats(ctx, Config{Scale: scale, Seed: seed, Point: p})
				return st, err
			},
		}
	}
	results := runner.Sweep(ctx, jobs, runner.Options{
		Parallel: s.opt.Workers,
		Seed:     seed,
		OnResult: func(res runner.Result) {
			if res.Err != nil {
				cancel()
			}
		},
	})
	if err := runner.FirstErr(results); err != nil {
		// The cancellation fans out to every unfinished job; report the
		// failure that triggered it, not a ripple.
		for _, res := range results {
			if res.Err != nil && !errors.Is(res.Err, context.Canceled) {
				return nil, res.Err
			}
		}
		return nil, err
	}
	stats := make(map[string]*swarm.Stats, len(points))
	for i, res := range results {
		stats[points[i].Key()] = res.Stats
	}
	return stats, nil
}

// streamSweep emits the sweep as NDJSON in the api framing: a header line
// carrying the schema and label fields, one compact record per line in
// canonical configuration order, and — only when every point streamed —
// the completion trailer. Reassembling the record lines into a ResultSet
// and encoding it as indented JSON reproduces the buffered "json" response
// byte for byte.
func (s *Service) streamSweep(w http.ResponseWriter, ctx context.Context, points []exp.Point, scale bench.Scale, seed int64) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	header, err := api.EncodeHeader(api.StreamHeader{
		Schema: metrics.SchemaVersion, Fields: exp.ExportFields, Points: len(points),
	})
	if err != nil {
		api.WriteError(w, api.Errorf(api.CodeInternal, "%v", err))
		return
	}
	written := int64(0)
	if n, err := w.Write(header); err != nil {
		return
	} else {
		written += int64(n)
	}
	flush := func() {}
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	flush()

	// The first failure cancels the rest of the grid: an NDJSON stream has
	// no way to signal an error retroactively, so it is truncated instead —
	// a complete response always ends with the trailer line.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	next := 0 // next point index to emit
	lines := make(map[int][]byte, len(points))
	var streamErr error
	jobs := make([]runner.Job, len(points))
	for i, p := range points {
		p := p
		jobs[i] = runner.Job{
			Name: p.Key(),
			Run: func(int64) (*swarm.Stats, error) {
				st, _, err := s.Stats(ctx, Config{Scale: scale, Seed: seed, Point: p})
				return st, err
			},
		}
	}
	results := runner.Sweep(ctx, jobs, runner.Options{
		Parallel: s.opt.Workers,
		Seed:     seed,
		// OnResult runs serialized under the runner's lock: safe to write.
		OnResult: func(res runner.Result) {
			if streamErr != nil {
				return
			}
			if res.Err != nil {
				streamErr = res.Err
				cancel()
				return
			}
			p := points[res.Index]
			line, err := api.EncodeRecord(metrics.Record{
				Labels:   exp.PointLabels(p, scale, seed),
				Snapshot: res.Stats.Snapshot(),
			})
			if err != nil {
				streamErr = err
				cancel()
				return
			}
			lines[res.Index] = line
			for next < len(points) && lines[next] != nil {
				// Chaos hook: a fired stall site freezes the stream mid-line
				// (Latency) or kills it without the trailer (Fail) — the
				// truncation clients must detect and the gateway must absorb.
				if f, ok := s.siteStall.Fire(); ok {
					if err := f.Sleep(ctx); err != nil {
						streamErr = err
						cancel()
						return
					}
					if f.Err != nil {
						streamErr = f.Err
						cancel()
						return
					}
				}
				n, err := w.Write(lines[next])
				written += int64(n)
				if err != nil {
					streamErr = err
					cancel()
					return
				}
				delete(lines, next)
				next++
			}
			flush()
		},
	})
	if streamErr == nil {
		streamErr = runner.FirstErr(results)
	}
	if streamErr != nil {
		slog.Error("sweep stream aborted",
			"component", "swarmd",
			"trace", obs.Trace(ctx),
			"point", next,
			"points", len(points),
			"bytes", written,
			"err", streamErr)
		return
	}
	if trailer, err := api.EncodeTrailer(len(points)); err == nil {
		_, _ = w.Write(trailer)
		flush()
	}
}

// handleExperimentList serves GET /v1/experiments: the paper's experiment
// registry, in paper order.
func (s *Service) handleExperimentList(w http.ResponseWriter, _ *http.Request) {
	list := make([]api.ExperimentInfo, 0, len(exp.Registry))
	for _, e := range exp.Registry {
		list = append(list, api.ExperimentInfo{ID: e.ID, Title: e.Title})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(list)
}

// handleExperiment serves POST /v1/experiments/{id}: regenerate one paper
// table or figure as a service. Simulation points execute through the
// shared cache and worker fleet, so repeated figures are answered mostly
// from cache. format "text" returns the human-readable tables; the
// machine-readable formats return the same export the CLI emits.
func (s *Service) handleExperiment(w http.ResponseWriter, r *http.Request) {
	ctx, sp := traced(w, r, "swarmd.experiment")
	defer sp.End()
	pt := obs.StartTimer()
	e, err := exp.Find(r.PathValue("id"))
	if err != nil {
		pt.Observe(s.histParse)
		api.WriteError(w, api.Errorf(api.CodeUnknownExperiment, "%v", err))
		return
	}
	sp.SetAttr("experiment", e.ID)
	var req api.ExperimentRequest
	if aerr := api.DecodeRequest(w, r, &req); aerr != nil {
		pt.Observe(s.histParse)
		api.WriteError(w, aerr)
		return
	}
	scale, seed, aerr := parseHarness(req.Scale, req.Seed)
	pt.Observe(s.histParse)
	if aerr != nil {
		api.WriteError(w, aerr)
		return
	}
	format := req.Format
	if format == "" {
		format = "json"
	}
	switch format {
	case "json", "csv", "ndjson", "text":
	default:
		// Reject up front: an experiment at full scale is minutes of work.
		api.WriteError(w, api.UnknownFormat(format, api.ExperimentFormats))
		return
	}
	opt := exp.DefaultOptions(scale)
	opt.Seed = seed
	opt.Parallel = s.opt.Workers
	opt.Validate = s.opt.Validate
	opt.Exec = s.Exec(scale, seed)
	opt.Gate = s.AcquireSlot
	if len(req.Cores) > 0 {
		if aerr := checkCores(req.Cores); aerr != nil {
			api.WriteError(w, aerr)
			return
		}
		opt.Cores = req.Cores
	}
	runner := exp.NewRunner(opt)

	var tables bytes.Buffer
	var tableOut io.Writer = &tables
	if format != "text" {
		tableOut = io.Discard
	}
	if err := e.Run(ctx, runner, tableOut); err != nil {
		api.WriteError(w, runError(err))
		return
	}
	s.countExperiment(e.ID)
	if format == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write(tables.Bytes())
		return
	}
	writeResultSet(w, runner.Export(), format, api.ExperimentFormats)
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = io.WriteString(w, "{\"status\":\"ok\"}\n")
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = metrics.WriteProm(w, s.PromMetrics())
}

// writeResultSet encodes a completed result set in the requested format.
// have is the calling endpoint's supported-format list, so an unsupported
// format is rejected with the formats that endpoint actually offers.
func writeResultSet(w http.ResponseWriter, rs *metrics.ResultSet, format string, have []string) {
	var buf bytes.Buffer
	var contentType string
	var err error
	switch format {
	case "json":
		contentType = "application/json"
		err = rs.WriteJSON(&buf)
	case "csv":
		contentType = "text/csv"
		err = rs.WriteCSV(&buf)
	case "ndjson":
		contentType = "application/x-ndjson"
		err = writeNDJSON(&buf, rs)
	default:
		api.WriteError(w, api.UnknownFormat(format, have))
		return
	}
	if err != nil {
		api.WriteError(w, api.Errorf(api.CodeInternal, "%v", err))
		return
	}
	w.Header().Set("Content-Type", contentType)
	_, _ = w.Write(buf.Bytes())
}

// writeNDJSON encodes a completed result set in the api NDJSON framing:
// header line, one compact record per line, completion trailer.
func writeNDJSON(w io.Writer, rs *metrics.ResultSet) error {
	header, err := api.EncodeHeader(api.StreamHeader{
		Schema: rs.Schema, Fields: rs.Fields, Points: len(rs.Records),
	})
	if err != nil {
		return err
	}
	if _, err := w.Write(header); err != nil {
		return err
	}
	for _, rec := range rs.Records {
		line, err := api.EncodeRecord(rec)
		if err != nil {
			return err
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	trailer, err := api.EncodeTrailer(len(rs.Records))
	if err != nil {
		return err
	}
	_, err = w.Write(trailer)
	return err
}

// runError maps an execution failure to its wire error: cancellations and
// deadline hits mean this instance is draining or gave up — retryable
// against another replica — while everything else is a deterministic
// failure a retry would reproduce. Injected faults are the exception to
// "internal is final": the failure is a property of this instance's
// injection plan, not the configuration, so they stay retryable and the
// gateway routes around them.
func runError(err error) *api.Error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return api.Errorf(api.CodeShuttingDown, "%v", err)
	}
	e := api.Errorf(api.CodeInternal, "%v", err)
	if errors.Is(err, fault.ErrInjected) {
		e.Retryable = true
	}
	return e
}
