package service

import (
	"container/list"

	"swarmhints/swarm"
)

// lru is a size-bounded least-recently-used map from canonical
// configuration keys to completed simulation results. It is not
// goroutine-safe: the Service serializes access under its mutex.
type lru struct {
	capacity int
	order    *list.List // front = most recently used; values are *lruEntry
	entries  map[string]*list.Element
}

// lruEntry is one cached result; key is kept for map cleanup on eviction.
type lruEntry struct {
	key string
	st  *swarm.Stats
}

func newLRU(capacity int) *lru {
	if capacity < 1 {
		capacity = 1
	}
	return &lru{capacity: capacity, order: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached result for key and marks it most recently used.
func (c *lru) get(key string) (*swarm.Stats, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).st, true
}

// add inserts (or refreshes) a result, evicting the least recently used
// entry when the cache is full.
func (c *lru) add(key string, st *swarm.Stats) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*lruEntry).st = st
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, st: st})
}

// len returns the number of cached entries.
func (c *lru) len() int { return c.order.Len() }
