package bench

import (
	"fmt"

	"swarmhints/internal/workload"
	"swarmhints/swarm"
)

// simGraph lays a CSR graph out in simulated memory: a per-vertex data word
// (distance, g-score, or color), the CSR offsets, packed adjacency words
// (dst<<32 | weight), and packed coordinates for geometric graphs. Task
// bodies walk these through Ctx.Read, so neighbor-list traversal costs real
// simulated memory accesses, as in Listing 2.
type simGraph struct {
	g     *workload.Graph
	data  uint64 // N records of vertexStride words each
	off   uint64 // N+1 words
	adj   uint64 // M words
	coord uint64 // N words (x<<32|y), 0 if no coordinates
}

// vertexStride spaces per-vertex records one cache line apart. Real vertex
// records carry several fields (distance, flags, parent, lock word…); at
// our scaled-down graph sizes one-line records also keep the number of
// distinct active hints comfortably above the tile count, matching the
// regime of the paper's multi-million-vertex inputs (DESIGN.md Sec. 5).
const vertexStride = 8

func layoutGraph(p *swarm.Program, g *workload.Graph, init uint64) *simGraph {
	sg := &simGraph{
		g:    g,
		data: p.Mem.AllocWords(uint64(g.N) * vertexStride),
		off:  p.Mem.AllocWords(uint64(g.N + 1)),
		adj:  p.Mem.AllocWords(uint64(len(g.Dst))),
	}
	for v := 0; v < g.N; v++ {
		p.Mem.StoreRaw(sg.data+uint64(v)*vertexStride*8, init)
	}
	for v := 0; v <= g.N; v++ {
		p.Mem.StoreRaw(sg.off+uint64(v)*8, uint64(g.Off[v]))
	}
	for i, d := range g.Dst {
		p.Mem.StoreRaw(sg.adj+uint64(i)*8, uint64(d)<<32|uint64(g.W[i]))
	}
	if g.X != nil {
		sg.coord = p.Mem.AllocWords(uint64(g.N))
		for v := 0; v < g.N; v++ {
			p.Mem.StoreRaw(sg.coord+uint64(v)*8, uint64(uint32(g.X[v]))<<32|uint64(uint32(g.Y[v])))
		}
	}
	return sg
}

func (sg *simGraph) dataAddr(v uint64) uint64 { return sg.data + v*vertexStride*8 }

// visitNeighbors reads the CSR range and adjacency words through the task
// context and calls fn(dst, weight) for each edge of v.
func (sg *simGraph) visitNeighbors(c *swarm.Ctx, v uint64, fn func(n uint64, w uint64)) {
	lo := c.Read(sg.off + v*8)
	hi := c.Read(sg.off + (v+1)*8)
	for i := lo; i < hi; i++ {
		packed := c.Read(sg.adj + i*8)
		fn(packed>>32, packed&0xffffffff)
	}
}

func graphForScale(name string, scale Scale, seed int64) *workload.Graph {
	switch name {
	case "bfs": // hugetric substitute
		switch scale {
		case Tiny:
			return workload.TriGrid(14, 14)
		case Small:
			return workload.TriGrid(40, 40)
		default:
			return workload.TriGrid(90, 90)
		}
	case "sssp", "astar": // road-map substitute
		switch scale {
		case Tiny:
			return workload.RoadMap(14, 14, seed)
		case Small:
			return workload.RoadMap(40, 40, seed)
		default:
			return workload.RoadMap(85, 85, seed)
		}
	case "color": // com-youtube substitute
		switch scale {
		case Tiny:
			return workload.PowerLaw(220, 2, seed)
		case Small:
			return workload.PowerLaw(1200, 3, seed)
		default:
			return workload.PowerLaw(5000, 3, seed)
		}
	case "mis": // social-graph MIS over the same power-law family
		switch scale {
		case Tiny:
			return workload.PowerLaw(260, 2, seed)
		case Small:
			return workload.PowerLaw(1400, 3, seed)
		default:
			return workload.PowerLaw(5600, 3, seed)
		}
	}
	panic("unknown graph benchmark " + name)
}

// --- serial references ---

// refBFS returns BFS distances from src (unset when unreachable).
func refBFS(g *workload.Graph, src int) []uint64 {
	dist := make([]uint64, g.N)
	for i := range dist {
		dist[i] = unset
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.Edges(v, func(n int, _ uint32) {
			if dist[n] == unset {
				dist[n] = dist[v] + 1
				queue = append(queue, n)
			}
		})
	}
	return dist
}

// refDijkstra returns shortest-path distances from src.
func refDijkstra(g *workload.Graph, src int) []uint64 {
	dist := make([]uint64, g.N)
	for i := range dist {
		dist[i] = unset
	}
	dist[src] = 0
	type item struct {
		d uint64
		v int
	}
	heap := []item{{0, src}}
	push := func(it item) {
		heap = append(heap, it)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].d <= heap[i].d {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() item {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r, s := 2*i+1, 2*i+2, i
			if l < len(heap) && heap[l].d < heap[s].d {
				s = l
			}
			if r < len(heap) && heap[r].d < heap[s].d {
				s = r
			}
			if s == i {
				break
			}
			heap[i], heap[s] = heap[s], heap[i]
			i = s
		}
		return top
	}
	for len(heap) > 0 {
		it := pop()
		if it.d != dist[it.v] {
			continue
		}
		g.Edges(it.v, func(n int, w uint32) {
			if nd := it.d + uint64(w); nd < dist[n] {
				dist[n] = nd
				push(item{nd, n})
			}
		})
	}
	return dist
}

func validateDistances(p *swarm.Program, sg *simGraph, want []uint64, what string) error {
	for v := 0; v < sg.g.N; v++ {
		if got := p.Mem.Load(sg.dataAddr(uint64(v))); got != want[v] {
			return fmt.Errorf("%s: vertex %d distance %d, want %d", what, v, got, want[v])
		}
	}
	return nil
}

// --- bfs ---

// BuildBFSCG is the coarse-grain breadth-first search of Table I: each task
// visits one vertex and sets the distances of its unvisited neighbors
// (multi-hint read-write, like Listing 2's structure).
func BuildBFSCG(scale Scale, seed int64) *Instance {
	g := graphForScale("bfs", scale, seed)
	p := swarm.NewProgram()
	sg := layoutGraph(p, g, unset)
	var fn swarm.FnID
	fn = p.Register("bfsVisit", func(c *swarm.Ctx) {
		v := c.Arg(0)
		if c.Read(sg.dataAddr(v)) != c.TS() {
			return // stale visit
		}
		sg.visitNeighbors(c, v, func(n, _ uint64) {
			if c.Read(sg.dataAddr(n)) == unset {
				c.Write(sg.dataAddr(n), c.TS()+1)
				c.Enqueue(fn, c.TS()+1, lineOf(sg.dataAddr(n)), n)
			}
		})
	})
	p.Mem.StoreRaw(sg.dataAddr(0), 0)
	p.EnqueueRoot(fn, 0, lineOf(sg.dataAddr(0)), 0)
	want := refBFS(g, 0)
	return &Instance{
		Name: "bfs", Prog: p, Ordered: true,
		HintPattern: "Cache line of vertex",
		Validate: func() error {
			return validateDistances(p, sg, want, "bfs")
		},
	}
}

// BuildBFSFG is the fine-grain bfs of Sec. V: each task touches only its
// own vertex's distance and enqueues one child per neighbor, making all
// read-write data single-hint (Listing 3's structure with unit weights).
func BuildBFSFG(scale Scale, seed int64) *Instance {
	g := graphForScale("bfs", scale, seed)
	p := swarm.NewProgram()
	sg := layoutGraph(p, g, unset)
	var fn swarm.FnID
	fn = p.Register("bfsVisitFG", func(c *swarm.Ctx) {
		v := c.Arg(0)
		if c.Read(sg.dataAddr(v)) == unset {
			c.Write(sg.dataAddr(v), c.TS())
			sg.visitNeighbors(c, v, func(n, _ uint64) {
				c.Enqueue(fn, c.TS()+1, lineOf(sg.dataAddr(n)), n)
			})
		}
	})
	p.EnqueueRoot(fn, 0, lineOf(sg.dataAddr(0)), 0)
	want := refBFS(g, 0)
	return &Instance{
		Name: "bfs-fg", Prog: p, Ordered: true,
		HintPattern: "Cache line of vertex",
		Validate: func() error {
			return validateDistances(p, sg, want, "bfs-fg")
		},
	}
}

// --- sssp ---

// BuildSSSPCG is Listing 2 verbatim: Dijkstra-ordered tasks that relax all
// neighbors of their vertex.
func BuildSSSPCG(scale Scale, seed int64) *Instance {
	g := graphForScale("sssp", scale, seed)
	p := swarm.NewProgram()
	sg := layoutGraph(p, g, unset)
	var fn swarm.FnID
	fn = p.Register("ssspTask", func(c *swarm.Ctx) {
		v := c.Arg(0)
		if c.TS() != c.Read(sg.dataAddr(v)) {
			return
		}
		sg.visitNeighbors(c, v, func(n, w uint64) {
			projected := c.TS() + w
			if projected < c.Read(sg.dataAddr(n)) {
				c.Write(sg.dataAddr(n), projected)
				c.Enqueue(fn, projected, lineOf(sg.dataAddr(n)), n)
			}
		})
	})
	p.Mem.StoreRaw(sg.dataAddr(0), 0)
	p.EnqueueRoot(fn, 0, lineOf(sg.dataAddr(0)), 0)
	want := refDijkstra(g, 0)
	return &Instance{
		Name: "sssp", Prog: p, Ordered: true,
		HintPattern: "Cache line of vertex",
		Validate: func() error {
			return validateDistances(p, sg, want, "sssp")
		},
	}
}

// BuildSSSPFG is Listing 3 verbatim: each task sets only its own vertex's
// distance on first visit and spawns one child per neighbor.
func BuildSSSPFG(scale Scale, seed int64) *Instance {
	g := graphForScale("sssp", scale, seed)
	p := swarm.NewProgram()
	sg := layoutGraph(p, g, unset)
	var fn swarm.FnID
	fn = p.Register("ssspTaskFG", func(c *swarm.Ctx) {
		v := c.Arg(0)
		if c.Read(sg.dataAddr(v)) == unset {
			c.Write(sg.dataAddr(v), c.TS())
			sg.visitNeighbors(c, v, func(n, w uint64) {
				c.Enqueue(fn, c.TS()+w, lineOf(sg.dataAddr(n)), n)
			})
		}
	})
	p.EnqueueRoot(fn, 0, lineOf(sg.dataAddr(0)), 0)
	want := refDijkstra(g, 0)
	return &Instance{
		Name: "sssp-fg", Prog: p, Ordered: true,
		HintPattern: "Cache line of vertex",
		Validate: func() error {
			return validateDistances(p, sg, want, "sssp-fg")
		},
	}
}

// --- astar ---

// manhattan is the admissible, consistent A* heuristic on the road grid
// (edge weights are ≥ 1 per unit of grid distance).
func manhattan(coord uint64, tx, ty int64) uint64 {
	x := int64(int32(coord >> 32))
	y := int64(int32(coord & 0xffffffff))
	dx, dy := x-tx, y-ty
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return uint64(dx + dy)
}

// BuildAstarCG runs A*-ordered shortest paths on the road map: task
// timestamps are f = g + h, so the earliest task is always the best
// frontier vertex; relaxations run to fixpoint, so final g-scores equal
// Dijkstra's distances (h only changes exploration order).
func BuildAstarCG(scale Scale, seed int64) *Instance {
	g := graphForScale("astar", scale, seed)
	p := swarm.NewProgram()
	sg := layoutGraph(p, g, unset)
	target := g.N - 1
	tx, ty := int64(g.X[target]), int64(g.Y[target])
	var fn swarm.FnID
	fn = p.Register("astarTask", func(c *swarm.Ctx) {
		v, gs := c.Arg(0), c.Arg(1)
		if gs != c.Read(sg.dataAddr(v)) {
			return
		}
		sg.visitNeighbors(c, v, func(n, w uint64) {
			gn := gs + w
			if gn < c.Read(sg.dataAddr(n)) {
				c.Write(sg.dataAddr(n), gn)
				h := manhattan(c.Read(sg.coord+n*8), tx, ty)
				c.Enqueue(fn, gn+h, lineOf(sg.dataAddr(n)), n, gn)
			}
		})
	})
	p.Mem.StoreRaw(sg.dataAddr(0), 0)
	h0 := manhattan(uint64(uint32(g.X[0]))<<32|uint64(uint32(g.Y[0])), tx, ty)
	p.EnqueueRoot(fn, h0, lineOf(sg.dataAddr(0)), 0, 0)
	want := refDijkstra(g, 0)
	return &Instance{
		Name: "astar", Prog: p, Ordered: true,
		HintPattern: "Cache line of vertex",
		Validate: func() error {
			return validateDistances(p, sg, want, "astar")
		},
	}
}

// BuildAstarFG is the fine-grain astar (Sec. V): first-visit-wins per
// vertex; heuristic consistency guarantees the first visit in timestamp
// order carries the optimal g.
func BuildAstarFG(scale Scale, seed int64) *Instance {
	g := graphForScale("astar", scale, seed)
	p := swarm.NewProgram()
	sg := layoutGraph(p, g, unset)
	target := g.N - 1
	tx, ty := int64(g.X[target]), int64(g.Y[target])
	var fn swarm.FnID
	fn = p.Register("astarTaskFG", func(c *swarm.Ctx) {
		v, gs := c.Arg(0), c.Arg(1)
		if c.Read(sg.dataAddr(v)) == unset {
			c.Write(sg.dataAddr(v), gs)
			sg.visitNeighbors(c, v, func(n, w uint64) {
				gn := gs + w
				h := manhattan(c.Read(sg.coord+n*8), tx, ty)
				c.Enqueue(fn, gn+h, lineOf(sg.dataAddr(n)), n, gn)
			})
		}
	})
	h0 := manhattan(uint64(uint32(g.X[0]))<<32|uint64(uint32(g.Y[0])), tx, ty)
	p.EnqueueRoot(fn, h0, lineOf(sg.dataAddr(0)), 0, 0)
	want := refDijkstra(g, 0)
	return &Instance{
		Name: "astar-fg", Prog: p, Ordered: true,
		HintPattern: "Cache line of vertex",
		Validate: func() error {
			return validateDistances(p, sg, want, "astar-fg")
		},
	}
}
