package bench

import (
	"fmt"

	"swarmhints/internal/workload"
	"swarmhints/swarm"
)

// silo models the in-memory OLTP database of Table I running a TPC-C-like
// NewOrder/Payment mix. Each transaction is a chain of tasks, each reading
// or updating one tuple; hints concatenate (table ID, primary key), which
// is known at task creation time even though the tuple's address would
// require an index traversal (Sec. III-C, "Abstract unique IDs").

// Table IDs for hint construction.
const (
	tblWarehouse uint64 = 1
	tblDistrict  uint64 = 2
	tblCustomer  uint64 = 3
	tblStock     uint64 = 4
	tblItem      uint64 = 5
	tblOrder     uint64 = 6
)

func siloHint(table, key uint64) uint64 { return table<<40 | key }

// maxOrderLines bounds the per-transaction order-line slots.
const maxOrderLines = 8

// tsPerTxn spaces transaction timestamps so every step of txn i precedes
// every step of txn i+1 (ordered speculation across transactions).
const tsPerTxn = 32

type siloDB struct {
	cfg       workload.TPCCConfig
	warehouse uint64 // W words: YTD
	district  uint64 // W*D*2 words: [nextOID, YTD]
	customer  uint64 // W*D*C words: balance
	stock     uint64 // W*I words: quantity
	item      uint64 // I words: price (read-only)
	orders    uint64 // nTxns*(1+maxOrderLines) words
}

func (db *siloDB) districtAddr(w, d uint64) uint64 {
	return db.district + (w*uint64(db.cfg.Districts)+d)*2*8
}
func (db *siloDB) customerAddr(w, d, c uint64) uint64 {
	return db.customer + ((w*uint64(db.cfg.Districts)+d)*uint64(db.cfg.Customers)+c)*8
}
func (db *siloDB) stockAddr(w, it uint64) uint64 {
	return db.stock + (w*uint64(db.cfg.Items)+it)*8
}
func (db *siloDB) orderAddr(txn uint64) uint64 {
	return db.orders + txn*(1+maxOrderLines)*8
}

func siloScaleParams(scale Scale) int {
	switch scale {
	case Tiny:
		return 120
	case Small:
		return 700
	default:
		return 3000
	}
}

// BuildSilo builds the database, the transaction mix, and the task chains.
func BuildSilo(scale Scale, seed int64) *Instance {
	cfg := workload.DefaultTPCC()
	nTxns := siloScaleParams(scale)
	txns := workload.TPCCTxns(cfg, nTxns, seed)

	p := swarm.NewProgram()
	db := &siloDB{
		cfg:       cfg,
		warehouse: p.Mem.AllocWords(uint64(cfg.Warehouses)),
		district:  p.Mem.AllocWords(uint64(cfg.Warehouses*cfg.Districts) * 2),
		customer:  p.Mem.AllocWords(uint64(cfg.Warehouses * cfg.Districts * cfg.Customers)),
		stock:     p.Mem.AllocWords(uint64(cfg.Warehouses * cfg.Items)),
		item:      p.Mem.AllocWords(uint64(cfg.Items)),
		orders:    p.Mem.AllocWords(uint64(nTxns) * (1 + maxOrderLines)),
	}
	// Initial state: stocks at 100, prices 1..I, balances 1000.
	for w := 0; w < cfg.Warehouses; w++ {
		for it := 0; it < cfg.Items; it++ {
			p.Mem.StoreRaw(db.stockAddr(uint64(w), uint64(it)), 100)
		}
	}
	for it := 0; it < cfg.Items; it++ {
		p.Mem.StoreRaw(db.item+uint64(it)*8, uint64(it%97)+1)
	}
	for i := 0; i < cfg.Warehouses*cfg.Districts*cfg.Customers; i++ {
		p.Mem.StoreRaw(db.customer+uint64(i)*8, 1000)
	}

	base := func(txn uint64) uint64 { return txn * tsPerTxn }

	// --- NewOrder chain: warehouse -> district -> (item -> stock)* -> order lines ---
	var districtFn, itemFn, stockFn, linesFn swarm.FnID
	linesFn = p.Register("noOrderLines", func(c *swarm.Ctx) {
		txn, oid, total := c.Arg(0), c.Arg(1), c.Arg(2)
		tx := &txns[txn]
		oa := db.orderAddr(txn)
		c.Write(oa, oid)
		for l, it := range tx.Items {
			c.Write(oa+uint64(l+1)*8, uint64(it)<<32|uint64(tx.Qty[l]))
		}
		c.Write(oa+maxOrderLines*8, total) // last slot: total amount
	})
	stockFn = p.Register("noStock", func(c *swarm.Ctx) {
		txn, line, oid, total, price := c.Arg(0), c.Arg(1), c.Arg(2), c.Arg(3), c.Arg(4)
		tx := &txns[txn]
		it, qty := uint64(tx.Items[line]), uint64(tx.Qty[line])
		sa := db.stockAddr(uint64(tx.Warehouse), it)
		q := c.Read(sa)
		nq := q - qty
		if int64(nq) < 10 {
			nq += 91 // TPC-C restock rule
		}
		c.Write(sa, nq)
		total += price * qty
		if int(line+1) < len(tx.Items) {
			nit := uint64(tx.Items[line+1])
			c.Enqueue(itemFn, base(txn)+4+2*(line+1), siloHint(tblItem, nit),
				txn, line+1, oid, total)
		} else {
			c.Enqueue(linesFn, base(txn)+4+2*uint64(len(tx.Items))+1,
				siloHint(tblOrder, txn), txn, oid, total)
		}
	})
	itemFn = p.Register("noItem", func(c *swarm.Ctx) {
		txn, line, oid, total := c.Arg(0), c.Arg(1), c.Arg(2), c.Arg(3)
		tx := &txns[txn]
		it := uint64(tx.Items[line])
		price := c.Read(db.item + it*8)
		c.Enqueue(stockFn, base(txn)+5+2*line,
			siloHint(tblStock, uint64(tx.Warehouse)*uint64(cfg.Items)+it),
			txn, line, oid, total, price)
	})
	// NewOrder begins at the district: it reads the warehouse tax tuple and
	// read-increments the district's next-order-id. Starting chains at the
	// district keeps the entry hint cardinality at W*D rather than W (the
	// warehouse tuple is read-only for NewOrder, so it needs no
	// serialization of its own).
	districtFn = p.Register("noDistrict", func(c *swarm.Ctx) {
		txn := c.Arg(0)
		tx := &txns[txn]
		_ = c.Read(db.warehouse + uint64(tx.Warehouse)*8) // warehouse tax read
		da := db.districtAddr(uint64(tx.Warehouse), uint64(tx.District))
		oid := c.Read(da)
		c.Write(da, oid+1)
		nit := uint64(tx.Items[0])
		c.Enqueue(itemFn, base(txn)+4, siloHint(tblItem, nit), txn, 0, oid, 0)
	})

	// --- Payment chain: warehouse -> district -> customer ---
	var payDistrictFn, payCustomerFn swarm.FnID
	payCustomerFn = p.Register("payCustomer", func(c *swarm.Ctx) {
		txn := c.Arg(0)
		tx := &txns[txn]
		ca := db.customerAddr(uint64(tx.Warehouse), uint64(tx.District), uint64(tx.Customer))
		c.Write(ca, uint64(int64(c.Read(ca))-tx.Amount))
	})
	payDistrictFn = p.Register("payDistrict", func(c *swarm.Ctx) {
		txn := c.Arg(0)
		tx := &txns[txn]
		da := db.districtAddr(uint64(tx.Warehouse), uint64(tx.District)) + 8 // YTD word
		c.Write(da, uint64(int64(c.Read(da))+tx.Amount))
		key := (uint64(tx.Warehouse)*uint64(cfg.Districts)+uint64(tx.District))*uint64(cfg.Customers) + uint64(tx.Customer)
		c.Enqueue(payCustomerFn, base(txn)+2, siloHint(tblCustomer, key), txn)
	})
	paymentFn := p.Register("payWarehouse", func(c *swarm.Ctx) {
		txn := c.Arg(0)
		tx := &txns[txn]
		wa := db.warehouse + uint64(tx.Warehouse)*8
		c.Write(wa, uint64(int64(c.Read(wa))+tx.Amount))
		c.Enqueue(payDistrictFn, base(txn)+1,
			siloHint(tblDistrict, uint64(tx.Warehouse)*uint64(cfg.Districts)+uint64(tx.District)), txn)
	})

	for i, tx := range txns {
		txn := uint64(i)
		switch tx.Kind {
		case workload.TxnNewOrder:
			p.EnqueueRoot(districtFn, base(txn),
				siloHint(tblDistrict, uint64(tx.Warehouse)*uint64(cfg.Districts)+uint64(tx.District)), txn)
		case workload.TxnPayment:
			p.EnqueueRoot(paymentFn, base(txn), siloHint(tblWarehouse, uint64(tx.Warehouse)), txn)
		}
	}

	ref := refSilo(cfg, txns)
	return &Instance{
		Name: "silo", Prog: p, Ordered: true,
		HintPattern: "(Table ID, primary key)",
		Validate: func() error {
			return ref.check(p, db, txns)
		},
	}
}

// refSilo executes the transactions serially in order with identical logic.
type siloRef struct {
	warehouse []int64
	district  [][2]uint64 // nextOID, YTD (YTD as int64 bits)
	customer  []int64
	stock     []uint64
	orders    [][]uint64
}

func refSilo(cfg workload.TPCCConfig, txns []workload.Txn) *siloRef {
	r := &siloRef{
		warehouse: make([]int64, cfg.Warehouses),
		district:  make([][2]uint64, cfg.Warehouses*cfg.Districts),
		customer:  make([]int64, cfg.Warehouses*cfg.Districts*cfg.Customers),
		stock:     make([]uint64, cfg.Warehouses*cfg.Items),
		orders:    make([][]uint64, len(txns)),
	}
	for i := range r.customer {
		r.customer[i] = 1000
	}
	for i := range r.stock {
		r.stock[i] = 100
	}
	price := func(it int32) uint64 { return uint64(it%97) + 1 }
	for i, tx := range txns {
		w, d := int(tx.Warehouse), int(tx.District)
		di := w*cfg.Districts + d
		switch tx.Kind {
		case workload.TxnNewOrder:
			oid := r.district[di][0]
			r.district[di][0]++
			var total uint64
			slot := make([]uint64, 1+maxOrderLines)
			slot[0] = oid
			for l, it := range tx.Items {
				si := w*cfg.Items + int(it)
				q := r.stock[si] - uint64(tx.Qty[l])
				if int64(q) < 10 {
					q += 91
				}
				r.stock[si] = q
				total += price(it) * uint64(tx.Qty[l])
				slot[l+1] = uint64(it)<<32 | uint64(tx.Qty[l])
			}
			slot[maxOrderLines] = total
			r.orders[i] = slot
		case workload.TxnPayment:
			r.warehouse[w] += tx.Amount
			r.district[di][1] = uint64(int64(r.district[di][1]) + tx.Amount)
			ci := di*cfg.Customers + int(tx.Customer)
			r.customer[ci] -= tx.Amount
		}
	}
	return r
}

func (r *siloRef) check(p *swarm.Program, db *siloDB, txns []workload.Txn) error {
	cfg := db.cfg
	for w := 0; w < cfg.Warehouses; w++ {
		if got := int64(p.Mem.Load(db.warehouse + uint64(w)*8)); got != r.warehouse[w] {
			return fmt.Errorf("silo: warehouse %d YTD %d, want %d", w, got, r.warehouse[w])
		}
	}
	for di := 0; di < cfg.Warehouses*cfg.Districts; di++ {
		a := db.district + uint64(di)*2*8
		if got := p.Mem.Load(a); got != r.district[di][0] {
			return fmt.Errorf("silo: district %d nextOID %d, want %d", di, got, r.district[di][0])
		}
		if got := p.Mem.Load(a + 8); got != r.district[di][1] {
			return fmt.Errorf("silo: district %d YTD %d, want %d", di, got, r.district[di][1])
		}
	}
	for ci := range r.customer {
		if got := int64(p.Mem.Load(db.customer + uint64(ci)*8)); got != r.customer[ci] {
			return fmt.Errorf("silo: customer %d balance %d, want %d", ci, got, r.customer[ci])
		}
	}
	for si := range r.stock {
		if got := p.Mem.Load(db.stock + uint64(si)*8); got != r.stock[si] {
			return fmt.Errorf("silo: stock %d qty %d, want %d", si, got, r.stock[si])
		}
	}
	for i := range txns {
		if r.orders[i] == nil {
			continue
		}
		oa := db.orderAddr(uint64(i))
		for j, want := range r.orders[i] {
			if got := p.Mem.Load(oa + uint64(j)*8); got != want {
				return fmt.Errorf("silo: order %d word %d = %d, want %d", i, j, got, want)
			}
		}
	}
	return nil
}
