package bench

import (
	"fmt"

	"swarmhints/internal/workload"
	"swarmhints/swarm"
)

// desState is the simulated-memory layout of the circuit: one word per gate
// input pin and one per gate output. Netlist structure (kinds, fanout,
// delays) is static and stays host-side, like program text.
type desState struct {
	circ *workload.Circuit
	in0  uint64
	in1  uint64
	out  uint64
}

func (s *desState) in(gate uint64, pin uint64) uint64 {
	if pin == 0 {
		return s.in0 + gate*8
	}
	return s.in1 + gate*8
}

func desScaleParams(scale Scale) (width, rows, toggles int) {
	switch scale {
	case Tiny:
		return 8, 2, 150
	case Small:
		return 32, 6, 700
	default:
		return 32, 32, 6000
	}
}

// BuildDES is the discrete-event digital-circuit simulator of Listing 1 on
// a carry-save-adder array (csaArray32 substitute). Each task simulates one
// input toggle at one gate: it reads the driving gate's output, updates the
// pin, re-evaluates the gate, and if the output changed enqueues toggle
// events for every fanout input at ts+delay. Hints are gate IDs (Table I).
func BuildDES(scale Scale, seed int64) *Instance {
	width, rows, toggles := desScaleParams(scale)
	circ := workload.CSAArray(width, rows)
	wf := workload.CSAWaveforms(circ, toggles, seed)

	p := swarm.NewProgram()
	st := &desState{
		circ: circ,
		in0:  p.Mem.AllocWords(uint64(circ.N())),
		in1:  p.Mem.AllocWords(uint64(circ.N())),
		out:  p.Mem.AllocWords(uint64(circ.N())),
	}

	// eval re-evaluates gate g after a pin update and propagates a changed
	// output to the fanout (shared by both task types).
	var toggleFn swarm.FnID
	eval := func(c *swarm.Ctx, g uint64) {
		a := c.Read(st.in(g, 0))
		b := c.Read(st.in(g, 1))
		newOut := circ.Kind[g].Eval(a, b)
		if newOut != c.Read(st.out+g*8) {
			c.Write(st.out+g*8, newOut)
			for _, pin := range circ.Fanout[g] {
				tg := uint64(pin.Gate)
				c.Enqueue(toggleFn, c.TS()+uint64(circ.Delay[g]), tg, tg, uint64(pin.Pin), g)
			}
		}
	}
	toggleFn = p.Register("desToggle", func(c *swarm.Ctx) {
		g, pin, src := c.Arg(0), c.Arg(1), c.Arg(2)
		val := c.Read(st.out + src*8)
		c.Write(st.in(g, pin), val)
		eval(c, g)
	})
	inputFn := p.Register("desInput", func(c *swarm.Ctx) {
		g, val := c.Arg(0), c.Arg(1)
		c.Write(st.in(g, 0), val)
		eval(c, g)
	})
	for _, w := range wf {
		p.EnqueueRoot(inputFn, w.TS, uint64(w.Gate), uint64(w.Gate), w.Val)
	}

	want := refDES(circ, wf)
	return &Instance{
		Name: "des", Prog: p, Ordered: true,
		HintPattern: "Logic gate ID",
		Validate: func() error {
			for g := 0; g < circ.N(); g++ {
				if got := p.Mem.Load(st.out + uint64(g)*8); got != want[g] {
					return fmt.Errorf("des: gate %d output %d, want %d", g, got, want[g])
				}
			}
			return nil
		},
	}
}

// refDES is the serial reference: a classic event-driven simulation with
// the exact semantics of the task bodies, processed in (ts, seq) order.
// Equal-timestamp events commute in final state (they write distinct pins
// and re-evaluate from current pin values), so the speculative execution
// must match this reference bit for bit.
func refDES(circ *workload.Circuit, wf []workload.Waveform) []uint64 {
	n := circ.N()
	in0 := make([]uint64, n)
	in1 := make([]uint64, n)
	out := make([]uint64, n)

	type ev struct {
		ts        uint64
		seq       uint64
		gate, pin uint64
		src       int64 // -1 = external, with val in the val field
		val       uint64
	}
	var heap []ev
	var seq uint64
	less := func(a, b ev) bool {
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		return a.seq < b.seq
	}
	push := func(e ev) {
		seq++
		e.seq = seq
		heap = append(heap, e)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !less(heap[i], heap[p]) {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() ev {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r, s := 2*i+1, 2*i+2, i
			if l < len(heap) && less(heap[l], heap[s]) {
				s = l
			}
			if r < len(heap) && less(heap[r], heap[s]) {
				s = r
			}
			if s == i {
				break
			}
			heap[i], heap[s] = heap[s], heap[i]
			i = s
		}
		return top
	}
	for _, w := range wf {
		push(ev{ts: w.TS, gate: uint64(w.Gate), src: -1, val: w.Val})
	}
	for len(heap) > 0 {
		e := pop()
		g := e.gate
		val := e.val
		if e.src >= 0 {
			val = out[e.src]
		}
		if e.pin == 0 {
			in0[g] = val
		} else {
			in1[g] = val
		}
		newOut := circ.Kind[g].Eval(in0[g], in1[g])
		if newOut != out[g] {
			out[g] = newOut
			for _, pin := range circ.Fanout[g] {
				push(ev{ts: e.ts + uint64(circ.Delay[g]), gate: uint64(pin.Gate), pin: uint64(pin.Pin), src: int64(g)})
			}
		}
	}
	return out
}
