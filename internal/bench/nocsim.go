package bench

import (
	"fmt"

	"swarmhints/internal/workload"
	"swarmhints/swarm"
)

// nocsim models the detailed NoC simulator of Table I (GARNET-derived):
// each task simulates an event at a router component — packet arrival into
// a virtual-channel buffer, route computation + switch allocation, and link
// traversal to the next hop under X-Y routing. Router state lives in
// simulated memory at virtual-channel granularity (as in a real router,
// different VCs' events touch different state words, so only same-VC events
// serialize). Hints are router IDs: components of the same router
// communicate constantly, so the paper keeps them on one tile (Sec. III-C,
// "Object IDs").

// nocVCs is the number of virtual channels per router.
const nocVCs = 4

// nocFields is the number of state words per VC: buffer-occupancy
// accumulator, switch-allocator grants, forwarded count, delivered count.
const nocFields = 4

func nocScaleParams(scale Scale) (k, rate int, horizon uint64) {
	switch scale {
	case Tiny:
		return 4, 2, 300
	case Small:
		// The paper's 16x16 mesh under sustained tornado load: a dense
		// event frontier keeps all routers concurrently active.
		return 16, 4, 400
	default:
		return 16, 6, 1000
	}
}

// BuildNocsim builds the mesh NoC simulation with tornado traffic.
func BuildNocsim(scale Scale, seed int64) *Instance {
	k, rate, horizon := nocScaleParams(scale)
	packets := workload.Tornado(k, rate, horizon, seed)

	p := swarm.NewProgram()
	n := k * k
	state := p.Mem.AllocWords(uint64(n) * nocVCs * nocFields)
	word := func(r, vc, f uint64) uint64 {
		return state + ((r*nocVCs+vc)*nocFields+f)*8
	}

	nextHop := func(r, dst uint64) uint64 {
		x, y := r%uint64(k), r/uint64(k)
		dx, dy := dst%uint64(k), dst/uint64(k)
		switch { // X-Y dimension-order routing
		case x < dx:
			return y*uint64(k) + x + 1
		case x > dx:
			return y*uint64(k) + x - 1
		case y < dy:
			return (y+1)*uint64(k) + x
		default:
			return (y-1)*uint64(k) + x
		}
	}

	var arriveFn, routeFn, departFn swarm.FnID
	departFn = p.Register("nocLinkTraversal", func(c *swarm.Ctx) {
		r, dst, pkt := c.Arg(0), c.Arg(1), c.Arg(2)
		vc := pkt % nocVCs
		c.Write(word(r, vc, 2), c.Read(word(r, vc, 2))+1)
		next := nextHop(r, dst)
		c.Enqueue(arriveFn, c.TS()+1, next, next, dst, pkt)
	})
	routeFn = p.Register("nocSwitchAlloc", func(c *swarm.Ctx) {
		r, dst, pkt := c.Arg(0), c.Arg(1), c.Arg(2)
		vc := pkt % nocVCs
		c.Write(word(r, vc, 1), c.Read(word(r, vc, 1))+1)
		if r == dst {
			c.Write(word(r, vc, 3), c.Read(word(r, vc, 3))+1)
			return
		}
		c.EnqueueSameHint(departFn, c.TS()+1, r, dst, pkt)
	})
	arriveFn = p.Register("nocBufferWrite", func(c *swarm.Ctx) {
		r, dst, pkt := c.Arg(0), c.Arg(1), c.Arg(2)
		vc := pkt % nocVCs
		c.Write(word(r, vc, 0), c.Read(word(r, vc, 0))+pkt)
		c.EnqueueSameHint(routeFn, c.TS()+1, r, dst, pkt)
	})
	for i, pk := range packets {
		p.EnqueueRoot(arriveFn, pk.TS, uint64(pk.Src), uint64(pk.Src), uint64(pk.Dst), uint64(i))
	}

	want := refNoc(k, packets)
	return &Instance{
		Name: "nocsim", Prog: p, Ordered: true,
		HintPattern: "Router ID",
		Validate: func() error {
			for i, w := range want {
				if got := p.Mem.Load(state + uint64(i)*8); got != w {
					return fmt.Errorf("nocsim: state word %d = %d, want %d", i, got, w)
				}
			}
			return nil
		},
	}
}

// refNoc computes the reference state by walking each packet's
// deterministic X-Y path; all task effects are commutative accumulations,
// so path-walking gives the exact final state.
func refNoc(k int, packets []workload.Packet) []uint64 {
	n := k * k
	out := make([]uint64, n*nocVCs*nocFields)
	word := func(r, vc, f int) int { return (r*nocVCs+vc)*nocFields + f }
	for i, pk := range packets {
		r, dst := int(pk.Src), int(pk.Dst)
		vc := i % nocVCs
		for {
			out[word(r, vc, 0)] += uint64(i) // buffer write accumulator
			out[word(r, vc, 1)]++            // switch grant
			if r == dst {
				out[word(r, vc, 3)]++ // delivered
				break
			}
			out[word(r, vc, 2)]++ // forwarded
			x, y := r%k, r/k
			dx, dy := dst%k, dst/k
			switch {
			case x < dx:
				r = y*k + x + 1
			case x > dx:
				r = y*k + x - 1
			case y < dy:
				r = (y+1)*k + x
			default:
				r = (y-1)*k + x
			}
		}
	}
	return out
}
