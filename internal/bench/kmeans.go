package bench

import (
	"fmt"

	"swarmhints/internal/workload"
	"swarmhints/swarm"
)

// kmeans is the STAMP K-means port (Table I): unordered per-phase tasks
// with two hint patterns — findCluster uses the point's cache line, and the
// centroid-update tasks use the cluster ID, co-locating and serializing all
// updates of one centroid on one tile (the paper's single-hint read-write
// hot spot that gives Hints its largest win, Sec. IV-C).

func kmeansScaleParams(scale Scale) (n, d, k, iters int) {
	switch scale {
	case Tiny:
		return 128, 4, 4, 3
	case Small:
		return 700, 4, 8, 4
	default:
		return 2048, 8, 16, 5
	}
}

// BuildKMeans builds the clustering program: `iters` fixed iterations (the
// paper fixes iteration count for run-to-run consistency, Sec. IV-A), each
// with an assignment phase, an accumulation phase, and a centroid-update
// phase, sequenced by timestamps.
func BuildKMeans(scale Scale, seed int64) *Instance {
	n, d, k, iters := kmeansScaleParams(scale)
	pts := workload.KMeansPoints(n, d, k, seed)

	p := swarm.NewProgram()
	du := uint64(d)
	// Points are padded to one cache line each (real points carry 24+
	// dimensions in the paper's input; padding keeps the hint cardinality
	// in the same regime at our scaled point counts).
	stride := (du + 7) &^ 7
	points := p.Mem.AllocWords(uint64(n) * stride)
	centroids := p.Mem.AllocWords(uint64(k) * du)
	accum := p.Mem.AllocWords(uint64(k) * du)
	counts := p.Mem.AllocWords(uint64(k))
	member := p.Mem.AllocWords(uint64(n))
	for pt := 0; pt < n; pt++ {
		for j := 0; j < d; j++ {
			p.Mem.StoreRaw(points+(uint64(pt)*stride+uint64(j))*8, uint64(pts.Coords[pt*d+j]))
		}
	}
	for c := 0; c < k; c++ { // initial centroids = first k points
		for j := 0; j < d; j++ {
			p.Mem.StoreRaw(centroids+uint64(c*d+j)*8, uint64(pts.Coords[c*d+j]))
		}
	}

	pointAddr := func(pt uint64) uint64 { return points + pt*stride*8 }
	base := func(iter uint64) uint64 { return iter * 4 }

	var findFn, accumFn, finalFn, driverFn swarm.FnID
	finalFn = p.Register("updateCentroid", func(c *swarm.Ctx) {
		cl := c.Arg(0)
		cnt := c.Read(counts + cl*8)
		if cnt > 0 {
			for j := uint64(0); j < du; j++ {
				sum := int64(c.Read(accum + (cl*du+j)*8))
				c.Write(centroids+(cl*du+j)*8, uint64(sum/int64(cnt)))
				c.Write(accum+(cl*du+j)*8, 0)
			}
			c.Write(counts+cl*8, 0)
		}
	})
	// updateCluster receives the point's coordinates as task arguments (the
	// findCluster task already read them), so its accesses touch only the
	// centroid's accumulators — single-hint read-write data that stays in
	// one tile's L1 under hint mapping.
	accumFn = p.Register("updateCluster", func(c *swarm.Ctx) {
		cl := c.Arg(0)
		for j := uint64(0); j < du; j++ {
			cur := int64(c.Read(accum + (cl*du+j)*8))
			c.Write(accum+(cl*du+j)*8, uint64(cur+int64(c.Arg(int(1+j)))))
		}
		c.Write(counts+cl*8, c.Read(counts+cl*8)+1)
	})
	findFn = p.Register("findCluster", func(c *swarm.Ctx) {
		pt := c.Arg(0)
		coords := make([]uint64, du)
		for j := uint64(0); j < du; j++ {
			coords[j] = c.Read(pointAddr(pt) + j*8)
		}
		best, bestDist := uint64(0), int64(1)<<62
		for cl := uint64(0); cl < uint64(k); cl++ {
			var dist int64
			for j := uint64(0); j < du; j++ {
				diff := int64(coords[j]) - int64(c.Read(centroids+(cl*du+j)*8))
				dist += diff * diff
			}
			c.Compute(uint64(3 * d)) // distance arithmetic
			if dist < bestDist {
				bestDist, best = dist, cl
			}
		}
		if c.Read(member+pt*8) != best+1 {
			c.Write(member+pt*8, best+1)
		}
		args := append([]uint64{best}, coords...)
		c.Enqueue(accumFn, c.TS()+1, 1_000_000+best, args...)
	})
	driverFn = p.Register("kmeansDriver", func(c *swarm.Ctx) {
		iter := c.Arg(0)
		if iter >= uint64(iters) {
			return
		}
		for pt := uint64(0); pt < uint64(n); pt++ {
			c.Enqueue(findFn, c.TS()+1, lineOf(pointAddr(pt)), pt)
		}
		for cl := uint64(0); cl < uint64(k); cl++ {
			c.Enqueue(finalFn, c.TS()+3, 1_000_000+cl, cl)
		}
		c.EnqueueNoHint(driverFn, base(iter+1), iter+1)
	})
	p.EnqueueRootNoHint(driverFn, 0, 0)

	wantMember, wantCentroids := refKMeans(pts, iters)
	return &Instance{
		Name: "kmeans", Prog: p, Ordered: false,
		HintPattern: "Cache line of point, cluster ID",
		Validate: func() error {
			for i := 0; i < n; i++ {
				if got := p.Mem.Load(member + uint64(i)*8); got != wantMember[i]+1 {
					return fmt.Errorf("kmeans: point %d in cluster %d, want %d", i, got, wantMember[i]+1)
				}
			}
			for i := range wantCentroids {
				if got := int64(p.Mem.Load(centroids + uint64(i)*8)); got != wantCentroids[i] {
					return fmt.Errorf("kmeans: centroid word %d = %d, want %d", i, got, wantCentroids[i])
				}
			}
			return nil
		},
	}
}

// refKMeans runs the identical fixed-point iteration serially.
func refKMeans(pts *workload.Points, iters int) (member []uint64, centroids []int64) {
	n, d, k := pts.N, pts.D, pts.K
	centroids = make([]int64, k*d)
	copy(centroids, pts.Coords[:k*d])
	member = make([]uint64, n)
	accum := make([]int64, k*d)
	counts := make([]int64, k)
	for it := 0; it < iters; it++ {
		for i := range accum {
			accum[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for pt := 0; pt < n; pt++ {
			best, bestDist := 0, int64(1)<<62
			for cl := 0; cl < k; cl++ {
				var dist int64
				for j := 0; j < d; j++ {
					diff := pts.Coords[pt*d+j] - centroids[cl*d+j]
					dist += diff * diff
				}
				if dist < bestDist {
					bestDist, best = dist, cl
				}
			}
			member[pt] = uint64(best)
			for j := 0; j < d; j++ {
				accum[best*d+j] += pts.Coords[pt*d+j]
			}
			counts[best]++
		}
		for cl := 0; cl < k; cl++ {
			if counts[cl] > 0 {
				for j := 0; j < d; j++ {
					centroids[cl*d+j] = accum[cl*d+j] / counts[cl]
				}
			}
		}
	}
	return member, centroids
}
