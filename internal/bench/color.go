package bench

import (
	"fmt"
	"sort"

	"swarmhints/internal/workload"
	"swarmhints/swarm"
)

// ldfRanks computes the largest-degree-first order [30, 71]: vertices
// sorted by decreasing degree, ties by vertex id. rank[v] is v's position
// (its task timestamp); a vertex considers only earlier-ranked neighbors
// when choosing its color, so the serial result is deterministic.
func ldfRanks(g *workload.Graph) []int {
	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	rank := make([]int, g.N)
	for pos, v := range order {
		rank[v] = pos
	}
	return rank
}

// refColor computes the serial LDF coloring (colors start at 1).
func refColor(g *workload.Graph, rank []int) []uint64 {
	order := make([]int, g.N)
	for v, r := range rank {
		order[r] = v
	}
	colors := make([]uint64, g.N)
	for _, v := range order {
		used := map[uint64]bool{}
		g.Edges(v, func(n int, _ uint32) {
			if rank[n] < rank[v] {
				used[colors[n]] = true
			}
		})
		c := uint64(1)
		for used[c] {
			c++
		}
		colors[v] = c
	}
	return colors
}

func validateColors(p *swarm.Program, sg *simGraph, want []uint64, what string) error {
	for v := 0; v < sg.g.N; v++ {
		got := p.Mem.Load(sg.dataAddr(uint64(v)))
		if got != want[v] {
			return fmt.Errorf("%s: vertex %d color %d, want %d", what, v, got, want[v])
		}
	}
	// Also assert a proper coloring outright.
	for v := 0; v < sg.g.N; v++ {
		cv := p.Mem.Load(sg.dataAddr(uint64(v)))
		var bad error
		sg.g.Edges(v, func(n int, _ uint32) {
			if bad == nil && p.Mem.Load(sg.dataAddr(uint64(n))) == cv {
				bad = fmt.Errorf("%s: adjacent vertices %d and %d share color %d", what, v, n, cv)
			}
		})
		if bad != nil {
			return bad
		}
	}
	return nil
}

// BuildColorCG is the coarse-grain graph coloring: one task per vertex,
// ordered by LDF rank, reading every earlier neighbor's color and writing
// its own (multi-hint read-write reads, Sec. IV-B).
func BuildColorCG(scale Scale, seed int64) *Instance {
	g := graphForScale("color", scale, seed)
	p := swarm.NewProgram()
	sg := layoutGraph(p, g, 0)
	rank := ldfRanks(g)
	// Ranks live in simulated read-only memory; tasks read them to decide
	// which neighbors precede them.
	rankBase := p.Mem.AllocWords(uint64(g.N))
	for v := 0; v < g.N; v++ {
		p.Mem.StoreRaw(rankBase+uint64(v)*8, uint64(rank[v]))
	}
	fn := p.Register("colorTask", func(c *swarm.Ctx) {
		v := c.Arg(0)
		myRank := c.TS()
		used := map[uint64]bool{}
		sg.visitNeighbors(c, v, func(n, _ uint64) {
			if c.Read(rankBase+n*8) < myRank {
				used[c.Read(sg.dataAddr(n))] = true
			}
		})
		col := uint64(1)
		for used[col] {
			col++
		}
		c.Write(sg.dataAddr(v), col)
	})
	for v := 0; v < g.N; v++ {
		p.EnqueueRoot(fn, uint64(rank[v]), lineOf(sg.dataAddr(uint64(v))), uint64(v))
	}
	want := refColor(g, rank)
	return &Instance{
		Name: "color", Prog: p, Ordered: true,
		HintPattern: "Cache line of vertex",
		Validate: func() error {
			return validateColors(p, sg, want, "color")
		},
	}
}

// BuildColorFG is the fine-grain coloring of Sec. V: the per-vertex
// operation splits into four task types, each reading or writing at most
// one vertex's state. Gather tasks read one neighbor's color and forward
// it by argument; update tasks fold it into the vertex's scratch mask and
// count down; the assign task picks the smallest free color.
//
// Timestamps interleave as rank*4 + phase so every gather runs after its
// neighbor's assign in speculative order.
func BuildColorFG(scale Scale, seed int64) *Instance {
	g := graphForScale("color", scale, seed)
	p := swarm.NewProgram()
	sg := layoutGraph(p, g, 0)
	rank := ldfRanks(g)

	// Earlier-neighbor lists are static graph structure, precomputed.
	earlier := make([][]uint64, g.N)
	maxDeg := 0
	for v := 0; v < g.N; v++ {
		g.Edges(v, func(n int, _ uint32) {
			if rank[n] < rank[v] {
				earlier[v] = append(earlier[v], uint64(n))
			}
		})
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	maskWords := uint64(maxDeg/64 + 2)
	pending := p.Mem.AllocWords(uint64(g.N))
	masks := p.Mem.AllocWords(uint64(g.N) * maskWords)
	for v := 0; v < g.N; v++ {
		p.Mem.StoreRaw(pending+uint64(v)*8, uint64(len(earlier[v])))
	}
	maskAddr := func(v, word uint64) uint64 { return masks + (v*maskWords+word)*8 }
	tsOf := func(v uint64, phase uint64) uint64 { return uint64(rank[v])*4 + phase }

	var gatherFn, updateFn, assignFn swarm.FnID
	assignFn = p.Register("colorAssign", func(c *swarm.Ctx) {
		v := c.Arg(0)
		col := uint64(1)
		for {
			word := col / 64
			if c.Read(maskAddr(v, word))&(1<<(col%64)) == 0 {
				break
			}
			col++
		}
		c.Write(sg.dataAddr(v), col)
	})
	updateFn = p.Register("colorUpdate", func(c *swarm.Ctx) {
		v, cu := c.Arg(0), c.Arg(1)
		word := cu / 64
		c.Write(maskAddr(v, word), c.Read(maskAddr(v, word))|1<<(cu%64))
		left := c.Read(pending+v*8) - 1
		c.Write(pending+v*8, left)
		if left == 0 {
			c.Enqueue(assignFn, tsOf(v, 3), lineOf(sg.dataAddr(v)), v)
		}
	})
	gatherFn = p.Register("colorGather", func(c *swarm.Ctx) {
		v, u := c.Arg(0), c.Arg(1)
		cu := c.Read(sg.dataAddr(u))
		c.Enqueue(updateFn, tsOf(v, 2), lineOf(pending+v*8), v, cu)
	})
	startFn := p.Register("colorStart", func(c *swarm.Ctx) {
		v := c.Arg(0)
		if len(earlier[v]) == 0 {
			c.Enqueue(assignFn, tsOf(v, 3), lineOf(sg.dataAddr(v)), v)
			return
		}
		for _, u := range earlier[v] {
			c.Enqueue(gatherFn, tsOf(v, 1), lineOf(sg.dataAddr(u)), v, u)
		}
	})
	for v := 0; v < g.N; v++ {
		p.EnqueueRoot(startFn, tsOf(uint64(v), 0), lineOf(sg.dataAddr(uint64(v))), uint64(v))
	}
	want := refColor(g, rank)
	return &Instance{
		Name: "color-fg", Prog: p, Ordered: true,
		HintPattern: "Cache line of vertex (4 task types)",
		Validate: func() error {
			return validateColors(p, sg, want, "color-fg")
		},
	}
}
