package bench

import (
	"testing"

	"swarmhints/swarm"
)

func runCfg(cores int, k swarm.SchedKind) swarm.Config {
	cfg := swarm.ScaledConfig().WithCores(cores)
	cfg.Scheduler = k
	cfg.MaxCycles = 2_000_000_000
	return cfg
}

// TestAllBenchmarksSerialEquivalence is the core correctness suite: every
// benchmark, under every scheduler and several machine sizes, must commit a
// final memory state identical to its serial reference implementation.
func TestAllBenchmarksSerialEquivalence(t *testing.T) {
	scheds := []swarm.SchedKind{swarm.Random, swarm.Stealing, swarm.Hints, swarm.LBHints}
	for _, name := range AllNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, k := range scheds {
				for _, cores := range []int{1, 16} {
					inst, err := Build(name, Tiny, 7)
					if err != nil {
						t.Fatal(err)
					}
					st, err := inst.Prog.Run(runCfg(cores, k))
					if err != nil {
						t.Fatalf("%v/%dc: %v", k, cores, err)
					}
					if err := inst.Validate(); err != nil {
						t.Fatalf("%v/%dc: %v", k, cores, err)
					}
					if st.CommittedTasks == 0 {
						t.Fatalf("%v/%dc: no tasks committed", k, cores)
					}
				}
			}
		})
	}
}

// TestBenchmarks64Cores runs each benchmark on a 64-core machine under
// Hints, the configuration most experiments use.
func TestBenchmarks64Cores(t *testing.T) {
	if testing.Short() {
		t.Skip("64-core sweep skipped in -short mode")
	}
	for _, name := range Names() {
		inst, err := Build(name, Tiny, 11)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Prog.Run(runCfg(64, swarm.Hints)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := inst.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestDifferentSeedsStillValid(t *testing.T) {
	for _, seed := range []int64{1, 42, 999} {
		for _, name := range []string{"sssp", "des", "genome", "kmeans"} {
			inst, err := Build(name, Tiny, seed)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := inst.Prog.Run(runCfg(16, swarm.Hints)); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if err := inst.Validate(); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	if len(Names()) != 9 {
		t.Fatalf("Table I has 9 benchmarks, registry names %d", len(Names()))
	}
	for _, n := range Names() {
		if _, ok := Registry[n]; !ok {
			t.Fatalf("benchmark %q not registered", n)
		}
	}
	for _, n := range FGNames() {
		if _, ok := Registry[n+"-fg"]; !ok {
			t.Fatalf("fine-grain variant %q-fg not registered", n)
		}
	}
	if _, err := Build("nonexistent", Tiny, 1); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestInstanceMetadata(t *testing.T) {
	ordered := map[string]bool{
		"bfs": true, "sssp": true, "astar": true, "color": true,
		"des": true, "nocsim": true, "silo": true,
		"genome": false, "kmeans": false,
	}
	for name, want := range ordered {
		inst, err := Build(name, Tiny, 1)
		if err != nil {
			t.Fatal(err)
		}
		if inst.Ordered != want {
			t.Fatalf("%s: Ordered = %v, want %v (Sec. II-A)", name, inst.Ordered, want)
		}
		if inst.HintPattern == "" {
			t.Fatalf("%s: missing hint pattern", name)
		}
	}
}

// TestFGMakesRWSingleHint reproduces the Sec. V claim that fine-grain
// versions turn virtually all read-write accesses single-hint.
func TestFGMakesRWSingleHint(t *testing.T) {
	profile := func(name string) *swarm.Classification {
		inst, err := Build(name, Tiny, 5)
		if err != nil {
			t.Fatal(err)
		}
		cfg := runCfg(16, swarm.Hints)
		cfg.Profile = true
		st, err := inst.Prog.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Validate(); err != nil {
			t.Fatal(err)
		}
		return st.Classification
	}
	for _, name := range []string{"sssp", "bfs"} {
		cg := profile(name)
		fg := profile(name + "-fg")
		cgRW := cg.MultiHintRW / (cg.MultiHintRW + cg.SingleHintRW + 1e-12)
		fgRW := fg.MultiHintRW / (fg.MultiHintRW + fg.SingleHintRW + 1e-12)
		if fgRW >= cgRW {
			t.Fatalf("%s: FG multi-hint RW fraction %.2f not below CG %.2f", name, fgRW, cgRW)
		}
	}
}

// TestKmeansHintsCutTraffic reproduces the robust kmeans claim: Hints
// localizes the hot centroid data, slashing NoC traffic versus Random (the
// paper reports up to 32× at 256 cores; note Fig. 4 shows Random can still
// *outperform* Hints on time at 16–160 cores because of hint-induced
// imbalance, so traffic is the right invariant at this scale).
func TestKmeansHintsCutTraffic(t *testing.T) {
	traffic := map[swarm.SchedKind]uint64{}
	for _, k := range []swarm.SchedKind{swarm.Random, swarm.Hints} {
		inst, err := Build("kmeans", Tiny, 3)
		if err != nil {
			t.Fatal(err)
		}
		st, err := inst.Prog.Run(runCfg(16, k))
		if err != nil {
			t.Fatal(err)
		}
		traffic[k] = st.TotalTraffic()
	}
	if traffic[swarm.Hints]*2 > traffic[swarm.Random] {
		t.Fatalf("kmeans: Hints traffic %d not well below Random's %d",
			traffic[swarm.Hints], traffic[swarm.Random])
	}
}
