package bench

import (
	"fmt"
	"math/rand"

	"swarmhints/internal/workload"
	"swarmhints/swarm"
)

// Maximal independent set over the CSR graph infrastructure: the classic
// priority-greedy MIS (Luby-style with a fixed random priority order, as in
// the ordered-algorithm suites Swarm targets). Vertex v joins the set iff no
// higher-priority neighbor joined; one task per vertex, ordered by priority
// rank, reading earlier neighbors' decisions and writing its own — the same
// multi-hint read-write shape as graph coloring, but with binary state and
// an early exit, so abort behavior differs.

// misState values stored in the per-vertex data word.
const (
	misUndecided = 0
	misIn        = 1
	misOut       = 2
)

// misRanks assigns each vertex a distinct random priority rank from seed:
// rank[v] is v's position in the greedy order (and its task timestamp).
func misRanks(n int, seed int64) []int {
	order := rand.New(rand.NewSource(seed ^ 0x6d6973)).Perm(n)
	rank := make([]int, n)
	for pos, v := range order {
		rank[v] = pos
	}
	return rank
}

// refMIS computes the serial greedy MIS in rank order.
func refMIS(g *workload.Graph, rank []int) []uint64 {
	order := make([]int, g.N)
	for v, r := range rank {
		order[r] = v
	}
	state := make([]uint64, g.N)
	for _, v := range order {
		s := uint64(misIn)
		g.Edges(v, func(n int, _ uint32) {
			if rank[n] < rank[v] && state[n] == misIn {
				s = misOut
			}
		})
		state[v] = s
	}
	return state
}

// BuildMIS is the maximal-independent-set benchmark: tasks ordered by a
// random priority, each reading its earlier-ranked neighbors' membership and
// writing its own (hint: cache line of vertex, like the graph benchmarks of
// Table I).
func BuildMIS(scale Scale, seed int64) *Instance {
	g := graphForScale("mis", scale, seed)
	p := swarm.NewProgram()
	sg := layoutGraph(p, g, misUndecided)
	rank := misRanks(g.N, seed)
	// Ranks live in simulated read-only memory; tasks read them to decide
	// which neighbors precede them.
	rankBase := p.Mem.AllocWords(uint64(g.N))
	for v := 0; v < g.N; v++ {
		p.Mem.StoreRaw(rankBase+uint64(v)*8, uint64(rank[v]))
	}
	fn := p.Register("misTask", func(c *swarm.Ctx) {
		v := c.Arg(0)
		myRank := c.TS()
		state := uint64(misIn)
		sg.visitNeighbors(c, v, func(n, _ uint64) {
			if state == misIn && c.Read(rankBase+n*8) < myRank &&
				c.Read(sg.dataAddr(n)) == misIn {
				state = misOut
			}
		})
		c.Write(sg.dataAddr(v), state)
	})
	for v := 0; v < g.N; v++ {
		p.EnqueueRoot(fn, uint64(rank[v]), lineOf(sg.dataAddr(uint64(v))), uint64(v))
	}
	want := refMIS(g, rank)
	return &Instance{
		Name: "mis", Prog: p, Ordered: true,
		HintPattern: "Cache line of vertex",
		Validate: func() error {
			return validateMIS(p, sg, want, "mis")
		},
	}
}

// validateMIS checks the committed state against the serial reference and
// asserts the defining MIS properties outright: independence (no two
// adjacent members) and maximality (every non-member has a member neighbor).
func validateMIS(p *swarm.Program, sg *simGraph, want []uint64, what string) error {
	for v := 0; v < sg.g.N; v++ {
		got := p.Mem.Load(sg.dataAddr(uint64(v)))
		if got != want[v] {
			return fmt.Errorf("%s: vertex %d state %d, want %d", what, v, got, want[v])
		}
	}
	for v := 0; v < sg.g.N; v++ {
		sv := p.Mem.Load(sg.dataAddr(uint64(v)))
		if sv == misUndecided {
			return fmt.Errorf("%s: vertex %d undecided", what, v)
		}
		hasInNeighbor := false
		var bad error
		sg.g.Edges(v, func(n int, _ uint32) {
			sn := p.Mem.Load(sg.dataAddr(uint64(n)))
			if sv == misIn && sn == misIn && bad == nil {
				bad = fmt.Errorf("%s: adjacent vertices %d and %d both in the set", what, v, n)
			}
			if sn == misIn {
				hasInNeighbor = true
			}
		})
		if bad != nil {
			return bad
		}
		if sv == misOut && !hasInNeighbor {
			return fmt.Errorf("%s: vertex %d excluded without a member neighbor (not maximal)", what, v)
		}
	}
	return nil
}
