// Package bench implements the paper's nine benchmarks (Table I) as Swarm
// programs over the public swarm API, each paired with a serial host-side
// reference implementation used to validate speculative executions, plus
// the fine-grain (FG) restructurings of Sec. V for bfs, sssp, astar, and
// color.
//
// Inputs are the synthetic substitutes from internal/workload (see
// DESIGN.md for the substitution table).
package bench

import (
	"fmt"
	"sort"

	"swarmhints/internal/mem"
	"swarmhints/swarm"
)

// Scale selects input sizes: Tiny for unit tests, Small for quick
// experiment runs, Full for the recorded EXPERIMENTS.md runs.
type Scale int

// Scales.
const (
	Tiny Scale = iota
	Small
	Full
)

// String names the scale as the -scale flag spells it.
func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Full:
		return "full"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// Instance is one freshly built, runnable benchmark instance. Programs run
// once, so builders are called per run.
type Instance struct {
	Name string
	Prog *swarm.Program
	// Validate checks the final simulated memory against the serial
	// reference. Call after Prog.Run.
	Validate func() error
	// HintPattern documents the Table I hint strategy.
	HintPattern string
	// Ordered reports whether the benchmark uses ordered speculation.
	Ordered bool
}

// Builder constructs an instance at the given scale and seed.
type Builder func(scale Scale, seed int64) *Instance

// Registry maps benchmark names (Table I rows, plus -fg variants) to
// builders.
var Registry = map[string]Builder{
	"bfs":      BuildBFSCG,
	"bfs-fg":   BuildBFSFG,
	"sssp":     BuildSSSPCG,
	"sssp-fg":  BuildSSSPFG,
	"astar":    BuildAstarCG,
	"astar-fg": BuildAstarFG,
	"color":    BuildColorCG,
	"color-fg": BuildColorFG,
	"des":      BuildDES,
	"nocsim":   BuildNocsim,
	"silo":     BuildSilo,
	"genome":   BuildGenome,
	"kmeans":   BuildKMeans,
	"mis":      BuildMIS,
}

// Names returns the nine coarse-grain benchmark names in Table I order.
func Names() []string {
	return []string{"bfs", "sssp", "astar", "color", "des", "nocsim", "silo", "genome", "kmeans"}
}

// FGNames returns the benchmarks that have fine-grain variants (Sec. V).
func FGNames() []string { return []string{"bfs", "sssp", "astar", "color"} }

// AllNames returns every registered benchmark, sorted.
func AllNames() []string {
	out := make([]string, 0, len(Registry))
	for n := range Registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Build looks a benchmark up by name and builds it.
func Build(name string, scale Scale, seed int64) (*Instance, error) {
	b, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", name)
	}
	return b(scale, seed), nil
}

// unset is the sentinel distance/color meaning "not yet set".
const unset = ^uint64(0)

// lineOf returns the cache-line hint for a word address (Table I: "Cache
// line of vertex").
func lineOf(addr uint64) uint64 { return mem.LineAddr(addr) }

func expectEq(what string, got, want uint64) error {
	if got != want {
		return fmt.Errorf("%s: got %d, want %d", what, got, want)
	}
	return nil
}
