package bench

import (
	"fmt"

	"swarmhints/internal/hashutil"
	"swarmhints/internal/workload"
	"swarmhints/swarm"
)

// genome is the STAMP gene-sequencing port (Table I): unordered
// transactions implemented as equal-phase-timestamp tasks. Phase 1
// deduplicates the shuffled, duplicated segments through a shared hash
// table; phase 2 inserts unique segments into a prefix-keyed match table;
// phase 3 links each unique segment to its overlap successor. Hints follow
// the paper's mix: deduplication tasks are NOHINT (the bucket is unknown
// until the content is hashed), their children use concrete map-key hints
// or SAMEHINT (Table I: "Elem addr, map key, NO/SAMEHINT").

func genomeScaleParams(scale Scale) (nUnique, segWords, dups int) {
	switch scale {
	case Tiny:
		return 60, 3, 3
	case Small:
		return 1200, 4, 4
	default:
		return 4000, 4, 4
	}
}

// BuildGenome builds the sequencing program.
func BuildGenome(scale Scale, seed int64) *Instance {
	nUnique, segWords, dups := genomeScaleParams(scale)
	in := workload.Genome(nUnique, segWords, dups, seed)
	nTotal := len(in.Segments) / in.SegWords
	tableSize := uint64(4 * nUnique)

	p := swarm.NewProgram()
	segs := p.Mem.AllocWords(uint64(len(in.Segments)))
	for i, w := range in.Segments {
		p.Mem.StoreRaw(segs+uint64(i)*8, w)
	}
	dedupTable := p.Mem.AllocWords(tableSize)
	prefixTable := p.Mem.AllocWords(tableSize)
	next := p.Mem.AllocWords(uint64(nTotal))
	linked := p.Mem.AllocWords(uint64(nTotal))

	segWord := func(c *swarm.Ctx, seg, w uint64) uint64 {
		return c.Read(segs + (seg*uint64(in.SegWords)+w)*8)
	}
	hashContent := func(words []uint64) uint64 {
		h := uint64(0x9e3779b97f4a7c15)
		for _, w := range words {
			h = hashutil.SplitMix64(h ^ w)
		}
		return h
	}

	var prefixFn, matchFn, linkStatFn swarm.FnID
	linkStatFn = p.Register("genomeLinkStat", func(c *swarm.Ctx) {
		i := c.Arg(0)
		c.Write(linked+i*8, c.Read(linked+i*8)+1)
	})
	matchFn = p.Register("genomeMatch", func(c *swarm.Ctx) {
		i := c.Arg(0)
		last := segWord(c, i, uint64(in.SegWords-1))
		b := hashutil.SplitMix64(last) % tableSize
		for {
			x := c.Read(prefixTable + b*8)
			if x == 0 {
				return // no successor
			}
			j := x - 1
			if segWord(c, j, 0) == last {
				c.Write(next+i*8, x)
				c.EnqueueSameHint(linkStatFn, c.TS()+1, i)
				return
			}
			b = (b + 1) % tableSize
		}
	})
	prefixFn = p.Register("genomePrefixInsert", func(c *swarm.Ctx) {
		i := c.Arg(0)
		first := segWord(c, i, 0)
		b := hashutil.SplitMix64(first) % tableSize
		for c.Read(prefixTable+b*8) != 0 {
			b = (b + 1) % tableSize // prefix words are unique; only hash collisions probe
		}
		c.Write(prefixTable+b*8, i+1)
	})
	dedupFn := p.Register("genomeDedup", func(c *swarm.Ctx) {
		i := c.Arg(0)
		mine := make([]uint64, in.SegWords)
		for w := range mine {
			mine[w] = segWord(c, i, uint64(w))
		}
		b := hashContent(mine) % tableSize
		for {
			x := c.Read(dedupTable + b*8)
			if x == 0 {
				// First copy of this content in speculative order: insert
				// and continue to the matching phases.
				c.Write(dedupTable+b*8, i+1)
				pb := hashutil.SplitMix64(mine[0]) % tableSize
				mb := hashutil.SplitMix64(mine[uint64(in.SegWords-1)]) % tableSize
				c.Enqueue(prefixFn, 1, pb, i)
				c.Enqueue(matchFn, 2, mb, i)
				return
			}
			j := x - 1
			equal := true
			for w := 0; w < in.SegWords; w++ {
				if segWord(c, j, uint64(w)) != mine[w] {
					equal = false
					break
				}
			}
			if equal {
				return // duplicate: drop
			}
			b = (b + 1) % tableSize
		}
	})
	for i := 0; i < nTotal; i++ {
		p.EnqueueRootNoHint(dedupFn, 0, uint64(i))
	}

	ref := refGenome(in)
	return &Instance{
		Name: "genome", Prog: p, Ordered: false,
		HintPattern: "Elem addr, map key, NO/SAMEHINT",
		Validate: func() error {
			for i := 0; i < nTotal; i++ {
				got := p.Mem.Load(next + uint64(i)*8)
				if got != ref.next[i] {
					return fmt.Errorf("genome: next[%d] = %d, want %d", i, got, ref.next[i])
				}
				wantLinked := uint64(0)
				if ref.next[i] != 0 {
					wantLinked = 1
				}
				if got := p.Mem.Load(linked + uint64(i)*8); got != wantLinked {
					return fmt.Errorf("genome: linked[%d] = %d, want %d", i, got, wantLinked)
				}
			}
			return nil
		},
	}
}

// refGenome computes the reference: the first copy (in root order) of each
// unique content wins deduplication; each winner's successor is the winner
// holding the content that starts with the winner's last word.
type genomeRef struct {
	next []uint64
}

func refGenome(in *workload.GenomeInput) *genomeRef {
	nTotal := len(in.Segments) / in.SegWords
	firstWord := func(s int) uint64 { return in.Segments[s*in.SegWords] }
	lastWord := func(s int) uint64 { return in.Segments[(s+1)*in.SegWords-1] }
	// Winner per unique content: first occurrence by first-word (unique
	// per content by construction).
	winnerByPrefix := map[uint64]int{}
	for s := 0; s < nTotal; s++ {
		if _, seen := winnerByPrefix[firstWord(s)]; !seen {
			winnerByPrefix[firstWord(s)] = s
		}
	}
	r := &genomeRef{next: make([]uint64, nTotal)}
	for _, w := range winnerByPrefix {
		if succ, ok := winnerByPrefix[lastWord(w)]; ok {
			r.next[w] = uint64(succ) + 1
		}
	}
	return r
}
