package bench

import (
	"strings"
	"testing"

	"swarmhints/internal/workload"
	"swarmhints/swarm"
)

// runNocsim builds and runs the nocsim benchmark at Tiny scale.
func runNocsim(t *testing.T, kind swarm.SchedKind, cores int) *Instance {
	t.Helper()
	inst := BuildNocsim(Tiny, 7)
	cfg := swarm.ScaledConfig().WithCores(cores)
	cfg.Scheduler = kind
	if _, err := inst.Prog.Run(cfg); err != nil {
		t.Fatalf("nocsim under %v at %d cores: %v", kind, cores, err)
	}
	return inst
}

// TestNocsimValidatePasses exercises the validation path end to end under
// several schedulers: the speculative execution's router state must match
// the reference path-walk exactly.
func TestNocsimValidatePasses(t *testing.T) {
	for _, kind := range []swarm.SchedKind{swarm.Random, swarm.Hints, swarm.LBHints} {
		inst := runNocsim(t, kind, 4)
		if err := inst.Validate(); err != nil {
			t.Errorf("validation failed under %v: %v", kind, err)
		}
	}
}

// TestNocsimValidateDetectsCorruption checks Validate is a real oracle: a
// single flipped router-state word must be reported, with its index.
func TestNocsimValidateDetectsCorruption(t *testing.T) {
	inst := runNocsim(t, swarm.Hints, 4)
	if err := inst.Validate(); err != nil {
		t.Fatalf("clean run failed validation: %v", err)
	}
	// The simulated allocator is deterministic, so a fresh program's first
	// allocation lands at the same base address nocsim's state array got.
	base := swarm.NewProgram().Mem.AllocWords(1)
	inst.Prog.Mem.StoreRaw(base, inst.Prog.Mem.Load(base)+1)
	err := inst.Validate()
	if err == nil {
		t.Fatal("validation accepted corrupted router state")
	}
	if !strings.Contains(err.Error(), "state word 0") {
		t.Errorf("corruption error does not name the word: %v", err)
	}
}

// TestNocsimMetadata pins the Table I row: ordered speculation with router
// IDs as hints.
func TestNocsimMetadata(t *testing.T) {
	inst := BuildNocsim(Tiny, 7)
	if !inst.Ordered {
		t.Error("nocsim must use ordered speculation")
	}
	if inst.HintPattern != "Router ID" {
		t.Errorf("hint pattern %q, want %q", inst.HintPattern, "Router ID")
	}
	if inst.Name != "nocsim" {
		t.Errorf("instance name %q", inst.Name)
	}
}

// TestRefNocConservation checks the reference model against closed-form
// invariants of X-Y routing: every packet is delivered exactly once, visits
// manhattan(src,dst)+1 routers (one switch grant each), and is forwarded
// from all but the last.
func TestRefNocConservation(t *testing.T) {
	for _, scale := range []Scale{Tiny, Small} {
		k, rate, horizon := nocScaleParams(scale)
		packets := workload.Tornado(k, rate, horizon, 7)
		if len(packets) == 0 {
			t.Fatalf("%v: empty tornado workload", scale)
		}
		want := refNoc(k, packets)

		var wantHops, wantVisits uint64
		for _, pk := range packets {
			sx, sy := int(pk.Src)%k, int(pk.Src)/k
			dx, dy := int(pk.Dst)%k, int(pk.Dst)/k
			manhattan := abs(sx-dx) + abs(sy-dy)
			wantHops += uint64(manhattan)
			wantVisits += uint64(manhattan) + 1
		}

		var grants, forwarded, delivered uint64
		for i := 0; i < k*k*nocVCs; i++ {
			grants += want[i*nocFields+1]
			forwarded += want[i*nocFields+2]
			delivered += want[i*nocFields+3]
		}
		if delivered != uint64(len(packets)) {
			t.Errorf("%v: %d packets delivered, want %d", scale, delivered, len(packets))
		}
		if grants != wantVisits {
			t.Errorf("%v: %d switch grants, want %d (one per router visit)", scale, grants, wantVisits)
		}
		if forwarded != wantHops {
			t.Errorf("%v: %d forwards, want %d (one per hop)", scale, forwarded, wantHops)
		}
	}
}

// TestNocsimSimMatchesReferenceTotals cross-checks the executed simulation
// (not just the validator) against the same conservation invariant, reading
// the delivered counters straight out of simulated memory.
func TestNocsimSimMatchesReferenceTotals(t *testing.T) {
	inst := runNocsim(t, swarm.Hints, 16)
	k, rate, horizon := nocScaleParams(Tiny)
	packets := workload.Tornado(k, rate, horizon, 7)
	base := swarm.NewProgram().Mem.AllocWords(1)
	var delivered uint64
	for i := 0; i < k*k*nocVCs; i++ {
		delivered += inst.Prog.Mem.Load(base + uint64(i*nocFields+3)*8)
	}
	if delivered != uint64(len(packets)) {
		t.Errorf("simulation delivered %d packets, want %d", delivered, len(packets))
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
