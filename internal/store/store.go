// Package store is the persistent, content-addressed result store shared by
// swarmd, the CLIs, and the experiment harness: one on-disk record per
// simulation configuration, keyed by the same canonical key the in-memory
// caches use (exp.ConfigKey / service.Config.Key), holding the canonical
// metrics.Snapshot export bytes for that configuration. Because a
// configuration fully determines its result, records never change once
// written — the store is a pure cache tier that survives restarts and can be
// shared by a fleet of concurrent replicas.
//
// Durability model: each record is written to a temporary file in the target
// directory, synced, and renamed into place, so readers only ever observe
// absent or complete records on a POSIX filesystem. Every record carries a
// versioned header with its full key and a SHA-256 payload checksum;
// truncated, torn, zero-length, or bit-flipped records fail validation and
// are treated as misses, and the next write-through atomically replaces
// them. Writes are idempotent (same key ⇒ same bytes), which is what makes
// the directory safely shareable between replicas with no locking: the worst
// concurrent outcome is two renames of identical content.
//
// The store is size-bounded: when the resident bytes exceed the configured
// cap, a garbage-collection pass evicts records least recently read first
// (reads touch the record's mtime), until the directory is back under the
// cap. Stale temporary files left by crashed writers are swept by Open and
// by every GC pass once they are older than TmpMaxAge.
//
// Failure hardening: a record that fails validation is quarantined — renamed
// to a .bad sibling — so one corrupt file costs one failed validation, not
// one per lookup forever; the next write-through recreates the record and GC
// reclaims old quarantine files. A disk that fails writes repeatedly trips
// the store into a degraded read-only mode after DegradeAfter consecutive
// write failures: Puts return ErrDegraded without touching the disk (reads
// still serve), and one probe write per ReprobeInterval is let through to
// detect recovery — a healed disk re-enables writes on its next probe. Every
// disk operation passes a fault-injection site (internal/fault: store.read,
// store.write, store.fsync, store.rename, store.torn), which is how the
// chaos suite proves all of the above deterministically.
package store

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"swarmhints/internal/fault"
	"swarmhints/internal/metrics"
	"swarmhints/internal/obs"
	"swarmhints/swarm"
)

// Disk-operation latency histograms (internal/obs), process-wide like the
// span ring: every store handle in the process observes into one family,
// which swarmd renders as swarmd_store_op_duration_seconds on /metrics.
// read covers the whole lookup (file read + validation + inflate), write
// covers the atomic write path end to end, fsync isolates the sync call
// inside it.
var (
	opVec = obs.NewHistVec("swarmd_store_op_duration_seconds",
		"Persistent-store disk operation latency.", "op", nil,
		"read", "write", "fsync")
	histRead  = opVec.With("read")
	histWrite = opVec.With("write")
	histFsync = opVec.With("fsync")
)

// PromOps renders the process-wide store operation-latency histogram
// family for a /metrics endpoint.
func PromOps() metrics.PromMetric { return opVec.Prom() }

// Magic is the first header line of every record file; bump the suffix on
// any layout change so old records read as misses instead of garbage.
const Magic = "swarmhints-store.v1"

// recExt is the record-file extension; everything else in the directory is
// ignored by reads and reclaimed (temp files) or left alone by GC.
const recExt = ".rec"

// tmpPrefix marks in-progress writes. Temp files live in the same directory
// as their record so the final rename never crosses a filesystem boundary.
const tmpPrefix = ".tmp-"

// TmpMaxAge is how old a temporary file must be before Open or GC treats it
// as debris from a crashed writer and removes it. Live writers hold a temp
// file for milliseconds; an hour of slack keeps a slow concurrent replica's
// in-flight write safe.
const TmpMaxAge = time.Hour

// badExt marks quarantined records: a record that failed validation is
// renamed from <name>.rec to <name>.rec.bad so it stops being re-validated
// on every lookup while staying on disk for postmortems. GC reclaims
// quarantine files older than TmpMaxAge.
const badExt = ".bad"

// Degraded-mode defaults (see Options).
const (
	// DefaultDegradeAfter is how many consecutive write failures trip the
	// store into degraded (read-only) mode when Options.DegradeAfter is 0.
	DefaultDegradeAfter = 5
	// DefaultReprobeInterval is how often a degraded store lets one probe
	// write through to detect disk recovery when Options.ReprobeInterval
	// is 0.
	DefaultReprobeInterval = 3 * time.Second
)

// ErrDegraded is returned by Put while the store is in degraded mode: the
// disk failed DegradeAfter consecutive writes, so writes are bypassed (the
// store serves as a read-only tier) until a probe write succeeds.
var ErrDegraded = errors.New("store: degraded (writes bypassed until a probe write succeeds)")

// Counters is a point-in-time snapshot of the store's operational counters.
// Hits+Misses equals the lookups served; Corrupt counts the misses (and
// failed decodes) caused by records that exist but fail validation. Bytes
// and Records track the resident record files; both are exact after Open
// and every GC pass and maintained incrementally in between, so concurrent
// replicas sharing a directory may each undercount the other's writes until
// their next GC.
type Counters struct {
	Hits          uint64
	Misses        uint64
	Writes        uint64
	Corrupt       uint64
	Evictions     uint64
	WriteErrors   uint64
	GCErrors      uint64 // failed collection passes and per-record eviction failures
	Quarantined   uint64 // corrupt records renamed to .bad instead of re-validating forever
	DegradeTrips  uint64 // times consecutive write failures tripped degraded mode
	DegradedSkips uint64 // Puts bypassed while degraded (ErrDegraded returned)
	Degraded      bool   // the store is currently read-only, awaiting a probe-write success
	Bytes         int64
	Records       int64
}

// Store is one handle on a result-store directory. Handles are safe for
// concurrent use, and any number of handles (in any number of processes) may
// share one directory.
type Store struct {
	dir          string
	maxBytes     int64
	degradeAfter int
	reprobe      time.Duration

	hits          atomic.Uint64
	misses        atomic.Uint64
	writes        atomic.Uint64
	corrupt       atomic.Uint64
	evictions     atomic.Uint64
	writeErrors   atomic.Uint64
	gcErrors      atomic.Uint64
	quarantined   atomic.Uint64
	degradeTrips  atomic.Uint64
	degradedSkips atomic.Uint64
	bytes         atomic.Int64
	records       atomic.Int64

	// Degraded-mode state: consecutive write failures trip degraded; while
	// set, nextProbe rations one write attempt per reprobe interval.
	consecWriteFails atomic.Int64
	degraded         atomic.Bool
	nextProbe        atomic.Int64 // unix nanos of the next allowed probe write

	// Fault-injection sites on every disk operation (no-ops unless a test
	// or the -fault flag arms them).
	siteRead, siteWrite, siteFsync, siteRename, siteTorn, siteGCRemove *fault.Site

	gcMu sync.Mutex // one GC pass at a time per handle
}

// tmpSeq distinguishes concurrent in-process writers; together with the pid
// in the temp-file name it makes every in-flight write's name unique, so
// replicas (processes) and handles (goroutines) never collide.
var tmpSeq atomic.Uint64

// renameMu serializes the stat → rename → account window of writeFile per
// record path, across every handle in this process. Without it, two
// concurrent same-key writers can both observe "no previous record" before
// either renames, and both count the record — double-counting records and
// bytes until the next GC resweep. Striped by path hash and package-level
// (not per-handle) because distinct Store handles on one directory are the
// common same-key racers. Cross-process writers remain unserialized; that
// skew is bounded and reconciled exactly by the next sweep, as documented
// on Counters.
var renameMu [64]sync.Mutex

// renameLock returns the stripe lock for a record path.
func renameLock(path string) *sync.Mutex {
	h := uint32(2166136261)
	for i := 0; i < len(path); i++ {
		h = (h ^ uint32(path[i])) * 16777619
	}
	return &renameMu[h%uint32(len(renameMu))]
}

// Options tunes a store handle beyond the directory itself.
type Options struct {
	// MaxBytes caps the resident record bytes (0 = unbounded).
	MaxBytes int64
	// DegradeAfter is how many consecutive write failures trip degraded
	// (read-only) mode. 0 = DefaultDegradeAfter; negative disables
	// degraded mode entirely.
	DegradeAfter int
	// ReprobeInterval is how often a degraded store lets one probe write
	// through to detect recovery (0 = DefaultReprobeInterval).
	ReprobeInterval time.Duration
	// FaultScope prefixes this handle's fault-site names (fault.Scoped),
	// so a test hosting several replicas in one process can target one
	// replica's disk. Empty = the bare store.* sites.
	FaultScope string
}

// Open opens (creating if needed) the store rooted at dir. maxBytes caps the
// resident record bytes (0 = unbounded); the cap is enforced by evicting the
// least recently read records after writes that exceed it. Open scans the
// directory once to initialize the byte/record accounting and to sweep
// stale temporary files left by crashed writers.
func Open(dir string, maxBytes int64) (*Store, error) {
	return OpenWith(dir, Options{MaxBytes: maxBytes})
}

// OpenWith is Open with full Options.
func OpenWith(dir string, opt Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if opt.DegradeAfter == 0 {
		opt.DegradeAfter = DefaultDegradeAfter
	}
	if opt.ReprobeInterval <= 0 {
		opt.ReprobeInterval = DefaultReprobeInterval
	}
	s := &Store{
		dir:          dir,
		maxBytes:     opt.MaxBytes,
		degradeAfter: opt.DegradeAfter,
		reprobe:      opt.ReprobeInterval,
		siteRead:     fault.Scoped(fault.Default, opt.FaultScope, "store.read"),
		siteWrite:    fault.Scoped(fault.Default, opt.FaultScope, "store.write"),
		siteFsync:    fault.Scoped(fault.Default, opt.FaultScope, "store.fsync"),
		siteRename:   fault.Scoped(fault.Default, opt.FaultScope, "store.rename"),
		siteTorn:     fault.Scoped(fault.Default, opt.FaultScope, "store.torn"),
		siteGCRemove: fault.Scoped(fault.Default, opt.FaultScope, "store.gc.remove"),
	}
	if _, _, err := s.sweep(0); err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", dir, err)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// MaxBytes returns the configured size cap (0 = unbounded).
func (s *Store) MaxBytes() int64 { return s.maxBytes }

// Path returns the record path for a key: two levels of fan-out derived
// from the SHA-256 of the key, so arbitrarily large stores keep directory
// listings small and the layout is stable across versions.
func (s *Store) Path(key string) string {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, h[:2], h[2:]+recExt)
}

// flagDeflate on the checksum line marks a deflate-compressed payload. The
// header stays plain text either way, and the length + SHA-256 always
// describe the stored (possibly compressed) bytes, so a record validates
// fully before any inflation runs.
const flagDeflate = "deflate"

// deflatePayload compresses payload, returning nil when compression would
// not shrink it (already-dense or tiny payloads stay plain). Deflate at a
// fixed level is deterministic, preserving the store's idempotent-write
// guarantee: same key ⇒ same record bytes.
func deflatePayload(payload []byte) []byte {
	var b bytes.Buffer
	zw, err := flate.NewWriter(&b, flate.DefaultCompression)
	if err != nil {
		return nil
	}
	if _, err := zw.Write(payload); err != nil {
		return nil
	}
	if err := zw.Close(); err != nil {
		return nil
	}
	if b.Len() >= len(payload) {
		return nil
	}
	return b.Bytes()
}

// encodeRecord assembles the on-disk record: a three-line header (magic,
// full key, payload length + SHA-256, plus a compression flag when the
// payload deflates smaller) followed by the payload bytes. Snapshot JSON
// compresses several-fold, so more configurations fit under a shared
// directory's -store-max-bytes cap.
func encodeRecord(key string, payload []byte) []byte {
	flag := ""
	if z := deflatePayload(payload); z != nil {
		payload, flag = z, " "+flagDeflate
	}
	sum := sha256.Sum256(payload)
	var b bytes.Buffer
	b.Grow(len(Magic) + len(key) + len(payload) + 96)
	fmt.Fprintf(&b, "%s\n%s\n%d %s%s\n", Magic, key, len(payload), hex.EncodeToString(sum[:]), flag)
	b.Write(payload)
	return b.Bytes()
}

// decodeRecord validates a record file's bytes against the expected key and
// returns the payload. Any violation — wrong magic, wrong key (a hash
// collision or a misplaced file), bad length, checksum mismatch — is an
// error the callers translate into a miss.
func decodeRecord(data []byte, key string) ([]byte, error) {
	rest := data
	next := func() (string, error) {
		i := bytes.IndexByte(rest, '\n')
		if i < 0 {
			return "", errors.New("truncated header")
		}
		line := string(rest[:i])
		rest = rest[i+1:]
		return line, nil
	}
	magic, err := next()
	if err != nil {
		return nil, err
	}
	if magic != Magic {
		return nil, fmt.Errorf("bad magic %q", magic)
	}
	gotKey, err := next()
	if err != nil {
		return nil, err
	}
	if gotKey != key {
		return nil, fmt.Errorf("record holds key %q", gotKey)
	}
	sums, err := next()
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(sums)
	if len(fields) != 2 && len(fields) != 3 {
		return nil, fmt.Errorf("bad checksum line %q", sums)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil {
		return nil, fmt.Errorf("bad checksum line %q", sums)
	}
	compressed := false
	if len(fields) == 3 {
		if fields[2] != flagDeflate {
			return nil, fmt.Errorf("unknown payload flag %q", fields[2])
		}
		compressed = true
	}
	if n != len(rest) {
		return nil, fmt.Errorf("payload is %d bytes, header says %d", len(rest), n)
	}
	sum := sha256.Sum256(rest)
	if hex.EncodeToString(sum[:]) != fields[1] {
		return nil, errors.New("payload checksum mismatch")
	}
	if !compressed {
		return rest, nil
	}
	zr := flate.NewReader(bytes.NewReader(rest))
	payload, err := io.ReadAll(zr)
	if err == nil {
		err = zr.Close()
	}
	if err != nil {
		return nil, fmt.Errorf("inflating payload: %w", err)
	}
	return payload, nil
}

// errBadKey rejects keys the line-oriented header cannot carry. Canonical
// configuration keys never contain newlines; this guards against misuse.
var errBadKey = errors.New("store: key contains a newline")

// corruptError marks a validation failure — a record that exists but fails
// decodeRecord — as distinct from an I/O failure. Only validation failures
// quarantine the file: an injected or transient read error must never
// banish a healthy record.
type corruptError struct{ err error }

func (e *corruptError) Error() string { return e.err.Error() }
func (e *corruptError) Unwrap() error { return e.err }

// read loads and validates the record for key without touching counters.
// A missing record returns fs.ErrNotExist; anything else invalid returns a
// descriptive error.
func (s *Store) read(key string) ([]byte, error) {
	if strings.ContainsRune(key, '\n') {
		return nil, errBadKey
	}
	if f, ok := s.siteRead.Fire(); ok && f.Err != nil {
		return nil, f.Err
	}
	t := obs.StartTimer()
	defer t.Observe(histRead)
	data, err := os.ReadFile(s.Path(key))
	if err != nil {
		return nil, err
	}
	payload, err := decodeRecord(data, key)
	if err != nil {
		return nil, &corruptError{err}
	}
	return payload, nil
}

// finish translates a read's outcome into counters and the (payload, ok)
// shape: valid records count a hit and touch the record's read time (the
// GC's eviction clock); everything else counts a miss, with validation
// failures additionally counted as corrupt and the failing file
// quarantined to a .bad sibling so it is validated once, not forever.
func (s *Store) finish(key string, payload []byte, err error) ([]byte, bool) {
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) && !errors.Is(err, errBadKey) {
			s.corrupt.Add(1)
			var ce *corruptError
			if errors.As(err, &ce) {
				s.quarantine(key)
			}
		}
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	now := time.Now()
	_ = os.Chtimes(s.Path(key), now, now) // best effort: eviction recency only
	return payload, true
}

// Get returns the stored payload for key. Missing, truncated, or corrupt
// records are misses; a hit refreshes the record's eviction recency.
func (s *Store) Get(key string) ([]byte, bool) {
	payload, err := s.read(key)
	return s.finish(key, payload, err)
}

// quarantine renames key's record to its .bad sibling after re-validating
// under the per-path rename lock — a concurrent Put may have just replaced
// the corrupt file with a fresh record, which must not be banished. The
// accounting drops the file like an eviction would; GC reclaims old .bad
// files by age.
func (s *Store) quarantine(key string) {
	path := s.Path(key)
	mu := renameLock(path)
	mu.Lock()
	defer mu.Unlock()
	data, err := os.ReadFile(path)
	if err != nil {
		return // already gone (evicted, repaired elsewhere, or racing)
	}
	if _, derr := decodeRecord(data, key); derr == nil {
		return // repaired between the failed read and now
	}
	if err := os.Rename(path, path+badExt); err != nil {
		return // transient; the next failed validation retries
	}
	s.quarantined.Add(1)
	s.records.Add(-1)
	s.bytes.Add(-int64(len(data)))
	slog.Warn("store record quarantined",
		"component", "store", "key", key, "path", path+badExt, "bytes", len(data))
}

// Put writes the payload for key: temp file in the record's directory,
// sync, atomic rename. An existing record — valid or corrupt — is replaced
// wholesale, which is also how damaged records are repaired by the next
// write-through. When the write pushes the store past its size cap, a GC
// pass runs before returning.
//
// While the store is degraded (DegradeAfter consecutive write failures),
// Put bypasses the disk and returns ErrDegraded, except for one rationed
// probe write per ReprobeInterval; a probe success lifts the degradation.
func (s *Store) Put(key string, payload []byte) error {
	if strings.ContainsRune(key, '\n') {
		s.writeErrors.Add(1)
		return errBadKey
	}
	if s.degraded.Load() && !s.probeAllowed() {
		s.degradedSkips.Add(1)
		return ErrDegraded
	}
	rec := encodeRecord(key, payload)
	path := s.Path(key)
	wt := obs.StartTimer()
	err := s.writeFile(path, rec)
	wt.Observe(histWrite)
	if err != nil {
		s.writeErrors.Add(1)
		s.noteWriteFailure()
		return fmt.Errorf("store: %w", err)
	}
	s.noteWriteSuccess()
	s.writes.Add(1)
	if s.maxBytes > 0 && s.bytes.Load() > s.maxBytes {
		// The record is durably in place; a failed collection pass must not
		// report the write as failed. It is counted (GCErrors) so a cap that
		// silently stopped being enforced is observable.
		if _, _, err := s.sweep(s.maxBytes); err != nil {
			s.gcErrors.Add(1)
		}
	}
	return nil
}

// probeAllowed rations degraded-mode probe writes: at most one attempt per
// ReprobeInterval wins the CAS and goes to the disk; everyone else bypasses.
func (s *Store) probeAllowed() bool {
	now := time.Now().UnixNano()
	next := s.nextProbe.Load()
	if now < next {
		return false
	}
	return s.nextProbe.CompareAndSwap(next, now+s.reprobe.Nanoseconds())
}

// noteWriteFailure advances the consecutive-failure count and trips
// degraded mode at the threshold.
func (s *Store) noteWriteFailure() {
	n := s.consecWriteFails.Add(1)
	if s.degradeAfter > 0 && n >= int64(s.degradeAfter) && s.degraded.CompareAndSwap(false, true) {
		s.degradeTrips.Add(1)
		s.nextProbe.Store(time.Now().Add(s.reprobe).UnixNano())
		slog.Error("store tripped into degraded (read-only) mode",
			"component", "store", "dir", s.dir,
			"consecutiveWriteFailures", n, "reprobeInterval", s.reprobe)
	}
}

// noteWriteSuccess resets the failure streak and lifts degraded mode — a
// successful probe write is the recovery signal.
func (s *Store) noteWriteSuccess() {
	s.consecWriteFails.Store(0)
	if s.degraded.CompareAndSwap(true, false) {
		slog.Info("store degraded mode lifted by a successful probe write",
			"component", "store", "dir", s.dir)
	}
}

// writeFile is the atomic write: unique temp name (pid + per-handle
// sequence, so concurrent replicas never collide), sync before rename so a
// crash after rename cannot leave a hole-filled record. The write, fsync,
// and rename steps each pass a fault site; the torn site truncates what
// reaches the disk while the rename still lands — the classic torn write
// the validation layer must catch.
func (s *Store) writeFile(path string, rec []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if f, ok := s.siteWrite.Fire(); ok && f.Err != nil {
		return f.Err
	}
	if _, ok := s.siteTorn.Fire(); ok {
		rec = rec[:len(rec)/2] // the fired outcome is the truncation itself
	}
	tmp := filepath.Join(dir, fmt.Sprintf("%s%d-%d", tmpPrefix, os.Getpid(), tmpSeq.Add(1)))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(rec)
	if err == nil {
		ft := obs.StartTimer()
		err = f.Sync()
		ft.Observe(histFsync)
		if ff, ok := s.siteFsync.Fire(); ok && ff.Err != nil && err == nil {
			err = ff.Err
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		if ff, ok := s.siteRename.Fire(); ok && ff.Err != nil {
			err = ff.Err
		}
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	// Stat (what did this write replace?), rename, and the counter update
	// must be one atomic step per path: see renameMu. The accounting is
	// exact for any number of handles in this process; only other
	// processes' writes stay invisible until the next sweep.
	mu := renameLock(path)
	mu.Lock()
	defer mu.Unlock()
	var prev int64
	hadPrev := false
	if fi, serr := os.Stat(path); serr == nil {
		prev, hadPrev = fi.Size(), true
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if !hadPrev {
		s.records.Add(1)
	}
	s.bytes.Add(int64(len(rec)) - prev)
	return nil
}

// GetStats returns the stored result for key decoded back into first-class
// run statistics. The rebuilt Stats re-snapshot to byte-identical export
// bytes (see swarm.StatsFromSnapshot), which is what keeps store-served
// responses indistinguishable from computed ones.
func (s *Store) GetStats(key string) (*swarm.Stats, bool) {
	payload, err := s.read(key)
	var st *swarm.Stats
	if err == nil {
		var sn metrics.Snapshot
		if uerr := json.Unmarshal(payload, &sn); uerr != nil {
			err = fmt.Errorf("record payload: %w", uerr)
		} else {
			st = swarm.StatsFromSnapshot(&sn)
		}
	}
	if _, ok := s.finish(key, payload, err); !ok {
		return nil, false
	}
	return st, true
}

// PutStats writes a run's result through as its canonical metrics.Snapshot
// export bytes — the same compact JSON encoding the NDJSON sweep stream
// uses for a record's stats object.
func (s *Store) PutStats(key string, st *swarm.Stats) error {
	payload, err := json.Marshal(st.Snapshot())
	if err != nil {
		s.writeErrors.Add(1)
		return fmt.Errorf("store: encoding %s: %w", key, err)
	}
	return s.Put(key, payload)
}

// Counters snapshots the operational counters.
func (s *Store) Counters() Counters {
	return Counters{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Writes:        s.writes.Load(),
		Corrupt:       s.corrupt.Load(),
		Evictions:     s.evictions.Load(),
		WriteErrors:   s.writeErrors.Load(),
		GCErrors:      s.gcErrors.Load(),
		Quarantined:   s.quarantined.Load(),
		DegradeTrips:  s.degradeTrips.Load(),
		DegradedSkips: s.degradedSkips.Load(),
		Degraded:      s.degraded.Load(),
		Bytes:         s.bytes.Load(),
		Records:       s.records.Load(),
	}
}

// Degraded reports whether the store is currently in degraded (read-only)
// mode.
func (s *Store) Degraded() bool { return s.degraded.Load() }

// GC runs one collection pass against the configured cap and returns how
// many records it evicted. It also re-synchronizes the byte/record
// accounting with the directory (which another replica may have grown) and
// sweeps stale temp files. Put triggers it automatically; it is exported
// for operational tooling and tests.
func (s *Store) GC() (evicted int, err error) {
	evicted, _, err = s.sweep(s.maxBytes)
	if err != nil {
		s.gcErrors.Add(1)
	}
	return evicted, err
}

// storeRec is one record file seen by a sweep.
type storeRec struct {
	path  string
	size  int64
	mtime time.Time
}

// sweep walks the directory, reclaims stale temp files, rebuilds the exact
// byte/record accounting, and — when cap > 0 — evicts least-recently-read
// records until the resident bytes fit the cap. Ties on read time break by
// path so concurrent replicas converge on the same eviction order.
func (s *Store) sweep(limit int64) (evicted int, total int64, err error) {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()

	var recs []storeRec
	staleBefore := time.Now().Add(-TmpMaxAge)
	walkErr := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			// A concurrently evicted file or directory is not a failure.
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		name := d.Name()
		switch {
		case strings.HasPrefix(name, tmpPrefix), strings.HasSuffix(name, badExt):
			// Crashed writers' debris and old quarantined records are both
			// reclaimed by age; fresh .bad files stay for postmortems.
			if fi, ierr := d.Info(); ierr == nil && fi.ModTime().Before(staleBefore) {
				_ = os.Remove(path)
			}
		case strings.HasSuffix(name, recExt):
			fi, ierr := d.Info()
			if ierr != nil {
				return nil // raced with an eviction
			}
			recs = append(recs, storeRec{path: path, size: fi.Size(), mtime: fi.ModTime()})
		}
		return nil
	})
	if walkErr != nil {
		return 0, 0, walkErr
	}
	for _, r := range recs {
		total += r.size
	}
	if limit > 0 && total > limit {
		sort.Slice(recs, func(i, j int) bool {
			if !recs[i].mtime.Equal(recs[j].mtime) {
				return recs[i].mtime.Before(recs[j].mtime)
			}
			return recs[i].path < recs[j].path
		})
		for _, r := range recs {
			if total <= limit {
				break
			}
			rmErr := error(nil)
			if f, ok := s.siteGCRemove.Fire(); ok && f.Err != nil {
				rmErr = f.Err
			} else {
				rmErr = os.Remove(r.path)
			}
			if rmErr != nil && !errors.Is(rmErr, fs.ErrNotExist) {
				// One uncooperative record must not abort the pass: count it
				// (the cap may be under-enforced) and keep evicting others;
				// the next pass retries it.
				s.gcErrors.Add(1)
				continue
			}
			total -= r.size
			evicted++
		}
	}
	s.bytes.Store(total)
	s.records.Store(int64(len(recs) - evicted))
	s.evictions.Add(uint64(evicted))
	return evicted, total, nil
}
