// Fault-injection tests for the store's hardening layers: injected write,
// fsync, rename, and torn-write failures on the disk path; degraded-mode
// trip, rationed probe writes, and recovery; quarantine of validation
// failures (and only validation failures — injected read errors must not
// banish healthy records); and per-record GC eviction failures counting
// without aborting the pass. All sites live in fault.Default, so every test
// defers a Reset.
package store_test

import (
	"errors"
	"os"
	"testing"
	"time"

	"swarmhints/internal/fault"
	"swarmhints/internal/store"
)

func openWith(t *testing.T, dir string, opt store.Options) *store.Store {
	t.Helper()
	s, err := store.OpenWith(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInjectedWriteFsyncRenameFailures(t *testing.T) {
	defer fault.Default.Reset()
	s := openWith(t, t.TempDir(), store.Options{})

	for _, site := range []string{"store.write", "store.fsync", "store.rename"} {
		fault.Default.Arm(site, fault.Plan{Every: 1, Times: 1, Fail: true})
		if err := s.Put("k-"+site, []byte("payload")); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("Put with %s armed: %v, want ErrInjected", site, err)
		}
		// The site's Times cap is exhausted: the retry lands.
		if err := s.Put("k-"+site, []byte("payload")); err != nil {
			t.Fatalf("Put after %s exhausted: %v", site, err)
		}
		if got, ok := s.Get("k-" + site); !ok || string(got) != "payload" {
			t.Fatalf("Get after repaired %s: %q ok=%v", site, got, ok)
		}
	}
	if c := s.Counters(); c.WriteErrors != 3 {
		t.Fatalf("WriteErrors = %d, want 3", c.WriteErrors)
	}
	// No failed write leaves temp debris behind.
	ents, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name()[0] == '.' {
			t.Fatalf("temp debris after injected failures: %s", e.Name())
		}
	}
}

func TestTornWriteQuarantinedOnRead(t *testing.T) {
	defer fault.Default.Reset()
	s := openWith(t, t.TempDir(), store.Options{})

	fault.Default.Arm("store.torn", fault.Plan{Every: 1, Times: 1})
	if err := s.Put("torn", []byte("full payload bytes")); err != nil {
		t.Fatalf("torn Put should land its rename: %v", err)
	}
	if _, err := os.Stat(s.Path("torn")); err != nil {
		t.Fatalf("torn record missing: %v", err)
	}
	// The half-written record fails validation: a miss, and the file is
	// quarantined to its .bad sibling instead of being re-validated forever.
	if _, ok := s.Get("torn"); ok {
		t.Fatal("torn record read as a hit")
	}
	if _, err := os.Stat(s.Path("torn")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("torn record still in place after quarantine: %v", err)
	}
	if _, err := os.Stat(s.Path("torn") + ".bad"); err != nil {
		t.Fatalf("quarantined .bad file missing: %v", err)
	}
	c := s.Counters()
	if c.Corrupt != 1 || c.Quarantined != 1 || c.Records != 0 || c.Bytes != 0 {
		t.Fatalf("counters after quarantine: %+v", c)
	}
	// The next write-through recreates the record cleanly.
	if err := s.Put("torn", []byte("full payload bytes")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("torn"); !ok || string(got) != "full payload bytes" {
		t.Fatalf("repaired record: %q ok=%v", got, ok)
	}
}

func TestInjectedReadErrorDoesNotQuarantine(t *testing.T) {
	defer fault.Default.Reset()
	s := openWith(t, t.TempDir(), store.Options{})
	if err := s.Put("k", []byte("healthy")); err != nil {
		t.Fatal(err)
	}
	fault.Default.Arm("store.read", fault.Plan{Every: 1, Times: 1, Fail: true})
	if _, ok := s.Get("k"); ok {
		t.Fatal("injected read error served a hit")
	}
	// A transient I/O failure is a miss, never a verdict on the record: the
	// file must still be in place and readable once the fault passes.
	if _, err := os.Stat(s.Path("k")); err != nil {
		t.Fatalf("healthy record quarantined by an injected read error: %v", err)
	}
	if got, ok := s.Get("k"); !ok || string(got) != "healthy" {
		t.Fatalf("record after transient read error: %q ok=%v", got, ok)
	}
	if c := s.Counters(); c.Quarantined != 0 {
		t.Fatalf("Quarantined = %d, want 0", c.Quarantined)
	}
}

func TestDegradedModeTripProbeRecover(t *testing.T) {
	defer fault.Default.Reset()
	s := openWith(t, t.TempDir(), store.Options{
		DegradeAfter:    2,
		ReprobeInterval: 30 * time.Millisecond,
	})

	// Two consecutive write failures trip degraded mode.
	fault.Default.Arm("store.write", fault.Plan{Every: 1, Fail: true})
	for i := 0; i < 2; i++ {
		if err := s.Put("k", []byte("v")); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("write %d: %v, want ErrInjected", i, err)
		}
	}
	if !s.Degraded() {
		t.Fatal("store not degraded after DegradeAfter consecutive failures")
	}
	// While degraded, writes bypass the disk entirely — the still-armed
	// write site must see no hits from them.
	before := fault.Default.Snapshot()["store.write"].Hits
	skips := 0
	for i := 0; i < 5; i++ {
		if err := s.Put("k", []byte("v")); errors.Is(err, store.ErrDegraded) {
			skips++
		}
	}
	if skips != 5 {
		t.Fatalf("degraded skips = %d, want 5 (probe leaked inside the interval)", skips)
	}
	if after := fault.Default.Snapshot()["store.write"].Hits; after != before {
		t.Fatalf("degraded Puts reached the disk path: %d hits -> %d", before, after)
	}
	c := s.Counters()
	if c.DegradeTrips != 1 || c.DegradedSkips != 5 || !c.Degraded {
		t.Fatalf("counters while degraded: %+v", c)
	}

	// Disk recovers; after the reprobe interval one probe write goes
	// through, succeeds, and lifts the degradation.
	fault.Default.Reset()
	deadline := time.Now().Add(5 * time.Second)
	for s.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("store never recovered after the fault cleared")
		}
		time.Sleep(10 * time.Millisecond)
		_ = s.Put("k", []byte("recovered"))
	}
	if err := s.Put("k2", []byte("post-recovery")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("k2"); !ok || string(got) != "post-recovery" {
		t.Fatalf("post-recovery Get: %q ok=%v", got, ok)
	}
}

func TestGCEvictionFailureSkipsAndCounts(t *testing.T) {
	defer fault.Default.Reset()
	dir := t.TempDir()
	w := openWith(t, dir, store.Options{}) // unbounded: Puts never auto-GC

	payload := make([]byte, 256)
	keys := []string{"a", "b", "c", "d"}
	for i, k := range keys {
		if err := w.Put(k, payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes give the sweep a stable eviction order.
		old := time.Now().Add(time.Duration(i-10) * time.Minute)
		if err := os.Chtimes(w.Path(k), old, old); err != nil {
			t.Fatal(err)
		}
	}
	s := openWith(t, dir, store.Options{MaxBytes: 1}) // everything is over cap
	base := s.Counters().GCErrors

	// The first eviction of the pass fails; the pass must skip it, count
	// it, and keep evicting the rest.
	fault.Default.Arm("store.gc.remove", fault.Plan{Every: 1, Times: 1, Fail: true})
	evicted, err := s.GC()
	if err != nil {
		t.Fatalf("GC aborted on a single uncooperative record: %v", err)
	}
	if evicted != len(keys)-1 {
		t.Fatalf("evicted %d, want %d (skip one, evict the rest)", evicted, len(keys)-1)
	}
	if got := s.Counters().GCErrors - base; got != 1 {
		t.Fatalf("GCErrors advanced by %d, want 1", got)
	}
	// The survivor is the record whose removal failed — the oldest.
	if _, err := os.Stat(s.Path("a")); err != nil {
		t.Fatalf("skipped record should survive: %v", err)
	}
	// The next pass retries and clears it.
	if evicted, err = s.GC(); err != nil || evicted != 1 {
		t.Fatalf("retry pass: evicted=%d err=%v", evicted, err)
	}
}

func TestScopedFaultTargetsOneHandle(t *testing.T) {
	defer fault.Default.Reset()
	s1 := openWith(t, t.TempDir(), store.Options{FaultScope: "r1"})
	s2 := openWith(t, t.TempDir(), store.Options{FaultScope: "r2"})

	fault.Default.Arm("r1.store.write", fault.Plan{Every: 1, Fail: true})
	if err := s1.Put("k", []byte("v")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("scoped handle unaffected: %v", err)
	}
	if err := s2.Put("k", []byte("v")); err != nil {
		t.Fatalf("sibling scope hit by r1's fault: %v", err)
	}
}
