// Durability and sharing tests for the persistent result store: every way a
// record can be damaged — truncation, bit flips, zero-length files, torn
// mid-write temp files, records filed under the wrong key — must read as a
// miss and be repaired by the next write-through; concurrent writers on one
// directory must converge on a single valid record; and the size-cap GC
// must evict oldest-read first. The package is tested from outside
// (store_test) so the round-trip tests can drive real simulations through
// internal/exp, which itself imports the store.
package store_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"swarmhints/internal/bench"
	"swarmhints/internal/exp"
	"swarmhints/internal/store"
	"swarmhints/swarm"
)

func open(t *testing.T, dir string, maxBytes int64) *store.Store {
	t.Helper()
	s, err := store.Open(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPutGetRoundTrip pins the bytes layer: what goes in comes out, hits
// and misses count, and distinct keys get distinct record files.
func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	if _, ok := s.Get("missing"); ok {
		t.Fatal("empty store served a hit")
	}
	payload := []byte(`{"cycles":42}`)
	if err := s.Put("tiny/7/des/Random/4/false", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("tiny/7/des/Random/4/false")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: got %q ok=%v", got, ok)
	}
	c := s.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.Writes != 1 || c.Records != 1 {
		t.Fatalf("counters after one miss, one put, one hit: %+v", c)
	}
	if c.Bytes <= int64(len(payload)) {
		t.Fatalf("resident bytes %d should exceed the payload (header on top)", c.Bytes)
	}
}

// TestStatsRoundTripBytesIdentical is the store half of the acceptance
// criterion "byte-identical across compute/memory-cache/disk-store paths":
// a real simulation's statistics, written through and read back, must
// re-snapshot to exactly the payload bytes on disk — including a profiled
// run's classification block and the per-tile counters.
func TestStatsRoundTripBytesIdentical(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	for _, profile := range []bool{false, true} {
		p := exp.Point{Name: "des", Kind: swarm.Hints, Cores: 4, Profile: profile}
		st, err := exp.RunPoint(p, bench.Tiny, 7, true)
		if err != nil {
			t.Fatal(err)
		}
		key := exp.ConfigKey(bench.Tiny, 7, p)
		if err := s.PutStats(key, st); err != nil {
			t.Fatal(err)
		}
		back, ok := s.GetStats(key)
		if !ok {
			t.Fatalf("profile=%v: stored stats missing", profile)
		}
		want, err := json.Marshal(st.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(back.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("profile=%v: store round trip changed the snapshot bytes", profile)
		}
		raw, ok := s.Get(key)
		if !ok || !bytes.Equal(raw, want) {
			t.Errorf("profile=%v: on-disk payload differs from the canonical snapshot bytes", profile)
		}
	}
}

// corrupt damages the record file for key with fn and returns its path.
func corrupt(t *testing.T, s *store.Store, key string, fn func([]byte) []byte) string {
	t.Helper()
	path := s.Path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDamagedRecordsReadAsMissesAndRepair is the durability satellite:
// truncated, bit-flipped, zero-length, and wrong-key records are misses
// (counted corrupt), and the next write-through repairs them in place.
func TestDamagedRecordsReadAsMissesAndRepair(t *testing.T) {
	const key = "tiny/7/des/Hints/4/false"
	payload := []byte(`{"cycles":7,"cores":4}`)
	cases := []struct {
		name string
		fn   func([]byte) []byte
	}{
		{"zero-length", func([]byte) []byte { return nil }},
		{"truncated-header", func(d []byte) []byte { return d[:10] }},
		{"truncated-payload", func(d []byte) []byte { return d[:len(d)-5] }},
		{"bit-flip", func(d []byte) []byte {
			out := append([]byte(nil), d...)
			out[len(out)-3] ^= 0x40
			return out
		}},
		{"wrong-magic", func(d []byte) []byte { return append([]byte("not-a-store\n"), d...) }},
		{"extra-tail", func(d []byte) []byte { return append(append([]byte(nil), d...), "junk"...) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := open(t, t.TempDir(), 0)
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			corrupt(t, s, key, tc.fn)
			if _, ok := s.Get(key); ok {
				t.Fatal("damaged record served as a hit")
			}
			if c := s.Counters(); c.Corrupt != 1 {
				t.Fatalf("corrupt counter = %d, want 1", c.Corrupt)
			}
			// The next write-through repairs the record wholesale.
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			got, ok := s.Get(key)
			if !ok || !bytes.Equal(got, payload) {
				t.Fatalf("repair failed: got %q ok=%v", got, ok)
			}
		})
	}

	// A record filed under another key's path (hash collision, misplaced
	// file) must also miss: the header carries the full key precisely so
	// content addressing never serves the wrong configuration.
	t.Run("wrong-key", func(t *testing.T) {
		s := open(t, t.TempDir(), 0)
		if err := s.Put("other-key", payload); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(s.Path("other-key"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(s.Path(key)), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(s.Path(key), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(key); ok {
			t.Fatal("record for another key served as a hit")
		}
	})
}

// TestMidWriteCrashSimulation leaves a torn temp file where a crashed
// writer would: reads miss, a write-through repairs, and Open sweeps the
// debris once it is stale.
func TestMidWriteCrashSimulation(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	const key = "tiny/7/bfs/Random/1/false"
	recDir := filepath.Dir(s.Path(key))
	if err := os.MkdirAll(recDir, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(recDir, ".tmp-9999-1")
	if err := os.WriteFile(tmp, []byte("swarmhints-store.v1\ntiny/7/bfs"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(key); ok {
		t.Fatal("torn temp file observed as a record")
	}
	payload := []byte(`{"cycles":1}`)
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatal("write-through after a torn write did not serve")
	}

	// Fresh debris survives Open (it could be a live writer elsewhere)...
	if _, err := store.Open(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Fatalf("fresh temp file swept too early: %v", err)
	}
	// ...stale debris does not.
	old := time.Now().Add(-2 * store.TmpMaxAge)
	if err := os.Chtimes(tmp, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Open(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale temp file not swept by Open: %v", err)
	}
}

// TestConcurrentWritersOneDirectory is the fleet-sharing satellite: two
// store handles (as two swarmd replicas would hold) hammer the same key in
// the same directory; the result must be exactly one valid record whose
// bytes read back identically through both handles, with no temp debris.
func TestConcurrentWritersOneDirectory(t *testing.T) {
	dir := t.TempDir()
	a := open(t, dir, 0)
	b := open(t, dir, 0)
	const key = "tiny/7/mis/LBHints/16/false"
	payload := []byte(strings.Repeat(`{"x":1}`, 64))

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		s := a
		if i%2 == 1 {
			s = b
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				if err := s.Put(key, payload); err != nil {
					t.Error(err)
				}
				if got, ok := s.Get(key); ok && !bytes.Equal(got, payload) {
					t.Error("read-back bytes differ mid-race")
				}
			}
		}()
	}
	wg.Wait()

	ga, oka := a.Get(key)
	gb, okb := b.Get(key)
	if !oka || !okb || !bytes.Equal(ga, gb) || !bytes.Equal(ga, payload) {
		t.Fatal("handles disagree after concurrent writes")
	}
	files := 0
	var recSize int64
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			files++
			if !strings.HasSuffix(path, ".rec") {
				t.Errorf("leftover non-record file %s", path)
			}
			if fi, ferr := d.Info(); ferr == nil {
				recSize = fi.Size()
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if files != 1 {
		t.Fatalf("directory holds %d files, want exactly 1 record", files)
	}

	// Exact accounting under same-key racers: the stat→rename window is
	// serialized per path, so across both handles exactly one record — and
	// exactly its on-disk bytes — is counted, no matter how the 128 writes
	// interleaved. Before the fix, two writers could both observe "no
	// previous record" and this sum came out 2 (or more).
	ca, cb := a.Counters(), b.Counters()
	if got := ca.Records + cb.Records; got != 1 {
		t.Errorf("handles count %d records in sum (a=%d b=%d), want exactly 1", got, ca.Records, cb.Records)
	}
	if got := ca.Bytes + cb.Bytes; got != recSize {
		t.Errorf("handles count %d bytes in sum (a=%d b=%d), want exactly %d", got, ca.Bytes, cb.Bytes, recSize)
	}
	if ca.Writes != 64 || cb.Writes != 64 {
		t.Errorf("writes = a:%d b:%d, want 64 each", ca.Writes, cb.Writes)
	}
	if ca.WriteErrors != 0 || cb.WriteErrors != 0 {
		t.Errorf("write errors = a:%d b:%d, want none", ca.WriteErrors, cb.WriteErrors)
	}

	// Creation races are where the window bites hardest: every writer of a
	// fresh key stats a path that does not exist yet, so without the
	// per-path serialization several of them count "new record" for the
	// same file. Hammer many fresh keys with all writers released at once.
	const rounds = 64
	for round := 0; round < rounds; round++ {
		rkey := fmt.Sprintf("race/%d/mis/LBHints/16/false", round)
		start := make(chan struct{})
		for i := 0; i < 16; i++ {
			s := a
			if i%2 == 1 {
				s = b
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if err := s.Put(rkey, payload); err != nil {
					t.Error(err)
				}
			}()
		}
		close(start)
		wg.Wait()
	}
	var totalSize int64
	files = 0
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			files++
			fi, ferr := d.Info()
			if ferr != nil {
				return ferr
			}
			totalSize += fi.Size()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if files != 1+rounds {
		t.Fatalf("directory holds %d files, want %d records", files, 1+rounds)
	}
	ca, cb = a.Counters(), b.Counters()
	if got := ca.Records + cb.Records; got != 1+rounds {
		t.Errorf("handles count %d records in sum (a=%d b=%d), want exactly %d", got, ca.Records, cb.Records, 1+rounds)
	}
	if got := ca.Bytes + cb.Bytes; got != totalSize {
		t.Errorf("handles count %d bytes in sum (a=%d b=%d), want exactly %d", got, ca.Bytes, cb.Bytes, totalSize)
	}

	// A sweep re-synchronizes each handle to the directory's exact
	// contents — the cross-process reconciliation path.
	for _, s := range []*store.Store{a, b} {
		if _, err := s.GC(); err != nil {
			t.Fatal(err)
		}
		if c := s.Counters(); c.Records != 1+rounds || c.Bytes != totalSize {
			t.Errorf("post-GC counters records=%d bytes=%d, want %d/%d", c.Records, c.Bytes, 1+rounds, totalSize)
		}
	}
}

// TestGCEvictsOldestRead pins the size-cap policy: pushing the store past
// its cap evicts the records read longest ago, keeps the rest servable,
// and re-synchronizes the byte accounting.
func TestGCEvictsOldestRead(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(strings.Repeat("x", 256))
	// Generous cap while seeding so nothing evicts early.
	seeder := open(t, dir, 1<<20)
	keys := make([]string, 6)
	base := time.Now().Add(-time.Hour)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		if err := seeder.Put(keys[i], payload); err != nil {
			t.Fatal(err)
		}
		// Distinct, strictly increasing read times: key-0 is oldest-read.
		ts := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(seeder.Path(keys[i]), ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	perRec := seeder.Counters().Bytes / int64(len(keys))

	// Reopen with a cap that holds ~3 records and trigger GC with a fresh
	// write (which will itself be the most recently written).
	s := open(t, dir, 3*perRec+perRec/2)
	if err := s.Put("key-new", payload); err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.Evictions == 0 {
		t.Fatal("over-cap store evicted nothing")
	}
	if c.Bytes > s.MaxBytes() {
		t.Fatalf("resident bytes %d exceed cap %d after GC", c.Bytes, s.MaxBytes())
	}
	if _, ok := s.Get(keys[0]); ok {
		t.Error("oldest-read record survived GC")
	}
	if _, ok := s.Get("key-new"); !ok {
		t.Error("freshly written record evicted")
	}
	if _, ok := s.Get(keys[len(keys)-1]); !ok {
		t.Error("most recently read seed record evicted before older ones")
	}
}

// TestOpenRebuildsAccounting checks that a fresh handle on a warm directory
// sees the resident records without any writes of its own.
func TestOpenRebuildsAccounting(t *testing.T) {
	dir := t.TempDir()
	a := open(t, dir, 0)
	for i := 0; i < 4; i++ {
		if err := a.Put(fmt.Sprintf("k%d", i), []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	b := open(t, dir, 0)
	if c := b.Counters(); c.Records != 4 || c.Bytes != a.Counters().Bytes {
		t.Fatalf("reopened accounting %+v, want 4 records / %d bytes", c, a.Counters().Bytes)
	}
}

// TestBadKeyRejected: the line-oriented header cannot carry newlines, so
// such keys must fail loudly on write and miss on read.
func TestBadKeyRejected(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	if err := s.Put("a\nb", []byte("x")); err == nil {
		t.Fatal("newline key accepted")
	}
	if _, ok := s.Get("a\nb"); ok {
		t.Fatal("newline key served")
	}
	if c := s.Counters(); c.Corrupt != 0 {
		t.Fatalf("bad key miscounted as corruption: %+v", c)
	}
}

// TestCompressedRecordRoundTrip: a compressible payload is stored deflated
// (the record file is smaller than the payload, the header carries the
// flag in plain text) and reads back byte-identical.
func TestCompressedRecordRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	const key = "tiny/9/des/Hints/64/false"
	payload := []byte(`{"tiles":[` + strings.Repeat(`{"commitCycles":123456,"abortCycles":0},`, 200) + `{}]}`)
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	rec, err := os.ReadFile(s.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) >= len(payload) {
		t.Fatalf("record is %d bytes for a %d-byte compressible payload", len(rec), len(payload))
	}
	lines := bytes.SplitN(rec, []byte("\n"), 4)
	if len(lines) < 4 || !strings.HasSuffix(string(lines[2]), " deflate") {
		t.Fatalf("checksum line %q does not carry the deflate flag", lines[2])
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("compressed round trip: ok=%v, %d bytes back for %d in", ok, len(got), len(payload))
	}
}

// TestLegacyUncompressedRecordReads: records written before compression
// existed — plain payload, two-field checksum line — must keep reading.
func TestLegacyUncompressedRecordReads(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	const key = "tiny/9/des/Random/4/false"
	payload := []byte(`{"cycles":9,` + strings.Repeat(`"x":0,`, 100) + `"cores":4}`)
	sum := sha256.Sum256(payload)
	rec := fmt.Sprintf("%s\n%s\n%d %s\n%s", store.Magic, key, len(payload), hex.EncodeToString(sum[:]), payload)
	path := s.Path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(rec), 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("legacy record unreadable: ok=%v got %d bytes", ok, len(got))
	}
	if c := s.Counters(); c.Corrupt != 0 {
		t.Fatalf("legacy record miscounted as corrupt: %+v", c)
	}
}

// TestUnknownPayloadFlagIsMiss: a record carrying a flag this version does
// not understand reads as a corrupt miss, never as garbage payload bytes.
func TestUnknownPayloadFlagIsMiss(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	const key = "tiny/9/des/Stealing/4/false"
	payload := []byte(`{"cycles":1}`)
	sum := sha256.Sum256(payload)
	rec := fmt.Sprintf("%s\n%s\n%d %s zstd\n%s", store.Magic, key, len(payload), hex.EncodeToString(sum[:]), payload)
	path := s.Path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(rec), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("unknown flag served as a hit")
	}
	if c := s.Counters(); c.Corrupt != 1 {
		t.Fatalf("unknown flag not counted corrupt: %+v", c)
	}
}
