// Package exp is the experiment harness: one runner per table and figure of
// the paper's evaluation (Sec. II-C, IV, V, VI), each regenerating the same
// rows or series the paper reports, on the scaled synthetic inputs. The
// per-experiment index lives in DESIGN.md; measured-vs-paper shapes are
// recorded in EXPERIMENTS.md.
package exp

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"

	"swarmhints/internal/bench"
	"swarmhints/internal/metrics"
	"swarmhints/internal/runner"
	"swarmhints/internal/store"
	"swarmhints/swarm"
)

// Options configures a harness run.
type Options struct {
	Scale    bench.Scale
	Seed     int64
	Cores    []int // sweep; nil = default for scale
	MaxCores int   // single-point experiments; 0 = max of sweep
	Validate bool  // validate each run against the serial reference
	// Parallel bounds the worker goroutines used to execute independent
	// simulation runs concurrently (0 = GOMAXPROCS). Every run is an
	// isolated, deterministic engine, so results — and therefore every
	// figure and table — are byte-identical for any Parallel value.
	Parallel int
	// Exec, when non-nil, replaces direct point execution: every cache miss
	// is executed through it instead of RunPoint. The service layer
	// (internal/service) injects its shared result cache, request
	// coalescing, and global worker fleet here; results must be exactly
	// what RunPoint(p, Scale, Seed, Validate) would return.
	Exec func(ctx context.Context, p Point) (*swarm.Stats, error)
	// Gate, when non-nil, bounds the bespoke simulation runs that are not
	// cacheable Points (e.g. AblSerial's serialization-disabled runs) and
	// therefore cannot route through Exec: each such run acquires a slot
	// before simulating and calls the returned release after. The service
	// layer passes its worker-fleet semaphore so even bespoke runs respect
	// the global in-flight bound.
	Gate func(ctx context.Context) (release func(), err error)
	// Store, when non-nil, adds a persistent tier under the in-memory
	// result cache: every cache miss consults the store (keyed by
	// ConfigKey) before executing, and every executed result is written
	// through, so repeated CLI invocations reuse each other's runs. Ignored
	// when Exec is set — a pluggable executor (the swarmd service) owns its
	// own caching tiers.
	Store *store.Store
	// Seeds > 1 runs every point as that many seed replicas (workload
	// seeds ReplicaSeeds(Seed, Seeds)) and caches/exports the fixed-order
	// merged aggregate, with cross-seed dispersion in SeedSummary. Each
	// replica is store-tiered under its own per-seed ConfigKey, so raising
	// Seeds later only runs the seeds not yet on disk. Ignored when Exec
	// is set: a pluggable executor binds the harness seed.
	Seeds int
	// SeedShards bounds the shard jobs the Seeds replicas of one point are
	// partitioned into (0 = one replica per shard). Shard boundaries are a
	// pure function of (Seeds, SeedShards), so results are byte-identical
	// at any value.
	SeedShards int
}

// seeds returns the effective seed-replica count (minimum 1).
func (o Options) seeds() int {
	if o.Seeds > 1 && o.Exec == nil {
		return o.Seeds
	}
	return 1
}

// gate acquires a bespoke-run slot when a Gate is configured.
func (o Options) gate(ctx context.Context) (func(), error) {
	if o.Gate == nil {
		return func() {}, nil
	}
	return o.Gate(ctx)
}

// DefaultOptions returns the standard configuration for a scale.
func DefaultOptions(scale bench.Scale) Options {
	o := Options{Scale: scale, Seed: 7, Validate: true}
	switch scale {
	case bench.Tiny:
		o.Cores = []int{1, 4, 16, 64}
	case bench.Small:
		o.Cores = []int{1, 4, 16, 64, 144, 256}
	default:
		o.Cores = []int{1, 4, 16, 36, 64, 100, 144, 196, 256}
	}
	return o
}

func (o Options) maxCores() int {
	if o.MaxCores > 0 {
		return o.MaxCores
	}
	return o.Cores[len(o.Cores)-1]
}

// Runner executes experiments and caches per-configuration results so
// multi-figure invocations don't repeat runs. The cache is guarded by a
// mutex so Prime can fill it from the parallel sweep runner's worker pool.
type Runner struct {
	opt Options

	mu    sync.Mutex
	cache map[string]*swarm.Stats
	pts   map[string]Point // configuration behind each cache key, for Export
}

// NewRunner builds a runner.
func NewRunner(opt Options) *Runner {
	return &Runner{opt: opt, cache: make(map[string]*swarm.Stats), pts: make(map[string]Point)}
}

// Point identifies one simulation configuration: a benchmark run under a
// scheduler at a core count, optionally with access profiling.
type Point struct {
	Name    string
	Kind    swarm.SchedKind
	Cores   int
	Profile bool
}

// Key is the canonical configuration key: it identifies one simulation
// point within a (scale, seed) harness. The experiment cache, the export
// sort order, and the service layer's shared result cache
// (internal/service) all key on it.
func (p Point) Key() string {
	return fmt.Sprintf("%s/%v/%d/%v", p.Name, p.Kind, p.Cores, p.Profile)
}

// ConfigKey is the canonical fully-qualified configuration key: the
// (scale, seed) harness prefix followed by the point key. It is the one key
// every result tier shares — the swarmd service's LRU (service.Config.Key)
// and the persistent on-disk store (internal/store) both key on exactly
// these bytes, which is what lets the CLIs, the experiment harness, and a
// fleet of swarmd replicas reuse each other's results.
func ConfigKey(scale bench.Scale, seed int64, p Point) string {
	return fmt.Sprintf("%s/%d/%s", scale, seed, p.Key())
}

// MaxPointCycles is the watchdog bound every canonical configuration point
// runs under. Exported so other executors of canonical points (swarmsim's
// default-queue sweep runs) use the same bound — a point's outcome must not
// depend on which tool ran it.
const MaxPointCycles = 20_000_000_000

// RunPoint executes one configuration from scratch: build the benchmark at
// (scale, seed), run it on the paper's scaled machine, and optionally check
// the result against the serial reference. It is the single execution path
// behind every harness cache miss — the experiment Runner and the swarmd
// service both call it, which is what makes their outputs byte-identical
// for the same configuration.
func RunPoint(p Point, scale bench.Scale, seed int64, validate bool) (*swarm.Stats, error) {
	inst, err := bench.Build(p.Name, scale, seed)
	if err != nil {
		return nil, err
	}
	cfg := swarm.ScaledConfig().WithCores(p.Cores)
	cfg.Scheduler = p.Kind
	cfg.Profile = p.Profile
	cfg.MaxCycles = MaxPointCycles
	st, err := inst.Prog.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("%s under %v at %d cores: %w", p.Name, p.Kind, p.Cores, err)
	}
	if validate {
		if err := inst.Validate(); err != nil {
			return nil, fmt.Errorf("%s under %v at %d cores failed validation: %w", p.Name, p.Kind, p.Cores, err)
		}
	}
	return st, nil
}

// Run executes one (benchmark, scheduler, cores) point, with optional
// access profiling, validating against the serial reference when enabled.
func (r *Runner) Run(ctx context.Context, name string, kind swarm.SchedKind, cores int, profile bool) (*swarm.Stats, error) {
	p := Point{Name: name, Kind: kind, Cores: cores, Profile: profile}
	key := p.Key()
	r.mu.Lock()
	st, ok := r.cache[key]
	r.mu.Unlock()
	if ok {
		return st, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st, err := r.runPoint(ctx, p)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.cache[key] = st
	r.pts[key] = p
	r.mu.Unlock()
	return st, nil
}

// runPoint executes one configuration without touching the in-memory cache.
// It uses the harness seed for the workload regardless of who calls it — the
// paper methodology holds the input fixed across every configuration — which
// is also what makes parallel and sequential executions byte-identical. With
// a Store configured (and no Exec), the persistent tier is consulted first
// and every executed result is written through; a store-served result is
// byte-identical to a computed one by the StatsFromSnapshot round-trip
// contract.
func (r *Runner) runPoint(ctx context.Context, p Point) (*swarm.Stats, error) {
	if r.opt.Exec != nil {
		return r.opt.Exec(ctx, p)
	}
	if r.opt.seeds() > 1 {
		merged, _, err := r.seedRun(p).Run(ctx)
		return merged, err
	}
	key := ""
	if r.opt.Store != nil {
		key = ConfigKey(r.opt.Scale, r.opt.Seed, p)
		if st, ok := r.opt.Store.GetStats(key); ok {
			return st, nil
		}
	}
	st, err := RunPoint(p, r.opt.Scale, r.opt.Seed, r.opt.Validate)
	if err == nil && r.opt.Store != nil {
		// Best effort: a full disk or unwritable directory degrades the
		// store to a read tier, it never fails the run (the store's
		// write-error counter records it).
		_ = r.opt.Store.PutStats(key, st)
	}
	return st, err
}

// Prime executes every not-yet-cached point concurrently through the sweep
// runner and fills the cache with the results. Each experiment calls it
// with its full configuration grid up front, so the subsequent formatting
// loops hit the cache and only the independent simulations fan out across
// host cores. Duplicated points are run once; the first failure (by grid
// order, so deterministically) is returned.
func (r *Runner) Prime(ctx context.Context, points []Point) error {
	seen := make(map[string]bool, len(points))
	var todo []Point
	r.mu.Lock()
	for _, p := range points {
		key := p.Key()
		if seen[key] || r.cache[key] != nil {
			continue
		}
		seen[key] = true
		todo = append(todo, p)
	}
	r.mu.Unlock()
	if len(todo) == 0 {
		return nil
	}
	if r.opt.seeds() > 1 {
		return r.primeSeeds(ctx, todo)
	}
	jobs := make([]runner.Job, len(todo))
	for i, p := range todo {
		p := p
		jobs[i] = runner.Job{
			Name: p.Key(),
			// The derived sweep seed is ignored: experiment points fix the
			// workload seed (see runPoint), so priming changes when runs
			// happen, never what they compute.
			Run: func(int64) (*swarm.Stats, error) { return r.runPoint(ctx, p) },
		}
	}
	results := runner.Sweep(ctx, jobs, runner.Options{Parallel: r.opt.Parallel, Seed: r.opt.Seed})
	r.mu.Lock()
	for i, res := range results {
		if res.Err == nil && res.Stats != nil {
			key := todo[i].Key()
			r.cache[key] = res.Stats
			r.pts[key] = todo[i]
		}
	}
	r.mu.Unlock()
	return runner.FirstErr(results)
}

// seedRun builds the seed-replica fan-out of one point from the runner's
// options.
func (r *Runner) seedRun(p Point) SeedRun {
	return SeedRun{
		Point:    p,
		Scale:    r.opt.Scale,
		BaseSeed: r.opt.Seed,
		Seeds:    r.opt.seeds(),
		Shards:   r.opt.SeedShards,
		Parallel: r.opt.Parallel,
		Validate: r.opt.Validate,
		Store:    r.opt.Store,
	}
}

// primeSeeds primes not-yet-cached points in multi-seed mode: every point's
// seed replicas are partitioned into shard jobs and all points' shards are
// flattened onto one worker pool, then each point's replicas are merged in
// fixed seed order. Shard boundaries and merge order are pure functions of
// the options, so the cached aggregates are byte-identical at any Parallel.
func (r *Runner) primeSeeds(ctx context.Context, todo []Point) error {
	per := make([][]*swarm.Stats, len(todo))
	var jobs []runner.Job
	for i, p := range todo {
		per[i] = make([]*swarm.Stats, r.opt.seeds())
		jobs = append(jobs, r.seedRun(p).ShardJobs(ctx, per[i])...)
	}
	results := runner.Sweep(ctx, jobs, runner.Options{Parallel: r.opt.Parallel, Seed: r.opt.Seed})
	if err := runner.FirstErr(results); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, p := range todo {
		merged, err := swarm.MergeStats(per[i])
		if err != nil {
			return err
		}
		key := p.Key()
		r.cache[key] = merged
		r.pts[key] = p
	}
	return nil
}

// PrimeGrid is Prime over the cross product names × kinds × cores.
func (r *Runner) PrimeGrid(ctx context.Context, names []string, kinds []swarm.SchedKind, cores []int, profile bool) error {
	return r.Prime(ctx, Grid(names, kinds, cores, profile))
}

// Grid enumerates the cross product names × kinds × cores as configuration
// points, in the deterministic nesting order the sweep tools use.
func Grid(names []string, kinds []swarm.SchedKind, cores []int, profile bool) []Point {
	var points []Point
	for _, n := range names {
		for _, k := range kinds {
			for _, c := range cores {
				points = append(points, Point{Name: n, Kind: k, Cores: c, Profile: profile})
			}
		}
	}
	return points
}

// ExportFields is the label column order of Export's result sets.
var ExportFields = []string{"bench", "sched", "cores", "profile", "scale", "seed"}

// DedupSorted returns the distinct configurations among points, in the
// canonical export order. The input is not modified.
func DedupSorted(points []Point) []Point {
	uniq := make([]Point, 0, len(points))
	seen := make(map[string]bool, len(points))
	for _, p := range points {
		if key := p.Key(); !seen[key] {
			seen[key] = true
			uniq = append(uniq, p)
		}
	}
	SortPoints(uniq)
	return uniq
}

// SortPoints orders configurations into the canonical export order:
// by benchmark, scheduler, cores, then profile flag.
func SortPoints(points []Point) {
	sort.Slice(points, func(i, j int) bool {
		a, b := points[i], points[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Cores != b.Cores {
			return a.Cores < b.Cores
		}
		return !a.Profile && b.Profile
	})
}

// PointLabels returns the canonical export labels of a configuration point
// within a (scale, seed) harness, keyed by ExportFields.
func PointLabels(p Point, scale bench.Scale, seed int64) map[string]string {
	return map[string]string{
		"bench":   p.Name,
		"sched":   p.Kind.String(),
		"cores":   strconv.Itoa(p.Cores),
		"profile": strconv.FormatBool(p.Profile),
		"scale":   scale.String(),
		"seed":    strconv.FormatInt(seed, 10),
	}
}

// ExportSet assembles the canonical machine-readable result set for a set
// of configuration points: deduplicated, sorted by configuration, labeled
// by ExportFields. stats supplies each point's statistics; points it
// returns nil for are skipped. Both the experiment Runner's Export and the
// swarmd service's sweep responses go through this one assembler, so equal
// point sets encode to identical bytes no matter who served them.
func ExportSet(points []Point, scale bench.Scale, seed int64, stats func(Point) *swarm.Stats) *metrics.ResultSet {
	uniq := DedupSorted(points)
	rs := metrics.NewResultSet(ExportFields...)
	for _, p := range uniq {
		st := stats(p)
		if st == nil {
			continue
		}
		sn := st.Snapshot()
		if sn.SeedSummary != nil {
			// Any merged multi-seed record upgrades the set's stamp; pure
			// v1 sets (every existing golden and cache entry) are untouched.
			rs.Schema = metrics.SchemaVersionV2
		}
		rs.Append(PointLabels(p, scale, seed), sn)
	}
	return rs
}

// Export returns every simulation point the runner has executed so far as a
// machine-readable result set: per-tile and aggregate statistics labeled by
// (bench, sched, cores, profile, scale, seed), sorted by configuration.
// Because records come from the deterministic result cache and are sorted,
// the encoded bytes are identical for every Options.Parallel value.
func (r *Runner) Export() *metrics.ResultSet {
	r.mu.Lock()
	points := make([]Point, 0, len(r.pts))
	for _, p := range r.pts {
		points = append(points, p)
	}
	r.mu.Unlock()
	return ExportSet(points, r.opt.Scale, r.opt.Seed, func(p Point) *swarm.Stats {
		r.mu.Lock()
		defer r.mu.Unlock()
		return r.cache[p.Key()]
	})
}

// Speedup returns cycles(1 core) / cycles(cores) for a benchmark/scheduler.
func (r *Runner) Speedup(ctx context.Context, name string, kind swarm.SchedKind, cores int) (float64, error) {
	base, err := r.Run(ctx, name, swarm.Random, 1, false) // all schedulers equal at 1 core
	if err != nil {
		return 0, err
	}
	st, err := r.Run(ctx, name, kind, cores, false)
	if err != nil {
		return 0, err
	}
	return float64(base.Cycles) / float64(st.Cycles), nil
}

// Experiment is one table/figure regenerator. Run respects ctx: cancellation
// stops priming at the next job boundary and aborts the experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx context.Context, r *Runner, w io.Writer) error
}

// Registry lists every experiment in paper order.
var Registry = []Experiment{
	{"table1", "Table I: benchmark inventory and 1-core run-times", Table1},
	{"fig2", "Fig. 2: des under Random/Stealing/Hints/LBHints", Fig2},
	{"fig3", "Fig. 3: classification of memory accesses (CG)", Fig3},
	{"fig4", "Fig. 4: speedup of Random/Stealing/Hints, 9 benchmarks", Fig4},
	{"fig5", "Fig. 5: cycle and NoC traffic breakdowns at max cores", Fig5},
	{"fig6", "Fig. 6: CG vs FG access classification", Fig6},
	{"fig7", "Fig. 7: CG vs FG speedups", Fig7},
	{"fig8", "Fig. 8: FG cycle and traffic breakdowns", Fig8},
	{"fig10", "Fig. 10: LBHints speedups, all benchmarks", Fig10},
	{"fig11", "Fig. 11: cycle breakdowns with LBHints", Fig11},
	{"lbproxy", "Sec. VI-A: committed-cycle vs idle-task load signals", LBProxy},
	{"ablserial", "Ablation: hint mapping with vs without dispatch serialization", AblSerial},
	{"summary", "Sec. VI-B: gmean speedups, wasted work, traffic", Summary},
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q (have %v)", id, ids)
}

func gmean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// breakdownRow formats a cycle breakdown normalized to a reference total.
func breakdownRow(b swarm.CycleBreakdown, ref float64) string {
	f := func(x uint64) float64 { return float64(x) / ref }
	return fmt.Sprintf("commit=%.3f abort=%.3f spill=%.3f stall=%.3f empty=%.3f total=%.3f",
		f(b.Commit), f(b.Abort), f(b.Spill), f(b.Stall), f(b.Empty), f(b.Total()))
}

// trafficRow formats a traffic breakdown normalized to a reference total.
func trafficRow(t [4]uint64, ref float64) string {
	f := func(x uint64) float64 { return float64(x) / ref }
	return fmt.Sprintf("mem=%.3f abort=%.3f task=%.3f gvt=%.3f total=%.3f",
		f(t[0]), f(t[1]), f(t[2]), f(t[3]), f(t[0]+t[1]+t[2]+t[3]))
}

func sumTraffic(t [4]uint64) float64 {
	return float64(t[0] + t[1] + t[2] + t[3])
}
