package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"swarmhints/internal/bench"
	"swarmhints/internal/runner"
	"swarmhints/swarm"
)

func TestReplicaSeeds(t *testing.T) {
	if got := ReplicaSeeds(42, 1); len(got) != 1 || got[0] != 42 {
		t.Errorf("n=1 must run the base seed itself, got %v", got)
	}
	if got := ReplicaSeeds(42, 0); len(got) != 1 || got[0] != 42 {
		t.Errorf("n=0 must degrade to the base seed, got %v", got)
	}
	seeds := ReplicaSeeds(42, 8)
	if len(seeds) != 8 {
		t.Fatalf("got %d seeds, want 8", len(seeds))
	}
	uniq := map[int64]bool{}
	for r, s := range seeds {
		if s != runner.DeriveSeed(42, r) {
			t.Errorf("replica %d seed %d, want DeriveSeed(42,%d)=%d", r, s, r, runner.DeriveSeed(42, r))
		}
		uniq[s] = true
	}
	if len(uniq) != 8 {
		t.Errorf("derived seeds collide: %v", seeds)
	}
}

func TestSeedShards(t *testing.T) {
	cases := []struct {
		n, shards int
		want      [][2]int
	}{
		{0, 4, nil},
		{5, 0, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}}, // 0 = per-replica
		{5, 9, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}}, // clamp to n
		{5, 2, [][2]int{{0, 3}, {3, 5}}},                         // earlier shards larger
		{6, 3, [][2]int{{0, 2}, {2, 4}, {4, 6}}},                 // even split
		{1, 1, [][2]int{{0, 1}}},
	}
	for _, tc := range cases {
		got := SeedShards(tc.n, tc.shards)
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(tc.want)
		if !bytes.Equal(gb, wb) {
			t.Errorf("SeedShards(%d,%d) = %v, want %v", tc.n, tc.shards, got, tc.want)
		}
	}
	// Partitions cover [0, n) contiguously for a spread of shapes.
	for n := 1; n <= 17; n++ {
		for shards := 0; shards <= n+1; shards++ {
			spans := SeedShards(n, shards)
			at := 0
			for _, sp := range spans {
				if sp[0] != at || sp[1] <= sp[0] {
					t.Fatalf("SeedShards(%d,%d): bad span %v at offset %d", n, shards, sp, at)
				}
				at = sp[1]
			}
			if at != n {
				t.Fatalf("SeedShards(%d,%d) covers [0,%d), want [0,%d)", n, shards, at, n)
			}
		}
	}
}

// seedMergeJSON runs one point as a seeds-replica fan-out with the given
// sharding/parallelism and returns the merged snapshot's JSON bytes.
func seedMergeJSON(t *testing.T, seeds, shards, parallel int) []byte {
	t.Helper()
	sr := SeedRun{
		Point:    Point{Name: "des", Kind: swarm.LBHints, Cores: 4},
		Scale:    bench.Tiny,
		BaseSeed: 7,
		Seeds:    seeds,
		Shards:   shards,
		Parallel: parallel,
		Validate: true,
	}
	merged, per, err := sr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != seeds {
		t.Fatalf("fan-out returned %d per-seed results, want %d", len(per), seeds)
	}
	b, err := json.Marshal(merged.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSeedMergeDifferentialMatrix is the merge-determinism acceptance
// test: the merged aggregate of an N-seed fan-out is byte-identical for
// every shard count and worker count, including the sequential
// single-engine reference (Shards=1, Parallel=1). Pinned by name in the CI
// race job next to TestCalqDifferentialMatrix.
func TestSeedMergeDifferentialMatrix(t *testing.T) {
	const seeds = 8
	want := seedMergeJSON(t, seeds, 1, 1) // sequential reference
	for _, shards := range []int{1, 2, 3, seeds} {
		for _, parallel := range []int{1, 4} {
			if shards == 1 && parallel == 1 {
				continue
			}
			got := seedMergeJSON(t, seeds, shards, parallel)
			if !bytes.Equal(got, want) {
				t.Errorf("shards=%d parallel=%d: merged snapshot differs from sequential reference", shards, parallel)
			}
		}
	}
}

// TestSeedMergeRoundTrip: a merged aggregate survives the snapshot →
// StatsFromSnapshot → snapshot round trip byte-identically — the property
// that makes store-served and gateway-reassembled merged records
// indistinguishable from freshly computed ones.
func TestSeedMergeRoundTrip(t *testing.T) {
	sr := SeedRun{
		Point:    Point{Name: "des", Kind: swarm.Hints, Cores: 4},
		Scale:    bench.Tiny,
		BaseSeed: 1,
		Seeds:    4,
		Validate: true,
	}
	merged, _, err := sr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sn := merged.Snapshot()
	if sn.SeedSummary == nil || sn.SeedSummary.Seeds != 4 {
		t.Fatalf("merged snapshot SeedSummary = %+v, want Seeds=4", sn.SeedSummary)
	}
	direct, err := json.Marshal(sn)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := json.Marshal(swarm.StatsFromSnapshot(sn).Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, rebuilt) {
		t.Error("merged snapshot changed through the StatsFromSnapshot round trip")
	}
}

// TestSeedReplicaMatchesPlainRun: seed replica r of a multi-seed fan-out
// computes exactly what a plain single-seed run at DeriveSeed(base, r)
// computes — the property that lets per-seed records share store keys with
// ordinary runs.
func TestSeedReplicaMatchesPlainRun(t *testing.T) {
	p := Point{Name: "des", Kind: swarm.Hints, Cores: 4}
	sr := SeedRun{Point: p, Scale: bench.Tiny, BaseSeed: 7, Seeds: 3, Validate: true}
	_, per, err := sr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for r, seed := range ReplicaSeeds(7, 3) {
		plain, err := RunPoint(p, bench.Tiny, seed, true)
		if err != nil {
			t.Fatal(err)
		}
		pb, _ := json.Marshal(plain.Snapshot())
		rb, _ := json.Marshal(per[r].Snapshot())
		if !bytes.Equal(pb, rb) {
			t.Errorf("replica %d (seed %d) differs from the plain run at that seed", r, seed)
		}
	}
}

// TestRunnerSeedsExport: the Options-level path — a Runner with Seeds set
// exports v2-stamped records whose bytes are identical at any SeedShards
// and Parallel value.
func TestRunnerSeedsExport(t *testing.T) {
	run := func(shards, parallel int) []byte {
		o := DefaultOptions(bench.Tiny)
		o.Cores = []int{4}
		o.Seeds = 3
		o.SeedShards = shards
		o.Parallel = parallel
		r := NewRunner(o)
		points := []Point{
			{Name: "des", Kind: swarm.Random, Cores: 4},
			{Name: "des", Kind: swarm.Hints, Cores: 4},
		}
		if err := r.Prime(context.Background(), points); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.Export().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := run(1, 1)
	if !bytes.Contains(want, []byte(`"seedSummary"`)) || !bytes.Contains(want, []byte("swarmhints.metrics.v2")) {
		t.Fatal("multi-seed export lacks the v2 schema stamp or seedSummary block")
	}
	for _, tc := range [][2]int{{0, 4}, {2, 2}, {3, 8}} {
		if got := run(tc[0], tc[1]); !bytes.Equal(got, want) {
			t.Errorf("SeedShards=%d Parallel=%d: export differs from sequential reference", tc[0], tc[1])
		}
	}
}
