package exp

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"swarmhints/internal/bench"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// exportJSON runs one experiment at Tiny scale with the given parallelism
// and returns the machine-readable export bytes.
func exportJSON(t *testing.T, id string, parallel int) []byte {
	t.Helper()
	e, err := Find(id)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions(bench.Tiny)
	o.Cores = []int{1, 4}
	o.Parallel = parallel
	r := NewRunner(o)
	var discard bytes.Buffer
	if err := e.Run(context.Background(), r, &discard); err != nil {
		t.Fatalf("%s with Parallel=%d: %v", id, parallel, err)
	}
	var buf bytes.Buffer
	if err := r.Export().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestExportByteIdenticalAcrossParallelism is the acceptance contract for
// the structured pipeline: the JSON export must be byte-identical for every
// -parallel value, because records come from the deterministic result cache
// and are sorted by configuration, never by completion order.
func TestExportByteIdenticalAcrossParallelism(t *testing.T) {
	for _, id := range []string{"fig2", "fig4"} {
		p1 := exportJSON(t, id, 1)
		p8 := exportJSON(t, id, 8)
		if !bytes.Equal(p1, p8) {
			t.Errorf("%s: JSON export differs between Parallel=1 and Parallel=8", id)
		}
	}
}

// TestExportGolden pins the export bytes for fig2 at Tiny scale against a
// committed golden file, proving the schema (field names, ordering,
// encoding) and the simulation results are stable. Regenerate with
// `go test ./internal/exp -run TestExportGolden -update` after an
// intentional engine or schema change.
func TestExportGolden(t *testing.T) {
	got := exportJSON(t, "fig2", 4)
	golden := filepath.Join("testdata", "export_fig2_tiny.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("export differs from %s (%d vs %d bytes); rerun with -update if the change is intentional",
			golden, len(got), len(want))
	}
}

// TestExportLabelsComplete checks every record carries the full label
// schema and per-tile blocks sized to its machine.
func TestExportLabelsComplete(t *testing.T) {
	o := DefaultOptions(bench.Tiny)
	o.Cores = []int{1, 4}
	r := NewRunner(o)
	if err := Fig2(context.Background(), r, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	rs := r.Export()
	if len(rs.Records) == 0 {
		t.Fatal("export is empty after running fig2")
	}
	for _, rec := range rs.Records {
		for _, f := range ExportFields {
			if rec.Labels[f] == "" {
				t.Fatalf("record missing label %q: %v", f, rec.Labels)
			}
		}
		if rec.Snapshot == nil || len(rec.Snapshot.PerTile) != rec.Snapshot.NumTiles {
			t.Fatal("record snapshot malformed")
		}
	}
}
