package exp

import (
	"context"
	"fmt"
	"io"

	"swarmhints/internal/bench"
	"swarmhints/internal/runner"
	"swarmhints/swarm"
)

var rshKinds = []swarm.SchedKind{swarm.Random, swarm.Stealing, swarm.Hints}
var rshlKinds = []swarm.SchedKind{swarm.Random, swarm.Stealing, swarm.Hints, swarm.LBHints}

// plusCores returns the core sweep with extra single points appended;
// Prime deduplicates, so overlap is harmless.
func plusCores(base []int, extra ...int) []int {
	out := make([]int, 0, len(base)+len(extra))
	out = append(out, base...)
	return append(out, extra...)
}

// Table1 reproduces Table I: per-benchmark 1-core run-time, committed
// tasks, task-function count, and hint pattern.
func Table1(ctx context.Context, r *Runner, w io.Writer) error {
	if err := r.PrimeGrid(ctx, bench.Names(), []swarm.SchedKind{swarm.Random}, []int{1}, false); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %14s %10s %6s  %s\n", "bench", "1c cycles", "tasks", "funcs", "hint pattern")
	for _, name := range bench.Names() {
		inst, err := bench.Build(name, r.opt.Scale, r.opt.Seed)
		if err != nil {
			return err
		}
		st, err := r.Run(ctx, name, swarm.Random, 1, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s %14d %10d %6d  %s\n",
			name, st.Cycles, st.CommittedTasks, inst.Prog.NumFns(), inst.HintPattern)
	}
	return nil
}

// Fig2 reproduces Fig. 2: des speedups for all four schedulers across the
// core sweep (a) and the cycle breakdown at max cores relative to Random (b).
func Fig2(ctx context.Context, r *Runner, w io.Writer) error {
	if err := r.PrimeGrid(ctx, []string{"des"}, rshlKinds, plusCores(r.opt.Cores, 1, r.opt.maxCores()), false); err != nil {
		return err
	}
	fmt.Fprintf(w, "(a) des speedup over 1-core\n%8s", "cores")
	for _, k := range rshlKinds {
		fmt.Fprintf(w, " %10v", k)
	}
	fmt.Fprintln(w)
	for _, cores := range r.opt.Cores {
		fmt.Fprintf(w, "%8d", cores)
		for _, k := range rshlKinds {
			s, err := r.Speedup(ctx, "des", k, cores)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %10.1f", s)
		}
		fmt.Fprintln(w)
	}
	mc := r.opt.maxCores()
	ref, err := r.Run(ctx, "des", swarm.Random, mc, false)
	if err != nil {
		return err
	}
	refTotal := float64(ref.Breakdown.Total())
	fmt.Fprintf(w, "(b) des cycle breakdown at %d cores (relative to Random)\n", mc)
	for _, k := range rshlKinds {
		st, err := r.Run(ctx, "des", k, mc, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10v %s\n", k, breakdownRow(st.Breakdown, refTotal))
	}
	return nil
}

// classificationRows prints the Fig. 3/6 stacked-bar data for a benchmark
// list, normalized to a baseline's total accesses (itself for Fig. 3).
func classificationRows(ctx context.Context, r *Runner, w io.Writer, names []string, normTo map[string]string) error {
	// Baselines appended in names order (not map order) so the prime grid —
	// and with it which failure FirstErr reports — is deterministic.
	all := append([]string{}, names...)
	for _, n := range names {
		if base, ok := normTo[n]; ok {
			all = append(all, base)
		}
	}
	if err := r.PrimeGrid(ctx, all, []swarm.SchedKind{swarm.Hints}, []int{4}, true); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-9s %9s %9s %9s %9s %9s %7s\n",
		"bench", "multiRO", "singleRO", "multiRW", "singleRW", "args", "height")
	for _, name := range names {
		st, err := r.Run(ctx, name, swarm.Hints, 4, true)
		if err != nil {
			return err
		}
		cl := st.Classification
		height := 1.0
		if base, ok := normTo[name]; ok && base != name {
			bst, err := r.Run(ctx, base, swarm.Hints, 4, true)
			if err != nil {
				return err
			}
			height = float64(cl.TotalAccesses) / float64(bst.Classification.TotalAccesses)
		}
		fmt.Fprintf(w, "%-9s %9.3f %9.3f %9.3f %9.3f %9.3f %7.2f\n", name,
			cl.MultiHintRO*height, cl.SingleHintRO*height, cl.MultiHintRW*height,
			cl.SingleHintRW*height, cl.Arguments*height, height)
	}
	return nil
}

// Fig3 reproduces Fig. 3: access classification for the nine CG benchmarks.
func Fig3(ctx context.Context, r *Runner, w io.Writer) error {
	return classificationRows(ctx, r, w, bench.Names(), nil)
}

// Fig4 reproduces Fig. 4: Random/Stealing/Hints speedups for all nine
// benchmarks across the core sweep.
func Fig4(ctx context.Context, r *Runner, w io.Writer) error {
	if err := r.PrimeGrid(ctx, bench.Names(), rshKinds, plusCores(r.opt.Cores, 1), false); err != nil {
		return err
	}
	for _, name := range bench.Names() {
		fmt.Fprintf(w, "%s\n%8s", name, "cores")
		for _, k := range rshKinds {
			fmt.Fprintf(w, " %10v", k)
		}
		fmt.Fprintln(w)
		for _, cores := range r.opt.Cores {
			fmt.Fprintf(w, "%8d", cores)
			for _, k := range rshKinds {
				s, err := r.Speedup(ctx, name, k, cores)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, " %10.1f", s)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// Fig5 reproduces Fig. 5: cycle breakdown (a) and NoC traffic breakdown (b)
// at max cores for Random/Stealing/Hints, normalized to Random.
func Fig5(ctx context.Context, r *Runner, w io.Writer) error {
	return breakdownFigure(ctx, r, w, bench.Names(), rshKinds, nil)
}

func breakdownFigure(ctx context.Context, r *Runner, w io.Writer, names []string, kinds []swarm.SchedKind, normTo map[string]string) error {
	mc := r.opt.maxCores()
	// Baselines appended in names order (not map order) so the prime grid —
	// and with it which failure FirstErr reports — is deterministic.
	all := append([]string{}, names...)
	for _, n := range names {
		if base, ok := normTo[n]; ok {
			all = append(all, base)
		}
	}
	if err := r.PrimeGrid(ctx, all, append([]swarm.SchedKind{swarm.Random}, kinds...), []int{mc}, false); err != nil {
		return err
	}
	fmt.Fprintf(w, "(a) cycle breakdowns at %d cores (relative to Random)\n", mc)
	for _, name := range names {
		refName := name
		if n, ok := normTo[name]; ok {
			refName = n
		}
		ref, err := r.Run(ctx, refName, swarm.Random, mc, false)
		if err != nil {
			return err
		}
		refTotal := float64(ref.Breakdown.Total())
		for _, k := range kinds {
			st, err := r.Run(ctx, name, k, mc, false)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-9s %-10v %s\n", name, k, breakdownRow(st.Breakdown, refTotal))
		}
	}
	fmt.Fprintf(w, "(b) NoC traffic breakdowns at %d cores (relative to Random)\n", mc)
	for _, name := range names {
		refName := name
		if n, ok := normTo[name]; ok {
			refName = n
		}
		ref, err := r.Run(ctx, refName, swarm.Random, mc, false)
		if err != nil {
			return err
		}
		refTotal := sumTraffic(ref.Traffic)
		for _, k := range kinds {
			st, err := r.Run(ctx, name, k, mc, false)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-9s %-10v %s\n", name, k, trafficRow(st.Traffic, refTotal))
		}
	}
	return nil
}

// Fig6 reproduces Fig. 6: CG vs FG access classification, FG bars
// normalized to the CG version's total accesses.
func Fig6(ctx context.Context, r *Runner, w io.Writer) error {
	var names []string
	normTo := map[string]string{}
	for _, n := range bench.FGNames() {
		names = append(names, n, n+"-fg")
		normTo[n+"-fg"] = n
	}
	return classificationRows(ctx, r, w, names, normTo)
}

// Fig7 reproduces Fig. 7: FG and CG speedups under the three schedulers,
// relative to the CG version at 1 core.
func Fig7(ctx context.Context, r *Runner, w io.Writer) error {
	var names []string
	for _, n := range bench.FGNames() {
		names = append(names, n, n+"-fg")
	}
	if err := r.PrimeGrid(ctx, names, rshKinds, plusCores(r.opt.Cores, 1), false); err != nil {
		return err
	}
	for _, name := range bench.FGNames() {
		fmt.Fprintf(w, "%s\n%8s", name, "cores")
		for _, variant := range []string{"", "-fg"} {
			for _, k := range rshKinds {
				fmt.Fprintf(w, " %12s", fmt.Sprintf("%s%v", map[string]string{"": "CG-", "-fg": "FG-"}[variant], k))
			}
		}
		fmt.Fprintln(w)
		base, err := r.Run(ctx, name, swarm.Random, 1, false) // CG 1-core baseline
		if err != nil {
			return err
		}
		for _, cores := range r.opt.Cores {
			fmt.Fprintf(w, "%8d", cores)
			for _, variant := range []string{"", "-fg"} {
				for _, k := range rshKinds {
					st, err := r.Run(ctx, name+variant, k, cores, false)
					if err != nil {
						return err
					}
					fmt.Fprintf(w, " %12.1f", float64(base.Cycles)/float64(st.Cycles))
				}
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// Fig8 reproduces Fig. 8: FG cycle and traffic breakdowns at max cores,
// normalized to the CG version under Random.
func Fig8(ctx context.Context, r *Runner, w io.Writer) error {
	var names []string
	normTo := map[string]string{}
	for _, n := range bench.FGNames() {
		names = append(names, n+"-fg")
		normTo[n+"-fg"] = n
	}
	return breakdownFigure(ctx, r, w, names, rshKinds, normTo)
}

// bestVariant returns the better-scaling variant (CG or FG) for a scheduler
// at max cores, as Fig. 10 reports the best-performing version per scheme.
func (r *Runner) bestVariant(ctx context.Context, name string, k swarm.SchedKind) (string, error) {
	hasFG := false
	for _, n := range bench.FGNames() {
		if n == name {
			hasFG = true
		}
	}
	if !hasFG {
		return name, nil
	}
	mc := r.opt.maxCores()
	cg, err := r.Run(ctx, name, k, mc, false)
	if err != nil {
		return "", err
	}
	fg, err := r.Run(ctx, name+"-fg", k, mc, false)
	if err != nil {
		return "", err
	}
	if fg.Cycles < cg.Cycles {
		return name + "-fg", nil
	}
	return name, nil
}

// Fig10 reproduces Fig. 10: all four schedulers on all nine benchmarks,
// using the best-performing grain per scheme.
func Fig10(ctx context.Context, r *Runner, w io.Writer) error {
	// Phase 1: the max-core probes bestVariant compares, plus baselines.
	probeNames := append([]string{}, bench.Names()...)
	for _, n := range bench.FGNames() {
		probeNames = append(probeNames, n+"-fg")
	}
	if err := r.PrimeGrid(ctx, probeNames, rshlKinds, []int{r.opt.maxCores()}, false); err != nil {
		return err
	}
	if err := r.PrimeGrid(ctx, bench.Names(), []swarm.SchedKind{swarm.Random}, []int{1}, false); err != nil {
		return err
	}
	// Phase 2: now that the winning grain per (benchmark, scheme) is known,
	// prime exactly the sweep points the table below will format.
	var points []Point
	for _, name := range bench.Names() {
		for _, k := range rshlKinds {
			variant, err := r.bestVariant(ctx, name, k)
			if err != nil {
				return err
			}
			for _, cores := range r.opt.Cores {
				points = append(points, Point{Name: variant, Kind: k, Cores: cores})
			}
		}
	}
	if err := r.Prime(ctx, points); err != nil {
		return err
	}
	for _, name := range bench.Names() {
		fmt.Fprintf(w, "%s\n%8s", name, "cores")
		for _, k := range rshlKinds {
			fmt.Fprintf(w, " %10v", k)
		}
		fmt.Fprintln(w)
		base, err := r.Run(ctx, name, swarm.Random, 1, false)
		if err != nil {
			return err
		}
		for _, cores := range r.opt.Cores {
			fmt.Fprintf(w, "%8d", cores)
			for _, k := range rshlKinds {
				variant, err := r.bestVariant(ctx, name, k)
				if err != nil {
					return err
				}
				st, err := r.Run(ctx, variant, k, cores, false)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, " %10.1f", float64(base.Cycles)/float64(st.Cycles))
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// Fig11 reproduces Fig. 11: cycle breakdowns for des, nocsim, silo, kmeans
// under all four schedulers at max cores.
func Fig11(ctx context.Context, r *Runner, w io.Writer) error {
	mc := r.opt.maxCores()
	if err := r.PrimeGrid(ctx, []string{"des", "nocsim", "silo", "kmeans"}, rshlKinds, []int{mc}, false); err != nil {
		return err
	}
	fmt.Fprintf(w, "cycle breakdowns at %d cores (relative to Random)\n", mc)
	for _, name := range []string{"des", "nocsim", "silo", "kmeans"} {
		ref, err := r.Run(ctx, name, swarm.Random, mc, false)
		if err != nil {
			return err
		}
		refTotal := float64(ref.Breakdown.Total())
		for _, k := range rshlKinds {
			st, err := r.Run(ctx, name, k, mc, false)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-9s %-10v %s\n", name, k, breakdownRow(st.Breakdown, refTotal))
		}
	}
	return nil
}

// LBProxy reproduces the Sec. VI-A ablation: balancing committed cycles
// (LBHints) versus balancing idle-task counts (the worse proxy).
func LBProxy(ctx context.Context, r *Runner, w io.Writer) error {
	mc := r.opt.maxCores()
	var points []Point
	for _, name := range []string{"des", "nocsim", "silo", "kmeans"} {
		points = append(points, Point{Name: name, Kind: swarm.Random, Cores: 1})
		for _, k := range []swarm.SchedKind{swarm.Hints, swarm.LBHints, swarm.LBIdleProxy} {
			points = append(points, Point{Name: name, Kind: k, Cores: mc})
		}
	}
	if err := r.Prime(ctx, points); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-9s %12s %12s %12s  %s\n", "bench", "Hints", "LBHints", "LBIdleTasks", "best-signal")
	for _, name := range []string{"des", "nocsim", "silo", "kmeans"} {
		h, err := r.Speedup(ctx, name, swarm.Hints, mc)
		if err != nil {
			return err
		}
		lb, err := r.Speedup(ctx, name, swarm.LBHints, mc)
		if err != nil {
			return err
		}
		proxy, err := r.Speedup(ctx, name, swarm.LBIdleProxy, mc)
		if err != nil {
			return err
		}
		best := "committed-cycles"
		if proxy > lb {
			best = "idle-tasks"
		}
		fmt.Fprintf(w, "%-9s %12.1f %12.1f %12.1f  %s\n", name, h, lb, proxy, best)
	}
	return nil
}

// AblSerial is a design-choice ablation called out in DESIGN.md: spatial
// hints consist of (i) same-tile mapping and (ii) same-hint dispatch
// serialization (Sec. III-B). This experiment runs Hints with serialization
// disabled to separate the two mechanisms on the contention-heavy
// benchmarks.
func AblSerial(ctx context.Context, r *Runner, w io.Writer) error {
	mc := r.opt.maxCores()
	names := []string{"des", "silo", "kmeans", "genome"}
	if err := r.PrimeGrid(ctx, names, []swarm.SchedKind{swarm.Hints}, []int{mc}, false); err != nil {
		return err
	}
	// The serialization-disabled runs bypass the cache (they are not a
	// Point configuration), so sweep them directly through the runner.
	jobs := make([]runner.Job, len(names))
	for i, name := range names {
		name := name
		jobs[i] = runner.Job{
			Name: name + "/noser",
			Run: func(int64) (*swarm.Stats, error) {
				release, err := r.opt.gate(ctx)
				if err != nil {
					return nil, err
				}
				defer release()
				inst, err := bench.Build(name, r.opt.Scale, r.opt.Seed)
				if err != nil {
					return nil, err
				}
				cfg := swarm.ScaledConfig().WithCores(mc)
				cfg.Scheduler = swarm.Hints
				cfg.DisableSerialization = true
				st, err := inst.Prog.Run(cfg)
				if err != nil {
					return nil, err
				}
				if r.opt.Validate {
					if err := inst.Validate(); err != nil {
						return nil, fmt.Errorf("%s without serialization failed validation: %w", name, err)
					}
				}
				return st, nil
			},
		}
	}
	results := runner.Sweep(ctx, jobs, runner.Options{Parallel: r.opt.Parallel, Seed: r.opt.Seed})
	if err := runner.FirstErr(results); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-9s %14s %14s %12s %12s\n", "bench", "Hints cycles", "NoSer cycles", "Hints aborts", "NoSer aborts")
	for i, name := range names {
		h, err := r.Run(ctx, name, swarm.Hints, mc, false)
		if err != nil {
			return err
		}
		ns := results[i].Stats
		fmt.Fprintf(w, "%-9s %14d %14d %12d %12d\n",
			name, h.Cycles, ns.Cycles, h.AbortedAttempts, ns.AbortedAttempts)
	}
	return nil
}

// Summary reproduces the aggregate Sec. VI-B numbers: gmean speedups for
// Random, Hints, Hints+FG, LBHints at max cores, plus the wasted-work and
// traffic reduction factors from the abstract.
func Summary(ctx context.Context, r *Runner, w io.Writer) error {
	mc := r.opt.maxCores()
	// Probe grains at max cores, then prime the baselines the speedups use.
	var fgNames []string
	for _, n := range bench.FGNames() {
		fgNames = append(fgNames, n+"-fg")
	}
	var points []Point
	for _, n := range bench.Names() {
		points = append(points,
			Point{Name: n, Kind: swarm.Random, Cores: 1},
			Point{Name: n, Kind: swarm.Random, Cores: mc},
			Point{Name: n, Kind: swarm.Hints, Cores: mc},
			Point{Name: n, Kind: swarm.LBHints, Cores: mc})
	}
	for _, n := range fgNames {
		points = append(points,
			Point{Name: n, Kind: swarm.Random, Cores: 1},
			Point{Name: n, Kind: swarm.Hints, Cores: mc},
			Point{Name: n, Kind: swarm.LBHints, Cores: mc})
	}
	if err := r.Prime(ctx, points); err != nil {
		return err
	}
	var sR, sH, sHF, sLB []float64
	var abortR, abortH, trafR, trafH float64
	for _, name := range bench.Names() {
		v, err := r.Speedup(ctx, name, swarm.Random, mc)
		if err != nil {
			return err
		}
		sR = append(sR, v)
		v, err = r.Speedup(ctx, name, swarm.Hints, mc)
		if err != nil {
			return err
		}
		sH = append(sH, v)
		variant, err := r.bestVariant(ctx, name, swarm.Hints)
		if err != nil {
			return err
		}
		v, err = r.Speedup(ctx, variant, swarm.Hints, mc)
		if err != nil {
			return err
		}
		sHF = append(sHF, v)
		variantLB, err := r.bestVariant(ctx, name, swarm.LBHints)
		if err != nil {
			return err
		}
		v, err = r.Speedup(ctx, variantLB, swarm.LBHints, mc)
		if err != nil {
			return err
		}
		sLB = append(sLB, v)

		rst, err := r.Run(ctx, name, swarm.Random, mc, false)
		if err != nil {
			return err
		}
		hst, err := r.Run(ctx, variant, swarm.Hints, mc, false)
		if err != nil {
			return err
		}
		abortR += float64(rst.Breakdown.Abort)
		abortH += float64(hst.Breakdown.Abort)
		trafR += sumTraffic(rst.Traffic)
		trafH += sumTraffic(hst.Traffic)
	}
	fmt.Fprintf(w, "gmean speedup at %d cores:\n", mc)
	fmt.Fprintf(w, "  Random    %8.1fx\n", gmean(sR))
	fmt.Fprintf(w, "  Hints     %8.1fx\n", gmean(sH))
	fmt.Fprintf(w, "  Hints+FG  %8.1fx\n", gmean(sHF))
	fmt.Fprintf(w, "  LBHints   %8.1fx\n", gmean(sLB))
	fmt.Fprintf(w, "Hints/Random gmean ratio: %.2fx (paper: 3.3x)\n", gmean(sHF)/gmean(sR))
	if abortH > 0 {
		fmt.Fprintf(w, "wasted-work reduction (aborted cycles, Random/Hints): %.1fx (paper: 6.4x)\n", abortR/abortH)
	}
	fmt.Fprintf(w, "traffic reduction (Random/Hints): %.1fx (paper: 3.5x)\n", trafR/trafH)
	return nil
}
