package exp

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"swarmhints/internal/bench"
	"swarmhints/swarm"
)

// microRunner keeps figure smoke tests fast: Tiny inputs, two machine sizes.
func microRunner() *Runner {
	o := DefaultOptions(bench.Tiny)
	o.Cores = []int{1, 16}
	o.MaxCores = 16
	return NewRunner(o)
}

func TestFig4AllBenchmarksListed(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4(context.Background(), microRunner(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range bench.Names() {
		if !strings.Contains(out, name+"\n") {
			t.Fatalf("Fig4 output missing %s", name)
		}
	}
	if !strings.Contains(out, "Stealing") {
		t.Fatal("Fig4 must report the Stealing series")
	}
}

func TestFig5BreakdownsNormalized(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5(context.Background(), microRunner(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "commit=") || !strings.Contains(out, "mem=") {
		t.Fatalf("Fig5 output malformed:\n%s", out)
	}
	// Random's own normalized cycle total must be 1.000 by construction.
	if !strings.Contains(out, "Random     commit=") {
		t.Fatalf("Fig5 missing Random rows:\n%s", out)
	}
	if !strings.Contains(out, "total=1.000") {
		t.Fatal("Fig5 normalization broken: Random total must be 1.000")
	}
}

func TestFig7ReportsBothGrains(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig7(context.Background(), microRunner(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "CG-Hints") || !strings.Contains(out, "FG-Hints") {
		t.Fatalf("Fig7 must report CG and FG series:\n%s", out)
	}
}

func TestFig8FGRows(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig8(context.Background(), microRunner(), &buf); err != nil {
		t.Fatal(err)
	}
	for _, n := range bench.FGNames() {
		if !strings.Contains(buf.String(), n+"-fg") {
			t.Fatalf("Fig8 missing %s-fg", n)
		}
	}
}

func TestFig10IncludesLB(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig10(context.Background(), microRunner(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LBHints") {
		t.Fatal("Fig10 must include the LBHints series")
	}
}

func TestFig11FourBenchmarks(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig11(context.Background(), microRunner(), &buf); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"des", "nocsim", "silo", "kmeans"} {
		if !strings.Contains(buf.String(), n) {
			t.Fatalf("Fig11 missing %s", n)
		}
	}
}

func TestBestVariantPrefersFaster(t *testing.T) {
	r := microRunner()
	v, err := r.bestVariant(context.Background(), "sssp", 2 /* Hints */)
	if err != nil {
		t.Fatal(err)
	}
	if v != "sssp" && v != "sssp-fg" {
		t.Fatalf("bestVariant returned %q", v)
	}
	// Benchmarks without FG variants return themselves.
	v, err = r.bestVariant(context.Background(), "des", 2)
	if err != nil {
		t.Fatal(err)
	}
	if v != "des" {
		t.Fatalf("bestVariant(des) = %q", v)
	}
}

func TestGmean(t *testing.T) {
	if g := gmean([]float64{1, 100}); g < 9.9 || g > 10.1 {
		t.Fatalf("gmean(1,100) = %f, want 10", g)
	}
	if gmean(nil) != 0 {
		t.Fatal("gmean of empty slice must be 0")
	}
}

func TestAblSerialRuns(t *testing.T) {
	var buf bytes.Buffer
	r := microRunner()
	if err := AblSerial(context.Background(), r, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "NoSer") {
		t.Fatalf("ablation output malformed:\n%s", buf.String())
	}
}

func TestSerializationAblationStaysCorrect(t *testing.T) {
	// Serialization is purely a performance mechanism: disabling it must
	// never change results (conflict detection still enforces order). The
	// performance direction varies by benchmark and scale, so the ablation
	// reports it rather than asserting it.
	for _, disable := range []bool{false, true} {
		inst, err := bench.Build("kmeans", bench.Tiny, 3)
		if err != nil {
			t.Fatal(err)
		}
		cfg := swarm.ScaledConfig().WithCores(16)
		cfg.Scheduler = swarm.Hints
		cfg.DisableSerialization = disable
		if _, err := inst.Prog.Run(cfg); err != nil {
			t.Fatal(err)
		}
		if err := inst.Validate(); err != nil {
			t.Fatalf("disable=%v: %v", disable, err)
		}
	}
}
