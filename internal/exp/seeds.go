package exp

import (
	"context"
	"fmt"

	"swarmhints/internal/bench"
	"swarmhints/internal/runner"
	"swarmhints/internal/store"
	"swarmhints/swarm"
)

// ReplicaSeeds returns the workload seeds of the n seed replicas of a run
// seeded with base: replica r runs DeriveSeed(base, r), matching the
// swarmsim -seeds convention, so a seed replica's result is the same record
// whether it was produced by a multi-seed fan-out or a plain single-seed
// run at the derived seed. n <= 1 means no fan-out: the base seed itself.
func ReplicaSeeds(base int64, n int) []int64 {
	if n <= 1 {
		return []int64{base}
	}
	seeds := make([]int64, n)
	for r := range seeds {
		seeds[r] = runner.DeriveSeed(base, r)
	}
	return seeds
}

// SeedShards partitions n seed replicas into at most shards contiguous
// [start, end) index ranges in canonical order: replica order, earlier
// shards at most one replica larger. shards <= 0 or >= n yields one shard
// per replica. The partition depends only on (n, shards), never on worker
// count or scheduling, so shard boundaries are deterministic.
func SeedShards(n, shards int) [][2]int {
	if n <= 0 {
		return nil
	}
	if shards <= 0 || shards > n {
		shards = n
	}
	out := make([][2]int, 0, shards)
	base, rem := n/shards, n%shards
	start := 0
	for s := 0; s < shards; s++ {
		size := base
		if s < rem {
			size++
		}
		out = append(out, [2]int{start, start + size})
		start += size
	}
	return out
}

// SeedRun executes the seed replicas of one configuration as shard jobs on
// the sweep-runner worker pool and merges the per-seed results in fixed
// seed order — so the aggregate record is byte-identical at any Parallel
// or Shards value, including the sequential single-engine reference
// (Shards=1, Parallel=1).
type SeedRun struct {
	Point    Point
	Scale    bench.Scale
	BaseSeed int64
	Seeds    int // seed replicas; <=1 runs just BaseSeed
	Shards   int // shard jobs; 0 (or >= Seeds) = one replica per shard
	Parallel int // worker goroutines (0 = GOMAXPROCS)
	Validate bool

	// Store, when non-nil (and Exec nil), is the persistent tier: each
	// seed replica is looked up under its existing per-seed ConfigKey
	// before executing and written through after, so re-merging the same
	// configuration with more seeds only runs the seeds not yet on disk.
	Store *store.Store
	// Exec, when non-nil, executes one seed replica in place of the local
	// store-tiered path; the service and gateway inject their stacks here.
	// Results must be exactly what RunPoint(p, Scale, seed, Validate)
	// would return.
	Exec func(ctx context.Context, seed int64, p Point) (*swarm.Stats, error)
}

// runReplica executes one seed replica through the configured tier.
func (sr SeedRun) runReplica(ctx context.Context, seed int64) (*swarm.Stats, error) {
	if sr.Exec != nil {
		return sr.Exec(ctx, seed, sr.Point)
	}
	key := ""
	if sr.Store != nil {
		key = ConfigKey(sr.Scale, seed, sr.Point)
		if st, ok := sr.Store.GetStats(key); ok {
			return st, nil
		}
	}
	st, err := RunPoint(sr.Point, sr.Scale, seed, sr.Validate)
	if err == nil && sr.Store != nil {
		_ = sr.Store.PutStats(key, st) // best effort, same as Runner.runPoint
	}
	return st, err
}

// ShardJobs returns the fan-out's shard jobs. per must have one slot per
// seed replica; each job fills the disjoint index range of its shard, so
// no locking is needed. The derived sweep seed each job receives is
// ignored: replica workload seeds are fixed by ReplicaSeeds, so sharding
// changes when runs happen, never what they compute. Exposed so Prime can
// flatten many points' shard jobs onto one worker pool.
func (sr SeedRun) ShardJobs(ctx context.Context, per []*swarm.Stats) []runner.Job {
	seeds := ReplicaSeeds(sr.BaseSeed, sr.Seeds)
	shards := SeedShards(len(seeds), sr.Shards)
	jobs := make([]runner.Job, len(shards))
	for i, span := range shards {
		span := span
		jobs[i] = runner.Job{
			Name: fmt.Sprintf("%s#%d-%d", sr.Point.Key(), span[0], span[1]),
			Run: func(int64) (*swarm.Stats, error) {
				for r := span[0]; r < span[1]; r++ {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					st, err := sr.runReplica(ctx, seeds[r])
					if err != nil {
						return nil, fmt.Errorf("seed replica %d (seed %d): %w", r, seeds[r], err)
					}
					per[r] = st
				}
				return nil, nil
			},
		}
	}
	return jobs
}

// Run executes the fan-out and returns the merged aggregate plus the
// per-seed results in replica order.
func (sr SeedRun) Run(ctx context.Context) (*swarm.Stats, []*swarm.Stats, error) {
	per := make([]*swarm.Stats, len(ReplicaSeeds(sr.BaseSeed, sr.Seeds)))
	jobs := sr.ShardJobs(ctx, per)
	results := runner.Sweep(ctx, jobs, runner.Options{Parallel: sr.Parallel, Seed: sr.BaseSeed})
	if err := runner.FirstErr(results); err != nil {
		return nil, nil, err
	}
	merged, err := swarm.MergeStats(per)
	if err != nil {
		return nil, nil, err
	}
	return merged, per, nil
}
