package exp

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"swarmhints/internal/bench"
	"swarmhints/swarm"
)

func tinyRunner() *Runner {
	o := DefaultOptions(bench.Tiny)
	o.Cores = []int{1, 4, 16}
	return NewRunner(o)
}

func TestFindRegistry(t *testing.T) {
	for _, id := range []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig10", "fig11", "lbproxy", "summary"} {
		if _, err := Find(id); err != nil {
			t.Fatalf("experiment %q missing: %v", id, err)
		}
	}
	if _, err := Find("fig9"); err == nil {
		t.Fatal("fig9 does not exist in the paper's evaluation; Find must error")
	}
}

func TestRunnerCaches(t *testing.T) {
	r := tinyRunner()
	a, err := r.Run(context.Background(), "sssp", swarm.Hints, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(context.Background(), "sssp", swarm.Hints, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical configurations must be served from cache")
	}
}

func TestSpeedupBaseline(t *testing.T) {
	r := tinyRunner()
	s, err := r.Speedup(context.Background(), "sssp", swarm.Random, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1.0 {
		t.Fatalf("1-core speedup = %f, want exactly 1", s)
	}
}

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(context.Background(), tinyRunner(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range bench.Names() {
		if !strings.Contains(out, name) {
			t.Fatalf("Table1 output missing %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "Logic gate ID") {
		t.Fatal("Table1 must report hint patterns")
	}
}

func TestFig2Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig2(context.Background(), tinyRunner(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LBHints") || !strings.Contains(buf.String(), "commit=") {
		t.Fatalf("Fig2 output malformed:\n%s", buf.String())
	}
}

func TestFig3Fractions(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner()
	if err := Fig3(context.Background(), r, &buf); err != nil {
		t.Fatal(err)
	}
	// All nine benchmarks profiled, each row's fractions summing to ~1.
	st, err := r.Run(context.Background(), "des", swarm.Hints, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	cl := st.Classification
	sum := cl.MultiHintRO + cl.SingleHintRO + cl.MultiHintRW + cl.SingleHintRW + cl.Arguments
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("des classification sums to %f", sum)
	}
	// des operates on single gates: read-write data must be predominantly
	// single-hint (Fig. 3's key property for des).
	if cl.SingleHintRW < cl.MultiHintRW {
		t.Fatalf("des RW data mostly multi-hint (%f vs %f); hint = gate ID should localize it",
			cl.MultiHintRW, cl.SingleHintRW)
	}
}

func TestFig6FGTallerBars(t *testing.T) {
	// FG versions perform more accesses, so their normalized bar height
	// must exceed ~1 (Fig. 6: +8% for sssp up to 4.6x for color).
	r := tinyRunner()
	cg, err := r.Run(context.Background(), "color", swarm.Hints, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	fg, err := r.Run(context.Background(), "color-fg", swarm.Hints, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if fg.Classification.TotalAccesses <= cg.Classification.TotalAccesses {
		t.Fatal("color FG must perform more accesses than CG")
	}
}

func TestLBProxyRuns(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner()
	r.opt.MaxCores = 16
	if err := LBProxy(context.Background(), r, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LBIdleTasks") {
		t.Fatalf("LBProxy output malformed:\n%s", buf.String())
	}
}

func TestSummaryRuns(t *testing.T) {
	var buf bytes.Buffer
	r := tinyRunner()
	r.opt.MaxCores = 16
	if err := Summary(context.Background(), r, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"gmean", "Random", "Hints+FG", "LBHints", "traffic reduction"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestValidationCatchesRuns(t *testing.T) {
	// With Validate on (the default), every cached run has been checked
	// against the serial reference; a bad benchmark name must error.
	r := tinyRunner()
	if _, err := r.Run(context.Background(), "bogus", swarm.Random, 1, false); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

// TestParallelMatchesSequential is the harness-level determinism contract:
// priming the grid through the parallel sweep runner must produce the exact
// bytes the sequential path produces, for every experiment that exercises
// both cached and bespoke (AblSerial) runs.
func TestParallelMatchesSequential(t *testing.T) {
	for _, id := range []string{"fig2", "ablserial"} {
		e, err := Find(id)
		if err != nil {
			t.Fatal(err)
		}
		var outputs []string
		for _, parallel := range []int{1, 8} {
			o := DefaultOptions(bench.Tiny)
			o.Cores = []int{1, 4}
			o.Parallel = parallel
			var buf bytes.Buffer
			if err := e.Run(context.Background(), NewRunner(o), &buf); err != nil {
				t.Fatalf("%s with Parallel=%d: %v", id, parallel, err)
			}
			outputs = append(outputs, buf.String())
		}
		if outputs[0] != outputs[1] {
			t.Errorf("%s: Parallel=1 and Parallel=8 outputs differ:\n--- p1\n%s\n--- p8\n%s", id, outputs[0], outputs[1])
		}
	}
}

// TestPrimeFailureIsDeterministic checks a failing grid point surfaces the
// lowest-index error regardless of worker count.
func TestPrimeFailureIsDeterministic(t *testing.T) {
	var msgs []string
	for _, parallel := range []int{1, 4} {
		o := DefaultOptions(bench.Tiny)
		o.Parallel = parallel
		r := NewRunner(o)
		err := r.Prime(context.Background(), []Point{
			{Name: "no-such-bench", Kind: swarm.Hints, Cores: 4},
			{Name: "also-missing", Kind: swarm.Hints, Cores: 4},
		})
		if err == nil {
			t.Fatal("Prime of unknown benchmarks must fail")
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Errorf("error differs across parallelism: %q vs %q", msgs[0], msgs[1])
	}
	if !strings.Contains(msgs[0], "no-such-bench") {
		t.Errorf("error should name the first failing point, got %q", msgs[0])
	}
}
