package exp

import (
	"bytes"
	"context"
	"testing"

	"swarmhints/internal/bench"
	"swarmhints/internal/store"
	"swarmhints/swarm"
)

// TestRunnerReusesStoreAcrossInvocations models two CLI invocations sharing
// a -store directory: the first runner computes and writes through, the
// second (a fresh process in real life) serves every point from disk —
// store hits equal the grid size, so no point reached the engine — and
// exports byte-identical results.
func TestRunnerReusesStoreAcrossInvocations(t *testing.T) {
	dir := t.TempDir()
	names := []string{"des"}
	kinds := []swarm.SchedKind{swarm.Random, swarm.Hints}
	cores := []int{1, 4}

	newRunner := func() (*Runner, *store.Store) {
		st, err := store.Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		o := DefaultOptions(bench.Tiny)
		o.Cores = cores
		o.Store = st
		return NewRunner(o), st
	}

	first, st1 := newRunner()
	if err := first.PrimeGrid(context.Background(), names, kinds, cores, false); err != nil {
		t.Fatal(err)
	}
	if c := st1.Counters(); c.Writes != 4 || c.Hits != 0 {
		t.Fatalf("first invocation counters %+v, want 4 writes, 0 hits", c)
	}
	var a bytes.Buffer
	if err := first.Export().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}

	second, st2 := newRunner()
	if err := second.PrimeGrid(context.Background(), names, kinds, cores, false); err != nil {
		t.Fatal(err)
	}
	if c := st2.Counters(); c.Hits != 4 || c.Writes != 0 {
		t.Fatalf("second invocation counters %+v, want 4 hits, 0 writes (no recompute)", c)
	}
	var b bytes.Buffer
	if err := second.Export().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("store-served export differs from the computed export")
	}

	// Runner.Run on a store-warm point also skips execution.
	if _, err := second.Run(context.Background(), "des", swarm.Stealing, 4, false); err != nil {
		t.Fatal(err)
	}
	if c := st2.Counters(); c.Writes != 1 {
		t.Fatalf("new point should compute and write through once, got %+v", c)
	}
	third, st3 := newRunner()
	if _, err := third.Run(context.Background(), "des", swarm.Stealing, 4, false); err != nil {
		t.Fatal(err)
	}
	if c := st3.Counters(); c.Hits != 1 || c.Writes != 0 {
		t.Fatalf("third invocation counters %+v, want 1 hit, 0 writes", c)
	}
}
