package sim

import (
	"testing"

	"swarmhints/internal/sched"
	"swarmhints/internal/task"
)

func testCfg(cores int, k sched.Kind) Config {
	cfg := ScaledConfig().WithCores(cores)
	cfg.Scheduler = k
	cfg.MaxCycles = 500_000_000
	return cfg
}

// counterProgram: n tasks, each incrementing a shared counter. With equal
// timestamps this is TM-style unordered speculation; with distinct
// timestamps it is ordered. Either way the final count must be exactly n.
func counterProgram(n int, sameTS bool) (*Program, []Root, uint64) {
	p := NewProgram()
	ctr := p.Mem.AllocWords(1)
	var fn task.FnID
	fn = p.Register("inc", func(c *Ctx) {
		c.Write(ctr, c.Read(ctr)+1)
	})
	roots := make([]Root, n)
	for i := 0; i < n; i++ {
		ts := uint64(0)
		if !sameTS {
			ts = uint64(i)
		}
		roots[i] = Root{Fn: fn, TS: ts, HintKind: task.HintInt, Hint: ctr}
	}
	return p, roots, ctr
}

// chainProgram: task i (ts=i) reads slot[i-1] and writes slot[i]=prev+1.
// All tasks are enqueued up front, so most run out of order and must be
// corrected by cascaded aborts. slot[n-1] must equal n.
func chainProgram(n int) (*Program, []Root, uint64) {
	p := NewProgram()
	slots := p.Mem.AllocWords(uint64(n))
	fn := p.Register("link", func(c *Ctx) {
		i := c.Arg(0)
		prev := uint64(0)
		if i > 0 {
			prev = c.Read(slots + (i-1)*8)
		}
		c.Write(slots+i*8, prev+1)
	})
	roots := make([]Root, n)
	for i := 0; i < n; i++ {
		roots[i] = Root{Fn: fn, TS: uint64(i), HintKind: task.HintInt,
			Hint: uint64(i), Args: []uint64{uint64(i)}}
	}
	return p, roots, slots
}

// treeProgram: a root task recursively enqueues children forming a binary
// tree of the given depth; every leaf increments its own private slot
// (disjoint leaves keep the workload embarrassingly parallel). Exercises
// parent-child creation, SAMEHINT, and fan-out. The leaf count is
// 2^depth; slot i holds leaf i's increment.
func treeProgram(depth int) (*Program, []Root, uint64) {
	p := NewProgram()
	leaves := uint64(1) << uint(depth)
	slots := p.Mem.AllocWords(leaves)
	var fn task.FnID
	fn = p.Register("node", func(c *Ctx) {
		d, idx := c.Arg(0), c.Arg(1)
		if d == 0 {
			addr := slots + idx*8
			c.Write(addr, c.Read(addr)+1)
			return
		}
		c.EnqueueSameHint(fn, c.TS()+1, d-1, idx*2)
		c.Enqueue(fn, c.TS()+1, c.Hint()+d, d-1, idx*2+1)
	})
	return p, []Root{{Fn: fn, TS: 0, HintKind: task.HintInt, Hint: 1,
		Args: []uint64{uint64(depth), 0}}}, slots
}

func allKinds() []sched.Kind {
	return []sched.Kind{sched.Random, sched.Stealing, sched.Hints, sched.LBHints}
}

func TestCounterSerializableOrdered(t *testing.T) {
	for _, k := range allKinds() {
		for _, cores := range []int{1, 4, 16} {
			p, roots, ctr := counterProgram(150, false)
			st, err := Run(p, roots, testCfg(cores, k))
			if err != nil {
				t.Fatalf("%v/%dc: %v", k, cores, err)
			}
			if got := p.Mem.Load(ctr); got != 150 {
				t.Fatalf("%v/%dc: counter = %d, want 150", k, cores, got)
			}
			if st.CommittedTasks != 150 {
				t.Fatalf("%v/%dc: committed %d, want 150", k, cores, st.CommittedTasks)
			}
		}
	}
}

func TestCounterSerializableUnordered(t *testing.T) {
	for _, k := range allKinds() {
		p, roots, ctr := counterProgram(150, true)
		st, err := Run(p, roots, testCfg(16, k))
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if got := p.Mem.Load(ctr); got != 150 {
			t.Fatalf("%v: unordered counter = %d, want 150 (stats %s)", k, got, st)
		}
	}
}

func TestChainOrdering(t *testing.T) {
	const n = 120
	for _, k := range allKinds() {
		p, roots, slots := chainProgram(n)
		_, err := Run(p, roots, testCfg(16, k))
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		for i := 0; i < n; i++ {
			if got := p.Mem.Load(slots + uint64(i)*8); got != uint64(i+1) {
				t.Fatalf("%v: slot[%d] = %d, want %d", k, i, got, i+1)
			}
		}
	}
}

func TestChainAbortsOutOfOrderWork(t *testing.T) {
	// With many cores and all tasks available at once, most chain links run
	// before their predecessor and must abort at least once.
	p, roots, _ := chainProgram(120)
	st, err := Run(p, roots, testCfg(16, sched.Random))
	if err != nil {
		t.Fatal(err)
	}
	if st.AbortedAttempts == 0 {
		t.Fatal("out-of-order chain execution produced zero aborts")
	}
	if st.Breakdown.Abort == 0 {
		t.Fatal("aborted attempts charged no cycles")
	}
}

func TestTreeProgram(t *testing.T) {
	for _, k := range allKinds() {
		p, roots, slots := treeProgram(7)
		st, err := Run(p, roots, testCfg(16, k))
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		var got uint64
		for i := uint64(0); i < 128; i++ {
			got += p.Mem.Load(slots + i*8)
		}
		if got != 128 {
			t.Fatalf("%v: leaves = %d, want 128", k, got)
		}
		if st.CommittedTasks != 255 {
			t.Fatalf("%v: committed %d, want 255", k, st.CommittedTasks)
		}
	}
}

func TestSingleCoreNoSpeculationWaste(t *testing.T) {
	p, roots, _ := counterProgram(100, false)
	st, err := Run(p, roots, testCfg(1, sched.Random))
	if err != nil {
		t.Fatal(err)
	}
	if st.AbortedAttempts != 0 {
		t.Fatalf("single core aborted %d tasks; dispatch is in order, conflicts impossible", st.AbortedAttempts)
	}
}

func TestSpillUnderQueuePressure(t *testing.T) {
	cfg := testCfg(4, sched.Random)
	cfg.TaskQPerCore = 8
	cfg.CommitQPerCore = 4
	p, roots, ctr := counterProgram(400, false)
	st, err := Run(p, roots, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mem.Load(ctr) != 400 {
		t.Fatalf("counter = %d under queue pressure", p.Mem.Load(ctr))
	}
	if st.SpilledTasks == 0 {
		t.Fatal("tiny queues with 400 root tasks must spill")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() string {
		p, roots, _ := chainProgram(100)
		st, err := Run(p, roots, testCfg(16, sched.Hints))
		if err != nil {
			t.Fatal(err)
		}
		return st.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("two identical runs diverged:\n%s\n%s", a, b)
	}
}

func TestBreakdownAccountsAllCycles(t *testing.T) {
	p, roots, _ := chainProgram(150)
	st, err := Run(p, roots, testCfg(16, sched.Random))
	if err != nil {
		t.Fatal(err)
	}
	total := float64(st.Breakdown.Total())
	budget := float64(uint64(st.Cores) * st.Cycles)
	if total < 0.85*budget || total > 1.15*budget+float64(st.Breakdown.Spill) {
		t.Fatalf("breakdown %.0f vs cores*cycles %.0f: attribution leak", total, budget)
	}
}

func TestTrafficAccounted(t *testing.T) {
	p, roots, _ := chainProgram(100)
	st, err := Run(p, roots, testCfg(16, sched.Random))
	if err != nil {
		t.Fatal(err)
	}
	if st.Traffic[0] == 0 {
		t.Fatal("no memory traffic on a multi-tile run")
	}
	if st.Traffic[2] == 0 {
		t.Fatal("no task traffic despite random remote enqueues")
	}
	if st.Traffic[3] == 0 {
		t.Fatal("no GVT traffic")
	}
}

func TestScaling(t *testing.T) {
	// A parallel tree workload must get meaningfully faster from 1 to 16
	// cores.
	times := map[int]uint64{}
	for _, cores := range []int{1, 16} {
		p, roots, _ := treeProgram(9)
		st, err := Run(p, roots, testCfg(cores, sched.Hints))
		if err != nil {
			t.Fatal(err)
		}
		times[cores] = st.Cycles
	}
	speedup := float64(times[1]) / float64(times[16])
	if speedup < 2 {
		t.Fatalf("16-core speedup only %.2fx on an embarrassingly parallel tree", speedup)
	}
}

func TestHintsReduceAbortsOnContention(t *testing.T) {
	// All tasks hammer one counter with the same hint: Hints serializes them
	// on one tile, Random scatters them. Hints must abort far less.
	aborts := map[sched.Kind]uint64{}
	for _, k := range []sched.Kind{sched.Random, sched.Hints} {
		p, roots, _ := counterProgram(200, false)
		st, err := Run(p, roots, testCfg(16, k))
		if err != nil {
			t.Fatal(err)
		}
		aborts[k] = st.AbortedAttempts
	}
	if aborts[sched.Hints] > aborts[sched.Random] {
		t.Fatalf("Hints aborted more than Random on single-hint contention: %d vs %d",
			aborts[sched.Hints], aborts[sched.Random])
	}
}

func TestNoHintAndSameHint(t *testing.T) {
	p := NewProgram()
	a := p.Mem.AllocWords(2)
	var leaf task.FnID
	leaf = p.Register("leaf", func(c *Ctx) {
		c.Write(a+8, c.Read(a+8)+1)
	})
	rootFn := p.Register("root", func(c *Ctx) {
		c.Write(a, 7)
		c.EnqueueSameHint(leaf, c.TS()+1)
		c.EnqueueNoHint(leaf, c.TS()+1)
	})
	st, err := Run(p, []Root{{Fn: rootFn, TS: 0, HintKind: task.HintNone}},
		testCfg(4, sched.Hints))
	if err != nil {
		t.Fatal(err)
	}
	if p.Mem.Load(a+8) != 2 || st.CommittedTasks != 3 {
		t.Fatalf("NOHINT/SAMEHINT program wrong: val=%d tasks=%d", p.Mem.Load(a+8), st.CommittedTasks)
	}
}

func TestChildTimestampClamped(t *testing.T) {
	p := NewProgram()
	a := p.Mem.AllocWords(1)
	var child task.FnID
	child = p.Register("child", func(c *Ctx) {
		if c.TS() < 10 {
			c.Write(a, 999) // must not happen: child TS clamps to parent's
		} else {
			c.Write(a, c.TS())
		}
	})
	rootFn := p.Register("root", func(c *Ctx) {
		c.Enqueue(child, 3 /* below parent's 10 */, 1)
	})
	_, err := Run(p, []Root{{Fn: rootFn, TS: 10, HintKind: task.HintInt, Hint: 1}},
		testCfg(1, sched.Hints))
	if err != nil {
		t.Fatal(err)
	}
	if p.Mem.Load(a) != 10 {
		t.Fatalf("child ran with ts %d, want clamp to 10", p.Mem.Load(a))
	}
}

func TestWatchdog(t *testing.T) {
	p, roots, _ := chainProgram(200)
	cfg := testCfg(4, sched.Random)
	cfg.MaxCycles = 50
	if _, err := Run(p, roots, cfg); err == nil {
		t.Fatal("watchdog did not fire")
	}
}

func TestProfileClassification(t *testing.T) {
	// Program with known structure: one word written once and read by every
	// task (read-only multi-hint), one word per task read+written by only
	// that task's hint (single-hint read-write).
	p := NewProgram()
	shared := p.Mem.AllocWords(1)
	p.Mem.StoreRaw(shared, 5)
	priv := p.Mem.AllocWords(64)
	fn := p.Register("t", func(c *Ctx) {
		i := c.Arg(0)
		v := c.Read(shared)
		// Many reads of private data to dominate, then a write.
		addr := priv + i*8
		for j := 0; j < 3; j++ {
			v += c.Read(addr)
		}
		c.Write(addr, v)
	})
	var roots []Root
	for i := uint64(0); i < 32; i++ {
		// One hint per private word; hints differ across tasks.
		roots = append(roots, Root{Fn: fn, TS: i, HintKind: task.HintInt,
			Hint: 100 + i, Args: []uint64{i}})
	}
	cfg := testCfg(4, sched.Hints)
	cfg.Profile = true
	st, err := Run(p, roots, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl := st.Classification
	if cl == nil {
		t.Fatal("profiling enabled but no classification produced")
	}
	if cl.SingleHintRW == 0 {
		t.Fatal("per-task private read-write data not classified single-hint RW")
	}
	if cl.MultiHintRO == 0 {
		t.Fatal("shared read-only word not classified multi-hint RO")
	}
	if cl.Arguments == 0 {
		t.Fatal("argument accesses not counted")
	}
	sum := cl.MultiHintRO + cl.SingleHintRO + cl.MultiHintRW + cl.SingleHintRW + cl.Arguments
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("classification fractions sum to %f", sum)
	}
}

func TestLBHintsRebalances(t *testing.T) {
	// Skewed load: 4 hot hints all hash wherever they hash; LBHints should
	// reconfigure at least once on a long enough run.
	p := NewProgram()
	ctrs := p.Mem.AllocWords(4)
	var fn task.FnID
	fn = p.Register("hot", func(c *Ctx) {
		h := c.Arg(0)
		c.Compute(200)
		c.Write(ctrs+h*8, c.Read(ctrs+h*8)+1)
		if c.Arg(1) > 0 {
			c.Enqueue(fn, c.TS()+1, h, h, c.Arg(1)-1)
		}
	})
	var roots []Root
	for h := uint64(0); h < 4; h++ {
		roots = append(roots, Root{Fn: fn, TS: 0, HintKind: task.HintInt,
			Hint: h, Args: []uint64{h, 400}})
	}
	cfg := testCfg(4, sched.LBHints)
	cfg.LBInterval = 10_000
	st, err := Run(p, roots, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reconfigs == 0 {
		t.Fatal("LBHints never reconfigured on a long skewed run")
	}
	for h := uint64(0); h < 4; h++ {
		if got := p.Mem.Load(ctrs + h*8); got != 401 {
			t.Fatalf("chain %d count = %d, want 401", h, got)
		}
	}
}

func TestStealingMovesWork(t *testing.T) {
	p, roots, _ := treeProgram(8)
	st, err := Run(p, roots, testCfg(16, sched.Stealing))
	if err != nil {
		t.Fatal(err)
	}
	if st.StolenTasks == 0 {
		t.Fatal("Stealing scheduler never stole despite local-only enqueues")
	}
}

func TestConfigWithCores(t *testing.T) {
	base := DefaultConfig()
	for _, tc := range []struct{ cores, k int }{{1, 1}, {4, 1}, {16, 2}, {64, 4}, {144, 6}, {256, 8}} {
		c := base.WithCores(tc.cores)
		if c.MeshK != tc.k {
			t.Fatalf("WithCores(%d).MeshK = %d, want %d", tc.cores, c.MeshK, tc.k)
		}
	}
	if DefaultConfig().WithCores(1).Cores() != 1 {
		t.Fatal("1-core config wrong")
	}
}
