package sim

import (
	"strings"
	"testing"

	"swarmhints/internal/sched"
	"swarmhints/internal/task"
)

// TestSquashWhileSpilled: a parent aborts while its child descriptor sits in
// the spill buffer; the child must be discarded, not resurrected.
func TestSquashWhileSpilled(t *testing.T) {
	cfg := testCfg(4, sched.Random)
	cfg.TaskQPerCore = 8
	cfg.CommitQPerCore = 4
	p := NewProgram()
	flag := p.Mem.AllocWords(1)
	sum := p.Mem.AllocWords(1)
	leaf := p.Register("leaf", func(c *Ctx) {
		c.Write(sum, c.Read(sum)+1)
	})
	// spawner reads flag; if an earlier task later flips flag, spawner
	// aborts and respawns a different number of children.
	spawner := p.Register("spawner", func(c *Ctx) {
		n := c.Read(flag) // 0 first time, 2 after writer runs
		for i := uint64(0); i < 40+n; i++ {
			c.Enqueue(leaf, c.TS()+1+i, i, i)
		}
	})
	writer := p.Register("writer", func(c *Ctx) {
		c.Compute(400) // ensure spawner likely runs first speculatively
		c.Write(flag, 2)
	})
	p2 := []Root{
		{Fn: writer, TS: 0, HintKind: task.HintInt, Hint: 1},
		{Fn: spawner, TS: 1, HintKind: task.HintInt, Hint: 2},
	}
	st, err := Run(p, p2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Mem.Load(sum); got != 42 {
		t.Fatalf("sum = %d, want 42 (spawner must re-create children after abort)", got)
	}
	if st.CommittedTasks != 44 {
		t.Fatalf("committed = %d, want 44", st.CommittedTasks)
	}
}

// TestRefillDrainsSpills: with tiny queues and a huge root burst, spilled
// tasks must all come back and commit.
func TestRefillDrainsSpills(t *testing.T) {
	cfg := testCfg(4, sched.Hints)
	cfg.TaskQPerCore = 4
	cfg.CommitQPerCore = 2
	p, roots, ctr := counterProgram(300, false)
	st, err := Run(p, roots, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mem.Load(ctr) != 300 {
		t.Fatalf("counter = %d", p.Mem.Load(ctr))
	}
	if st.SpilledTasks == 0 {
		t.Fatal("expected spills with 4-entry queues")
	}
}

// TestForwardingStallSerializesChains: a chain of dependent increments
// cannot finish faster than the sum of its links, even with many cores.
func TestForwardingStallSerializesChains(t *testing.T) {
	const n = 60
	p, roots, _ := counterProgram(n, false)
	cfg := testCfg(16, sched.Random)
	st, err := Run(p, roots, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each link costs at least BaseTaskCycles; wall-clock must reflect the
	// chain, not collapse to a couple of task durations.
	if st.Cycles < uint64(n)*cfg.BaseTaskCycles {
		t.Fatalf("chain of %d dependent tasks finished in %d cycles: forwarding stalls not applied", n, st.Cycles)
	}
}

// TestLBIdleProxyRuns: the Sec. VI-A ablation scheduler completes and
// reconfigures.
func TestLBIdleProxyRuns(t *testing.T) {
	p, roots, _ := chainProgram(150)
	cfg := testCfg(16, sched.LBIdleProxy)
	cfg.LBInterval = 2_000
	st, err := Run(p, roots, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.CommittedTasks != 150 {
		t.Fatalf("committed %d", st.CommittedTasks)
	}
}

// TestGVTRoundsCounted: the arbiter must run roughly makespan/interval
// rounds and account GVT traffic on multi-tile machines.
func TestGVTRoundsCounted(t *testing.T) {
	p, roots, _ := chainProgram(120)
	st, err := Run(p, roots, testCfg(16, sched.Random))
	if err != nil {
		t.Fatal(err)
	}
	want := st.Cycles / 200
	if st.GVTRounds < want/2 || st.GVTRounds > want+2 {
		t.Fatalf("GVT rounds = %d for %d cycles (interval 200)", st.GVTRounds, st.Cycles)
	}
}

// TestDumpState renders diagnostics without panicking mid-run.
func TestDumpState(t *testing.T) {
	p, roots, _ := counterProgram(50, false)
	e := newEngine(p, testCfg(4, sched.Random))
	for _, r := range roots {
		e.enqueue(nil, 0, r.Fn, r.TS, r.HintKind, r.Hint, r.Args...)
	}
	s := e.dumpState()
	if !strings.Contains(s, "tile 0") || !strings.Contains(s, "earliestIdle") {
		t.Fatalf("dumpState output unexpected:\n%s", s)
	}
}

// TestSerializationPreventsConcurrentSameHint: with one tile and tasks that
// record concurrent execution through overlapping windows, same-hint tasks
// must never overlap under Hints.
func TestSerializationPreventsConcurrentSameHint(t *testing.T) {
	p := NewProgram()
	a := p.Mem.AllocWords(2)
	fn := p.Register("bump", func(c *Ctx) {
		c.Compute(100)
		c.Write(a, c.Read(a)+1)
	})
	var roots []Root
	for i := uint64(0); i < 30; i++ {
		roots = append(roots, Root{Fn: fn, TS: i, HintKind: task.HintInt, Hint: 99})
	}
	cfg := testCfg(4, sched.Hints) // one tile, 4 cores
	st, err := Run(p, roots, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Serialized same-hint tasks never conflict, so zero aborts.
	if st.AbortedAttempts != 0 {
		t.Fatalf("same-hint serialization failed: %d aborts", st.AbortedAttempts)
	}
	// And the makespan reflects the serial chain (30 x >=100 cycles).
	if st.Cycles < 3000 {
		t.Fatalf("makespan %d too short for a serialized 30x100-cycle chain", st.Cycles)
	}
}

// TestRandomSchedulerAbortsOnSameData is the counterpart: without hint
// serialization the same workload on many tiles mispeculates.
func TestRandomSchedulerAbortsOnSameData(t *testing.T) {
	p := NewProgram()
	a := p.Mem.AllocWords(2)
	fn := p.Register("bump", func(c *Ctx) {
		c.Compute(100)
		c.Write(a, c.Read(a)+1)
	})
	var roots []Root
	for i := uint64(0); i < 30; i++ {
		roots = append(roots, Root{Fn: fn, TS: i, HintKind: task.HintInt, Hint: 99})
	}
	st, err := Run(p, roots, testCfg(16, sched.Random))
	if err != nil {
		t.Fatal(err)
	}
	if st.AbortedAttempts == 0 {
		t.Fatal("randomly scattered conflicting tasks should mispeculate")
	}
	if got := p.Mem.Load(a); got != 30 {
		t.Fatalf("result %d, want 30 regardless of aborts", got)
	}
}
