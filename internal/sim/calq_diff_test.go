package sim

import (
	"encoding/json"
	"fmt"
	"testing"
)

// TestCalqDifferentialMatrix is the calendar-queue acceptance gate: every
// workload × scheduler × core-count configuration must produce byte-identical
// statistics under the calendar-queue engine and the reference binary-heap
// engine. With unique (time, seq) event keys the pop sequence is a pure
// function of the push sequence, so any divergence — one cycle, one abort,
// one byte of the snapshot — means the queue broke the event total order.
// CI pins this test by name; do not rename it.
func TestCalqDifferentialMatrix(t *testing.T) {
	programs := []struct {
		name  string
		build func() (*Program, []Root, uint64)
	}{
		{"contended", func() (*Program, []Root, uint64) { return counterProgram(256, false) }},
		{"tree", func() (*Program, []Root, uint64) { return treeProgram(8) }},
	}
	for _, prog := range programs {
		for _, kind := range allKinds() {
			for _, cores := range []int{1, 4, 16, 64} {
				name := fmt.Sprintf("%s/%s/%dcores", prog.name, kind, cores)
				t.Run(name, func(t *testing.T) {
					snap := func(useHeap bool) []byte {
						cfg := testCfg(cores, kind)
						cfg.useHeapEvents = useHeap
						p, roots, _ := prog.build()
						st, err := Run(p, roots, cfg)
						if err != nil {
							t.Fatalf("useHeap=%v: %v", useHeap, err)
						}
						b, err := json.Marshal(st.Snapshot())
						if err != nil {
							t.Fatal(err)
						}
						return b
					}
					calq, heap := snap(false), snap(true)
					if string(calq) != string(heap) {
						t.Fatalf("calendar-queue and heap engines diverged\ncalq: %s\nheap: %s", calq, heap)
					}
				})
			}
		}
	}
}
