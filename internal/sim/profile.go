package sim

// This file implements the architecture-independent access-classification
// profiler of Sec. IV-B (Fig. 3) and Sec. V (Fig. 6). It observes the memory
// accesses of *committing* tasks only (aborted attempts do not count), and
// classifies every word two ways: read-only vs. read-write, and single-hint
// vs. multi-hint (>90% of accesses from tasks of a single hint). Task
// arguments are counted as their own category, as in the paper's figures.

// roRatio is the reads-per-write threshold above which data counts as
// read-only. The paper uses 1000 on billion-cycle runs; our scaled runs use
// a proportionally scaled threshold (results are "mostly insensitive to the
// specific values", Sec. IV-B).
const roRatio = 100

// singleHintFrac is the fraction of accesses that must come from one hint
// for a word to classify as single-hint (90%, Sec. IV-B).
const singleHintFrac = 0.9

// hintSlots is the Misra-Gries heavy-hitter capacity per word. With the 90%
// threshold, four slots identify a dominant hint exactly whenever one
// exists.
const hintSlots = 4

type wordProfile struct {
	reads, writes uint64
	total         uint64 // accesses from hinted tasks (incl. NOHINT pseudo-hints)
	hints         [hintSlots]uint64
	counts        [hintSlots]uint64
	used          int
}

// note records one access from a task with the given (pseudo-)hint using
// the Misra-Gries frequent-elements sketch.
func (w *wordProfile) note(hint uint64, write bool) {
	if write {
		w.writes++
	} else {
		w.reads++
	}
	w.total++
	for i := 0; i < w.used; i++ {
		if w.hints[i] == hint {
			w.counts[i]++
			return
		}
	}
	if w.used < hintSlots {
		w.hints[w.used] = hint
		w.counts[w.used] = 1
		w.used++
		return
	}
	// Decrement all (Misra-Gries); drop zeros.
	out := 0
	for i := 0; i < w.used; i++ {
		w.counts[i]--
		if w.counts[i] > 0 {
			w.hints[out] = w.hints[i]
			w.counts[out] = w.counts[i]
			out++
		}
	}
	w.used = out
}

func (w *wordProfile) singleHint() bool {
	var top uint64
	for i := 0; i < w.used; i++ {
		if w.counts[i] > top {
			top = w.counts[i]
		}
	}
	// Misra-Gries undercounts by at most total/(slots+1); compensate so a
	// truly dominant hint is never misclassified.
	return float64(top)+float64(w.total)/(hintSlots+1) >= singleHintFrac*float64(w.total)
}

func (w *wordProfile) readOnly() bool {
	if w.writes == 0 {
		return true
	}
	return w.reads/w.writes >= roRatio
}

// Classification is the Fig. 3/6 access breakdown: fractions of all
// accesses by committing tasks falling in each category.
type Classification struct {
	MultiHintRO  float64
	SingleHintRO float64
	MultiHintRW  float64
	SingleHintRW float64
	Arguments    float64
	// TotalAccesses is the denominator (including argument accesses), used
	// to compare CG vs. FG total work (Fig. 6 bar heights).
	TotalAccesses uint64
}

type profiler struct {
	words map[uint64]*wordProfile
	args  uint64
}

func newProfiler() *profiler {
	return &profiler{words: make(map[uint64]*wordProfile)}
}

// onCommit folds one committing task's access trace into the profile. Tasks
// without an integer hint get a unique pseudo-hint so their accesses always
// count toward multi-hint data unless genuinely private.
func (p *profiler) onCommit(reads, writes []uint64, hint uint64, hasHint bool, taskID uint64, numArgs int) {
	h := hint
	if !hasHint {
		h = ^taskID // unique per task
	}
	for _, a := range reads {
		w := p.words[a]
		if w == nil {
			w = &wordProfile{}
			p.words[a] = w
		}
		w.note(h, false)
	}
	for _, a := range writes {
		w := p.words[a]
		if w == nil {
			w = &wordProfile{}
			p.words[a] = w
		}
		w.note(h, true)
	}
	p.args += uint64(numArgs)
}

// classify produces the final breakdown.
func (p *profiler) classify() *Classification {
	var c Classification
	var mRO, sRO, mRW, sRW uint64
	for _, w := range p.words {
		n := w.reads + w.writes
		switch {
		case w.readOnly() && w.singleHint():
			sRO += n
		case w.readOnly():
			mRO += n
		case w.singleHint():
			sRW += n
		default:
			mRW += n
		}
	}
	total := mRO + sRO + mRW + sRW + p.args
	c.TotalAccesses = total
	if total == 0 {
		return &c
	}
	f := func(x uint64) float64 { return float64(x) / float64(total) }
	c.MultiHintRO = f(mRO)
	c.SingleHintRO = f(sRO)
	c.MultiHintRW = f(mRW)
	c.SingleHintRW = f(sRW)
	c.Arguments = f(p.args)
	return &c
}
