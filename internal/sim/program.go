// Package sim is the Swarm architecture simulator: an event-driven model of
// the tiled multicore of Fig. 1 that executes speculative task programs with
// eager versioning, ordered conflict detection, hint-based spatial task
// mapping, same-hint dispatch serialization, spill coalescers, GVT commits,
// and the data-centric load balancer. It produces the cycle and traffic
// breakdowns reported throughout the paper's evaluation.
package sim

import (
	"swarmhints/internal/cache"
	"swarmhints/internal/mem"
	"swarmhints/internal/sched"
	"swarmhints/internal/task"
)

// TaskFn is the body of a Swarm task. It receives the execution context,
// through which it reads and writes simulated memory and enqueues children.
type TaskFn func(*Ctx)

// Program is a Swarm program: a simulated memory image plus a set of
// registered task functions. Programs are built once (setup phase, analogous
// to the code before swarm::run in Listing 1) and can be run under any
// configuration.
type Program struct {
	Mem   *mem.Memory
	fns   []TaskFn
	names []string
}

// NewProgram returns a program with fresh simulated memory.
func NewProgram() *Program {
	return &Program{Mem: mem.New()}
}

// Register adds a task function and returns its ID for use in enqueues.
func (p *Program) Register(name string, fn TaskFn) task.FnID {
	p.fns = append(p.fns, fn)
	p.names = append(p.names, name)
	return task.FnID(len(p.fns) - 1)
}

// NumFns returns the number of registered task functions (Table I column).
func (p *Program) NumFns() int { return len(p.fns) }

// Root describes one initial task enqueued before swarm::run.
type Root struct {
	Fn       task.FnID
	TS       uint64
	HintKind task.HintKind
	Hint     uint64
	Args     []uint64
}

// Config parameterizes one simulation. Defaults mirror Table II; tests and
// quick experiments scale capacities down with ScaledConfig.
type Config struct {
	MeshK        int // K×K tiles
	CoresPerTile int

	TaskQPerCore   int // task queue entries per core (64)
	CommitQPerCore int // commit queue entries per core (16)

	Cache cache.Config

	TaskOpCycles   uint64 // per enqueue/dequeue/finish task op (5)
	BaseTaskCycles uint64 // fixed non-memory cycles per task body
	GVTInterval    uint64 // cycles between GVT update rounds (200)

	SpillThresholdPct int    // coalescer fires at this occupancy (85)
	SpillBatch        int    // tasks spilled per coalescer firing (15)
	SpillCyclesPer    uint64 // cycles charged per spilled/refilled task

	ConflictCheckCycles uint64 // per-access check cost
	AbortBaseCycles     uint64 // per-abort overhead (rollback issue)

	Scheduler  sched.Kind
	LBInterval uint64 // load-balancer reconfiguration period

	Seed      int64
	MaxCycles uint64 // watchdog; 0 = default
	Profile   bool   // collect the Fig. 3/6 access classification

	// DisableSerialization turns off the same-hint dispatch serialization
	// of Sec. III-B while keeping hint-based spatial mapping. Used by the
	// ablation experiment to separate the two mechanisms.
	DisableSerialization bool

	// useHeapEvents selects the pre-calendar-queue binary-heap event queue.
	// Unexported: only the differential tests flip it, to prove the calendar
	// queue and the reference heap drive byte-identical runs.
	useHeapEvents bool
}

// DefaultConfig is the paper's 256-core configuration (Table II).
func DefaultConfig() Config {
	return Config{
		MeshK:               8,
		CoresPerTile:        4,
		TaskQPerCore:        64,
		CommitQPerCore:      16,
		Cache:               cache.DefaultConfig(),
		TaskOpCycles:        5,
		BaseTaskCycles:      10,
		GVTInterval:         200,
		SpillThresholdPct:   85,
		SpillBatch:          15,
		SpillCyclesPer:      5,
		ConflictCheckCycles: 1,
		AbortBaseCycles:     5,
		Scheduler:           sched.Random,
		LBInterval:          50_000,
		Seed:                1,
	}
}

// ScaledConfig shrinks the memory system for the scaled-down inputs used in
// tests and quick experiment runs (Sec. 5 of DESIGN.md): same shape, smaller
// capacities, so working-set:cache ratios stay in the paper's regime.
func ScaledConfig() Config {
	c := DefaultConfig()
	c.Cache = cache.ScaledConfig()
	// Scale the speculation window with the workloads: the paper's 64+16
	// entries/core form a 16K-task window against runs of tens of millions
	// of tasks; our scaled inputs are ~100x smaller. Halving the window
	// keeps far-ahead speculation bounded without starving spills.
	c.TaskQPerCore = 32
	c.CommitQPerCore = 8
	// Reconfigure proportionally more often: the paper's 500 Kcycle period
	// is ~0.5% of its billion-cycle runs; scaled runs are 10-1000x shorter.
	c.LBInterval = 5_000
	return c
}

// WithCores returns a copy of c sized for n cores following the paper's
// scaling methodology: K×K tiles of CoresPerTile cores for n = 4K², and a
// single-core single-tile system for n = 1. Per-core queue and cache
// capacities stay constant.
func (c Config) WithCores(n int) Config {
	out := c
	switch {
	case n == 1:
		out.MeshK, out.CoresPerTile = 1, 1
	default:
		k := 1
		for k*k*c.CoresPerTile < n {
			k++
		}
		out.MeshK = k
	}
	return out
}

// Cores returns the total core count.
func (c Config) Cores() int { return c.MeshK * c.MeshK * c.CoresPerTile }

// Tiles returns the total tile count.
func (c Config) Tiles() int { return c.MeshK * c.MeshK }
