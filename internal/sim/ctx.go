package sim

import (
	"swarmhints/internal/mem"
	"swarmhints/internal/noc"
	"swarmhints/internal/task"
)

// Ctx is the execution context handed to a task body. Every Read and Write
// goes through the simulated cache hierarchy (charging latency and traffic)
// and through conflict detection (eager, ordered: an access by this task
// aborts any later-order speculative task holding conflicting data).
type Ctx struct {
	e      *Engine
	t      *task.Task
	core   int
	tile   int
	cycles uint64
}

// waitForProducer stalls this task when the current value of addr was
// written by a task that is still executing: forwarded data cannot be
// consumed before its producer has produced it (plus the NoC transfer).
// The stall is charged into the task's cycle count at the point of the
// access, so it compounds through dependency chains — without it, an
// N-deep chain of read-modify-writes would collapse to a single task
// duration of wall-clock time under any scheduler.
func (c *Ctx) waitForProducer(addr uint64) {
	w := c.e.index.LatestEarlierWriter(addr, c.t.Ord(), c.t, c.tile)
	if w == nil || w.State != task.Running {
		return
	}
	ready := c.e.cores[w.Core].busyUntil + uint64(c.e.mesh.Latency(c.tile, w.Tile))
	pos := c.e.now + c.cycles // absolute time of this access
	if ready > pos {
		c.cycles += ready - pos
	}
}

// TS returns the task's timestamp.
func (c *Ctx) TS() uint64 { return c.t.TS }

// Arg returns the i-th task argument.
func (c *Ctx) Arg(i int) uint64 { return c.t.Args[i] }

// NumArgs returns the argument count.
func (c *Ctx) NumArgs() int { return len(c.t.Args) }

// Hint returns the task's own hint value (for SAMEHINT-style reuse in
// program logic).
func (c *Ctx) Hint() uint64 { return c.t.Hint }

// Read performs a speculative read of the word at addr. If an uncommitted
// later-order task wrote addr, that task (and its dependents) aborts first:
// a task must never observe data from its logical future. Reads of data
// written by *earlier*-order speculative tasks are forwarded (Sec. II-B).
func (c *Ctx) Read(addr uint64) uint64 {
	e := c.e
	c.cycles += uint64(e.hier.Access(c.core, c.tile, addr, false, noc.MsgMem))
	c.cycles += e.cfg.ConflictCheckCycles
	for {
		ws := e.index.LaterWriters(addr, c.t.Ord(), c.t, c.tile)
		if len(ws) == 0 {
			break
		}
		for _, w := range ws {
			// Remote conflicts are slower: the abort handshake crosses the
			// NoC, so local (same-tile) conflicts resolve much faster —
			// the property that makes hint serialization pay (Sec. II-C).
			c.cycles += e.cfg.AbortBaseCycles + 2*uint64(e.mesh.Latency(c.tile, w.Tile))
			e.abort(w)
		}
	}
	c.waitForProducer(addr)
	e.index.OnRead(c.t, addr)
	c.t.Reads = append(c.t.Reads, addr)
	return e.prog.Mem.Load(addr)
}

// Write performs a speculative write of val to addr. Every uncommitted
// later-order task that read or wrote addr aborts (it either observed the
// stale value or its undo chain would unwind incorrectly). The old value is
// undo-logged for rollback.
func (c *Ctx) Write(addr, val uint64) {
	e := c.e
	c.cycles += uint64(e.hier.Access(c.core, c.tile, addr, true, noc.MsgMem))
	c.cycles += e.cfg.ConflictCheckCycles
	for {
		us := e.index.LaterAccessors(addr, c.t.Ord(), c.t, c.tile)
		if len(us) == 0 {
			break
		}
		for _, u := range us {
			c.cycles += e.cfg.AbortBaseCycles + 2*uint64(e.mesh.Latency(c.tile, u.Tile))
			e.abort(u)
		}
	}
	c.waitForProducer(addr) // WAW: our write completes after the earlier one
	old, seq := e.prog.Mem.Store(addr, val)
	c.t.Undo.Append(mem.UndoEntry{Addr: addr, Old: old, Seq: seq})
	e.index.OnWrite(c.t, addr)
	c.t.Writes = append(c.t.Writes, addr)
}

// Compute charges n cycles of non-memory work (e.g. kmeans distance math).
func (c *Ctx) Compute(n uint64) { c.cycles += n }

// Enqueue creates a child task with an integer spatial hint
// (swarm::enqueue(taskFn, ts, hint, args...), Sec. III-A).
func (c *Ctx) Enqueue(fn task.FnID, ts uint64, hint uint64, args ...uint64) {
	c.cycles += c.e.cfg.TaskOpCycles
	c.e.enqueue(c.t, c.tile, fn, ts, task.HintInt, hint, args...)
}

// EnqueueNoHint creates a child with NOHINT: the data it will access is
// unknown, so placement is random.
func (c *Ctx) EnqueueNoHint(fn task.FnID, ts uint64, args ...uint64) {
	c.cycles += c.e.cfg.TaskOpCycles
	c.e.enqueue(c.t, c.tile, fn, ts, task.HintNone, 0, args...)
}

// EnqueueSameHint creates a child with SAMEHINT: it inherits this task's
// hint (and with it, this task's tile) to exploit parent-child locality.
func (c *Ctx) EnqueueSameHint(fn task.FnID, ts uint64, args ...uint64) {
	c.cycles += c.e.cfg.TaskOpCycles
	c.e.enqueue(c.t, c.tile, fn, ts, task.HintSame, 0, args...)
}
