package sim

import (
	"errors"
	"fmt"

	"swarmhints/internal/cache"
	"swarmhints/internal/calq"
	"swarmhints/internal/conflict"
	"swarmhints/internal/gvt"
	"swarmhints/internal/mem"
	"swarmhints/internal/metrics"
	"swarmhints/internal/noc"
	"swarmhints/internal/sched"
	"swarmhints/internal/task"
)

// ErrWatchdog is returned when a run exceeds its cycle budget, which
// indicates livelock or a configuration far too small for the workload.
var ErrWatchdog = errors.New("sim: watchdog cycle limit exceeded")

const (
	evCoreDone = iota
	evGVT
	evLB
	evWake // no-op: forces a dispatch attempt when a rollback window ends
)

type event struct {
	time uint64
	seq  uint64
	kind int
	core int
	gen  uint64 // core generation for stale-completion detection
}

// evPayload is the calendar queue's view of an event: everything but the
// (time, seq) key, which calq carries itself.
type evPayload struct {
	kind int
	core int
	gen  uint64
}

// eventWindow is the calendar queue's ring width in cycles. Almost every
// event lands within a task length or a GVT interval of now, far inside
// this horizon; the rare long-latency stragglers ride calq's overflow heap.
const eventWindow = 1024

// before is the event order: time, then schedule sequence. (time, seq) pairs
// are unique, so queue restructuring can never reorder equal keys and the
// event stream is fully deterministic.
func (e event) before(f event) bool {
	if e.time != f.time {
		return e.time < f.time
	}
	return e.seq < f.seq
}

// eventHeap is the reference event queue: the binary min-heap the engine
// used before the calendar queue. It is retained behind Config.useHeapEvents
// so the differential matrix test can prove the two produce byte-identical
// runs; the sift loops move the displaced event through a hole — one copy
// per level instead of a swap's two.
type eventHeap []event

func (h *eventHeap) push(e event) {
	hs := append(*h, e)
	*h = hs
	i := len(hs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !e.before(hs[p]) {
			break
		}
		hs[i] = hs[p]
		i = p
	}
	hs[i] = e
}

func (h *eventHeap) pop() event {
	hs := *h
	top := hs[0]
	last := len(hs) - 1
	e := hs[last]
	hs = hs[:last]
	*h = hs
	if last == 0 {
		return top
	}
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		s := l
		if r := l + 1; r < last && hs[r].before(hs[l]) {
			s = r
		}
		if !hs[s].before(e) {
			break
		}
		hs[i] = hs[s]
		i = s
	}
	hs[i] = e
	return top
}

type coreState struct {
	tile      int
	running   *task.Task
	busyUntil uint64
	gen       uint64
	idleSince uint64
	reason    idleReason
}

// Engine simulates one run of a Program under a Config.
type Engine struct {
	cfg   Config
	prog  *Program
	mesh  *noc.Mesh
	hier  *cache.Hierarchy
	index *conflict.Index
	arb   *gvt.Arbiter
	schd  *sched.Scheduler

	queues   []*task.Queue
	finished [][]*task.Task // per tile
	cores    []coreState

	// rec is the per-tile metrics recorder every subsystem publishes into;
	// the run's Stats are a snapshot over it.
	rec *metrics.Recorder

	// events is the engine's pending-event queue, popped once per simulated
	// wake-up — one of the hottest structures in the engine. The calendar
	// queue gives amortized O(1) push/pop for the near-horizon events a
	// cycle-driven run produces; heapEv is the pre-calq reference engine,
	// active only when cfg.useHeapEvents is set (differential tests).
	events  *calq.Queue[evPayload]
	heapEv  eventHeap
	useHeap bool
	evSeq   uint64
	now     uint64

	nextID uint64
	live   int64 // tasks neither committed nor squashed

	stats Stats
	prof  *profiler

	// Hot-path object recycling and scratch buffers. All per-engine, so
	// concurrent engines in a parallel sweep share no state.
	pool    task.Pool    // recycles descriptors of committed tasks
	retired []*task.Task // committed this GVT round, recycled at round end
	ctxs    []Ctx        // per-core task contexts, reused across dispatches

	gvtMins    []task.Order   // per-tile minima, reused across GVT rounds
	gvtRunning [][]*task.Task // per-tile running tasks, reused across rounds

	runScratch  []runHint       // pickCandidate's running-task snapshot
	logScratch  []*mem.UndoLog  // abort's undo-log collection
	undoScratch []mem.UndoEntry // abort's merged-rollback buffer

	// pickCandidate memo. The candidate walk is a function of the tile's
	// idle heap and running set only, and under hint serialization it can
	// visit every idle task just to conclude "stall"; each tile caches its
	// last result, invalidated by a version counter that every mutation of
	// those inputs bumps. A hit replaces the walk with two loads — the
	// dominant case in contended phases, where dispatch re-attempts every
	// event while the queue state barely changes.
	pickMemo []pickMemo
}

// pickMemo is one tile's dispatch-candidate cache: the tile's current input
// version and the result computed at memoVer (valid while they match).
type pickMemo struct {
	ver     uint64
	memoVer uint64
	pick    *task.Task
	ok      bool
}

// bumpPick invalidates a tile's cached dispatch candidate; call after any
// change to the tile's idle tasks or running set.
func (e *Engine) bumpPick(tile int) { e.pickMemo[tile].ver++ }

// runHint is pickCandidate's snapshot of one running hinted task.
type runHint struct {
	hash uint16
	ord  task.Order
}

// Run executes the program's roots to completion under cfg and returns the
// run statistics.
func Run(p *Program, roots []Root, cfg Config) (*Stats, error) {
	e := newEngine(p, cfg)
	for _, r := range roots {
		e.enqueue(nil, 0, r.Fn, r.TS, r.HintKind, r.Hint, r.Args...)
	}
	return e.run()
}

func newEngine(p *Program, cfg Config) *Engine {
	tiles := cfg.Tiles()
	rec := metrics.New(tiles)
	e := &Engine{
		cfg:   cfg,
		prog:  p,
		rec:   rec,
		mesh:  noc.New(cfg.MeshK, rec),
		index: conflict.NewIndex(rec),
		arb:   gvt.NewArbiter(cfg.GVTInterval),
		schd:  sched.New(cfg.Scheduler, tiles, cfg.LBInterval, cfg.Seed, rec),
	}
	e.hier = cache.New(cfg.Cache, e.mesh, cfg.CoresPerTile)
	e.queues = make([]*task.Queue, tiles)
	e.finished = make([][]*task.Task, tiles)
	for t := range e.queues {
		e.queues[t] = task.NewQueue(t,
			cfg.TaskQPerCore*cfg.CoresPerTile,
			cfg.CommitQPerCore*cfg.CoresPerTile)
	}
	e.cores = make([]coreState, tiles*cfg.CoresPerTile)
	for c := range e.cores {
		e.cores[c].tile = c / cfg.CoresPerTile
	}
	e.ctxs = make([]Ctx, len(e.cores))
	e.gvtMins = make([]task.Order, tiles)
	e.gvtRunning = make([][]*task.Task, tiles)
	e.pickMemo = make([]pickMemo, tiles)
	e.useHeap = cfg.useHeapEvents
	if !e.useHeap {
		e.events = calq.New[evPayload](eventWindow)
	}
	if cfg.Profile {
		e.prof = newProfiler()
	}
	return e
}

func (e *Engine) run() (*Stats, error) {
	maxCycles := e.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 50_000_000_000
	}
	e.schedule(evGVT, e.arb.NextDue(), 0, 0)
	if e.schd.Kind() == sched.LBHints || e.schd.Kind() == sched.LBIdleProxy {
		e.schedule(evLB, e.cfg.LBInterval, 0, 0)
	}

	for e.live > 0 {
		e.dispatchAll()
		if e.live == 0 {
			break
		}
		if e.pendingEvents() == 0 {
			return nil, fmt.Errorf("sim: no events pending with %d live tasks (deadlock)", e.live)
		}
		ev := e.popEvent()
		if ev.time > maxCycles {
			return nil, fmt.Errorf("%w at cycle %d (%d live tasks)\n%s", ErrWatchdog, ev.time, e.live, e.dumpState())
		}
		e.now = ev.time
		e.handle(ev)
		// Drain every event scheduled for this same cycle before
		// re-attempting dispatch, so the cycle's state is settled.
		for {
			t, ok := e.peekEventTime()
			if !ok || t != e.now {
				break
			}
			e.handle(e.popEvent())
		}
	}

	// Final commit wave timing: the makespan ends when the last task
	// committed, which the GVT handler recorded in e.now.
	for c := range e.cores {
		e.flushIdle(c)
	}
	e.finalizeStats()
	return &e.stats, nil
}

// dumpState renders per-tile queue occupancy and the earliest stuck tasks,
// for watchdog diagnostics.
func (e *Engine) dumpState() string {
	s := fmt.Sprintf("gvt=%+v\n", e.arb.GVT())
	for tile, q := range e.queues {
		if q.Resident() == 0 && q.SpilledCount() == 0 {
			continue
		}
		s += fmt.Sprintf("tile %d: resident=%d idle=%d commitUsed=%d/%d spilled=%d",
			tile, q.Resident(), q.IdleCount(), q.CommitUsed(),
			e.cfg.CommitQPerCore*e.cfg.CoresPerTile, q.SpilledCount())
		if t := q.PeekEarliest(); t != nil {
			s += fmt.Sprintf(" earliestIdle={id=%d ts=%d fn=%d aborts=%d}", t.ID, t.TS, t.Fn, t.Aborts)
		}
		base := tile * e.cfg.CoresPerTile
		for c := 0; c < e.cfg.CoresPerTile; c++ {
			if t := e.cores[base+c].running; t != nil {
				s += fmt.Sprintf(" running[%d]={id=%d ts=%d}", c, t.ID, t.TS)
			}
		}
		s += fmt.Sprintf(" finished=%d\n", len(e.finished[tile]))
	}
	return s
}

// finalizeStats takes the run's Stats as a snapshot over the recorder:
// every chip-wide aggregate is the sum of the per-tile counters, and the
// per-tile blocks themselves ride along for the per-tile views.
func (e *Engine) finalizeStats() {
	agg := e.rec.Aggregate()
	e.stats.Cycles = e.now
	e.stats.Cores = len(e.cores)
	e.stats.Breakdown = CycleBreakdown{
		Commit: agg.CommitCycles,
		Abort:  agg.AbortCycles,
		Spill:  agg.SpillCycles,
		Stall:  agg.StallCycles,
		Empty:  agg.EmptyCycles,
	}
	e.stats.CommittedTasks = agg.CommittedTasks
	e.stats.AbortedAttempts = agg.AbortedAttempts
	e.stats.SquashedTasks = agg.SquashedTasks
	e.stats.SpilledTasks = agg.SpilledTasks
	e.stats.StolenTasks = agg.StolenTasks
	e.stats.EnqueuedTasks = agg.EnqueuedTasks
	e.stats.Traffic = agg.Traffic
	e.stats.Cache = cache.StatsFrom(agg)
	e.stats.Comparisons = agg.Comparisons
	e.stats.Reconfigs = e.schd.Reconfigs()
	e.stats.GVTRounds = e.arb.Rounds()
	e.stats.Tiles = e.rec.Snapshot()
	if e.prof != nil {
		e.stats.Classification = e.prof.classify()
	}
}

func (e *Engine) schedule(kind int, t uint64, core int, gen uint64) {
	e.evSeq++
	if e.useHeap {
		e.heapEv.push(event{time: t, seq: e.evSeq, kind: kind, core: core, gen: gen})
		return
	}
	e.events.Push(t, e.evSeq, evPayload{kind: kind, core: core, gen: gen})
}

func (e *Engine) pendingEvents() int {
	if e.useHeap {
		return len(e.heapEv)
	}
	return e.events.Len()
}

func (e *Engine) popEvent() event {
	if e.useHeap {
		return e.heapEv.pop()
	}
	en := e.events.Pop()
	return event{time: en.Time, seq: en.Seq, kind: en.V.kind, core: en.V.core, gen: en.V.gen}
}

func (e *Engine) peekEventTime() (uint64, bool) {
	if e.useHeap {
		if len(e.heapEv) == 0 {
			return 0, false
		}
		return e.heapEv[0].time, true
	}
	return e.events.PeekTime()
}

func (e *Engine) handle(ev event) {
	switch ev.kind {
	case evCoreDone:
		c := &e.cores[ev.core]
		if c.gen != ev.gen || c.running == nil {
			return // stale: the task aborted before completing
		}
		t := c.running
		c.running = nil
		c.idleSince = e.now
		e.queues[t.Tile].Finish(t)
		e.finished[t.Tile] = append(e.finished[t.Tile], t)
		e.bumpPick(t.Tile) // running set changed
	case evGVT:
		e.gvtRound()
		e.schedule(evGVT, e.arb.NextDue(), 0, 0)
	case evWake:
		// Nothing to do: the main loop re-attempts dispatch after every
		// event batch, which is the point of this event.
	case evLB:
		if e.schd.ReconfigDue(e.now) {
			idle := make([]int, len(e.queues))
			for i, q := range e.queues {
				idle[i] = q.IdleCount()
			}
			e.schd.Reconfigure(e.now, idle)
		}
		e.schedule(evLB, e.now+e.cfg.LBInterval, 0, 0)
	}
}

// gvtRound performs one virtual-time update: tiles report their earliest
// unfinished task, the arbiter computes the minimum, and every finished
// task that precedes it commits.
func (e *Engine) gvtRound() {
	tiles := len(e.queues)
	mins := e.gvtMins
	runningOf := e.gvtRunning
	for i := range runningOf {
		runningOf[i] = runningOf[i][:0]
	}
	for c := range e.cores {
		if t := e.cores[c].running; t != nil {
			runningOf[e.cores[c].tile] = append(runningOf[e.cores[c].tile], t)
		}
	}
	for i, q := range e.queues {
		mins[i] = q.EarliestUncommitted(runningOf[i], nil)
	}
	g := e.arb.Update(e.now, mins)

	// GVT traffic: each tile exchanges an 8-byte update with the arbiter.
	for t := 1; t < tiles; t++ {
		e.mesh.Send(noc.MsgGVT, t, 0, 8)
		e.mesh.Send(noc.MsgGVT, 0, t, 8)
	}

	for tile := range e.finished {
		list := e.finished[tile]
		out := list[:0]
		for _, t := range list {
			if t.Ord().Before(g) {
				e.commit(t)
			} else {
				out = append(out, t)
			}
		}
		e.finished[tile] = out
	}

	// Commits freed queue space: pull spilled tasks back in.
	for tile, q := range e.queues {
		if q.SpilledCount() > 0 && !q.NearlyFull(e.cfg.SpillThresholdPct) {
			e.refill(tile)
		}
	}

	e.releaseRetired()
}

func (e *Engine) commit(t *task.Task) {
	e.index.Remove(t)
	e.queues[t.Tile].Commit(t)
	e.live--
	tc := e.rec.Tile(t.Tile)
	tc.CommittedTasks++
	tc.CommitCycles += t.RunCycles
	e.schd.OnCommit(t, t.RunCycles)
	if e.prof != nil {
		e.prof.onCommit(t.Reads, t.Writes, t.Hint, t.HasHint(), t.ID, len(t.Args))
	}
	// Recycling is deferred to the end of the GVT round: a child on another
	// tile may commit later in this same round while still holding its
	// Parent pointer at us.
	e.retired = append(e.retired, t)
}

// releaseRetired recycles every task committed during the GVT round that
// just finished. A task becomes unreachable only once no child's Parent
// pointer targets it; since a parent always precedes its children in
// speculative order, a parent commits in the same round as its children or
// earlier, so clearing Parent pointers for the whole round's commits before
// recycling any of them is sufficient — after this, nothing in the engine
// references a retired descriptor.
func (e *Engine) releaseRetired() {
	for _, t := range e.retired {
		for _, c := range t.Children {
			if c.Parent == t {
				c.Parent = nil // c may itself be retired, squashed, or live
			}
		}
		t.Children = t.Children[:0]
	}
	for i, t := range e.retired {
		e.pool.Put(t)
		e.retired[i] = nil
	}
	e.retired = e.retired[:0]
}

// enqueue creates a task, maps it to a tile, and inserts it, spilling to
// make room when the destination queue is exhausted.
func (e *Engine) enqueue(parent *task.Task, fromTile int, fn task.FnID, ts uint64, kind task.HintKind, hint uint64, args ...uint64) *task.Task {
	if parent != nil && ts < parent.TS {
		ts = parent.TS // children may not precede their parent (Sec. II-A)
	}
	e.nextID++
	t := e.pool.Get(e.nextID, fn, ts, kind, hint, parent, args)
	if parent != nil {
		parent.Children = append(parent.Children, t)
	}
	dest := e.schd.DestTile(t, fromTile)
	if dest != fromTile {
		e.mesh.Send(noc.MsgTask, fromTile, dest, task.DescriptorBytes(t))
	}
	q := e.queues[dest]
	e.bumpPick(dest)
	if q.NearlyFull(e.cfg.SpillThresholdPct) {
		e.spill(dest)
	}
	if !q.Enqueue(t) {
		e.spill(dest)
		if !q.Enqueue(t) {
			// Task queue exhausted and nothing spillable: overflow the new
			// descriptor itself to memory.
			q.SpillDirect(t)
			e.rec.Tile(dest).SpilledTasks++
			e.mesh.SendToEdge(noc.MsgMem, dest, task.DescriptorBytes(t))
		}
	}
	e.live++
	e.rec.Tile(dest).EnqueuedTasks++
	return t
}

// spill fires the tile's coalescer (Sec. II-B / Table II).
func (e *Engine) spill(tile int) {
	e.bumpPick(tile)
	sp := e.queues[tile].Spill(e.cfg.SpillBatch)
	tc := e.rec.Tile(tile)
	for _, t := range sp {
		tc.SpilledTasks++
		tc.SpillCycles += e.cfg.SpillCyclesPer
		e.mesh.SendToEdge(noc.MsgMem, tile, task.DescriptorBytes(t))
	}
}

func (e *Engine) refill(tile int) {
	e.bumpPick(tile)
	back := e.queues[tile].Refill(e.cfg.SpillBatch)
	tc := e.rec.Tile(tile)
	for _, t := range back {
		tc.SpillCycles += e.cfg.SpillCyclesPer
		e.mesh.SendToEdge(noc.MsgMem, tile, task.DescriptorBytes(t))
	}
}

// dispatchAll tries to dispatch on every free core until a fixpoint: a
// dispatch can free other cores (via aborts) or create work (via enqueues).
func (e *Engine) dispatchAll() {
	for progress := true; progress; {
		progress = false
		for c := range e.cores {
			cs := &e.cores[c]
			if cs.running != nil || cs.busyUntil > e.now {
				continue
			}
			if e.tryDispatch(c) {
				progress = true
			}
		}
	}
}

func (e *Engine) tryDispatch(coreID int) bool {
	cs := &e.cores[coreID]
	tile := cs.tile
	q := e.queues[tile]

	if q.IdleCount() == 0 && q.SpilledCount() > 0 && !q.Full() {
		e.refill(tile)
	}
	if e.schd.WantSteal() && q.IdleCount() == 0 {
		e.steal(tile)
	}
	if q.IdleCount() == 0 {
		e.markIdle(coreID, idleEmpty)
		return false
	}

	pick := e.pickCandidate(tile)
	if pick == nil {
		e.markIdle(coreID, idleSerial)
		return false
	}

	if !q.CommitSlotFree() {
		// Commit queue exhausted: normally stall, but if the stall has
		// persisted a full GVT interval (so commits alone will not unblock
		// us — the candidate itself may be holding GVT back), abort the
		// latest speculative task on this tile to make room ("aborting
		// higher-timestamp tasks to free space", Sec. II-B).
		blockedLong := cs.reason == idleCommitQ && e.now-cs.idleSince >= 2*e.cfg.GVTInterval
		victim := e.latestSpeculative(tile)
		if blockedLong && victim != nil && victim.State == task.Finished &&
			pick.Ord().Before(victim.Ord()) {
			e.abort(victim)
			if pick.State != task.Idle { // candidate got dragged into the abort
				e.markIdle(coreID, idleCommitQ)
				return false
			}
		} else {
			e.markIdle(coreID, idleCommitQ)
			return false
		}
		if !q.CommitSlotFree() {
			e.markIdle(coreID, idleCommitQ)
			return false
		}
	}

	e.flushIdle(coreID)
	q.Dispatch(pick, coreID)
	e.execute(pick, coreID)
	return true
}

// pickCandidate selects the earliest idle task, skipping tasks whose hashed
// hint matches an earlier-order running task on the tile (Sec. III-B).
func (e *Engine) pickCandidate(tile int) *task.Task {
	q := e.queues[tile]
	if !e.schd.SerializeSameHint() || e.cfg.DisableSerialization {
		return q.PeekEarliest()
	}
	if m := &e.pickMemo[tile]; m.ok && m.ver == m.memoVer {
		return m.pick
	}
	running := e.runScratch[:0]
	base := tile * e.cfg.CoresPerTile
	for c := 0; c < e.cfg.CoresPerTile; c++ {
		if t := e.cores[base+c].running; t != nil && t.HasHint() {
			running = append(running, runHint{t.HintHash, t.Ord()})
		}
	}
	e.runScratch = running
	var pick *task.Task
	q.IdleInOrder(func(t *task.Task) bool {
		if t.HasHint() {
			for _, r := range running {
				if r.hash == t.HintHash && r.ord.Before(t.Ord()) {
					return true // serialized: skip, try next-earliest
				}
			}
		}
		pick = t
		return false
	})
	m := &e.pickMemo[tile]
	m.memoVer, m.pick, m.ok = m.ver, pick, true
	return pick
}

// latestSpeculative returns the latest-order running-or-finished task on a
// tile (the natural victim when commit resources run out).
func (e *Engine) latestSpeculative(tile int) *task.Task {
	var latest *task.Task
	base := tile * e.cfg.CoresPerTile
	for c := 0; c < e.cfg.CoresPerTile; c++ {
		if t := e.cores[base+c].running; t != nil {
			if latest == nil || latest.Ord().Before(t.Ord()) {
				latest = t
			}
		}
	}
	for _, t := range e.finished[tile] {
		if latest == nil || latest.Ord().Before(t.Ord()) {
			latest = t
		}
	}
	return latest
}

// steal implements the idealized work-stealing protocol of Sec. II-C: the
// out-of-work tile instantaneously takes the earliest-timestamp task from
// the tile with the most idle tasks, with no cycle or traffic cost.
func (e *Engine) steal(tile int) {
	victim, best := -1, 0
	for i, q := range e.queues {
		if i != tile && q.IdleCount() > best {
			victim, best = i, q.IdleCount()
		}
	}
	if victim < 0 || e.queues[tile].Full() {
		return
	}
	t := e.queues[victim].PeekEarliest()
	e.queues[victim].RemoveIdle(t)
	e.bumpPick(victim)
	e.bumpPick(tile)
	if !e.queues[tile].Enqueue(t) {
		e.queues[victim].Enqueue(t) // put it back; should not happen
		return
	}
	e.rec.Tile(tile).StolenTasks++
}

func (e *Engine) execute(t *task.Task, coreID int) {
	cs := &e.cores[coreID]
	e.bumpPick(cs.tile) // idle heap shrank, running set grows
	t.ResetAttempt()
	t.DispatchCycle = e.now
	cs.running = t
	cs.gen++
	// Reuse the core's context slot: a fresh &Ctx{} would escape to the
	// heap on every dispatch through the dynamic task-function call.
	ctx := &e.ctxs[coreID]
	*ctx = Ctx{e: e, t: t, core: coreID, tile: cs.tile,
		cycles: e.cfg.TaskOpCycles + e.cfg.BaseTaskCycles}
	e.prog.fns[t.Fn](ctx)
	ctx.cycles += e.cfg.TaskOpCycles // finish-task op
	t.RunCycles = ctx.cycles
	cs.busyUntil = e.now + ctx.cycles
	e.schedule(evCoreDone, cs.busyUntil, coreID, cs.gen)
}

// abort rolls back seed and every descendant and data-dependent task
// (Sec. II-B). Descendants of aborting tasks are squashed (their parent will
// re-create them); data-dependent tasks return to their queues for retry.
func (e *Engine) abort(seed *task.Task) {
	switch seed.State {
	case task.Committed, task.Squashed, task.Idle, task.Spilled:
		return // already resolved or never ran
	}
	set := e.index.AbortSet(seed)
	seedTile := seed.Tile
	logs := e.logScratch[:0]

	for _, t := range set {
		squash := t.Parent != nil && e.index.InLastAbortSet(t.Parent)
		q := e.queues[t.Tile]
		e.bumpPick(t.Tile) // every outcome below touches idle or running state
		if t != seed && t.Tile != seedTile {
			e.mesh.Send(noc.MsgAbort, seedTile, t.Tile, 16)
		}
		switch t.State {
		case task.Running:
			// The mispeculating core runs until the abort and then spends
			// the rollback window restoring its undo log (Sec. IV-A:
			// "simulating conflict check and rollback delays").
			rb := e.cfg.AbortBaseCycles + 2*uint64(len(t.Writes))
			soFar := e.now - t.DispatchCycle
			tc := e.rec.Tile(t.Tile)
			tc.AbortCycles += soFar + rb
			tc.AbortedAttempts++
			cs := &e.cores[t.Core]
			cs.running = nil
			cs.gen++
			cs.busyUntil = e.now + rb
			cs.idleSince = e.now + rb
			e.schedule(evWake, e.now+rb, t.Core, 0)
			e.rollbackTraffic(t)
			if t.Undo.Len() > 0 { // read-only attempts add nothing to the merge
				logs = append(logs, &t.Undo)
			}
			e.index.Remove(t)
			if squash {
				q.SquashRunning(t)
				e.live--
				tc.SquashedTasks++
			} else {
				q.AbortRunning(t)
			}
		case task.Finished:
			tc := e.rec.Tile(t.Tile)
			tc.AbortCycles += t.RunCycles
			tc.AbortedAttempts++
			e.removeFinished(t)
			e.rollbackTraffic(t)
			if t.Undo.Len() > 0 {
				logs = append(logs, &t.Undo)
			}
			e.index.Remove(t)
			if squash {
				q.SquashFinished(t)
				e.live--
				tc.SquashedTasks++
			} else {
				q.AbortFinished(t)
			}
		case task.Idle:
			// Never ran: in the set only as a descendant. Squash it.
			q.Squash(t)
			e.live--
			e.rec.Tile(t.Tile).SquashedTasks++
		case task.Spilled:
			t.State = task.Squashed // spill buffer drops it lazily
			e.live--
			e.rec.Tile(t.Tile).SquashedTasks++
		}
	}
	e.undoScratch = mem.RollbackInto(e.prog.Mem, logs, e.undoScratch)[:0]
	e.logScratch = logs[:0]
}

// rollbackTraffic charges the abort-class memory traffic of restoring a
// task's undo log (Sec. IV: "abort traffic [includes] rollback memory
// accesses").
func (e *Engine) rollbackTraffic(t *task.Task) {
	for _, a := range t.Writes {
		e.hier.Access(t.Core, t.Tile, a, true, noc.MsgAbort)
	}
}

func (e *Engine) removeFinished(t *task.Task) {
	list := e.finished[t.Tile]
	for i, x := range list {
		if x == t {
			list[i] = list[len(list)-1]
			e.finished[t.Tile] = list[:len(list)-1]
			return
		}
	}
}

func (e *Engine) markIdle(coreID int, r idleReason) {
	cs := &e.cores[coreID]
	if cs.reason == r {
		return
	}
	e.flushIdle(coreID)
	cs.idleSince = e.now
	cs.reason = r
}

func (e *Engine) flushIdle(coreID int) {
	cs := &e.cores[coreID]
	if cs.reason == idleNone {
		cs.idleSince = e.now
		return
	}
	gap := e.now - cs.idleSince
	switch cs.reason {
	case idleEmpty:
		e.rec.Tile(cs.tile).EmptyCycles += gap
	case idleCommitQ, idleSerial:
		e.rec.Tile(cs.tile).StallCycles += gap
	}
	cs.idleSince = e.now
	cs.reason = idleNone
}
