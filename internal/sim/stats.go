package sim

import (
	"fmt"

	"swarmhints/internal/cache"
	"swarmhints/internal/metrics"
)

// CycleBreakdown is the per-category sum of core cycles, matching the
// stacked bars of Fig. 2b / 5a / 8a / 11: cycles running eventually-
// committed tasks, cycles running eventually-aborted tasks, cycles spent
// spilling, cycles stalled on full task/commit queues, and cycles stalled
// with no tasks to run.
type CycleBreakdown struct {
	Commit uint64
	Abort  uint64
	Spill  uint64
	Stall  uint64
	Empty  uint64
}

// Total returns the sum across categories.
func (b CycleBreakdown) Total() uint64 {
	return b.Commit + b.Abort + b.Spill + b.Stall + b.Empty
}

// CoreTotal returns the sum of the four core-occupancy categories. Commit,
// abort, stall, and empty cycles partition core time exactly, so
// CoreTotal() == Cores×Cycles is a conservation invariant of every run;
// spill cycles are charged to the tile's coalescer unit on top of that.
func (b CycleBreakdown) CoreTotal() uint64 {
	return b.Commit + b.Abort + b.Stall + b.Empty
}

// Stats is the result of one simulation run: a chip-wide aggregate snapshot
// over the run's metrics.Recorder, plus the per-tile counter blocks the
// aggregates were summed from.
type Stats struct {
	// Cycles is the makespan: the cycle at which the last task committed.
	Cycles uint64
	// Cores is the number of cores simulated.
	Cores int
	// Breakdown attributes aggregate core cycles (see CoreTotal).
	Breakdown CycleBreakdown

	CommittedTasks  uint64
	AbortedAttempts uint64
	SquashedTasks   uint64
	SpilledTasks    uint64
	StolenTasks     uint64
	EnqueuedTasks   uint64

	// Traffic is NoC flits injected by class: mem, abort, task, GVT
	// (Fig. 5b legend order).
	Traffic [4]uint64

	Cache       cache.Stats
	Comparisons uint64
	Reconfigs   int
	GVTRounds   uint64

	// Tiles is the per-tile counter snapshot: one block per tile, the
	// ground truth every aggregate field above is summed from.
	Tiles []metrics.TileCounters

	// Classification is the Fig. 3/6 access profile (nil unless
	// Config.Profile was set).
	Classification *Classification

	// SeedSummary is the cross-seed dispersion block (nil unless this
	// Stats is a MergeStats aggregate over multiple seed replicas). It is
	// carried verbatim through Snapshot/StatsFromSnapshot, never derived.
	SeedSummary *metrics.SeedSummary
}

// TotalTraffic sums flits over all classes.
func (s *Stats) TotalTraffic() uint64 {
	var t uint64
	for _, f := range s.Traffic {
		t += f
	}
	return t
}

// WastedFraction returns aborted cycles / (aborted + committed) cycles —
// the paper's "wasted work" metric.
func (s *Stats) WastedFraction() float64 {
	d := s.Breakdown.Abort + s.Breakdown.Commit
	if d == 0 {
		return 0
	}
	return float64(s.Breakdown.Abort) / float64(d)
}

// LoadImbalance returns max/mean committed cycles per tile — the paper's
// load-imbalance story (Sec. VI): 1.0 is perfect balance, T (the tile
// count) is all work on one tile. Returns 0 when nothing committed.
func (s *Stats) LoadImbalance() float64 {
	if len(s.Tiles) == 0 {
		return 0
	}
	var max, sum uint64
	for i := range s.Tiles {
		c := s.Tiles[i].CommitCycles
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(s.Tiles))
	return float64(max) / mean
}

// TrafficFraction returns class c's share of total injected flits
// (0 when there is no traffic).
func (s *Stats) TrafficFraction(c int) float64 {
	total := s.TotalTraffic()
	if total == 0 {
		return 0
	}
	return float64(s.Traffic[c]) / float64(total)
}

// TileBreakdown returns tile i's cycle breakdown.
func (s *Stats) TileBreakdown(i int) CycleBreakdown {
	t := &s.Tiles[i]
	return CycleBreakdown{
		Commit: t.CommitCycles,
		Abort:  t.AbortCycles,
		Spill:  t.SpillCycles,
		Stall:  t.StallCycles,
		Empty:  t.EmptyCycles,
	}
}

// Snapshot converts the run's statistics into the stable machine-readable
// schema, including the per-tile counter blocks and derived metrics.
func (s *Stats) Snapshot() *metrics.Snapshot {
	tiles := make([]metrics.TileCounters, len(s.Tiles))
	copy(tiles, s.Tiles)
	var cl *metrics.AccessClassification
	if s.Classification != nil {
		cl = &metrics.AccessClassification{
			MultiHintRO:   s.Classification.MultiHintRO,
			SingleHintRO:  s.Classification.SingleHintRO,
			MultiHintRW:   s.Classification.MultiHintRW,
			SingleHintRW:  s.Classification.SingleHintRW,
			Arguments:     s.Classification.Arguments,
			TotalAccesses: s.Classification.TotalAccesses,
		}
	}
	return &metrics.Snapshot{
		Cycles:   s.Cycles,
		Cores:    s.Cores,
		NumTiles: len(s.Tiles),

		CommittedTasks:  s.CommittedTasks,
		AbortedAttempts: s.AbortedAttempts,
		SquashedTasks:   s.SquashedTasks,
		SpilledTasks:    s.SpilledTasks,
		StolenTasks:     s.StolenTasks,
		EnqueuedTasks:   s.EnqueuedTasks,

		CommitCycles: s.Breakdown.Commit,
		AbortCycles:  s.Breakdown.Abort,
		SpillCycles:  s.Breakdown.Spill,
		StallCycles:  s.Breakdown.Stall,
		EmptyCycles:  s.Breakdown.Empty,

		TrafficMem:   s.Traffic[0],
		TrafficAbort: s.Traffic[1],
		TrafficTask:  s.Traffic[2],
		TrafficGVT:   s.Traffic[3],
		TrafficTotal: s.TotalTraffic(),

		L1Hits:         s.Cache.L1Hits,
		L2Hits:         s.Cache.L2Hits,
		L3Hits:         s.Cache.L3Hits,
		MemAccesses:    s.Cache.MemAccesses,
		RemoteForwards: s.Cache.RemoteForwards,
		Invalidations:  s.Cache.Invalidations,
		Writebacks:     s.Cache.Writebacks,

		Comparisons: s.Comparisons,
		GVTRounds:   s.GVTRounds,
		Reconfigs:   uint64(s.Reconfigs),

		WastedFraction:   s.WastedFraction(),
		LoadImbalance:    s.LoadImbalance(),
		TrafficFracMem:   s.TrafficFraction(0),
		TrafficFracAbort: s.TrafficFraction(1),
		TrafficFracTask:  s.TrafficFraction(2),
		TrafficFracGVT:   s.TrafficFraction(3),

		Classification: cl,
		SeedSummary:    s.SeedSummary,
		PerTile:        tiles,
	}
}

// StatsFromSnapshot rebuilds run statistics from their machine-readable
// snapshot — the inverse of Snapshot. Counter fields and the per-tile
// blocks are copied back verbatim; the derived metrics (wasted fraction,
// load imbalance, traffic fractions) are not stored on Stats and will be
// recomputed from the same integers they were derived from, so the rebuilt
// Stats snapshot and export byte-identically to the original run's. The
// persistent result store (internal/store) relies on this to serve disk
// records as first-class results.
func StatsFromSnapshot(sn *metrics.Snapshot) *Stats {
	tiles := make([]metrics.TileCounters, len(sn.PerTile))
	copy(tiles, sn.PerTile)
	var cl *Classification
	if sn.Classification != nil {
		cl = &Classification{
			MultiHintRO:   sn.Classification.MultiHintRO,
			SingleHintRO:  sn.Classification.SingleHintRO,
			MultiHintRW:   sn.Classification.MultiHintRW,
			SingleHintRW:  sn.Classification.SingleHintRW,
			Arguments:     sn.Classification.Arguments,
			TotalAccesses: sn.Classification.TotalAccesses,
		}
	}
	return &Stats{
		Cycles: sn.Cycles,
		Cores:  sn.Cores,
		Breakdown: CycleBreakdown{
			Commit: sn.CommitCycles,
			Abort:  sn.AbortCycles,
			Spill:  sn.SpillCycles,
			Stall:  sn.StallCycles,
			Empty:  sn.EmptyCycles,
		},

		CommittedTasks:  sn.CommittedTasks,
		AbortedAttempts: sn.AbortedAttempts,
		SquashedTasks:   sn.SquashedTasks,
		SpilledTasks:    sn.SpilledTasks,
		StolenTasks:     sn.StolenTasks,
		EnqueuedTasks:   sn.EnqueuedTasks,

		Traffic: [4]uint64{sn.TrafficMem, sn.TrafficAbort, sn.TrafficTask, sn.TrafficGVT},

		Cache: cache.Stats{
			L1Hits:         sn.L1Hits,
			L2Hits:         sn.L2Hits,
			L3Hits:         sn.L3Hits,
			MemAccesses:    sn.MemAccesses,
			RemoteForwards: sn.RemoteForwards,
			Invalidations:  sn.Invalidations,
			Writebacks:     sn.Writebacks,
		},
		Comparisons: sn.Comparisons,
		Reconfigs:   int(sn.Reconfigs),
		GVTRounds:   sn.GVTRounds,

		Tiles:          tiles,
		Classification: cl,
		SeedSummary:    sn.SeedSummary,
	}
}

// MergeStats folds per-seed runs of one configuration — in canonical seed
// order — into a single aggregate: counters sum, derived metrics are
// recomputed from the merged counters, and SeedSummary carries the
// cross-seed dispersion. It goes through metrics.MergeSnapshots and back
// through StatsFromSnapshot, so the result round-trips byte-identically:
// MergeStats(runs).Snapshot() equals the metrics-level merge of the runs'
// snapshots, whatever sharding produced the inputs.
func MergeStats(runs []*Stats) (*Stats, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("sim: merge of zero runs")
	}
	snaps := make([]*metrics.Snapshot, len(runs))
	for i, r := range runs {
		if r == nil {
			return nil, fmt.Errorf("sim: merge of nil run (index %d)", i)
		}
		snaps[i] = r.Snapshot()
	}
	merged, err := metrics.MergeSnapshots(snaps)
	if err != nil {
		return nil, err
	}
	return StatsFromSnapshot(merged), nil
}

// String gives a compact human-readable summary.
func (s *Stats) String() string {
	b := s.Breakdown
	return fmt.Sprintf(
		"cycles=%d cores=%d tasks=%d aborts=%d breakdown[commit=%d abort=%d spill=%d stall=%d empty=%d] flits[mem=%d abort=%d task=%d gvt=%d]",
		s.Cycles, s.Cores, s.CommittedTasks, s.AbortedAttempts,
		b.Commit, b.Abort, b.Spill, b.Stall, b.Empty,
		s.Traffic[0], s.Traffic[1], s.Traffic[2], s.Traffic[3])
}

// idleReason labels why a core could not dispatch, for breakdown
// attribution of idle gaps.
type idleReason uint8

const (
	idleNone    idleReason = iota
	idleEmpty              // no idle tasks on the tile
	idleCommitQ            // commit queue full (queue stall)
	idleSerial             // all candidates serialized behind same-hint tasks
)
