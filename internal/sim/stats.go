package sim

import (
	"fmt"

	"swarmhints/internal/cache"
)

// CycleBreakdown is the per-category sum of core cycles, matching the
// stacked bars of Fig. 2b / 5a / 8a / 11: cycles running eventually-
// committed tasks, cycles running eventually-aborted tasks, cycles spent
// spilling, cycles stalled on full task/commit queues, and cycles stalled
// with no tasks to run.
type CycleBreakdown struct {
	Commit uint64
	Abort  uint64
	Spill  uint64
	Stall  uint64
	Empty  uint64
}

// Total returns the sum across categories.
func (b CycleBreakdown) Total() uint64 {
	return b.Commit + b.Abort + b.Spill + b.Stall + b.Empty
}

// Stats is the result of one simulation run.
type Stats struct {
	// Cycles is the makespan: the cycle at which the last task committed.
	Cycles uint64
	// Cores is the number of cores simulated.
	Cores int
	// Breakdown attributes Cores×Cycles aggregate core cycles.
	Breakdown CycleBreakdown

	CommittedTasks  uint64
	AbortedAttempts uint64
	SquashedTasks   uint64
	SpilledTasks    uint64
	StolenTasks     uint64
	EnqueuedTasks   uint64

	// Traffic is NoC flits injected by class: mem, abort, task, GVT
	// (Fig. 5b legend order).
	Traffic [4]uint64

	Cache       cache.Stats
	Comparisons uint64
	Reconfigs   int
	GVTRounds   uint64

	// Classification is the Fig. 3/6 access profile (nil unless
	// Config.Profile was set).
	Classification *Classification
}

// TotalTraffic sums flits over all classes.
func (s *Stats) TotalTraffic() uint64 {
	var t uint64
	for _, f := range s.Traffic {
		t += f
	}
	return t
}

// WastedFraction returns aborted cycles / (aborted + committed) cycles —
// the paper's "wasted work" metric.
func (s *Stats) WastedFraction() float64 {
	d := s.Breakdown.Abort + s.Breakdown.Commit
	if d == 0 {
		return 0
	}
	return float64(s.Breakdown.Abort) / float64(d)
}

// String gives a compact human-readable summary.
func (s *Stats) String() string {
	b := s.Breakdown
	return fmt.Sprintf(
		"cycles=%d cores=%d tasks=%d aborts=%d breakdown[commit=%d abort=%d spill=%d stall=%d empty=%d] flits[mem=%d abort=%d task=%d gvt=%d]",
		s.Cycles, s.Cores, s.CommittedTasks, s.AbortedAttempts,
		b.Commit, b.Abort, b.Spill, b.Stall, b.Empty,
		s.Traffic[0], s.Traffic[1], s.Traffic[2], s.Traffic[3])
}

// idleReason labels why a core could not dispatch, for breakdown
// attribution of idle gaps.
type idleReason uint8

const (
	idleNone    idleReason = iota
	idleEmpty              // no idle tasks on the tile
	idleCommitQ            // commit queue full (queue stall)
	idleSerial             // all candidates serialized behind same-hint tasks
)
