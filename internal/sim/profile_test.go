package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWordProfileSingleHintDominant(t *testing.T) {
	var w wordProfile
	for i := 0; i < 95; i++ {
		w.note(7, false)
	}
	for i := 0; i < 5; i++ {
		w.note(uint64(100+i), false)
	}
	if !w.singleHint() {
		t.Fatal("95% single-hint word classified multi-hint")
	}
}

func TestWordProfileMultiHint(t *testing.T) {
	var w wordProfile
	for h := uint64(0); h < 10; h++ {
		for i := 0; i < 10; i++ {
			w.note(h, false)
		}
	}
	if w.singleHint() {
		t.Fatal("evenly spread hints classified single-hint")
	}
}

func TestWordProfileReadOnly(t *testing.T) {
	var w wordProfile
	for i := 0; i < 500; i++ {
		w.note(1, false)
	}
	if !w.readOnly() {
		t.Fatal("read-only word misclassified")
	}
	w.note(1, true)
	w.note(1, true)
	w.note(1, true)
	w.note(1, true)
	w.note(1, true)
	w.note(1, true)
	if w.readOnly() {
		t.Fatalf("%d reads / %d writes should be read-write at threshold %d", w.reads, w.writes, roRatio)
	}
}

func TestWordProfileZeroWritesIsRO(t *testing.T) {
	var w wordProfile
	w.note(1, false)
	if !w.readOnly() {
		t.Fatal("never-written word must be read-only")
	}
}

func TestMisraGriesNeverLosesTrueMajority(t *testing.T) {
	// Property: if one hint makes up >=90% of accesses, singleHint() is
	// true no matter the interleaving.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var w wordProfile
		n := 200 + rng.Intn(300)
		minority := n / 10 // exactly 10%, majority 90%
		seq := make([]uint64, 0, n)
		for i := 0; i < n-minority; i++ {
			seq = append(seq, 42)
		}
		for i := 0; i < minority; i++ {
			seq = append(seq, uint64(1000+rng.Intn(50)))
		}
		rng.Shuffle(len(seq), func(a, b int) { seq[a], seq[b] = seq[b], seq[a] })
		for _, h := range seq {
			w.note(h, false)
		}
		return w.singleHint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestProfilerArgumentsCounted(t *testing.T) {
	p := newProfiler()
	p.onCommit([]uint64{8}, nil, 1, true, 1, 3)
	cl := p.classify()
	if cl.Arguments == 0 {
		t.Fatal("arguments not counted")
	}
	if cl.TotalAccesses != 4 { // 1 read + 3 args
		t.Fatalf("total = %d, want 4", cl.TotalAccesses)
	}
}

func TestProfilerNoHintTasksAreMultiHint(t *testing.T) {
	p := newProfiler()
	// Two NOHINT tasks share one word: must classify multi-hint.
	p.onCommit([]uint64{16}, nil, 0, false, 1, 0)
	p.onCommit([]uint64{16}, nil, 0, false, 2, 0)
	cl := p.classify()
	if cl.MultiHintRO == 0 {
		t.Fatal("word shared by two NOHINT tasks must be multi-hint")
	}
}

func TestProfilerEmpty(t *testing.T) {
	cl := newProfiler().classify()
	if cl.TotalAccesses != 0 {
		t.Fatal("empty profile not empty")
	}
}

func TestClassifyFractionsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := newProfiler()
		for task := uint64(0); task < 20; task++ {
			var reads, writes []uint64
			for i := 0; i < rng.Intn(10); i++ {
				reads = append(reads, uint64(rng.Intn(16))*8)
			}
			for i := 0; i < rng.Intn(4); i++ {
				writes = append(writes, uint64(rng.Intn(16))*8)
			}
			p.onCommit(reads, writes, task%5, rng.Intn(2) == 0, task, rng.Intn(3))
		}
		cl := p.classify()
		if cl.TotalAccesses == 0 {
			return true
		}
		sum := cl.MultiHintRO + cl.SingleHintRO + cl.MultiHintRW + cl.SingleHintRW + cl.Arguments
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
