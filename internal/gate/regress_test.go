package gate

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sync/atomic"
	"testing"
	"time"

	"swarmhints/internal/service"
	"swarmhints/swarm/api"
)

// emptyRecordReplica answers every /v1/run with a 200 whose result set
// carries zero records — the malformed-but-reachable replica of the
// rs.Records[0] regression. Its /healthz is green, so only in-band
// outcomes can (wrongly) change its standing.
func emptyRecordReplica(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/run" {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"schema":"swarmhints.metrics.v1","records":[]}`))
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestGatewayEmptyReplicaResponse: a replica that answers 200 with a
// zero-record result set must not crash the point goroutine or poison the
// fleet — the point retries against a different replica and completes, and
// because the misbehaving replica is reachable (the failure is
// instance-bound internal, not unavailable), its health flag stays up so a
// fixed deploy re-enters rotation without waiting for a probe.
func TestGatewayEmptyReplicaResponse(t *testing.T) {
	single := startReplica(t, "")
	body := `{"bench":"des","sched":"random","cores":1,"scale":"tiny"}`
	resp, want := post(t, single.URL, "/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single run status %d: %s", resp.StatusCode, want)
	}

	good := startReplica(t, "")
	bad := emptyRecordReplica(t)
	// Round-robin from the bad replica first: the very first attempt hits
	// the zero-record answer and must re-route.
	g, ts := startGateway(t, BalancerRoundRobin, bad.URL, good.URL)

	resp, got := post(t, ts.URL, "/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run with a zero-record replica in the fleet: %d %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Error("re-routed run bytes differ from single swarmd")
	}
	if rep := resp.Header.Get("X-Swarmgate-Replica"); rep != good.URL {
		t.Errorf("point served by %q, want the well-behaved replica", rep)
	}

	c := g.Counters()
	if c.Failed[bad.URL] == 0 {
		t.Error("zero-record answer not counted as a failed attempt")
	}
	if !c.Healthy[bad.URL] {
		t.Error("reachable replica demoted for an instance-bound internal error")
	}
	// A full sweep still reassembles, whatever share round-robin hands the
	// misbehaving replica.
	if gotSweep, wantSweep := postSweep(t, ts.URL, "json"), fig2Golden(t); !bytes.Equal(gotSweep, wantSweep) {
		t.Error("sweep through a zero-record replica differs from the golden export")
	}
}

// TestGatewayCanceledRequestKeepsScores: a client disconnect mid-attempt
// is not evidence about the replica. The attempt must not count as a
// replica failure, must not decay the balancer score, and must not demote
// health — before the fix a canceled long point decayed the adaptive score
// and bumped failed_total exactly as a real replica error would.
func TestGatewayCanceledRequestKeepsScores(t *testing.T) {
	// The replica parks every /v1/run until the caller gives up, then cuts
	// the connection — a healthy-but-slow instance seen by a client that
	// hung up. Once "recovered", it serves normally (in-process service).
	svc := service.New(service.Options{Workers: 4, Validate: true})
	t.Cleanup(svc.Close)
	backing := svc.Handler()
	var recovered atomic.Bool
	done := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/run" && !recovered.Load() {
			select {
			case <-r.Context().Done():
			case <-done:
			}
			panic(http.ErrAbortHandler)
		}
		backing.ServeHTTP(w, r)
	}))
	t.Cleanup(slow.Close)
	t.Cleanup(func() { close(done) }) // unpark before slow.Close waits on handlers

	g, ts := startGateway(t, BalancerAdaptive, slow.URL)
	before := g.Counters()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	rr := api.RunRequest{Bench: "des", Sched: "random", Cores: 1, Scale: "tiny"}
	_, _, aerr := g.runPoint(ctx, rr)
	if aerr == nil {
		t.Fatal("canceled point reported success")
	}
	if aerr.Code != api.CodeShuttingDown {
		t.Fatalf("canceled point reported %q, want %q", aerr.Code, api.CodeShuttingDown)
	}

	after := g.Counters()
	if after.Failed[slow.URL] != before.Failed[slow.URL] {
		t.Errorf("failed count moved %d -> %d on a client cancellation",
			before.Failed[slow.URL], after.Failed[slow.URL])
	}
	if after.Scores[slow.URL] != before.Scores[slow.URL] {
		t.Errorf("balancer score moved %v -> %v on a client cancellation",
			before.Scores[slow.URL], after.Scores[slow.URL])
	}
	if !after.Healthy[slow.URL] {
		t.Error("replica demoted by a client cancellation")
	}
	if failed := promCounter(t, ts.URL, `swarmgate_replica_failed_total\{replica="`+regexp.QuoteMeta(slow.URL)+`"\}`); failed != 0 {
		t.Errorf("swarmgate_replica_failed_total = %v after a client cancellation, want 0", failed)
	}

	// The slot the canceled attempt held is released: a fresh, uncanceled
	// point through the same balancer still routes and completes. (Under
	// p2c a leaked outstanding slot would skew every later pick.)
	recovered.Store(true)
	rec, _, aerr2 := g.runPoint(context.Background(), rr)
	if aerr2 != nil {
		t.Fatalf("follow-up point after cancellation: %v", aerr2)
	}
	if len(rec.Labels) == 0 {
		t.Error("follow-up point returned an empty record")
	}
}
