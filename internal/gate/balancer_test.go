package gate

import (
	"strings"
	"testing"
	"time"
)

func picks(b Balancer, candidates []int, n int) map[int]int {
	counts := make(map[int]int)
	for i := 0; i < n; i++ {
		p := b.Pick(candidates)
		counts[p]++
		b.Observe(p, time.Millisecond, OutcomeSuccess)
	}
	return counts
}

func TestNewBalancerNames(t *testing.T) {
	for _, name := range []string{"", BalancerAdaptive, BalancerP2C, BalancerRoundRobin} {
		if _, err := NewBalancer(name, 3, 1); err != nil {
			t.Errorf("NewBalancer(%q): %v", name, err)
		}
	}
	_, err := NewBalancer("magic", 3, 1)
	if err == nil {
		t.Fatal("unknown balancer accepted")
	}
	for _, want := range []string{BalancerAdaptive, BalancerP2C, BalancerRoundRobin} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not list %q", err, want)
		}
	}
}

// TestAdaptiveDecaysOnFailureAndRecovers is the pheromone contract: errors
// collapse a replica's score multiplicatively (floored, never to zero), a
// degraded replica loses almost all traffic, and subsequent successes let
// it re-earn its share.
func TestAdaptiveDecaysOnFailureAndRecovers(t *testing.T) {
	a := newAdaptive(2, 1)
	// Replica 1 fails repeatedly: score collapses to the floor.
	for i := 0; i < 10; i++ {
		a.Observe(1, time.Millisecond, OutcomeFailure)
	}
	s := a.Scores()
	if s[1] != scoreMin {
		t.Fatalf("failed replica score = %v, want floor %v", s[1], scoreMin)
	}
	if s[0] != scoreInit {
		t.Fatalf("healthy replica score moved: %v", s[0])
	}
	// Routing now heavily favors replica 0...
	counts := make(map[int]int)
	for i := 0; i < 1000; i++ {
		counts[a.Pick([]int{0, 1})]++
	}
	if counts[1] > 150 {
		t.Fatalf("degraded replica still drew %d/1000 picks", counts[1])
	}
	if counts[1] == 0 {
		t.Fatal("floor failed: degraded replica fully starved, cannot prove recovery")
	}
	// ...but equal-speed successes on replica 1 restore its score.
	for i := 0; i < 5; i++ {
		a.Observe(0, time.Millisecond, OutcomeSuccess)
	}
	for i := 0; i < 50; i++ {
		a.Observe(1, time.Millisecond, OutcomeSuccess)
	}
	if s := a.Scores(); s[1] < 0.9 {
		t.Fatalf("recovered replica score = %v, want ~1", s[1])
	}
}

// TestAdaptiveFavorsFasterReplica: with one replica consistently 4x
// faster, reinforcement should tilt traffic toward it.
func TestAdaptiveFavorsFasterReplica(t *testing.T) {
	a := newAdaptive(2, 1)
	for i := 0; i < 50; i++ {
		a.Observe(0, time.Millisecond, OutcomeSuccess)
		a.Observe(1, 4*time.Millisecond, OutcomeSuccess)
	}
	s := a.Scores()
	if s[0] <= s[1] {
		t.Fatalf("scores fast=%v slow=%v, want fast > slow", s[0], s[1])
	}
	counts := make(map[int]int)
	for i := 0; i < 1000; i++ {
		counts[a.Pick([]int{0, 1})]++
	}
	if counts[0] <= counts[1] {
		t.Fatalf("picks fast=%d slow=%d, want majority on the fast replica", counts[0], counts[1])
	}
}

func TestAdaptiveScoreBounds(t *testing.T) {
	a := newAdaptive(1, 1)
	// A replica absurdly faster than the reference must cap, not diverge.
	a.Observe(0, time.Second, OutcomeSuccess) // sets the reference high
	for i := 0; i < 200; i++ {
		a.Observe(0, time.Nanosecond, OutcomeSuccess)
	}
	if s := a.Scores()[0]; s > scoreMax {
		t.Fatalf("score %v exceeds cap %v", s, scoreMax)
	}
}

// TestP2CPrefersLessLoaded: with replica 0 carrying outstanding work, p2c
// must route new picks to the idle replica.
func TestP2CPrefersLessLoaded(t *testing.T) {
	p := newP2C(2, 1)
	// Load replica 0 with 5 outstanding attempts (no Observe yet).
	for i := 0; i < 5; i++ {
		p.out[0]++
	}
	counts := make(map[int]int)
	for i := 0; i < 100; i++ {
		pick := p.Pick([]int{0, 1})
		counts[pick]++
		p.Observe(pick, time.Millisecond, OutcomeSuccess) // return the slot
	}
	if counts[1] < 90 {
		t.Fatalf("picks under load: %v, want nearly all on the idle replica", counts)
	}
}

func TestP2CSingleCandidate(t *testing.T) {
	p := newP2C(3, 1)
	if got := p.Pick([]int{2}); got != 2 {
		t.Fatalf("pick from singleton = %d, want 2", got)
	}
	p.Observe(2, time.Millisecond, OutcomeSuccess)
}

func TestRoundRobinCycles(t *testing.T) {
	r := newRoundRobin()
	cands := []int{0, 1, 2}
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, r.Pick(cands))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round-robin sequence %v, want %v", got, want)
		}
	}
	// A shrunken candidate set (replica drained) still cycles cleanly.
	for i := 0; i < 4; i++ {
		if p := r.Pick([]int{0, 2}); p != 0 && p != 2 {
			t.Fatalf("pick %d outside candidate set", p)
		}
	}
}

// TestBalancersCoverAllReplicas: every balancer eventually uses every
// healthy replica — nobody is silently starved on a uniform fleet.
func TestBalancersCoverAllReplicas(t *testing.T) {
	for _, name := range []string{BalancerAdaptive, BalancerP2C, BalancerRoundRobin} {
		b, err := NewBalancer(name, 3, 7)
		if err != nil {
			t.Fatal(err)
		}
		counts := picks(b, []int{0, 1, 2}, 300)
		for i := 0; i < 3; i++ {
			if counts[i] == 0 {
				t.Errorf("%s: replica %d never picked: %v", name, i, counts)
			}
		}
	}
}
