package gate

import (
	"math"
	"sync"
	"time"
)

// Hedging parameters.
const (
	// hedgeMinSamples is how many successes the latency tracker needs
	// before hedging activates — with no distribution estimate, a hedge
	// delay would be a guess.
	hedgeMinSamples = 8
	// hedgeAlpha is the EWMA weight of one success in the mean/variance.
	hedgeAlpha = 0.2
	// hedgeMinDelay floors the hedge delay so sub-millisecond fleets don't
	// hedge every point.
	hedgeMinDelay = time.Millisecond
)

// latencyEWMA tracks the fleet-wide success-latency distribution as an
// exponentially weighted mean and variance, and derives the hedge delay:
// mean + 1.645σ, the ~p95 of a normal approximation. A point still
// unanswered past that delay is a straggler worth racing — the hedge fires
// for roughly the slowest one-in-twenty points, bounding the duplicate
// work hedging adds.
type latencyEWMA struct {
	mu   sync.Mutex
	n    int
	mean float64 // seconds
	vr   float64 // EWMA of squared deviation from the running mean
}

// observe folds one success latency into the estimate.
func (l *latencyEWMA) observe(d time.Duration) {
	s := d.Seconds()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.n++
	if l.n == 1 {
		l.mean = s
		return
	}
	diff := s - l.mean
	l.mean += hedgeAlpha * diff
	l.vr = (1-hedgeAlpha)*l.vr + hedgeAlpha*diff*diff
}

// hedgeDelay returns how long to wait before racing a second replica, and
// whether enough samples exist to hedge at all.
func (l *latencyEWMA) hedgeDelay() (time.Duration, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n < hedgeMinSamples {
		return 0, false
	}
	d := time.Duration((l.mean + 1.645*math.Sqrt(l.vr)) * float64(time.Second))
	if d < hedgeMinDelay {
		d = hedgeMinDelay
	}
	return d, true
}
