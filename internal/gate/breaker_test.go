package gate

import (
	"math/rand"
	"testing"
	"time"
)

func TestBreakerTripsAfterThreshold(t *testing.T) {
	b := newBreaker(3, time.Hour)
	for i := 0; i < 2; i++ {
		b.failure()
		if !b.ready() {
			t.Fatalf("breaker open after %d failures, threshold 3", i+1)
		}
	}
	b.failure()
	if b.ready() {
		t.Fatal("breaker still admitting traffic after threshold failures")
	}
	if st, opens := b.snapshot(); st != breakerOpen || opens != 1 {
		t.Fatalf("state=%v opens=%d, want open/1", st, opens)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := newBreaker(3, time.Hour)
	b.failure()
	b.failure()
	b.success()
	b.failure()
	b.failure()
	if !b.ready() {
		t.Fatal("success did not reset the consecutive-failure streak")
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := newBreaker(1, 10*time.Millisecond)
	b.failure() // trip
	if b.ready() {
		t.Fatal("open breaker admitted traffic inside the cooldown")
	}
	time.Sleep(15 * time.Millisecond)
	if !b.ready() {
		t.Fatal("expired open breaker should admit a probe")
	}
	if !b.enter() {
		t.Fatal("first post-cooldown attempt should be the probe")
	}
	// With the probe in flight, nobody else gets through.
	if b.ready() || b.enter() {
		t.Fatal("second attempt admitted while the probe is in flight")
	}
	// A probe verdict of failure re-opens; of success closes.
	b.failure()
	if st, opens := b.snapshot(); st != breakerOpen || opens != 2 {
		t.Fatalf("after failed probe: state=%v opens=%d, want open/2", st, opens)
	}
	time.Sleep(15 * time.Millisecond)
	if !b.enter() {
		t.Fatal("re-probe not admitted after second cooldown")
	}
	b.success()
	if st, _ := b.snapshot(); st != breakerClosed {
		t.Fatalf("after successful probe: state=%v, want closed", st)
	}
	if !b.ready() {
		t.Fatal("closed breaker should admit traffic")
	}
}

func TestBreakerCanceledProbeReleasesSlot(t *testing.T) {
	b := newBreaker(1, time.Millisecond)
	b.failure()
	time.Sleep(5 * time.Millisecond)
	probe := b.enter()
	if !probe {
		t.Fatal("expected the probe slot")
	}
	// The probe's attempt was abandoned without a verdict: the slot must
	// free so the next attempt can probe instead of deadlocking half-open.
	b.canceled(probe)
	if !b.enter() {
		t.Fatal("probe slot not released by canceled()")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(-1, 0) // nil breaker
	for i := 0; i < 100; i++ {
		b.failure()
	}
	if !b.ready() || b.enter() {
		t.Fatal("disabled breaker must always admit and never probe")
	}
	b.success()
	b.canceled(false)
	if st, opens := b.snapshot(); st != breakerClosed || opens != 0 {
		t.Fatalf("disabled breaker reports state=%v opens=%d", st, opens)
	}
}

func TestBackoffDelayBounds(t *testing.T) {
	g := &Gateway{opt: Options{RetryBackoff: 10 * time.Millisecond, Seed: 1}}
	g.rng = rand.New(rand.NewSource(1))
	for a := 1; a <= 10; a++ {
		cap := 10 * time.Millisecond << uint(a-1)
		if cap > maxRetryBackoff || cap <= 0 {
			cap = maxRetryBackoff
		}
		for i := 0; i < 50; i++ {
			d := g.backoffDelay(a)
			if d < 0 || d >= cap {
				t.Fatalf("attempt %d: delay %v outside [0, %v)", a, d, cap)
			}
		}
	}
	g.opt.RetryBackoff = -1
	if d := g.backoffDelay(3); d != 0 {
		t.Fatalf("disabled backoff returned %v", d)
	}
}

func TestJitteredInterval(t *testing.T) {
	g := &Gateway{opt: Options{Seed: 1}}
	g.rng = rand.New(rand.NewSource(1))
	base := time.Second
	for i := 0; i < 200; i++ {
		d := g.jittered(base)
		if d < 750*time.Millisecond || d >= 1250*time.Millisecond {
			t.Fatalf("jittered(1s) = %v outside [750ms, 1250ms)", d)
		}
	}
}

func TestHedgeDelayNeedsSamplesAndTracksP95(t *testing.T) {
	var l latencyEWMA
	if _, ok := l.hedgeDelay(); ok {
		t.Fatal("hedge delay available with no samples")
	}
	for i := 0; i < hedgeMinSamples; i++ {
		l.observe(10 * time.Millisecond)
	}
	d, ok := l.hedgeDelay()
	if !ok {
		t.Fatal("hedge delay unavailable after the sample floor")
	}
	// Constant 10ms latencies: mean 10ms, near-zero variance — the delay
	// sits a hair above the mean, never below it or wildly above.
	if d < 10*time.Millisecond || d > 20*time.Millisecond {
		t.Fatalf("hedge delay %v for constant 10ms latencies", d)
	}
	// A spread distribution pushes the delay past the mean by ~1.645σ.
	var wide latencyEWMA
	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			wide.observe(5 * time.Millisecond)
		} else {
			wide.observe(15 * time.Millisecond)
		}
	}
	dw, _ := wide.hedgeDelay()
	if dw <= d/2 || dw > 40*time.Millisecond {
		t.Fatalf("hedge delay %v for a 5/15ms mixture", dw)
	}
}
