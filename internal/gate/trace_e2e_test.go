// Trace end-to-end suite: with observability enabled, a gateway sweep
// under an injected swarmd.run.slow fault must leave a trace in the span
// ring that tells the whole story — the timed-out attempt on the slow
// replica and its retry landing on a different one — retrievable through
// the same X-Swarm-Trace header the response echoes. The in-process
// replicas share obs.Default with the gateway, so the gateway's client
// spans and the replicas' server spans land in one ring, exactly like one
// machine running the whole fleet.
package gate

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
	"time"

	"swarmhints/internal/fault"
	"swarmhints/internal/obs"
	"swarmhints/internal/service"
	"swarmhints/swarm/api"
)

// withObs enables tracing and histograms for one test and restores the
// disabled default afterwards.
func withObs(t *testing.T) {
	t.Helper()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(false) })
}

// TestGatewayTraceRetryAcrossReplicas: one of two replicas answers every
// run 30s late; the gateway's 2s per-attempt timeout converts that into a
// retryable failure and the retry must hit the other replica. The sweep's
// bytes stay identical to a single swarmd's, and the trace named by the
// response's X-Swarm-Trace header shows both attempts: a gate.attempt
// span with outcome=failure on the slow replica and a gate.attempt span
// with retry=true, outcome=retry for the same point on the other one,
// plus the replicas' own server-side swarmd spans in the same trace.
func TestGatewayTraceRetryAcrossReplicas(t *testing.T) {
	withObs(t)
	defer fault.Default.Reset()

	single := startReplica(t, "")
	want := postSweep(t, single.URL, "ndjson")

	slow := startChaosReplica(t, service.Options{FaultScope: "laggard"})
	fast := startChaosReplica(t, service.Options{})
	// The injected latency must overshoot the attempt timeout on any
	// machine speed, and the timeout must dwarf a healthy tiny-scale point
	// even under the race detector.
	fault.Default.Arm("laggard.swarmd.run.slow",
		fault.Plan{Every: 1, Latency: 30 * time.Second})
	_, ts := startChaosGateway(t, Options{
		Replicas:     []string{slow.URL, fast.URL},
		Balancer:     BalancerRoundRobin,
		PointTimeout: 2 * time.Second,
	})

	resp, got := post(t, ts.URL, "/v1/sweep", strings.Replace(fig2SweepBody, "%s", "ndjson", 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Error("traced sweep over a slow replica differs from a single swarmd's bytes")
	}
	decodeStream(t, got)

	// The response names its trace; the ring must hold the story.
	header := resp.Header.Get(api.TraceHeader)
	trace, _, ok := obs.ParseHeader(header)
	if !ok {
		t.Fatalf("sweep response %s header = %q, want a parsable trace", api.TraceHeader, header)
	}
	spans := obs.Default.TraceSpans(trace)
	if len(spans) == 0 {
		t.Fatal("no spans retained for the sweep's trace")
	}

	// Index the gate.attempt spans: failures on the slow replica, retry
	// wins elsewhere, correlated per point by the point attribute.
	failedPoints := map[string]string{} // point -> replica that failed it
	retryPoints := map[string]string{}  // point -> replica that answered the retry
	serverSpans := 0
	for _, sp := range spans {
		switch sp.Name() {
		case "gate.attempt":
			switch sp.Attr("outcome") {
			case "failure":
				failedPoints[sp.Attr("point")] = sp.Attr("replica")
			case "retry":
				if sp.Attr("retry") != "true" {
					t.Errorf("outcome=retry span lacks retry=true: point %s", sp.Attr("point"))
				}
				retryPoints[sp.Attr("point")] = sp.Attr("replica")
			}
		case "swarmd.run":
			serverSpans++
		}
	}
	if len(failedPoints) == 0 {
		t.Fatal("no failed gate.attempt span recorded against the slow replica")
	}
	if serverSpans == 0 {
		t.Error("no server-side swarmd.run spans joined the trace (header propagation broken)")
	}
	rerouted := 0
	for point, failedOn := range failedPoints {
		retriedOn, ok := retryPoints[point]
		if !ok {
			// This point's failure was absorbed some other way (e.g. its
			// retry lost a later race); the invariant needs one witness.
			continue
		}
		if failedOn != slow.URL {
			t.Errorf("point %s failed on %s, want the slow replica %s", point, failedOn, slow.URL)
		}
		if retriedOn == failedOn {
			t.Errorf("point %s retried on the same replica %s that failed it", point, retriedOn)
		}
		if retriedOn != fast.URL {
			t.Errorf("point %s retried on %s, want the healthy replica %s", point, retriedOn, fast.URL)
		}
		rerouted++
	}
	if rerouted == 0 {
		t.Error("no point shows the failure→retry hop between replicas in its trace")
	}

	// The trace is fetchable over HTTP by the ID the response handed out.
	tresp, body := get(t, ts.URL+"/debug/traces/"+trace.String())
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/{id} = %d: %s", tresp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`"gate.attempt"`)) || !bytes.Contains(body, []byte(trace.String())) {
		t.Error("debug trace body lacks the trace's attempt spans")
	}
}

// get is post's GET sibling.
func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}
