package gate

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"sync"

	"swarmhints/internal/bench"
	"swarmhints/internal/cliutil"
	"swarmhints/internal/exp"
	"swarmhints/internal/fault"
	"swarmhints/internal/metrics"
	"swarmhints/internal/obs"
	"swarmhints/internal/service"
	"swarmhints/swarm"
	"swarmhints/swarm/api"
)

// The gateway serves the same /v1 surface as a single swarmd, on the same
// swarm/api contract. Requests are validated with the exact parse logic
// the replicas use (service.ParseRun/ParseSweep), so the gateway never
// forwards a point a replica would reject, and validation errors carry
// the same envelope codes a replica would return.

// Handler returns the gateway's HTTP API.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", g.handleRun)
	mux.HandleFunc("POST /v1/sweep", g.handleSweep)
	mux.HandleFunc("GET /v1/experiments", g.handleExperimentList)
	mux.HandleFunc("POST /v1/experiments/{id}", g.handleExperiment)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	obs.Default.Mount(mux)
	if g.opt.FaultAdmin {
		mux.Handle("/v1/faults", fault.AdminHandler(fault.Default))
	}
	return mux
}

// traced begins (or continues, when the caller sent an X-Swarm-Trace
// header) the request's root span and echoes its trace on the response,
// so a client can immediately fetch /debug/traces/{id} for the request it
// just made. Callers must End the returned span.
func traced(w http.ResponseWriter, r *http.Request, name string) (context.Context, *obs.Span) {
	ctx, sp := obs.ContinueSpan(r.Context(), r.Header.Get(api.TraceHeader), name)
	if sp != nil {
		w.Header().Set(api.TraceHeader, sp.Header())
	}
	return ctx, sp
}

// pointRequest builds the canonical per-point /v1/run request: scale and
// seed resolved and explicit, the scheduler in its parseable spelling.
func pointRequest(p exp.Point, scale bench.Scale, seed int64) api.RunRequest {
	return api.Point{
		Bench: p.Name, Sched: cliutil.SchedFlag(p.Kind),
		Cores: p.Cores, Profile: p.Profile,
	}.Run(scale.String(), seed)
}

// handleRun serves POST /v1/run by routing the point to one replica. The
// response is the replica's single-record result set re-encoded — byte
// identical, since both ends marshal the same metrics.ResultSet shape.
func (g *Gateway) handleRun(w http.ResponseWriter, r *http.Request) {
	ctx, sp := traced(w, r, "swarmgate.run")
	defer sp.End()
	var req api.RunRequest
	if aerr := api.DecodeRequest(w, r, &req); aerr != nil {
		api.WriteError(w, aerr)
		return
	}
	cfg, aerr := service.ParseRun(req)
	if aerr != nil {
		api.WriteError(w, aerr)
		return
	}
	sp.SetAttr("key", cfg.Key())
	if req.Seeds > 1 {
		g.handleRunSeeds(w, ctx, cfg, req.Seeds)
		return
	}
	rec, url, aerr := g.runPoint(ctx, pointRequest(cfg.Point, cfg.Scale, cfg.Seed))
	if aerr != nil {
		api.WriteError(w, aerr)
		return
	}
	rs := metrics.ResultSet{Schema: metrics.SchemaVersion, Fields: exp.ExportFields,
		Records: []metrics.Record{rec}}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		api.WriteError(w, api.Errorf(api.CodeInternal, "%v", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Swarmgate-Replica", url)
	_, _ = w.Write(buf.Bytes())
}

// handleRunSeeds serves a seeds > 1 run request: the configuration's seed
// replicas become per-seed /v1/run requests — the same routing unit as a
// sweep point, balanced, retried, and bounded exactly alike — and the
// responses are merged in fixed seed order. Each replica executes (and
// store-caches) one seed under its ordinary per-seed key, so the merged
// answer is byte-identical to a single swarmd serving the same seeds
// request, and incremental when the fan-out is repeated with more seeds.
func (g *Gateway) handleRunSeeds(w http.ResponseWriter, ctx context.Context, cfg service.Config, n int) {
	seeds := exp.ReplicaSeeds(cfg.Seed, n)
	rrs := make([]api.RunRequest, len(seeds))
	for i, s := range seeds {
		rrs[i] = pointRequest(cfg.Point, cfg.Scale, s)
	}
	recs, aerr := g.runAllPoints(ctx, rrs)
	if aerr != nil {
		api.WriteError(w, aerr)
		return
	}
	per := make([]*swarm.Stats, len(recs))
	for i := range recs {
		per[i] = swarm.StatsFromSnapshot(recs[i].Snapshot)
	}
	merged, err := swarm.MergeStats(per)
	if err != nil {
		api.WriteError(w, api.Errorf(api.CodeInternal, "%v", err))
		return
	}
	rs := exp.ExportSet([]exp.Point{cfg.Point}, cfg.Scale, cfg.Seed,
		func(exp.Point) *swarm.Stats { return merged })
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		api.WriteError(w, api.Errorf(api.CodeInternal, "%v", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

// handleSweep serves POST /v1/sweep: the grid is decomposed into points,
// each point routed to a balancer-chosen replica, and the responses are
// reassembled in canonical configuration order — the same order, framing,
// and bytes a single swarmd would emit.
func (g *Gateway) handleSweep(w http.ResponseWriter, r *http.Request) {
	ctx, sp := traced(w, r, "swarmgate.sweep")
	defer sp.End()
	var req api.SweepRequest
	if aerr := api.DecodeRequest(w, r, &req); aerr != nil {
		api.WriteError(w, aerr)
		return
	}
	points, scale, seed, aerr := service.ParseSweep(req)
	if aerr != nil {
		api.WriteError(w, aerr)
		return
	}
	sp.SetAttrInt("points", int64(len(points)))
	format := req.Format
	if format == "" {
		format = "ndjson"
	}
	rrs := make([]api.RunRequest, len(points))
	for i, p := range points {
		rrs[i] = pointRequest(p, scale, seed)
	}
	g.sweeps.Add(1)

	switch format {
	case "ndjson":
		g.streamSweep(w, ctx, rrs)
	case "json", "csv":
		recs, aerr := g.runAllPoints(ctx, rrs)
		if aerr != nil {
			api.WriteError(w, aerr)
			return
		}
		rs := metrics.ResultSet{Schema: metrics.SchemaVersion, Fields: exp.ExportFields, Records: recs}
		g.writeResultSet(w, &rs, format)
	default:
		api.WriteError(w, api.UnknownFormat(format, api.SweepFormats))
	}
}

// writeResultSet encodes a reassembled result set in a buffered format.
func (g *Gateway) writeResultSet(w http.ResponseWriter, rs *metrics.ResultSet, format string) {
	var buf bytes.Buffer
	var contentType string
	var err error
	switch format {
	case "json":
		contentType = "application/json"
		err = rs.WriteJSON(&buf)
	case "csv":
		contentType = "text/csv"
		err = rs.WriteCSV(&buf)
	default:
		api.WriteError(w, api.UnknownFormat(format, api.SweepFormats))
		return
	}
	if err != nil {
		api.WriteError(w, api.Errorf(api.CodeInternal, "%v", err))
		return
	}
	w.Header().Set("Content-Type", contentType)
	_, _ = w.Write(buf.Bytes())
}

// runAllPoints routes every point across the fleet with bounded
// concurrency and returns the records in point order. The first
// non-retryable failure cancels the remaining points and is reported;
// cancellation ripples are suppressed in its favor.
func (g *Gateway) runAllPoints(ctx context.Context, rrs []api.RunRequest) ([]metrics.Record, *api.Error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	recs := make([]metrics.Record, len(rrs))
	errs := make([]*api.Error, len(rrs))
	sem := make(chan struct{}, g.opt.Concurrency)
	var wg sync.WaitGroup
	for i := range rrs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				errs[i] = api.Errorf(api.CodeShuttingDown, "%v", ctx.Err())
				return
			}
			defer func() { <-sem }()
			rec, _, aerr := g.runPoint(ctx, rrs[i])
			if aerr != nil {
				errs[i] = aerr
				cancel()
				return
			}
			recs[i] = rec
		}()
	}
	wg.Wait()
	var first *api.Error
	for _, e := range errs {
		if e == nil {
			continue
		}
		// Prefer the root-cause failure over cancellation ripples.
		if first == nil || (first.Code == api.CodeShuttingDown && e.Code != api.CodeShuttingDown) {
			first = e
		}
	}
	if first != nil {
		return nil, first
	}
	return recs, nil
}

// streamSweep emits the sweep as NDJSON in the api framing, routing
// points across the fleet with bounded concurrency and writing record i
// as soon as records 0..i have all completed — the same prefix-order
// streaming a single swarmd performs, so the stream bytes are identical.
// A point that fails after its retries truncates the stream (no trailer),
// exactly as a single swarmd's mid-grid failure would.
func (g *Gateway) streamSweep(w http.ResponseWriter, ctx context.Context, rrs []api.RunRequest) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	header, err := api.EncodeHeader(api.StreamHeader{
		Schema: metrics.SchemaVersion, Fields: exp.ExportFields, Points: len(rrs),
	})
	if err != nil {
		api.WriteError(w, api.Errorf(api.CodeInternal, "%v", err))
		return
	}
	written := int64(0)
	if n, err := w.Write(header); err != nil {
		return
	} else {
		written += int64(n)
	}
	flush := func() {}
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	flush()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var mu sync.Mutex // guards next, lines, streamErr, written, and writes to w
	next := 0
	lines := make(map[int][]byte, len(rrs))
	var streamErr error
	sem := make(chan struct{}, g.opt.Concurrency)
	var wg sync.WaitGroup
	for i := range rrs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			defer func() { <-sem }()
			rec, _, aerr := g.runPoint(ctx, rrs[i])
			mu.Lock()
			defer mu.Unlock()
			if streamErr != nil {
				return
			}
			if aerr != nil {
				streamErr = aerr
				cancel()
				return
			}
			line, err := api.EncodeRecord(rec)
			if err != nil {
				streamErr = err
				cancel()
				return
			}
			lines[i] = line
			for next < len(rrs) && lines[next] != nil {
				n, err := w.Write(lines[next])
				written += int64(n)
				if err != nil {
					streamErr = err
					cancel()
					return
				}
				delete(lines, next)
				next++
			}
			flush()
		}()
	}
	wg.Wait()
	if streamErr != nil {
		slog.Error("sweep stream aborted",
			"component", "swarmgate",
			"trace", obs.Trace(ctx),
			"point", next,
			"points", len(rrs),
			"bytes", written,
			"err", streamErr)
		return
	}
	if trailer, err := api.EncodeTrailer(len(rrs)); err == nil {
		_, _ = w.Write(trailer)
		flush()
	}
}

// handleExperimentList proxies GET /v1/experiments from a replica and
// re-encodes it — the listing is identical on every replica.
func (g *Gateway) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	attempts := g.opt.Retries + 1
	var lastErr *api.Error
	last := -1
	for a := 0; a < attempts; a++ {
		i := g.pick(last)
		rep := g.replicas[i]
		list, err := rep.client.Experiments(r.Context())
		if err == nil {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(list)
			return
		}
		lastErr = api.AsError(err)
		if lastErr.Code == api.CodeUnavailable || lastErr.Code == api.CodeShuttingDown {
			rep.healthy.Store(false)
		}
		if !lastErr.Retryable {
			break
		}
		last = i
	}
	api.WriteError(w, lastErr)
}

// handleExperiment proxies POST /v1/experiments/{id} to one replica — an
// experiment is a single unit of work (its points still hit the shared
// store, so fleet-wide reuse holds). Retryable failures re-route to a
// different replica like any point.
func (g *Gateway) handleExperiment(w http.ResponseWriter, r *http.Request) {
	ctx, sp := traced(w, r, "swarmgate.experiment")
	defer sp.End()
	id := r.PathValue("id")
	sp.SetAttr("experiment", id)
	var req api.ExperimentRequest
	if aerr := api.DecodeRequest(w, r, &req); aerr != nil {
		api.WriteError(w, aerr)
		return
	}
	attempts := g.opt.Retries + 1
	var lastErr *api.Error
	last := -1
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			api.WriteError(w, api.Errorf(api.CodeShuttingDown, "%v", err))
			return
		}
		i := g.pick(last)
		rep := g.replicas[i]
		body, contentType, err := rep.client.Experiment(ctx, id, req)
		if err == nil {
			w.Header().Set("Content-Type", contentType)
			w.Header().Set("X-Swarmgate-Replica", rep.url)
			_, _ = io.Copy(w, body)
			body.Close()
			return
		}
		lastErr = api.AsError(err)
		if lastErr.Code == api.CodeUnavailable || lastErr.Code == api.CodeShuttingDown {
			rep.healthy.Store(false)
		}
		if !lastErr.Retryable {
			break
		}
		last = i
	}
	api.WriteError(w, lastErr)
}

// handleHealthz reports the gateway's own liveness plus the per-replica
// health flags (keys sorted by URL, so the body is deterministic).
func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	c := g.Counters()
	body := struct {
		Status   string          `json:"status"`
		Replicas map[string]bool `json:"replicas"`
	}{Status: "ok", Replicas: c.Healthy}
	w.Header().Set("Content-Type", "application/json")
	b, err := json.Marshal(body)
	if err != nil {
		api.WriteError(w, api.Errorf(api.CodeInternal, "%v", err))
		return
	}
	_, _ = w.Write(append(b, '\n'))
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = metrics.WriteProm(w, g.PromMetrics())
}
