// Package gate is the fleet front door behind cmd/swarmgate: an HTTP
// gateway exposing the same /v1 surface as a single swarmd (swarm/api
// contract), which decomposes sweep grids point-by-point across a fleet
// of swarmd replicas, routes each point through a pluggable balancer
// (adaptive pheromone scoring, power-of-two-choices, or round-robin),
// executes with a per-point timeout and bounded retry-on-retryable
// against a different replica, and reassembles the canonical-order
// response stream — so gateway output is byte-identical to a single
// swarmd's for the same request.
//
// Health is maintained two ways: a background prober polls every
// replica's /healthz, and in-band outcomes adjust both the health flag
// (transport failures and shutting_down responses drain a replica) and
// the balancer's scores. A replica killed mid-sweep therefore stops
// receiving new points, its in-flight points are re-routed to surviving
// replicas, and the sweep still completes.
package gate

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"swarmhints/internal/metrics"
	"swarmhints/swarm/api"
)

// Options configures a Gateway.
type Options struct {
	// Replicas are the swarmd base URLs the gateway fans out over.
	Replicas []string
	// Balancer selects the routing policy: adaptive (default), p2c, or
	// roundrobin.
	Balancer string
	// PointTimeout bounds each routing attempt of one point (0 = none).
	// A timed-out attempt counts as a failure and retries elsewhere.
	PointTimeout time.Duration
	// Retries is how many additional attempts a retryable point failure
	// gets, each against a different replica when one exists (default 3).
	Retries int
	// Concurrency bounds how many points the gateway keeps in flight per
	// request (0 = 4 × replicas).
	Concurrency int
	// ProbeInterval is the background /healthz polling period (0 = 1s;
	// negative disables the prober — in-band outcomes still maintain
	// health, and tests drive ProbeOnce directly).
	ProbeInterval time.Duration
	// Seed feeds the randomized balancers' PRNG (default 1).
	Seed int64
	// HTTPClient overrides the transport used for replica requests.
	HTTPClient *http.Client
}

// probeTimeout bounds one background /healthz probe.
const probeTimeout = 2 * time.Second

// replica is the gateway's view of one swarmd instance.
type replica struct {
	url    string
	client *api.Client

	healthy  atomic.Bool
	inflight atomic.Int64
	routed   atomic.Uint64 // attempts routed here (including retries)
	retried  atomic.Uint64 // attempts routed here that were retries of a failure elsewhere
	failed   atomic.Uint64 // attempts that failed here
}

// Gateway routes /v1 requests over a swarmd replica fleet.
type Gateway struct {
	opt      Options
	replicas []*replica
	bal      Balancer

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	sweeps atomic.Uint64
	points atomic.Uint64
}

// New builds a Gateway and starts its health prober (unless disabled).
func New(opt Options) (*Gateway, error) {
	if len(opt.Replicas) == 0 {
		return nil, fmt.Errorf("gate: at least one replica required")
	}
	if opt.Retries < 0 {
		opt.Retries = 0
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = 4 * len(opt.Replicas)
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.ProbeInterval == 0 {
		opt.ProbeInterval = time.Second
	}
	bal, err := NewBalancer(opt.Balancer, len(opt.Replicas), opt.Seed)
	if err != nil {
		return nil, err
	}
	g := &Gateway{opt: opt, bal: bal}
	g.ctx, g.cancel = context.WithCancel(context.Background())
	for _, u := range opt.Replicas {
		r := &replica{url: u, client: api.NewClient(u, opt.HTTPClient)}
		r.healthy.Store(true) // optimistic: demoted by the first failed probe or attempt
		g.replicas = append(g.replicas, r)
	}
	if opt.ProbeInterval > 0 {
		g.wg.Add(1)
		go g.probeLoop()
	}
	return g, nil
}

// Close stops the prober and aborts in-flight routing. Safe to call more
// than once.
func (g *Gateway) Close() {
	g.cancel()
	g.wg.Wait()
}

// Context returns the gateway's lifetime context. HTTP servers should use
// it as their BaseContext so Close cancels every in-flight request.
func (g *Gateway) Context() context.Context { return g.ctx }

// probeLoop polls every replica's /healthz until Close.
func (g *Gateway) probeLoop() {
	defer g.wg.Done()
	t := time.NewTicker(g.opt.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.ctx.Done():
			return
		case <-t.C:
			g.ProbeOnce(g.ctx)
		}
	}
}

// ProbeOnce probes every replica's /healthz once, concurrently, and
// updates the health flags. Exported so tests (and operators' debug
// tooling) can force a probe cycle deterministically.
func (g *Gateway) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, r := range g.replicas {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, probeTimeout)
			defer cancel()
			r.healthy.Store(r.client.Healthz(pctx) == nil)
		}()
	}
	wg.Wait()
}

// pick chooses the replica for the next attempt: healthy replicas first,
// excluding the one that just failed whenever an alternative exists, and
// degrading to "anyone" rather than refusing to route — a wrongly-drained
// fleet self-heals through in-band successes.
func (g *Gateway) pick(exclude int) int {
	var healthy, all []int
	for i, r := range g.replicas {
		if i == exclude {
			continue
		}
		all = append(all, i)
		if r.healthy.Load() {
			healthy = append(healthy, i)
		}
	}
	cands := healthy
	if len(cands) == 0 {
		cands = all
	}
	if len(cands) == 0 {
		return exclude // single-replica fleet: no alternative exists
	}
	return g.bal.Pick(cands)
}

// runPoint routes one point: pick a replica, execute with the per-attempt
// timeout, and on a retryable failure try again against a different
// replica, up to the retry bound. It returns the replica that served the
// point alongside the record.
func (g *Gateway) runPoint(ctx context.Context, rr api.RunRequest) (metrics.Record, string, *api.Error) {
	attempts := g.opt.Retries + 1
	var lastErr *api.Error
	last := -1
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			return metrics.Record{}, "", api.Errorf(api.CodeShuttingDown, "%v", err)
		}
		i := g.pick(last)
		r := g.replicas[i]
		r.routed.Add(1)
		if a > 0 {
			r.retried.Add(1)
		}
		r.inflight.Add(1)
		actx, cancel := ctx, context.CancelFunc(func() {})
		if g.opt.PointTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, g.opt.PointTimeout)
		}
		start := time.Now()
		rs, err := r.client.Run(actx, rr)
		lat := time.Since(start)
		cancel()
		r.inflight.Add(-1)
		if err == nil && len(rs.Records) != 1 {
			// Guard the index below even though the client also rejects
			// wrong-cardinality responses: a 200 with zero records is a
			// malformed replica answer, never a reason to panic the sweep
			// goroutine. Instance-bound, so retry against a different
			// replica; the replica is reachable, so no health demotion.
			err = &api.Error{
				Code:      api.CodeInternal,
				Message:   fmt.Sprintf("replica returned %d records, want 1", len(rs.Records)),
				Retryable: true,
			}
		}
		if err == nil {
			g.bal.Observe(i, lat, OutcomeSuccess)
			r.healthy.Store(true) // in-band recovery
			g.points.Add(1)
			return rs.Records[0], r.url, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			// The caller's own context died mid-attempt: whatever the
			// client returned, this attempt tells us nothing about the
			// replica. Release the balancer slot without a score signal,
			// leave failed counters and health untouched, and report the
			// cancellation — a client disconnect must not poison
			// pheromone scores or demote a healthy replica.
			g.bal.Observe(i, lat, OutcomeCanceled)
			return metrics.Record{}, "", api.Errorf(api.CodeShuttingDown, "%v", cerr)
		}
		ae := api.AsError(err)
		g.bal.Observe(i, lat, OutcomeFailure)
		r.failed.Add(1)
		if ae.Code == api.CodeUnavailable || ae.Code == api.CodeShuttingDown {
			// Unreachable or draining: stop sending new points here until
			// a probe (or an in-band success) revives it.
			r.healthy.Store(false)
		}
		if !ae.Retryable {
			// Deterministic failure: every replica would answer the same.
			return metrics.Record{}, r.url, ae
		}
		lastErr = ae
		last = i
	}
	return metrics.Record{}, "", lastErr
}

// Counters is a point-in-time snapshot of the gateway's operational
// counters, keyed by replica URL.
type Counters struct {
	Routed   map[string]uint64
	Retried  map[string]uint64
	Failed   map[string]uint64
	Inflight map[string]int64
	Healthy  map[string]bool
	Scores   map[string]float64

	Points uint64 // points served across all requests
	Sweeps uint64 // sweep requests accepted
}

// Counters snapshots the operational counters.
func (g *Gateway) Counters() Counters {
	c := Counters{
		Routed:   make(map[string]uint64, len(g.replicas)),
		Retried:  make(map[string]uint64, len(g.replicas)),
		Failed:   make(map[string]uint64, len(g.replicas)),
		Inflight: make(map[string]int64, len(g.replicas)),
		Healthy:  make(map[string]bool, len(g.replicas)),
		Scores:   make(map[string]float64, len(g.replicas)),
		Points:   g.points.Load(),
		Sweeps:   g.sweeps.Load(),
	}
	scores := g.bal.Scores()
	for i, r := range g.replicas {
		c.Routed[r.url] = r.routed.Load()
		c.Retried[r.url] = r.retried.Load()
		c.Failed[r.url] = r.failed.Load()
		c.Inflight[r.url] = r.inflight.Load()
		c.Healthy[r.url] = r.healthy.Load()
		if scores != nil {
			c.Scores[r.url] = scores[i]
		} else {
			c.Scores[r.url] = 1
		}
	}
	return c
}

// PromMetrics renders the gateway counters as Prometheus metric families
// for the /metrics endpoint.
func (g *Gateway) PromMetrics() []metrics.PromMetric {
	c := g.Counters()
	healthy := make(map[string]float64, len(c.Healthy))
	for u, h := range c.Healthy {
		if h {
			healthy[u] = 1
		} else {
			healthy[u] = 0
		}
	}
	inflight := make(map[string]float64, len(c.Inflight))
	for u, n := range c.Inflight {
		inflight[u] = float64(n)
	}
	return []metrics.PromMetric{
		metrics.PromSingle("swarmgate_points_total", "Points served across all requests.", "counter", float64(c.Points)),
		metrics.PromSingle("swarmgate_sweeps_total", "Sweep requests accepted.", "counter", float64(c.Sweeps)),
		metrics.PromPerLabel("swarmgate_replica_routed_total", "Attempts routed to each replica (retries included).", "replica", c.Routed),
		metrics.PromPerLabel("swarmgate_replica_retried_total", "Retry attempts routed to each replica after a failure elsewhere.", "replica", c.Retried),
		metrics.PromPerLabel("swarmgate_replica_failed_total", "Attempts that failed on each replica.", "replica", c.Failed),
		metrics.PromPerLabelGauge("swarmgate_replica_score", "Balancer desirability score per replica (adaptive: pheromone level).", "replica", c.Scores),
		metrics.PromPerLabelGauge("swarmgate_replica_healthy", "Replica health (1 = in the candidate set).", "replica", healthy),
		metrics.PromPerLabelGauge("swarmgate_replica_inflight", "Attempts in flight per replica.", "replica", inflight),
	}
}
