// Package gate is the fleet front door behind cmd/swarmgate: an HTTP
// gateway exposing the same /v1 surface as a single swarmd (swarm/api
// contract), which decomposes sweep grids point-by-point across a fleet
// of swarmd replicas, routes each point through a pluggable balancer
// (adaptive pheromone scoring, power-of-two-choices, or round-robin),
// executes with a per-point timeout and bounded retry-on-retryable
// against a different replica, and reassembles the canonical-order
// response stream — so gateway output is byte-identical to a single
// swarmd's for the same request.
//
// Health is maintained two ways: a background prober polls every
// replica's /healthz, and in-band outcomes adjust both the health flag
// (transport failures and shutting_down responses drain a replica) and
// the balancer's scores. A replica killed mid-sweep therefore stops
// receiving new points, its in-flight points are re-routed to surviving
// replicas, and the sweep still completes.
package gate

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"swarmhints/internal/fault"
	"swarmhints/internal/metrics"
	"swarmhints/internal/obs"
	"swarmhints/swarm/api"
)

// Attempt-outcome labels of the swarmgate_attempt_duration_seconds
// histogram family. Every per-point routing attempt lands in exactly one:
// the winner's outcome describes how it won (first try, retry, or hedge),
// a healthy replica held off by its open breaker records a zero-duration
// breaker-skip, and losers record failure or canceled.
const (
	attemptOK          = "ok"
	attemptRetry       = "retry"
	attemptHedgeWin    = "hedge-win"
	attemptBreakerSkip = "breaker-skip"
	attemptFailure     = "failure"
	attemptCanceled    = "canceled"
)

// Options configures a Gateway.
type Options struct {
	// Replicas are the swarmd base URLs the gateway fans out over.
	Replicas []string
	// Balancer selects the routing policy: adaptive (default), p2c, or
	// roundrobin.
	Balancer string
	// PointTimeout bounds each routing attempt of one point (0 = none).
	// A timed-out attempt counts as a failure and retries elsewhere.
	PointTimeout time.Duration
	// Retries is how many additional attempts a retryable point failure
	// gets, each against a different replica when one exists (default 3).
	Retries int
	// Concurrency bounds how many points the gateway keeps in flight per
	// request (0 = 4 × replicas).
	Concurrency int
	// ProbeInterval is the background /healthz polling period (0 = 1s;
	// negative disables the prober — in-band outcomes still maintain
	// health, and tests drive ProbeOnce directly). Each wait is jittered
	// ±25% so a fleet of gateways doesn't synchronize its probe bursts.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each individual /healthz probe (0 = 2s). A
	// replica slower than this to answer its health check is treated as
	// unhealthy even if the TCP connection succeeds.
	ProbeTimeout time.Duration
	// BreakerThreshold is how many consecutive failures open a replica's
	// circuit breaker (0 = 5; negative disables breakers entirely).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker holds attempts off
	// before admitting a half-open probe (0 = 2s).
	BreakerCooldown time.Duration
	// RetryBackoff is the base of the exponential backoff with full jitter
	// between retry attempts: retry a sleeps Uniform(0, base·2^(a-1)),
	// capped at maxRetryBackoff (0 = 5ms; negative disables backoff).
	RetryBackoff time.Duration
	// Hedge enables straggler hedging: a point still unanswered after the
	// fleet's ~p95 latency (EWMA-estimated) is raced on a second replica;
	// the first success wins and the loser is canceled without scoring.
	Hedge bool
	// Seed feeds the randomized balancers' PRNG and the jitter source
	// (default 1).
	Seed int64
	// HTTPClient overrides the transport used for replica requests.
	HTTPClient *http.Client
	// FaultAdmin mounts the test-only /v1/faults admin endpoint on the
	// gateway handler. Never enable it on a production-facing listener.
	FaultAdmin bool
}

// Retry-backoff bounds.
const (
	DefaultRetryBackoff = 5 * time.Millisecond
	maxRetryBackoff     = 250 * time.Millisecond
)

// DefaultProbeTimeout bounds one background /healthz probe.
const DefaultProbeTimeout = 2 * time.Second

// replica is the gateway's view of one swarmd instance.
type replica struct {
	url    string
	client *api.Client
	brk    *breaker // nil when breakers are disabled

	healthy  atomic.Bool
	inflight atomic.Int64
	routed   atomic.Uint64 // attempts routed here (including retries and hedges)
	retried  atomic.Uint64 // attempts routed here that were retries of a failure elsewhere
	failed   atomic.Uint64 // attempts that failed here
}

// Gateway routes /v1 requests over a swarmd replica fleet.
type Gateway struct {
	opt      Options
	replicas []*replica
	bal      Balancer
	lat      latencyEWMA // fleet-wide success latency, drives the hedge delay

	rngMu sync.Mutex
	rng   *rand.Rand // jitter source (probe interval, retry backoff)

	siteAttempt *fault.Site // gate.attempt: fail/delay a client-path attempt

	// Attempt-latency histograms (internal/obs), one per outcome,
	// resolved once like fault sites so the observe path stays
	// allocation-free. attemptVec renders the family on /metrics.
	attemptVec      *obs.HistVec
	histOK          *obs.Histogram
	histRetry       *obs.Histogram
	histHedgeWin    *obs.Histogram
	histBreakerSkip *obs.Histogram
	histFailure     *obs.Histogram
	histCanceled    *obs.Histogram

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	sweeps    atomic.Uint64
	points    atomic.Uint64
	hedged    atomic.Uint64 // hedge attempts launched
	hedgeWins atomic.Uint64 // points won by the hedge, not the primary
}

// New builds a Gateway and starts its health prober (unless disabled).
func New(opt Options) (*Gateway, error) {
	if len(opt.Replicas) == 0 {
		return nil, fmt.Errorf("gate: at least one replica required")
	}
	if opt.Retries < 0 {
		opt.Retries = 0
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = 4 * len(opt.Replicas)
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.ProbeInterval == 0 {
		opt.ProbeInterval = time.Second
	}
	if opt.ProbeTimeout <= 0 {
		opt.ProbeTimeout = DefaultProbeTimeout
	}
	bal, err := NewBalancer(opt.Balancer, len(opt.Replicas), opt.Seed)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		opt:         opt,
		bal:         bal,
		rng:         rand.New(rand.NewSource(opt.Seed)),
		siteAttempt: fault.Default.Site("gate.attempt"),
		attemptVec: obs.NewHistVec("swarmgate_attempt_duration_seconds",
			"Per-point routing attempt latency by outcome.", "outcome", nil,
			attemptOK, attemptRetry, attemptHedgeWin, attemptBreakerSkip,
			attemptFailure, attemptCanceled),
	}
	g.histOK = g.attemptVec.With(attemptOK)
	g.histRetry = g.attemptVec.With(attemptRetry)
	g.histHedgeWin = g.attemptVec.With(attemptHedgeWin)
	g.histBreakerSkip = g.attemptVec.With(attemptBreakerSkip)
	g.histFailure = g.attemptVec.With(attemptFailure)
	g.histCanceled = g.attemptVec.With(attemptCanceled)
	g.ctx, g.cancel = context.WithCancel(context.Background())
	for _, u := range opt.Replicas {
		r := &replica{
			url:    u,
			client: api.NewClient(u, opt.HTTPClient),
			brk:    newBreaker(opt.BreakerThreshold, opt.BreakerCooldown),
		}
		r.healthy.Store(true) // optimistic: demoted by the first failed probe or attempt
		g.replicas = append(g.replicas, r)
	}
	if opt.ProbeInterval > 0 {
		g.wg.Add(1)
		go g.probeLoop()
	}
	return g, nil
}

// Close stops the prober and aborts in-flight routing. Safe to call more
// than once.
func (g *Gateway) Close() {
	g.cancel()
	g.wg.Wait()
}

// Context returns the gateway's lifetime context. HTTP servers should use
// it as their BaseContext so Close cancels every in-flight request.
func (g *Gateway) Context() context.Context { return g.ctx }

// probeLoop polls every replica's /healthz until Close. Each wait is an
// independently jittered interval (±25%) rather than a fixed ticker, so
// several gateways probing the same fleet — or one gateway restarted in a
// crash loop — spread their probe bursts instead of synchronizing them.
func (g *Gateway) probeLoop() {
	defer g.wg.Done()
	for {
		t := time.NewTimer(g.jittered(g.opt.ProbeInterval))
		select {
		case <-g.ctx.Done():
			t.Stop()
			return
		case <-t.C:
			g.ProbeOnce(g.ctx)
		}
	}
}

// jittered scales d by a uniform factor in [0.75, 1.25).
func (g *Gateway) jittered(d time.Duration) time.Duration {
	g.rngMu.Lock()
	f := 0.75 + 0.5*g.rng.Float64()
	g.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// backoffDelay returns the sleep before retry attempt a (1-based):
// exponential with full jitter, Uniform(0, min(base·2^(a-1), cap)). Full
// jitter — drawing from the whole interval, not around its midpoint —
// maximally decorrelates retries that failed together, which is exactly
// the situation after a replica crash dumps its in-flight points back on
// the fleet at once.
func (g *Gateway) backoffDelay(a int) time.Duration {
	base := g.opt.RetryBackoff
	if base < 0 {
		return 0
	}
	if base == 0 {
		base = DefaultRetryBackoff
	}
	d := base << uint(a-1)
	if d <= 0 || d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	g.rngMu.Lock()
	f := g.rng.Float64()
	g.rngMu.Unlock()
	return time.Duration(f * float64(d))
}

// ProbeOnce probes every replica's /healthz once, concurrently, and
// updates the health flags. Exported so tests (and operators' debug
// tooling) can force a probe cycle deterministically.
func (g *Gateway) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, r := range g.replicas {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, g.opt.ProbeTimeout)
			defer cancel()
			r.healthy.Store(r.client.Healthz(pctx) == nil)
		}()
	}
	wg.Wait()
}

// pick chooses the replica for the next attempt: healthy replicas whose
// circuit breaker admits traffic first, then any healthy replica, then
// anyone — excluding the one that just failed whenever an alternative
// exists, and degrading rather than refusing to route, so a wrongly-
// drained (or fully tripped) fleet self-heals through in-band successes.
func (g *Gateway) pick(exclude int) int {
	var admitted, healthy, all []int
	for i, r := range g.replicas {
		if i == exclude {
			continue
		}
		all = append(all, i)
		if !r.healthy.Load() {
			continue
		}
		healthy = append(healthy, i)
		if r.brk.ready() {
			admitted = append(admitted, i)
		} else {
			// A healthy replica held off by its open breaker: record the
			// exclusion as a zero-duration breaker-skip observation so the
			// histogram shows how much traffic breakers are deflecting.
			g.histBreakerSkip.Observe(0)
		}
	}
	cands := admitted
	if len(cands) == 0 {
		cands = healthy
	}
	if len(cands) == 0 {
		cands = all
	}
	if len(cands) == 0 {
		return exclude // single-replica fleet: no alternative exists
	}
	return g.bal.Pick(cands)
}

// runPoint routes one point: pick a replica, execute the (possibly hedged)
// attempt, and on a retryable failure back off with full jitter and try
// again against a different replica, up to the retry bound. It returns the
// replica that served the point alongside the record.
func (g *Gateway) runPoint(ctx context.Context, rr api.RunRequest) (metrics.Record, string, *api.Error) {
	attempts := g.opt.Retries + 1
	var lastErr *api.Error
	last := -1
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			return metrics.Record{}, "", api.Errorf(api.CodeShuttingDown, "%v", err)
		}
		if a > 0 {
			if d := g.backoffDelay(a); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-ctx.Done():
					t.Stop()
					return metrics.Record{}, "", api.Errorf(api.CodeShuttingDown, "%v", ctx.Err())
				case <-t.C:
				}
			}
		}
		i := g.pick(last)
		rec, idx, ae := g.attempt(ctx, rr, i, a > 0)
		if ae == nil {
			return rec, g.replicas[idx].url, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			// The caller's own context died mid-attempt: the attempt told
			// us nothing about the replica (it was observed as Canceled,
			// not Failure) — report the cancellation.
			return metrics.Record{}, "", api.Errorf(api.CodeShuttingDown, "%v", cerr)
		}
		if !ae.Retryable {
			// Deterministic failure: every replica would answer the same.
			url := ""
			if idx >= 0 {
				url = g.replicas[idx].url
			}
			return metrics.Record{}, url, ae
		}
		lastErr = ae
		if idx >= 0 {
			last = idx
		}
	}
	return metrics.Record{}, "", lastErr
}

// attempt executes one routing attempt of a point against the primary
// replica, optionally racing a hedge replica when the primary straggles
// past the fleet's estimated p95 latency. The first success wins and
// settles all scoring for its replica; the loser is canceled and observed
// as OutcomeCanceled — no score movement, no failure counter, no breaker
// or health verdict — because losing a race says nothing about a replica's
// health. It returns the winning record and replica index, or the first
// real failure (and its replica index, -1 if none is attributable).
func (g *Gateway) attempt(ctx context.Context, rr api.RunRequest, primary int, retry bool) (metrics.Record, int, *api.Error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the loser the moment the winner returns

	type outcome struct {
		idx int
		rec metrics.Record
		err *api.Error
		won bool
	}
	// Buffered for both launches: a loser settling after runPoint moved on
	// must never block its goroutine forever.
	results := make(chan outcome, 2)
	var won atomic.Bool

	launch := func(idx int, hedge bool) {
		r := g.replicas[idx]
		r.routed.Add(1)
		if retry {
			r.retried.Add(1)
		}
		if hedge {
			g.hedged.Add(1)
		}
		probe := r.brk.enter()
		r.inflight.Add(1)
		go func() {
			defer r.inflight.Add(-1)
			cctx, ccancel := actx, context.CancelFunc(func() {})
			if g.opt.PointTimeout > 0 {
				cctx, ccancel = context.WithTimeout(actx, g.opt.PointTimeout)
			}
			defer ccancel()
			// The attempt span carries the trace to the replica: client.Run
			// propagates it in the X-Swarm-Trace header, so the replica's
			// server-side spans land in the same trace with this span as
			// parent — retries and hedges are distinguishable by attribute.
			cctx, sp := obs.StartSpan(cctx, "gate.attempt")
			sp.SetAttr("replica", r.url)
			sp.SetAttr("point", fmt.Sprintf("%s/%s/%d", rr.Bench, rr.Sched, rr.Cores))
			if retry {
				sp.SetAttr("retry", "true")
			}
			if hedge {
				sp.SetAttr("hedge", "true")
			}
			finish := func(outcome string, lat time.Duration, h *obs.Histogram) {
				sp.SetAttr("outcome", outcome)
				sp.End()
				h.Observe(lat)
			}
			start := time.Now()
			var rs *metrics.ResultSet
			var err error
			if f, ok := g.siteAttempt.Fire(); ok {
				if err = f.Sleep(cctx); err == nil {
					err = f.Err
				}
			}
			if err == nil {
				rs, err = r.client.Run(cctx, rr)
			}
			lat := time.Since(start)
			if err == nil && len(rs.Records) != 1 {
				// Guard the index below even though the client also rejects
				// wrong-cardinality responses: a 200 with zero records is a
				// malformed replica answer, never a reason to panic the
				// sweep goroutine. Instance-bound, so retry against a
				// different replica; the replica is reachable, so no health
				// demotion.
				err = &api.Error{
					Code:      api.CodeInternal,
					Message:   fmt.Sprintf("replica returned %d records, want 1", len(rs.Records)),
					Retryable: true,
				}
			}
			switch {
			case err == nil:
				if won.CompareAndSwap(false, true) {
					g.bal.Observe(idx, lat, OutcomeSuccess)
					r.brk.success()
					r.healthy.Store(true) // in-band recovery
					g.lat.observe(lat)
					g.points.Add(1)
					if hedge {
						g.hedgeWins.Add(1)
					}
					switch {
					case hedge:
						finish(attemptHedgeWin, lat, g.histHedgeWin)
					case retry:
						finish(attemptRetry, lat, g.histRetry)
					default:
						finish(attemptOK, lat, g.histOK)
					}
					results <- outcome{idx: idx, rec: rs.Records[0], won: true}
					return
				}
				// Both raced legs succeeded; the sibling won. Identical
				// records either way (determinism), so this one is only a
				// slot release.
				g.bal.Observe(idx, lat, OutcomeCanceled)
				r.brk.canceled(probe)
				finish(attemptCanceled, lat, g.histCanceled)
				results <- outcome{idx: idx}
			case ctx.Err() != nil || actx.Err() != nil:
				// The caller disconnected, or the sibling won and canceled
				// this leg: either way the attempt tells us nothing about
				// the replica. Release the balancer slot without a score
				// signal, leave failed counters, breaker, and health
				// untouched — a disconnect must not poison pheromone scores
				// or demote a healthy replica.
				g.bal.Observe(idx, lat, OutcomeCanceled)
				r.brk.canceled(probe)
				finish(attemptCanceled, lat, g.histCanceled)
				results <- outcome{idx: idx, err: api.Errorf(api.CodeShuttingDown, "%v", err)}
			default:
				ae := api.AsError(err)
				g.bal.Observe(idx, lat, OutcomeFailure)
				r.failed.Add(1)
				r.brk.failure()
				finish(attemptFailure, lat, g.histFailure)
				if ae.Code == api.CodeUnavailable || ae.Code == api.CodeShuttingDown {
					// Unreachable or draining: stop sending new points here
					// until a probe (or an in-band success) revives it.
					r.healthy.Store(false)
				}
				results <- outcome{idx: idx, err: ae}
			}
		}()
	}

	launch(primary, false)
	pending := 1
	var hedgeC <-chan time.Time
	if g.opt.Hedge && len(g.replicas) > 1 {
		if d, ok := g.lat.hedgeDelay(); ok {
			t := time.NewTimer(d)
			defer t.Stop()
			hedgeC = t.C
		}
	}
	var firstErr *api.Error
	errIdx := -1
	for pending > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil // hedge at most once per attempt
			if j := g.pick(primary); j != primary {
				launch(j, true)
				pending++
			}
		case o := <-results:
			pending--
			if o.won {
				return o.rec, o.idx, nil
			}
			if o.err != nil && firstErr == nil {
				firstErr, errIdx = o.err, o.idx
			}
		}
	}
	if firstErr == nil { // unreachable: a non-winner always carries an error
		firstErr = api.Errorf(api.CodeInternal, "attempt settled without an outcome")
	}
	return metrics.Record{}, errIdx, firstErr
}

// Counters is a point-in-time snapshot of the gateway's operational
// counters, keyed by replica URL.
type Counters struct {
	Routed       map[string]uint64
	Retried      map[string]uint64
	Failed       map[string]uint64
	Inflight     map[string]int64
	Healthy      map[string]bool
	Scores       map[string]float64
	BreakerState map[string]string // closed | open | half-open
	BreakerOpens map[string]uint64 // lifetime breaker trips

	Points    uint64 // points served across all requests
	Sweeps    uint64 // sweep requests accepted
	Hedged    uint64 // hedge attempts launched against stragglers
	HedgeWins uint64 // points whose hedge finished before the primary
}

// Counters snapshots the operational counters.
func (g *Gateway) Counters() Counters {
	c := Counters{
		Routed:       make(map[string]uint64, len(g.replicas)),
		Retried:      make(map[string]uint64, len(g.replicas)),
		Failed:       make(map[string]uint64, len(g.replicas)),
		Inflight:     make(map[string]int64, len(g.replicas)),
		Healthy:      make(map[string]bool, len(g.replicas)),
		Scores:       make(map[string]float64, len(g.replicas)),
		BreakerState: make(map[string]string, len(g.replicas)),
		BreakerOpens: make(map[string]uint64, len(g.replicas)),
		Points:       g.points.Load(),
		Sweeps:       g.sweeps.Load(),
		Hedged:       g.hedged.Load(),
		HedgeWins:    g.hedgeWins.Load(),
	}
	scores := g.bal.Scores()
	for i, r := range g.replicas {
		c.Routed[r.url] = r.routed.Load()
		c.Retried[r.url] = r.retried.Load()
		c.Failed[r.url] = r.failed.Load()
		c.Inflight[r.url] = r.inflight.Load()
		c.Healthy[r.url] = r.healthy.Load()
		st, opens := r.brk.snapshot()
		c.BreakerState[r.url] = st.String()
		c.BreakerOpens[r.url] = opens
		if scores != nil {
			c.Scores[r.url] = scores[i]
		} else {
			c.Scores[r.url] = 1
		}
	}
	return c
}

// PromMetrics renders the gateway counters as Prometheus metric families
// for the /metrics endpoint.
func (g *Gateway) PromMetrics() []metrics.PromMetric {
	c := g.Counters()
	healthy := make(map[string]float64, len(c.Healthy))
	for u, h := range c.Healthy {
		if h {
			healthy[u] = 1
		} else {
			healthy[u] = 0
		}
	}
	inflight := make(map[string]float64, len(c.Inflight))
	for u, n := range c.Inflight {
		inflight[u] = float64(n)
	}
	// 0 = closed, 0.5 = half-open, 1 = open: "how much traffic is this
	// breaker holding off" on one gauge.
	brkOpen := make(map[string]float64, len(c.BreakerState))
	for u, st := range c.BreakerState {
		switch st {
		case "open":
			brkOpen[u] = 1
		case "half-open":
			brkOpen[u] = 0.5
		default:
			brkOpen[u] = 0
		}
	}
	return []metrics.PromMetric{
		metrics.PromSingle("swarmgate_points_total", "Points served across all requests.", "counter", float64(c.Points)),
		metrics.PromSingle("swarmgate_sweeps_total", "Sweep requests accepted.", "counter", float64(c.Sweeps)),
		metrics.PromSingle("swarmgate_hedged_total", "Hedge attempts launched against straggling points.", "counter", float64(c.Hedged)),
		metrics.PromSingle("swarmgate_hedge_wins_total", "Points whose hedge finished before the primary.", "counter", float64(c.HedgeWins)),
		metrics.PromPerLabel("swarmgate_replica_breaker_opens_total", "Circuit-breaker trips per replica.", "replica", c.BreakerOpens),
		metrics.PromPerLabelGauge("swarmgate_replica_breaker_open", "Breaker position per replica (0 closed, 0.5 half-open, 1 open).", "replica", brkOpen),
		metrics.PromPerLabel("swarmgate_replica_routed_total", "Attempts routed to each replica (retries included).", "replica", c.Routed),
		metrics.PromPerLabel("swarmgate_replica_retried_total", "Retry attempts routed to each replica after a failure elsewhere.", "replica", c.Retried),
		metrics.PromPerLabel("swarmgate_replica_failed_total", "Attempts that failed on each replica.", "replica", c.Failed),
		metrics.PromPerLabelGauge("swarmgate_replica_score", "Balancer desirability score per replica (adaptive: pheromone level).", "replica", c.Scores),
		metrics.PromPerLabelGauge("swarmgate_replica_healthy", "Replica health (1 = in the candidate set).", "replica", healthy),
		metrics.PromPerLabelGauge("swarmgate_replica_inflight", "Attempts in flight per replica.", "replica", inflight),
		g.attemptVec.Prom(),
	}
}
