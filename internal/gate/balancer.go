package gate

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Outcome classifies one attempt for the balancer's learning signal.
type Outcome int

// Outcomes. OutcomeCanceled is an attempt abandoned by the caller (the
// request context died mid-attempt): it releases the attempt's slot in
// load-tracking balancers but must not move any score — a client
// disconnect says nothing about the replica's health or speed.
const (
	OutcomeSuccess Outcome = iota
	OutcomeFailure
	OutcomeCanceled
)

// Balancer decides which replica serves the next point and learns from
// every attempt's outcome. Implementations are safe for concurrent use;
// every Pick is followed by exactly one Observe for the attempt it chose
// (whatever its outcome), which is what lets load-tracking balancers keep
// an outstanding count.
type Balancer interface {
	// Pick chooses one replica index among candidates (never empty).
	Pick(candidates []int) int
	// Observe reports the outcome of one attempt on replica i and its
	// latency.
	Observe(i int, latency time.Duration, o Outcome)
	// Scores snapshots the per-replica desirability signal (higher is
	// better), for the swarmgate_replica_score gauge.
	Scores() []float64
}

// Balancer names, as the -balancer flag spells them.
const (
	BalancerAdaptive   = "adaptive"
	BalancerP2C        = "p2c"
	BalancerRoundRobin = "roundrobin"
)

// NewBalancer builds the named balancer for n replicas. seed feeds the
// randomized balancers' private PRNG, so a fleet's routing is reproducible
// for a fixed seed and request sequence.
func NewBalancer(name string, n int, seed int64) (Balancer, error) {
	switch name {
	case "", BalancerAdaptive:
		return newAdaptive(n, seed), nil
	case BalancerP2C:
		return newP2C(n, seed), nil
	case BalancerRoundRobin:
		return newRoundRobin(), nil
	}
	return nil, fmt.Errorf("unknown balancer %q (have %s, %s, %s)",
		name, BalancerAdaptive, BalancerP2C, BalancerRoundRobin)
}

// Pheromone parameters of the adaptive balancer.
const (
	scoreInit      = 1.0  // every replica starts average
	scoreMin       = 0.05 // floor: a degraded replica keeps a trickle of traffic to prove recovery
	scoreMax       = 16.0 // cap: one fast replica must not starve the rest forever
	reinforceAlpha = 0.2  // EWMA weight of one success in the score
	failDecay      = 0.25 // multiplicative score decay per error/timeout
	refAlpha       = 0.1  // EWMA weight of one success in the fleet latency reference
)

// adaptive is SwarmRoute-style pheromone routing: each replica carries a
// score (its pheromone trail), picks are roulette-wheel proportional to
// score, successes reinforce toward the replica's speed relative to the
// fleet-wide latency reference, and errors/timeouts decay the score
// multiplicatively. The floor keeps a degraded replica visible enough to
// re-earn traffic once it recovers (and the health prober re-admits it to
// the candidate set).
type adaptive struct {
	mu    sync.Mutex
	rng   *rand.Rand
	score []float64
	ref   float64 // EWMA of success latency (seconds) across the fleet
}

func newAdaptive(n int, seed int64) *adaptive {
	a := &adaptive{rng: rand.New(rand.NewSource(seed)), score: make([]float64, n)}
	for i := range a.score {
		a.score[i] = scoreInit
	}
	return a
}

func (a *adaptive) Pick(candidates []int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := 0.0
	for _, c := range candidates {
		total += a.score[c]
	}
	x := a.rng.Float64() * total
	for _, c := range candidates {
		x -= a.score[c]
		if x < 0 {
			return c
		}
	}
	return candidates[len(candidates)-1]
}

func (a *adaptive) Observe(i int, latency time.Duration, o Outcome) {
	if o == OutcomeCanceled {
		return // no pheromone signal either way
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if o == OutcomeFailure {
		a.score[i] *= failDecay
		if a.score[i] < scoreMin {
			a.score[i] = scoreMin
		}
		return
	}
	lat := latency.Seconds()
	if lat <= 0 {
		lat = 1e-9
	}
	if a.ref == 0 {
		a.ref = lat
	} else {
		a.ref = (1-refAlpha)*a.ref + refAlpha*lat
	}
	// Reinforce toward relative speed: 1.0 for a fleet-average success,
	// above for faster-than-average replicas, below for stragglers.
	target := a.ref / lat
	if target > scoreMax {
		target = scoreMax
	}
	if target < scoreMin {
		target = scoreMin
	}
	a.score[i] = (1-reinforceAlpha)*a.score[i] + reinforceAlpha*target
	if a.score[i] > scoreMax {
		a.score[i] = scoreMax
	} else if a.score[i] < scoreMin {
		a.score[i] = scoreMin
	}
}

func (a *adaptive) Scores() []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]float64, len(a.score))
	copy(out, a.score)
	return out
}

// p2c is power-of-two-choices: sample two distinct candidates, send the
// point to the one with fewer outstanding attempts (ties broken by EWMA
// success latency). The classic measured baseline against adaptive.
type p2c struct {
	mu  sync.Mutex
	rng *rand.Rand
	out []int     // outstanding picks per replica
	lat []float64 // EWMA success latency (seconds); 0 = no data yet
}

func newP2C(n int, seed int64) *p2c {
	return &p2c{rng: rand.New(rand.NewSource(seed)), out: make([]int, n), lat: make([]float64, n)}
}

func (p *p2c) Pick(candidates []int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	pick := candidates[0]
	if len(candidates) > 1 {
		ai := p.rng.Intn(len(candidates))
		bi := p.rng.Intn(len(candidates) - 1)
		if bi >= ai {
			bi++
		}
		a, b := candidates[ai], candidates[bi]
		pick = a
		if p.out[b] < p.out[a] || (p.out[b] == p.out[a] && p.lat[b] < p.lat[a]) {
			pick = b
		}
	}
	p.out[pick]++
	return pick
}

func (p *p2c) Observe(i int, latency time.Duration, o Outcome) {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Every outcome — canceled included — returns the outstanding slot the
	// Pick took; only successes feed the latency signal.
	if p.out[i] > 0 {
		p.out[i]--
	}
	if o == OutcomeSuccess {
		lat := latency.Seconds()
		if p.lat[i] == 0 {
			p.lat[i] = lat
		} else {
			p.lat[i] = 0.8*p.lat[i] + 0.2*lat
		}
	}
}

func (p *p2c) Scores() []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]float64, len(p.out))
	for i := range out {
		out[i] = 1 / (1 + float64(p.out[i]))
	}
	return out
}

// roundRobin cycles through the candidate list — the no-signal baseline.
type roundRobin struct {
	mu   sync.Mutex
	next int
}

func newRoundRobin() *roundRobin { return &roundRobin{} }

func (r *roundRobin) Pick(candidates []int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	pick := candidates[r.next%len(candidates)]
	r.next++
	return pick
}

func (r *roundRobin) Observe(int, time.Duration, Outcome) {}

func (r *roundRobin) Scores() []float64 { return nil }
