package gate

import (
	"bytes"
	"context"
	"net/http"
	"testing"

	"swarmhints/internal/bench"
	"swarmhints/internal/exp"
	"swarmhints/swarm"
)

// TestGatewaySeedsFanout is the seeds acceptance criterion: a 64-seed
// configuration sharded across a 4-replica fleet answers with exactly the
// bytes of (a) a single swarmd serving the same seeds request and (b) the
// sequential single-engine fan-out (one shard, one worker) — merging is
// order-fixed, so how the seeds were sharded never shows in the output.
func TestGatewaySeedsFanout(t *testing.T) {
	const seeds = 64
	body := `{"bench":"des","sched":"lbhints","cores":4,"scale":"tiny","seeds":64}`

	single := startReplica(t, "")
	resp, want := post(t, single.URL, "/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single swarmd seeds run status %d: %s", resp.StatusCode, want)
	}

	dir := t.TempDir()
	r1, r2, r3, r4 := startReplica(t, dir), startReplica(t, dir), startReplica(t, dir), startReplica(t, dir)
	g, ts := startGateway(t, BalancerRoundRobin, r1.URL, r2.URL, r3.URL, r4.URL)
	resp, got := post(t, ts.URL, "/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway seeds run status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Error("gateway-merged seeds response differs from a single swarmd's")
	}
	if !bytes.Contains(got, []byte("swarmhints.metrics.v2")) || !bytes.Contains(got, []byte(`"seedSummary"`)) {
		t.Error("seeds response lacks the v2 stamp or seedSummary block")
	}

	// Sequential single-engine reference, exported exactly as the servers
	// export a run response.
	p := exp.Point{Name: "des", Kind: swarm.LBHints, Cores: 4}
	sr := exp.SeedRun{
		Point: p, Scale: bench.Tiny, BaseSeed: 7,
		Seeds: seeds, Shards: 1, Parallel: 1, Validate: true,
	}
	merged, _, err := sr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var ref bytes.Buffer
	rs := exp.ExportSet([]exp.Point{p}, bench.Tiny, 7,
		func(exp.Point) *swarm.Stats { return merged })
	if err := rs.WriteJSON(&ref); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref.Bytes()) {
		t.Error("gateway-merged seeds response differs from the sequential single-engine fan-out")
	}

	// The fan-out really was sharded: every replica served seed points.
	c := g.Counters()
	if c.Points != seeds {
		t.Errorf("gateway served %d points for the fan-out, want %d", c.Points, seeds)
	}
	for _, u := range []string{r1.URL, r2.URL, r3.URL, r4.URL} {
		if c.Routed[u] == 0 {
			t.Errorf("replica %s received no seed points", u)
		}
	}
}
