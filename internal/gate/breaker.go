package gate

import (
	"sync"
	"time"
)

// Breaker defaults (Options.BreakerThreshold / BreakerCooldown override).
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 2 * time.Second
)

// breakerState is a circuit breaker's position.
type breakerState int

// Breaker states.
const (
	breakerClosed   breakerState = iota // normal routing
	breakerOpen                         // tripped: no attempts until the cooldown elapses
	breakerHalfOpen                     // cooldown elapsed: exactly one probe attempt at a time
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one replica's circuit breaker. The health flag reacts to
// transport-level evidence (unreachable, draining); the breaker reacts to
// *any* consecutive-failure streak — including replicas that answer
// promptly with errors, which the prober sees as perfectly healthy. It
// trips open after threshold consecutive failures, holds attempts off for
// the cooldown, then admits a single half-open probe whose verdict closes
// or re-opens it.
//
// A nil *breaker is the disabled breaker: always ready, never trips —
// Options.BreakerThreshold < 0 routes exactly as before the breaker
// existed.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
	opens    uint64    // lifetime trips (closed→open and half-open→open)
}

// newBreaker builds a breaker, or nil (disabled) for threshold < 0.
func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 0 {
		return nil
	}
	if threshold == 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// ready reports whether the replica may receive an attempt right now,
// without claiming anything — pick uses it to build the candidate set.
func (b *breaker) ready() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return time.Since(b.openedAt) >= b.cooldown
	case breakerHalfOpen:
		return !b.probing
	default:
		return true
	}
}

// enter registers the start of an attempt, lazily moving an expired open
// breaker to half-open. It returns true when this attempt is the half-open
// probe; the holder must settle it with success, failure, or canceled.
func (b *breaker) enter() (probe bool) {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen && time.Since(b.openedAt) >= b.cooldown {
		b.state = breakerHalfOpen
		b.probing = false
	}
	if b.state == breakerHalfOpen && !b.probing {
		b.probing = true
		return true
	}
	return false
}

// success closes the breaker and clears the failure streak.
func (b *breaker) success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
}

// failure records one failed attempt: a half-open probe failure re-opens
// immediately; a closed-state failure trips at the threshold. Failures
// while already open (attempts forced through the degraded candidate path)
// add no new signal.
func (b *breaker) failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.trip()
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	}
}

// trip opens the breaker. Callers hold b.mu.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = time.Now()
	b.fails = 0
	b.probing = false
	b.opens++
}

// canceled releases a half-open probe slot whose attempt produced no
// verdict (caller disconnect, hedge loser) so the next attempt can probe.
func (b *breaker) canceled(probe bool) {
	if b == nil || !probe {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
}

// snapshot returns the externally visible state (an expired open reads as
// half-open) and the lifetime trip count.
func (b *breaker) snapshot() (breakerState, uint64) {
	if b == nil {
		return breakerClosed, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.state
	if st == breakerOpen && time.Since(b.openedAt) >= b.cooldown {
		st = breakerHalfOpen
	}
	return st, b.opens
}
