package gate

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"swarmhints/internal/service"
	"swarmhints/internal/store"
	"swarmhints/swarm/api"
)

// fig2SweepBody is the same fig2-tiny grid the service e2e tests use: its
// golden export (internal/exp/testdata) is the differential oracle for the
// gateway's byte-identity guarantee.
const fig2SweepBody = `{
	"benches": ["des"],
	"scheds":  ["random", "stealing", "hints", "lbhints"],
	"cores":   [1, 4],
	"scale":   "tiny",
	"format":  "%s"
}`

func fig2Golden(t *testing.T) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "exp", "testdata", "export_fig2_tiny.golden.json"))
	if err != nil {
		t.Fatalf("golden export missing: %v", err)
	}
	return b
}

// startReplica boots one in-process swarmd replica, optionally on a shared
// persistent store directory.
func startReplica(t *testing.T, storeDir string) *httptest.Server {
	t.Helper()
	opt := service.Options{Workers: 4, Validate: true}
	if storeDir != "" {
		st, err := store.Open(storeDir, 0)
		if err != nil {
			t.Fatal(err)
		}
		opt.Store = st
	}
	svc := service.New(opt)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return ts
}

// startGateway fronts the given replicas. The background prober is
// disabled so tests control health deterministically (in-band outcomes and
// explicit ProbeOnce calls still maintain it).
func startGateway(t *testing.T, balancer string, replicas ...string) (*Gateway, *httptest.Server) {
	t.Helper()
	g, err := New(Options{
		Replicas:      replicas,
		Balancer:      balancer,
		Retries:       3,
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(func() { ts.Close(); g.Close() })
	return g, ts
}

func post(t *testing.T, url, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func postSweep(t *testing.T, url, format string) []byte {
	t.Helper()
	resp, b := post(t, url, "/v1/sweep", strings.Replace(fig2SweepBody, "%s", format, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, b)
	}
	return b
}

// TestGatewaySweepMatchesSingleSwarmd is the gateway's acceptance
// criterion: for every balancer and every response format, a fig2-tiny
// sweep through a 3-replica fleet produces exactly the bytes a single
// swarmd produces — and the JSON leg exactly the committed golden export.
// The whole matrix runs with tracing and histograms enabled: spans and
// observations are side channels, so instrumented responses must stay
// byte-identical to the golden recorded before observability existed.
func TestGatewaySweepMatchesSingleSwarmd(t *testing.T) {
	withObs(t)
	single := startReplica(t, "")
	want := map[string][]byte{}
	for _, format := range []string{"ndjson", "json", "csv"} {
		want[format] = postSweep(t, single.URL, format)
	}
	if !bytes.Equal(want["json"], fig2Golden(t)) {
		t.Fatal("single-swarmd JSON sweep no longer matches the golden; fix that first")
	}

	dir := t.TempDir() // one store shared by the whole fleet
	r1, r2, r3 := startReplica(t, dir), startReplica(t, dir), startReplica(t, dir)
	for _, balancer := range []string{BalancerAdaptive, BalancerP2C, BalancerRoundRobin} {
		g, ts := startGateway(t, balancer, r1.URL, r2.URL, r3.URL)
		for _, format := range []string{"ndjson", "json", "csv"} {
			got := postSweep(t, ts.URL, format)
			if !bytes.Equal(got, want[format]) {
				t.Errorf("%s/%s: gateway bytes differ from single swarmd (%d vs %d bytes)",
					balancer, format, len(got), len(want[format]))
			}
		}
		c := g.Counters()
		if c.Points < 24 { // 8 points x 3 formats
			t.Errorf("%s: gateway served %d points, want >= 24", balancer, c.Points)
		}
		if c.Sweeps != 3 {
			t.Errorf("%s: gateway counted %d sweeps, want 3", balancer, c.Sweeps)
		}
	}
}

// flakyReplica fronts a live replica but aborts every /v1/run after the
// first one mid-response — the deterministic stand-in for a replica killed
// mid-sweep (in-flight request cut, replica unreachable afterwards).
func flakyReplica(t *testing.T, backend *httptest.Server) *httptest.Server {
	t.Helper()
	var runs atomic.Int64
	var killed atomic.Bool
	proxy := func(w http.ResponseWriter, r *http.Request) {
		if killed.Load() {
			panic(http.ErrAbortHandler) // dead to every endpoint, probes included
		}
		if r.URL.Path == "/v1/run" && runs.Add(1) > 1 {
			killed.Store(true)
			panic(http.ErrAbortHandler) // cut the connection like a kill -9
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, backend.URL+r.URL.Path, r.Body)
		if err != nil {
			panic(http.ErrAbortHandler)
		}
		req.Header = r.Header
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			panic(http.ErrAbortHandler)
		}
		defer resp.Body.Close()
		for k, v := range resp.Header {
			w.Header()[k] = v
		}
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}
	ts := httptest.NewServer(http.HandlerFunc(proxy))
	t.Cleanup(ts.Close)
	return ts
}

// TestGatewayReplicaKilledMidSweep: one of three replicas dies after
// serving its first point. The sweep must still complete with exactly the
// golden bytes — in-flight points on the dead replica re-route to the
// survivors — and the failure must be visible in swarmgate_replica_failed_total.
// (Round-robin guarantees the doomed replica receives >= 2 of the 8 points,
// so at least one is cut mid-flight.)
func TestGatewayReplicaKilledMidSweep(t *testing.T) {
	dir := t.TempDir()
	r1, r2 := startReplica(t, dir), startReplica(t, dir)
	flaky := flakyReplica(t, startReplica(t, dir))

	g, ts := startGateway(t, BalancerRoundRobin, r1.URL, r2.URL, flaky.URL)
	got := postSweep(t, ts.URL, "ndjson")

	// The stream is complete — trailer and all — and reassembles to golden.
	dec, err := api.NewStreamDecoder(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for {
		_, ok, err := dec.Next()
		if err != nil {
			t.Fatalf("gateway stream after replica kill: %v", err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 8 || dec.Trailer() == nil || !dec.Trailer().Complete {
		t.Fatalf("stream carried %d records, trailer %+v; want 8 and complete", n, dec.Trailer())
	}
	single := startReplica(t, "")
	if want := postSweep(t, single.URL, "ndjson"); !bytes.Equal(got, want) {
		t.Error("post-kill gateway stream differs from a single swarmd's bytes")
	}

	// A probe against the now-dead replica drains it (a late in-band
	// success can race the failure, so health is asserted post-probe).
	g.ProbeOnce(context.Background())
	c := g.Counters()
	if c.Failed[flaky.URL] == 0 {
		t.Errorf("no failures recorded on the killed replica: %+v", c.Failed)
	}
	if c.Healthy[flaky.URL] {
		t.Error("killed replica still marked healthy after probe")
	}
	if failed := promCounter(t, ts.URL, `swarmgate_replica_failed_total\{replica="`+regexp.QuoteMeta(flaky.URL)+`"\}`); failed == 0 {
		t.Error("swarmgate_replica_failed_total not incremented for the killed replica")
	}
	if c.Retried[r1.URL]+c.Retried[r2.URL] == 0 {
		t.Error("no re-routed retries recorded on the surviving replicas")
	}
}

// promCounter extracts one metric value from the gateway's /metrics;
// pattern is a regexp matching the series name (with labels).
func promCounter(t *testing.T, url, pattern string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	m := regexp.MustCompile(`(?m)^` + pattern + ` (\S+)$`).FindSubmatch(b)
	if m == nil {
		t.Fatalf("metric /%s/ missing from /metrics:\n%s", pattern, b)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestGatewayRunMatchesSingleSwarmd: the single-point proxy path is
// byte-identical too, and reports which replica served it.
func TestGatewayRunMatchesSingleSwarmd(t *testing.T) {
	single := startReplica(t, "")
	body := `{"bench":"des","sched":"random","cores":1,"scale":"tiny"}`
	resp, want := post(t, single.URL, "/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single run status %d: %s", resp.StatusCode, want)
	}

	dir := t.TempDir()
	r1, r2 := startReplica(t, dir), startReplica(t, dir)
	_, ts := startGateway(t, BalancerAdaptive, r1.URL, r2.URL)
	resp, got := post(t, ts.URL, "/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway run status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Error("gateway /v1/run bytes differ from single swarmd")
	}
	if rep := resp.Header.Get("X-Swarmgate-Replica"); rep != r1.URL && rep != r2.URL {
		t.Errorf("X-Swarmgate-Replica = %q, want one of the fleet", rep)
	}
}

// TestGatewayErrorEnvelope: the gateway speaks the same error contract as
// the replicas — structured envelope, same codes, no plain-text bodies —
// including for requests it rejects locally without touching the fleet.
func TestGatewayErrorEnvelope(t *testing.T) {
	r1 := startReplica(t, "")
	_, ts := startGateway(t, BalancerAdaptive, r1.URL)
	cases := []struct {
		path   string
		body   string
		code   api.Code
		status int
	}{
		{"/v1/run", `{"bench":"no-such","sched":"hints","cores":1,"scale":"tiny"}`, api.CodeUnknownBench, 400},
		{"/v1/run", `{"bench":`, api.CodeBadRequest, 400},
		{"/v1/sweep", `{"benches":["des"],"scheds":["hints"],"cores":[1],"scale":"tiny","format":"xml"}`, api.CodeUnknownFormat, 400},
		{"/v1/sweep", `{"benches":[],"scheds":["hints"],"cores":[1],"scale":"tiny"}`, api.CodeBadRequest, 400},
		{"/v1/experiments/fig99", `{}`, api.CodeUnknownExperiment, 404},
	}
	for _, tc := range cases {
		resp, b := post(t, ts.URL, tc.path, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.path, resp.StatusCode, tc.status, b)
			continue
		}
		aerr := api.DecodeError(resp.StatusCode, bytes.TrimSpace(b))
		if aerr.Code != tc.code {
			t.Errorf("%s: code %q, want %q (%s)", tc.path, aerr.Code, tc.code, b)
		}
	}
}

// TestGatewayExperimentProxy: listing and running experiments through the
// gateway returns exactly what a replica returns.
func TestGatewayExperimentProxy(t *testing.T) {
	single := startReplica(t, "")
	wantList := func(url string) []byte {
		resp, err := http.Get(url + "/v1/experiments")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return b
	}
	dir := t.TempDir()
	r1, r2 := startReplica(t, dir), startReplica(t, dir)
	_, ts := startGateway(t, BalancerAdaptive, r1.URL, r2.URL)
	if got, want := wantList(ts.URL), wantList(single.URL); !bytes.Equal(got, want) {
		t.Errorf("gateway experiment listing differs:\n%s\nvs\n%s", got, want)
	}

	body := `{"scale":"tiny","cores":[1,4]}`
	resp, got := post(t, ts.URL, "/v1/experiments/fig2", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway fig2 status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, fig2Golden(t)) {
		t.Error("gateway-proxied fig2 differs from the golden export")
	}
}

// TestGatewayHealthProbing: ProbeOnce demotes an unreachable replica and
// re-admits it; /healthz reports the per-replica map.
func TestGatewayHealthProbing(t *testing.T) {
	r1 := startReplica(t, "")
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	deadURL := dead.URL
	dead.Close()

	g, ts := startGateway(t, BalancerAdaptive, r1.URL, deadURL)
	g.ProbeOnce(context.Background())
	c := g.Counters()
	if !c.Healthy[r1.URL] || c.Healthy[deadURL] {
		t.Fatalf("health after probe = %+v, want live=true dead=false", c.Healthy)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway healthz status %d", resp.StatusCode)
	}
	if !strings.Contains(string(b), `"status":"ok"`) || !strings.Contains(string(b), `false`) {
		t.Fatalf("healthz body lacks status or replica map: %s", b)
	}

	// Routing avoids the demoted replica entirely...
	resp2, body := post(t, ts.URL, "/v1/run", `{"bench":"des","sched":"random","cores":1,"scale":"tiny"}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("run with a dead replica in the fleet: %d %s", resp2.StatusCode, body)
	}
	if got := resp2.Header.Get("X-Swarmgate-Replica"); got != r1.URL {
		t.Errorf("point routed to %q, want the healthy replica", got)
	}
}
