// Chaos end-to-end suite: deterministic fault injection against a live
// fleet, asserting the one invariant everything else exists to protect —
// the gateway delivers a complete, trailer-terminated stream whose bytes
// are identical to a single healthy swarmd's, no matter which replica is
// flaky, slow, truncating, or shedding underneath it.
//
// All scenarios arm sites in fault.Default (the registry every in-process
// service and store resolves against) and defer a Reset so no injection
// leaks across tests. Replica-targeted faults use scoped site names via
// service.Options.FaultScope; disk faults use the bare store.* sites and
// only store-less oracles.
package gate

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"swarmhints/internal/fault"
	"swarmhints/internal/service"
	"swarmhints/internal/store"
	"swarmhints/swarm/api"
)

// startChaosReplica boots an in-process swarmd with full control over its
// options — fault scope, admission bound, store handle. Workers and
// Validate default to the plain startReplica configuration.
func startChaosReplica(t *testing.T, opt service.Options) *httptest.Server {
	t.Helper()
	if opt.Workers == 0 {
		opt.Workers = 4
	}
	opt.Validate = true
	svc := service.New(opt)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return ts
}

// startChaosGateway is startGateway with full control over gate.Options.
func startChaosGateway(t *testing.T, opt Options) (*Gateway, *httptest.Server) {
	t.Helper()
	if opt.Retries == 0 {
		opt.Retries = 3
	}
	if opt.ProbeInterval == 0 {
		opt.ProbeInterval = -1
	}
	g, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(func() { ts.Close(); g.Close() })
	return g, ts
}

func chaosStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.OpenWith(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// decodeStream fully decodes an NDJSON sweep stream, failing the test on
// any decode error or a missing/incomplete trailer.
func decodeStream(t *testing.T, b []byte) int {
	t.Helper()
	dec, err := api.NewStreamDecoder(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := dec.Next()
		if err != nil {
			t.Fatalf("stream record %d: %v", n, err)
		}
		if !ok {
			break
		}
		n++
	}
	if dec.Trailer() == nil || !dec.Trailer().Complete {
		t.Fatalf("stream trailer %+v, want complete", dec.Trailer())
	}
	return n
}

// TestChaosFlakyDisk: every replica's disk misbehaves — injected write
// failures and a torn (half-persisted) record. Requests must never see the
// disk trouble: write-through is best-effort, a torn record read back by a
// fresh fleet is quarantined and recomputed, and both sweeps are
// byte-identical to a store-less swarmd.
func TestChaosFlakyDisk(t *testing.T) {
	defer fault.Default.Reset()
	single := startReplica(t, "") // no store: immune to the bare store.* sites
	want := postSweep(t, single.URL, "ndjson")

	// Every third write fails outright; the fourth write that survives to
	// the commit stage is torn mid-payload. Deterministic via Every, so
	// exactly 2 of the 8 phase-one writes fail and exactly 1 record is torn.
	fault.Default.Arm("store.write", fault.Plan{Every: 3, Fail: true})
	fault.Default.Arm("store.torn", fault.Plan{Every: 4})

	dir := t.TempDir()
	fleet1 := make([]*store.Store, 3)
	var urls1 []string
	for i := range fleet1 {
		fleet1[i] = chaosStore(t, dir)
		urls1 = append(urls1, startChaosReplica(t, service.Options{Store: fleet1[i]}).URL)
	}
	_, ts := startChaosGateway(t, Options{Replicas: urls1, Balancer: BalancerRoundRobin})
	got := postSweep(t, ts.URL, "ndjson")
	if !bytes.Equal(got, want) {
		t.Error("sweep over flaky disks differs from a single swarmd's bytes")
	}
	decodeStream(t, got)

	var writeErrs uint64
	for _, st := range fleet1 {
		writeErrs += st.Counters().WriteErrors
	}
	if writeErrs == 0 {
		t.Error("no injected write failures landed — the fault sites were bypassed")
	}

	// A fresh fleet on the same directory has cold caches: every point is
	// read back from disk, and the torn record must be quarantined — a
	// miss plus recompute, never a corrupt result or a poisoned retry loop.
	fleet2 := make([]*store.Store, 3)
	var urls2 []string
	for i := range fleet2 {
		fleet2[i] = chaosStore(t, dir)
		urls2 = append(urls2, startChaosReplica(t, service.Options{Store: fleet2[i]}).URL)
	}
	_, ts2 := startChaosGateway(t, Options{Replicas: urls2, Balancer: BalancerRoundRobin})
	got2 := postSweep(t, ts2.URL, "ndjson")
	if !bytes.Equal(got2, want) {
		t.Error("warm-restart sweep over a torn store differs from a single swarmd's bytes")
	}

	var quarantined uint64
	for _, st := range fleet2 {
		quarantined += st.Counters().Quarantined
	}
	if quarantined == 0 {
		t.Error("torn record was never quarantined on read-back")
	}
}

// TestChaosStalledReplica: one replica answers every point 500ms late.
// With hedging on, the gateway launches a second attempt against a
// sibling once the straggler overshoots the fleet's latency profile, the
// hedge wins, and the loser is canceled without poisoning the
// straggler's health — slow is not down.
func TestChaosStalledReplica(t *testing.T) {
	defer fault.Default.Reset()
	single := startReplica(t, "")
	want := postSweep(t, single.URL, "ndjson")

	r1 := startChaosReplica(t, service.Options{})
	r2 := startChaosReplica(t, service.Options{})
	straggler := startChaosReplica(t, service.Options{FaultScope: "straggler"})
	g, ts := startChaosGateway(t, Options{
		Replicas: []string{r1.URL, r2.URL, straggler.URL},
		Balancer: BalancerRoundRobin,
		Hedge:    true,
		Seed:     1,
	})

	// Warm-up sweep: 8 healthy points seed the latency EWMA past the
	// sample floor so hedging is armed for the chaos round.
	if got := postSweep(t, ts.URL, "ndjson"); !bytes.Equal(got, want) {
		t.Fatal("warm-up sweep differs from a single swarmd's bytes")
	}
	warm := g.Counters()

	// The stall must overshoot the fleet's EWMA-p95 hedge delay on any
	// machine speed (race-instrumented runs inflate the warm-up profile by
	// an order of magnitude), so it is far larger than any real point: the
	// hedge always fires first and the sleep is cut short by the loser's
	// cancellation, never awaited.
	fault.Default.Arm("straggler.swarmd.run.slow",
		fault.Plan{Every: 1, Latency: 30 * time.Second})
	got := postSweep(t, ts.URL, "ndjson")
	if !bytes.Equal(got, want) {
		t.Error("sweep with a stalled replica differs from a single swarmd's bytes")
	}
	decodeStream(t, got)

	c := g.Counters()
	if c.Hedged <= warm.Hedged {
		t.Errorf("no hedges launched against the straggler (warm %d, now %d)", warm.Hedged, c.Hedged)
	}
	if c.HedgeWins <= warm.HedgeWins {
		t.Errorf("no hedge beat the straggler (warm %d, now %d)", warm.HedgeWins, c.HedgeWins)
	}
	// The straggler was slow, never wrong: canceled losers must not score
	// as failures or demote its health.
	if !c.Healthy[straggler.URL] {
		t.Error("stalled replica demoted to unhealthy by canceled hedge losers")
	}
	if c.Failed[straggler.URL] != 0 {
		t.Errorf("stalled replica charged %d failures for canceled attempts", c.Failed[straggler.URL])
	}
}

// TestChaosMidStreamKill: a replica dies mid-NDJSON-stream, after the
// header and three records. A direct client sees a typed truncation — the
// framing contract's whole point — while the same grid through the
// gateway is unaffected: the gateway executes points via /v1/run and
// re-frames the stream itself, so one replica's dead sweep stream cannot
// truncate a gateway response.
func TestChaosMidStreamKill(t *testing.T) {
	defer fault.Default.Reset()
	single := startReplica(t, "")
	want := postSweep(t, single.URL, "ndjson")

	victim := startChaosReplica(t, service.Options{FaultScope: "victim"})
	fault.Default.Arm("victim.swarmd.stream.stall",
		fault.Plan{Every: 1, After: 3, Times: 1, Fail: true})

	// Direct sweep: the stream dies without a trailer and the decoder says
	// so with ErrTruncated — no panic, no silently short result.
	resp, body := post(t, victim.URL, "/v1/sweep", strings.Replace(fig2SweepBody, "%s", "ndjson", 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("victim sweep status %d (truncation happens after the 200)", resp.StatusCode)
	}
	dec, err := api.NewStreamDecoder(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	records := 0
	for {
		_, ok, err := dec.Next()
		if err != nil {
			if !errors.Is(err, api.ErrTruncated) {
				t.Fatalf("truncated stream surfaced %v, want ErrTruncated", err)
			}
			break
		}
		if !ok {
			t.Fatal("truncated stream decoded as complete")
		}
		records++
	}
	if records != 3 {
		t.Errorf("victim streamed %d records before the kill, want 3", records)
	}

	// Same grid through a gateway fronting the victim: byte-identical and
	// complete. (The stall site stays armed with Times:1 exhausted; re-arm
	// it unbounded to prove the gateway path never touches it.)
	fault.Default.Arm("victim.swarmd.stream.stall", fault.Plan{Every: 1, Fail: true})
	r2 := startChaosReplica(t, service.Options{})
	_, ts := startChaosGateway(t, Options{
		Replicas: []string{victim.URL, r2.URL},
		Balancer: BalancerRoundRobin,
	})
	got := postSweep(t, ts.URL, "ndjson")
	if !bytes.Equal(got, want) {
		t.Error("gateway sweep with a stream-killing replica differs from a single swarmd's bytes")
	}
	decodeStream(t, got)
}

// TestChaosOverloadBurst: one replica sheds every request with 429
// "overloaded". The code is retryable, so the balancer routes around it;
// after three consecutive rejections the circuit breaker opens and stops
// even trying. Shedding is load, not sickness: the replica stays healthy
// and is never demoted.
func TestChaosOverloadBurst(t *testing.T) {
	defer fault.Default.Reset()
	single := startReplica(t, "")
	want := postSweep(t, single.URL, "ndjson")

	r1 := startChaosReplica(t, service.Options{})
	busy := startChaosReplica(t, service.Options{FaultScope: "busy"})
	fault.Default.Arm("busy.swarmd.overload", fault.Plan{Every: 1, Fail: true})

	// Directly, the shed is a well-formed 429: overloaded code, retryable,
	// Retry-After header.
	resp, body := post(t, busy.URL, "/v1/run", `{"bench":"des","sched":"random","cores":1,"scale":"tiny"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	aerr := api.DecodeError(resp.StatusCode, bytes.TrimSpace(body))
	if aerr.Code != api.CodeOverloaded || !aerr.Retryable {
		t.Fatalf("shed envelope = %+v, want retryable %q", aerr, api.CodeOverloaded)
	}

	g, ts := startChaosGateway(t, Options{
		Replicas:         []string{r1.URL, busy.URL},
		Balancer:         BalancerRoundRobin,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute,
		Seed:             1,
	})
	got := postSweep(t, ts.URL, "ndjson")
	if !bytes.Equal(got, want) {
		t.Error("sweep with an overloaded replica differs from a single swarmd's bytes")
	}
	decodeStream(t, got)

	c := g.Counters()
	if c.Failed[busy.URL] == 0 {
		t.Error("overloaded replica's rejections not recorded as failed attempts")
	}
	if c.BreakerOpens[busy.URL] == 0 {
		t.Errorf("breaker never opened on the shedding replica: %+v", c.BreakerOpens)
	}
	if c.BreakerState[busy.URL] != "open" {
		t.Errorf("breaker state %q inside the cooldown, want open", c.BreakerState[busy.URL])
	}
	// Overload is explicitly not a health signal: the replica answers
	// probes and will be back the moment the burst passes.
	if !c.Healthy[busy.URL] {
		t.Error("shedding replica demoted to unhealthy")
	}
	if shed := promCounter(t, busy.URL, `swarmd_shed_total`); shed == 0 {
		t.Error("swarmd_shed_total not incremented on the shedding replica")
	}
}
