// Package gvt implements Swarm's global-virtual-time commit protocol
// (Sec. II-B, adapted from Jefferson's virtual time algorithm): tiles
// periodically report their earliest unfinished task to an arbiter, which
// broadcasts the global minimum; every finished task that precedes it can
// safely commit.
package gvt

import "swarmhints/internal/task"

// Arbiter tracks the GVT epoch schedule and the last computed GVT.
type Arbiter struct {
	interval uint64
	next     uint64
	gvt      task.Order
	rounds   uint64
}

// NewArbiter returns an arbiter that runs every interval cycles
// (Table II: tiles send updates every 200 cycles).
func NewArbiter(interval uint64) *Arbiter {
	if interval == 0 {
		interval = 200
	}
	return &Arbiter{interval: interval, next: interval}
}

// Due reports whether an update round should run at cycle now.
func (a *Arbiter) Due(now uint64) bool { return now >= a.next }

// NextDue returns the cycle of the next scheduled round.
func (a *Arbiter) NextDue() uint64 { return a.next }

// Update runs one round: it takes each tile's earliest uncommitted order and
// computes the new GVT. All finished tasks strictly before the returned
// order may commit. The arbiter never moves backwards.
func (a *Arbiter) Update(now uint64, tileMins []task.Order) task.Order {
	a.next = now + a.interval
	a.rounds++
	min := task.MaxOrder
	for _, o := range tileMins {
		if o.Before(min) {
			min = o
		}
	}
	if a.gvt.Before(min) {
		a.gvt = min
	}
	return a.gvt
}

// GVT returns the last computed global virtual time.
func (a *Arbiter) GVT() task.Order { return a.gvt }

// Rounds returns how many update rounds have run (each round costs one
// 8-byte message per tile to the arbiter and a broadcast back, which the
// engine accounts as MsgGVT traffic).
func (a *Arbiter) Rounds() uint64 { return a.rounds }
