package gvt

import (
	"testing"

	"swarmhints/internal/task"
)

func TestDueSchedule(t *testing.T) {
	a := NewArbiter(200)
	if a.Due(199) {
		t.Fatal("due before interval")
	}
	if !a.Due(200) {
		t.Fatal("not due at interval")
	}
	a.Update(200, nil)
	if a.NextDue() != 400 {
		t.Fatalf("next due = %d, want 400", a.NextDue())
	}
}

func TestUpdateComputesMin(t *testing.T) {
	a := NewArbiter(200)
	mins := []task.Order{{TS: 30, ID: 2}, {TS: 10, ID: 5}, {TS: 10, ID: 3}}
	got := a.Update(200, mins)
	if got != (task.Order{TS: 10, ID: 3}) {
		t.Fatalf("GVT = %+v, want ts=10 id=3", got)
	}
}

func TestGVTMonotonic(t *testing.T) {
	a := NewArbiter(200)
	a.Update(200, []task.Order{{TS: 50, ID: 1}})
	got := a.Update(400, []task.Order{{TS: 20, ID: 1}})
	if got != (task.Order{TS: 50, ID: 1}) {
		t.Fatalf("GVT went backwards: %+v", got)
	}
}

func TestEmptySystemCommitsEverything(t *testing.T) {
	a := NewArbiter(200)
	got := a.Update(200, []task.Order{task.MaxOrder, task.MaxOrder})
	if got != task.MaxOrder {
		t.Fatal("all-idle system must report MaxOrder so everything commits")
	}
}

func TestDefaultInterval(t *testing.T) {
	a := NewArbiter(0)
	if !a.Due(200) || a.Due(199) {
		t.Fatal("zero interval must default to 200 cycles (Table II)")
	}
}

func TestRoundsCounted(t *testing.T) {
	a := NewArbiter(100)
	a.Update(100, nil)
	a.Update(200, nil)
	if a.Rounds() != 2 {
		t.Fatalf("rounds = %d, want 2", a.Rounds())
	}
}
