// Package obs is the fleet's zero-dependency observability layer: request
// tracing, fixed-bucket latency histograms, and structured-logging setup,
// threaded through swarmgate, swarmd, the result store, and the sweep
// runner. It follows the same discipline as internal/fault: every
// instrumentation point compiled into a production path costs one atomic
// load and zero allocations while observability is disabled (pinned by
// BenchmarkObsDisabled in the perf trajectory), so the instrumented and
// uninstrumented binaries are the same binary.
//
// Tracing model: swarmgate mints a 128-bit trace ID per request; each
// per-point routing attempt (retries and hedges tagged as such) becomes a
// span, carried to swarmd in the X-Swarm-Trace header (swarm/api sets and
// parses it) and continued through service → store → engine via
// context.Context. Finished spans land in a lock-free per-process ring
// buffer (Tracer), retrievable as JSON from GET /debug/traces and
// /debug/traces/{id} on both daemons. Tracing never changes response
// bytes: spans and logs are side channels, so gateway streams stay
// byte-identical to a single swarmd with tracing on.
package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// enabled is the process-wide observability switch. Disabled (the zero
// state) every instrumentation point — StartSpan, ContinueSpan, Timer,
// Histogram.Observe — returns after a single atomic load with zero
// allocations.
var enabled atomic.Bool

// SetEnabled flips the process-wide observability switch. Daemons set it
// from the -obs flag at startup; tests toggle it around assertions.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether tracing and histograms are live.
func Enabled() bool { return enabled.Load() }

// TraceID is a 128-bit trace identifier, rendered as 32 hex digits.
type TraceID [16]byte

// IsZero reports whether the ID is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// ParseTraceID parses a 32-hex-digit trace ID.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return t, false
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return t, false
	}
	copy(t[:], b)
	return t, !t.IsZero()
}

// ID generation: a per-process random base (crypto/rand, fixed at init)
// mixed with an atomic counter through a splitmix64 finalizer. Lock-free,
// collision-resistant across processes, and never zero.
var (
	idBase [2]uint64
	idCtr  atomic.Uint64
)

func init() {
	var b [16]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Degraded uniqueness (single-process scope only) beats a panic in
		// an environment without an entropy source.
		binary.LittleEndian.PutUint64(b[:8], uint64(time.Now().UnixNano()))
		binary.LittleEndian.PutUint64(b[8:], 0x9e3779b97f4a7c15)
	}
	idBase[0] = binary.LittleEndian.Uint64(b[:8])
	idBase[1] = binary.LittleEndian.Uint64(b[8:])
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTraceID mints a fresh 128-bit trace ID.
func NewTraceID() TraceID {
	n := idCtr.Add(1)
	var t TraceID
	binary.BigEndian.PutUint64(t[:8], mix64(idBase[0]^n))
	binary.BigEndian.PutUint64(t[8:], mix64(idBase[1]+n))
	if t.IsZero() { // astronomically unlikely; IDs must be non-zero
		t[15] = 1
	}
	return t
}

// newSpanID mints a non-zero 64-bit span ID.
func newSpanID() uint64 {
	id := mix64(idBase[1] ^ idCtr.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// Attr is one span attribute (string key/value; use SetAttrInt for
// numbers).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation within a trace. Spans are mutated only by
// the goroutine that started them, and become immutable (and visible to
// /debug/traces readers) when End publishes them into the tracer's ring.
// Every method is nil-receiver safe: a disabled StartSpan returns a nil
// span and the call sites pay nothing further.
type Span struct {
	trace  TraceID
	id     uint64
	parent uint64
	name   string
	start  time.Time
	dur    time.Duration
	attrs  []Attr
	tracer *Tracer
}

// TraceID returns the span's trace, or the zero ID on a nil span.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// ID returns the span's own ID (0 on nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Name returns the span's operation name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr attaches a string attribute. Last write wins on duplicate keys
// at render time; spans carry few attributes, so no dedup is done here.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetAttrInt attaches an integer attribute.
func (s *Span) SetAttrInt(key string, value int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.FormatInt(value, 10)})
}

// Attr returns the last value set for key ("" when absent).
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	for i := len(s.attrs) - 1; i >= 0; i-- {
		if s.attrs[i].Key == key {
			return s.attrs[i].Value
		}
	}
	return ""
}

// Header renders the span's propagation header value:
// "<32-hex trace>-<16-hex span>". The receiving server continues the trace
// with this span as parent. Nil spans render "".
func (s *Span) Header() string {
	if s == nil {
		return ""
	}
	return s.trace.String() + "-" + fmt.Sprintf("%016x", s.id)
}

// ParseHeader parses an X-Swarm-Trace value into (trace, parent span).
func ParseHeader(v string) (TraceID, uint64, bool) {
	if len(v) != 49 || v[32] != '-' {
		return TraceID{}, 0, false
	}
	t, ok := ParseTraceID(v[:32])
	if !ok {
		return TraceID{}, 0, false
	}
	parent, err := strconv.ParseUint(v[33:], 16, 64)
	if err != nil {
		return TraceID{}, 0, false
	}
	return t, parent, true
}

// End finalizes the span's duration and publishes it into its tracer's
// ring, making it visible to /debug/traces. Safe on nil spans; ending a
// span twice publishes it twice (don't).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.dur = time.Since(s.start)
	if s.tracer != nil {
		s.tracer.publish(s)
	}
}

// ctxKey carries the current span through context.Context.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying sp. A nil sp returns ctx unchanged,
// so disabled paths never allocate a context either.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Trace returns the hex trace ID carried by ctx, or "" — the value every
// structured log record attaches so logs and traces cross-reference.
func Trace(ctx context.Context) string {
	if sp := SpanFromContext(ctx); sp != nil {
		return sp.trace.String()
	}
	return ""
}

// StartSpan begins a child span of the one carried by ctx (minting a fresh
// trace when ctx carries none) on the Default tracer, and returns ctx
// re-wrapped to carry it. Disabled, it returns (ctx, nil) after one atomic
// load and zero allocations.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	return Default.start(ctx, name)
}

// ContinueSpan begins a server-side span continuing the trace in an
// X-Swarm-Trace header value: the header's trace ID is adopted and its
// span becomes the parent. An absent or malformed header mints a fresh
// trace, so a daemon hit directly (no gateway in front) still traces.
// Disabled, it returns (ctx, nil) after one atomic load.
func ContinueSpan(ctx context.Context, header, name string) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	sp := &Span{name: name, start: time.Now(), tracer: Default, id: newSpanID()}
	if t, parent, ok := ParseHeader(header); ok {
		sp.trace, sp.parent = t, parent
	} else {
		sp.trace = NewTraceID()
	}
	return ContextWithSpan(ctx, sp), sp
}

// Tracer holds a process's finished spans in a fixed-size lock-free ring:
// publishing claims a slot with one atomic add and stores the span pointer
// with one atomic store, so tracing adds no lock to any request path.
// When the ring wraps, the oldest spans are overwritten — /debug/traces is
// a window over recent activity, not an archive.
type Tracer struct {
	ring []atomic.Pointer[Span]
	next atomic.Uint64
}

// DefaultRingSize is the Default tracer's span capacity.
const DefaultRingSize = 4096

// NewTracer builds a tracer whose ring holds size finished spans (rounded
// up to a power of two, minimum 16).
func NewTracer(size int) *Tracer {
	n := 16
	for n < size {
		n <<= 1
	}
	return &Tracer{ring: make([]atomic.Pointer[Span], n)}
}

// Default is the process-wide tracer: every StartSpan/ContinueSpan records
// here, and both daemons' /debug/traces endpoints read from it.
var Default = NewTracer(DefaultRingSize)

// start begins a child span of ctx's span on this tracer.
func (tr *Tracer) start(ctx context.Context, name string) (context.Context, *Span) {
	sp := &Span{name: name, start: time.Now(), tracer: tr, id: newSpanID()}
	if parent := SpanFromContext(ctx); parent != nil {
		sp.trace, sp.parent = parent.trace, parent.id
	} else {
		sp.trace = NewTraceID()
	}
	return ContextWithSpan(ctx, sp), sp
}

// publish stores a finished span in the ring.
func (tr *Tracer) publish(sp *Span) {
	i := tr.next.Add(1) - 1
	tr.ring[i&uint64(len(tr.ring)-1)].Store(sp)
}

// Spans returns every finished span currently in the ring, oldest first
// (by publication order within the retained window).
func (tr *Tracer) Spans() []*Span {
	n := tr.next.Load()
	size := uint64(len(tr.ring))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	out := make([]*Span, 0, n-start)
	for i := start; i < n; i++ {
		if sp := tr.ring[i&(size-1)].Load(); sp != nil {
			out = append(out, sp)
		}
	}
	return out
}

// TraceSpans returns the retained spans of one trace, sorted by start time
// (ties by span ID, so the order is deterministic).
func (tr *Tracer) TraceSpans(id TraceID) []*Span {
	var out []*Span
	for _, sp := range tr.Spans() {
		if sp.trace == id {
			out = append(out, sp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].start.Equal(out[j].start) {
			return out[i].start.Before(out[j].start)
		}
		return out[i].id < out[j].id
	})
	return out
}

// TraceSummary is one trace's /debug/traces listing entry.
type TraceSummary struct {
	Trace string    `json:"trace"`
	Root  string    `json:"root"`  // name of the earliest retained span
	Start time.Time `json:"start"` // earliest retained span start
	DurNs int64     `json:"durationNs"`
	Spans int       `json:"spans"`
}

// Traces summarizes the retained spans per trace, most recent first.
func (tr *Tracer) Traces() []TraceSummary {
	type agg struct {
		first, last *Span
		end         time.Time
		n           int
	}
	byID := make(map[TraceID]*agg)
	for _, sp := range tr.Spans() {
		a := byID[sp.trace]
		if a == nil {
			a = &agg{first: sp}
			byID[sp.trace] = a
		}
		if sp.start.Before(a.first.start) {
			a.first = sp
		}
		if e := sp.start.Add(sp.dur); e.After(a.end) {
			a.end = e
		}
		a.n++
	}
	out := make([]TraceSummary, 0, len(byID))
	for id, a := range byID {
		out = append(out, TraceSummary{
			Trace: id.String(),
			Root:  a.first.name,
			Start: a.first.start,
			DurNs: a.end.Sub(a.first.start).Nanoseconds(),
			Spans: a.n,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.After(out[j].Start)
		}
		return out[i].Trace < out[j].Trace
	})
	return out
}

// Timer is a conditional stopwatch: started under the enabled gate, it
// observes into a histogram only when it was actually started. The
// disabled path is one atomic load and a zero-value struct — no time
// syscall, no allocation.
type Timer struct{ start time.Time }

// StartTimer starts a stopwatch when observability is enabled.
func StartTimer() Timer {
	if !enabled.Load() {
		return Timer{}
	}
	return Timer{start: time.Now()}
}

// Observe records the elapsed time into h. A timer from a disabled
// StartTimer is a no-op.
func (t Timer) Observe(h *Histogram) {
	if t.start.IsZero() || h == nil {
		return
	}
	h.observe(time.Since(t.start))
}

// Elapsed returns the stopwatch reading (0 when started disabled).
func (t Timer) Elapsed() time.Duration {
	if t.start.IsZero() {
		return 0
	}
	return time.Since(t.start)
}
