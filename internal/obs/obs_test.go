package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// withEnabled flips the process-wide switch for one test and restores the
// disabled default afterwards, so no test leaks tracing into another.
func withEnabled(t *testing.T, on bool) {
	t.Helper()
	prev := Enabled()
	SetEnabled(on)
	t.Cleanup(func() { SetEnabled(prev) })
}

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("NewTraceID returned the zero ID")
	}
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("String() = %q, want 32 hex digits", s)
	}
	back, ok := ParseTraceID(s)
	if !ok || back != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v; want original id", s, back, ok)
	}
	if id2 := NewTraceID(); id2 == id {
		t.Fatal("two NewTraceID calls returned the same ID")
	}
	for _, bad := range []string{"", "abc", strings.Repeat("0", 32), strings.Repeat("x", 32), strings.Repeat("a", 31)} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted a malformed/zero ID", bad)
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	withEnabled(t, true)
	_, sp := StartSpan(context.Background(), "root")
	h := sp.Header()
	if len(h) != 49 || h[32] != '-' {
		t.Fatalf("Header() = %q, want 32-hex '-' 16-hex", h)
	}
	tr, parent, ok := ParseHeader(h)
	if !ok || tr != sp.TraceID() || parent != sp.ID() {
		t.Fatalf("ParseHeader(%q) = %v %x %v, want span's trace and id", h, tr, parent, ok)
	}
	for _, bad := range []string{
		"", "short",
		strings.Repeat("a", 49),                            // no dash at index 32
		strings.Repeat("0", 32) + "-" + "0000000000000001", // zero trace
		strings.Repeat("a", 32) + "-" + "zzzzzzzzzzzzzzzz", // bad span hex
	} {
		if _, _, ok := ParseHeader(bad); ok {
			t.Errorf("ParseHeader(%q) accepted a malformed header", bad)
		}
	}
}

func TestNilSpanSafety(t *testing.T) {
	var sp *Span
	sp.SetAttr("k", "v")
	sp.SetAttrInt("n", 7)
	sp.End()
	if sp.Header() != "" || sp.Attr("k") != "" || sp.Name() != "" || sp.ID() != 0 || !sp.TraceID().IsZero() {
		t.Error("nil-span accessors must return zero values")
	}
	if ctx := ContextWithSpan(context.Background(), nil); SpanFromContext(ctx) != nil {
		t.Error("ContextWithSpan(nil) must not attach a span")
	}
}

func TestDisabledPathsAreInert(t *testing.T) {
	withEnabled(t, false)
	ctx := context.Background()
	octx, sp := StartSpan(ctx, "x")
	if sp != nil || octx != ctx {
		t.Error("disabled StartSpan must return (ctx, nil) unchanged")
	}
	octx, sp = ContinueSpan(ctx, "whatever", "x")
	if sp != nil || octx != ctx {
		t.Error("disabled ContinueSpan must return (ctx, nil) unchanged")
	}
	h := NewHistogram(nil)
	h.Observe(time.Millisecond)
	tm := StartTimer()
	if tm.Elapsed() != 0 {
		t.Error("disabled Timer must read 0")
	}
	tm.Observe(h)
	if h.Count() != 0 {
		t.Errorf("disabled observations recorded: count=%d", h.Count())
	}
	if Trace(ctx) != "" {
		t.Error("Trace of a bare context must be empty")
	}
}

func TestSpanParentLinking(t *testing.T) {
	withEnabled(t, true)
	ctx, root := StartSpan(context.Background(), "root")
	if root == nil || root.TraceID().IsZero() {
		t.Fatal("enabled StartSpan must mint a traced span")
	}
	if Trace(ctx) != root.TraceID().String() {
		t.Error("ctx must carry the root span's trace")
	}
	_, child := StartSpan(ctx, "child")
	if child.TraceID() != root.TraceID() {
		t.Error("child must inherit the parent's trace")
	}
	if child.parent != root.ID() {
		t.Errorf("child.parent = %x, want root id %x", child.parent, root.ID())
	}
	if child.ID() == root.ID() {
		t.Error("child must get its own span ID")
	}
}

func TestContinueSpan(t *testing.T) {
	withEnabled(t, true)
	_, up := StartSpan(context.Background(), "client")
	_, srv := ContinueSpan(context.Background(), up.Header(), "server")
	if srv.TraceID() != up.TraceID() || srv.parent != up.ID() {
		t.Errorf("ContinueSpan: trace %v parent %x, want upstream %v/%x",
			srv.TraceID(), srv.parent, up.TraceID(), up.ID())
	}
	// A malformed (or absent) header mints a fresh trace: a daemon hit
	// directly, without a gateway in front, still traces.
	_, fresh := ContinueSpan(context.Background(), "not-a-header", "server")
	if fresh.TraceID().IsZero() || fresh.TraceID() == up.TraceID() || fresh.parent != 0 {
		t.Errorf("malformed header must start a fresh parentless trace, got %v/%x",
			fresh.TraceID(), fresh.parent)
	}
}

func TestSpanAttrs(t *testing.T) {
	withEnabled(t, true)
	_, sp := StartSpan(context.Background(), "s")
	sp.SetAttr("outcome", "ok")
	sp.SetAttrInt("index", 42)
	sp.SetAttr("outcome", "retry") // last write wins
	if got := sp.Attr("outcome"); got != "retry" {
		t.Errorf("Attr(outcome) = %q, want retry", got)
	}
	if got := sp.Attr("index"); got != "42" {
		t.Errorf("Attr(index) = %q, want 42", got)
	}
	if got := sp.Attr("absent"); got != "" {
		t.Errorf("Attr(absent) = %q, want empty", got)
	}
}

// publishSpan drops a synthetic finished span into tr.
func publishSpan(tr *Tracer, trace TraceID, id uint64, name string, start time.Time) *Span {
	sp := &Span{trace: trace, id: id, name: name, start: start, tracer: tr}
	tr.publish(sp)
	return sp
}

func TestRingWrap(t *testing.T) {
	tr := NewTracer(16)
	if len(tr.ring) != 16 {
		t.Fatalf("ring size %d, want 16", len(tr.ring))
	}
	trace := NewTraceID()
	base := time.Now()
	for i := 1; i <= 20; i++ {
		publishSpan(tr, trace, uint64(i), "s", base.Add(time.Duration(i)))
	}
	spans := tr.Spans()
	if len(spans) != 16 {
		t.Fatalf("retained %d spans, want ring size 16", len(spans))
	}
	// The 4 oldest were overwritten; retention is oldest-first from span 5.
	for i, sp := range spans {
		if want := uint64(i + 5); sp.ID() != want {
			t.Fatalf("spans[%d].ID = %d, want %d", i, sp.ID(), want)
		}
	}
}

func TestTracerRoundsSizeUp(t *testing.T) {
	if n := len(NewTracer(0).ring); n != 16 {
		t.Errorf("NewTracer(0) ring = %d, want minimum 16", n)
	}
	if n := len(NewTracer(17).ring); n != 32 {
		t.Errorf("NewTracer(17) ring = %d, want next power of two 32", n)
	}
}

func TestTraceSpansOrder(t *testing.T) {
	tr := NewTracer(16)
	a, b := NewTraceID(), NewTraceID()
	base := time.Now()
	// Published out of start order, with a start-time tie inside trace a.
	publishSpan(tr, a, 3, "late", base.Add(2*time.Second))
	publishSpan(tr, b, 9, "other", base)
	publishSpan(tr, a, 2, "tie-hi", base)
	publishSpan(tr, a, 1, "tie-lo", base)
	got := tr.TraceSpans(a)
	if len(got) != 3 {
		t.Fatalf("TraceSpans returned %d spans, want 3 (trace-filtered)", len(got))
	}
	if got[0].ID() != 1 || got[1].ID() != 2 || got[2].ID() != 3 {
		t.Errorf("span order = [%d %d %d], want start order with ID tiebreak [1 2 3]",
			got[0].ID(), got[1].ID(), got[2].ID())
	}
	if unknown := tr.TraceSpans(NewTraceID()); len(unknown) != 0 {
		t.Errorf("unknown trace returned %d spans", len(unknown))
	}
}

func TestTracesSummary(t *testing.T) {
	tr := NewTracer(16)
	a, b := NewTraceID(), NewTraceID()
	base := time.Now()
	sp := publishSpan(tr, a, 1, "roota", base)
	sp.dur = 50 * time.Millisecond
	sp2 := publishSpan(tr, a, 2, "childa", base.Add(10*time.Millisecond))
	sp2.dur = 10 * time.Millisecond
	publishSpan(tr, b, 3, "rootb", base.Add(time.Second))
	sums := tr.Traces()
	if len(sums) != 2 {
		t.Fatalf("Traces() = %d summaries, want 2", len(sums))
	}
	// Most recent first.
	if sums[0].Trace != b.String() || sums[1].Trace != a.String() {
		t.Fatalf("summary order = [%s %s], want most recent first", sums[0].Trace, sums[1].Trace)
	}
	if sums[1].Root != "roota" || sums[1].Spans != 2 {
		t.Errorf("trace a summary = %+v, want root=roota spans=2", sums[1])
	}
	if want := (50 * time.Millisecond).Nanoseconds(); sums[1].DurNs != want {
		t.Errorf("trace a duration = %dns, want %d (envelope of its spans)", sums[1].DurNs, want)
	}
}

func TestDebugTraceEndpoints(t *testing.T) {
	tr := NewTracer(16)
	trace := NewTraceID()
	sp := publishSpan(tr, trace, 0xabc, "swarmd.run", time.Now())
	sp.parent = 0x123
	sp.attrs = []Attr{{Key: "key", Value: "des/hints/4"}}
	sp.dur = time.Millisecond

	mux := http.NewServeMux()
	tr.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Enabled bool           `json:"enabled"`
		Traces  []TraceSummary `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || list.Traces[0].Trace != trace.String() {
		t.Fatalf("trace listing = %+v, want the one published trace", list.Traces)
	}

	resp2, err := http.Get(ts.URL + "/debug/traces/" + trace.String())
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var got struct {
		Trace string     `json:"trace"`
		Spans []SpanJSON `json:"spans"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Spans) != 1 {
		t.Fatalf("trace get returned %d spans, want 1", len(got.Spans))
	}
	s := got.Spans[0]
	if s.Span != "0000000000000abc" || s.Parent != "0000000000000123" ||
		s.Name != "swarmd.run" || s.DurNs != time.Millisecond.Nanoseconds() ||
		len(s.Attrs) != 1 || s.Attrs[0].Value != "des/hints/4" {
		t.Errorf("span JSON = %+v, want the published span's fields", s)
	}

	for _, path := range []string{"/debug/traces/nope", "/debug/traces/" + NewTraceID().String()} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]string{
		"debug": "DEBUG", "": "INFO", "info": "INFO",
		"warn": "WARN", "warning": "WARN", "error": "ERROR",
	} {
		lv, err := ParseLevel(in)
		if err != nil || lv.String() != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %s", in, lv, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel must reject unknown levels")
	}
}

func TestNewLogger(t *testing.T) {
	var buf strings.Builder
	lg, err := NewLogger(&buf, 0, "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "trace", "deadbeef")
	var rec map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &rec); err != nil {
		t.Fatalf("json log line does not parse: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["trace"] != "deadbeef" {
		t.Errorf("log record = %v, want msg and trace attrs", rec)
	}
	if _, err := NewLogger(&buf, 0, "yaml"); err == nil {
		t.Error("NewLogger must reject unknown formats")
	}
}
