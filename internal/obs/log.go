package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// Structured-logging setup shared by the daemons: both swarmd and
// swarmgate expose -log-level and -log-format flags and route every log
// record through log/slog. Records on request paths attach the trace ID
// (obs.Trace(ctx)) so a log line and its /debug/traces entry
// cross-reference each other.

// ParseLevel maps a -log-level flag value onto a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (have debug, info, warn, error)", s)
}

// NewLogger builds a slog.Logger writing to w at the given level in the
// given format ("text" or "json").
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (have text, json)", format)
}

// SetupDefaultLogger configures the process-wide slog default from the
// -log-level/-log-format flag values, writing to stderr. Called once at
// daemon startup before anything logs.
func SetupDefaultLogger(level, format string) error {
	lv, err := ParseLevel(level)
	if err != nil {
		return err
	}
	lg, err := NewLogger(os.Stderr, lv, format)
	if err != nil {
		return err
	}
	slog.SetDefault(lg)
	return nil
}
