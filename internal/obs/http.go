package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"time"
)

// HTTP surface: GET /debug/traces lists recent traces, GET
// /debug/traces/{id} returns one trace's spans — both served from the
// process's span ring, mounted on the main handler of both daemons.
// DebugHandler additionally bundles net/http/pprof for the optional
// -debug-addr listener (pprof is never mounted on the serving listener).

// SpanJSON is the wire form of one finished span.
type SpanJSON struct {
	Trace  string    `json:"trace"`
	Span   string    `json:"span"`
	Parent string    `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	DurNs  int64     `json:"durationNs"`
	Attrs  []Attr    `json:"attrs,omitempty"`
}

// JSON renders the span for the debug endpoints.
func (s *Span) JSON() SpanJSON {
	j := SpanJSON{
		Trace: s.trace.String(),
		Span:  hex16(s.id),
		Name:  s.name,
		Start: s.start,
		DurNs: s.dur.Nanoseconds(),
		Attrs: s.attrs,
	}
	if s.parent != 0 {
		j.Parent = hex16(s.parent)
	}
	return j
}

// hex16 renders a span ID as 16 hex digits without fmt (cheap and
// deterministic).
func hex16(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// writeJSON writes v as indented JSON (the debug surface is for humans
// and tests, not a hot path).
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// HandleTraceList serves GET /debug/traces: recent trace summaries, most
// recent first.
func (tr *Tracer) HandleTraceList(w http.ResponseWriter, _ *http.Request) {
	sums := tr.Traces()
	body := struct {
		Enabled bool           `json:"enabled"`
		Traces  []TraceSummary `json:"traces"`
	}{Enabled: Enabled(), Traces: sums}
	writeJSON(w, body)
}

// HandleTraceGet serves GET /debug/traces/{id}: every retained span of one
// trace, in start order. Unknown or malformed IDs answer 404.
func (tr *Tracer) HandleTraceGet(w http.ResponseWriter, r *http.Request) {
	id, ok := ParseTraceID(r.PathValue("id"))
	if !ok {
		http.Error(w, "bad trace id", http.StatusNotFound)
		return
	}
	spans := tr.TraceSpans(id)
	if len(spans) == 0 {
		http.Error(w, "trace not found (rotated out of the ring, or never recorded)", http.StatusNotFound)
		return
	}
	out := struct {
		Trace string     `json:"trace"`
		Spans []SpanJSON `json:"spans"`
	}{Trace: id.String()}
	for _, sp := range spans {
		out.Spans = append(out.Spans, sp.JSON())
	}
	writeJSON(w, out)
}

// Mount registers the trace endpoints on a serving mux. Both daemons call
// it from their Handler construction.
func (tr *Tracer) Mount(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/traces", tr.HandleTraceList)
	mux.HandleFunc("GET /debug/traces/{id}", tr.HandleTraceGet)
}

// DebugHandler is the -debug-addr surface: the trace endpoints plus
// net/http/pprof (profile, heap, goroutine, trace, ...). It is served on
// its own listener, off by default, so profiling can never be reached
// through the production port.
func DebugHandler(tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	tr.Mount(mux)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
