package obs

import (
	"sync/atomic"
	"time"

	"swarmhints/internal/metrics"
)

// Histogram is a fixed-bucket, allocation-free latency histogram: Observe
// is a branchless-enough linear probe over a few dozen bounds plus three
// atomic adds, and nothing on the observe path allocates. Disabled
// (obs.SetEnabled(false)), Observe returns after one atomic load. Buckets
// are fixed at construction — there is no resizing, no quantile sketching,
// no per-observation memory — which is what lets the hot paths carry one
// unconditionally.
//
// Snapshots render in the Prometheus text exposition format through
// metrics.PromMetric's histogram family: cumulative <name>_bucket series
// with le labels, plus <name>_sum and <name>_count.
type Histogram struct {
	bounds []float64 // upper bounds in seconds, strictly ascending
	counts []atomic.Uint64
	// counts[len(bounds)] is the overflow (+Inf) bucket.
	sumNanos atomic.Int64
	count    atomic.Uint64
}

// DefBounds are the default latency bounds (seconds): 10µs to 60s in a
// coarse exponential ladder. One shared ladder keeps every family's
// buckets comparable across the fleet.
var DefBounds = []float64{
	0.00001, 0.0001, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// NewHistogram builds a histogram over the given upper bounds (seconds,
// strictly ascending; nil means DefBounds). An implicit +Inf overflow
// bucket is always present.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBounds
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration. Disabled, it is a single atomic load.
func (h *Histogram) Observe(d time.Duration) {
	if !enabled.Load() {
		return
	}
	h.observe(d)
}

// observe is Observe past the enabled gate (Timer.Observe already paid it).
func (h *Histogram) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := d.Seconds()
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNanos.Add(d.Nanoseconds())
	h.count.Add(1)
}

// Snapshot returns the histogram's current state as a Prometheus series:
// cumulative bucket counts (one per bound, plus +Inf), the observation sum
// in seconds, and the observation count. Concurrent observations may land
// between the bucket reads — the snapshot is monotone-consistent enough
// for scraping, exactly like every Prometheus client's.
func (h *Histogram) Snapshot(labels map[string]string) metrics.PromHistSeries {
	s := metrics.PromHistSeries{
		Labels:  labels,
		Bounds:  h.bounds,
		Buckets: make([]uint64, len(h.counts)),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Buckets[i] = cum
	}
	s.Count = h.count.Load()
	s.Sum = float64(h.sumNanos.Load()) / float64(time.Second)
	if s.Count < s.Buckets[len(s.Buckets)-1] {
		// A racing observer bumped a bucket before the count; clamp so the
		// rendered +Inf bucket never exceeds _count.
		s.Count = s.Buckets[len(s.Buckets)-1]
	}
	return s
}

// Count returns the number of observations recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNanos.Load()) }

// Prom renders the histogram as a single-series Prometheus family.
func (h *Histogram) Prom(name, help string) metrics.PromMetric {
	return metrics.PromMetric{
		Name: name, Help: help, Type: "histogram",
		Hist: []metrics.PromHistSeries{h.Snapshot(nil)},
	}
}

// HistVec is a family of histograms over one label with a fixed, known-at-
// construction set of values (outcomes, stages, ops). Fixing the label
// space up front keeps the observe path allocation-free: call sites
// resolve their histogram once (With) and hold the pointer, exactly like
// fault sites.
type HistVec struct {
	name, help, label string
	keys              []string
	hists             []*Histogram
}

// NewHistVec builds the family with one histogram per key, all sharing the
// given bounds (nil = DefBounds).
func NewHistVec(name, help, label string, bounds []float64, keys ...string) *HistVec {
	v := &HistVec{name: name, help: help, label: label, keys: keys}
	for range keys {
		v.hists = append(v.hists, NewHistogram(bounds))
	}
	return v
}

// With returns the histogram for one label value. Unknown values panic:
// the label space is a fixed contract, and a typo must fail at wiring
// time, not silently create a series.
func (v *HistVec) With(key string) *Histogram {
	for i, k := range v.keys {
		if k == key {
			return v.hists[i]
		}
	}
	panic("obs: unknown histogram label value " + key)
}

// Prom renders the family: one series per label value, in construction
// order (WriteProm sorts by label signature for the wire).
func (v *HistVec) Prom() metrics.PromMetric {
	m := metrics.PromMetric{Name: v.name, Help: v.help, Type: "histogram"}
	for i, k := range v.keys {
		m.Hist = append(m.Hist, v.hists[i].Snapshot(map[string]string{v.label: k}))
	}
	return m
}
