package obs

import (
	"strings"
	"testing"
	"time"

	"swarmhints/internal/metrics"
)

func TestHistogramBucketMath(t *testing.T) {
	withEnabled(t, true)
	bounds := []float64{0.001, 0.01, 0.1}
	h := NewHistogram(bounds)
	// Upper bounds are inclusive (Prometheus le semantics): an observation
	// exactly on a bound lands in that bound's bucket, not the next one.
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0},
		{500 * time.Microsecond, 0},
		{time.Millisecond, 0}, // exactly le=0.001
		{2 * time.Millisecond, 1},
		{10 * time.Millisecond, 1}, // exactly le=0.01
		{100 * time.Millisecond, 2},
		{101 * time.Millisecond, 3}, // past the last bound: +Inf
		{time.Hour, 3},
		{-time.Second, 0}, // clamped to zero, never a panic
	}
	want := make([]uint64, len(bounds)+1)
	for _, c := range cases {
		h.Observe(c.d)
		want[c.bucket]++
	}
	for i := range h.counts {
		if got := h.counts[i].Load(); got != want[i] {
			t.Errorf("bucket %d count = %d, want %d", i, got, want[i])
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(cases))
	}

	s := h.Snapshot(nil)
	if len(s.Buckets) != len(bounds)+1 {
		t.Fatalf("snapshot has %d buckets, want %d (+Inf included)", len(s.Buckets), len(bounds)+1)
	}
	var cum uint64
	for i, w := range want {
		cum += w
		if s.Buckets[i] != cum {
			t.Errorf("cumulative bucket %d = %d, want %d", i, s.Buckets[i], cum)
		}
	}
	if s.Buckets[len(s.Buckets)-1] != s.Count {
		t.Errorf("+Inf bucket %d != count %d", s.Buckets[len(s.Buckets)-1], s.Count)
	}
}

func TestHistogramSum(t *testing.T) {
	withEnabled(t, true)
	h := NewHistogram(nil)
	h.Observe(1500 * time.Millisecond)
	h.Observe(500 * time.Millisecond)
	if got, want := h.Sum(), 2*time.Second; got != want {
		t.Errorf("Sum = %v, want %v", got, want)
	}
	if got := h.Snapshot(nil).Sum; got != 2.0 {
		t.Errorf("snapshot Sum = %v, want 2 seconds", got)
	}
}

func TestNewHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{
		{0.1, 0.1},
		{0.1, 0.01},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) must panic on non-ascending bounds", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestHistVec(t *testing.T) {
	withEnabled(t, true)
	v := NewHistVec("x_seconds", "help", "op", []float64{0.01}, "read", "write")
	if v.With("read") == v.With("write") {
		t.Error("distinct label values must resolve to distinct histograms")
	}
	if v.With("read") != v.With("read") {
		t.Error("With must be stable for one label value")
	}
	v.With("read").Observe(time.Millisecond)
	m := v.Prom()
	if m.Type != "histogram" || len(m.Hist) != 2 {
		t.Fatalf("Prom family = type %q with %d series, want histogram/2", m.Type, len(m.Hist))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("With must panic on a label value outside the fixed space")
			}
		}()
		v.With("fsync")
	}()
}

// TestHistogramPromGolden pins the exact Prometheus text exposition of a
// histogram family: cumulative _bucket lines in bound order with le
// appended after the series labels, the +Inf bucket, then _sum and _count,
// series sorted by label signature.
func TestHistogramPromGolden(t *testing.T) {
	withEnabled(t, true)
	v := NewHistVec("swarmd_test_seconds", "Test histogram.", "op", []float64{0.001, 0.01}, "read", "write")
	for _, d := range []time.Duration{
		500 * time.Microsecond, // read: le=0.001
		10 * time.Millisecond,  // read: le=0.01 (exactly on the bound)
		time.Second,            // read: +Inf
	} {
		v.With("read").Observe(d)
	}

	var b strings.Builder
	if err := metrics.WriteProm(&b, []metrics.PromMetric{v.Prom()}); err != nil {
		t.Fatal(err)
	}
	golden := `# HELP swarmd_test_seconds Test histogram.
# TYPE swarmd_test_seconds histogram
swarmd_test_seconds_bucket{op="read",le="0.001"} 1
swarmd_test_seconds_bucket{op="read",le="0.01"} 2
swarmd_test_seconds_bucket{op="read",le="+Inf"} 3
swarmd_test_seconds_sum{op="read"} 1.0105
swarmd_test_seconds_count{op="read"} 3
swarmd_test_seconds_bucket{op="write",le="0.001"} 0
swarmd_test_seconds_bucket{op="write",le="0.01"} 0
swarmd_test_seconds_bucket{op="write",le="+Inf"} 0
swarmd_test_seconds_sum{op="write"} 0
swarmd_test_seconds_count{op="write"} 0
`
	if b.String() != golden {
		t.Errorf("rendered exposition differs from golden:\n--- got ---\n%s--- want ---\n%s", b.String(), golden)
	}
}

// TestHistogramPromGoldenUnlabeled pins the single-series shape: no series
// labels, so the bucket lines carry only le.
func TestHistogramPromGoldenUnlabeled(t *testing.T) {
	withEnabled(t, true)
	h := NewHistogram([]float64{0.5})
	h.Observe(250 * time.Millisecond)
	h.Observe(2 * time.Second)

	var b strings.Builder
	if err := metrics.WriteProm(&b, []metrics.PromMetric{h.Prom("plain_seconds", "")}); err != nil {
		t.Fatal(err)
	}
	golden := `# TYPE plain_seconds histogram
plain_seconds_bucket{le="0.5"} 1
plain_seconds_bucket{le="+Inf"} 2
plain_seconds_sum 2.25
plain_seconds_count 2
`
	if b.String() != golden {
		t.Errorf("rendered exposition differs from golden:\n--- got ---\n%s--- want ---\n%s", b.String(), golden)
	}
}
