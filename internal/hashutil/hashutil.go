// Package hashutil provides the hash functions used throughout the
// simulator: the H3 universal family (Carter–Wegman) used by Swarm's Bloom
// filters, and the fixed hint-to-tile, hint-to-bucket, and 16-bit hashed-hint
// functions described in Sections III-B and VI of the paper.
package hashutil

// SplitMix64 is a fast, well-distributed 64-bit mixer. It backs the fixed
// hint hashes: deterministic across runs, no per-run salt, so the same hint
// always maps to the same tile/bucket within a configuration.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HintHash16 returns the 16-bit hashed hint that tasks carry throughout
// their lifetime and that task dispatch compares against running tasks
// (Sec. III-B, "Serializing conflicting tasks").
func HintHash16(hint uint64) uint16 {
	return uint16(SplitMix64(hint))
}

// HintToTile hashes a 64-bit hint down to a tile ID in [0, numTiles).
func HintToTile(hint uint64, numTiles int) int {
	if numTiles <= 1 {
		return 0
	}
	return int(SplitMix64(hint^0xa5a5a5a5) % uint64(numTiles))
}

// HintToBucket hashes a hint to a bucket for the LBHints tile map
// (Sec. VI, "Configurable hint-to-tile mapping with buckets").
func HintToBucket(hint uint64, numBuckets int) int {
	if numBuckets <= 1 {
		return 0
	}
	return int(SplitMix64(hint^0x5bd1e995) % uint64(numBuckets))
}

// H3 implements an H3 universal hash function h(x) = XOR of q[i] over the set
// bits i of x, as used by Swarm's Bloom-filter conflict signatures [12]. Each
// instance is parameterized by a 64-entry table of random words.
//
// Hashing is byte-sliced: because H3 is linear under XOR, the contribution of
// every input byte can be precomputed into a 256-entry table, turning the
// 64-iteration bit loop into 8 table lookups. The function values are
// identical to the bit-by-bit definition (hashRef below), which keeps every
// signature deterministic across this optimization.
type H3 struct {
	q   [64]uint64
	tab [8][256]uint64 // tab[j][b] = XOR of q[8j+i] over the set bits i of b
}

// NewH3 builds an H3 hash function seeded deterministically from seed.
func NewH3(seed uint64) *H3 {
	h := &H3{}
	s := seed
	for i := range h.q {
		s = SplitMix64(s + uint64(i) + 1)
		h.q[i] = s
	}
	for j := range h.tab {
		for b := 1; b < 256; b++ {
			lsb := b & -b
			bit := 0
			for 1<<bit != lsb {
				bit++
			}
			h.tab[j][b] = h.tab[j][b^lsb] ^ h.q[8*j+bit]
		}
	}
	return h
}

// Hash returns the H3 hash of x.
func (h *H3) Hash(x uint64) uint64 {
	return h.tab[0][byte(x)] ^
		h.tab[1][byte(x>>8)] ^
		h.tab[2][byte(x>>16)] ^
		h.tab[3][byte(x>>24)] ^
		h.tab[4][byte(x>>32)] ^
		h.tab[5][byte(x>>40)] ^
		h.tab[6][byte(x>>48)] ^
		h.tab[7][byte(x>>56)]
}

// hashRef is the bit-by-bit H3 definition, kept as the reference the
// byte-sliced tables are tested against.
func (h *H3) hashRef(x uint64) uint64 {
	var out uint64
	for i := 0; x != 0; i++ {
		if x&1 != 0 {
			out ^= h.q[i]
		}
		x >>= 1
	}
	return out
}

// Bank returns Hash(x) folded into [0, n).
func (h *H3) Bank(x uint64, n int) int {
	if n <= 1 {
		return 0
	}
	return int(h.Hash(x) % uint64(n))
}
