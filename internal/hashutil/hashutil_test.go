package hashutil

import (
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	if SplitMix64(42) != SplitMix64(42) {
		t.Fatal("SplitMix64 not deterministic")
	}
	if SplitMix64(1) == SplitMix64(2) {
		t.Fatal("adjacent inputs collide")
	}
}

func TestSplitMix64Distribution(t *testing.T) {
	// Sequential hints should spread roughly evenly over 64 tiles.
	const n, tiles = 64_000, 64
	counts := make([]int, tiles)
	for i := uint64(0); i < n; i++ {
		counts[HintToTile(i, tiles)]++
	}
	want := n / tiles
	for tile, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("tile %d got %d hints, want near %d", tile, c, want)
		}
	}
}

func TestHintToTileRange(t *testing.T) {
	f := func(hint uint64, n uint8) bool {
		tiles := int(n%64) + 1
		tile := HintToTile(hint, tiles)
		return tile >= 0 && tile < tiles
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHintToTileSingleTile(t *testing.T) {
	for _, n := range []int{0, 1} {
		if got := HintToTile(12345, n); got != 0 {
			t.Fatalf("HintToTile(_, %d) = %d, want 0", n, got)
		}
	}
}

func TestHintToBucketRange(t *testing.T) {
	f := func(hint uint64) bool {
		b := HintToBucket(hint, 1024)
		return b >= 0 && b < 1024
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHintHash16DistinguishesHints(t *testing.T) {
	// The paper quotes ~6e-5 false-positive probability with 4 cores/tile;
	// over a small set of hints we expect near-zero 16-bit collisions.
	seen := make(map[uint16]uint64)
	collisions := 0
	for h := uint64(0); h < 1000; h++ {
		k := HintHash16(h)
		if _, dup := seen[k]; dup {
			collisions++
		}
		seen[k] = h
	}
	if collisions > 20 {
		t.Fatalf("too many 16-bit hint collisions: %d/1000", collisions)
	}
}

func TestH3Linearity(t *testing.T) {
	// H3 is XOR-linear: h(a^b) == h(a)^h(b). This is the property that makes
	// it a universal family suitable for Bloom signatures.
	h := NewH3(7)
	f := func(a, b uint64) bool {
		return h.Hash(a^b) == h.Hash(a)^h.Hash(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestH3ZeroMapsToZero(t *testing.T) {
	if NewH3(3).Hash(0) != 0 {
		t.Fatal("H3(0) must be 0 by linearity")
	}
}

func TestH3SeedsDiffer(t *testing.T) {
	a, b := NewH3(1), NewH3(2)
	same := 0
	for x := uint64(1); x < 100; x++ {
		if a.Hash(x) == b.Hash(x) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("independently seeded H3s agree on %d/99 inputs", same)
	}
}

func TestH3BankRange(t *testing.T) {
	h := NewH3(11)
	f := func(x uint64, n uint8) bool {
		banks := int(n%32) + 1
		b := h.Bank(x, banks)
		return b >= 0 && b < banks
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestH3ByteSlicedMatchesReference pins the byte-sliced table evaluation to
// the bit-by-bit H3 definition: identical values mean every Bloom signature
// bit position is unchanged by the optimization.
func TestH3ByteSlicedMatchesReference(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		h := NewH3(0xb100 + seed)
		f := func(x uint64) bool { return h.Hash(x) == h.hashRef(x) }
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, x := range []uint64{0, 1, ^uint64(0), 1 << 63, 0xff, 0x8000000000000001} {
			if h.Hash(x) != h.hashRef(x) {
				t.Fatalf("seed %d: Hash(%#x) = %#x, ref %#x", seed, x, h.Hash(x), h.hashRef(x))
			}
		}
	}
}
