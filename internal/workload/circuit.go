package workload

// Circuit is a feed-forward gate-level digital circuit, the des input. The
// generator builds a carry-save adder array, the structure of the paper's
// csaArray32 input: W full-adder slices, each made of XOR/AND/OR gates, with
// ripple connections between slices.
type Circuit struct {
	// Per gate: kind, the two input gate IDs (-1 = external input), and
	// propagation delay in simulated time units.
	Kind  []GateKind
	In0   []int32
	In1   []int32
	Delay []uint32
	// Fanout lists: for each gate, the (gate, pin) pairs its output feeds.
	Fanout [][]Pin
	// ExternalInputs are the gates fed directly by waveforms (their In0 is
	// -1); waveforms toggle these.
	ExternalInputs []int32
}

// GateKind is the boolean function of a gate.
type GateKind uint8

// Gate kinds.
const (
	GateXOR GateKind = iota
	GateAND
	GateOR
	GateNOT
	GateBUF // buffer; used for external-input stubs
)

// Pin identifies one input pin of a gate.
type Pin struct {
	Gate int32
	Pin  uint8
}

// Eval computes a gate's output from its input values (0/1).
func (k GateKind) Eval(a, b uint64) uint64 {
	switch k {
	case GateXOR:
		return a ^ b
	case GateAND:
		return a & b
	case GateOR:
		return a | b
	case GateNOT:
		return 1 &^ a
	case GateBUF:
		return a
	}
	return 0
}

// N returns the number of gates.
func (c *Circuit) N() int { return len(c.Kind) }

func (c *Circuit) addGate(k GateKind, delay uint32) int {
	c.Kind = append(c.Kind, k)
	c.In0 = append(c.In0, -1)
	c.In1 = append(c.In1, -1)
	c.Delay = append(c.Delay, delay)
	c.Fanout = append(c.Fanout, nil)
	return len(c.Kind) - 1
}

// connect wires src's output into pin p of dst.
func (c *Circuit) connect(src, dst int, p uint8) {
	if p == 0 {
		c.In0[dst] = int32(src)
	} else {
		c.In1[dst] = int32(src)
	}
	c.Fanout[src] = append(c.Fanout[src], Pin{Gate: int32(dst), Pin: p})
}

// CSAArray builds a carry-save adder ARRAY: rows of width-bit carry-save
// adder slices, the sum/carry outputs of each row feeding the operand
// inputs of the next (as in the csaArray32 input: a 2-D array of full
// adders, thousands of gates). Gate delays vary by kind, so event
// timestamps spread realistically.
func CSAArray(width, rows int) *Circuit {
	c := &Circuit{}
	var prevSum, prevCout []int
	for r := 0; r < rows; r++ {
		sums, couts := c.addCSARow(width, prevSum, prevCout)
		prevSum, prevCout = sums, couts
	}
	return c
}

// addCSARow appends one width-bit carry-save row. Operand inputs come from
// the previous row's sum/carry outputs when available, otherwise from fresh
// external inputs.
func (c *Circuit) addCSARow(width int, feedA, feedB []int) (sums, couts []int) {
	delays := map[GateKind]uint32{GateXOR: 3, GateAND: 2, GateOR: 2, GateBUF: 1}
	operand := func(feed []int, b int) int {
		if feed != nil && b < len(feed) {
			return feed[b]
		}
		g := c.addGate(GateBUF, delays[GateBUF])
		c.ExternalInputs = append(c.ExternalInputs, int32(g))
		return g
	}
	var prevCarry = -1
	for b := 0; b < width; b++ {
		a := operand(feedA, b)
		bb := operand(feedB, b)
		// The third operand bit is always a fresh external input.
		cc := c.addGate(GateBUF, delays[GateBUF])
		c.ExternalInputs = append(c.ExternalInputs, int32(cc))
		// Full adder: s1 = a^b; sum = s1^cin; c1 = a&b; c2 = s1&cin;
		// cout = c1|c2. cin is the previous slice's carry (or operand c).
		s1 := c.addGate(GateXOR, delays[GateXOR])
		c.connect(a, s1, 0)
		c.connect(bb, s1, 1)
		cin := cc
		if prevCarry >= 0 {
			// Mix the ripple carry with this slice's third operand.
			mix := c.addGate(GateXOR, delays[GateXOR])
			c.connect(cc, mix, 0)
			c.connect(prevCarry, mix, 1)
			cin = mix
		}
		sum := c.addGate(GateXOR, delays[GateXOR])
		c.connect(s1, sum, 0)
		c.connect(cin, sum, 1)
		c1 := c.addGate(GateAND, delays[GateAND])
		c.connect(a, c1, 0)
		c.connect(bb, c1, 1)
		c2 := c.addGate(GateAND, delays[GateAND])
		c.connect(s1, c2, 0)
		c.connect(cin, c2, 1)
		cout := c.addGate(GateOR, delays[GateOR])
		c.connect(c1, cout, 0)
		c.connect(c2, cout, 1)
		prevCarry = cout
		sums = append(sums, sum)
		couts = append(couts, cout)
	}
	return sums, couts
}

// Waveform is one external stimulus: at time TS, external input Gate's
// value becomes Val.
type Waveform struct {
	TS   uint64
	Gate int32
	Val  uint64
}

// CSAWaveforms generates nToggles input transitions spread over the run,
// cycling through the external inputs with alternating values — the des
// event stimulus.
func CSAWaveforms(c *Circuit, nToggles int, seed int64) []Waveform {
	out := make([]Waveform, 0, nToggles)
	nIn := len(c.ExternalInputs)
	state := make([]uint64, nIn)
	// Deterministic LCG so toggles look irregular but reproducible.
	x := uint64(seed)*6364136223846793005 + 1442695040888963407
	ts := uint64(1)
	for i := 0; i < nToggles; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		in := int(x>>33) % nIn
		state[in] ^= 1
		out = append(out, Waveform{TS: ts, Gate: c.ExternalInputs[in], Val: state[in]})
		ts += 1 + (x>>55)%7
	}
	return out
}
