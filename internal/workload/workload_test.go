package workload

import (
	"testing"
	"testing/quick"
)

func TestTriGridStructure(t *testing.T) {
	g := TriGrid(4, 5)
	if g.N != 20 {
		t.Fatalf("N = %d, want 20", g.N)
	}
	// Interior vertex (1,1) = id 6: neighbors left,right,up,down + 2 diagonals.
	if d := g.Degree(6); d != 6 {
		t.Fatalf("interior degree = %d, want 6", d)
	}
	// Symmetric: every edge appears both ways.
	for v := 0; v < g.N; v++ {
		g.Edges(v, func(u int, _ uint32) {
			found := false
			g.Edges(u, func(x int, _ uint32) {
				if x == v {
					found = true
				}
			})
			if !found {
				t.Fatalf("edge %d->%d not symmetric", v, u)
			}
		})
	}
}

func TestRoadMapConnectedAndPlanarCoords(t *testing.T) {
	g := RoadMap(8, 8, 3)
	if g.X == nil || g.Y == nil {
		t.Fatal("road map must carry coordinates")
	}
	// BFS reachability from 0: backbone keeps it connected.
	seen := make([]bool, g.N)
	queue := []int{0}
	seen[0] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.Edges(v, func(u int, _ uint32) {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		})
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("vertex %d unreachable", v)
		}
	}
	// Weights positive.
	for _, w := range g.W {
		if w < 1 || w > 10 {
			t.Fatalf("weight %d out of range", w)
		}
	}
}

func TestRoadMapDeterministic(t *testing.T) {
	a, b := RoadMap(6, 6, 42), RoadMap(6, 6, 42)
	if len(a.Dst) != len(b.Dst) {
		t.Fatal("same seed produced different road maps")
	}
	for i := range a.Dst {
		if a.Dst[i] != b.Dst[i] || a.W[i] != b.W[i] {
			t.Fatal("same seed produced different road maps")
		}
	}
}

func TestPowerLawSkew(t *testing.T) {
	g := PowerLaw(500, 2, 7)
	if g.N != 500 {
		t.Fatalf("N = %d", g.N)
	}
	maxDeg, sum := 0, 0
	for v := 0; v < g.N; v++ {
		d := g.Degree(v)
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := sum / g.N
	if maxDeg < 5*avg {
		t.Fatalf("degree distribution not skewed: max %d vs avg %d", maxDeg, avg)
	}
}

func TestCSAArrayWellFormed(t *testing.T) {
	c := CSAArray(8, 2)
	if c.N() == 0 {
		t.Fatal("empty circuit")
	}
	// Row 0: 3 externals per slice; row 1: a/b fed by row 0, 1 external.
	if len(c.ExternalInputs) != 8*3+8 {
		t.Fatalf("external inputs = %d, want 32", len(c.ExternalInputs))
	}
	// Every fanout edge points at a gate whose input records the source.
	for g := 0; g < c.N(); g++ {
		for _, p := range c.Fanout[g] {
			in := c.In0[p.Gate]
			if p.Pin == 1 {
				in = c.In1[p.Gate]
			}
			if in != int32(g) {
				t.Fatalf("fanout %d->%d/%d inconsistent with input wiring", g, p.Gate, p.Pin)
			}
		}
	}
	// Feed-forward: every wired input has a smaller gate id... carry chain
	// guarantees acyclicity by construction; verify no self loops at least.
	for g := 0; g < c.N(); g++ {
		if c.In0[g] == int32(g) || c.In1[g] == int32(g) {
			t.Fatalf("gate %d feeds itself", g)
		}
	}
}

func TestGateEval(t *testing.T) {
	cases := []struct {
		k       GateKind
		a, b, w uint64
	}{
		{GateXOR, 1, 1, 0}, {GateXOR, 1, 0, 1},
		{GateAND, 1, 1, 1}, {GateAND, 1, 0, 0},
		{GateOR, 0, 0, 0}, {GateOR, 0, 1, 1},
		{GateNOT, 1, 0, 0}, {GateNOT, 0, 1, 1},
		{GateBUF, 1, 0, 1},
	}
	for _, c := range cases {
		if got := c.k.Eval(c.a, c.b); got != c.w {
			t.Fatalf("%v(%d,%d) = %d, want %d", c.k, c.a, c.b, got, c.w)
		}
	}
}

func TestCSAWaveformsMonotonic(t *testing.T) {
	c := CSAArray(8, 2)
	wf := CSAWaveforms(c, 100, 5)
	if len(wf) != 100 {
		t.Fatalf("%d waveforms", len(wf))
	}
	for i := 1; i < len(wf); i++ {
		if wf[i].TS < wf[i-1].TS {
			t.Fatal("waveform timestamps must be nondecreasing")
		}
	}
	for _, w := range wf {
		if w.Val > 1 {
			t.Fatalf("waveform value %d not boolean", w.Val)
		}
	}
}

func TestTornadoPattern(t *testing.T) {
	pk := Tornado(4, 2, 300, 1)
	if len(pk) == 0 {
		t.Fatal("no packets")
	}
	for _, p := range pk {
		sx, sy := int(p.Src)%4, int(p.Src)/4
		dx, dy := int(p.Dst)%4, int(p.Dst)/4
		if sy != dy {
			t.Fatal("tornado traffic must stay within a row")
		}
		if dx != (sx+1)%4 {
			t.Fatalf("tornado dest for x=%d is %d, want %d", sx, dx, (sx+1)%4)
		}
	}
}

func TestTPCCTxnsShape(t *testing.T) {
	cfg := DefaultTPCC()
	txns := TPCCTxns(cfg, 500, 2)
	newOrders, payments := 0, 0
	for _, tx := range txns {
		switch tx.Kind {
		case TxnNewOrder:
			newOrders++
			if len(tx.Items) < 5 || len(tx.Items) > 8 {
				t.Fatalf("order lines = %d", len(tx.Items))
			}
			for i, it := range tx.Items {
				if int(it) >= cfg.Items || tx.Qty[i] < 1 {
					t.Fatal("bad order line")
				}
			}
		case TxnPayment:
			payments++
			if tx.Amount <= 0 {
				t.Fatal("payment without amount")
			}
		}
		if int(tx.Warehouse) >= cfg.Warehouses || int(tx.District) >= cfg.Districts {
			t.Fatal("key out of range")
		}
	}
	if payments == 0 || newOrders < payments {
		t.Fatalf("mix wrong: %d new-order, %d payment", newOrders, payments)
	}
}

func TestGenomeOverlapChain(t *testing.T) {
	in := Genome(50, 4, 3, 9)
	if len(in.Segments) != 50*3*4 {
		t.Fatalf("segment words = %d", len(in.Segments))
	}
	// Reference chain is a straight line.
	for i := 0; i < 49; i++ {
		if in.TrueNext[i] != int32(i+1) {
			t.Fatalf("TrueNext[%d] = %d", i, in.TrueNext[i])
		}
	}
	if in.TrueNext[49] != -1 {
		t.Fatal("last segment must have no successor")
	}
}

func TestGenomeOverlapWordsUnique(t *testing.T) {
	f := func(seed int64) bool {
		in := Genome(30, 3, 2, seed)
		// The overlap word (first word) of each unique segment must be
		// unique, or matching would be ambiguous. Collect from duplicates.
		seen := map[uint64]bool{}
		count := 0
		for s := 0; s < len(in.Segments)/in.SegWords; s++ {
			w := in.Segments[s*in.SegWords]
			if !seen[w] {
				seen[w] = true
				count++
			}
		}
		return count == 30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansPoints(t *testing.T) {
	p := KMeansPoints(100, 4, 3, 11)
	if len(p.Coords) != 400 {
		t.Fatalf("coords = %d", len(p.Coords))
	}
	q := KMeansPoints(100, 4, 3, 11)
	for i := range p.Coords {
		if p.Coords[i] != q.Coords[i] {
			t.Fatal("kmeans points not deterministic")
		}
	}
}
