// Package workload generates deterministic synthetic inputs that substitute
// for the paper's proprietary datasets (DESIGN.md, Sec. 1): grid and
// triangular meshes for the DIMACS graphs, grid road networks with
// coordinates for the USA/Germany road maps, a preferential-attachment
// social graph for com-youtube, a carry-save-adder circuit for csaArray32,
// tornado traffic for the GARNET mesh, a TPC-C-like transaction mix for
// silo, overlapping gene segments for genome, and Gaussian point clouds for
// kmeans. All generators are seeded and reproducible.
package workload

import "math/rand"

// Graph is a host-side CSR graph used both to lay out simulated memory and
// to compute serial reference results.
type Graph struct {
	N   int
	Off []int32 // length N+1
	Dst []int32
	W   []uint32 // edge weights, parallel to Dst (1 for unweighted)
	// X, Y are planar coordinates when the graph is geometric (road maps),
	// used by astar's heuristic; nil otherwise.
	X, Y []int32
}

// Degree returns the out-degree of v.
func (g *Graph) Degree(v int) int { return int(g.Off[v+1] - g.Off[v]) }

// Edges calls fn for every edge (v, dst, w).
func (g *Graph) Edges(v int, fn func(dst int, w uint32)) {
	for i := g.Off[v]; i < g.Off[v+1]; i++ {
		fn(int(g.Dst[i]), g.W[i])
	}
}

type edge struct {
	u, v int
	w    uint32
}

func buildCSR(n int, edges []edge, coords func(v int) (int32, int32)) *Graph {
	g := &Graph{N: n, Off: make([]int32, n+1)}
	deg := make([]int32, n)
	for _, e := range edges {
		deg[e.u]++
		deg[e.v]++
	}
	for v := 0; v < n; v++ {
		g.Off[v+1] = g.Off[v] + deg[v]
	}
	m := int(g.Off[n])
	g.Dst = make([]int32, m)
	g.W = make([]uint32, m)
	pos := make([]int32, n)
	copy(pos, g.Off[:n])
	for _, e := range edges {
		g.Dst[pos[e.u]] = int32(e.v)
		g.W[pos[e.u]] = e.w
		pos[e.u]++
		g.Dst[pos[e.v]] = int32(e.u)
		g.W[pos[e.v]] = e.w
		pos[e.v]++
	}
	if coords != nil {
		g.X = make([]int32, n)
		g.Y = make([]int32, n)
		for v := 0; v < n; v++ {
			g.X[v], g.Y[v] = coords(v)
		}
	}
	return g
}

// TriGrid builds a triangular grid mesh of rows×cols vertices: the planar,
// low-degree, high-diameter structure of the hugetric DIMACS meshes used by
// bfs. Unweighted.
func TriGrid(rows, cols int) *Graph {
	n := rows * cols
	id := func(r, c int) int { return r*cols + c }
	var edges []edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, edge{id(r, c), id(r, c+1), 1})
			}
			if r+1 < rows {
				edges = append(edges, edge{id(r, c), id(r+1, c), 1})
				if c+1 < cols {
					edges = append(edges, edge{id(r, c), id(r+1, c+1), 1}) // diagonal
				}
			}
		}
	}
	return buildCSR(n, edges, nil)
}

// RoadMap builds a rows×cols grid road network with random integer weights
// in [minW, maxW], a fraction of edges removed (dead ends and irregularity,
// like real road maps), and planar coordinates for A*'s heuristic. The
// remaining graph is kept connected by never removing a spanning backbone.
func RoadMap(rows, cols int, seed int64) *Graph {
	const (
		minW      = 1
		maxW      = 10
		removePct = 20
	)
	rng := rand.New(rand.NewSource(seed))
	id := func(r, c int) int { return r*cols + c }
	var edges []edge
	w := func() uint32 { return uint32(minW + rng.Intn(maxW-minW+1)) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				// Horizontal edges on row 0 plus all vertical edges form the
				// backbone; other edges may be removed.
				if r == 0 || rng.Intn(100) >= removePct {
					edges = append(edges, edge{id(r, c), id(r, c+1), w()})
				}
			}
			if r+1 < rows {
				edges = append(edges, edge{id(r, c), id(r+1, c), w()})
			}
		}
	}
	return buildCSR(rows*cols, edges, func(v int) (int32, int32) {
		return int32(v % cols), int32(v / cols)
	})
}

// PowerLaw builds a Barabási–Albert-style preferential-attachment graph of
// n vertices with m edges per new vertex: the skewed-degree structure of
// the com-youtube social graph used by color. Unweighted.
func PowerLaw(n, m int, seed int64) *Graph {
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []edge
	// Endpoint multiset for preferential attachment.
	targets := make([]int, 0, 2*n*m)
	for v := 0; v < m+1 && v < n; v++ {
		for u := 0; u < v; u++ {
			edges = append(edges, edge{u, v, 1})
			targets = append(targets, u, v)
		}
	}
	for v := m + 1; v < n; v++ {
		seen := map[int]bool{}
		for len(seen) < m {
			u := targets[rng.Intn(len(targets))]
			if u != v && !seen[u] {
				seen[u] = true
				edges = append(edges, edge{u, v, 1})
				targets = append(targets, u, v)
			}
		}
		targets = append(targets, v) // self weight
	}
	return buildCSR(n, edges, nil)
}
