package workload

import "math/rand"

// --- nocsim: tornado traffic for a K×K mesh (GARNET substitute) ---

// Packet is one NoC packet injection for nocsim.
type Packet struct {
	TS       uint64
	Src, Dst int32 // router ids on the simulated KxK mesh
}

// Tornado generates tornado-pattern traffic on a k×k mesh: every router
// sends to the router halfway around its row ((x + ⌈k/2⌉ - 1) mod k), the
// classic adversarial pattern used in the paper's nocsim runs. rate is
// packets per router per 100 time units; horizon is the injection window.
func Tornado(k int, rate int, horizon uint64, seed int64) []Packet {
	rng := rand.New(rand.NewSource(seed))
	var out []Packet
	for r := 0; r < k*k; r++ {
		x, y := r%k, r/k
		dx := (x + (k+1)/2 - 1) % k
		dst := int32(y*k + dx)
		for t := uint64(0); t < horizon; t += 100 {
			for i := 0; i < rate; i++ {
				jitter := uint64(rng.Intn(100))
				out = append(out, Packet{TS: t + jitter, Src: int32(r), Dst: dst})
			}
		}
	}
	return out
}

// --- silo: TPC-C-like transaction mix ---

// TxnKind distinguishes the two transaction types in the mix.
type TxnKind uint8

// Transaction kinds (a NewOrder-heavy mix, as in TPC-C).
const (
	TxnNewOrder TxnKind = iota
	TxnPayment
)

// Txn is one database transaction's parameters, all known at creation time
// (the property silo's hints exploit: table + primary key identify each
// tuple before execution).
type Txn struct {
	Kind      TxnKind
	Warehouse int32
	District  int32
	Customer  int32
	Items     []int32 // NewOrder order lines (stock keys)
	Qty       []int32
	Amount    int64 // Payment amount
}

// TPCCConfig sizes the synthetic database.
type TPCCConfig struct {
	Warehouses int
	Districts  int // per warehouse
	Customers  int // per district
	Items      int
}

// DefaultTPCC mirrors the paper's 4-warehouse configuration at reduced
// item counts.
func DefaultTPCC() TPCCConfig {
	return TPCCConfig{Warehouses: 4, Districts: 10, Customers: 32, Items: 256}
}

// TPCCTxns generates n transactions: ~90% NewOrder with 5-8 order lines,
// ~10% Payment, with warehouse/district/item skew so some tuples are hot.
func TPCCTxns(cfg TPCCConfig, n int, seed int64) []Txn {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Txn, n)
	for i := range out {
		t := Txn{
			Warehouse: int32(rng.Intn(cfg.Warehouses)),
			District:  int32(rng.Intn(cfg.Districts)),
			Customer:  int32(rng.Intn(cfg.Customers)),
		}
		if rng.Intn(10) == 0 {
			t.Kind = TxnPayment
			t.Amount = int64(1 + rng.Intn(5000))
		} else {
			t.Kind = TxnNewOrder
			lines := 5 + rng.Intn(4)
			for l := 0; l < lines; l++ {
				// Mild Zipf-ish skew: a quarter of lines hit the popular
				// eighth of the catalog.
				it := rng.Intn(cfg.Items)
				if rng.Intn(4) == 0 {
					it = rng.Intn(cfg.Items/8 + 1)
				}
				t.Items = append(t.Items, int32(it))
				t.Qty = append(t.Qty, int32(1+rng.Intn(10)))
			}
		}
		out[i] = t
	}
	return out
}

// --- genome: overlapping gene segments ---

// GenomeInput is the gene-sequencing workload: nSegments overlapping
// windows over a random genome, each duplicated and shuffled, to be
// deduplicated and re-linked by overlap (the STAMP genome structure).
type GenomeInput struct {
	SegWords int      // words of packed bases per segment
	Segments []uint64 // nTotal * SegWords packed contents
	NUnique  int
	// TrueNext[i] is the unique-segment index following unique segment i in
	// the original genome (-1 for the last); the reference answer.
	TrueNext []int32
}

// Genome builds nUnique segments of segWords words each, where segment i+1
// shares its first word with segment i's last word (the overlap used for
// matching). Each segment appears `dups` times, shuffled.
func Genome(nUnique, segWords, dups int, seed int64) *GenomeInput {
	if segWords < 2 {
		segWords = 2
	}
	rng := rand.New(rand.NewSource(seed))
	in := &GenomeInput{SegWords: segWords, NUnique: nUnique}
	// Generate unique contents with chained overlap words.
	overlap := make([]uint64, nUnique+1)
	for i := range overlap {
		overlap[i] = rng.Uint64() | 1 // never zero
	}
	unique := make([][]uint64, nUnique)
	for i := 0; i < nUnique; i++ {
		seg := make([]uint64, segWords)
		seg[0] = overlap[i]
		for w := 1; w < segWords-1; w++ {
			seg[w] = rng.Uint64() | 1
		}
		seg[segWords-1] = overlap[i+1]
		unique[i] = seg
	}
	in.TrueNext = make([]int32, nUnique)
	for i := range in.TrueNext {
		if i == nUnique-1 {
			in.TrueNext[i] = -1
		} else {
			in.TrueNext[i] = int32(i + 1)
		}
	}
	// Duplicate and shuffle.
	order := make([]int, 0, nUnique*dups)
	for i := 0; i < nUnique; i++ {
		for d := 0; d < dups; d++ {
			order = append(order, i)
		}
	}
	rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
	for _, i := range order {
		in.Segments = append(in.Segments, unique[i]...)
	}
	return in
}

// --- kmeans: Gaussian point clouds ---

// Points is the kmeans input: n points of d fixed-point coordinates drawn
// around k true centers.
type Points struct {
	N, D, K int
	Coords  []int64 // n*d fixed-point values
}

// KMeansPoints draws n points in d dimensions around k Gaussian centers
// (the rnd-n16K-d24-c16 substitute), as integers scaled by 1000.
func KMeansPoints(n, d, k int, seed int64) *Points {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]int64, k*d)
	for i := range centers {
		centers[i] = int64(rng.Intn(2_000_000)) - 1_000_000
	}
	p := &Points{N: n, D: d, K: k, Coords: make([]int64, n*d)}
	for i := 0; i < n; i++ {
		c := rng.Intn(k)
		for j := 0; j < d; j++ {
			noise := int64(rng.NormFloat64() * 50_000)
			p.Coords[i*d+j] = centers[c*d+j] + noise
		}
	}
	return p
}
