package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"swarmhints/internal/bench"
	"swarmhints/internal/metrics"
	"swarmhints/swarm"
)

func TestSplitList(t *testing.T) {
	got := SplitList(" a, b ,,c ")
	if strings.Join(got, "|") != "a|b|c" {
		t.Fatalf("SplitList = %v", got)
	}
	if SplitList("") != nil {
		t.Fatal("empty list must be nil")
	}
}

func TestParseInts(t *testing.T) {
	got, err := ParseInts("1, 16,256", "-cores")
	if err != nil || len(got) != 3 || got[2] != 256 {
		t.Fatalf("ParseInts = %v, %v", got, err)
	}
	if _, err := ParseInts("1,x", "-cores"); err == nil || !strings.Contains(err.Error(), "-cores") {
		t.Fatalf("bad value must error naming the flag, got %v", err)
	}
}

func TestParseSched(t *testing.T) {
	for in, want := range map[string]swarm.SchedKind{
		"random": swarm.Random, "Stealing": swarm.Stealing, "HINTS": swarm.Hints,
		"lbhints": swarm.LBHints, "lbidle": swarm.LBIdleProxy,
	} {
		got, err := ParseSched(in)
		if err != nil || got != want {
			t.Fatalf("ParseSched(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSched("fifo"); err == nil {
		t.Fatal("unknown scheduler must error")
	}
}

func TestParseScheds(t *testing.T) {
	got, err := ParseScheds("random,hints")
	if err != nil || len(got) != 2 || got[1] != swarm.Hints {
		t.Fatalf("ParseScheds = %v, %v", got, err)
	}
}

func TestParseScale(t *testing.T) {
	for in, want := range map[string]bench.Scale{"tiny": bench.Tiny, "Small": bench.Small, "FULL": bench.Full} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Fatalf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("unknown scale must error")
	}
}

func TestParseOutput(t *testing.T) {
	o, err := ParseOutput("", "")
	if err != nil || o.Enabled() {
		t.Fatalf("default output misparsed: %+v, %v", o, err)
	}
	o, err = ParseOutput("json", "")
	if err != nil || !o.Enabled() || !o.ReplacesHuman() {
		t.Fatalf("json-to-stdout misparsed: %+v, %v", o, err)
	}
	o, err = ParseOutput("csv", "x.csv")
	if err != nil || !o.Enabled() || o.ReplacesHuman() {
		t.Fatalf("csv-to-file misparsed: %+v, %v", o, err)
	}
	if _, err := ParseOutput("", "x.json"); err == nil {
		t.Fatal("-out without -format must error")
	}
	if _, err := ParseOutput("xml", ""); err == nil {
		t.Fatal("unknown format must error")
	}
}

func TestOutputWriteToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	rs := metrics.NewResultSet("bench")
	rs.Append(map[string]string{"bench": "sssp"}, &metrics.Snapshot{Cycles: 1})
	o := Output{Format: metrics.FormatJSON, Path: path}
	if err := o.Write(rs); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), metrics.SchemaVersion) {
		t.Fatal("written file missing schema version")
	}
	// Disabled output writes nothing.
	if err := (Output{}).Write(rs); err != nil {
		t.Fatal(err)
	}
}

func TestParseBytes(t *testing.T) {
	good := map[string]int64{
		"":     0,
		"0":    0,
		"1024": 1024,
		"4k":   4 << 10,
		"512M": 512 << 20,
		"2g":   2 << 30,
		"1T":   1 << 40,
		" 8m ": 8 << 20,
	}
	for in, want := range good {
		got, err := ParseBytes(in, "-store-max-bytes")
		if err != nil || got != want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, in := range []string{"x", "-1", "12q", "k", "9999999999999g"} {
		if _, err := ParseBytes(in, "-store-max-bytes"); err == nil {
			t.Errorf("ParseBytes(%q) accepted", in)
		}
	}
}

func TestOpenStoreDisabled(t *testing.T) {
	s, err := OpenStore("", "1g")
	if err != nil || s != nil {
		t.Fatalf("empty dir should disable the store, got %v, %v", s, err)
	}
	if _, err := OpenStore(t.TempDir(), "bogus"); err == nil {
		t.Fatal("bad size accepted")
	}
	s, err = OpenStore(t.TempDir(), "1m")
	if err != nil || s == nil || s.MaxBytes() != 1<<20 {
		t.Fatalf("OpenStore: %v, %v", s, err)
	}
}

// TestSchedFlagRoundTrips: SchedFlag is the inverse of ParseSched for
// every scheduler kind — the gateway relies on this to forward per-point
// requests a replica will parse back to the same kind.
func TestSchedFlagRoundTrips(t *testing.T) {
	for _, k := range []swarm.SchedKind{
		swarm.Random, swarm.Stealing, swarm.Hints, swarm.LBHints, swarm.LBIdleProxy,
	} {
		got, err := ParseSched(SchedFlag(k))
		if err != nil || got != k {
			t.Errorf("ParseSched(SchedFlag(%v)) = %v, %v; want round-trip", k, got, err)
		}
	}
}

func TestParseReplicas(t *testing.T) {
	got, err := ParseReplicas("http://a:8080/, https://b:9090")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, "|") != "http://a:8080|https://b:9090" {
		t.Fatalf("ParseReplicas = %v", got)
	}
	for _, bad := range []string{
		"",
		"a:8080",                       // no scheme
		"ftp://a:8080",                 // wrong scheme
		"http://a:8080,http://a:8080/", // duplicate after normalization
		"http://",                      // no host
	} {
		if _, err := ParseReplicas(bad); err == nil {
			t.Errorf("ParseReplicas(%q) accepted", bad)
		}
	}
}
