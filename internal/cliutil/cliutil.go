// Package cliutil holds the flag-parsing and output helpers shared by
// cmd/swarmsim and cmd/experiments, which previously carried divergent
// copies of the same list/scale/scheduler parsers. Both commands also share
// the structured-output convention implemented by Output: -format selects a
// machine-readable encoding, -out redirects it to a file so the
// human-readable report keeps stdout.
package cliutil

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"swarmhints/internal/bench"
	"swarmhints/internal/metrics"
	"swarmhints/swarm"
)

// SplitList splits a comma-separated flag value, dropping empty entries.
func SplitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// ParseInts parses a comma-separated integer list; flagName names the flag
// in errors.
func ParseInts(s, flagName string) ([]int, error) {
	var out []int
	for _, part := range SplitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad %s value %q", flagName, part)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseSched parses a scheduler name (case-insensitive).
func ParseSched(s string) (swarm.SchedKind, error) {
	switch strings.ToLower(s) {
	case "random":
		return swarm.Random, nil
	case "stealing":
		return swarm.Stealing, nil
	case "hints":
		return swarm.Hints, nil
	case "lbhints":
		return swarm.LBHints, nil
	case "lbidle":
		return swarm.LBIdleProxy, nil
	}
	return 0, fmt.Errorf("unknown scheduler %q (have random, stealing, hints, lbhints, lbidle)", s)
}

// ParseScheds parses a comma-separated scheduler list.
func ParseScheds(s string) ([]swarm.SchedKind, error) {
	var out []swarm.SchedKind
	for _, part := range SplitList(s) {
		k, err := ParseSched(part)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// ParseScale parses an input-scale name (case-insensitive).
func ParseScale(s string) (bench.Scale, error) {
	switch strings.ToLower(s) {
	case "tiny":
		return bench.Tiny, nil
	case "small":
		return bench.Small, nil
	case "full":
		return bench.Full, nil
	}
	return 0, fmt.Errorf("unknown scale %q (have tiny, small, full)", s)
}

// Output is the resolved structured-output destination of a command run.
type Output struct {
	Format metrics.Format
	Path   string // "" = stdout
}

// ParseOutput validates a -format/-out flag pair.
func ParseOutput(format, out string) (Output, error) {
	f, err := metrics.ParseFormat(format)
	if err != nil {
		return Output{}, err
	}
	if f == metrics.FormatHuman && out != "" {
		return Output{}, fmt.Errorf("-out %q needs -format json or csv", out)
	}
	return Output{Format: f, Path: out}, nil
}

// Enabled reports whether structured output was requested at all.
func (o Output) Enabled() bool { return o.Format != metrics.FormatHuman }

// ReplacesHuman reports whether structured output goes to stdout and
// therefore replaces the human-readable report there; with -out FILE both
// are emitted (human to stdout, structured to the file).
func (o Output) ReplacesHuman() bool { return o.Enabled() && o.Path == "" }

// Write encodes rs to the configured destination. No-op when structured
// output is disabled.
func (o Output) Write(rs *metrics.ResultSet) error {
	if !o.Enabled() {
		return nil
	}
	var w io.Writer = os.Stdout
	if o.Path != "" {
		f, err := os.Create(o.Path)
		if err != nil {
			return err
		}
		if err := rs.Write(f, o.Format); err != nil {
			f.Close()
			return err
		}
		// A close failure can be the first sign of a failed write-back;
		// surface it instead of reporting a truncated file as success.
		return f.Close()
	}
	return rs.Write(w, o.Format)
}
