// Package cliutil holds the flag-parsing and output helpers shared by
// cmd/swarmsim and cmd/experiments, which previously carried divergent
// copies of the same list/scale/scheduler parsers. Both commands also share
// the structured-output convention implemented by Output: -format selects a
// machine-readable encoding, -out redirects it to a file so the
// human-readable report keeps stdout.
package cliutil

import (
	"fmt"
	"io"
	"net/url"
	"os"
	"strconv"
	"strings"

	"swarmhints/internal/bench"
	"swarmhints/internal/fault"
	"swarmhints/internal/metrics"
	"swarmhints/internal/store"
	"swarmhints/swarm"
)

// SplitList splits a comma-separated flag value, dropping empty entries.
func SplitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// ParseInts parses a comma-separated integer list; flagName names the flag
// in errors.
func ParseInts(s, flagName string) ([]int, error) {
	var out []int
	for _, part := range SplitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad %s value %q", flagName, part)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseSched parses a scheduler name (case-insensitive).
func ParseSched(s string) (swarm.SchedKind, error) {
	switch strings.ToLower(s) {
	case "random":
		return swarm.Random, nil
	case "stealing":
		return swarm.Stealing, nil
	case "hints":
		return swarm.Hints, nil
	case "lbhints":
		return swarm.LBHints, nil
	case "lbidle":
		return swarm.LBIdleProxy, nil
	}
	return 0, fmt.Errorf("unknown scheduler %q (have random, stealing, hints, lbhints, lbidle)", s)
}

// SchedFlag returns the wire/flag name of a scheduler kind — the inverse
// of ParseSched, so SchedFlag(k) always round-trips. (Kind.String is the
// paper's figure-legend spelling, which for LBIdleProxy differs from the
// parseable name.)
func SchedFlag(k swarm.SchedKind) string {
	switch k {
	case swarm.Random:
		return "random"
	case swarm.Stealing:
		return "stealing"
	case swarm.Hints:
		return "hints"
	case swarm.LBHints:
		return "lbhints"
	case swarm.LBIdleProxy:
		return "lbidle"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseReplicas parses the comma-separated replica URL list of the
// swarmgate -replicas flag: each entry must be an absolute http(s) URL,
// duplicates are rejected (a doubled replica would silently skew every
// balancer), and trailing slashes are normalized away.
func ParseReplicas(s string) ([]string, error) {
	list := SplitList(s)
	if len(list) == 0 {
		return nil, fmt.Errorf("-replicas must list at least one URL")
	}
	seen := make(map[string]bool, len(list))
	out := make([]string, 0, len(list))
	for _, r := range list {
		u, err := url.Parse(r)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("bad replica URL %q (want http://host:port)", r)
		}
		norm := strings.TrimRight(r, "/")
		if seen[norm] {
			return nil, fmt.Errorf("duplicate replica URL %q", norm)
		}
		seen[norm] = true
		out = append(out, norm)
	}
	return out, nil
}

// ParseScheds parses a comma-separated scheduler list.
func ParseScheds(s string) ([]swarm.SchedKind, error) {
	var out []swarm.SchedKind
	for _, part := range SplitList(s) {
		k, err := ParseSched(part)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// ParseBytes parses a human-friendly byte size: a plain integer, optionally
// with a k/m/g/t suffix (binary multiples, case-insensitive), e.g. "512m"
// or "2g". Empty and "0" mean zero; flagName names the flag in errors.
func ParseBytes(s, flagName string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch strings.ToLower(s[len(s)-1:]) {
	case "k":
		mult, s = 1<<10, s[:len(s)-1]
	case "m":
		mult, s = 1<<20, s[:len(s)-1]
	case "g":
		mult, s = 1<<30, s[:len(s)-1]
	case "t":
		mult, s = 1<<40, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad %s size %q (want e.g. 1048576, 512m, 2g)", flagName, s)
	}
	if v > (1<<62)/mult {
		return 0, fmt.Errorf("bad %s size %q: overflows", flagName, s)
	}
	return v * mult, nil
}

// OpenStore resolves the shared -store/-store-max-bytes flag pair all three
// commands expose: an empty dir disables the persistent result store (nil
// Store), otherwise the directory is opened (created if needed) with the
// parsed size cap.
func OpenStore(dir, maxBytes string) (*store.Store, error) {
	if dir == "" {
		return nil, nil
	}
	limit, err := ParseBytes(maxBytes, "-store-max-bytes")
	if err != nil {
		return nil, err
	}
	return store.Open(dir, limit)
}

// ArmFaults resolves the shared -fault/-fault-seed flag pair swarmd and
// swarmgate expose: seed fault.Default for reproducible draws, then arm
// the semicolon-separated site spec (empty = leave everything disarmed,
// the zero-overhead production state).
func ArmFaults(spec string, seed int64) error {
	fault.SetDefaultSeed(seed)
	if spec == "" {
		return nil
	}
	if err := fault.Default.ArmSpec(spec); err != nil {
		return fmt.Errorf("-fault: %w", err)
	}
	return nil
}

// ParseScale parses an input-scale name (case-insensitive).
func ParseScale(s string) (bench.Scale, error) {
	switch strings.ToLower(s) {
	case "tiny":
		return bench.Tiny, nil
	case "small":
		return bench.Small, nil
	case "full":
		return bench.Full, nil
	}
	return 0, fmt.Errorf("unknown scale %q (have tiny, small, full)", s)
}

// Output is the resolved structured-output destination of a command run.
type Output struct {
	Format metrics.Format
	Path   string // "" = stdout
}

// ParseOutput validates a -format/-out flag pair.
func ParseOutput(format, out string) (Output, error) {
	f, err := metrics.ParseFormat(format)
	if err != nil {
		return Output{}, err
	}
	if f == metrics.FormatHuman && out != "" {
		return Output{}, fmt.Errorf("-out %q needs -format json or csv", out)
	}
	return Output{Format: f, Path: out}, nil
}

// Enabled reports whether structured output was requested at all.
func (o Output) Enabled() bool { return o.Format != metrics.FormatHuman }

// ReplacesHuman reports whether structured output goes to stdout and
// therefore replaces the human-readable report there; with -out FILE both
// are emitted (human to stdout, structured to the file).
func (o Output) ReplacesHuman() bool { return o.Enabled() && o.Path == "" }

// Write encodes rs to the configured destination. No-op when structured
// output is disabled.
func (o Output) Write(rs *metrics.ResultSet) error {
	if !o.Enabled() {
		return nil
	}
	var w io.Writer = os.Stdout
	if o.Path != "" {
		f, err := os.Create(o.Path)
		if err != nil {
			return err
		}
		if err := rs.Write(f, o.Format); err != nil {
			f.Close()
			return err
		}
		// A close failure can be the first sign of a failed write-back;
		// surface it instead of reporting a truncated file as success.
		return f.Close()
	}
	return rs.Write(w, o.Format)
}
