package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"swarmhints/internal/mem"
	"swarmhints/internal/noc"
)

// TestLatencyBoundsProperty: any access sequence yields latencies within
// [L1 hit, cold-miss worst case] and never panics.
func TestLatencyBoundsProperty(t *testing.T) {
	cfg := ScaledConfig()
	mesh := noc.New(4, nil)
	worst := cfg.L1Latency + cfg.L2Latency + cfg.L3Latency + cfg.MemLatency +
		8*(2*(4-1)+1) + 2*4 // generous NoC/invalidations slack
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(cfg, mesh, 2)
		for i := 0; i < 2000; i++ {
			core := rng.Intn(32)
			tile := core / 2
			addr := uint64(rng.Intn(4096)) * 8
			lat := h.Access(core, tile, addr, rng.Intn(3) == 0, noc.MsgMem)
			if lat < cfg.L1Latency || lat > worst {
				t.Logf("latency %d out of [%d,%d]", lat, cfg.L1Latency, worst)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestStatsMonotonicProperty: hit/miss counters never decrease and every
// access lands in exactly one level's counter.
func TestStatsMonotonicProperty(t *testing.T) {
	mesh := noc.New(2, nil)
	h := New(ScaledConfig(), mesh, 1)
	rng := rand.New(rand.NewSource(5))
	var prev Stats
	for i := 0; i < 3000; i++ {
		h.Access(rng.Intn(4), rng.Intn(4), uint64(rng.Intn(512))*8, rng.Intn(2) == 0, noc.MsgMem)
		s := h.Stats()
		if s.L1Hits < prev.L1Hits || s.L2Hits < prev.L2Hits ||
			s.L3Hits < prev.L3Hits || s.MemAccesses < prev.MemAccesses {
			t.Fatal("cache stats went backwards")
		}
		total := s.L1Hits + s.L2Hits + s.L3Hits + s.MemAccesses
		if total != uint64(i+1) {
			t.Fatalf("access %d accounted %d times", i, total-uint64(i))
		}
		prev = s
	}
}

// TestSingleCoreRepeatAccessConverges: repeatedly touching a working set
// that fits in L1 must converge to all-L1-hits.
func TestSingleCoreRepeatAccessConverges(t *testing.T) {
	cfg := ScaledConfig()
	h := New(cfg, noc.New(1, nil), 1)
	lines := cfg.L1.Lines() / 2
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			h.Access(0, 0, uint64(0x1000+i*mem.LineSize), false, noc.MsgMem)
		}
	}
	before := h.Stats().L1Hits
	for i := 0; i < lines; i++ {
		if lat := h.Access(0, 0, uint64(0x1000+i*mem.LineSize), false, noc.MsgMem); lat != cfg.L1Latency {
			t.Fatalf("line %d not L1-resident after warmup (lat=%d)", i, lat)
		}
	}
	if h.Stats().L1Hits != before+uint64(lines) {
		t.Fatal("hit accounting inconsistent")
	}
}

// TestWriteReadOwnershipPingPong: two tiles alternately writing one line
// must each invalidate the other — invalidations grow linearly.
func TestWriteReadOwnershipPingPong(t *testing.T) {
	h := New(ScaledConfig(), noc.New(2, nil), 1)
	addr := uint64(0x8000)
	for i := 0; i < 20; i++ {
		h.Access(i%2, i%2, addr, true, noc.MsgMem)
	}
	if inv := h.Stats().Invalidations; inv < 15 {
		t.Fatalf("ping-pong writes caused only %d invalidations", inv)
	}
}
