// Package cache models the three-level cache hierarchy of the simulated
// Swarm chip (Table II): per-core L1s, a per-tile shared L2, and a fully
// shared static-NUCA L3 with one bank per tile, all inclusive, with 64 B
// lines, MESI-style directory coherence, and LRU replacement. Accesses
// return their latency and inject memory traffic into the NoC model.
package cache

import (
	"swarmhints/internal/flat"
	"swarmhints/internal/hashutil"
	"swarmhints/internal/mem"
	"swarmhints/internal/metrics"
	"swarmhints/internal/noc"
)

// Params sizes one cache level.
type Params struct {
	SizeKB int // total capacity in kilobytes
	Ways   int // set associativity
}

// Lines returns the number of 64 B lines the cache holds.
func (p Params) Lines() int { return p.SizeKB * 1024 / mem.LineSize }

// Config sizes the whole hierarchy and its latencies.
type Config struct {
	L1         Params
	L2         Params
	L3Bank     Params // one bank per tile
	L1Latency  int
	L2Latency  int
	L3Latency  int // bank access latency, NoC hops extra
	MemLatency int
}

// DefaultConfig mirrors Table II of the paper.
func DefaultConfig() Config {
	return Config{
		L1:         Params{SizeKB: 16, Ways: 8},
		L2:         Params{SizeKB: 256, Ways: 8},
		L3Bank:     Params{SizeKB: 1024, Ways: 16},
		L1Latency:  2,
		L2Latency:  7,
		L3Latency:  9,
		MemLatency: 120,
	}
}

// ScaledConfig shrinks capacities for the scaled-down workloads used in
// tests and quick experiments, keeping the same latencies and shape.
func ScaledConfig() Config {
	c := DefaultConfig()
	c.L1 = Params{SizeKB: 4, Ways: 4}
	c.L2 = Params{SizeKB: 32, Ways: 8}
	c.L3Bank = Params{SizeKB: 128, Ways: 16}
	return c
}

// array is one set-associative LRU cache array.
type array struct {
	sets  int
	ways  int
	tags  []uint64 // sets*ways line addresses, 0 = invalid
	dirty []bool
	tick  []uint64 // LRU timestamps
	clock uint64
}

func newArray(p Params) *array {
	lines := p.Lines()
	if lines < p.Ways {
		lines = p.Ways
	}
	sets := lines / p.Ways
	if sets < 1 {
		sets = 1
	}
	n := sets * p.Ways
	return &array{sets: sets, ways: p.Ways, tags: make([]uint64, n), dirty: make([]bool, n), tick: make([]uint64, n)}
}

func (a *array) set(line uint64) int {
	return int(hashutil.SplitMix64(line/mem.LineSize) % uint64(a.sets))
}

// lookup returns the way index of line, or -1.
func (a *array) lookup(line uint64) int {
	base := a.set(line) * a.ways
	for w := 0; w < a.ways; w++ {
		if a.tags[base+w] == line {
			return base + w
		}
	}
	return -1
}

func (a *array) touch(idx int, write bool) {
	a.clock++
	a.tick[idx] = a.clock
	if write {
		a.dirty[idx] = true
	}
}

// insert installs line, returning the victim line address and whether it was
// dirty; victim is 0 when an invalid way was used.
func (a *array) insert(line uint64, write bool) (victim uint64, victimDirty bool) {
	base := a.set(line) * a.ways
	vi := base
	for w := 0; w < a.ways; w++ {
		i := base + w
		if a.tags[i] == 0 {
			vi = i
			break
		}
		if a.tick[i] < a.tick[vi] {
			vi = i
		}
	}
	victim, victimDirty = a.tags[vi], a.dirty[vi]
	a.tags[vi] = line
	a.dirty[vi] = write
	a.clock++
	a.tick[vi] = a.clock
	return victim, victimDirty
}

// invalidate drops line if present, reporting whether it was dirty.
func (a *array) invalidate(line uint64) (present, dirty bool) {
	if idx := a.lookup(line); idx >= 0 {
		present, dirty = true, a.dirty[idx]
		a.tags[idx] = 0
		a.dirty[idx] = false
		a.tick[idx] = 0
	}
	return present, dirty
}

// dirEntry is the in-cache directory state for one line: which tiles hold it
// in their L2 and whether one tile owns it modified.
type dirEntry struct {
	sharers uint64 // bitmap over tiles (<=64 tiles, Fig. 1)
	owner   int8   // owning tile when modified, else -1
}

// Stats aggregates hierarchy hit/miss counters chip-wide. The per-tile
// ground truth lives in the shared metrics.Recorder; Stats is the summed
// view kept for the engine's aggregate snapshot.
type Stats struct {
	L1Hits, L2Hits, L3Hits, MemAccesses uint64
	RemoteForwards, Invalidations       uint64
	Writebacks                          uint64
}

// Hierarchy is the full chip cache model.
type Hierarchy struct {
	cfg      Config
	coresPer int
	mesh     *noc.Mesh
	rec      *metrics.Recorder
	l1       []*array // per core
	l2       []*array // per tile
	l3       []*array // per tile (bank)

	// dir is the in-cache coherence directory. Every simulated access
	// consults it up to three times (exclusivity check, remote-copy check,
	// state update), so it sits on a flat open-addressing table with entry
	// recycling instead of a runtime map — lines enter on first sharing and
	// leave on L3 eviction, churning constantly.
	dir     flat.Table[dirEntry]
	dirPool mem.Pool[dirEntry]
}

// New builds the hierarchy for mesh.Tiles() tiles with coresPerTile cores.
// Cache events publish per tile into the mesh's recorder, so the whole
// memory system (caches + NoC) collects into one metrics.Recorder.
func New(cfg Config, mesh *noc.Mesh, coresPerTile int) *Hierarchy {
	tiles := mesh.Tiles()
	h := &Hierarchy{
		cfg:      cfg,
		coresPer: coresPerTile,
		mesh:     mesh,
		rec:      mesh.Recorder(),
		l1:       make([]*array, tiles*coresPerTile),
		l2:       make([]*array, tiles),
		l3:       make([]*array, tiles),
	}
	for i := range h.l1 {
		h.l1[i] = newArray(cfg.L1)
	}
	for i := range h.l2 {
		h.l2[i] = newArray(cfg.L2)
		h.l3[i] = newArray(cfg.L3Bank)
	}
	// The directory tracks up to every L3-resident line; pre-size to skip
	// most of the growth ladder, but cap the reservation — large default
	// configs would otherwise zero megabytes per engine even for tiny
	// workloads that touch a fraction of the capacity.
	reserve := tiles * cfg.L3Bank.Lines() / 2
	if reserve > 4096 {
		reserve = 4096
	}
	h.dir.Reserve(reserve)
	return h
}

// Stats returns the accumulated counters summed over tiles.
func (h *Hierarchy) Stats() Stats {
	return StatsFrom(h.rec.Aggregate())
}

// StatsFrom extracts the cache counters from an aggregated counter block.
func StatsFrom(agg metrics.TileCounters) Stats {
	return Stats{
		L1Hits: agg.L1Hits, L2Hits: agg.L2Hits, L3Hits: agg.L3Hits,
		MemAccesses:    agg.MemAccesses,
		RemoteForwards: agg.RemoteForwards,
		Invalidations:  agg.Invalidations,
		Writebacks:     agg.Writebacks,
	}
}

// homeBank returns the static-NUCA home tile of a line.
func (h *Hierarchy) homeBank(line uint64) int {
	return int(hashutil.SplitMix64(line/mem.LineSize+0x9e37) % uint64(len(h.l3)))
}

// Access simulates one word access by core (a global core id) on tile.
// write marks stores. class attributes the NoC traffic (mem vs. abort
// rollback). It returns the access latency in cycles.
func (h *Hierarchy) Access(core, tile int, addr uint64, write bool, class noc.MsgClass) int {
	line := mem.LineAddr(addr)
	if line == 0 {
		line = mem.LineSize // avoid the invalid-tag sentinel
	}
	l1 := h.l1[core]
	lat := h.cfg.L1Latency

	if idx := l1.lookup(line); idx >= 0 {
		// L1 hit. Writes still need exclusivity if other tiles share it.
		if !write {
			l1.touch(idx, false)
			h.rec.Tile(tile).L1Hits++
			return lat
		}
		if e := h.dir.Get(line); e == nil || (e.sharers == 1<<uint(tile) && e.owner <= int8(tile)) {
			l1.touch(idx, true)
			h.l2mark(tile, line, true)
			h.rec.Tile(tile).L1Hits++
			h.setOwner(line, tile)
			return lat
		}
		// Upgrade miss: fall through to coherence path below.
	}

	lat += h.cfg.L2Latency
	l2 := h.l2[tile]
	l2Idx := l2.lookup(line)
	needsCoherence := write && h.hasRemoteCopies(line, tile)

	if l2Idx >= 0 && !needsCoherence {
		l2.touch(l2Idx, write)
		h.rec.Tile(tile).L2Hits++
		h.fillL1(core, tile, line, write)
		if write {
			h.setOwner(line, tile)
		}
		return lat
	}

	// L2 miss (or upgrade): go to the L3 home bank over the NoC.
	home := h.homeBank(line)
	lat += h.mesh.Send(class, tile, home, 8) // request
	lat += h.cfg.L3Latency

	e := h.dirEntryFor(line)

	if write {
		// Invalidate all remote copies; latency is bounded by the furthest
		// sharer round trip through the home node.
		worst := 0
		for t := 0; t < len(h.l2); t++ {
			if t == tile || e.sharers&(1<<uint(t)) == 0 {
				continue
			}
			h.invalidateTile(t, line, class)
			if d := h.mesh.Latency(home, t); d > worst {
				worst = d
			}
		}
		if worst > 0 {
			lat += 2 * worst
		}
		e.sharers = 1 << uint(tile)
		e.owner = int8(tile)
	} else if e.owner >= 0 && int(e.owner) != tile {
		// Dirty in a remote tile: forward, writeback, downgrade.
		owner := int(e.owner)
		lat += h.mesh.Send(class, home, owner, 8)
		lat += h.cfg.L2Latency
		lat += h.mesh.Send(class, owner, tile, mem.LineSize) // data forward
		h.rec.Tile(owner).RemoteForwards++
		h.rec.Tile(owner).Writebacks++
		e.owner = -1
		e.sharers |= 1 << uint(tile)
	} else {
		e.sharers |= 1 << uint(tile)
	}

	l3 := h.l3[home]
	if idx := l3.lookup(line); idx >= 0 {
		l3.touch(idx, write)
		h.rec.Tile(home).L3Hits++
	} else {
		// L3 miss: fetch from the memory controller at the chip edge.
		lat += h.mesh.SendToEdge(class, home, 8)
		lat += h.cfg.MemLatency
		lat += h.mesh.SendToEdge(class, home, mem.LineSize)
		h.rec.Tile(home).MemAccesses++
		victim, vDirty := l3.insert(line, write)
		if victim != 0 {
			h.evictL3(victim, home, vDirty, class)
		}
	}
	if class == noc.MsgMem || class == noc.MsgAbort {
		// Data response home->tile.
		lat += h.mesh.Send(class, home, tile, mem.LineSize)
	}

	// Fill L2 and L1.
	if l2Idx < 0 {
		victim, vDirty := l2.insert(line, write)
		if victim != 0 {
			h.evictL2(victim, tile, vDirty, class)
		}
	} else {
		l2.touch(l2Idx, write)
	}
	h.fillL1(core, tile, line, write)
	return lat
}

// dirEntryFor returns the directory entry for line, materializing a fresh
// (pooled) one when the line is not yet tracked.
func (h *Hierarchy) dirEntryFor(line uint64) *dirEntry {
	e := h.dir.Get(line)
	if e == nil {
		e = h.dirPool.Get()
		e.sharers, e.owner = 0, -1
		h.dir.Put(line, e)
	}
	return e
}

// hasRemoteCopies reports whether any tile other than tile holds line.
func (h *Hierarchy) hasRemoteCopies(line uint64, tile int) bool {
	e := h.dir.Get(line)
	if e == nil {
		return false
	}
	return e.sharers&^(1<<uint(tile)) != 0 || (e.owner >= 0 && int(e.owner) != tile)
}

func (h *Hierarchy) setOwner(line uint64, tile int) {
	e := h.dirEntryFor(line)
	e.owner = int8(tile)
	e.sharers |= 1 << uint(tile)
}

func (h *Hierarchy) l2mark(tile int, line uint64, write bool) {
	if idx := h.l2[tile].lookup(line); idx >= 0 {
		h.l2[tile].touch(idx, write)
	}
}

func (h *Hierarchy) fillL1(core, tile int, line uint64, write bool) {
	l1 := h.l1[core]
	if idx := l1.lookup(line); idx >= 0 {
		l1.touch(idx, write)
		return
	}
	l1.insert(line, write) // L1 victims are clean wrt L2 (write-through to L2 model)
}

// invalidateTile removes line from one tile's L2 and all its cores' L1s.
func (h *Hierarchy) invalidateTile(tile int, line uint64, class noc.MsgClass) {
	h.rec.Tile(tile).Invalidations++
	if present, dirty := h.l2[tile].invalidate(line); present && dirty {
		h.rec.Tile(tile).Writebacks++
		h.mesh.Send(class, tile, h.homeBank(line), mem.LineSize)
	}
	base := tile * h.coresPer
	for c := 0; c < h.coresPer; c++ {
		h.l1[base+c].invalidate(line)
	}
}

// evictL2 handles an L2 victim: dirty lines write back to the home bank.
func (h *Hierarchy) evictL2(victim uint64, tile int, dirty bool, class noc.MsgClass) {
	base := tile * h.coresPer
	for c := 0; c < h.coresPer; c++ {
		h.l1[base+c].invalidate(victim) // inclusion
	}
	if e := h.dir.Get(victim); e != nil {
		e.sharers &^= 1 << uint(tile)
		if e.owner == int8(tile) {
			e.owner = -1
		}
	}
	if dirty {
		h.rec.Tile(tile).Writebacks++
		h.mesh.Send(class, tile, h.homeBank(victim), mem.LineSize)
	}
}

// evictL3 enforces inclusion: dropping an L3 line invalidates every L2/L1
// copy, and dirty data goes to the memory controller.
func (h *Hierarchy) evictL3(victim uint64, home int, dirty bool, class noc.MsgClass) {
	if e := h.dir.Delete(victim); e != nil {
		for t := 0; t < len(h.l2); t++ {
			if e.sharers&(1<<uint(t)) != 0 {
				h.invalidateTile(t, victim, class)
			}
		}
		h.dirPool.Put(e)
	}
	if dirty {
		h.rec.Tile(home).Writebacks++
		h.mesh.SendToEdge(class, home, mem.LineSize)
	}
}
