package cache

import (
	"testing"

	"swarmhints/internal/mem"
	"swarmhints/internal/noc"
)

func newTestHierarchy(k, coresPerTile int) (*Hierarchy, *noc.Mesh) {
	mesh := noc.New(k, nil)
	return New(ScaledConfig(), mesh, coresPerTile), mesh
}

func TestColdMissThenHit(t *testing.T) {
	h, _ := newTestHierarchy(2, 2)
	cold := h.Access(0, 0, 0x10000, false, noc.MsgMem)
	hit := h.Access(0, 0, 0x10000, false, noc.MsgMem)
	if cold <= hit {
		t.Fatalf("cold miss (%d) must be slower than L1 hit (%d)", cold, hit)
	}
	if hit != ScaledConfig().L1Latency {
		t.Fatalf("L1 hit latency = %d, want %d", hit, ScaledConfig().L1Latency)
	}
	s := h.Stats()
	if s.L1Hits != 1 || s.MemAccesses != 1 {
		t.Fatalf("stats = %+v, want 1 L1 hit and 1 mem access", s)
	}
}

func TestSameLineDifferentWords(t *testing.T) {
	h, _ := newTestHierarchy(2, 2)
	h.Access(0, 0, 0x10000, false, noc.MsgMem)
	lat := h.Access(0, 0, 0x10008, false, noc.MsgMem) // same 64B line
	if lat != ScaledConfig().L1Latency {
		t.Fatalf("same-line word missed L1: lat=%d", lat)
	}
}

func TestL2SharedWithinTile(t *testing.T) {
	h, _ := newTestHierarchy(2, 2)
	h.Access(0, 0, 0x20000, false, noc.MsgMem) // core 0 fills L1+L2
	lat := h.Access(1, 0, 0x20000, false, noc.MsgMem)
	want := ScaledConfig().L1Latency + ScaledConfig().L2Latency
	if lat != want {
		t.Fatalf("sibling core L2 hit latency = %d, want %d", lat, want)
	}
}

func TestRemoteWriteInvalidates(t *testing.T) {
	h, _ := newTestHierarchy(2, 1)
	addr := uint64(0x30000)
	h.Access(0, 0, addr, false, noc.MsgMem) // tile 0 reads
	h.Access(1, 1, addr, true, noc.MsgMem)  // tile 1 writes: must invalidate tile 0
	if h.Stats().Invalidations == 0 {
		t.Fatal("remote write did not invalidate the sharer")
	}
	// Tile 0 must now miss in L1/L2.
	lat := h.Access(0, 0, addr, false, noc.MsgMem)
	if lat <= ScaledConfig().L1Latency+ScaledConfig().L2Latency {
		t.Fatalf("stale copy served after invalidation (lat=%d)", lat)
	}
}

func TestDirtyRemoteForward(t *testing.T) {
	h, _ := newTestHierarchy(2, 1)
	addr := uint64(0x40000)
	h.Access(0, 0, addr, true, noc.MsgMem) // tile 0 owns modified
	h.Access(1, 1, addr, false, noc.MsgMem)
	if h.Stats().RemoteForwards == 0 {
		t.Fatal("read of a remotely-modified line did not forward")
	}
}

func TestWriteAfterReadUpgrade(t *testing.T) {
	h, _ := newTestHierarchy(2, 1)
	addr := uint64(0x50000)
	h.Access(0, 0, addr, false, noc.MsgMem)
	h.Access(1, 1, addr, false, noc.MsgMem) // both tiles share
	inv0 := h.Stats().Invalidations
	h.Access(0, 0, addr, true, noc.MsgMem) // upgrade: invalidate tile 1
	if h.Stats().Invalidations <= inv0 {
		t.Fatal("upgrade write did not invalidate the other sharer")
	}
}

func TestMemTrafficAccounted(t *testing.T) {
	h, m := newTestHierarchy(2, 1)
	h.Access(0, 0, 0x60000, false, noc.MsgMem)
	if m.Flits(noc.MsgMem) == 0 {
		t.Fatal("cold miss injected no NoC traffic")
	}
}

func TestAbortClassTraffic(t *testing.T) {
	h, m := newTestHierarchy(2, 1)
	h.Access(0, 0, 0x70000, true, noc.MsgAbort)
	if m.Flits(noc.MsgAbort) == 0 {
		t.Fatal("abort-class access accounted as wrong class")
	}
	if m.Flits(noc.MsgMem) != 0 {
		t.Fatal("abort-class access leaked into mem class")
	}
}

func TestCapacityEviction(t *testing.T) {
	h, _ := newTestHierarchy(1, 1)
	cfg := ScaledConfig()
	// Touch far more distinct lines than L1 capacity; early lines must be
	// evicted and miss again.
	n := cfg.L1.Lines() * 4
	for i := 0; i < n; i++ {
		h.Access(0, 0, uint64(0x100000+i*mem.LineSize), false, noc.MsgMem)
	}
	lat := h.Access(0, 0, 0x100000, false, noc.MsgMem)
	if lat == cfg.L1Latency {
		t.Fatal("line survived far beyond L1 capacity")
	}
}

func TestWriteMakesDirtyWriteback(t *testing.T) {
	h, _ := newTestHierarchy(1, 1)
	cfg := ScaledConfig()
	// Dirty many lines, then overflow L2+L3 to force writebacks.
	n := (cfg.L2.Lines() + cfg.L3Bank.Lines()) * 2
	for i := 0; i < n; i++ {
		h.Access(0, 0, uint64(0x200000+i*mem.LineSize), true, noc.MsgMem)
	}
	if h.Stats().Writebacks == 0 {
		t.Fatal("no writebacks after overflowing dirty working set")
	}
}

func TestLRUKeepsHotLine(t *testing.T) {
	h, _ := newTestHierarchy(1, 1)
	cfg := ScaledConfig()
	hot := uint64(0x300000)
	h.Access(0, 0, hot, false, noc.MsgMem)
	// Touch a working set that fits easily in L2 while re-touching hot.
	for i := 1; i < cfg.L1.Lines(); i++ {
		h.Access(0, 0, hot+uint64(i*mem.LineSize*7), false, noc.MsgMem)
		h.Access(0, 0, hot, false, noc.MsgMem)
	}
	lat := h.Access(0, 0, hot, false, noc.MsgMem)
	if lat != cfg.L1Latency {
		t.Fatalf("hot line evicted despite LRU (lat=%d)", lat)
	}
}

func TestDefaultConfigMatchesTableII(t *testing.T) {
	c := DefaultConfig()
	if c.L1.SizeKB != 16 || c.L2.SizeKB != 256 || c.L3Bank.SizeKB != 1024 {
		t.Fatalf("capacities diverge from Table II: %+v", c)
	}
	if c.L1Latency != 2 || c.L2Latency != 7 || c.L3Latency != 9 || c.MemLatency != 120 {
		t.Fatalf("latencies diverge from Table II: %+v", c)
	}
}

func TestFarTileCostsMore(t *testing.T) {
	// The NUCA home of a line is fixed; a requester farther from that home
	// must see a larger L2-miss latency than the home tile itself.
	hA, _ := newTestHierarchy(8, 1)
	line := uint64(0x90000)
	home := hA.homeBank(line)
	far := 0
	best := -1
	mesh := noc.New(8, nil)
	for tile := 0; tile < 64; tile++ {
		if d := mesh.Latency(tile, home); d > best {
			best, far = d, tile
		}
	}
	latHome := hA.Access(home, home, line, false, noc.MsgMem)
	hB, _ := newTestHierarchy(8, 1)
	latFar := hB.Access(far, far, line, false, noc.MsgMem)
	if latFar <= latHome {
		t.Fatalf("far tile latency %d <= home tile latency %d", latFar, latHome)
	}
}
