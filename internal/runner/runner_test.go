package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"swarmhints/internal/bench"
	"swarmhints/swarm"
)

// TestSweepOrderedAggregation checks that results land at their job's index
// with the job's derived seed, regardless of completion order.
func TestSweepOrderedAggregation(t *testing.T) {
	const n = 32
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Name: "job",
			Run: func(seed int64) (*swarm.Stats, error) {
				// Encode identity in the stats so aggregation order is
				// observable.
				return &swarm.Stats{Cycles: uint64(i), Cores: int(seed % 1000)}, nil
			},
		}
	}
	results := Sweep(context.Background(), jobs, Options{Parallel: 4, Seed: 99})
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, res := range results {
		if res.Index != i {
			t.Errorf("result %d has Index %d", i, res.Index)
		}
		if res.Err != nil {
			t.Errorf("result %d: unexpected error %v", i, res.Err)
		}
		if res.Stats.Cycles != uint64(i) {
			t.Errorf("result %d carries stats of job %d", i, res.Stats.Cycles)
		}
		if res.Seed != DeriveSeed(99, i) {
			t.Errorf("result %d has seed %d, want DeriveSeed(99,%d)=%d", i, res.Seed, i, DeriveSeed(99, i))
		}
	}
}

// sweepJobs builds a real-simulation sweep: bfs at Tiny scale across core
// counts, each run built from the runner's derived seed so per-run seeding
// itself is under test.
func sweepJobs(t *testing.T) []Job {
	t.Helper()
	coreSweep := []int{1, 4, 16, 4, 1} // duplicates: distinct derived seeds must differ
	jobs := make([]Job, len(coreSweep))
	for i, cores := range coreSweep {
		cores := cores
		jobs[i] = Job{
			Name: "bfs",
			Run: func(seed int64) (*swarm.Stats, error) {
				inst, err := bench.Build("bfs", bench.Tiny, seed)
				if err != nil {
					return nil, err
				}
				cfg := swarm.ScaledConfig().WithCores(cores)
				cfg.Scheduler = swarm.Hints
				st, err := inst.Prog.Run(cfg)
				if err != nil {
					return nil, err
				}
				if err := inst.Validate(); err != nil {
					return nil, err
				}
				return st, nil
			},
		}
	}
	return jobs
}

// TestSweepDeterministicAcrossParallelism is the core contract: the same
// sweep seed produces identical aggregated statistics for every worker
// count, because seeds derive from run indices and runs share no state.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	jobs := sweepJobs(t)
	var baseline []Result
	for _, parallel := range []int{1, 2, 8, 0} {
		results := Sweep(context.Background(), jobs, Options{Parallel: parallel, Seed: 7})
		if err := FirstErr(results); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		if baseline == nil {
			baseline = results
			continue
		}
		if !reflect.DeepEqual(results, baseline) {
			t.Errorf("parallel=%d: results differ from parallel=1 baseline", parallel)
		}
	}
	// Same config, different run index ⇒ different derived seed, so
	// duplicate sweep points are genuine replicas, not clones.
	if baseline[0].Seed == baseline[4].Seed {
		t.Error("duplicate sweep points received identical seeds")
	}
}

// TestSweepSeedSensitivity checks a different sweep seed actually changes
// the derived per-run seeds (and with them the workloads).
func TestSweepSeedSensitivity(t *testing.T) {
	jobs := sweepJobs(t)[:2]
	a := Sweep(context.Background(), jobs, Options{Parallel: 2, Seed: 7})
	b := Sweep(context.Background(), jobs, Options{Parallel: 2, Seed: 8})
	if a[0].Seed == b[0].Seed {
		t.Errorf("sweep seeds 7 and 8 derived the same run seed %d", a[0].Seed)
	}
}

// TestSweepPanicIsolation checks that a panicking job surfaces as an error
// with a stack trace while every other job still completes.
func TestSweepPanicIsolation(t *testing.T) {
	ok := func(seed int64) (*swarm.Stats, error) { return &swarm.Stats{Cycles: 1}, nil }
	jobs := []Job{
		{Name: "good-0", Run: ok},
		{Name: "boom", Run: func(int64) (*swarm.Stats, error) { panic("kaboom") }},
		{Name: "good-2", Run: ok},
		{Name: "fails", Run: func(int64) (*swarm.Stats, error) { return nil, errors.New("plain failure") }},
	}
	results := Sweep(context.Background(), jobs, Options{Parallel: 2, Seed: 1})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil || results[1].Stats != nil {
		t.Fatalf("panicking job did not error: %+v", results[1])
	}
	if msg := results[1].Err.Error(); !strings.Contains(msg, "kaboom") || !strings.Contains(msg, "boom") {
		t.Errorf("panic error lacks context: %q", msg)
	}
	if err := FirstErr(results); err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("FirstErr should surface job 1's panic, got %v", err)
	}
}

// TestSweepOnResult checks the completion callback fires once per job.
func TestSweepOnResult(t *testing.T) {
	jobs := sweepJobs(t)[:3]
	seen := make(map[int]int)
	results := Sweep(context.Background(), jobs, Options{Parallel: 3, Seed: 7, OnResult: func(r Result) {
		seen[r.Index]++ // serialized by the runner; no lock needed here
	}})
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if seen[i] != 1 {
			t.Errorf("OnResult fired %d times for job %d, want 1", seen[i], i)
		}
	}
}

func TestSweepEmpty(t *testing.T) {
	if got := Sweep(context.Background(), nil, Options{Parallel: 4}); len(got) != 0 {
		t.Fatalf("Sweep(nil) returned %d results", len(got))
	}
}

// TestDeriveSeed pins the derivation: pure, index-sensitive, sweep-seed
// sensitive. A change here silently reshuffles every recorded sweep.
func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(7, 0) != DeriveSeed(7, 0) {
		t.Error("DeriveSeed is not pure")
	}
	seen := make(map[int64]int)
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(7, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("indices %d and %d collide on seed %d", j, i, s)
		}
		seen[s] = i
	}
	if DeriveSeed(7, 3) == DeriveSeed(8, 3) {
		t.Error("sweep seed does not influence derived seed")
	}
}

// TestSweepCancellationStopsWork is the cancellation contract: once ctx is
// canceled, in-flight jobs finish (a simulation run is not interruptible)
// but no new job starts, canceled jobs carry the cancellation as an error
// with no statistics, OnResult never fires for them, and the worker
// goroutines all exit — an abandoned sweep cannot leak workers or emit
// partial results.
func TestSweepCancellationStopsWork(t *testing.T) {
	const (
		n       = 40
		workers = 4
	)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int32
	release := make(chan struct{})
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Name: fmt.Sprintf("job-%d", i),
			Run: func(int64) (*swarm.Stats, error) {
				started.Add(1)
				<-release
				return &swarm.Stats{Cycles: 1}, nil
			},
		}
	}
	var emitted atomic.Int32
	done := make(chan []Result, 1)
	go func() {
		done <- Sweep(ctx, jobs, Options{Parallel: workers, Seed: 1, OnResult: func(Result) {
			emitted.Add(1)
		}})
	}()

	// Wait until every worker is blocked inside a job, then cancel. The
	// release happens after cancel, so workers observe the canceled context
	// before picking up their next job.
	for started.Load() < workers {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	results := <-done

	completed, canceled := 0, 0
	for i, res := range results {
		switch {
		case res.Err == nil:
			completed++
			if res.Stats == nil {
				t.Errorf("completed job %d has no stats", i)
			}
		default:
			canceled++
			if !errors.Is(res.Err, context.Canceled) {
				t.Errorf("job %d error is not the cancellation: %v", i, res.Err)
			}
			if res.Stats != nil {
				t.Errorf("canceled job %d carries partial stats", i)
			}
			if res.Seed != DeriveSeed(1, i) {
				t.Errorf("canceled job %d lost its derived seed", i)
			}
		}
	}
	if completed != workers || canceled != n-workers {
		t.Errorf("completed=%d canceled=%d, want %d and %d", completed, canceled, workers, n-workers)
	}
	if got := int(emitted.Load()); got != workers {
		t.Errorf("OnResult fired %d times, want %d (never for canceled jobs)", got, workers)
	}
	// Partial results must not leak into the machine-readable export either.
	if got := len(Collect(results).Records); got != workers {
		t.Errorf("Collect emitted %d records after cancellation, want %d", got, workers)
	}
	// All worker goroutines must exit: poll the goroutine count back down to
	// the pre-sweep baseline (other tests' leftovers make an exact equality
	// too strict only in the upward direction).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline {
		t.Errorf("goroutines leaked: %d running, baseline %d", got, baseline)
	}
}

// TestSweepPreCanceled checks a sweep under an already-canceled context
// runs nothing at all.
func TestSweepPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	jobs := []Job{{Name: "never", Run: func(int64) (*swarm.Stats, error) {
		ran = true
		return &swarm.Stats{}, nil
	}}}
	results := Sweep(ctx, jobs, Options{Parallel: 2, Seed: 1, OnResult: func(Result) {
		t.Error("OnResult fired under a pre-canceled context")
	}})
	if ran {
		t.Error("job ran under a pre-canceled context")
	}
	if len(results) != 1 || !errors.Is(results[0].Err, context.Canceled) {
		t.Fatalf("pre-canceled sweep results malformed: %+v", results)
	}
	if err := FirstErr(results); !errors.Is(err, context.Canceled) {
		t.Errorf("FirstErr should surface the cancellation, got %v", err)
	}
}
