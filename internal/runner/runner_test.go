package runner

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"swarmhints/internal/bench"
	"swarmhints/swarm"
)

// TestSweepOrderedAggregation checks that results land at their job's index
// with the job's derived seed, regardless of completion order.
func TestSweepOrderedAggregation(t *testing.T) {
	const n = 32
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Name: "job",
			Run: func(seed int64) (*swarm.Stats, error) {
				// Encode identity in the stats so aggregation order is
				// observable.
				return &swarm.Stats{Cycles: uint64(i), Cores: int(seed % 1000)}, nil
			},
		}
	}
	results := Sweep(jobs, Options{Parallel: 4, Seed: 99})
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, res := range results {
		if res.Index != i {
			t.Errorf("result %d has Index %d", i, res.Index)
		}
		if res.Err != nil {
			t.Errorf("result %d: unexpected error %v", i, res.Err)
		}
		if res.Stats.Cycles != uint64(i) {
			t.Errorf("result %d carries stats of job %d", i, res.Stats.Cycles)
		}
		if res.Seed != DeriveSeed(99, i) {
			t.Errorf("result %d has seed %d, want DeriveSeed(99,%d)=%d", i, res.Seed, i, DeriveSeed(99, i))
		}
	}
}

// sweepJobs builds a real-simulation sweep: bfs at Tiny scale across core
// counts, each run built from the runner's derived seed so per-run seeding
// itself is under test.
func sweepJobs(t *testing.T) []Job {
	t.Helper()
	coreSweep := []int{1, 4, 16, 4, 1} // duplicates: distinct derived seeds must differ
	jobs := make([]Job, len(coreSweep))
	for i, cores := range coreSweep {
		cores := cores
		jobs[i] = Job{
			Name: "bfs",
			Run: func(seed int64) (*swarm.Stats, error) {
				inst, err := bench.Build("bfs", bench.Tiny, seed)
				if err != nil {
					return nil, err
				}
				cfg := swarm.ScaledConfig().WithCores(cores)
				cfg.Scheduler = swarm.Hints
				st, err := inst.Prog.Run(cfg)
				if err != nil {
					return nil, err
				}
				if err := inst.Validate(); err != nil {
					return nil, err
				}
				return st, nil
			},
		}
	}
	return jobs
}

// TestSweepDeterministicAcrossParallelism is the core contract: the same
// sweep seed produces identical aggregated statistics for every worker
// count, because seeds derive from run indices and runs share no state.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	jobs := sweepJobs(t)
	var baseline []Result
	for _, parallel := range []int{1, 2, 8, 0} {
		results := Sweep(jobs, Options{Parallel: parallel, Seed: 7})
		if err := FirstErr(results); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		if baseline == nil {
			baseline = results
			continue
		}
		if !reflect.DeepEqual(results, baseline) {
			t.Errorf("parallel=%d: results differ from parallel=1 baseline", parallel)
		}
	}
	// Same config, different run index ⇒ different derived seed, so
	// duplicate sweep points are genuine replicas, not clones.
	if baseline[0].Seed == baseline[4].Seed {
		t.Error("duplicate sweep points received identical seeds")
	}
}

// TestSweepSeedSensitivity checks a different sweep seed actually changes
// the derived per-run seeds (and with them the workloads).
func TestSweepSeedSensitivity(t *testing.T) {
	jobs := sweepJobs(t)[:2]
	a := Sweep(jobs, Options{Parallel: 2, Seed: 7})
	b := Sweep(jobs, Options{Parallel: 2, Seed: 8})
	if a[0].Seed == b[0].Seed {
		t.Errorf("sweep seeds 7 and 8 derived the same run seed %d", a[0].Seed)
	}
}

// TestSweepPanicIsolation checks that a panicking job surfaces as an error
// with a stack trace while every other job still completes.
func TestSweepPanicIsolation(t *testing.T) {
	ok := func(seed int64) (*swarm.Stats, error) { return &swarm.Stats{Cycles: 1}, nil }
	jobs := []Job{
		{Name: "good-0", Run: ok},
		{Name: "boom", Run: func(int64) (*swarm.Stats, error) { panic("kaboom") }},
		{Name: "good-2", Run: ok},
		{Name: "fails", Run: func(int64) (*swarm.Stats, error) { return nil, errors.New("plain failure") }},
	}
	results := Sweep(jobs, Options{Parallel: 2, Seed: 1})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil || results[1].Stats != nil {
		t.Fatalf("panicking job did not error: %+v", results[1])
	}
	if msg := results[1].Err.Error(); !strings.Contains(msg, "kaboom") || !strings.Contains(msg, "boom") {
		t.Errorf("panic error lacks context: %q", msg)
	}
	if err := FirstErr(results); err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("FirstErr should surface job 1's panic, got %v", err)
	}
}

// TestSweepOnResult checks the completion callback fires once per job.
func TestSweepOnResult(t *testing.T) {
	jobs := sweepJobs(t)[:3]
	seen := make(map[int]int)
	results := Sweep(jobs, Options{Parallel: 3, Seed: 7, OnResult: func(r Result) {
		seen[r.Index]++ // serialized by the runner; no lock needed here
	}})
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if seen[i] != 1 {
			t.Errorf("OnResult fired %d times for job %d, want 1", seen[i], i)
		}
	}
}

func TestSweepEmpty(t *testing.T) {
	if got := Sweep(nil, Options{Parallel: 4}); len(got) != 0 {
		t.Fatalf("Sweep(nil) returned %d results", len(got))
	}
}

// TestDeriveSeed pins the derivation: pure, index-sensitive, sweep-seed
// sensitive. A change here silently reshuffles every recorded sweep.
func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(7, 0) != DeriveSeed(7, 0) {
		t.Error("DeriveSeed is not pure")
	}
	seen := make(map[int64]int)
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(7, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("indices %d and %d collide on seed %d", j, i, s)
		}
		seen[s] = i
	}
	if DeriveSeed(7, 3) == DeriveSeed(8, 3) {
		t.Error("sweep seed does not influence derived seed")
	}
}
