// Package runner is the parallel experiment-sweep subsystem: it executes
// many independent simulation runs concurrently across host goroutines with
// bounded concurrency, deterministic per-run seeding, per-run panic
// isolation, and ordered result aggregation.
//
// The simulator itself (internal/sim) is single-threaded and deterministic:
// one run touches no package-level mutable state, so independent runs can
// proceed on independent goroutines with no synchronization beyond the
// worker pool. The runner exploits that: a sweep of R runs on a P-way pool
// produces byte-identical aggregated results for every value of P, because
// each run's seed is derived from (sweep seed, run index) — never from a
// shared RNG — and results land in a slice indexed by run, not in arrival
// order.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"swarmhints/internal/hashutil"
	"swarmhints/internal/metrics"
	"swarmhints/internal/obs"
	"swarmhints/swarm"
)

// Job is one simulation run in a sweep.
type Job struct {
	// Name labels the job in results and error messages.
	Name string
	// Labels are the job's typed coordinates in the sweep (benchmark,
	// scheduler, cores, …), carried through to its Result and into
	// machine-readable exports via Collect.
	Labels map[string]string
	// Run executes the job and returns its statistics. The seed argument is
	// the job's derived seed (DeriveSeed of the sweep seed and the job
	// index); jobs that fix their own seed — e.g. paper experiments, which
	// deliberately reuse one workload seed across every configuration — may
	// ignore it.
	Run func(seed int64) (*swarm.Stats, error)
}

// Options configures a sweep.
type Options struct {
	// Parallel bounds the number of worker goroutines. Zero or negative
	// means GOMAXPROCS.
	Parallel int
	// Seed is the sweep seed from which every job's seed is derived.
	Seed int64
	// OnResult, when non-nil, is called once per completed job, serialized
	// under a lock (so it may write to shared output). Jobs complete in
	// arbitrary order; use Result.Index to correlate.
	OnResult func(Result)
}

// Result is the outcome of one job, delivered at the job's index in the
// slice Sweep returns regardless of completion order.
type Result struct {
	Index  int
	Name   string
	Labels map[string]string // the job's Labels, passed through
	Seed   int64             // derived seed the job received
	Stats  *swarm.Stats
	Err    error
}

// DeriveSeed returns the seed for run index i of a sweep seeded with
// sweepSeed. It is a pure function of its arguments (SplitMix64 over the
// pair), so re-running any single point of a sweep reproduces it exactly,
// and no RNG state is shared between workers.
func DeriveSeed(sweepSeed int64, index int) int64 {
	return int64(hashutil.SplitMix64(hashutil.SplitMix64(uint64(sweepSeed)) + uint64(index)))
}

// Sweep executes jobs on a bounded worker pool and returns one Result per
// job, in job order. A job that panics is isolated: its Result carries the
// panic as an error (with stack) and every other job still runs.
//
// Cancellation is checked at job boundaries: once ctx is done, workers stop
// starting new jobs and every not-yet-started job's Result carries ctx's
// error instead of statistics. Jobs already in flight run to completion (a
// simulation run is not interruptible), but an abandoned sweep stops
// consuming workers after at most one job per worker. OnResult never fires
// for a canceled job, so partial results are never emitted downstream.
func Sweep(ctx context.Context, jobs []Job, opt Options) []Result {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opt.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var (
		wg         sync.WaitGroup
		resultLock sync.Mutex
		indices    = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				if err := ctx.Err(); err != nil {
					// Canceled before start: record the cancellation and skip
					// both the run and the OnResult callback.
					results[i] = Result{
						Index: i, Name: jobs[i].Name, Labels: jobs[i].Labels,
						Seed: DeriveSeed(opt.Seed, i),
						Err:  fmt.Errorf("runner: job %d (%s) canceled before start: %w", i, jobs[i].Name, err),
					}
					continue
				}
				results[i] = runOne(ctx, jobs[i], i, DeriveSeed(opt.Seed, i))
				if opt.OnResult != nil {
					resultLock.Lock()
					opt.OnResult(results[i])
					resultLock.Unlock()
				}
			}
		}()
	}
	for i := range jobs {
		indices <- i
	}
	close(indices)
	wg.Wait()
	return results
}

// runOne executes a single job, converting a panic into an error so one
// broken configuration cannot take down the rest of the sweep. Each job
// is a span in the sweep's trace (ctx carries the caller's span through
// Sweep), tagged with the job name, index, derived seed, and outcome.
func runOne(ctx context.Context, j Job, index int, seed int64) (res Result) {
	res = Result{Index: index, Name: j.Name, Labels: j.Labels, Seed: seed}
	_, sp := obs.StartSpan(ctx, "runner.job")
	sp.SetAttr("job", j.Name)
	sp.SetAttrInt("index", int64(index))
	sp.SetAttrInt("seed", seed)
	// Registered before the recover defer, so it runs after it (LIFO) and
	// sees the panic already converted into res.Err.
	defer func() {
		if res.Err != nil {
			sp.SetAttr("outcome", "error")
		} else {
			sp.SetAttr("outcome", "ok")
		}
		sp.End()
	}()
	defer func() {
		if r := recover(); r != nil {
			res.Stats = nil
			res.Err = fmt.Errorf("runner: job %d (%s) panicked: %v\n%s", index, j.Name, r, debug.Stack())
		}
	}()
	res.Stats, res.Err = j.Run(seed)
	return res
}

// FirstErr returns the error of the lowest-index failed result, or nil.
// Because results are ordered by job, the reported failure is deterministic
// regardless of parallelism.
func FirstErr(results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// Collect assembles the sweep's machine-readable result set: one record per
// successful result, in job order, labeled with the job's Labels. fields
// fixes the label column order for CSV output. Failed jobs are skipped —
// pair Collect with FirstErr to surface them.
func Collect(results []Result, fields ...string) *metrics.ResultSet {
	rs := metrics.NewResultSet(fields...)
	for _, r := range results {
		if r.Err != nil || r.Stats == nil {
			continue
		}
		sn := r.Stats.Snapshot()
		if sn.SeedSummary != nil {
			// Multi-seed merged records carry the cross-seed dispersion
			// block; stamp the set with the schema that declares it.
			rs.Schema = metrics.SchemaVersionV2
		}
		rs.Append(r.Labels, sn)
	}
	return rs
}
